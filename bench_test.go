// Benchmarks reproducing the measured side of every table, figure and claim
// in the paper (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded results). Each benchmark measures the core operation of one
// experiment; custom per-op metrics (bytes, peak embeddings, messages) are
// attached via b.ReportMetric. The full paper-style tables are printed by
// `go run ./cmd/graphbench all`.
package graphsys_test

import (
	"math/rand"
	"sync"
	"testing"

	"graphsys/internal/blogel"
	"graphsys/internal/cluster"
	"graphsys/internal/core"
	"graphsys/internal/embed"
	"graphsys/internal/fsm"
	"graphsys/internal/gnn"
	"graphsys/internal/gnndist"
	"graphsys/internal/gpusim"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/gthinkerq"
	"graphsys/internal/match"
	"graphsys/internal/mining"
	"graphsys/internal/partition"
	"graphsys/internal/pregel"
	"graphsys/internal/quegel"
	"graphsys/internal/tensor"
	"graphsys/internal/tthinker"
)

// ---- shared fixtures (built once) ----

var fixtures struct {
	once      sync.Once
	ba        *graph.Graph // BA(400,8): subgraph-search workloads
	baBig     *graph.Graph // BA(1000,6): matching-order workloads
	labeled   *graph.Graph // labeled ER(250): FSM workloads
	molecules *graph.TransactionDB
	task      *gnn.Task // community node classification
	triangle  *graph.Graph
	cycle4    *graph.Graph
}

func fx() *struct {
	once      sync.Once
	ba        *graph.Graph
	baBig     *graph.Graph
	labeled   *graph.Graph
	molecules *graph.TransactionDB
	task      *gnn.Task
	triangle  *graph.Graph
	cycle4    *graph.Graph
} {
	fixtures.once.Do(func() {
		fixtures.ba = gen.BarabasiAlbert(400, 8, 1)
		fixtures.baBig = gen.BarabasiAlbert(1000, 6, 2)
		fixtures.labeled = gen.WithRandomLabels(gen.ErdosRenyi(250, 750, 3), 3, 4)
		fixtures.molecules = gen.MoleculeDB(80, 9, 4, 0.9, 5)
		fixtures.task = gnn.SyntheticCommunityTask(300, 3, 2, 0.3, 17)
		fixtures.triangle = graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}})
		fixtures.cycle4 = graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	})
	return &fixtures
}

// ---- Figure 1: the four pipeline paths ----

func BenchmarkFig1_Path1_VertexAnalytics(b *testing.B) {
	g := fx().ba
	p := core.NewPipeline(g, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.PageRank(10)
	}
}

func BenchmarkFig1_Path2_EmbeddingsPlusClassifier(b *testing.B) {
	t := fx().task
	p := core.NewPipeline(t.G, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb := embed.DeepWalk(t.G, 2, 10, embed.SkipGramConfig{Dim: 8, Epochs: 1, Seed: int64(i)})
		clf := p.TrainNodeClassifier(emb, t.Labels, t.TrainMask, 1)
		_ = clf.Accuracy(emb, t.Labels, t.TestMask)
	}
}

func BenchmarkFig1_Path3_StructureAnalytics(b *testing.B) {
	g := fx().ba
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := tthinker.MaximalCliques(g, false, tthinker.Config{Workers: 4})
		if res.Count == 0 {
			b.Fatal("no cliques")
		}
	}
}

func BenchmarkFig1_Path4_GraphClassification(b *testing.B) {
	db := fx().molecules
	trainMask := make([]bool, db.Len())
	for i := range trainMask {
		trainMask[i] = i%3 != 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.GraphClassification(db, trainMask, 16, 3, 4, 2)
	}
}

// ---- Table 1 ----

func BenchmarkTable1_BFSvsDFS(b *testing.B) {
	g := fx().ba
	b.Run("BFS-extension", func(b *testing.B) {
		var peak int64
		for i := 0; i < b.N; i++ {
			_, stats := mining.CountCliquesBFS(g, 4, mining.Config{Workers: 4})
			peak = stats.Peak
		}
		b.ReportMetric(float64(peak), "peak-embeddings")
	})
	b.Run("DFS-backtracking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = mining.CountCliquesDFS(g, 4)
		}
		b.ReportMetric(0, "peak-embeddings")
	})
	b.Run("task-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = tthinker.MaximalCliques(g, false, tthinker.Config{Workers: 4, Budget: 256})
		}
	})
}

func BenchmarkTable1_MatchingOrder(b *testing.B) {
	g := fx().baBig
	pattern := graph.FromEdges(4, [][2]graph.V{{0, 2}, {1, 2}, {2, 3}, {0, 3}, {1, 3}})
	plans := map[string]*match.Plan{
		"naive":     match.NaivePlan(pattern),
		"greedy":    match.GreedyPlan(pattern),
		"optimized": match.OptimizedPlan(pattern),
	}
	for _, name := range []string{"naive", "greedy", "optimized"} {
		plan := plans[name]
		b.Run(name, func(b *testing.B) {
			var stats match.Stats
			for i := 0; i < b.N; i++ {
				_, stats = match.Count(g, plan, 4)
			}
			b.ReportMetric(float64(stats.Candidates), "candidates")
		})
	}
}

func BenchmarkTable1_FSM(b *testing.B) {
	g := fx().labeled
	b.Run("single-graph-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fsm.MineSingleGraphSerial(g, fsm.MineConfig{MinSupport: 20, MaxEdges: 3})
		}
	})
	b.Run("single-graph-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fsm.MineSingleGraph(g, fsm.MineConfig{MinSupport: 20, MaxEdges: 3, Workers: 8})
		}
	})
	b.Run("transactional", func(b *testing.B) {
		db := fx().molecules
		for i := 0; i < b.N; i++ {
			_ = fsm.MineTransactions(db, fsm.MineConfig{MinSupport: 20, MaxEdges: 4, Workers: 8})
		}
	})
}

func BenchmarkTable1_OnlineQuery(b *testing.B) {
	g := fx().baBig
	light := fx().triangle
	b.Run("concurrent", func(b *testing.B) {
		srv := gthinkerq.NewServer(g, 4)
		defer srv.Close()
		heavy := srv.Submit(gen.Clique(4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.Submit(light).Wait()
		}
		b.StopTimer()
		heavy.Wait()
	})
	b.Run("isolated", func(b *testing.B) {
		srv := gthinkerq.NewServer(g, 4)
		defer srv.Close()
		for i := 0; i < b.N; i++ {
			srv.Submit(light).Wait()
		}
	})
}

func BenchmarkTable1_GPU(b *testing.B) {
	g := fx().ba
	plan := match.OptimizedPlan(fx().cycle4)
	ample := &gpusim.Device{NumSMs: 8, WarpSize: 32, MemorySlots: 1 << 30}
	scarce := &gpusim.Device{NumSMs: 8, WarpSize: 32, MemorySlots: 4096}
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = v % 8
	}
	b.Run("BFS-ample", func(b *testing.B) {
		var m gpusim.Metrics
		for i := 0; i < b.N; i++ {
			_, m = gpusim.BFSMatch(g, plan, ample)
		}
		b.ReportMetric(float64(m.PeakMemory), "peak-slots")
	})
	b.Run("partitionedBFS-ample", func(b *testing.B) {
		var m gpusim.Metrics
		for i := 0; i < b.N; i++ {
			_, m = gpusim.PartitionedBFSMatch(g, plan, ample, assign, 8)
		}
		b.ReportMetric(float64(m.PeakMemory), "peak-slots")
	})
	b.Run("AIMD-scarce", func(b *testing.B) {
		var m gpusim.Metrics
		for i := 0; i < b.N; i++ {
			_, m = gpusim.AIMDMatch(g, plan, scarce)
		}
		b.ReportMetric(float64(m.HostSpillSlots), "host-spill-slots")
	})
	b.Run("warpDFS", func(b *testing.B) {
		var m gpusim.Metrics
		for i := 0; i < b.N; i++ {
			_, m = gpusim.DFSWarpMatch(g, plan, scarce)
		}
		b.ReportMetric(float64(m.RandomAccesses), "random-accesses")
	})
	b.Run("hybrid-scarce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = gpusim.HybridMatch(g, plan, scarce)
		}
	})
}

// ---- Table 2 ----

func BenchmarkTable2_Partitioning(b *testing.B) {
	task := fx().task
	parts := map[string]*partition.Partition{
		"hash":    partition.Hash(task.G, 4),
		"metis":   partition.Metis(task.G, 4),
		"ldg":     partition.LDG(task.G, 4),
		"voronoi": partition.BFSVoronoi(task.G, task.TrainSeeds(), 4),
	}
	for _, name := range []string{"hash", "ldg", "metis", "voronoi"} {
		p := parts[name]
		b.Run(name, func(b *testing.B) {
			var res gnndist.DistResult
			for i := 0; i < b.N; i++ {
				res, _ = gnndist.TrainSync(task, gnndist.TrainerConfig{Workers: 4, TimeBudget: 5, Seed: 7, Part: p})
			}
			b.ReportMetric(float64(res.Net.Bytes), "net-bytes")
			b.ReportMetric(res.RemoteFrac, "remote-frac")
		})
	}
}

func BenchmarkTable2_Sampling(b *testing.B) {
	task := fx().task
	for _, fanout := range []int{2, 8, 32} {
		fanout := fanout
		b.Run(map[int]string{2: "fanout2", 8: "fanout8", 32: "fanout32"}[fanout], func(b *testing.B) {
			var res gnndist.DistResult
			for i := 0; i < b.N; i++ {
				res, _ = gnndist.TrainSync(task, gnndist.TrainerConfig{
					Workers: 4, TimeBudget: 5, Seed: 8, Fanouts: []int{fanout, fanout}})
			}
			b.ReportMetric(float64(res.Net.Bytes), "net-bytes")
		})
	}
}

func BenchmarkTable2_Caching(b *testing.B) {
	task := fx().task
	for _, size := range []int{0, 256} {
		size := size
		name := "nocache"
		if size > 0 {
			name = "cache256"
		}
		b.Run(name, func(b *testing.B) {
			var res gnndist.DistResult
			for i := 0; i < b.N; i++ {
				res, _ = gnndist.TrainSync(task, gnndist.TrainerConfig{
					Workers: 4, TimeBudget: 5, Seed: 9, CacheSize: size})
			}
			b.ReportMetric(float64(res.Net.Bytes), "net-bytes")
		})
	}
}

func BenchmarkTable2_Pipelining(b *testing.B) {
	// fixed stage-duration matrix: 3 stages × 64 batches with a fetch
	// bottleneck, the ByteGNN scenario
	times := make(gnndist.StageTimes, 3)
	rng := rand.New(rand.NewSource(1))
	for s := range times {
		times[s] = make([]float64, 64)
		for bidx := range times[s] {
			times[s][bidx] = 1 + rng.Float64()
			if s == 1 {
				times[s][bidx] *= 3 // fetch-bound
			}
		}
	}
	b.Run("sequential", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			m = gnndist.SequentialMakespan(times)
		}
		b.ReportMetric(m, "makespan")
	})
	b.Run("pipelined", func(b *testing.B) {
		var m float64
		for i := 0; i < b.N; i++ {
			m = gnndist.PipelinedMakespan(times)
		}
		b.ReportMetric(m, "makespan")
	})
}

func BenchmarkTable2_Staleness(b *testing.B) {
	task := fx().task
	speeds := []float64{1, 1, 1, 5}
	b.Run("sync", func(b *testing.B) {
		var res gnndist.DistResult
		for i := 0; i < b.N; i++ {
			res, _ = gnndist.TrainSync(task, gnndist.TrainerConfig{
				Workers: 4, TimeBudget: 20, WorkerSpeed: speeds, Seed: 10})
		}
		b.ReportMetric(float64(res.Steps), "grad-steps")
		b.ReportMetric(res.TestAcc, "accuracy")
	})
	b.Run("bounded-stale", func(b *testing.B) {
		var res gnndist.DistResult
		for i := 0; i < b.N; i++ {
			res, _ = gnndist.TrainBoundedStale(task, gnndist.TrainerConfig{
				Workers: 4, TimeBudget: 20, WorkerSpeed: speeds, Staleness: 4, Seed: 10})
		}
		b.ReportMetric(float64(res.Steps), "grad-steps")
		b.ReportMetric(res.TestAcc, "accuracy")
	})
	b.Run("sancus", func(b *testing.B) {
		var res gnndist.DistResult
		for i := 0; i < b.N; i++ {
			res, _ = gnndist.TrainSancus(task, gnndist.TrainerConfig{
				Workers: 4, TimeBudget: 100, WorkerSpeed: speeds, SancusTau: 5e-3, Seed: 10})
		}
		b.ReportMetric(float64(res.Skipped), "skipped-bcasts")
	})
}

func BenchmarkTable2_Quantization(b *testing.B) {
	task := fx().task
	run := func(b *testing.B, bits int, ec bool) {
		var res gnndist.DistResult
		for i := 0; i < b.N; i++ {
			res, _ = gnndist.TrainSync(task, gnndist.TrainerConfig{
				Workers: 4, TimeBudget: 10, Seed: 11, QuantBits: bits, QuantCompensate: ec})
		}
		b.ReportMetric(float64(res.GradBytes), "grad-bytes")
		b.ReportMetric(res.TestAcc, "accuracy")
	}
	b.Run("fp32", func(b *testing.B) { run(b, 32, false) })
	b.Run("int8", func(b *testing.B) { run(b, 8, false) })
	b.Run("int4-ec", func(b *testing.B) { run(b, 4, true) })
}

func BenchmarkTable2_PushPull(b *testing.B) {
	task := fx().task
	const d, hidden, k = 256, 16, 4
	x := tensor.Xavier(task.G.NumVertices(), d, 1)
	w1 := tensor.Xavier(d, hidden, 2)
	part := partition.Hash(task.G, k)
	fd := partition.NewFeatureDim(d, k)
	batch := task.TrainSeeds()[:24]
	b.Run("pull", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			net := cluster.NewNetwork(k)
			_, bytes = gnndist.PullLayer1(net, part, x, w1, batch, 0)
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
	b.Run("push-pull", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			net := cluster.NewNetwork(k)
			_, bytes = gnndist.PushPullLayer1(net, fd, x, w1, batch, 0)
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
}

func BenchmarkTable2_FullGraph(b *testing.B) {
	task := fx().task
	b.Run("distgnn-sync", func(b *testing.B) {
		var res gnndist.DistGNNResult
		for i := 0; i < b.N; i++ {
			res = gnndist.TrainDistGNN(task, gnndist.DistGNNConfig{Workers: 4, Epochs: 10, RefreshEvery: 1, Seed: 12})
		}
		b.ReportMetric(float64(res.Net.Bytes), "boundary-bytes")
	})
	b.Run("distgnn-delayed4", func(b *testing.B) {
		var res gnndist.DistGNNResult
		for i := 0; i < b.N; i++ {
			res = gnndist.TrainDistGNN(task, gnndist.DistGNNConfig{Workers: 4, Epochs: 10, RefreshEvery: 4, Seed: 12})
		}
		b.ReportMetric(float64(res.Net.Bytes), "boundary-bytes")
	})
	b.Run("hongtu-offload", func(b *testing.B) {
		const hidden = 16
		l1w := tensor.Xavier(task.X.Cols, hidden, 1)
		l1b := tensor.New(1, hidden)
		l2w := tensor.Xavier(hidden, task.NumClasses, 2)
		l2b := tensor.New(1, task.NumClasses)
		var st gnndist.OffloadStats
		for i := 0; i < b.N; i++ {
			_, st = gnndist.OffloadedGCNForward(task.G, task.X, l1w, l1b, l2w, l2b, 32)
		}
		b.ReportMetric(float64(st.DevicePeakFloats), "device-peak-floats")
	})
}

func BenchmarkTable2_CommPlan(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	var ts []cluster.Transfer
	for i := 0; i < 64; i++ {
		from, to := rng.Intn(8), rng.Intn(8)
		if from != to {
			ts = append(ts, cluster.Transfer{From: from, To: to, Size: int64(1000 + rng.Intn(9000))})
		}
	}
	setup := func() *cluster.Network {
		net := cluster.NewNetwork(8)
		cluster.RingTopology(net, 4, 0.05)
		net.SetLinkCost(0, 4, 5)
		net.SetLinkCost(4, 0, 5)
		return net
	}
	b.Run("direct", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			net := setup()
			cost = cluster.DirectPlan(ts).Execute(net, ts)
		}
		b.ReportMetric(cost, "weighted-cost")
	})
	b.Run("dgcl-planned", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			net := setup()
			cost = cluster.PlanRelay(net, ts).Execute(net, ts)
		}
		b.ReportMetric(cost, "weighted-cost")
	})
}

func BenchmarkTable2_Serverless(b *testing.B) {
	task := fx().task
	seeds := task.TrainSeeds()
	pool := cluster.NewLambdaPool(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Map(16, func(int) int64 { return 1 }, func(j int) {
			rng := rand.New(rand.NewSource(int64(j)))
			sub := gnn.NeighborSample(task.G, []graph.V{seeds[j%len(seeds)]}, []int{8, 8}, rng)
			m := gnn.NewModel(sub.Graph, gnn.GCN, []int{task.X.Cols, 16, task.NumClasses}, 1)
			idx := make([]int, len(sub.NewToOld))
			for k, v := range sub.NewToOld {
				idx[k] = int(v)
			}
			m.Forward(tensor.SelectRows(task.X, idx))
		})
	}
	b.StopTimer()
	model := cluster.DefaultCostModel()
	b.ReportMetric(model.GPUCost(4, 1)/model.LambdaCost(100, 1, 4, 1), "gpu-vs-lambda-$-ratio")
}

// ---- claims ----

func BenchmarkClaim_TriangleMRvsSerial(b *testing.B) {
	g := fx().ba
	b.Run("mapreduce-style", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			_, res, _ := pregel.TriangleCountMR(g, pregel.Config{Workers: 4})
			msgs = res.Net.Messages + res.Net.LocalMessages
		}
		b.ReportMetric(float64(msgs), "messages")
	})
	b.Run("serial-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = graph.TriangleCount(g)
		}
		b.ReportMetric(0, "messages")
	})
}

func BenchmarkClaim_TLAVComplexity(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		n := n
		b.Run(map[int]string{1000: "n1000", 4000: "n4000"}[n], func(b *testing.B) {
			g := gen.ErdosRenyi(n, int64(4*n), int64(n))
			b.ResetTimer()
			var rounds int
			for i := 0; i < b.N; i++ {
				_, res, _ := pregel.HashMinCC(g, pregel.Config{Workers: 4})
				rounds = res.Supersteps
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

func BenchmarkClaim_StructVsEmbed(b *testing.B) {
	task := fx().task
	p := core.NewPipeline(task.G, 4)
	b.Run("structural", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sf := p.StructuralFeatureMatrix()
			clf := p.TrainNodeClassifier(sf, task.Labels, task.TrainMask, 1)
			_ = clf.Accuracy(sf, task.Labels, task.TestMask)
		}
	})
	b.Run("deepwalk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			emb := embed.DeepWalk(task.G, 2, 10, embed.SkipGramConfig{Dim: 8, Epochs: 1, Seed: 2})
			clf := p.TrainNodeClassifier(emb, task.Labels, task.TrainMask, 1)
			_ = clf.Accuracy(emb, task.Labels, task.TestMask)
		}
	})
}

func BenchmarkClaim_SubgraphFeatures(b *testing.B) {
	task := fx().task
	p := core.NewPipeline(task.G, 4)
	b.Run("plain-gcn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = p.TrainGNN(task, gnn.GCN, 8, 15, 3)
		}
	})
	b.Run("gcn-plus-structural", func(b *testing.B) {
		sf := graph.ComputeStructuralFeatures(task.G)
		aug := tensor.ConcatCols(task.X, tensor.FromRows(sf.Matrix()))
		t2 := &gnn.Task{G: task.G, X: aug, Labels: task.Labels,
			TrainMask: task.TrainMask, TestMask: task.TestMask, NumClasses: task.NumClasses}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = p.TrainGNN(t2, gnn.GCN, 8, 15, 3)
		}
	})
}

// ---- ablations ----

func BenchmarkAblation_TaskSplit(b *testing.B) {
	g := fx().ba
	b.Run("no-split", func(b *testing.B) {
		var max int64
		for i := 0; i < b.N; i++ {
			_, stats := tthinker.MaximalCliques(g, false, tthinker.Config{Workers: 8})
			max = stats.MaxTaskTicks
		}
		b.ReportMetric(float64(max), "max-task-ticks")
	})
	b.Run("budget256", func(b *testing.B) {
		var max int64
		for i := 0; i < b.N; i++ {
			_, stats := tthinker.MaximalCliques(g, false, tthinker.Config{Workers: 8, Budget: 256})
			max = stats.MaxTaskTicks
		}
		b.ReportMetric(float64(max), "max-task-ticks")
	})
}

func BenchmarkAblation_Combiner(b *testing.B) {
	g := fx().baBig
	b.Run("with-combiner", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			_, res, _ := pregel.HashMinCC(g, pregel.Config{Workers: 4})
			msgs = res.Net.Messages
		}
		b.ReportMetric(float64(msgs), "messages")
	})
	b.Run("without-combiner", func(b *testing.B) {
		prog := pregel.Program[int32, int32]{
			Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
			Compute: func(ctx *pregel.Context[int32], v graph.V, state *int32, msgs []int32) {
				min := *state
				if ctx.Superstep() == 0 {
					ctx.SendToNeighbors(v, min)
					ctx.VoteToHalt()
					return
				}
				for _, m := range msgs {
					if m < min {
						min = m
					}
				}
				if min < *state {
					*state = min
					ctx.SendToNeighbors(v, min)
				}
				ctx.VoteToHalt()
			},
		}
		var msgs int64
		for i := 0; i < b.N; i++ {
			res, _ := pregel.Run(g, prog, pregel.Config{Workers: 4})
			msgs = res.Net.Messages
		}
		b.ReportMetric(float64(msgs), "messages")
	})
}

func BenchmarkAblation_Ordering(b *testing.B) {
	g := fx().ba
	b.Run("bk-pivot", func(b *testing.B) {
		var ticks int64
		for i := 0; i < b.N; i++ {
			_, stats := tthinker.MaximalCliques(g, false, tthinker.Config{Workers: 4})
			ticks = stats.Ticks
		}
		b.ReportMetric(float64(ticks), "search-nodes")
	})
	b.Run("bk-no-pivot", func(b *testing.B) {
		var ticks int64
		for i := 0; i < b.N; i++ {
			_, stats := tthinker.MaximalCliquesNoPivot(g, false, tthinker.Config{Workers: 4})
			ticks = stats.Ticks
		}
		b.ReportMetric(float64(ticks), "search-nodes")
	})
}

// ---- extensions ----

func BenchmarkExt_BlogelCC(b *testing.B) {
	// high-diameter grid: the Blogel-favourable case
	g := gen.Grid(60, 40)
	b.Run("vertex-centric", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			_, res, _ := pregel.HashMinCC(g, pregel.Config{Workers: 4, MaxSupersteps: 100000})
			rounds = res.Supersteps
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("block-centric", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			blocks := blogel.Build(g, partition.Metis(g, 16))
			res, _ := blocks.ConnectedComponents(4)
			rounds = res.Supersteps
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

func BenchmarkExt_QuegelBatching(b *testing.B) {
	g := fx().baBig
	rng := rand.New(rand.NewSource(4))
	var queries []quegel.Query
	for i := 0; i < 16; i++ {
		queries = append(queries, quegel.Query{
			Src: graph.V(rng.Intn(g.NumVertices())), Dst: graph.V(rng.Intn(g.NumVertices()))})
	}
	cfg := pregel.Config{Workers: 4}
	b.Run("batched", func(b *testing.B) {
		var st quegel.Stats
		for i := 0; i < b.N; i++ {
			_, st, _ = quegel.AnswerBatched(g, queries, cfg)
		}
		b.ReportMetric(float64(st.Supersteps), "rounds")
	})
	b.Run("sequential", func(b *testing.B) {
		var st quegel.Stats
		for i := 0; i < b.N; i++ {
			_, st, _ = quegel.AnswerSequential(g, queries, cfg)
		}
		b.ReportMetric(float64(st.Supersteps), "rounds")
	})
}

func BenchmarkExt_FaultTolerance(b *testing.B) {
	g := fx().baBig
	b.Run("no-failure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _, _ = pregel.HashMinCC(g, pregel.Config{Workers: 4})
		}
	})
	b.Run("failure-with-ckpt2", func(b *testing.B) {
		prog := pregel.Program[int32, int32]{
			Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
			Compute: func(ctx *pregel.Context[int32], v graph.V, state *int32, msgs []int32) {
				min := *state
				if ctx.Superstep() == 0 {
					ctx.SendToNeighbors(v, min)
					ctx.VoteToHalt()
					return
				}
				for _, m := range msgs {
					if m < min {
						min = m
					}
				}
				if min < *state {
					*state = min
					ctx.SendToNeighbors(v, min)
				}
				ctx.VoteToHalt()
			},
			Combine: func(a, b int32) int32 {
				if a < b {
					return a
				}
				return b
			},
		}
		var ckpt int64
		for i := 0; i < b.N; i++ {
			res, _ := pregel.Run(g, prog, pregel.Config{
				Workers: 4, CheckpointEvery: 2,
				RunOptions: cluster.RunOptions{Faults: &cluster.FaultPlan{CrashAtRound: 3}},
			})
			ckpt = res.CheckpointBytes
		}
		b.ReportMetric(float64(ckpt), "ckpt-bytes")
	})
}

func BenchmarkExt_GraphClassification(b *testing.B) {
	db := fx().molecules
	trainMask := make([]bool, db.Len())
	for i := range trainMask {
		trainMask[i] = i%4 < 2
	}
	b.Run("gin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gc := gnn.TrainGraphClassifier(db, trainMask, gnn.GraphClassConfig{
				Kind: gnn.GIN, Hidden: 8, Epochs: 5, Seed: 1})
			_ = gc.Accuracy(db, nil)
		}
	})
	b.Run("fsm-features", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.GraphClassification(db, trainMask, 16, 3, 4, 2)
		}
	})
}

func BenchmarkExt_FeatureCompression(b *testing.B) {
	task := fx().task
	for _, bits := range []int{32, 4} {
		bits := bits
		name := "fp32"
		if bits != 32 {
			name = "int4"
		}
		b.Run(name, func(b *testing.B) {
			var res gnndist.DistResult
			for i := 0; i < b.N; i++ {
				res, _ = gnndist.TrainSync(task, gnndist.TrainerConfig{
					Workers: 4, TimeBudget: 5, Seed: 21, FeatureBits: bits})
			}
			b.ReportMetric(float64(res.Net.Bytes), "net-bytes")
		})
	}
}
