// Bioinformatics: the paper's Figure-1 path 4 on a molecule-like dataset —
// mine frequent subgraph patterns (functional groups) from labeled
// transaction graphs, use pattern occurrence as features, and classify
// active vs inactive molecules; plus a motif census of one molecule.
//
//	go run ./examples/bioinformatics
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"graphsys/internal/core"
	"graphsys/internal/fsm"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/mining"
)

func main() {
	// synthetic molecule database: class 1 embeds a labeled ring motif
	db := gen.MoleculeDB(100, 9, 4, 0.95, 123)
	fmt.Printf("molecule database: %d transactions (%d active / %d inactive)\n",
		db.Len(), count(db.Class, 1), count(db.Class, 0))

	// --- frequent subgraph mining on the training split ---
	rng := rand.New(rand.NewSource(1))
	trainMask := make([]bool, db.Len())
	for i := range trainMask {
		trainMask[i] = rng.Float64() < 0.6
	}
	trainDB := db
	patterns := fsm.MineTransactions(trainDB, fsm.MineConfig{MinSupport: 20, MaxEdges: 4, Workers: 8})
	fmt.Printf("\nfrequent patterns (support ≥ 20, ≤ 4 edges): %d\n", len(patterns))
	sort.Slice(patterns, func(i, j int) bool { return patterns[i].Support > patterns[j].Support })
	for i := 0; i < 5 && i < len(patterns); i++ {
		pg := patterns[i].Graph()
		fmt.Printf("  #%d support=%d vertices=%d edges=%d code=%v\n",
			i+1, patterns[i].Support, pg.NumVertices(), pg.NumEdges(), patterns[i].Code)
	}

	// --- pattern features → molecule classification ---
	acc := core.GraphClassification(db, trainMask, 20, 4, 8, 7)
	fmt.Printf("\ngraph classification (FSM features + LogReg): test accuracy %.3f\n", acc)

	// --- motif census of the first molecule (topology only) ---
	mol := db.Graphs[0]
	ub := graph.NewBuilder(mol.NumVertices(), false)
	mol.EdgesOnce(func(u, v graph.V) { ub.AddEdge(u, v) })
	unlabeled := ub.Build()
	fmt.Printf("\nmotif census of molecule 0 (%v):\n", mol)
	motifs, _ := mining.MotifCounts(unlabeled, 3, mining.Config{Workers: 4})
	for code, n := range motifs {
		fmt.Printf("  %-16s ×%d\n", mining.PatternName(code), n)
	}
}

func count(xs []int, v int) int {
	c := 0
	for _, x := range xs {
		if x == v {
			c++
		}
	}
	return c
}
