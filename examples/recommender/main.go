// Recommender: the paper's Figure-1 paths 1 and 2 for object ranking —
// PageRank scores items, DeepWalk embeddings score candidate links
// (user-item affinity), evaluated by how well embedding similarity separates
// held-out true edges from random non-edges.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"graphsys/internal/core"
	"graphsys/internal/embed"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func main() {
	// interaction graph with interest groups (users/items cluster by taste);
	// link prediction is only learnable when such structure exists
	full := gen.PlantedPartitionSparse(800, 8, 10, 0.5, 7).Graph
	fmt.Printf("interaction graph: %v\n", full)

	// hold out 10% of edges for link-prediction evaluation
	rng := rand.New(rand.NewSource(3))
	var heldOut, kept [][2]graph.V
	full.EdgesOnce(func(u, v graph.V) {
		if rng.Float64() < 0.1 {
			heldOut = append(heldOut, [2]graph.V{u, v})
		} else {
			kept = append(kept, [2]graph.V{u, v})
		}
	})
	g := graph.FromEdges(full.NumVertices(), kept)
	fmt.Printf("training graph: %v (held out %d edges)\n\n", g, len(heldOut))

	p := core.NewPipeline(g, 8)

	// --- path 1: rank items by PageRank ---
	ranks := p.PageRank(25)
	type item struct {
		v graph.V
		s float64
	}
	items := make([]item, len(ranks))
	for v, s := range ranks {
		items[v] = item{graph.V(v), s}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s > items[j].s })
	fmt.Println("top-5 items by PageRank:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  item %3d  score %.5f  degree %d\n",
			items[i].v, items[i].s, g.Degree(items[i].v))
	}

	// --- path 2: embeddings for link scoring ---
	embM := embed.DeepWalk(g, 8, 20, embed.SkipGramConfig{Dim: 32, Epochs: 3, Seed: 11})

	// AUC: probability a held-out edge scores above a random non-edge
	wins, trials := 0, 0
	for _, e := range heldOut {
		pos := embed.CosineSimilarity(embM, int(e[0]), int(e[1]))
		for k := 0; k < 5; k++ {
			u := graph.V(rng.Intn(g.NumVertices()))
			v := graph.V(rng.Intn(g.NumVertices()))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			neg := embed.CosineSimilarity(embM, int(u), int(v))
			if pos > neg {
				wins++
			}
			trials++
		}
	}
	fmt.Printf("\nlink prediction AUC (DeepWalk cosine): %.3f over %d comparisons\n",
		float64(wins)/float64(trials), trials)

	// recommendations for one user: most similar non-neighbors
	user := items[0].v
	type rec struct {
		v graph.V
		s float64
	}
	var recs []rec
	for v := graph.V(0); int(v) < g.NumVertices(); v++ {
		if v == user || g.HasEdge(user, v) {
			continue
		}
		recs = append(recs, rec{v, embed.CosineSimilarity(embM, int(user), int(v))})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].s > recs[j].s })
	fmt.Printf("\ntop-5 recommendations for item %d:\n", user)
	for i := 0; i < 5 && i < len(recs); i++ {
		fmt.Printf("  item %3d  similarity %.3f\n", recs[i].v, recs[i].s)
	}
}
