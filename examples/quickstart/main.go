// Quickstart: load (or generate) a graph and run one workload from each
// family the library covers — vertex analytics, structure analytics, and a
// GNN — in under a minute.
//
//	go run ./examples/quickstart [edgelist.txt]
package main

import (
	"fmt"
	"log"
	"os"

	"graphsys/internal/core"
	"graphsys/internal/gnn"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func main() {
	log.SetFlags(0)
	var g *graph.Graph
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		fmt.Printf("loaded %v\n", g)
	} else {
		g = gen.BarabasiAlbert(1000, 4, 42)
		fmt.Printf("generated %v (Barabási–Albert)\n", g)
	}

	p := core.NewPipeline(g, 4)

	// vertex analytics: PageRank
	ranks := p.PageRank(20)
	best := 0
	for v := range ranks {
		if ranks[v] > ranks[best] {
			best = v
		}
	}
	fmt.Printf("PageRank: top vertex %d (score %.5f)\n", best, ranks[best])

	// structure analytics: maximal cliques and the largest one
	cliques := p.MaximalCliques(false)
	fmt.Printf("maximal cliques: %d (largest has %d vertices)\n", cliques.Count, len(cliques.Largest))

	// structure analytics: triangle count via a compiled matching plan
	tri := p.CountPattern(gen.Clique(3))
	fmt.Printf("triangles: %d\n", tri)

	// ML: structural features → tiny GCN node classifier on a synthetic task
	task := gnn.SyntheticCommunityTask(400, 3, 2, 0.3, 7)
	acc := core.NewPipeline(task.G, 4).TrainGNN(task, gnn.GCN, 16, 40, 1)
	fmt.Printf("GCN on a 3-community task: test accuracy %.3f\n", acc)
}
