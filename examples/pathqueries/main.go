// Pathqueries: the TLAV-family systems of the paper's presenters working
// together — Quegel-style batched point-to-point distance queries, Blogel
// block-centric connected components, and GraphD semi-external processing
// when the edge list must live on disk.
//
//	go run ./examples/pathqueries
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"graphsys/internal/blogel"
	"graphsys/internal/graph"
	"graphsys/internal/graphd"
	"graphsys/internal/partition"
	"graphsys/internal/pregel"
	"graphsys/internal/quegel"
)

func main() {
	log.SetFlags(0)
	// a road-network-like graph: mostly grid with a few shortcuts
	g := buildRoadNetwork(40, 40, 60, 7)
	fmt.Printf("road network: %v\n\n", g)

	// --- Quegel: batched distance queries ---
	rng := rand.New(rand.NewSource(1))
	var queries []quegel.Query
	for i := 0; i < 10; i++ {
		queries = append(queries, quegel.Query{
			Src: graph.V(rng.Intn(g.NumVertices())),
			Dst: graph.V(rng.Intn(g.NumVertices())),
		})
	}
	batched, bst, err := quegel.AnswerBatched(g, queries, pregel.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	_, sst, err := quegel.AnswerSequential(g, queries, pregel.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Quegel: 10 point-to-point distance queries ==")
	for i, q := range queries[:4] {
		fmt.Printf("  dist(%4d → %4d) = %d hops\n", q.Src, q.Dst, batched[i].Dist)
	}
	fmt.Printf("  batched: %d barrier rounds; sequential: %d (superstep sharing: %.0fx fewer)\n\n",
		bst.Supersteps, sst.Supersteps, float64(sst.Supersteps)/float64(bst.Supersteps))

	// --- Blogel: block-centric CC on the high-diameter network ---
	_, vres, err := pregel.HashMinCC(g, pregel.Config{Workers: 4, MaxSupersteps: 100000})
	if err != nil {
		log.Fatal(err)
	}
	blocks := blogel.Build(g, partition.Metis(g, 16))
	bres, err := blocks.ConnectedComponents(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Blogel: connected components on a high-diameter network ==")
	fmt.Printf("  vertex-centric: %d rounds, %d messages\n", vres.Supersteps, vres.Net.Messages+vres.Net.LocalMessages)
	fmt.Printf("  block-centric:  %d rounds, %d messages (%d blocks)\n\n",
		bres.Supersteps, bres.Messages, blocks.NumBlock)

	// --- GraphD: process the same graph with edges on disk ---
	dir, err := os.MkdirTemp("", "graphd")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ef, err := graphd.WriteEdgeFile(g, filepath.Join(dir, "edges.bin"))
	if err != nil {
		log.Fatal(err)
	}
	labels, st, err := ef.ConnectedComponents(g.NumVertices())
	if err != nil {
		log.Fatal(err)
	}
	comps := map[int32]bool{}
	for _, l := range labels {
		comps[l] = true
	}
	fmt.Println("== GraphD: semi-external processing (edges streamed from disk) ==")
	fmt.Printf("  edge file: %d bytes on disk; resident state: %d bytes (%.1f%% of in-memory)\n",
		ef.Bytes, st.ResidentBytes, 100*float64(st.ResidentBytes)/float64(st.ResidentBytes+ef.Bytes))
	fmt.Printf("  %d components found in %d streaming passes (%d bytes read)\n",
		len(comps), st.Passes, st.BytesRead)
}

// buildRoadNetwork makes a rows×cols grid plus a few random shortcut edges.
func buildRoadNetwork(rows, cols, shortcuts int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := graph.NewBuilder(n, false)
	id := func(r, c int) graph.V { return graph.V(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	for i := 0; i < shortcuts; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}
