// Socialnet: the community-detection pipeline of the paper's Figure 1 paths
// 3 and 2 on a synthetic social network — dense subgraph mining (k-truss and
// quasi-cliques) to find candidate communities, then classic structural
// features and a node classifier to label every member, then a GNN for
// comparison.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"sort"

	"graphsys/internal/core"
	"graphsys/internal/gnn"
	"graphsys/internal/graph/gen"
	"graphsys/internal/tthinker"
)

func main() {
	// a social network: 4 communities, heavy intra-community wiring
	c := gen.PlantedPartitionSparse(600, 4, 12, 1.5, 99)
	g := c.Graph
	fmt.Printf("social network: %v, 4 planted communities\n\n", g)
	p := core.NewPipeline(g, 8)

	// --- structure analytics: who forms tight groups? ---
	fmt.Println("== structure analytics (path 3) ==")
	maxTruss := tthinker.MaxTruss(g)
	community := p.KTrussCommunity(maxTruss)
	fmt.Printf("densest k-truss: k=%d with %d members\n", maxTruss, len(community))

	cliques := p.MaximalCliques(true)
	sort.Slice(cliques.Cliques, func(i, j int) bool {
		return len(cliques.Cliques[i]) > len(cliques.Cliques[j])
	})
	fmt.Printf("maximal cliques: %d; largest: %v\n", cliques.Count, cliques.Largest)
	show := 3
	if len(cliques.Cliques) < show {
		show = len(cliques.Cliques)
	}
	for i := 0; i < show; i++ {
		fmt.Printf("  top clique %d: %v\n", i+1, cliques.Cliques[i])
	}

	// --- vertex analytics + ML: label every vertex with its community ---
	fmt.Println("\n== vertex analytics + ML (path 2) ==")
	labels := make([]int, g.NumVertices())
	train := make([]bool, g.NumVertices())
	test := make([]bool, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		labels[v] = c.Membership[v]
		if v%3 == 0 {
			train[v] = true
		} else {
			test[v] = true
		}
	}

	emb := p.DeepWalkEmbeddings(16, 5)
	clf := p.TrainNodeClassifier(emb, labels, train, 1)
	fmt.Printf("DeepWalk(16) + LogReg: community labeling accuracy %.3f\n",
		clf.Accuracy(emb, labels, test))

	sf := p.StructuralFeatureMatrix()
	clfS := p.TrainNodeClassifier(sf, labels, train, 1)
	fmt.Printf("structural features + LogReg:                 %.3f\n",
		clfS.Accuracy(sf, labels, test))

	// GNN over embeddings as input features
	task := &gnn.Task{G: g, X: emb, Labels: labels, TrainMask: train, TestMask: test, NumClasses: 4}
	fmt.Printf("GraphSAGE over the embeddings:                %.3f\n",
		p.TrainGNN(task, gnn.SAGE, 16, 40, 2))

	// sanity: connected components of the whole network
	cc := p.ConnectedComponents()
	comps := map[int32]bool{}
	for _, l := range cc {
		comps[l] = true
	}
	fmt.Printf("\nnetwork has %d connected component(s)\n", len(comps))
}
