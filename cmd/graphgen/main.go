// Command graphgen writes synthetic datasets in the library's text formats:
// edge lists for the graph generators and gSpan transaction files for the
// molecule database.
//
//	graphgen -kind ba -n 10000 -k 4 > ba.txt
//	graphgen -kind rmat -scale 14 -ef 8 > rmat.txt
//	graphgen -kind community -n 5000 -k 8 > comm.txt
//	graphgen -kind molecules -n 200 > mols.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func main() {
	log.SetFlags(0)
	var (
		kind  = flag.String("kind", "ba", "generator: ba | er | rmat | ws | grid | community | molecules")
		n     = flag.Int("n", 1000, "vertices (ba/er/ws/community) or transactions (molecules)")
		m     = flag.Int64("m", 0, "edges (er; default 4n)")
		k     = flag.Int("k", 4, "attachment edges (ba), ring degree (ws), communities (community)")
		scale = flag.Int("scale", 12, "log2 vertices (rmat)")
		ef    = flag.Int("ef", 8, "edge factor (rmat)")
		p     = flag.Float64("p", 0.05, "rewiring prob (ws)")
		rows  = flag.Int("rows", 32, "grid rows")
		cols  = flag.Int("cols", 32, "grid cols")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	if *kind == "molecules" {
		db := gen.MoleculeDB(*n, 9, 4, 0.9, *seed)
		if err := graph.WriteTransactions(os.Stdout, db); err != nil {
			log.Fatalf("graphgen: %v", err)
		}
		return
	}
	var g *graph.Graph
	switch *kind {
	case "ba":
		g = gen.BarabasiAlbert(*n, *k, *seed)
	case "er":
		edges := *m
		if edges == 0 {
			edges = int64(*n) * 4
		}
		g = gen.ErdosRenyi(*n, edges, *seed)
	case "rmat":
		g = gen.RMAT(*scale, *ef, *seed)
	case "ws":
		g = gen.WattsStrogatz(*n, *k, *p, *seed)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "community":
		g = gen.PlantedPartitionSparse(*n, *k, 10, 1, *seed).Graph
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		flag.Usage()
		os.Exit(2)
	}
	if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
		log.Fatalf("graphgen: %v", err)
	}
}
