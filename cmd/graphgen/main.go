// Command graphgen writes synthetic datasets in the library's text formats:
// edge lists for the graph generators and gSpan transaction files for the
// molecule database. With -blocks it instead writes the compressed block-CSR
// file (internal/storage) the out-of-core engines read; R-MAT graphs go
// through the streaming writer, so datasets larger than RAM can be built.
//
//	graphgen -kind ba -n 10000 -k 4 > ba.txt
//	graphgen -kind rmat -scale 14 -ef 8 > rmat.txt
//	graphgen -kind rmat -scale 22 -ef 26 -blocks rmat22.gsb   # out-of-core build
//	graphgen -kind community -n 5000 -k 8 > comm.txt
//	graphgen -kind molecules -n 200 > mols.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/storage"
)

func main() {
	log.SetFlags(0)
	var (
		kind       = flag.String("kind", "ba", "generator: ba | er | rmat | ws | grid | community | molecules")
		n          = flag.Int("n", 1000, "vertices (ba/er/ws/community) or transactions (molecules)")
		m          = flag.Int64("m", 0, "edges (er; default 4n)")
		k          = flag.Int("k", 4, "attachment edges (ba), ring degree (ws), communities (community)")
		scale      = flag.Int("scale", 12, "log2 vertices (rmat)")
		ef         = flag.Int("ef", 8, "edge factor (rmat)")
		p          = flag.Float64("p", 0.05, "rewiring prob (ws)")
		rows       = flag.Int("rows", 32, "grid rows")
		cols       = flag.Int("cols", 32, "grid cols")
		seed       = flag.Int64("seed", 42, "random seed")
		blocks     = flag.String("blocks", "", "write a compressed block-CSR file (.gsb) to this path instead of an edge list on stdout; rmat streams (never materializes the graph)")
		blockBytes = flag.Int("block-bytes", 0, "with -blocks: target encoded block size (0 = storage default)")
	)
	flag.Parse()

	if *kind == "molecules" {
		if *blocks != "" {
			log.Fatal("graphgen: -blocks applies to graph kinds, not molecules")
		}
		db := gen.MoleculeDB(*n, 9, 4, 0.9, *seed)
		if err := graph.WriteTransactions(os.Stdout, db); err != nil {
			log.Fatalf("graphgen: %v", err)
		}
		return
	}

	// R-MAT block files stream through the out-of-core writer: the graph is
	// never materialized, so scale can exceed RAM.
	if *blocks != "" && *kind == "rmat" {
		nv := 1 << *scale
		info, err := storage.WriteStream(*blocks, nv, false, func(emit func(u, v graph.V)) {
			gen.RMATStream(*scale, *ef, *seed, func(u, v graph.V) {
				emit(u, v)
				emit(v, u) // undirected: both arc directions, like graph.Builder
			})
		}, storage.Options{BlockBytes: *blockBytes})
		if err != nil {
			log.Fatalf("graphgen: %v", err)
		}
		printInfo(info)
		return
	}

	var g *graph.Graph
	switch *kind {
	case "ba":
		g = gen.BarabasiAlbert(*n, *k, *seed)
	case "er":
		edges := *m
		if edges == 0 {
			edges = int64(*n) * 4
		}
		g = gen.ErdosRenyi(*n, edges, *seed)
	case "rmat":
		g = gen.RMAT(*scale, *ef, *seed)
	case "ws":
		g = gen.WattsStrogatz(*n, *k, *p, *seed)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "community":
		g = gen.PlantedPartitionSparse(*n, *k, 10, 1, *seed).Graph
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		flag.Usage()
		os.Exit(2)
	}
	if *blocks != "" {
		info, err := storage.Write(*blocks, g, storage.Options{BlockBytes: *blockBytes})
		if err != nil {
			log.Fatalf("graphgen: %v", err)
		}
		printInfo(info)
		return
	}
	if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
		log.Fatalf("graphgen: %v", err)
	}
}

func printInfo(info *storage.Info) {
	fmt.Printf("wrote %s: %d vertices, %d arcs, %d blocks, %d B (raw CSR %d B, %.2fx)\n",
		info.Path, info.NumVertices, info.NumArcs, info.NumBlocks, info.FileBytes,
		info.RawCSRBytes, info.CompressionRatio())
}
