// Command benchstorage measures the out-of-core storage layer and writes
// BENCH_storage.json: the block file's compression ratio, a cache-size sweep
// (hit ratio and throughput at several budgets, LRU and MRU) for a PageRank
// full sweep and a sampled-GNN epoch, and — on full runs — the capacity
// claim: PageRank plus sampled-GNN minibatches over a 100M+-edge R-MAT built
// by the streaming writer, under a memory budget a small fraction of the raw
// CSR.
//
// The sweep's access sequences are identical in smoke and full mode (only
// the number of timing repetitions differs), so every cell's hit ratio is a
// deterministic function of (graph, budget, policy) and the verify gate can
// compare smoke cells against the committed baseline within a small band.
// RelThroughput is cached-vs-in-memory measured in the same process — the
// only cross-run-comparable timing figure.
//
// Before writing the report the command re-verifies, in-process, that the
// disk-backed GraphSource is bit-equivalent to the in-memory oracle: a full
// Scan against the CSR, PageRank ranks at workers 1 and 2, and a sampled-GNN
// epoch's loss trajectory. It exits 1 on any divergence, so a report can
// never gate on numbers from an inequivalent source.
//
//	go run ./cmd/benchstorage -out BENCH_storage.json        # full run (builds the capacity graph; minutes)
//	go run ./cmd/benchstorage -smoke -out BENCH_storage.json # sweep only; verify gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"graphsys/internal/gnn"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/hypo"
	"graphsys/internal/nn"
	"graphsys/internal/pregel"
	"graphsys/internal/storage"
	"graphsys/internal/tensor"
)

// Sweep workload shape — identical in smoke and full mode so hit ratios are
// comparable against the committed baseline.
const (
	sweepScale = 16
	sweepEF    = 8
	sweepSeed  = 42

	prIters = 6

	gnnBatches   = 24
	gnnBatchSize = 32
	gnnSeed      = 99
	gnnInDim     = 16
	gnnClasses   = 4
)

var (
	gnnFanouts = []int{10, 10}
	gnnDims    = []int{gnnInDim, 16, gnnClasses}
	// cache budget as a fraction of the raw CSR footprint (on top of the
	// resident degree table + block index)
	budgetFracs = []float64{0.05, 0.15, 0.40, 1.00}
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchstorage: %v\n", err)
	os.Exit(1)
}

// openProv opens a fresh cached provider over the sweep file at the given
// cache fraction. Each measurement uses its own provider so the hit/miss
// counters are a function of that run's access sequence alone.
func openProv(info *storage.Info, frac float64, workers int, pol storage.EvictPolicy) *storage.CachedProvider {
	budget := info.ResidentBytes + int64(frac*float64(info.RawCSRBytes))
	prov, err := storage.OpenCached(info.Path, budget, workers, pol)
	if err != nil {
		fatal(err)
	}
	return prov
}

// runPageRank runs the fixed PageRank workload: in-memory when prov is nil,
// through the disk-backed source otherwise.
func runPageRank(g *graph.Graph, prov *storage.CachedProvider) []float64 {
	cfg := pregel.Config{Workers: 1}
	var ranks []float64
	var err error
	if prov != nil {
		cfg.Source = prov
		ranks, _, err = pregel.PageRank(nil, prIters, cfg)
	} else {
		ranks, _, err = pregel.PageRank(g, prIters, cfg)
	}
	if err != nil {
		fatal(err)
	}
	return ranks
}

// splitmix is the deterministic per-vertex hash behind the synthetic GNN
// features and labels — no feature matrix is ever materialized for the full
// graph, which is what lets the capacity run label a 4M-vertex graph for free.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func vertexFeature(v graph.V, j int) float32 {
	h := splitmix(uint64(v)*0x100000001b3 + uint64(j))
	return float32(h>>40) / float32(1<<24)
}

func vertexLabel(v graph.V) int {
	return int(splitmix(uint64(v)^0xdeadbeef) % gnnClasses)
}

// gnnBatch samples one minibatch (from the in-memory graph or a source
// handle), builds its features and labels deterministically from vertex ids,
// and takes one forward/backward/Adam step on a per-batch model. Returns the
// batch loss.
func gnnBatch(g *graph.Graph, src storage.GraphSource, seeds []graph.V, rng *rand.Rand) float64 {
	var sub *gnn.SampledSubgraph
	if src != nil {
		var err error
		sub, err = gnn.NeighborSampleSource(src, seeds, gnnFanouts, rng)
		if err != nil {
			fatal(err)
		}
	} else {
		sub = gnn.NeighborSample(g, seeds, gnnFanouts, rng)
	}
	nv := len(sub.NewToOld)
	x := tensor.New(nv, gnnInDim)
	labels := make([]int, nv)
	for i, old := range sub.NewToOld {
		for j := 0; j < gnnInDim; j++ {
			x.Set(i, j, vertexFeature(old, j))
		}
		labels[i] = -1 // only seed rows contribute to the loss
		if i < len(seeds) {
			labels[i] = vertexLabel(old)
		}
	}
	m := gnn.NewModel(sub.Graph, gnn.GCN, gnnDims, 7)
	logits := m.Forward(x)
	loss, dLogits := nn.SoftmaxCrossEntropy(logits, labels)
	m.Backward(dLogits)
	nn.NewAdam(0.01).Step(m.Params())
	return loss
}

// runGNNEpoch runs the fixed sampled-GNN epoch: batches of batchSize seeds
// drawn from a seeded rng, each trained one step. Returns the summed loss
// (the bitwise equivalence signal).
func runGNNEpoch(g *graph.Graph, src storage.GraphSource, n, batches, batchSize int) float64 {
	rng := rand.New(rand.NewSource(gnnSeed))
	seeds := make([]graph.V, batchSize)
	var total float64
	for b := 0; b < batches; b++ {
		for i := range seeds {
			seeds[i] = graph.V(rng.Intn(n))
		}
		total += gnnBatch(g, src, seeds, rng)
	}
	return total
}

// timeIt returns ns per call of f under the configured benchtime.
func timeIt(f func()) int64 {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return r.NsPerOp()
}

// measureCell produces one sweep row: hit ratio and bytes read from a
// dedicated stats run (fresh provider, deterministic), timing from benchmark
// runs that recreate the provider per iteration (cold cache, honest).
func measureCell(g *graph.Graph, info *storage.Info, workload string, pol storage.EvictPolicy, frac float64, memNs int64) hypo.StorageRow {
	run := func(prov *storage.CachedProvider) {
		switch workload {
		case "pagerank":
			runPageRank(nil, prov)
		case "gnn-epoch":
			runGNNEpoch(nil, prov.Handle(0), info.NumVertices, gnnBatches, gnnBatchSize)
		}
	}
	statsProv := openProv(info, frac, 1, pol)
	run(statsProv)
	st := statsProv.Stats()
	budget := statsProv.Footprint().ResidentBytes + statsProv.Footprint().CacheBytes
	if err := statsProv.Close(); err != nil {
		fatal(err)
	}

	diskNs := timeIt(func() {
		prov := openProv(info, frac, 1, pol)
		run(prov)
		if err := prov.Close(); err != nil {
			fatal(err)
		}
	})
	ops := int64(prIters)
	if workload == "gnn-epoch" {
		ops = 1
	}
	return hypo.StorageRow{
		Workload:      workload,
		Evict:         pol.String(),
		BudgetFrac:    frac,
		BudgetBytes:   budget,
		HitRatio:      st.HitRatio(),
		BytesRead:     st.BytesRead,
		NsPerOp:       diskNs / ops,
		RelThroughput: float64(memNs) / float64(diskNs),
	}
}

// equivalenceCheck proves the disk source bit-equivalent to the in-memory
// oracle on the sweep graph: full adjacency scan, PageRank ranks at workers
// 1 and 2, and the sampled-GNN epoch's summed loss.
func equivalenceCheck(g *graph.Graph, info *storage.Info) map[string]any {
	identical := true
	detail := ""
	fail := func(format string, args ...any) {
		if identical {
			identical = false
			detail = fmt.Sprintf(format, args...)
		}
	}

	// decode equivalence: every vertex's adjacency, in order
	scanProv := openProv(info, 1.0, 1, storage.LRU)
	var next graph.V
	var arcs int64
	err := scanProv.Handle(0).Scan(func(u graph.V, adj []graph.V) error {
		if u != next {
			fail("scan order broke at vertex %d", u)
		}
		next++
		want := g.Neighbors(u)
		if len(adj) != len(want) {
			fail("vertex %d: %d neighbors decoded, CSR has %d", u, len(adj), len(want))
			return nil
		}
		for i := range adj {
			if adj[i] != want[i] {
				fail("vertex %d: neighbor[%d] decoded %d, CSR %d", u, i, adj[i], want[i])
			}
		}
		arcs += int64(len(adj))
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if arcs != g.NumArcs() {
		fail("scan visited %d arcs, CSR has %d", arcs, g.NumArcs())
	}
	scanProv.Close()

	// PageRank ranks, bitwise, at 1 and 2 workers
	for _, workers := range []int{1, 2} {
		memRanks, _, err := pregel.PageRank(g, prIters, pregel.Config{Workers: workers})
		if err != nil {
			fatal(err)
		}
		prov := openProv(info, 0.15, workers, storage.MRU)
		diskRanks, _, err := pregel.PageRank(nil, prIters, pregel.Config{Workers: workers, Source: prov})
		if err != nil {
			fatal(err)
		}
		prov.Close()
		for v := range memRanks {
			if math.Float64bits(memRanks[v]) != math.Float64bits(diskRanks[v]) {
				fail("pagerank workers=%d vertex=%d: mem %v disk %v", workers, v, memRanks[v], diskRanks[v])
				break
			}
		}
	}

	// sampled-GNN epoch: summed loss, bitwise
	memLoss := runGNNEpoch(g, nil, info.NumVertices, gnnBatches, gnnBatchSize)
	prov := openProv(info, 0.15, 1, storage.LRU)
	diskLoss := runGNNEpoch(nil, prov.Handle(0), info.NumVertices, gnnBatches, gnnBatchSize)
	prov.Close()
	if math.Float64bits(memLoss) != math.Float64bits(diskLoss) {
		fail("gnn epoch loss: mem %v disk %v", memLoss, diskLoss)
	}

	return map[string]any{
		"identical": identical,
		"detail":    detail,
		"scope": fmt.Sprintf("full scan vs CSR (%d arcs), pagerank ranks bitwise at workers 1/2, "+
			"sampled-GNN epoch loss bitwise (%d batches)", arcs, gnnBatches),
	}
}

// runCapacity builds the 100M+-edge R-MAT with the streaming writer (no
// in-memory graph is ever materialized), then runs budgeted PageRank and a
// sampled-GNN batch run against it.
func runCapacity(dir string, scale, ef int, budgetFrac float64) *hypo.StorageCapacity {
	path := filepath.Join(dir, "capacity.gsb")
	fmt.Fprintf(os.Stderr, "benchstorage: building capacity graph RMAT(scale=%d, ef=%d) at %s ...\n", scale, ef, path)
	n := 1 << scale
	info, err := storage.WriteStream(path, n, false, func(emit func(u, v graph.V)) {
		gen.RMATStream(scale, ef, sweepSeed, func(u, v graph.V) {
			emit(u, v)
			emit(v, u) // undirected: both arc directions, like graph.Builder
		})
	}, storage.Options{})
	if err != nil {
		fatal(err)
	}
	defer os.Remove(path)
	budget := int64(budgetFrac * float64(info.RawCSRBytes))
	cap := &hypo.StorageCapacity{
		Scale:       scale,
		EdgeFactor:  ef,
		Vertices:    info.NumVertices,
		Edges:       info.NumArcs / 2,
		Arcs:        info.NumArcs,
		FileBytes:   info.FileBytes,
		RawCSRBytes: info.RawCSRBytes,
		BudgetBytes: budget,
		BudgetFrac:  budgetFrac,
	}
	fmt.Fprintf(os.Stderr, "benchstorage: capacity graph: %d vertices, %d edges, file %d B, raw CSR %d B, budget %d B\n",
		info.NumVertices, cap.Edges, info.FileBytes, info.RawCSRBytes, budget)

	var st storage.IOStats

	// PageRank: cyclic full sweeps -> MRU. Trace on, so the per-round disk
	// I/O series lands in the obs trace — the capacity claim includes it.
	const capPRIters = 3
	prProv, err := storage.OpenCached(path, budget, 1, storage.MRU)
	if err != nil {
		fatal(err)
	}
	cfg := pregel.Config{Workers: 1, Source: prProv}
	cfg.RunOptions.Trace = true
	_, res, err := pregel.PageRank(nil, capPRIters, cfg)
	if err != nil {
		fatal(err)
	}
	// capPRIters+1 supersteps execute: iters sweeps that send rank mass, then
	// one final receive-and-halt round — the trace records one I/O row each.
	if res.Trace == nil || res.Trace.Storage == nil || len(res.Trace.Storage.Rounds) != res.Supersteps {
		fatal(fmt.Errorf("capacity pagerank: obs trace missing the per-round storage series"))
	}
	for _, r := range res.Trace.Storage.Rounds {
		fmt.Fprintf(os.Stderr, "benchstorage: capacity pagerank round %d: %d blocks, %d B read, %d hits / %d misses\n",
			r.Round, r.BlocksRead, r.BytesRead, r.Hits, r.Misses)
	}
	st = st.Add(prProv.Stats())
	prProv.Close()
	cap.Supersteps = res.Supersteps

	// sampled-GNN minibatches: random access -> LRU
	const capBatches, capBatchSize = 50, 64
	gnnProv, err := storage.OpenCached(path, budget, 1, storage.LRU)
	if err != nil {
		fatal(err)
	}
	runGNNEpoch(nil, gnnProv.Handle(0), n, capBatches, capBatchSize)
	st = st.Add(gnnProv.Stats())
	gnnProv.Close()
	cap.GNNBatches = capBatches
	fmt.Fprintf(os.Stderr, "benchstorage: capacity gnn done (%d batches)\n", capBatches)

	cap.HitRatio = st.HitRatio()
	cap.BytesRead = st.BytesRead
	cap.Completed = true
	return cap
}

func main() {
	out := flag.String("out", "BENCH_storage.json", "output path")
	smoke := flag.Bool("smoke", false, "sweep only (no capacity graph), one timing rep; same access sequences as the full run, so hit ratios stay comparable")
	capScale := flag.Int("capacity-scale", 22, "full runs: R-MAT scale of the capacity graph")
	capEF := flag.Int("capacity-ef", 30, "full runs: R-MAT edge factor of the capacity graph")
	capFrac := flag.Float64("capacity-budget-frac", 0.15, "full runs: capacity memory budget as a fraction of the raw CSR")
	testing.Init()
	flag.Parse()
	benchtime := "2x"
	if *smoke {
		benchtime = "1x"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fatal(err)
	}

	dir, err := os.MkdirTemp("", "benchstorage-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	g := gen.RMAT(sweepScale, sweepEF, sweepSeed)
	// 16K blocks: the smallest budget in the sweep must still hold one
	// decoded block, and finer blocks give the hit-ratio curve resolution
	info, err := storage.Write(filepath.Join(dir, "sweep.gsb"), g, storage.Options{BlockBytes: 1 << 14})
	if err != nil {
		fatal(err)
	}

	rep := hypo.StorageReport{
		GeneratedBy:      "cmd/benchstorage",
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Smoke:            *smoke,
		Scale:            sweepScale,
		EdgeFactor:       sweepEF,
		Vertices:         info.NumVertices,
		Arcs:             info.NumArcs,
		FileBytes:        info.FileBytes,
		RawCSRBytes:      info.RawCSRBytes,
		CompressionRatio: info.CompressionRatio(),
		Note: fmt.Sprintf("block-CSR sweep on RMAT(scale=%d, ef=%d): PageRank (%d supersteps, cyclic sweep) and a "+
			"sampled-GNN epoch (%d batches x %d seeds, fanouts %v) through a bounded block cache at several "+
			"budgets. budget_frac is the decoded-block cache as a fraction of the raw CSR, on top of the "+
			"resident degree table + index. Hit ratios are deterministic (same access sequence in smoke and "+
			"full runs); rel_throughput is disk/mem in one process. The capacity section is the full run's "+
			"out-of-core headline: streaming-written R-MAT, budget far below the raw CSR.",
			sweepScale, sweepEF, prIters, gnnBatches, gnnBatchSize, gnnFanouts),
	}

	memPRNs := timeIt(func() { runPageRank(g, nil) })
	memGNNNs := timeIt(func() { runGNNEpoch(g, nil, info.NumVertices, gnnBatches, gnnBatchSize) })

	for _, frac := range budgetFracs {
		for _, pol := range []storage.EvictPolicy{storage.LRU, storage.MRU} {
			rep.Rows = append(rep.Rows, measureCell(g, info, "pagerank", pol, frac, memPRNs))
		}
		rep.Rows = append(rep.Rows, measureCell(g, info, "gnn-epoch", storage.LRU, frac, memGNNNs))
	}

	rep.Check = equivalenceCheck(g, info)
	if rep.Check["identical"] != true {
		fmt.Fprintf(os.Stderr, "benchstorage: equivalence check failed: %v\n", rep.Check["detail"])
		os.Exit(1)
	}

	if !*smoke {
		rep.Capacity = runCapacity(dir, *capScale, *capEF, *capFrac)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("compression: raw %d B -> file %d B (%.2fx)\n", rep.RawCSRBytes, rep.FileBytes, rep.CompressionRatio)
	for _, r := range rep.Rows {
		fmt.Printf("%-10s %-4s budget=%.2f  hit=%.3f  %12d B read  %10d ns/op  %.2fx of mem\n",
			r.Workload, r.Evict, r.BudgetFrac, r.HitRatio, r.BytesRead, r.NsPerOp, r.RelThroughput)
	}
	if c := rep.Capacity; c != nil {
		fmt.Printf("capacity: %d edges under %d B budget (%.1f%% of raw CSR): %d supersteps + %d gnn batches, hit=%.3f, %d B read\n",
			c.Edges, c.BudgetBytes, 100*c.BudgetFrac, c.Supersteps, c.GNNBatches, c.HitRatio, c.BytesRead)
	}
	fmt.Printf("wrote %s (gomaxprocs=%d)\n", *out, rep.GOMAXPROCS)
}
