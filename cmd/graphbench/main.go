// Command graphbench runs the paper-reproduction experiments and prints
// their tables. With no arguments it lists the experiments; pass experiment
// ids (or "all") to run them.
//
//	graphbench                # list experiments
//	graphbench fig1 tab1-gpu  # run two experiments
//	graphbench all            # regenerate every table and claim
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphsys/internal/experiments"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphbench [all | <experiment-id>...]\n\n")
		list()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		list()
		return
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	for _, id := range ids {
		exp, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "graphbench: unknown experiment %q (run with no args to list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		table := exp.Run()
		table.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func list() {
	fmt.Println("experiments (paper artifact → id):")
	for _, e := range experiments.All() {
		fmt.Printf("  %-16s %s\n", e.ID, e.Title)
	}
}
