// Command graphbench runs the paper-reproduction experiments and prints
// their tables. With no arguments it lists the experiments; pass experiment
// ids (or "all") to run them.
//
//	graphbench                   # list experiments
//	graphbench fig1 tab1-gpu     # run two experiments
//	graphbench all               # regenerate every table and claim
//	graphbench -check all        # run hypotheses instead of printing tables:
//	                             # the two-run determinism invariant plus each
//	                             # experiment's typed claims (internal/hypo)
//	graphbench -trace out.json   # write an observability trace (one Pregel
//	                             # and one gnndist workload) to out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"graphsys/internal/cluster"
	"graphsys/internal/experiments"
	"graphsys/internal/hypo"
	"graphsys/internal/gnn"
	"graphsys/internal/gnndist"
	"graphsys/internal/graph/gen"
	"graphsys/internal/obs"
	"graphsys/internal/pregel"
	"graphsys/internal/storage"
	"graphsys/internal/tensor"
)

func main() {
	os.Exit(run())
}

// run is main's body with a normal return path, so the pprof writers
// installed by -cpuprofile/-mutexprofile always flush (os.Exit would skip
// their defers).
func run() int {
	traceOut := flag.String("trace", "", "write a JSON observability trace (traffic matrix, round series, worker skew) for one Pregel and one gnndist workload to this file")
	check := flag.Bool("check", false, "run each selected experiment's hypotheses (two-run determinism + typed claims) instead of printing tables; non-zero exit on any refuted hypothesis")
	artifacts := flag.String("artifacts", "hypo_runs/graphbench-check", "with -check: directory for the results.json/results.csv artifacts")
	par := flag.Int("parallelism", 0, "goroutines for the tensor compute kernels (0 = GOMAXPROCS); results are bitwise identical at any setting")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	mutexProf := flag.String("mutexprofile", "", "write a mutex-contention profile to this file — the messaging path's lock behaviour under load")
	source := flag.String("source", "mem", "graph adjacency source: mem (in-memory CSR) or disk (engines spill each graph to a compressed block file and read it through a bounded block cache; results are byte-identical)")
	memBudget := flag.Int64("memory-budget", 0, "with -source disk: total adjacency memory budget in bytes (resident index/degrees + decoded-block cache; 0 = half the raw CSR per graph); a budget too small for even one block per worker is a typed storage.ErrBudget, never an OOM")
	blockBytes := flag.Int("block-bytes", 0, "with -source disk: target compressed block size in bytes (0 = storage default)")
	evict := flag.String("evict", "lru", "with -source disk: block-cache eviction policy, lru or mru (mru wins on cyclic full scans)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphbench [-trace out.json] [-parallelism n] [-source mem|disk] [-memory-budget bytes] [-block-bytes n] [-evict lru|mru] [-cpuprofile cpu.out] [-mutexprofile mutex.out] [all | <experiment-id>...]\n\n")
		list()
	}
	flag.Parse()
	tensor.SetParallelism(*par)
	switch *source {
	case "mem":
		// default: nothing to install
	case "disk":
		pol, err := storage.ParseEvictPolicy(*evict)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphbench: %v\n", err)
			return 1
		}
		storage.SetDefault(&storage.Policy{
			Disk:        true,
			BudgetBytes: *memBudget,
			BlockBytes:  *blockBytes,
			Evict:       pol,
		})
		defer storage.SetDefault(nil)
	default:
		fmt.Fprintf(os.Stderr, "graphbench: -source must be mem or disk, got %q\n", *source)
		return 1
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "graphbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer func() {
			f, err := os.Create(*mutexProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphbench: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "graphbench: %v\n", err)
			}
		}()
	}
	args := flag.Args()
	if *traceOut != "" {
		if err := writeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "graphbench: %v\n", err)
			return 1
		}
		if len(args) == 0 {
			return 0
		}
	}
	if len(args) == 0 {
		list()
		return 0
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	if *check {
		return runChecks(ids, *artifacts)
	}
	for _, id := range ids {
		exp, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "graphbench: unknown experiment %q (run with no args to list)\n", id)
			return 1
		}
		start := time.Now()
		table, err := runExperiment(exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphbench: experiment %s failed: %v\n", id, err)
			return 1
		}
		table.Fprint(os.Stdout)
		// timing goes to stderr: stdout is the deterministic artifact
		// (results.txt, EXPERIMENTS.md) and wall time is a host property
		fmt.Fprintf(os.Stderr, "  [%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// runChecks evaluates each selected experiment's hypothesis set — the
// generic two-run determinism invariant plus its registered typed claims —
// and writes one artifact directory per experiment under artifactsDir.
func runChecks(ids []string, artifactsDir string) int {
	failed := 0
	for _, id := range ids {
		exp, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "graphbench: unknown experiment %q (run with no args to list)\n", id)
			return 1
		}
		hs := []hypo.Hypothesis{experiments.DeterminismHypothesis(exp)}
		if exp.Claims != nil {
			hs = append(hs, exp.Claims()...)
		}
		rep, err := runHypotheses(exp.ID, hs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphbench: checking %s panicked: %v\n", id, err)
			return 1
		}
		rep.Fprint(os.Stdout)
		if artifactsDir != "" {
			if err := rep.WriteDir(filepath.Join(artifactsDir, exp.ID)); err != nil {
				fmt.Fprintf(os.Stderr, "graphbench: writing artifacts: %v\n", err)
				return 1
			}
		}
		if !rep.Pass() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "graphbench: %d of %d experiment hypothesis sets FAILED\n", failed, len(ids))
		return 1
	}
	fmt.Printf("graphbench: all %d experiment hypothesis sets pass\n", len(ids))
	return 0
}

// runHypotheses converts a panic inside an experiment's claims (e.g. a
// cross-validation assertion) into an error, like runExperiment does.
func runHypotheses(name string, hs []hypo.Hypothesis) (rep *hypo.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return hypo.Run(name, hs), nil
}

// runExperiment runs one experiment, converting a panic inside it (the
// engines return errors from their entry points; the experiment helpers
// re-panic on the impossible ones) into an error so main can report it on
// stderr with a non-zero exit instead of a half-printed table and a stack.
func runExperiment(exp experiments.Experiment) (t *experiments.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return exp.Run(), nil
}

// writeTrace runs one Pregel workload (PageRank on an R-MAT graph over a
// 2-host NVLink-style topology) and one gnndist workload (synchronous
// training with a deliberate straggler) with the observability layer on, and
// writes both traces as one JSON document.
func writeTrace(path string) error {
	g := gen.RMAT(11, 8, 1)
	_, pr, err := pregel.PageRank(g, 10, pregel.Config{
		Workers: 8,
		RunOptions: cluster.RunOptions{
			Trace: true,
			Topology: func(net *cluster.Network) {
				cluster.RingTopology(net, 4, 0.05) // 2 hosts × 4 workers, fast intra-host links
			},
		},
	})
	if err != nil {
		return err
	}
	pr.Trace.Workload = "pregel/pagerank-rmat"

	task := gnn.SyntheticCommunityTask(300, 3, 2, 0.3, 17)
	dres, err := gnndist.TrainSync(task, gnndist.TrainerConfig{
		Workers:     4,
		TimeBudget:  20,
		WorkerSpeed: []float64{1, 1, 1, 2}, // worker 3 is a 2× straggler
		RunOptions:  cluster.RunOptions{Trace: true},
	})
	if err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	traces := []*obs.Trace{pr.Trace, dres.Trace}
	if err := obs.WriteAll(f, traces); err != nil {
		return err
	}
	for _, t := range traces {
		fmt.Printf("  trace %s\n", t.Summary())
	}
	fmt.Printf("graphbench: wrote %d traces to %s\n", len(traces), path)
	return nil
}

func list() {
	fmt.Println("experiments (paper artifact → id):")
	for _, e := range experiments.All() {
		fmt.Printf("  %-16s %s\n", e.ID, e.Title)
	}
}
