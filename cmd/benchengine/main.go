// Command benchengine measures whole pregel supersteps end to end and writes
// BENCH_engine.json: rounds/sec and allocs/round for PageRank and HashMin
// connected components at 1, 2 and 8 workers, across the three communication
// paths — dense slot combiner (the production path), map-keyed combiner (the
// PR 4 path) and legacy per-message mailboxes (the seed baseline).
//
// Where cmd/benchcomms measures raw substrate sends, this command measures
// what the survey's communication column actually predicts: end-to-end
// superstep throughput. Per-round figures are DIFFERENTIAL — each cell runs
// the same workload at two superstep counts and divides the deltas — so
// graph construction, buffer warm-up and gang startup cancel out and only
// the steady-state per-round increment remains. That is what makes the
// allocs/round ≈ 0 claim measurable from outside the engine.
//
// Before writing the report the command re-verifies, in-process, that all
// three paths produce bitwise-identical PageRank ranks and CC labels; it
// exits 1 on any divergence, so a report can never gate on numbers from
// inequivalent engines.
//
//	go run ./cmd/benchengine -out BENCH_engine.json        # full run
//	go run ./cmd/benchengine -smoke -out BENCH_engine.json # verify gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/hypo"
	"graphsys/internal/pregel"
)

var paths = []struct {
	name string
	path pregel.CommsPath
}{
	{"dense", pregel.CommsDense},
	{"map", pregel.CommsMap},
	{"legacy", pregel.CommsLegacy},
}

// runAlgo executes one measured run and returns the supersteps it took plus
// the delivered-message count.
func runAlgo(g *graph.Graph, algo string, workers, iters int, path pregel.CommsPath) (rounds int, msgs int64) {
	cfg := pregel.Config{Workers: workers, Comms: path}
	switch algo {
	case "pagerank":
		_, res, err := pregel.PageRank(g, iters, cfg)
		if err != nil {
			fatal(err)
		}
		return res.Supersteps, res.Net.Messages + res.Net.LocalMessages
	case "cc":
		cfg.MaxSupersteps = iters
		_, res, err := pregel.HashMinCC(g, cfg)
		if err != nil {
			fatal(err)
		}
		return res.Supersteps, res.Net.Messages + res.Net.LocalMessages
	}
	fatal(fmt.Errorf("unknown algo %q", algo))
	return 0, 0
}

// measureCell benchmarks one (algo, path, workers) cell differentially:
// a short and a long run of the same workload, per-round = Δ/Δrounds.
func measureCell(g *graph.Graph, algo string, workers, shortIters, longIters int, path pregel.CommsPath) hypo.EngineRow {
	bench := func(iters int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runAlgo(g, algo, workers, iters, path)
			}
		})
	}
	shortRounds, _ := runAlgo(g, algo, workers, shortIters, path)
	longRounds, msgs := runAlgo(g, algo, workers, longIters, path)
	dRounds := longRounds - shortRounds
	if dRounds <= 0 {
		fatal(fmt.Errorf("%s workers=%d: degenerate differential (%d vs %d rounds)", algo, workers, shortRounds, longRounds))
	}
	sr, lr := bench(shortIters), bench(longIters)
	nsPerRound := (lr.NsPerOp() - sr.NsPerOp()) / int64(dRounds)
	if nsPerRound < 1 {
		nsPerRound = 1
	}
	allocsPerRound := float64(lr.AllocsPerOp()-sr.AllocsPerOp()) / float64(dRounds)
	if allocsPerRound < 0 {
		allocsPerRound = 0
	}
	return hypo.EngineRow{
		Algo:           algo,
		Path:           pathName(path),
		Workers:        workers,
		Rounds:         longRounds,
		NsPerRound:     nsPerRound,
		RoundsPerSec:   1e9 / float64(nsPerRound),
		AllocsPerRound: allocsPerRound,
		MsgsPerRound:   msgs / int64(longRounds),
	}
}

func pathName(p pregel.CommsPath) string {
	for _, c := range paths {
		if c.path == p {
			return c.name
		}
	}
	return "?"
}

// equivalenceCheck re-runs both algorithms on every path and worker count and
// demands bitwise-identical results — the determinism contract the gates
// assume.
func equivalenceCheck(g *graph.Graph) map[string]any {
	identical := true
	detail := ""
	for _, workers := range []int{1, 2, 8} {
		var basePR []float64
		var baseCC []int32
		for _, c := range paths {
			pr, _, err := pregel.PageRank(g, 8, pregel.Config{Workers: workers, Comms: c.path})
			if err != nil {
				fatal(err)
			}
			cc, _, err := pregel.HashMinCC(g, pregel.Config{Workers: workers, Comms: c.path, MaxSupersteps: 100000})
			if err != nil {
				fatal(err)
			}
			if c.path == pregel.CommsDense {
				basePR, baseCC = pr, cc
				continue
			}
			for v := range basePR {
				if pr[v] != basePR[v] || cc[v] != baseCC[v] {
					identical = false
					detail = fmt.Sprintf("%s diverges from dense at workers=%d vertex=%d", c.name, workers, v)
				}
			}
		}
	}
	return map[string]any{
		"identical": identical,
		"detail":    detail,
		"paths":     "pagerank ranks and cc labels compared bitwise: dense vs map vs legacy at workers 1/2/8",
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchengine: %v\n", err)
	os.Exit(1)
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output path")
	smoke := flag.Bool("smoke", false, "few iterations; correctness of the harness, not stable timings")
	testing.Init()
	flag.Parse()
	benchtime := "3x"
	scale, deg := 12, 16
	shortIters, longIters := 10, 40
	if *smoke {
		benchtime = "1x"
		scale, deg = 9, 8
		shortIters, longIters = 4, 12
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fatal(err)
	}

	g := gen.RMAT(scale, deg, 42)
	// CC runs on a grid: HashMin propagation needs ~(rows+cols) supersteps to
	// converge there, which leaves a wide steady-state window for the
	// differential (on RMAT it converges in ~5 rounds and the denominator
	// collapses into noise)
	side := 64
	ccShort, ccLong := 10, 40
	if *smoke {
		side = 24
		ccShort, ccLong = 4, 12
	}
	ccg := gen.Grid(side, side)

	rep := hypo.EngineReport{
		GeneratedBy: "cmd/benchengine",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       *smoke,
		Note: fmt.Sprintf("end-to-end pregel supersteps: PageRank on RMAT(scale=%d, deg=%d), HashMin CC on a "+
			"%dx%d grid (long propagation horizon). Per-round figures are differential (long minus short "+
			"run over Δrounds), so setup cancels and only the steady-state increment remains. dense = "+
			"[]int32 slot-table combiner addressing; map = hash-map combiner (PR 4); legacy = per-message "+
			"locked mailboxes with receiver-side normalization. All paths produce bitwise-identical "+
			"results (equivalence_check).", scale, deg, side, side),
	}

	for _, workers := range []int{1, 2, 8} {
		for _, c := range paths {
			rep.Rows = append(rep.Rows, measureCell(g, "pagerank", workers, shortIters, longIters, c.path))
			rep.Rows = append(rep.Rows, measureCell(ccg, "cc", workers, ccShort, ccLong, c.path))
		}
	}

	rep.Check = equivalenceCheck(gen.RMAT(9, 8, 7))
	if rep.Check["identical"] != true {
		fmt.Fprintf(os.Stderr, "benchengine: equivalence check failed: %v\n", rep.Check["detail"])
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	for _, r := range rep.Rows {
		fmt.Printf("%-8s %-6s workers=%d  %9d ns/round (%8.1f rounds/s)  %6.2f allocs/round  %7d msgs/round\n",
			r.Algo, r.Path, r.Workers, r.NsPerRound, r.RoundsPerSec, r.AllocsPerRound, r.MsgsPerRound)
	}
	fmt.Printf("wrote %s (gomaxprocs=%d)\n", *out, rep.GOMAXPROCS)
}
