// Command benchcomms measures the cluster messaging substrate and writes
// BENCH_comms.json: msgs/sec and ns/msg for the staged per-sender path vs
// the legacy per-message-lock path, on a PageRank-style all-to-all workload
// (every worker sends round-robin to every destination, Exchange at each
// round boundary) at 1, 4 and 8 workers.
//
// The staged path's advantage is the elimination of per-message
// synchronisation: legacy Send pays one global-mutex acquisition
// (Network.Account) plus one per-destination mutex acquisition per message,
// while staged Send is a plain append into the sender's private outbox and
// all metering is batched at Exchange — one lock acquisition per sender per
// round. The delta is visible even on one core (fewer atomic/mutex ops per
// message) and grows with contention on multi-core machines.
//
//	go run ./cmd/benchcomms -out BENCH_comms.json        # full run
//	go run ./cmd/benchcomms -smoke -out BENCH_comms.json # verify gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"graphsys/internal/cluster"
	"graphsys/internal/hypo"
)

// workload runs rounds of the all-to-all pattern: each of `workers` sender
// goroutines sends `per` flat-8-byte messages round-robin across all
// destinations, then one Exchange. Total messages = rounds·workers·per.
func workload(mb *cluster.Mailboxes[int64], workers, rounds, per int) {
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					mb.Send(w, (w+i)%workers, int64(i))
				}
			}(w)
		}
		wg.Wait()
		mb.Exchange()
	}
}

func measure(workers, rounds, per int, legacy bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			b.StopTimer()
			net := cluster.NewNetwork(workers)
			var mb *cluster.Mailboxes[int64]
			if legacy {
				mb = cluster.NewMailboxesLegacy[int64](net, nil)
			} else {
				mb = cluster.NewMailboxes[int64](net, nil)
			}
			// one throwaway round so staged buffers reach steady-state capacity
			workload(mb, workers, 1, per)
			b.StartTimer()
			workload(mb, workers, rounds, per)
		}
	})
}

func main() {
	out := flag.String("out", "BENCH_comms.json", "output path")
	smoke := flag.Bool("smoke", false, "few iterations; correctness of the harness, not stable timings")
	testing.Init()
	flag.Parse()
	benchtime := "5x"
	rounds, per := 20, 1<<14
	if *smoke {
		benchtime = "1x"
		rounds, per = 4, 1<<11
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchcomms: %v\n", err)
		os.Exit(1)
	}

	// the report schema lives in internal/hypo so cmd/benchcheck gates read
	// exactly the shape this command writes
	rep := hypo.CommsReport{
		GeneratedBy: "cmd/benchcomms",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       *smoke,
		Note: "all-to-all workload: every worker sends round-robin to all destinations, " +
			"Exchange per round. legacy = per-message Network.Account + per-destination " +
			"mutex; staged = lock-free per-sender outboxes with batch metering at " +
			"Exchange. Both paths produce identical cluster.Stats on this workload.",
	}

	for _, workers := range []int{1, 4, 8} {
		lr := measure(workers, rounds, per, true)
		sr := measure(workers, rounds, per, false)
		perRun := int64(rounds * workers * per)
		row := hypo.CommsRow{
			Workers:      workers,
			MsgsPerRound: workers * per,
			LegacyNsMsg:  lr.NsPerOp() / perRun,
			StagedNsMsg:  sr.NsPerOp() / perRun,
		}
		if lr.NsPerOp() > 0 {
			row.LegacyMsgSec = float64(perRun) / (float64(lr.NsPerOp()) / 1e9)
		}
		if sr.NsPerOp() > 0 {
			row.StagedMsgSec = float64(perRun) / (float64(sr.NsPerOp()) / 1e9)
		}
		if row.LegacyMsgSec > 0 {
			row.Speedup = row.StagedMsgSec / row.LegacyMsgSec
		}
		rep.Rows = append(rep.Rows, row)
	}

	// accounting equivalence on the benchmark workload: staged and legacy
	// must meter identical Stats
	check := func(legacy bool) cluster.Stats {
		net := cluster.NewNetwork(4)
		var mb *cluster.Mailboxes[int64]
		if legacy {
			mb = cluster.NewMailboxesLegacy[int64](net, nil)
		} else {
			mb = cluster.NewMailboxes[int64](net, nil)
		}
		workload(mb, 4, 5, 1000)
		return net.Stats()
	}
	sStats, lStats := check(false), check(true)
	rep.Check = map[string]any{
		"staged":    sStats.String(),
		"legacy":    lStats.String(),
		"identical": sStats == lStats,
	}
	if sStats != lStats {
		fmt.Fprintf(os.Stderr, "benchcomms: accounting diverged: staged %v legacy %v\n", sStats, lStats)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcomms: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchcomms: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcomms: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Rows {
		fmt.Printf("workers=%d  legacy %6d ns/msg (%.2fM msgs/s)   staged %6d ns/msg (%.2fM msgs/s)   speedup %.2fx\n",
			r.Workers, r.LegacyNsMsg, r.LegacyMsgSec/1e6, r.StagedNsMsg, r.StagedMsgSec/1e6, r.Speedup)
	}
	fmt.Printf("wrote %s (gomaxprocs=%d)\n", *out, rep.GOMAXPROCS)
}
