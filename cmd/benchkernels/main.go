// Command benchkernels measures the tensor/aggregation compute kernels and
// writes BENCH_kernels.json: serial vs parallel ns/op and allocs/op for the
// dense matmul, the CSR NormAdj SpMM, and a full GCN training epoch, next to
// the numbers recorded at the growth seed on the same workloads. Parallel
// speedup scales with GOMAXPROCS; the report records the machine's value so
// single-core runs are not misread as regressions.
//
//	go run ./cmd/benchkernels -out BENCH_kernels.json        # full run
//	go run ./cmd/benchkernels -smoke -out BENCH_kernels.json # verify gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"graphsys/internal/gnn"
	"graphsys/internal/graph/gen"
	"graphsys/internal/hypo"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// measure runs fn under testing.Benchmark at the given kernel parallelism.
func measure(p int, fn func(b *testing.B)) testing.BenchmarkResult {
	tensor.SetParallelism(p)
	defer tensor.SetParallelism(0)
	return testing.Benchmark(fn)
}

// seed baselines (hypo.SeedBaseline): measured at the growth seed (commit
// bfb22a5) with the same workloads on the reference container, before the
// kernel layer existed. The report schema lives in internal/hypo so that
// cmd/benchcheck gates read exactly the shape this command writes.
func kernel(name, workload string, seed *hypo.SeedBaseline, fn func(b *testing.B)) hypo.Kernel {
	serial := measure(1, fn)
	parallel := measure(0, fn) // 0 = GOMAXPROCS workers
	k := hypo.Kernel{
		Name:             name,
		Workload:         workload,
		SerialNsOp:       serial.NsPerOp(),
		ParallelNsOp:     parallel.NsPerOp(),
		SerialAllocsOp:   int64(serial.AllocsPerOp()),
		ParallelAllocsOp: int64(parallel.AllocsPerOp()),
		BytesOp:          int64(parallel.AllocedBytesPerOp()),
		Seed:             seed,
	}
	if k.ParallelNsOp > 0 {
		k.Speedup = float64(k.SerialNsOp) / float64(k.ParallelNsOp)
	}
	return k
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "output path")
	smoke := flag.Bool("smoke", false, "few iterations; correctness of the harness, not stable timings")
	testing.Init()
	flag.Parse()
	benchtime := "20x"
	if *smoke {
		benchtime = "2x"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchkernels: %v\n", err)
		os.Exit(1)
	}

	rep := hypo.KernelsReport{
		GeneratedBy: "cmd/benchkernels",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       *smoke,
		Note: "serial = parallelism 1, parallel = GOMAXPROCS workers; kernels are " +
			"bitwise-deterministic at any setting. Parallel speedup requires multiple " +
			"cores: on a single-core machine (gomaxprocs=1) the parallel column " +
			"exercises the pool without hardware parallelism and speedup ~1 is expected. " +
			"seed_baseline entries were measured at the growth seed on the same workloads.",
	}

	// 1. Dense matmul, 256x256x256 (acceptance workload).
	a := tensor.Xavier(256, 256, 1)
	bm := tensor.Xavier(256, 256, 2)
	mmOut := tensor.New(256, 256)
	rep.Kernels = append(rep.Kernels, kernel(
		"matmul_256", "MatMulInto 256x256 x 256x256",
		&hypo.SeedBaseline{NsOp: 8108655, AllocsOp: 2, BytesOp: 262192},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(a, bm, mmOut)
			}
		}))

	// 2. NormAdj CSR SpMM on the seed-baseline power-law graph (~32k vertices).
	g := gen.RMAT(15, 12, 1)
	adj := gnn.NewNormAdj(g)
	h := tensor.Xavier(g.NumVertices(), 32, 3)
	aggOut := tensor.New(g.NumVertices(), 32)
	rep.Kernels = append(rep.Kernels, kernel(
		"normadj_apply_rmat15", fmt.Sprintf("NormAdj.ApplyInto, RMAT(15,12) n=%d, 32 cols", g.NumVertices()),
		&hypo.SeedBaseline{NsOp: 22485614, AllocsOp: 2, BytesOp: 4194352},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				adj.ApplyInto(h, aggOut)
			}
		}))

	// 3. NormAdj SpMM at the 50k-vertex acceptance scale.
	if !*smoke {
		g50 := gen.BarabasiAlbert(50000, 8, 4)
		adj50 := gnn.NewNormAdj(g50)
		h50 := tensor.Xavier(50000, 32, 5)
		out50 := tensor.New(50000, 32)
		rep.Kernels = append(rep.Kernels, kernel(
			"normadj_apply_ba50k", "NormAdj.ApplyInto, BarabasiAlbert(50000,8), 32 cols", nil,
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					adj50.ApplyInto(h50, out50)
				}
			}))
	}

	// 4. Full GCN training epoch (forward + loss + backward + Adam).
	task := gnn.SyntheticCommunityTask(300, 3, 2, 0.3, 17)
	masked := make([]int, len(task.Labels))
	for i, l := range task.Labels {
		if !task.TrainMask[i] {
			masked[i] = -1
		} else {
			masked[i] = l
		}
	}
	rep.Kernels = append(rep.Kernels, kernel(
		"train_epoch_gcn", "GCN epoch, SyntheticCommunityTask(300,3), hidden 16",
		&hypo.SeedBaseline{NsOp: 260512, AllocsOp: 146, BytesOp: 158722},
		func(b *testing.B) {
			m := gnn.NewModel(task.G, gnn.GCN, []int{task.X.Cols, 16, task.NumClasses}, 1)
			opt := nn.NewAdam(0.01)
			epoch := func() {
				logits := m.Forward(task.X)
				_, dLogits := nn.SoftmaxCrossEntropy(logits, masked)
				m.Backward(dLogits)
				opt.Step(m.Params())
			}
			// one throwaway epoch so one-time allocations (Adam moment
			// state, lazily grown activation buffers) land before the timer:
			// without it, allocs/op depends on b.N and the smoke run's 2
			// iterations read ~2x higher than the full run's 20.
			epoch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				epoch()
			}
		}))

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchkernels: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchkernels: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchkernels: %v\n", err)
		os.Exit(1)
	}
	for _, k := range rep.Kernels {
		fmt.Printf("%-22s serial %12d ns/op   parallel %12d ns/op   speedup %.2fx   allocs %d -> %d\n",
			k.Name, k.SerialNsOp, k.ParallelNsOp, k.Speedup, k.SerialAllocsOp, k.ParallelAllocsOp)
	}
	fmt.Printf("wrote %s (gomaxprocs=%d)\n", *out, rep.GOMAXPROCS)
}
