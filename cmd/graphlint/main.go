// Command graphlint runs the repo's contract checks (internal/lint) over the
// module and prints positioned diagnostics in deterministic order.
//
//	go run ./cmd/graphlint ./...            # whole module
//	go run ./cmd/graphlint ./internal/pregel
//	go run ./cmd/graphlint -json ./...      # machine-readable output
//	go run ./cmd/graphlint -checks maprange,wallclock ./...
//	go run ./cmd/graphlint -doc             # list checks and their contracts
//	go run ./cmd/graphlint -timing -budget 5s ./...   # the make lint target
//
// -root/-module point the driver at a tree other than the enclosing module
// (the golden fixtures are the motivating case):
//
//	go run ./cmd/graphlint -root internal/lint/testdata/src -module fixture ./...
//
// Baselines let a new check land warn-only on legacy paths while gating new
// code: -write-baseline snapshots the current diagnostics as sorted JSON;
// -baseline filters them out of later runs (matching check+file+message with
// multiplicity, so legacy files can move lines without churn) and only fresh
// diagnostics fail the run.
//
//	go run ./cmd/graphlint -write-baseline lint-baseline.json ./...
//	go run ./cmd/graphlint -baseline lint-baseline.json ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 driver error (including a
// blown -budget).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphsys/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	doc := flag.Bool("doc", false, "print the checks and the contracts they enforce")
	rootFlag := flag.String("root", "", "analyse this tree instead of the enclosing module (e.g. the lint fixtures)")
	moduleFlag := flag.String("module", "", "module path of -root (import-resolution prefix; default: enclosing module's)")
	baselineFlag := flag.String("baseline", "", "filter diagnostics through this accepted-diagnostics baseline file")
	writeBaseline := flag.String("write-baseline", "", "write the run's diagnostics to this baseline file and exit 0")
	timing := flag.Bool("timing", false, "print per-check wall time to stderr")
	budget := flag.Duration("budget", 0, "fail (exit 2) if the whole run exceeds this duration (0 = no budget)")
	flag.Parse()

	if *doc {
		for _, c := range lint.Checks {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fail(err)
	}
	root, modpath, err := lint.ModuleRoot(".")
	if err != nil {
		fail(err)
	}
	if *rootFlag != "" {
		if root, err = filepath.Abs(*rootFlag); err != nil {
			fail(err)
		}
	}
	if *moduleFlag != "" {
		modpath = *moduleFlag
	}
	cfg := lint.Default()
	cfg.ModulePath = modpath

	diags, timings, err := lint.RunTimed(root, cfg, checks)
	if err != nil {
		fail(err)
	}
	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "graphlint: %-12s %8.3fs\n", t.Name, t.Seconds)
		}
	}
	if scopes := argScopes(root, flag.Args()); scopes != nil {
		kept := diags[:0]
		for _, d := range diags {
			for _, s := range scopes {
				if s == "" || d.File == s || strings.HasPrefix(d.File, s+"/") {
					kept = append(kept, d)
					break
				}
			}
		}
		diags = kept
	}

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "graphlint: wrote %d diagnostic(s) to baseline %s\n", len(diags), *writeBaseline)
		checkBudget(timings, *budget)
		return
	}
	if *baselineFlag != "" {
		base, err := lint.LoadBaseline(*baselineFlag)
		if err != nil {
			fail(err)
		}
		var accepted int
		var unused []lint.BaselineEntry
		diags, accepted, unused = lint.ApplyBaseline(diags, base)
		if accepted > 0 {
			fmt.Fprintf(os.Stderr, "graphlint: %d diagnostic(s) accepted by baseline %s\n", accepted, *baselineFlag)
		}
		for _, e := range unused {
			fmt.Fprintf(os.Stderr, "graphlint: baseline entry no longer occurs (re-tighten the baseline): %s %s: %s (×%d)\n",
				e.Check, e.File, e.Message, e.Count)
		}
	}

	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // `[]`, not `null`
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "graphlint: %d contract violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
	checkBudget(timings, *budget)
}

// checkBudget enforces -budget against the run's total wall time, keeping
// the interprocedural passes honest in make lint.
func checkBudget(timings []lint.Timing, budget time.Duration) {
	if budget <= 0 {
		return
	}
	for _, t := range timings {
		if t.Name == "total" && t.Seconds > budget.Seconds() {
			fail(fmt.Errorf("graphlint: run took %.3fs, over the %s budget", t.Seconds, budget))
		}
	}
}

func selectChecks(names string) ([]*lint.Check, error) {
	if names == "" {
		return lint.Checks, nil
	}
	byName := map[string]*lint.Check{}
	for _, c := range lint.Checks {
		byName[c.Name] = c
	}
	var out []*lint.Check
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("graphlint: unknown check %q (run -doc for the list)", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// argScopes maps CLI package arguments to module-relative dir prefixes used
// to filter diagnostics. "./..." (or no args) means the whole module → nil.
func argScopes(root string, args []string) []string {
	var scopes []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return nil
		}
		a = strings.TrimSuffix(a, "/...")
		abs, err := filepath.Abs(a)
		if err != nil {
			continue
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		if rel == "." {
			return nil
		}
		scopes = append(scopes, filepath.ToSlash(rel))
	}
	return scopes
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
