package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"graphsys/internal/lint"
)

// buildTool compiles graphlint once per test binary into a temp dir and
// returns the executable path plus the module root to run it from.
func buildTool(t *testing.T) (tool, root string) {
	t.Helper()
	root, _, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	tool = filepath.Join(t.TempDir(), "graphlint")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/graphlint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/graphlint: %v\n%s", err, out)
	}
	return tool, root
}

// TestPlantedHotAllocFails is the end-to-end negative test: pointed at a tree
// with a planted hot-path allocation, the tool must exit 1 and the output
// must name hotalloc with a root→site call chain.
func TestPlantedHotAllocFails(t *testing.T) {
	tool, root := buildTool(t)

	dir := t.TempDir()
	pkg := filepath.Join(dir, "internal", "planted")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package planted

//lint:hotpath the planted root
func Hot(n int) { helper(n) }

func helper(n int) {
	_ = make([]int, n)
}
`
	if err := os.WriteFile(filepath.Join(pkg, "planted.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(tool, "-root", dir, "-module", "planted", "-checks", "hotalloc", "./...")
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on a planted allocation, got err=%v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "hotalloc") {
		t.Fatalf("output does not name the hotalloc check:\n%s", out)
	}
	if !strings.Contains(out, "internal/planted.Hot → helper") {
		t.Fatalf("output does not carry the root→site call chain:\n%s", out)
	}
}

// TestFixtureTreeFailsWithChains runs the tool over the committed golden
// fixtures: diagnostics there are expected (that is what the fixtures are
// for), so exit must be 1 and chains must render.
func TestFixtureTreeFailsWithChains(t *testing.T) {
	tool, root := buildTool(t)
	cmd := exec.Command(tool, "-root", filepath.Join("internal", "lint", "testdata", "src"), "-module", "fixture", "-checks", "hotalloc,lockorder", "./...")
	cmd.Dir = root
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 over the fixtures, got %v\n%s", err, &stdout)
	}
	out := stdout.String()
	for _, want := range []string{"hotalloc", "lockorder", "→"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fixture output missing %q:\n%s", want, out)
		}
	}
}

// TestBaselineFlagAcceptsKnownDiagnostics round-trips -write-baseline /
// -baseline over the fixture tree: a written baseline must absorb every
// diagnostic (exit 0), and -json must then emit an empty array.
func TestBaselineFlagAcceptsKnownDiagnostics(t *testing.T) {
	tool, root := buildTool(t)
	base := filepath.Join(t.TempDir(), "base.json")

	write := exec.Command(tool, "-root", filepath.Join("internal", "lint", "testdata", "src"), "-module", "fixture", "-write-baseline", base, "./...")
	write.Dir = root
	if out, err := write.CombinedOutput(); err != nil {
		t.Fatalf("-write-baseline: %v\n%s", err, out)
	}

	read := exec.Command(tool, "-root", filepath.Join("internal", "lint", "testdata", "src"), "-module", "fixture", "-baseline", base, "-json", "./...")
	read.Dir = root
	var stdout, stderr bytes.Buffer
	read.Stdout, read.Stderr = &stdout, &stderr
	if err := read.Run(); err != nil {
		t.Fatalf("-baseline run must exit 0 when the baseline absorbs everything: %v\nstderr:\n%s", err, &stderr)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, &stdout)
	}
	if len(diags) != 0 {
		t.Fatalf("baseline left %d fresh diagnostics: %+v", len(diags), diags)
	}
	if !strings.Contains(stderr.String(), "accepted by baseline") {
		t.Fatalf("stderr does not report the accepted count:\n%s", &stderr)
	}
}

// TestBudgetFlag pins the -budget contract: an absurdly small budget fails
// (exit 2) even on a clean tree.
func TestBudgetFlag(t *testing.T) {
	tool, root := buildTool(t)
	cmd := exec.Command(tool, "-budget", "1ns", "-checks", "maprange", "./internal/det")
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on a blown budget, got %v\nstderr:\n%s", err, &stderr)
	}
	if !strings.Contains(stderr.String(), "budget") {
		t.Fatalf("stderr does not mention the budget:\n%s", &stderr)
	}
}
