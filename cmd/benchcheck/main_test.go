package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphsys/internal/hypo"
	"graphsys/internal/serve"
)

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func fixtures(t *testing.T) (dir string, kernels, comms *hypo.KernelsReport, commsRep *hypo.CommsReport) {
	t.Helper()
	dir = t.TempDir()
	k := &hypo.KernelsReport{
		GeneratedBy: "cmd/benchkernels", GOMAXPROCS: 1,
		Kernels: []hypo.Kernel{
			{Name: "matmul_256", SerialAllocsOp: 1, ParallelAllocsOp: 1},
			{Name: "train_epoch_gcn", SerialAllocsOp: 19, ParallelAllocsOp: 19},
		},
	}
	c := &hypo.CommsReport{
		GeneratedBy: "cmd/benchcomms", GOMAXPROCS: 1,
		Rows: []hypo.CommsRow{
			{Workers: 1, LegacyMsgSec: 20e6, StagedMsgSec: 160e6, Speedup: 8.0},
			{Workers: 4, LegacyMsgSec: 20e6, StagedMsgSec: 130e6, Speedup: 6.5},
			{Workers: 8, LegacyMsgSec: 20e6, StagedMsgSec: 120e6, Speedup: 6.0},
		},
		Check: map[string]any{"identical": true},
	}
	return dir, k, k, c
}

// engineFixture is a healthy BENCH_engine.json: dense allocation-free and
// dominating map (≥1.3× at 8 workers) and legacy at every worker count.
func engineFixture() *hypo.EngineReport {
	rep := &hypo.EngineReport{
		GeneratedBy: "cmd/benchengine", GOMAXPROCS: 1,
		Check: map[string]any{"identical": true},
	}
	for _, w := range []int{1, 2, 8} {
		base := 10000.0 / float64(w)
		for _, algo := range []string{"pagerank", "cc"} {
			rep.Rows = append(rep.Rows,
				hypo.EngineRow{Algo: algo, Path: "dense", Workers: w, Rounds: 40, RoundsPerSec: base * 1.6, AllocsPerRound: 0},
				hypo.EngineRow{Algo: algo, Path: "map", Workers: w, Rounds: 40, RoundsPerSec: base, AllocsPerRound: 0},
				hypo.EngineRow{Algo: algo, Path: "legacy", Workers: w, Rounds: 40, RoundsPerSec: base / 2, AllocsPerRound: 40},
			)
		}
	}
	return rep
}

// servingFixture materialises the real default sweep (it is deterministic and
// fast), since the serving gates re-simulate from the embedded params.
func servingFixture(t *testing.T) *hypo.ServingReport {
	t.Helper()
	params := hypo.DefaultServingParams()
	rep := &hypo.ServingReport{GeneratedBy: "cmd/benchserving", Params: params}
	for _, pol := range serve.Policies {
		for _, lambda := range params.Lambdas {
			pt, err := hypo.MeasureServingPoint(params, pol, lambda, params.Seed)
			if err != nil {
				t.Fatalf("measure %s@%.2f: %v", pol, lambda, err)
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep
}

// storageFixture is a healthy BENCH_storage.json: good compression, a rising
// hit-ratio curve, largest-budget cells well over the throughput floor, and a
// completed 100M+-edge capacity run under 15% of the raw CSR.
func storageFixture() *hypo.StorageReport {
	return &hypo.StorageReport{
		GeneratedBy: "cmd/benchstorage", GOMAXPROCS: 1,
		Scale: 16, EdgeFactor: 8, Vertices: 1 << 16, Arcs: 1 << 20,
		FileBytes: 1 << 20, RawCSRBytes: 5 << 20, CompressionRatio: 2.5,
		Rows: []hypo.StorageRow{
			{Workload: "pagerank", Evict: "mru", BudgetFrac: 0.05, BudgetBytes: 5 << 15, HitRatio: 0.98, BytesRead: 8 << 20, NsPerOp: 5e6, RelThroughput: 0.5},
			{Workload: "pagerank", Evict: "mru", BudgetFrac: 1.00, BudgetBytes: 5 << 20, HitRatio: 1.0, BytesRead: 1 << 20, NsPerOp: 3e6, RelThroughput: 0.9},
			{Workload: "gnn-epoch", Evict: "lru", BudgetFrac: 0.05, BudgetBytes: 5 << 15, HitRatio: 0.05, BytesRead: 300 << 20, NsPerOp: 2e9, RelThroughput: 0.2},
			{Workload: "gnn-epoch", Evict: "lru", BudgetFrac: 1.00, BudgetBytes: 5 << 20, HitRatio: 0.99, BytesRead: 1 << 20, NsPerOp: 6e8, RelThroughput: 0.75},
		},
		Capacity: &hypo.StorageCapacity{
			Scale: 22, EdgeFactor: 30, Vertices: 1 << 22, Edges: 110e6, Arcs: 220e6,
			FileBytes: 400 << 20, RawCSRBytes: 900 << 20, BudgetBytes: 135 << 20, BudgetFrac: 0.15,
			Supersteps: 3, GNNBatches: 50, HitRatio: 0.9, BytesRead: 2 << 30, Completed: true,
		},
		Check: map[string]any{"identical": true},
	}
}

// writeStorageFixtures writes a healthy storage fresh/baseline pair.
func writeStorageFixtures(t *testing.T, dir string) {
	t.Helper()
	st := storageFixture()
	writeJSON(t, filepath.Join(dir, "st.smoke.json"), st)
	writeJSON(t, filepath.Join(dir, "st.json"), st)
}

func runWith(t *testing.T, dir string) (int, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run([]string{
		"-kernels", filepath.Join(dir, "k.smoke.json"),
		"-kernels-baseline", filepath.Join(dir, "k.json"),
		"-comms", filepath.Join(dir, "c.smoke.json"),
		"-comms-baseline", filepath.Join(dir, "c.json"),
		"-serving", filepath.Join(dir, "s.smoke.json"),
		"-serving-baseline", filepath.Join(dir, "s.json"),
		"-engine", filepath.Join(dir, "e.smoke.json"),
		"-engine-baseline", filepath.Join(dir, "e.json"),
		"-storage", filepath.Join(dir, "st.smoke.json"),
		"-storage-baseline", filepath.Join(dir, "st.json"),
		"-artifacts", filepath.Join(dir, "hypo_runs", "bench-check"),
	}, &out, &errb)
	return code, out.String() + errb.String()
}

func TestExitZeroOnHealthyRun(t *testing.T) {
	dir, fresh, baseline, comms := fixtures(t)
	serving := servingFixture(t)
	writeJSON(t, filepath.Join(dir, "k.smoke.json"), fresh)
	writeJSON(t, filepath.Join(dir, "k.json"), baseline)
	writeJSON(t, filepath.Join(dir, "c.smoke.json"), comms)
	writeJSON(t, filepath.Join(dir, "c.json"), comms)
	writeJSON(t, filepath.Join(dir, "s.smoke.json"), serving)
	writeJSON(t, filepath.Join(dir, "s.json"), serving)
	eng := engineFixture()
	writeJSON(t, filepath.Join(dir, "e.smoke.json"), eng)
	writeJSON(t, filepath.Join(dir, "e.json"), eng)
	writeStorageFixtures(t, dir)
	code, out := runWith(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "hypo_runs", "bench-check", "results.csv")); err != nil {
		t.Fatalf("artifact missing: %v", err)
	}
}

// TestExitNonZeroOnInjectedRegression is the required negative test at the
// binary level: a scratch baseline with allocs/op >20% below the fresh run's
// must drive a non-zero exit.
func TestExitNonZeroOnInjectedRegression(t *testing.T) {
	dir, fresh, _, comms := fixtures(t)
	scratch := &hypo.KernelsReport{
		GeneratedBy: "cmd/benchkernels", GOMAXPROCS: 1,
		Kernels: []hypo.Kernel{
			{Name: "matmul_256", SerialAllocsOp: 1, ParallelAllocsOp: 1},
			{Name: "train_epoch_gcn", SerialAllocsOp: 10, ParallelAllocsOp: 10}, // fresh has 19: a 90% regression
		},
	}
	writeJSON(t, filepath.Join(dir, "k.smoke.json"), fresh)
	writeJSON(t, filepath.Join(dir, "k.json"), scratch)
	writeJSON(t, filepath.Join(dir, "c.smoke.json"), comms)
	writeJSON(t, filepath.Join(dir, "c.json"), comms)
	serving := servingFixture(t)
	writeJSON(t, filepath.Join(dir, "s.smoke.json"), serving)
	writeJSON(t, filepath.Join(dir, "s.json"), serving)
	eng := engineFixture()
	writeJSON(t, filepath.Join(dir, "e.smoke.json"), eng)
	writeJSON(t, filepath.Join(dir, "e.json"), eng)
	writeStorageFixtures(t, dir)
	code, out := runWith(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on injected regression\n%s", code, out)
	}
	if !strings.Contains(out, "kernels-allocs") || !strings.Contains(out, "FAIL") {
		t.Fatalf("output does not name the failing gate:\n%s", out)
	}
}

// TestExitNonZeroOnServingLatencyRegression injects a fake p99 latency
// regression into the fresh serving report: the exact-equality serving gates
// must drive a non-zero exit and name the failing gate.
func TestExitNonZeroOnServingLatencyRegression(t *testing.T) {
	dir, fresh, baseline, comms := fixtures(t)
	writeJSON(t, filepath.Join(dir, "k.smoke.json"), fresh)
	writeJSON(t, filepath.Join(dir, "k.json"), baseline)
	writeJSON(t, filepath.Join(dir, "c.smoke.json"), comms)
	writeJSON(t, filepath.Join(dir, "c.json"), comms)
	good := servingFixture(t)
	writeJSON(t, filepath.Join(dir, "s.json"), good)
	bad := servingFixture(t)
	bad.Points[5].P99 *= 3 // a fake scheduler latency regression
	writeJSON(t, filepath.Join(dir, "s.smoke.json"), bad)
	eng := engineFixture()
	writeJSON(t, filepath.Join(dir, "e.smoke.json"), eng)
	writeJSON(t, filepath.Join(dir, "e.json"), eng)
	writeStorageFixtures(t, dir)
	code, out := runWith(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on injected serving regression\n%s", code, out)
	}
	if !strings.Contains(out, "serving-baseline-exact") || !strings.Contains(out, "FAIL") {
		t.Fatalf("output does not name the failing serving gate:\n%s", out)
	}
}

// TestExitNonZeroOnEngineAllocsRegression is the engine gate's negative test: a fresh
// engine report whose dense steady-state supersteps suddenly allocate must
// drive exit 1, and the output must name the engine-allocs gate.
func TestExitNonZeroOnEngineAllocsRegression(t *testing.T) {
	dir, fresh, baseline, comms := fixtures(t)
	writeJSON(t, filepath.Join(dir, "k.smoke.json"), fresh)
	writeJSON(t, filepath.Join(dir, "k.json"), baseline)
	writeJSON(t, filepath.Join(dir, "c.smoke.json"), comms)
	writeJSON(t, filepath.Join(dir, "c.json"), comms)
	serving := servingFixture(t)
	writeJSON(t, filepath.Join(dir, "s.smoke.json"), serving)
	writeJSON(t, filepath.Join(dir, "s.json"), serving)
	writeJSON(t, filepath.Join(dir, "e.json"), engineFixture())
	bad := engineFixture()
	for i := range bad.Rows {
		if bad.Rows[i].Path == "dense" && bad.Rows[i].Algo == "pagerank" {
			bad.Rows[i].AllocsPerRound = 37 // fake garbage creeping back into the hot path
		}
	}
	writeJSON(t, filepath.Join(dir, "e.smoke.json"), bad)
	writeStorageFixtures(t, dir)
	code, out := runWith(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on injected engine allocs regression\n%s", code, out)
	}
	if !strings.Contains(out, "engine-allocs") || !strings.Contains(out, "FAIL") {
		t.Fatalf("output does not name the failing engine gate:\n%s", out)
	}
}

// TestExitNonZeroOnDenseDominanceRegression: a fresh report where the dense
// path has lost its edge over the map path at 8 workers must fail the
// headline gate.
func TestExitNonZeroOnDenseDominanceRegression(t *testing.T) {
	dir, fresh, baseline, comms := fixtures(t)
	writeJSON(t, filepath.Join(dir, "k.smoke.json"), fresh)
	writeJSON(t, filepath.Join(dir, "k.json"), baseline)
	writeJSON(t, filepath.Join(dir, "c.smoke.json"), comms)
	writeJSON(t, filepath.Join(dir, "c.json"), comms)
	serving := servingFixture(t)
	writeJSON(t, filepath.Join(dir, "s.smoke.json"), serving)
	writeJSON(t, filepath.Join(dir, "s.json"), serving)
	writeJSON(t, filepath.Join(dir, "e.json"), engineFixture())
	bad := engineFixture()
	for i := range bad.Rows {
		if bad.Rows[i].Path == "dense" && bad.Rows[i].Algo == "pagerank" && bad.Rows[i].Workers == 8 {
			r, _ := bad.Row("pagerank", "map", 8)
			bad.Rows[i].RoundsPerSec = r.RoundsPerSec * 1.1 // under the 1.3x headline floor
		}
	}
	writeJSON(t, filepath.Join(dir, "e.smoke.json"), bad)
	writeStorageFixtures(t, dir)
	code, out := runWith(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on injected dominance regression\n%s", code, out)
	}
	if !strings.Contains(out, "dense-dominates-map-at-8") || !strings.Contains(out, "FAIL") {
		t.Fatalf("output does not name the failing dominance gate:\n%s", out)
	}
}

// TestExitNonZeroOnStorageHitRatioRegression is the storage gate's negative
// test: a fresh sweep whose cache hit ratio collapses below the committed
// baseline (minus the band) — an eviction-policy or cache-accounting bug —
// must drive exit 1 and name the storage-hit-ratio gate.
func TestExitNonZeroOnStorageHitRatioRegression(t *testing.T) {
	dir, fresh, baseline, comms := fixtures(t)
	writeJSON(t, filepath.Join(dir, "k.smoke.json"), fresh)
	writeJSON(t, filepath.Join(dir, "k.json"), baseline)
	writeJSON(t, filepath.Join(dir, "c.smoke.json"), comms)
	writeJSON(t, filepath.Join(dir, "c.json"), comms)
	serving := servingFixture(t)
	writeJSON(t, filepath.Join(dir, "s.smoke.json"), serving)
	writeJSON(t, filepath.Join(dir, "s.json"), serving)
	eng := engineFixture()
	writeJSON(t, filepath.Join(dir, "e.smoke.json"), eng)
	writeJSON(t, filepath.Join(dir, "e.json"), eng)
	writeStorageFixtures(t, dir)
	bad := storageFixture()
	for i := range bad.Rows {
		if bad.Rows[i].Workload == "gnn-epoch" && bad.Rows[i].BudgetFrac == 1.00 {
			bad.Rows[i].HitRatio = 0.4 // baseline has 0.99: far outside the band
		}
	}
	writeJSON(t, filepath.Join(dir, "st.smoke.json"), bad)
	code, out := runWith(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on injected storage hit-ratio regression\n%s", code, out)
	}
	if !strings.Contains(out, "storage-hit-ratio") || !strings.Contains(out, "FAIL") {
		t.Fatalf("output does not name the failing storage gate:\n%s", out)
	}
}

func TestExitTwoOnMissingInput(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	code := run([]string{"-kernels", filepath.Join(dir, "nope.json")}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 on unreadable input", code)
	}
	if !strings.Contains(errb.String(), "bench-smoke") {
		t.Fatalf("stderr should point at make bench-smoke:\n%s", errb.String())
	}
}
