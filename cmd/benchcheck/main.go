// Command benchcheck is the regression gate behind `make bench-check`: it
// compares fresh BENCH_*.smoke.json runs against the committed full-run
// baselines using the typed hypotheses in internal/hypo and exits non-zero
// when a claim no longer holds. It gates machine-portable metrics only —
// allocs/op, within-run staged/legacy ratios, speedup-vs-baseline with a
// wide band — never raw nanoseconds across machines. The serving-tier gates
// go further: BENCH_serving.json comes from a deterministic logical-time
// simulation, so its cells are compared against the baseline EXACTLY.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphsys/internal/hypo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the exit, so tests can assert exit codes:
// 0 = all gates pass, 1 = a hypothesis failed, 2 = could not read inputs.
func run(args []string, stdout, stderr interface {
	Write([]byte) (int, error)
}) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kernels   = fs.String("kernels", "BENCH_kernels.smoke.json", "fresh kernels report (from make bench-smoke)")
		kernelsBL = fs.String("kernels-baseline", "BENCH_kernels.json", "committed kernels baseline")
		comms     = fs.String("comms", "BENCH_comms.smoke.json", "fresh comms report (from make bench-smoke)")
		commsBL   = fs.String("comms-baseline", "BENCH_comms.json", "committed comms baseline")
		serving   = fs.String("serving", "BENCH_serving.smoke.json", "fresh serving report (from make bench-smoke)")
		servingBL = fs.String("serving-baseline", "BENCH_serving.json", "committed serving baseline")
		engine    = fs.String("engine", "BENCH_engine.smoke.json", "fresh engine report (from make bench-smoke)")
		engineBL  = fs.String("engine-baseline", "BENCH_engine.json", "committed engine baseline")
		stor      = fs.String("storage", "BENCH_storage.smoke.json", "fresh storage report (from make bench-smoke)")
		storBL    = fs.String("storage-baseline", "BENCH_storage.json", "committed storage baseline")
		artifacts = fs.String("artifacts", "hypo_runs/bench-check", "per-run artifact folder (results.json + results.csv); empty to skip")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fk, err := hypo.ReadKernelsReport(*kernels)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v (run `make bench-smoke` first)\n", err)
		return 2
	}
	bk, err := hypo.ReadKernelsReport(*kernelsBL)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	fc, err := hypo.ReadCommsReport(*comms)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v (run `make bench-smoke` first)\n", err)
		return 2
	}
	bc, err := hypo.ReadCommsReport(*commsBL)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	fsv, err := hypo.ReadServingReport(*serving)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v (run `make bench-smoke` first)\n", err)
		return 2
	}
	bsv, err := hypo.ReadServingReport(*servingBL)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	fe, err := hypo.ReadEngineReport(*engine)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v (run `make bench-smoke` first)\n", err)
		return 2
	}
	be, err := hypo.ReadEngineReport(*engineBL)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	fst, err := hypo.ReadStorageReport(*stor)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v (run `make bench-smoke` first)\n", err)
		return 2
	}
	bst, err := hypo.ReadStorageReport(*storBL)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}

	cfg := hypo.DefaultGateConfig()
	gates := hypo.BenchGates(fk, bk, fc, bc, cfg)
	gates = append(gates, hypo.ServingGates(fsv, bsv, cfg)...)
	gates = append(gates, hypo.EngineGates(fe, be, cfg)...)
	gates = append(gates, hypo.StorageGates(fst, bst, cfg)...)
	rep := hypo.Run("bench-check", gates)
	rep.Fprint(stdout)
	if *artifacts != "" {
		if err := rep.WriteDir(*artifacts); err != nil {
			fmt.Fprintf(stderr, "benchcheck: writing artifacts: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "artifacts: %s/results.{json,csv}\n", *artifacts)
	}
	if !rep.Pass() {
		return 1
	}
	return 0
}
