// Command benchserving sweeps the serving tier's scheduling policies across
// offered load and writes BENCH_serving.json: p50/p99 latency and goodput vs
// offered load, from well below to beyond saturation, for every policy
// (round-robin, FIFO, shortest-remaining-work, weighted fair share).
//
// Unlike benchkernels/benchcomms the sweep runs on the deterministic
// logical-time simulator (serve.Simulate) over seeded open-loop Poisson
// arrivals: the numbers are a pure function of the parameters — identical on
// every machine — so the bench-check gate compares the smoke run against the
// committed baseline EXACTLY, and the smoke and full runs measure the same
// sweep (the distinction is bookkeeping, not fidelity).
//
//	go run ./cmd/benchserving -out BENCH_serving.json        # full run
//	go run ./cmd/benchserving -smoke -out BENCH_serving.smoke.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graphsys/internal/hypo"
	"graphsys/internal/serve"
)

func main() {
	out := flag.String("out", "BENCH_serving.json", "output path")
	smoke := flag.Bool("smoke", false, "mark the report as a smoke run (same deterministic sweep)")
	flag.Parse()

	params := hypo.DefaultServingParams()
	rep := hypo.ServingReport{
		GeneratedBy: "cmd/benchserving",
		Smoke:       *smoke,
		Note: "open-loop Poisson arrivals with a bimodal light/heavy cost mix through the " +
			"deterministic serving simulator: one tick retires Workers work units split " +
			"across in-flight queries by the policy; admission control sheds beyond " +
			"queue_limit, deadline_ticks bounds per-query latency. Latencies are logical " +
			"ticks, goodput is completions per 1000 ticks — machine-independent by " +
			"construction, gated for exact equality by cmd/benchcheck.",
		Params: params,
	}

	for _, pol := range serve.Policies {
		for _, lambda := range params.Lambdas {
			pt, err := hypo.MeasureServingPoint(params, pol, lambda, params.Seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchserving: %s at lambda=%.2f: %v\n", pol, lambda, err)
				os.Exit(1)
			}
			rep.Points = append(rep.Points, pt)
		}
	}

	// embedded self-check: re-running any cell must reproduce it exactly;
	// a divergence means the simulator lost determinism — fail loudly here,
	// before the report is ever compared against a baseline
	for _, pt := range rep.Points {
		pol, err := serve.ParsePolicy(pt.Policy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchserving: %v\n", err)
			os.Exit(1)
		}
		again, err := hypo.MeasureServingPoint(params, pol, pt.Lambda, params.Seed)
		if err != nil || again != pt {
			fmt.Fprintf(os.Stderr, "benchserving: self-check diverged for %s@%.2f: %+v vs %+v (%v)\n",
				pt.Policy, pt.Lambda, again, pt, err)
			os.Exit(1)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchserving: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchserving: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchserving: %v\n", err)
		os.Exit(1)
	}

	for _, pol := range serve.Policies {
		fmt.Printf("%-12s", pol.String())
		for _, lambda := range params.Lambdas {
			if pt, ok := rep.Point(pol.String(), lambda); ok {
				fmt.Printf("  λ=%.1f p50=%3d p99=%4d good=%5.1f", lambda, pt.P50, pt.P99, pt.Goodput)
			}
		}
		fmt.Println()
	}
	fmt.Printf("wrote %s (%d points, seed %d)\n", *out, len(rep.Points), params.Seed)
}
