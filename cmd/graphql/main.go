// Command graphql is an interactive subgraph query shell (the G-thinkerQ
// usage model): load a big graph once, then submit subgraph-count queries
// continually; queries execute concurrently on a shared task pool and answer
// as they complete.
//
//	graphql -graph data.txt        # or -gen ba -n 5000
//
// Commands at the prompt:
//
//	pattern <name>           query a named pattern (edge, wedge, triangle,
//	                         square, diamond, k4, k5, star4)
//	edges <u-v,v-w,...>      query an ad-hoc pattern given as an edge list
//	                         over vertex ids 0..k-1, e.g. edges 0-1,1-2,2-0
//	dist <u> <v>             hop distance between two vertices (Quegel-style
//	                         batched point-to-point query)
//	stats                    print graph statistics
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/gthinkerq"
	"graphsys/internal/quegel"
)

var patterns = map[string][][2]graph.V{
	"edge":     {{0, 1}},
	"wedge":    {{0, 1}, {1, 2}},
	"triangle": {{0, 1}, {1, 2}, {0, 2}},
	"square":   {{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	"diamond":  {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}},
	"k4":       {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
	"k5":       {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}},
	"star4":    {{0, 1}, {0, 2}, {0, 3}, {0, 4}},
}

func main() {
	log.SetFlags(0)
	var (
		path    = flag.String("graph", "", "edge-list file to load")
		genKind = flag.String("gen", "ba", "generator when no -graph given: ba | er | community")
		n       = flag.Int("n", 2000, "generated graph size")
		workers = flag.Int("workers", 8, "query worker pool size")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var g *graph.Graph
	if *path != "" {
		f, err := os.Open(*path)
		if err != nil {
			log.Fatalf("graphql: %v", err)
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			log.Fatalf("graphql: %v", err)
		}
	} else {
		switch *genKind {
		case "er":
			g = gen.ErdosRenyi(*n, int64(*n)*4, *seed)
		case "community":
			g = gen.PlantedPartitionSparse(*n, 8, 10, 1, *seed).Graph
		default:
			g = gen.BarabasiAlbert(*n, 4, *seed)
		}
	}
	fmt.Printf("loaded %v; query server with %d workers ready\n", g, *workers)
	srv := gthinkerq.NewServer(g, *workers)
	defer srv.Close()
	qsrv := quegel.NewServer(g, *workers)
	var inflight sync.WaitGroup
	defer inflight.Wait() // answer every submitted query before exiting

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "stats":
			fmt.Printf("%v  maxdeg=%d  triangles=%d\n", g, g.MaxDegree(), graph.TriangleCount(g))
		case "pattern":
			if len(fields) < 2 {
				fmt.Println("usage: pattern <name>")
				break
			}
			edges, ok := patterns[fields[1]]
			if !ok {
				fmt.Printf("unknown pattern %q (known:", fields[1])
				for name := range patterns {
					fmt.Printf(" %s", name)
				}
				fmt.Println(")")
				break
			}
			submit(srv, &inflight, fields[1], edges)
		case "dist":
			if len(fields) < 3 {
				fmt.Println("usage: dist <u> <v>")
				break
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || v < 0 ||
				u >= g.NumVertices() || v >= g.NumVertices() {
				fmt.Println("bad vertex ids")
				break
			}
			qsrv.Submit(quegel.Query{Src: graph.V(u), Dst: graph.V(v)})
			ans, st, err := qsrv.Flush()
			if err != nil {
				fmt.Printf("query failed: %v\n", err)
				break
			}
			fmt.Printf("dist(%d,%d) = %d  (%d rounds)\n", u, v, ans[0].Dist, st.Supersteps)
		case "edges":
			if len(fields) < 2 {
				fmt.Println("usage: edges 0-1,1-2,2-0")
				break
			}
			edges, err := parseEdges(fields[1])
			if err != nil {
				fmt.Printf("bad edge list: %v\n", err)
				break
			}
			submit(srv, &inflight, "ad-hoc", edges)
		default:
			fmt.Println("commands: pattern <name> | edges <list> | stats | quit")
		}
		fmt.Print("> ")
	}
}

func submit(srv *gthinkerq.Server, inflight *sync.WaitGroup, name string, edges [][2]graph.V) {
	max := graph.V(0)
	for _, e := range edges {
		if e[0] > max {
			max = e[0]
		}
		if e[1] > max {
			max = e[1]
		}
	}
	p := graph.FromEdges(int(max)+1, edges)
	q := srv.Submit(p)
	inflight.Add(1)
	go func() {
		defer inflight.Done()
		count := q.Wait()
		fmt.Printf("\n[query #%d %s] %d matches in %s\n> ", q.ID, name, count, q.Latency().Round(time.Microsecond))
	}()
}

func parseEdges(s string) ([][2]graph.V, error) {
	var out [][2]graph.V
	for _, part := range strings.Split(s, ",") {
		uv := strings.SplitN(part, "-", 2)
		if len(uv) != 2 {
			return nil, fmt.Errorf("expected u-v, got %q", part)
		}
		u, err1 := strconv.Atoi(uv[0])
		v, err2 := strconv.Atoi(uv[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad vertex in %q", part)
		}
		out = append(out, [2]graph.V{graph.V(u), graph.V(v)})
	}
	return out, nil
}
