module graphsys

go 1.22
