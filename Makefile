GO ?= go

.PHONY: build test race vet lint verify bench bench-kernels bench-comms bench-serving bench-engine bench-storage bench-smoke bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# graphlint: the repo-specific contracts (determinism, metered clock, seeded
# RNG, runtime-owned concurrency, error-return policy) plus the
# interprocedural proofs — hot-path allocation freedom and lock ordering.
# See DESIGN.md §3.9 and §3.14. -timing prints the per-check wall-time
# report; -budget fails the run (exit 2) if the whole analysis exceeds 5s,
# keeping the call-graph passes honest as the module grows.
lint:
	$(GO) run ./cmd/graphlint -timing -budget 5s ./...

test:
	$(GO) test ./...

# Race-enabled subset: the packages with real concurrency (the cluster
# runtime and the engines that drive it, including the fault-injection /
# crash-recovery paths, the parallel tensor/aggregation kernels, and the
# serving tier's worker pools and batchers).
race:
	$(GO) test -race ./internal/cluster/ ./internal/pregel/ ./internal/gnndist/ ./internal/tensor/ ./internal/gnn/ ./internal/serve/ ./internal/gthinkerq/ ./internal/quegel/

# The full pre-commit gate: referenced from .claude/skills/verify/SKILL.md.
# bench-check (which depends on bench-smoke) replaces the old run-and-discard
# smoke pass: the fresh smoke reports are now GATED against the committed
# baselines instead of merely generated.
verify: vet lint build test race bench-check
	@echo "verify: OK"

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Kernel-layer benchmarks: serial vs parallel matmul/SpMM/training-epoch, and
# the BENCH_kernels.json report with the growth-seed baselines.
bench-kernels:
	$(GO) test -bench 'MatMul|Agg|Train' -benchmem -run '^$$' ./internal/tensor/ ./internal/gnn/
	$(GO) run ./cmd/benchkernels -out BENCH_kernels.json

# Messaging-substrate benchmarks: staged per-sender outboxes vs the legacy
# per-message-lock path, micro-benchmarks plus the BENCH_comms.json report.
bench-comms:
	$(GO) test -bench Send -benchmem -run '^$$' ./internal/cluster/
	$(GO) run ./cmd/benchcomms -out BENCH_comms.json

# Serving-tier benchmark: p50/p99 latency and goodput vs offered load per
# scheduling policy, through saturation, on the deterministic logical-time
# simulator. The output is machine-independent; bench-check gates it against
# the committed baseline for EXACT equality.
bench-serving:
	$(GO) run ./cmd/benchserving -out BENCH_serving.json

# End-to-end engine benchmark: whole pregel supersteps (PageRank + CC) across
# the dense-slot / map-combiner / legacy communication paths at 1/2/8
# workers, measured differentially so per-round allocs and ns are exact. The
# command refuses to write a report if the three paths' results diverge.
bench-engine:
	$(GO) test -bench 'GangDispatch|SendDenseCombiner|SendMapCombiner' -benchmem -run '^$$' ./internal/cluster/
	$(GO) run ./cmd/benchengine -out BENCH_engine.json

# Out-of-core storage benchmark: compression ratio, the cache-size sweep
# (hit ratio + cached-vs-in-memory throughput for PageRank and a sampled-GNN
# epoch, LRU and MRU), and the capacity run — PageRank + GNN minibatches on a
# 100M+-edge streaming-built R-MAT under a budget ~15% of the raw CSR. The
# command refuses to write a report if the disk-backed source diverges bitwise
# from the in-memory oracle. The full run builds the capacity graph: minutes.
bench-storage:
	$(GO) test -bench 'Storage|Codec|Cache' -benchmem -run '^$$' ./internal/storage/
	$(GO) run ./cmd/benchstorage -out BENCH_storage.json

# Quick pass of the kernel, comms, serving and engine reports (few
# iterations; the serving sweep is deterministic so its smoke run IS the full
# sweep). Writes to scratch paths (gitignored) so it never clobbers the
# committed full-run reports; bench-check consumes these.
bench-smoke:
	$(GO) run ./cmd/benchkernels -smoke -out BENCH_kernels.smoke.json
	$(GO) run ./cmd/benchcomms -smoke -out BENCH_comms.smoke.json
	$(GO) run ./cmd/benchserving -smoke -out BENCH_serving.smoke.json
	$(GO) run ./cmd/benchengine -smoke -out BENCH_engine.smoke.json
	$(GO) run ./cmd/benchstorage -smoke -out BENCH_storage.smoke.json

# Regression gate: compare the fresh smoke reports against the committed
# BENCH_*.json baselines via the typed hypotheses in internal/hypo. Fails
# (non-zero exit) on >20% allocs/op growth, loss of the staged≥3×legacy
# within-run dominance, diverged accounting, >50% speedup loss vs the
# baseline, ANY serving-sweep cell drifting from the committed
# BENCH_serving.json (deterministic simulation ⇒ exact equality), dense
# engine supersteps allocating (>2 allocs/round), or the dense path losing
# its rounds/sec dominance over the map (≥1.3× at 8 workers) or legacy
# paths. The storage gates add: disk/mem result divergence, compression
# dropping below 1.5×, any sweep cell's hit ratio falling outside the band
# vs the committed baseline, the largest-budget cells losing the in-memory
# throughput floor, or the committed capacity run no longer proving the
# 100M-edge-under-budget claim. Artifacts land in hypo_runs/bench-check/.
bench-check: bench-smoke
	$(GO) run ./cmd/benchcheck
