GO ?= go

.PHONY: build test race vet verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled subset: the packages with real concurrency (the cluster
# runtime and the engines that drive it, including the fault-injection /
# crash-recovery paths).
race:
	$(GO) test -race ./internal/cluster/ ./internal/pregel/ ./internal/gnndist/

# The full pre-commit gate: referenced from .claude/skills/verify/SKILL.md.
verify: vet build test race
	@echo "verify: OK"

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
