// Package graphsys is a pure-Go reproduction of the system families surveyed
// in "Systems for Scalable Graph Analytics and Machine Learning: Trends and
// Methods" (Yan, Yuan, Ahmad, Adhikari): think-like-a-vertex (Pregel),
// think-like-a-task (G-thinker), BFS-extension mining (Arabesque),
// compiled subgraph matching (GraphPi), frequent subgraph mining
// (gSpan/GraMi/T-FSM/PrefixFPM), online subgraph querying (G-thinkerQ),
// simulated-GPU matching (GSI/STMatch/EGSM/G²-AIMD), vertex embeddings
// (DeepWalk/node2vec), GNN models and training regimes (GCN/GraphSAGE/GAT),
// and the distributed GNN training techniques of the paper's Table 2.
//
// The public pipeline API lives in internal/core; runnable experiments that
// regenerate every table/figure/claim of the paper live in
// internal/experiments and are driven by cmd/graphbench. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package graphsys
