package core

import (
	"math/rand"
	"testing"

	"graphsys/internal/fsm"
	"graphsys/internal/gnn"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/mining"
	"graphsys/internal/tensor"
)

func TestPath1VertexAnalytics(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	p := NewPipeline(g, 4)
	pr := p.PageRank(20)
	if len(pr) != 200 {
		t.Fatal("pagerank length")
	}
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("pagerank sum %f", sum)
	}
	deg := p.DegreeCentrality()
	for v := graph.V(0); int(v) < 200; v++ {
		if deg[v] != float64(g.Degree(v)) {
			t.Fatal("degree centrality wrong")
		}
	}
	visits := p.RandomWalkScores(2, 5, 7)
	var tot int64
	for _, c := range visits {
		tot += c
	}
	if tot == 0 {
		t.Fatal("no walk visits")
	}
	cc := p.ConnectedComponents()
	if len(cc) != 200 {
		t.Fatal("cc length")
	}
}

func TestPath2FeaturesAndClassifier(t *testing.T) {
	task := gnn.SyntheticCommunityTask(200, 2, 2, 0.4, 3)
	p := NewPipeline(task.G, 4)
	sf := p.StructuralFeatureMatrix()
	if sf.Rows != 200 || sf.Cols != graph.FeatureDim {
		t.Fatal("structural feature shape")
	}
	clf := p.TrainNodeClassifier(task.X, task.Labels, task.TrainMask, 1)
	if acc := clf.Accuracy(task.X, task.Labels, task.TestMask); acc < 0.85 {
		t.Fatalf("feature classifier accuracy %.3f", acc)
	}
	emb := p.DeepWalkEmbeddings(16, 5)
	if emb.Rows != 200 || emb.Cols != 16 {
		t.Fatal("embedding shape")
	}
}

func TestPath2GNN(t *testing.T) {
	task := gnn.SyntheticCommunityTask(150, 3, 2, 0.3, 5)
	p := NewPipeline(task.G, 4)
	if acc := p.TrainGNN(task, gnn.GCN, 16, 50, 2); acc < 0.85 {
		t.Fatalf("GNN accuracy %.3f", acc)
	}
}

func TestPath3Structures(t *testing.T) {
	// planted K6 + sparse noise
	b := graph.NewBuilder(40, false)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(graph.V(u), graph.V(v))
		}
	}
	gen.ErdosRenyi(40, 60, 2).EdgesOnce(func(u, v graph.V) { b.AddEdge(u, v) })
	g := b.Build()
	p := NewPipeline(g, 4)
	if mc := p.MaximumClique(); len(mc) < 6 {
		t.Fatalf("max clique %d", len(mc))
	}
	res := p.MaximalCliques(false)
	if res.Count == 0 {
		t.Fatal("no maximal cliques")
	}
	truss := p.KTrussCommunity(5)
	if len(truss) < 6 {
		t.Fatalf("5-truss has %d vertices", len(truss))
	}
	motifs := p.MotifCounts(3)
	tri := mining.CanonicalCode(gen.Clique(3), []graph.V{0, 1, 2})
	if motifs[tri] == 0 {
		t.Fatal("no triangles found")
	}
	if n := p.CountPattern(gen.Clique(3)); n != motifs[tri] {
		t.Fatalf("pattern count %d vs motif count %d", n, motifs[tri])
	}
}

func TestPath3QuasiCliquesAndFSM(t *testing.T) {
	g := gen.WithRandomLabels(gen.ErdosRenyi(25, 60, 3), 2, 4)
	p := NewPipeline(g, 4)
	qc := p.QuasiCliques(0.9, 3)
	for _, s := range qc {
		if len(s) < 3 {
			t.Fatal("quasi-clique below min size")
		}
	}
	pats := p.FrequentPatterns(5, 2)
	for _, pat := range pats {
		if pat.Support < 5 {
			t.Fatal("infrequent pattern returned")
		}
	}
}

func TestPath4GraphClassification(t *testing.T) {
	db := gen.MoleculeDB(60, 8, 3, 0.95, 21)
	rng := rand.New(rand.NewSource(1))
	trainMask := make([]bool, db.Len())
	for i := range trainMask {
		trainMask[i] = rng.Float64() < 0.6
	}
	acc := GraphClassification(db, trainMask, 8, 3, 4, 2)
	if acc < 0.7 {
		t.Fatalf("graph classification accuracy %.3f (motif should be discriminative)", acc)
	}
}

func TestPatternFeaturesRespectLabels(t *testing.T) {
	// two transactions: one has an A-A edge, the other A-B
	db := &graph.TransactionDB{}
	mk := func(l0, l1 int32) *graph.Graph {
		b := graph.NewBuilder(2, false)
		b.SetLabel(0, l0)
		b.SetLabel(1, l1)
		b.AddLabeledEdge(0, 1, 1)
		return b.Build()
	}
	db.Add(mk(1, 1), 0)
	db.Add(mk(1, 2), 1)
	// mine with minSup 1 to get both patterns, then featurise
	allPats := fsm.MineTransactions(db, fsm.MineConfig{MinSupport: 1})
	x := PatternFeatures(db, allPats, 2)
	if x.Rows != 2 || x.Cols != len(allPats) {
		t.Fatal("feature shape")
	}
	// rows must differ (different patterns occur)
	same := true
	for j := 0; j < x.Cols; j++ {
		if x.At(0, j) != x.At(1, j) {
			same = false
		}
	}
	if same {
		t.Fatal("pattern features identical for different graphs")
	}
}

func TestLogRegSeparable(t *testing.T) {
	x := tensor.FromRows([][]float32{{1, 0}, {0.9, 0.1}, {0, 1}, {0.1, 0.9}})
	labels := []int{0, 0, 1, 1}
	clf := TrainLogReg(x, labels, 300, 0.1, 1)
	if acc := clf.Accuracy(x, labels, nil); acc != 1 {
		t.Fatalf("logreg separable accuracy %f", acc)
	}
}

func TestSVMSeparable(t *testing.T) {
	x := tensor.FromRows([][]float32{{2, 0}, {1.5, 0.2}, {0, 2}, {0.1, 1.8}})
	labels := []int{0, 0, 1, 1}
	svm := TrainSVM(x, labels, 200, 0.05, 0.001, 1)
	if acc := svm.Accuracy(x, labels, nil); acc != 1 {
		t.Fatalf("svm separable accuracy %f", acc)
	}
}

func TestSVMIgnoresUnlabeled(t *testing.T) {
	x := tensor.FromRows([][]float32{{1, 0}, {0, 1}, {5, 5}})
	labels := []int{0, 1, -1}
	svm := TrainSVM(x, labels, 100, 0.05, 0.001, 2)
	if acc := svm.Accuracy(x, labels, []bool{true, true, false}); acc != 1 {
		t.Fatalf("svm accuracy %f", acc)
	}
}

func TestLabelPropagationAndKCore(t *testing.T) {
	c := gen.PlantedPartitionSparse(200, 2, 12, 0.5, 8)
	p := NewPipeline(c.Graph, 4)
	labels := p.LabelPropagation(8)
	if len(labels) != 200 {
		t.Fatal("label length")
	}
	core3 := p.KCoreMembers(3)
	cores := graph.CoreNumbers(c.Graph)
	want := 0
	for _, cn := range cores {
		if cn >= 3 {
			want++
		}
	}
	if len(core3) != want {
		t.Fatalf("3-core size %d want %d", len(core3), want)
	}
}
