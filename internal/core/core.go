// Package core is the public face of the library: it wires the engines of
// this repository into the four-path graph analytics + machine learning
// pipeline of the paper's Figure 1:
//
//	Path 1 — Vertex Analytics:              per-vertex scores (PageRank,
//	         degree centrality, random-walk visit counts).
//	Path 2 — Vertex Analytics + ML:         vertex embeddings (DeepWalk /
//	         node2vec) or classic structural features, feeding a node
//	         classifier (logistic regression, SVM or a GNN).
//	Path 3 — Structure Analytics:           subgraph structures (maximal
//	         cliques, quasi-cliques, k-truss communities, motifs, frequent
//	         patterns).
//	Path 4 — Structure Analytics + ML:      frequent-pattern features for
//	         whole-graph classification (the biochemistry workload).
//
// Each method delegates to the specialised engine package, so a pipeline
// user gets TLAV, think-like-a-task, mining, matching, FSM, embedding and
// GNN machinery behind one façade.
package core

import (
	"graphsys/internal/embed"
	"graphsys/internal/fsm"
	"graphsys/internal/gnn"
	"graphsys/internal/graph"
	"graphsys/internal/match"
	"graphsys/internal/mining"
	"graphsys/internal/pregel"
	"graphsys/internal/tensor"
	"graphsys/internal/tthinker"
)

// Pipeline is a handle over one data graph.
type Pipeline struct {
	G       *graph.Graph
	Workers int
}

// NewPipeline creates a pipeline over g.
func NewPipeline(g *graph.Graph, workers int) *Pipeline {
	if workers <= 0 {
		workers = 4
	}
	return &Pipeline{G: g, Workers: workers}
}

// ---------- Path 1: vertex analytics ----------

// PageRank returns damped PageRank scores (TLAV engine).
func (p *Pipeline) PageRank(iters int) []float64 {
	scores, _, _ := pregel.PageRank(p.G, iters, pregel.Config{Workers: p.Workers})
	return scores
}

// DegreeCentrality returns per-vertex degrees as scores.
func (p *Pipeline) DegreeCentrality() []float64 {
	d, _ := pregel.DegreeCentrality(p.G, pregel.Config{Workers: p.Workers})
	return d
}

// RandomWalkScores returns random-walk visit counts (PPR-style scoring).
func (p *Pipeline) RandomWalkScores(walksPerVertex, walkLen int, seed int64) []int64 {
	visits, _, _ := pregel.RandomWalkVisits(p.G, walksPerVertex, walkLen, seed, pregel.Config{Workers: p.Workers})
	return visits
}

// ConnectedComponents returns per-vertex component labels (HashMin).
func (p *Pipeline) ConnectedComponents() []int32 {
	labels, _, _ := pregel.HashMinCC(p.G, pregel.Config{Workers: p.Workers})
	return labels
}

// LabelPropagation returns community labels after the given rounds of
// majority label propagation.
func (p *Pipeline) LabelPropagation(rounds int) []int32 {
	labels, _ := pregel.LabelPropagation(p.G, rounds, pregel.Config{Workers: p.Workers})
	return labels
}

// KCoreMembers returns the vertices of the k-core (distributed peeling).
func (p *Pipeline) KCoreMembers(k int32) []graph.V {
	member, _ := pregel.KCore(p.G, k, pregel.Config{Workers: p.Workers})
	var out []graph.V
	for v, m := range member {
		if m {
			out = append(out, graph.V(v))
		}
	}
	return out
}

// ---------- Path 2: vertex analytics + ML ----------

// DeepWalkEmbeddings learns topology embeddings.
func (p *Pipeline) DeepWalkEmbeddings(dim int, seed int64) *tensor.Matrix {
	return embed.DeepWalk(p.G, 6, 20, embed.SkipGramConfig{Dim: dim, Epochs: 3, Seed: seed})
}

// Node2VecEmbeddings learns biased-walk embeddings.
func (p *Pipeline) Node2VecEmbeddings(dim int, pRet, q float64, seed int64) *tensor.Matrix {
	return embed.Node2Vec(p.G, 6, 20, pRet, q, embed.SkipGramConfig{Dim: dim, Epochs: 3, Seed: seed})
}

// StructuralFeatureMatrix returns the classic structural features (degree,
// log-degree, clustering coefficient, core number, triangle count) as a
// feature matrix — the baseline Stolman et al. found to beat embeddings for
// community labeling.
func (p *Pipeline) StructuralFeatureMatrix() *tensor.Matrix {
	f := graph.ComputeStructuralFeatures(p.G)
	return tensor.FromRows(f.Matrix())
}

// TrainNodeClassifier fits logistic regression on per-vertex features; rows
// with label < 0 or trainMask false are excluded from training.
func (p *Pipeline) TrainNodeClassifier(x *tensor.Matrix, labels []int, trainMask []bool, seed int64) *LogisticRegression {
	masked := make([]int, len(labels))
	for i, l := range labels {
		if trainMask != nil && !trainMask[i] {
			masked[i] = -1
		} else {
			masked[i] = l
		}
	}
	return TrainLogReg(x, masked, 150, 0.05, seed)
}

// TrainGNN trains a GNN node classifier full-graph and returns test accuracy.
func (p *Pipeline) TrainGNN(task *gnn.Task, kind gnn.ModelKind, hidden, epochs int, seed int64) float64 {
	m := gnn.NewModel(task.G, kind, []int{task.X.Cols, hidden, task.NumClasses}, seed)
	res := gnn.TrainFullGraph(m, task.X, task.Labels, task.TrainMask, task.TestMask,
		gnn.TrainConfig{Epochs: epochs, LR: 0.02})
	return res.TestAcc
}

// ---------- Path 3: structure analytics ----------

// MaximalCliques enumerates maximal cliques (task engine, work stealing).
func (p *Pipeline) MaximalCliques(collect bool) tthinker.CliqueResult {
	res, _ := tthinker.MaximalCliques(p.G, collect, tthinker.Config{Workers: p.Workers, Budget: 256})
	return res
}

// MaximumClique returns one maximum clique.
func (p *Pipeline) MaximumClique() []graph.V {
	best, _ := tthinker.MaximumClique(p.G, tthinker.Config{Workers: p.Workers, Budget: 256})
	return best
}

// QuasiCliques mines maximal γ-quasi-cliques of size ≥ minSize.
func (p *Pipeline) QuasiCliques(gamma float64, minSize int) [][]graph.V {
	sets, _ := tthinker.QuasiCliques(p.G, gamma, minSize, tthinker.Config{Workers: p.Workers, Budget: 256})
	return sets
}

// KTrussCommunity returns the vertices of the maximal k-truss.
func (p *Pipeline) KTrussCommunity(k int32) []graph.V {
	return tthinker.KTrussSubgraph(p.G, k)
}

// MotifCounts counts size-k graphlets (BFS-extension mining engine).
func (p *Pipeline) MotifCounts(k int) map[string]int64 {
	counts, _ := mining.MotifCounts(p.G, k, mining.Config{Workers: p.Workers})
	return counts
}

// CountPattern counts matches of a pattern (compiled matching plan).
func (p *Pipeline) CountPattern(pattern *graph.Graph) int64 {
	n, _ := match.Count(p.G, match.OptimizedPlan(pattern), p.Workers)
	return n
}

// FrequentPatterns mines frequent patterns of the (single, labeled) graph
// with MNI support.
func (p *Pipeline) FrequentPatterns(minSupport, maxEdges int) []fsm.Pattern {
	return fsm.MineSingleGraph(p.G, fsm.MineConfig{MinSupport: minSupport, MaxEdges: maxEdges, Workers: p.Workers})
}

// ---------- Path 4: structure analytics + ML (transactional) ----------

// PatternFeatures builds a binary feature matrix for a transaction database:
// column j of row i is 1 iff mined pattern j occurs in transaction i
// (subgraph-isomorphism test with vertex and edge labels).
func PatternFeatures(db *graph.TransactionDB, patterns []fsm.Pattern, workers int) *tensor.Matrix {
	x := tensor.New(db.Len(), len(patterns))
	plans := make([]*match.Plan, len(patterns))
	for j, pat := range patterns {
		plans[j] = match.OptimizedPlan(pat.Graph())
	}
	for i, g := range db.Graphs {
		for j := range patterns {
			found := false
			match.Enumerate(g, plans[j], workers, func(m []graph.V) bool {
				found = true
				return false // stop at first occurrence
			}, nil)
			if found {
				x.Set(i, j, 1)
			}
		}
	}
	return x
}

// GraphClassification runs the full Figure-1 path 4: mine frequent patterns
// from the training split of db, featurise all transactions by pattern
// occurrence, train a classifier, and return test accuracy.
func GraphClassification(db *graph.TransactionDB, trainMask []bool, minSup, maxEdges, workers int, seed int64) float64 {
	trainDB := &graph.TransactionDB{}
	for i, g := range db.Graphs {
		if trainMask[i] {
			trainDB.Add(g, db.Class[i])
		}
	}
	patterns := fsm.MineTransactions(trainDB, fsm.MineConfig{MinSupport: minSup, MaxEdges: maxEdges, Workers: workers})
	if len(patterns) == 0 {
		return 0
	}
	x := PatternFeatures(db, patterns, workers)
	labels := make([]int, db.Len())
	masked := make([]int, db.Len())
	testMask := make([]bool, db.Len())
	for i := range labels {
		labels[i] = db.Class[i]
		if trainMask[i] {
			masked[i] = db.Class[i]
		} else {
			masked[i] = -1
			testMask[i] = true
		}
	}
	clf := TrainLogReg(x, masked, 200, 0.05, seed)
	return clf.Accuracy(x, labels, testMask)
}
