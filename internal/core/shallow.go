package core

import (
	"math/rand"

	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// Shallow (non-graph) downstream models: the paper notes graph
// classification/regression were conventionally solved by shallow learning
// (SVMs, boosting) over extracted features — these close the "+ML" paths of
// Figure 1 when a GNN is not wanted.

// LogisticRegression is a multinomial logistic-regression classifier.
type LogisticRegression struct {
	lin     *nn.Dense
	classes int
}

// TrainLogReg trains multinomial logistic regression on rows of x with
// integer labels (label < 0 rows are ignored).
func TrainLogReg(x *tensor.Matrix, labels []int, epochs int, lr float64, seed int64) *LogisticRegression {
	classes := 0
	for _, l := range labels {
		if l+1 > classes {
			classes = l + 1
		}
	}
	m := &LogisticRegression{lin: nn.NewDense(x.Cols, classes, seed), classes: classes}
	opt := nn.NewAdam(lr)
	for ep := 0; ep < epochs; ep++ {
		logits := m.lin.Forward(x)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		m.lin.Backward(grad)
		opt.Step(m.lin.Params())
	}
	return m
}

// Predict returns the class logits for rows of x.
func (m *LogisticRegression) Predict(x *tensor.Matrix) *tensor.Matrix {
	return m.lin.Forward(x)
}

// Accuracy evaluates the classifier on rows with mask true (nil = all).
func (m *LogisticRegression) Accuracy(x *tensor.Matrix, labels []int, mask []bool) float64 {
	return nn.Accuracy(m.Predict(x), labels, mask)
}

// LinearSVM is a one-vs-rest linear SVM trained with hinge loss and SGD —
// the gBoost/SVM-era baseline the paper cites for graph classification.
type LinearSVM struct {
	W       *tensor.Matrix // classes × dim
	B       []float32
	classes int
}

// TrainSVM trains a one-vs-rest linear SVM (hinge loss, L2 regularisation).
func TrainSVM(x *tensor.Matrix, labels []int, epochs int, lr, c float64, seed int64) *LinearSVM {
	classes := 0
	for _, l := range labels {
		if l+1 > classes {
			classes = l + 1
		}
	}
	m := &LinearSVM{W: tensor.Xavier(classes, x.Cols, seed), B: make([]float32, classes), classes: classes}
	rng := rand.New(rand.NewSource(seed))
	for ep := 0; ep < epochs; ep++ {
		perm := rng.Perm(x.Rows)
		for _, i := range perm {
			if labels[i] < 0 {
				continue
			}
			row := x.Row(i)
			for cls := 0; cls < classes; cls++ {
				y := float32(-1)
				if labels[i] == cls {
					y = 1
				}
				wr := m.W.Row(cls)
				var score float32
				for k, v := range row {
					score += wr[k] * v
				}
				score += m.B[cls]
				// hinge subgradient
				if y*score < 1 {
					for k, v := range row {
						wr[k] += float32(lr) * (y*v - float32(c)*wr[k])
					}
					m.B[cls] += float32(lr) * y
				} else {
					for k := range row {
						wr[k] -= float32(lr) * float32(c) * wr[k]
					}
				}
			}
		}
	}
	return m
}

// Predict returns per-class scores.
func (m *LinearSVM) Predict(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, m.classes)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		or := out.Row(i)
		for cls := 0; cls < m.classes; cls++ {
			wr := m.W.Row(cls)
			var s float32
			for k, v := range row {
				s += wr[k] * v
			}
			or[cls] = s + m.B[cls]
		}
	}
	return out
}

// Accuracy evaluates the SVM on rows with mask true (nil = all).
func (m *LinearSVM) Accuracy(x *tensor.Matrix, labels []int, mask []bool) float64 {
	return nn.Accuracy(m.Predict(x), labels, mask)
}
