package obs

import (
	"bytes"
	"strings"
	"testing"

	"graphsys/internal/cluster"
)

// goldenCluster builds a fully deterministic traced cluster: two workers,
// four cross messages, one local delivery, two rounds, simulated busy time.
func goldenCluster() *cluster.Cluster {
	c := cluster.New(2)
	net := c.Network()
	net.EnableTrace()
	net.Account(0, 1, 100)
	net.Account(0, 1, 28)
	net.Account(1, 0, 8)
	net.Account(0, 0, 5)
	net.AccountRound()
	net.Account(1, 0, 64)
	net.AccountRound()
	c.AddBusy(0, 1.5)
	c.AddBusy(1, 0.5)
	return c
}

func TestCollect(t *testing.T) {
	tr := Collect("golden", goldenCluster())
	if tr.Messages != 4 || tr.Bytes != 200 || tr.LocalMessages != 1 || tr.Rounds != 2 {
		t.Fatalf("totals wrong: %+v", tr)
	}
	if tr.LinkBytes[0][1] != 128 || tr.LinkBytes[1][0] != 72 {
		t.Fatalf("matrix wrong: %v", tr.LinkBytes)
	}
	if tr.WorkerSentMsgs[0] != 2 || tr.WorkerRecvMsgs[0] != 2 {
		t.Fatalf("per-worker counts wrong: sent=%v recv=%v", tr.WorkerSentMsgs, tr.WorkerRecvMsgs)
	}
	if len(tr.RoundSeries) != 2 || tr.RoundSeries[0].Bytes != 136 || tr.RoundSeries[1].Bytes != 64 {
		t.Fatalf("round series wrong: %+v", tr.RoundSeries)
	}
	s := tr.Skew
	if s.MaxBusySec != 1.5 || s.MeanBusySec != 1.0 || s.BusyImbalance != 1.5 {
		t.Fatalf("busy skew wrong: %+v", s)
	}
	if s.P50RoundBytes != 64 || s.P99RoundBytes != 136 || s.P50RoundMsgs != 1 || s.P99RoundMsgs != 3 {
		t.Fatalf("round percentiles wrong: %+v", s)
	}
}

const goldenJSON = `{
  "workload": "golden",
  "workers": 2,
  "messages": 4,
  "attempts": 4,
  "bytes": 200,
  "local_messages": 1,
  "rounds": 2,
  "weighted_cost": 200,
  "round_series": [
    {
      "round": 0,
      "messages": 3,
      "attempts": 3,
      "bytes": 136,
      "local_messages": 1,
      "weighted_cost": 136
    },
    {
      "round": 1,
      "messages": 1,
      "attempts": 1,
      "bytes": 64,
      "local_messages": 0,
      "weighted_cost": 64
    }
  ],
  "link_bytes": [
    [
      0,
      128
    ],
    [
      72,
      0
    ]
  ],
  "link_messages": [
    [
      0,
      2
    ],
    [
      2,
      0
    ]
  ],
  "worker_busy_sec": [
    1.5,
    0.5
  ],
  "worker_sent_msgs": [
    2,
    2
  ],
  "worker_recv_msgs": [
    2,
    2
  ],
  "skew": {
    "max_busy_sec": 1.5,
    "mean_busy_sec": 1,
    "busy_imbalance": 1.5,
    "p50_round_bytes": 64,
    "p99_round_bytes": 136,
    "p50_round_msgs": 1,
    "p99_round_msgs": 3
  }
}
`

// TestWriteJSONGolden pins the export format: downstream tooling parses these
// files, so a field rename or reorder must show up as a diff here.
func TestWriteJSONGolden(t *testing.T) {
	tr := Collect("golden", goldenCluster())
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenJSON {
		t.Fatalf("JSON drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenJSON)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	tr := Collect("golden", goldenCluster())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "round,messages,attempts,bytes,local_messages,weighted_cost\n" +
		"0,3,3,136,1,136\n" +
		"1,1,1,64,0,64\n"
	if buf.String() != want {
		t.Fatalf("CSV drifted:\n%s", buf.String())
	}
}

func TestWriteAll(t *testing.T) {
	tr := Collect("golden", goldenCluster())
	var buf bytes.Buffer
	if err := WriteAll(&buf, []*Trace{tr, tr}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "{\n  \"traces\": [") || strings.Count(s, `"workload": "golden"`) != 2 {
		t.Fatalf("WriteAll document malformed:\n%s", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	cases := []struct {
		q    float64
		want int64
	}{{0.50, 5}, {0.99, 10}, {0.10, 1}, {1.0, 10}}
	for _, c := range cases {
		if got := percentile(xs, c.q); got != c.want {
			t.Errorf("percentile(%.2f) = %d, want %d", c.q, got, c.want)
		}
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestCollectRecoveryStats(t *testing.T) {
	c := cluster.New(2)
	fi := cluster.RunOptions{Trace: true, Faults: &cluster.FaultPlan{DropProb: 0.9, DropSeed: 3}}.Apply(c)
	for k := 0; k < 50; k++ {
		c.Network().Account(0, 1, 10)
	}
	fi.NoteCheckpoint(4096)
	fi.NoteRecovery(2, 2.5)
	tr := Collect("faulty", c)
	if tr.Recovery == nil {
		t.Fatal("recovery stats not collected")
	}
	r := tr.Recovery
	if r.Checkpoints != 1 || r.CheckpointBytes != 4096 || r.RecoveredRounds != 2 || r.RecoveryTime != 2.5 {
		t.Fatalf("engine-side recovery accounting wrong: %+v", r)
	}
	if r.DroppedMessages == 0 || r.RetryBytes == 0 {
		t.Fatalf("runtime-side retry accounting missing: %+v", r)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"recovery": {`) || !strings.Contains(buf.String(), `"checkpoint_bytes": 4096`) {
		t.Fatalf("recovery section missing from JSON export:\n%s", buf.String())
	}
	// fault-free runs must not grow a recovery section (golden compat)
	if plain := Collect("plain", cluster.New(2)); plain.Recovery != nil {
		t.Fatal("fault-free trace has recovery section")
	}
}

func TestFinishRespectsOptIn(t *testing.T) {
	c := cluster.New(2)
	if tr := Finish(cluster.RunOptions{}, "w", c); tr != nil {
		t.Fatal("Finish collected without opt-in")
	}
	opts := cluster.RunOptions{Trace: true}
	opts.Apply(c)
	tr := Finish(opts, "w", c)
	if tr == nil || tr.Workload != "w" {
		t.Fatal("Finish did not collect")
	}
}

func TestCollectUntraced(t *testing.T) {
	c := cluster.New(2)
	c.Network().Account(0, 1, 10)
	tr := Collect("plain", c)
	if tr.LinkBytes != nil || tr.RoundSeries != nil {
		t.Fatal("untraced collect must not fabricate matrix/series")
	}
	if tr.Bytes != 10 {
		t.Fatalf("bytes = %d", tr.Bytes)
	}
}
