// Package obs is the observability layer of the simulated distributed
// runtime: it assembles the raw meters kept by internal/cluster — global
// network aggregates, the per-link (worker×worker) traffic matrix, the
// per-round traffic history and per-worker busy time — into a stable,
// exportable Trace with derived load-imbalance and straggler-skew metrics.
//
// This is the in-repo analogue of the accounting real systems ship with
// (DistDGL's per-partition communication counters, P³'s pipeline-stall
// breakdowns, DGCL's per-link cost attribution): every experiment that claims
// "technique X moves less data" or "partition Y balances better" can attach a
// Trace as evidence instead of a single global byte count.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"graphsys/internal/cluster"
)

// Trace is the exportable snapshot of one engine run on the cluster runtime.
// Field order is the stable JSON export order; do not reorder.
type Trace struct {
	Workload string `json:"workload"`
	Workers  int    `json:"workers"`

	// Global aggregates (always present). Messages counts logical payloads;
	// Attempts counts physical transmissions including FaultPlan retries.
	Messages      int64   `json:"messages"`
	Attempts      int64   `json:"attempts"`
	Bytes         int64   `json:"bytes"`
	LocalMessages int64   `json:"local_messages"`
	Rounds        int64   `json:"rounds"`
	WeightedCost  float64 `json:"weighted_cost"`

	// Per-round series and per-link matrix (present when the network had
	// tracing enabled; see cluster.Network.EnableTrace).
	RoundSeries  []cluster.RoundStats `json:"round_series,omitempty"`
	LinkBytes    [][]int64            `json:"link_bytes,omitempty"`
	LinkMessages [][]int64            `json:"link_messages,omitempty"`

	// Per-worker meters derived from the matrix and the cluster busy clocks.
	WorkerBusySec  []float64 `json:"worker_busy_sec,omitempty"`
	WorkerSentMsgs []int64   `json:"worker_sent_msgs,omitempty"`
	WorkerRecvMsgs []int64   `json:"worker_recv_msgs,omitempty"`

	Skew Skew `json:"skew"`

	// Recovery meters fault injection and recovery work (checkpoints taken,
	// rounds re-executed after a crash, retry traffic on lossy links).
	// Present only when the run executed a cluster.FaultPlan.
	Recovery *cluster.RecoveryStats `json:"recovery,omitempty"`

	// Storage meters the out-of-core graph layer (internal/storage): block
	// cache hits/misses and disk bytes, with a per-round series. Present only
	// when the run served adjacency from a disk-backed GraphSource.
	Storage *StorageTrace `json:"storage,omitempty"`
}

// StorageTrace is the disk-I/O section of a trace: the provider's footprint,
// run totals, and the per-round series engines record at each superstep (or
// training round) barrier. Engines fill it from storage.IOStats; obs stays
// free of a storage dependency.
type StorageTrace struct {
	Kind          string  `json:"kind"` // "disk"
	FileBytes     int64   `json:"file_bytes"`
	ResidentBytes int64   `json:"resident_bytes"`
	CacheBytes    int64   `json:"cache_bytes"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	BlocksRead    int64   `json:"blocks_read"`
	BytesRead     int64   `json:"bytes_read"`
	HitRatio      float64 `json:"hit_ratio"`

	Rounds []StorageRound `json:"rounds,omitempty"`
}

// StorageRound is one round's slice of the disk-I/O meters.
type StorageRound struct {
	Round      int   `json:"round"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	BlocksRead int64 `json:"blocks_read"`
	BytesRead  int64 `json:"bytes_read"`
}

// Skew summarises load imbalance and straggler skew.
type Skew struct {
	MaxBusySec    float64 `json:"max_busy_sec"`
	MeanBusySec   float64 `json:"mean_busy_sec"`
	BusyImbalance float64 `json:"busy_imbalance"` // max/mean; 1.0 = perfectly balanced

	// Per-round traffic distribution (nearest-rank percentiles over rounds).
	P50RoundBytes int64 `json:"p50_round_bytes"`
	P99RoundBytes int64 `json:"p99_round_bytes"`
	P50RoundMsgs  int64 `json:"p50_round_msgs"`
	P99RoundMsgs  int64 `json:"p99_round_msgs"`
}

// Collect snapshots a cluster (network aggregates, trace if enabled, busy
// clocks) into a Trace labeled with the given workload name.
func Collect(workload string, c *cluster.Cluster) *Trace {
	net := c.Network()
	st := net.Stats()
	t := &Trace{
		Workload:      workload,
		Workers:       c.NumWorkers(),
		Messages:      st.Messages,
		Attempts:      st.Attempts,
		Bytes:         st.Bytes,
		LocalMessages: st.LocalMessages,
		Rounds:        st.Rounds,
		WeightedCost:  st.WeightedCost,
		WorkerBusySec: c.WorkerBusy(),
	}
	t.RoundSeries = net.RoundHistory()
	t.LinkBytes, t.LinkMessages = net.TrafficMatrix()
	if t.LinkMessages != nil {
		n := c.NumWorkers()
		t.WorkerSentMsgs = make([]int64, n)
		t.WorkerRecvMsgs = make([]int64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				t.WorkerSentMsgs[i] += t.LinkMessages[i][j]
				t.WorkerRecvMsgs[j] += t.LinkMessages[i][j]
			}
		}
	}
	t.Skew = computeSkew(t.WorkerBusySec, t.RoundSeries)
	if fi := c.Faults(); fi != nil {
		st := fi.Stats()
		t.Recovery = &st
	}
	return t
}

// Finish is the one-call trace hookup for engines built on the cluster
// runtime: it collects a Trace for the finished run when opts asked for one
// and returns nil otherwise, so engines carry no per-engine tracing logic
// beyond attaching the result.
func Finish(opts cluster.RunOptions, workload string, c *cluster.Cluster) *Trace {
	if !opts.Trace {
		return nil
	}
	return Collect(workload, c)
}

func computeSkew(busy []float64, rounds []cluster.RoundStats) Skew {
	var s Skew
	if len(busy) > 0 {
		var sum float64
		for _, b := range busy {
			sum += b
			if b > s.MaxBusySec {
				s.MaxBusySec = b
			}
		}
		s.MeanBusySec = sum / float64(len(busy))
		if s.MeanBusySec > 0 {
			s.BusyImbalance = s.MaxBusySec / s.MeanBusySec
		}
	}
	if len(rounds) > 0 {
		bytes := make([]int64, len(rounds))
		msgs := make([]int64, len(rounds))
		for i, r := range rounds {
			bytes[i] = r.Bytes
			msgs[i] = r.Messages
		}
		s.P50RoundBytes = percentile(bytes, 0.50)
		s.P99RoundBytes = percentile(bytes, 0.99)
		s.P50RoundMsgs = percentile(msgs, 0.50)
		s.P99RoundMsgs = percentile(msgs, 0.99)
	}
	return s
}

// percentile returns the nearest-rank q-th percentile of xs (q in (0,1]).
func percentile(xs []int64, q float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteJSON writes the trace as stable, indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(enc, '\n'))
	return err
}

// WriteAll writes several traces as one stable JSON document
// ({"traces": [...]}), the format cmd/graphbench -trace emits.
func WriteAll(w io.Writer, traces []*Trace) error {
	doc := struct {
		Traces []*Trace `json:"traces"`
	}{Traces: traces}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(enc, '\n'))
	return err
}

// WriteCSV writes the per-round series as CSV
// (round,messages,attempts,bytes,local_messages,weighted_cost).
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "round,messages,attempts,bytes,local_messages,weighted_cost"); err != nil {
		return err
	}
	for _, r := range t.RoundSeries {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%g\n",
			r.Round, r.Messages, r.Attempts, r.Bytes, r.LocalMessages, r.WeightedCost); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a one-line human-readable digest of the trace.
func (t *Trace) Summary() string {
	return fmt.Sprintf("%s: workers=%d msgs=%d bytes=%d rounds=%d cost=%.0f imbalance=%.2f",
		t.Workload, t.Workers, t.Messages, t.Bytes, t.Rounds, t.WeightedCost, t.Skew.BusyImbalance)
}
