package det

import (
	"sort"
	"testing"
)

func TestSortedKeysInt(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	for trial := 0; trial < 8; trial++ { // map order is randomised per range
		ks := SortedKeys(m)
		if !sort.IntsAreSorted(ks) {
			t.Fatalf("trial %d: keys not sorted: %v", trial, ks)
		}
		if len(ks) != len(m) {
			t.Fatalf("trial %d: got %d keys, want %d", trial, len(ks), len(m))
		}
	}
}

func TestSortedKeysString(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i, k := range ks {
		if k != want[i] {
			t.Fatalf("got %v, want %v", ks, want)
		}
	}
}

func TestSortedKeysEmpty(t *testing.T) {
	if ks := SortedKeys(map[int]int{}); len(ks) != 0 {
		t.Fatalf("got %v, want empty", ks)
	}
}

func TestSortedKeysNil(t *testing.T) {
	var m map[string]struct{}
	ks := SortedKeys(m)
	if len(ks) != 0 {
		t.Fatalf("nil map: got %v, want empty", ks)
	}
	if ks == nil {
		t.Fatal("nil map: want an empty (non-nil) slice, so callers can range and append uniformly")
	}
}

func TestSortedKeysUint64(t *testing.T) {
	m := map[uint64]bool{1 << 40: true, 3: true, 1 << 20: true, 0: true}
	ks := SortedKeys(m)
	want := []uint64{0, 3, 1 << 20, 1 << 40}
	for i, k := range ks {
		if k != want[i] {
			t.Fatalf("got %v, want %v", ks, want)
		}
	}
}

func TestSortedKeysFloat64(t *testing.T) {
	m := map[float64]int{2.5: 1, -1.5: 2, 0: 3}
	ks := SortedKeys(m)
	want := []float64{-1.5, 0, 2.5}
	for i, k := range ks {
		if k != want[i] {
			t.Fatalf("got %v, want %v", ks, want)
		}
	}
}

func TestSortedKeysInt32(t *testing.T) {
	m := map[int32]string{-7: "a", 42: "b", 0: "c"}
	ks := SortedKeys(m)
	want := []int32{-7, 0, 42}
	for i, k := range ks {
		if k != want[i] {
			t.Fatalf("got %v, want %v", ks, want)
		}
	}
}

// TestSortedKeysSingleton pins the len==cap preallocation contract: one key,
// one slot.
func TestSortedKeysSingleton(t *testing.T) {
	ks := SortedKeys(map[int]int{9: 1})
	if len(ks) != 1 || ks[0] != 9 {
		t.Fatalf("got %v, want [9]", ks)
	}
	if cap(ks) != 1 {
		t.Fatalf("cap=%d, want exactly the key count (no over-allocation)", cap(ks))
	}
}
