package det

import (
	"sort"
	"testing"
)

func TestSortedKeysInt(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	for trial := 0; trial < 8; trial++ { // map order is randomised per range
		ks := SortedKeys(m)
		if !sort.IntsAreSorted(ks) {
			t.Fatalf("trial %d: keys not sorted: %v", trial, ks)
		}
		if len(ks) != len(m) {
			t.Fatalf("trial %d: got %d keys, want %d", trial, len(ks), len(m))
		}
	}
}

func TestSortedKeysString(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i, k := range ks {
		if k != want[i] {
			t.Fatalf("got %v, want %v", ks, want)
		}
	}
}

func TestSortedKeysEmpty(t *testing.T) {
	if ks := SortedKeys(map[int]int{}); len(ks) != 0 {
		t.Fatalf("got %v, want empty", ks)
	}
}
