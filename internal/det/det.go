// Package det holds tiny helpers for deterministic iteration over Go maps.
//
// Go randomises map iteration order on purpose; the runtime's determinism
// contract (DESIGN.md §3.7–§3.9) forbids letting that order reach anything
// observable — message emission, float accumulation, collected output.
// Engines iterate maps through SortedKeys so every run, at any worker count,
// folds in the same order. graphlint's maprange check (internal/lint)
// enforces the contract statically.
package det

import (
	"cmp"
	"sort"
)

// SortedKeys returns the keys of m in ascending order. The extra O(k log k)
// is paid only where map contents feed deterministic state; hot loops keep
// slices.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
