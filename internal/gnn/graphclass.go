package gnn

import (
	"math/rand"

	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// Whole-graph classification with a GNN (the deep-learning alternative to
// frequent-pattern features on Figure 1's path 4): per-graph GIN layers with
// shared weights, mean-pool readout, and a dense classification head.

// GraphClassConfig configures GNN graph classification.
type GraphClassConfig struct {
	Kind   ModelKind // GIN recommended (most expressive sum aggregator)
	Hidden int
	Epochs int
	LR     float64
	Seed   int64
}

func (c *GraphClassConfig) defaults() {
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
}

// GraphClassifier classifies whole graphs.
type GraphClassifier struct {
	cfg     GraphClassConfig
	dims    []int
	inDim   int
	classes int
	// shared parameters: the template model (bound to an arbitrary graph,
	// used only as weight storage) plus the readout head
	template *Model
	readout  *nn.Dense
}

// oneHotFeatures encodes vertex labels as one-hot rows of width inDim.
func oneHotFeatures(g *graph.Graph, inDim int) *tensor.Matrix {
	x := tensor.New(g.NumVertices(), inDim)
	for v := 0; v < g.NumVertices(); v++ {
		l := int(g.Label(graph.V(v)))
		if l < inDim {
			x.Set(v, l, 1)
		}
	}
	return x
}

// TrainGraphClassifier trains a GNN whole-graph classifier on the
// transactions with trainMask true and returns the classifier. Vertex
// features are one-hot vertex labels.
func TrainGraphClassifier(db *graph.TransactionDB, trainMask []bool, cfg GraphClassConfig) *GraphClassifier {
	cfg.defaults()
	var maxLabel int32
	classes := 0
	for i, g := range db.Graphs {
		if g.MaxLabel() > maxLabel {
			maxLabel = g.MaxLabel()
		}
		if db.Class[i]+1 > classes {
			classes = db.Class[i] + 1
		}
	}
	inDim := int(maxLabel) + 1
	gc := &GraphClassifier{
		cfg:     cfg,
		inDim:   inDim,
		classes: classes,
		dims:    []int{inDim, cfg.Hidden, cfg.Hidden},
	}
	gc.template = NewModel(db.Graphs[0], cfg.Kind, gc.dims, cfg.Seed)
	gc.readout = nn.NewDense(cfg.Hidden, classes, cfg.Seed+999)

	params := append(gc.template.Params(), gc.readout.Params()...)
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var trainIdx []int
	for i, m := range trainMask {
		if m {
			trainIdx = append(trainIdx, i)
		}
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := rng.Perm(len(trainIdx))
		for _, pi := range perm {
			i := trainIdx[pi]
			g := db.Graphs[i]
			if g.NumVertices() == 0 {
				continue
			}
			// per-graph model sharing the template's weights
			m := NewModel(g, cfg.Kind, gc.dims, cfg.Seed)
			copyParams(m, gc.template)
			x := oneHotFeatures(g, inDim)
			h := m.Forward(x)
			pooled := meanPool(h)
			logits := gc.readout.Forward(pooled)
			_, dLogits := nn.SoftmaxCrossEntropy(logits, []int{db.Class[i]})
			dPooled := gc.readout.Backward(dLogits)
			m.Backward(meanPoolBackward(dPooled, h.Rows))
			addGrads(gc.template, m)
			opt.Step(params)
		}
	}
	return gc
}

// Predict returns the predicted class of g.
func (gc *GraphClassifier) Predict(g *graph.Graph) int {
	if g.NumVertices() == 0 {
		return 0
	}
	m := NewModel(g, gc.cfg.Kind, gc.dims, gc.cfg.Seed)
	copyParams(m, gc.template)
	h := m.Forward(oneHotFeatures(g, gc.inDim))
	logits := gc.readout.Forward(meanPool(h))
	row := logits.Row(0)
	arg := 0
	for j, v := range row {
		if v > row[arg] {
			arg = j
		}
	}
	return arg
}

// Accuracy evaluates on transactions with mask true (nil = all).
func (gc *GraphClassifier) Accuracy(db *graph.TransactionDB, mask []bool) float64 {
	correct, total := 0, 0
	for i, g := range db.Graphs {
		if mask != nil && !mask[i] {
			continue
		}
		if gc.Predict(g) == db.Class[i] {
			correct++
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// meanPool averages all rows into a 1×d matrix.
func meanPool(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(1, h.Cols)
	or := out.Row(0)
	for i := 0; i < h.Rows; i++ {
		r := h.Row(i)
		for j := range or {
			or[j] += r[j]
		}
	}
	inv := 1 / float32(h.Rows)
	for j := range or {
		or[j] *= inv
	}
	return out
}

// meanPoolBackward broadcasts the pooled gradient back to every row.
func meanPoolBackward(dPooled *tensor.Matrix, rows int) *tensor.Matrix {
	out := tensor.New(rows, dPooled.Cols)
	inv := 1 / float32(rows)
	dr := dPooled.Row(0)
	for i := 0; i < rows; i++ {
		r := out.Row(i)
		for j := range r {
			r[j] = dr[j] * inv
		}
	}
	return out
}
