package gnn

import (
	"math/rand"

	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/storage"
	"graphsys/internal/tensor"
)

// SampledSubgraph is a minibatch training block: the induced subgraph over a
// sampled k-hop neighborhood of a seed batch, plus the mapping back to
// global vertex ids.
type SampledSubgraph struct {
	Graph    *graph.Graph
	NewToOld []graph.V
	SeedLoc  []int // local indices of the seed vertices
}

// NeighborSample draws the k-hop sampled neighborhood of seeds with the
// given per-hop fanouts (Euler/AliGraph/DistDGL-style neighbor sampling):
// at each hop every frontier vertex keeps at most fanout random neighbors.
func NeighborSample(g *graph.Graph, seeds []graph.V, fanouts []int, rng *rand.Rand) *SampledSubgraph {
	order, _ := sampleOrder(func(v graph.V) ([]graph.V, error) { return g.Neighbors(v), nil }, seeds, fanouts, rng)
	sub, newToOld := g.InducedSubgraph(order)
	s := &SampledSubgraph{Graph: sub, NewToOld: newToOld}
	for i := range seeds {
		s.SeedLoc = append(s.SeedLoc, i) // seeds were added first, dedup-safe for distinct seeds
	}
	return s
}

// NeighborSampleSource is NeighborSample over a storage.GraphSource handle:
// the adjacency comes from the out-of-core block cache instead of the
// in-memory CSR. The rng draw sequence depends only on neighbor list
// contents, so for the same graph bytes the sampled subgraph — and therefore
// the whole training trajectory — is byte-identical to the in-memory path.
// (Block files carry adjacency only; the induced subgraph is unlabeled,
// which the models never observe — batch labels come from the task.)
func NeighborSampleSource(src storage.GraphSource, seeds []graph.V, fanouts []int, rng *rand.Rand) (*SampledSubgraph, error) {
	order, err := sampleOrder(src.Neighbors, seeds, fanouts, rng)
	if err != nil {
		return nil, err
	}
	sub, newToOld, err := inducedFromSource(src, order)
	if err != nil {
		return nil, err
	}
	s := &SampledSubgraph{Graph: sub, NewToOld: newToOld}
	for i := range seeds {
		s.SeedLoc = append(s.SeedLoc, i)
	}
	return s, nil
}

// sampleOrder runs the fanout-sampling walk and returns the sampled vertices
// in first-visit order (seeds first). The neigh views are used only between
// successive calls, respecting the GraphSource one-live-view contract.
func sampleOrder(neigh func(v graph.V) ([]graph.V, error), seeds []graph.V, fanouts []int, rng *rand.Rand) ([]graph.V, error) {
	inSet := map[graph.V]int{}
	var order []graph.V
	addV := func(v graph.V) {
		if _, ok := inSet[v]; !ok {
			inSet[v] = len(order)
			order = append(order, v)
		}
	}
	for _, s := range seeds {
		addV(s)
	}
	frontier := append([]graph.V(nil), seeds...)
	for _, fanout := range fanouts {
		var next []graph.V
		for _, v := range frontier {
			ns, err := neigh(v)
			if err != nil {
				return nil, err
			}
			if len(ns) == 0 {
				continue
			}
			if len(ns) <= fanout {
				for _, u := range ns {
					if _, ok := inSet[u]; !ok {
						next = append(next, u)
					}
					addV(u)
				}
				continue
			}
			for i := 0; i < fanout; i++ {
				u := ns[rng.Intn(len(ns))]
				if _, ok := inSet[u]; !ok {
					next = append(next, u)
				}
				addV(u)
			}
		}
		frontier = next
	}
	return order, nil
}

// inducedFromSource builds the subgraph induced by vs (assumed distinct, as
// sampleOrder produces) reading adjacency from src, mirroring
// graph.InducedSubgraph's edge selection so the resulting CSR is
// byte-identical for unlabeled graphs.
func inducedFromSource(src storage.GraphSource, vs []graph.V) (*graph.Graph, []graph.V, error) {
	oldToNew := make(map[graph.V]graph.V, len(vs))
	for i, v := range vs {
		oldToNew[v] = graph.V(i)
	}
	directed := src.Directed()
	b := graph.NewBuilder(len(vs), directed)
	for i, old := range vs {
		ns, err := src.Neighbors(old)
		if err != nil {
			return nil, nil, err
		}
		for _, w := range ns {
			nw, ok := oldToNew[w]
			if !ok {
				continue
			}
			if !directed && old > w {
				continue // add each undirected edge once
			}
			b.AddEdge(graph.V(i), nw)
		}
	}
	return b.Build(), append([]graph.V(nil), vs...), nil
}

// Features extracts the feature rows for the sampled vertices.
func (s *SampledSubgraph) Features(x *tensor.Matrix) *tensor.Matrix {
	idx := make([]int, len(s.NewToOld))
	for i, v := range s.NewToOld {
		idx[i] = int(v)
	}
	return tensor.SelectRows(x, idx)
}

// MinibatchConfig controls sampled training.
type MinibatchConfig struct {
	Epochs    int
	BatchSize int
	Fanouts   []int
	LR        float64
	Hidden    int
	Kind      ModelKind
	Seed      int64
}

// TrainMinibatch trains with neighbor-sampled minibatches (the
// Euler/AliGraph/ByteGNN regime) and returns test accuracy. A fresh model is
// built per batch subgraph sharing one parameter set via weight copying is
// complex; instead the standard trick for this scale is full weight reuse:
// we keep one set of parameter matrices and rebuild layers per batch bound
// to the batch subgraph.
func TrainMinibatch(g *graph.Graph, x *tensor.Matrix, labels []int, trainSeeds []graph.V, testMask []bool, cfg MinibatchConfig) (float64, *Model) {
	if cfg.Epochs == 0 {
		cfg.Epochs = 5
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 16
	}
	if len(cfg.Fanouts) == 0 {
		cfg.Fanouts = []int{10, 10}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numClasses := 0
	for _, l := range labels {
		if l+1 > numClasses {
			numClasses = l + 1
		}
	}
	dims := []int{x.Cols, cfg.Hidden, numClasses}

	// persistent parameters: one model on the full graph whose weights are
	// copied into per-batch models and gradients copied back
	master := NewModel(g, cfg.Kind, dims, cfg.Seed)
	opt := nn.NewAdam(cfg.LR)

	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := rng.Perm(len(trainSeeds))
		for lo := 0; lo < len(perm); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(perm) {
				hi = len(perm)
			}
			batch := make([]graph.V, 0, hi-lo)
			for _, i := range perm[lo:hi] {
				batch = append(batch, trainSeeds[i])
			}
			sub := NeighborSample(g, batch, cfg.Fanouts, rng)
			bx := sub.Features(x)
			blabels := make([]int, sub.Graph.NumVertices())
			for i := range blabels {
				blabels[i] = -1
			}
			for _, loc := range sub.SeedLoc {
				blabels[loc] = labels[sub.NewToOld[loc]]
			}
			bm := NewModel(sub.Graph, cfg.Kind, dims, cfg.Seed)
			copyParams(bm, master)
			logits := bm.Forward(bx)
			_, dLogits := nn.SoftmaxCrossEntropy(logits, blabels)
			bm.Backward(dLogits)
			addGrads(master, bm)
			opt.Step(master.Params())
		}
	}
	return evalFullGraph(g, master, x, labels, testMask, dims, cfg), master
}

func evalFullGraph(g *graph.Graph, master *Model, x *tensor.Matrix, labels []int, testMask []bool, dims []int, cfg MinibatchConfig) float64 {
	eval := NewModel(g, cfg.Kind, dims, cfg.Seed)
	copyParams(eval, master)
	logits := eval.Forward(x)
	return nn.Accuracy(logits, labels, testMask)
}

func copyParams(dst, src *Model) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		copy(dp[i].W.Data, sp[i].W.Data)
	}
}

func addGrads(dst, src *Model) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		dp[i].Grad.AddInPlace(sp[i].Grad)
		sp[i].ZeroGrad()
	}
}

// KHopStats reports the storage blowup of AGL-style k-hop materialisation.
type KHopStats struct {
	Subgraphs     int
	TotalVertices int64
	TotalEdges    int64
	// BlowupFactor = total materialised vertices / graph vertices
	BlowupFactor float64
}

// KHopMaterialize precomputes the full (unsampled) k-hop neighborhood
// subgraph of every seed, AGL's MapReduce preprocessing that eliminates
// graph-data communication during training at the cost of massive storage
// redundancy — the trade-off the stats expose.
func KHopMaterialize(g *graph.Graph, seeds []graph.V, k int) ([]*SampledSubgraph, KHopStats) {
	var out []*SampledSubgraph
	var st KHopStats
	for _, s := range seeds {
		visited := map[graph.V]bool{s: true}
		order := []graph.V{s}
		frontier := []graph.V{s}
		for hop := 0; hop < k; hop++ {
			var next []graph.V
			for _, v := range frontier {
				for _, u := range g.Neighbors(v) {
					if !visited[u] {
						visited[u] = true
						order = append(order, u)
						next = append(next, u)
					}
				}
			}
			frontier = next
		}
		sub, newToOld := g.InducedSubgraph(order)
		out = append(out, &SampledSubgraph{Graph: sub, NewToOld: newToOld, SeedLoc: []int{0}})
		st.TotalVertices += int64(sub.NumVertices())
		st.TotalEdges += int64(sub.NumEdges())
	}
	st.Subgraphs = len(out)
	if g.NumVertices() > 0 {
		st.BlowupFactor = float64(st.TotalVertices) / float64(g.NumVertices())
	}
	return out, st
}
