package gnn

import (
	"math/rand"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/tensor"
)

func TestGradCheckGIN(t *testing.T) { gradCheck(t, testGraph(), GIN) }

func TestGINDistinguishesMultisets(t *testing.T) {
	// GIN's sum aggregation separates a degree-2 vertex with neighbors
	// {a, a} from one with {a}: the mean aggregator cannot.
	b1 := graph.NewBuilder(3, false)
	b1.AddEdge(0, 1)
	b1.AddEdge(0, 2)
	star := b1.Build() // center has 2 identical-feature neighbors
	b2 := graph.NewBuilder(2, false)
	b2.AddEdge(0, 1)
	edge := b2.Build() // center has 1

	x1 := tensor.FromRows([][]float32{{1}, {1}, {1}})
	x2 := tensor.FromRows([][]float32{{1}, {1}})

	gin1 := NewSumAgg(star).Apply(x1)
	gin2 := NewSumAgg(edge).Apply(x2)
	if gin1.At(0, 0) == gin2.At(0, 0) {
		t.Fatal("sum aggregation should distinguish neighbor multisets")
	}
	mean1 := NewMeanAgg(star).Apply(x1)
	mean2 := NewMeanAgg(edge).Apply(x2)
	if mean1.At(0, 0) != mean2.At(0, 0) {
		t.Fatal("mean aggregation collapses them (the GIN motivation)")
	}
}

func TestMeanPoolRoundTrip(t *testing.T) {
	h := tensor.FromRows([][]float32{{2, 4}, {4, 8}})
	p := meanPool(h)
	if p.At(0, 0) != 3 || p.At(0, 1) != 6 {
		t.Fatalf("pool = %v", p.Data)
	}
	// adjoint property: <pool(h), y> == <h, poolT(y)>
	y := tensor.FromRows([][]float32{{1, 2}})
	back := meanPoolBackward(y, 2)
	var lhs, rhs float64
	for j := 0; j < 2; j++ {
		lhs += float64(p.At(0, j)) * float64(y.At(0, j))
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			rhs += float64(h.At(i, j)) * float64(back.At(i, j))
		}
	}
	if lhs-rhs > 1e-6 || rhs-lhs > 1e-6 {
		t.Fatalf("pool adjoint violated: %f vs %f", lhs, rhs)
	}
}

func TestGraphClassifierLearnsMotif(t *testing.T) {
	db := gen.MoleculeDB(80, 8, 3, 0.95, 31)
	rng := rand.New(rand.NewSource(2))
	trainMask := make([]bool, db.Len())
	testMask := make([]bool, db.Len())
	for i := range trainMask {
		if rng.Float64() < 0.6 {
			trainMask[i] = true
		} else {
			testMask[i] = true
		}
	}
	gc := TrainGraphClassifier(db, trainMask, GraphClassConfig{Kind: GIN, Hidden: 16, Epochs: 20, LR: 0.01, Seed: 1})
	acc := gc.Accuracy(db, testMask)
	if acc < 0.75 {
		t.Fatalf("GIN graph classification accuracy %.3f", acc)
	}
	// train accuracy should be at least as informative
	if tr := gc.Accuracy(db, trainMask); tr < acc-0.15 {
		t.Fatalf("train %.3f far below test %.3f", tr, acc)
	}
}

func TestGraphClassifierGCNKindAlsoWorks(t *testing.T) {
	db := gen.MoleculeDB(60, 8, 3, 0.95, 33)
	trainMask := make([]bool, db.Len())
	for i := range trainMask {
		trainMask[i] = i%4 < 2 // half of each class (class = i%2)
	}
	gc := TrainGraphClassifier(db, trainMask, GraphClassConfig{Kind: GCN, Hidden: 16, Epochs: 40, LR: 0.02, Seed: 2})
	if acc := gc.Accuracy(db, nil); acc < 0.6 {
		t.Fatalf("GCN graph classifier accuracy %.3f", acc)
	}
}

func TestGINNodeClassification(t *testing.T) {
	task := SyntheticCommunityTask(150, 3, 2, 0.3, 9)
	m := NewModel(task.G, GIN, []int{task.X.Cols, 16, 3}, 4)
	res := TrainFullGraph(m, task.X, task.Labels, task.TrainMask, task.TestMask,
		TrainConfig{Epochs: 60, LR: 0.01})
	if res.TestAcc < 0.8 {
		t.Fatalf("GIN node classification accuracy %.3f", res.TestAcc)
	}
}

func TestGraphRegressorLearnsTriangleDensity(t *testing.T) {
	// graphs with varying triangle counts; targets = triangles / 10
	rng := rand.New(rand.NewSource(5))
	var graphs []*graph.Graph
	var targets []float64
	for i := 0; i < 60; i++ {
		n := 12 + rng.Intn(8)
		m := int64(n + rng.Intn(3*n))
		g := gen.ErdosRenyi(n, m, int64(i))
		graphs = append(graphs, g)
		targets = append(targets, float64(graph.TriangleCount(g))/10)
	}
	trainMask := make([]bool, len(graphs))
	for i := range trainMask {
		trainMask[i] = i%3 != 0
	}
	r := TrainGraphRegressor(graphs, targets, trainMask, RegressConfig{Hidden: 16, Epochs: 60, LR: 0.005, Seed: 1})
	// compare test MSE against the mean-predictor baseline
	var mean float64
	nTrain := 0
	for i, m := range trainMask {
		if m {
			mean += targets[i]
			nTrain++
		}
	}
	mean /= float64(nTrain)
	var mseModel, mseBase float64
	nTest := 0
	for i, m := range trainMask {
		if m {
			continue
		}
		p := r.Predict(graphs[i])
		mseModel += (p - targets[i]) * (p - targets[i])
		mseBase += (mean - targets[i]) * (mean - targets[i])
		nTest++
	}
	mseModel /= float64(nTest)
	mseBase /= float64(nTest)
	if mseModel >= mseBase*0.6 {
		t.Fatalf("neural counter MSE %.4f not well below mean-baseline %.4f", mseModel, mseBase)
	}
}

func TestSumPoolAdjoint(t *testing.T) {
	h := tensor.FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	p := sumPool(h)
	if p.At(0, 0) != 9 || p.At(0, 1) != 12 {
		t.Fatalf("sumpool = %v", p.Data)
	}
	y := tensor.FromRows([][]float32{{2, -1}})
	back := sumPoolBackward(y, 3)
	var lhs, rhs float64
	for j := 0; j < 2; j++ {
		lhs += float64(p.At(0, j)) * float64(y.At(0, j))
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			rhs += float64(h.At(i, j)) * float64(back.At(i, j))
		}
	}
	if lhs != rhs {
		t.Fatalf("sumpool adjoint: %f vs %f", lhs, rhs)
	}
}
