// Package gnn implements graph neural network models (GCN, GraphSAGE, GAT)
// with exact manual backpropagation, plus the training regimes the paper's
// Section 3 contrasts: full-graph training, neighborhood-sampled minibatch
// training (Euler/AliGraph/DistDGL-style), and AGL-style k-hop subgraph
// materialisation. Each graph-convolution layer follows the two-stage
// structure the paper describes — Graph Data Retrieving (neighbor feature
// aggregation) followed by Model Computation.
package gnn

import (
	"math"

	"graphsys/internal/graph"
	"graphsys/internal/tensor"
)

// NormAdj is the symmetric-normalised adjacency with self-loops used by GCN:
// Â = D̃^(-1/2) (A+I) D̃^(-1/2), stored sparsely. Â is symmetric, so it is its
// own transpose in the backward pass.
type NormAdj struct {
	n       int
	nbrs    [][]graph.V
	weights [][]float32
}

// NewNormAdj precomputes Â for g.
func NewNormAdj(g *graph.Graph) *NormAdj {
	n := g.NumVertices()
	a := &NormAdj{n: n, nbrs: make([][]graph.V, n), weights: make([][]float32, n)}
	invSqrt := make([]float64, n)
	for v := 0; v < n; v++ {
		invSqrt[v] = 1 / math.Sqrt(float64(g.Degree(graph.V(v))+1))
	}
	for v := 0; v < n; v++ {
		ns := g.Neighbors(graph.V(v))
		a.nbrs[v] = append(append([]graph.V(nil), ns...), graph.V(v)) // self-loop
		w := make([]float32, len(ns)+1)
		for i, u := range ns {
			w[i] = float32(invSqrt[v] * invSqrt[u])
		}
		w[len(ns)] = float32(invSqrt[v] * invSqrt[v])
		a.weights[v] = w
	}
	return a
}

// NeighborsOf exposes row v's column indices (neighbors plus self-loop),
// for external chunked executors (internal/gnndist's HongTu offloading).
func (a *NormAdj) NeighborsOf(v int) []graph.V { return a.nbrs[v] }

// WeightsOf exposes row v's normalised weights, aligned with NeighborsOf.
func (a *NormAdj) WeightsOf(v int) []float32 { return a.weights[v] }

// Apply computes Â·H.
func (a *NormAdj) Apply(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(a.n, h.Cols)
	for v := 0; v < a.n; v++ {
		or := out.Row(v)
		for i, u := range a.nbrs[v] {
			w := a.weights[v][i]
			hr := h.Row(int(u))
			for j := range or {
				or[j] += w * hr[j]
			}
		}
	}
	return out
}

// MeanAgg is GraphSAGE's mean aggregator over (open) neighborhoods.
type MeanAgg struct {
	g *graph.Graph
}

// NewMeanAgg wraps g.
func NewMeanAgg(g *graph.Graph) *MeanAgg { return &MeanAgg{g: g} }

// Apply computes row v = mean of h over N(v) (zeros for isolated vertices).
func (m *MeanAgg) Apply(h *tensor.Matrix) *tensor.Matrix {
	n := m.g.NumVertices()
	out := tensor.New(n, h.Cols)
	for v := 0; v < n; v++ {
		ns := m.g.Neighbors(graph.V(v))
		if len(ns) == 0 {
			continue
		}
		or := out.Row(v)
		for _, u := range ns {
			hr := h.Row(int(u))
			for j := range or {
				or[j] += hr[j]
			}
		}
		inv := 1 / float32(len(ns))
		for j := range or {
			or[j] *= inv
		}
	}
	return out
}

// ApplyT computes the transpose action (scatter of the backward pass):
// out_u = Σ_{v : u∈N(v)} dy_v / |N(v)|. For undirected graphs this equals
// Σ_{v∈N(u)} dy_v / |N(v)|.
func (m *MeanAgg) ApplyT(dy *tensor.Matrix) *tensor.Matrix {
	n := m.g.NumVertices()
	out := tensor.New(n, dy.Cols)
	for v := 0; v < n; v++ {
		ns := m.g.Neighbors(graph.V(v))
		if len(ns) == 0 {
			continue
		}
		inv := 1 / float32(len(ns))
		dr := dy.Row(v)
		for _, u := range ns {
			or := out.Row(int(u))
			for j := range dr {
				or[j] += inv * dr[j]
			}
		}
	}
	return out
}
