// Package gnn implements graph neural network models (GCN, GraphSAGE, GAT)
// with exact manual backpropagation, plus the training regimes the paper's
// Section 3 contrasts: full-graph training, neighborhood-sampled minibatch
// training (Euler/AliGraph/DistDGL-style), and AGL-style k-hop subgraph
// materialisation. Each graph-convolution layer follows the two-stage
// structure the paper describes — Graph Data Retrieving (neighbor feature
// aggregation) followed by Model Computation.
//
// Aggregators are stored as CSR built once at construction and applied with
// parallel SpMM kernels. Both directions are gather-form: the forward kernel
// parallelises over destination rows, and the backward pass uses a transpose
// CSR (built at construction) so that each goroutine owns a disjoint block of
// OUTPUT rows instead of scattering with atomics. Per-row entries of the
// transpose are ordered by source row ascending — the same order the old
// serial scatter visited them — so results are bitwise identical to the
// serial kernels at any parallelism level.
package gnn

import (
	"fmt"
	"math"
	"sort"

	"graphsys/internal/graph"
	"graphsys/internal/tensor"
)

// csr is a compressed-sparse-row operator over vertex feature matrices.
// wts == nil means unit weights.
type csr struct {
	n      int
	rowPtr []int32
	col    []graph.V
	wts    []float32
}

// apply computes out = op(h) where row v of the result is
// rowScale[v] · Σ_idx wts[idx]·h[col[idx]] (rowScale/wts nil = unit). out is
// fully overwritten. Rows are independent, each owned by one goroutine and
// accumulated in CSR entry order, so results do not depend on how the row
// range is split.
func (c *csr) apply(h, out *tensor.Matrix, rowScale []float32) {
	if h.Rows != c.n {
		panic(fmt.Sprintf("gnn: aggregator input rows %d != vertices %d", h.Rows, c.n))
	}
	if out.Rows != c.n || out.Cols != h.Cols {
		panic(fmt.Sprintf("gnn: aggregator output %dx%d, want %dx%d", out.Rows, out.Cols, c.n, h.Cols))
	}
	nnz := int64(c.rowPtr[c.n])
	p := tensor.Parallelism()
	if p <= 1 || c.n <= 1 || nnz*int64(h.Cols) < tensor.SerialWorkThreshold {
		c.applyRange(h, out, rowScale, 0, c.n)
		return
	}
	bounds := splitRowsByNNZ(c.rowPtr, p)
	fns := make([]func(), len(bounds)-1)
	for i := range fns {
		lo, hi := bounds[i], bounds[i+1]
		fns[i] = func() { c.applyRange(h, out, rowScale, lo, hi) }
	}
	tensor.ParallelDo(fns)
}

// applyRange is the serial kernel over output rows [lo, hi).
func (c *csr) applyRange(h, out *tensor.Matrix, rowScale []float32, lo, hi int) {
	for v := lo; v < hi; v++ {
		or := out.Row(v)
		for j := range or {
			or[j] = 0
		}
		s, e := c.rowPtr[v], c.rowPtr[v+1]
		if c.wts == nil {
			for idx := s; idx < e; idx++ {
				hr := h.Row(int(c.col[idx]))
				for j, hv := range hr {
					or[j] += hv
				}
			}
		} else {
			for idx := s; idx < e; idx++ {
				w := c.wts[idx]
				hr := h.Row(int(c.col[idx]))
				for j, hv := range hr {
					or[j] += w * hv
				}
			}
		}
		if rowScale != nil {
			inv := rowScale[v]
			for j := range or {
				or[j] *= inv
			}
		}
	}
}

// transpose returns the CSR of the adjoint operator. Entry weights are the
// source entry's weight times srcScale[v] (either may be nil = unit; both nil
// keeps wts nil). Entries within each output row are ordered by source row v
// ascending — exactly the order the serial scatter loop (v outer, ascending)
// used to touch that row, so the gather-form backward reproduces it bitwise.
func (c *csr) transpose(srcScale []float32) *csr {
	t := &csr{n: c.n, rowPtr: make([]int32, c.n+1), col: make([]graph.V, len(c.col))}
	if c.wts != nil || srcScale != nil {
		t.wts = make([]float32, len(c.col))
	}
	for _, u := range c.col {
		t.rowPtr[u+1]++
	}
	for u := 0; u < c.n; u++ {
		t.rowPtr[u+1] += t.rowPtr[u]
	}
	next := make([]int32, c.n)
	copy(next, t.rowPtr[:c.n])
	for v := 0; v < c.n; v++ {
		for idx := c.rowPtr[v]; idx < c.rowPtr[v+1]; idx++ {
			u := c.col[idx]
			p := next[u]
			next[u]++
			t.col[p] = graph.V(v)
			if t.wts != nil {
				w := float32(1)
				if c.wts != nil {
					w = c.wts[idx]
				}
				if srcScale != nil {
					w *= srcScale[v]
				}
				t.wts[p] = w
			}
		}
	}
	return t
}

// splitRowsByNNZ partitions rows [0, n) into at most p contiguous blocks of
// roughly equal nonzero count (power-law graphs concentrate edges on hub
// rows, so equal-row blocks would leave most workers idle). Returns block
// boundaries; boundaries affect load balance only, never results.
func splitRowsByNNZ(rowPtr []int32, p int) []int {
	n := len(rowPtr) - 1
	if p > n {
		p = n
	}
	total := int64(rowPtr[n])
	bounds := append(make([]int, 0, p+1), 0)
	for k := 1; k < p; k++ {
		target := total * int64(k) / int64(p)
		r := sort.Search(n, func(i int) bool { return int64(rowPtr[i]) >= target })
		if r <= bounds[len(bounds)-1] {
			continue
		}
		if r >= n {
			break
		}
		bounds = append(bounds, r)
	}
	return append(bounds, n)
}

// NormAdj is the symmetric-normalised adjacency with self-loops used by GCN:
// Â = D̃^(-1/2) (A+I) D̃^(-1/2), stored as CSR. Â is symmetric, so it is its
// own transpose in the backward pass.
type NormAdj struct {
	n   int
	adj *csr
}

// NewNormAdj precomputes Â for g.
func NewNormAdj(g *graph.Graph) *NormAdj {
	n := g.NumVertices()
	invSqrt := make([]float64, n)
	nnz := 0
	for v := 0; v < n; v++ {
		d := g.Degree(graph.V(v))
		invSqrt[v] = 1 / math.Sqrt(float64(d+1))
		nnz += d + 1
	}
	c := &csr{
		n:      n,
		rowPtr: make([]int32, n+1),
		col:    make([]graph.V, 0, nnz),
		wts:    make([]float32, 0, nnz),
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.V(v)) {
			c.col = append(c.col, u)
			c.wts = append(c.wts, float32(invSqrt[v]*invSqrt[u]))
		}
		c.col = append(c.col, graph.V(v)) // self-loop last, as before
		c.wts = append(c.wts, float32(invSqrt[v]*invSqrt[v]))
		c.rowPtr[v+1] = int32(len(c.col))
	}
	return &NormAdj{n: n, adj: c}
}

// NeighborsOf exposes row v's column indices (neighbors plus self-loop),
// for external chunked executors (internal/gnndist's HongTu offloading).
func (a *NormAdj) NeighborsOf(v int) []graph.V {
	return a.adj.col[a.adj.rowPtr[v]:a.adj.rowPtr[v+1]]
}

// WeightsOf exposes row v's normalised weights, aligned with NeighborsOf.
func (a *NormAdj) WeightsOf(v int) []float32 {
	return a.adj.wts[a.adj.rowPtr[v]:a.adj.rowPtr[v+1]]
}

// Apply computes Â·H.
func (a *NormAdj) Apply(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(a.n, h.Cols)
	a.ApplyInto(h, out)
	return out
}

// ApplyInto computes Â·H into out (fully overwritten), allocating nothing.
func (a *NormAdj) ApplyInto(h, out *tensor.Matrix) { a.adj.apply(h, out, nil) }

// MeanAgg is GraphSAGE's mean aggregator over (open) neighborhoods. The
// neighbor lists are hoisted into CSR once at construction (the old
// implementation re-derived g.Neighbors(v) on every call); the forward pass
// keeps the sum-then-scale evaluation order (Σh)·(1/|N(v)|) of the serial
// kernel, and isolated vertices still produce zero rows.
type MeanAgg struct {
	n    int
	adj  *csr      // unit-weight open neighborhoods
	adjT *csr      // transpose with weights 1/|N(src)|
	inv  []float32 // 1/|N(v)|, 0 for isolated vertices
}

// NewMeanAgg precomputes the aggregation CSR (and its transpose) for g.
func NewMeanAgg(g *graph.Graph) *MeanAgg {
	n := g.NumVertices()
	m := &MeanAgg{n: n, inv: make([]float32, n)}
	nnz := 0
	for v := 0; v < n; v++ {
		d := g.Degree(graph.V(v))
		nnz += d
		if d > 0 {
			m.inv[v] = 1 / float32(d)
		}
	}
	c := &csr{n: n, rowPtr: make([]int32, n+1), col: make([]graph.V, 0, nnz)}
	for v := 0; v < n; v++ {
		c.col = append(c.col, g.Neighbors(graph.V(v))...)
		c.rowPtr[v+1] = int32(len(c.col))
	}
	m.adj = c
	m.adjT = c.transpose(m.inv)
	return m
}

// Apply computes row v = mean of h over N(v) (zeros for isolated vertices).
func (m *MeanAgg) Apply(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(m.n, h.Cols)
	m.ApplyInto(h, out)
	return out
}

// ApplyInto is Apply into a preallocated out (fully overwritten).
func (m *MeanAgg) ApplyInto(h, out *tensor.Matrix) { m.adj.apply(h, out, m.inv) }

// ApplyT computes the transpose action (the backward pass):
// out_u = Σ_{v : u∈N(v)} dy_v / |N(v)|. For undirected graphs this equals
// Σ_{v∈N(u)} dy_v / |N(v)|.
func (m *MeanAgg) ApplyT(dy *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(m.n, dy.Cols)
	m.ApplyTInto(dy, out)
	return out
}

// ApplyTInto is ApplyT into a preallocated out (fully overwritten).
func (m *MeanAgg) ApplyTInto(dy, out *tensor.Matrix) { m.adjT.apply(dy, out, nil) }
