package gnn

import (
	"fmt"

	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// ModelKind selects the GNN architecture.
type ModelKind int

// Supported architectures.
const (
	GCN ModelKind = iota
	SAGE
	GAT
	GIN
)

func (k ModelKind) String() string {
	switch k {
	case GCN:
		return "GCN"
	case SAGE:
		return "GraphSAGE"
	case GAT:
		return "GAT"
	case GIN:
		return "GIN"
	}
	return fmt.Sprintf("ModelKind(%d)", int(k))
}

// Model is a stack of graph-convolution layers over one graph.
type Model struct {
	Kind   ModelKind
	Layers []Layer
}

// NewModel builds a model with the given layer widths (dims[0] = input
// feature dim, dims[len-1] = number of classes).
func NewModel(g *graph.Graph, kind ModelKind, dims []int, seed int64) *Model {
	if len(dims) < 2 {
		//lint:allow panicpolicy architecture literals are fixed at call sites; an invalid dims slice is a programmer error at construction
		panic("gnn: need at least input and output dims")
	}
	m := &Model{Kind: kind}
	for i := 0; i < len(dims)-1; i++ {
		last := i == len(dims)-2
		s := seed + int64(i)*101
		switch kind {
		case GCN:
			m.Layers = append(m.Layers, NewGCNLayer(g, dims[i], dims[i+1], last, s))
		case SAGE:
			m.Layers = append(m.Layers, NewSAGELayer(g, dims[i], dims[i+1], last, s))
		case GAT:
			m.Layers = append(m.Layers, NewGATLayer(g, dims[i], dims[i+1], last, s))
		case GIN:
			m.Layers = append(m.Layers, NewGINLayer(g, dims[i], dims[i+1], last, s))
		default:
			//lint:allow panicpolicy ModelKind is a closed enum; an unknown value is a programmer error at construction
			panic("gnn: unknown model kind")
		}
	}
	return m
}

// Forward runs all layers.
func (m *Model) Forward(x *tensor.Matrix) *tensor.Matrix {
	h := x
	for _, l := range m.Layers {
		h = l.Forward(h)
	}
	return h
}

// Backward propagates the logits gradient through all layers.
func (m *Model) Backward(dy *tensor.Matrix) *tensor.Matrix {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	var out []*nn.Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// TrainConfig controls full-graph training.
type TrainConfig struct {
	Epochs int
	LR     float64
	Seed   int64
}

// TrainResult records training progress.
type TrainResult struct {
	Losses   []float64
	TrainAcc float64
	TestAcc  float64
}

// TrainFullGraph trains the model with full-graph gradient descent (the
// DistGNN/HongTu/Sancus regime): every epoch computes the loss over all
// vertices with trainMask using the complete (unsampled) neighborhood.
// labels[i] < 0 marks unlabeled vertices.
func TrainFullGraph(m *Model, x *tensor.Matrix, labels []int, trainMask, testMask []bool, cfg TrainConfig) TrainResult {
	if cfg.Epochs == 0 {
		cfg.Epochs = 100
	}
	if cfg.LR == 0 {
		cfg.LR = 0.01
	}
	opt := nn.NewAdam(cfg.LR)
	masked := make([]int, len(labels))
	for i, l := range labels {
		if trainMask != nil && !trainMask[i] {
			masked[i] = -1
		} else {
			masked[i] = l
		}
	}
	var res TrainResult
	for ep := 0; ep < cfg.Epochs; ep++ {
		logits := m.Forward(x)
		loss, dLogits := nn.SoftmaxCrossEntropy(logits, masked)
		res.Losses = append(res.Losses, loss)
		m.Backward(dLogits)
		opt.Step(m.Params())
	}
	logits := m.Forward(x)
	res.TrainAcc = nn.Accuracy(logits, labels, trainMask)
	res.TestAcc = nn.Accuracy(logits, labels, testMask)
	return res
}
