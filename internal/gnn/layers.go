package gnn

import (
	"math"

	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// Layer is one graph-convolution layer with explicit backward.
//
// Layers own their output buffers and reuse them across training steps
// (shapes are stable), so steady-state epochs allocate nothing; a returned
// matrix is valid until the next call of the same method on the same layer.
type Layer interface {
	Forward(h *tensor.Matrix) *tensor.Matrix
	Backward(dy *tensor.Matrix) *tensor.Matrix
	Params() []*nn.Param
}

// GCNLayer computes σ(Â·H·W + b) (Kipf & Welling).
type GCNLayer struct {
	adj  *NormAdj
	lin  *nn.Dense
	act  *nn.ReLU
	last bool // last layer: no activation (logits)

	agg  *tensor.Matrix // reused Â·H buffer (cached by lin for backward)
	dAgg *tensor.Matrix // reused backward Â·dZ buffer
}

// NewGCNLayer builds a GCN layer over g.
func NewGCNLayer(g *graph.Graph, in, out int, last bool, seed int64) *GCNLayer {
	return &GCNLayer{adj: NewNormAdj(g), lin: nn.NewDense(in, out, seed), act: &nn.ReLU{}, last: last}
}

// Forward runs graph data retrieving (Â·H) then model computation (·W, σ).
func (l *GCNLayer) Forward(h *tensor.Matrix) *tensor.Matrix {
	l.agg = tensor.Reuse(l.agg, h.Rows, h.Cols)
	l.adj.ApplyInto(h, l.agg)
	z := l.lin.Forward(l.agg)
	if l.last {
		return z
	}
	return l.act.Forward(z)
}

// Backward propagates through σ, W and Â (Â is symmetric).
func (l *GCNLayer) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if !l.last {
		dy = l.act.Backward(dy)
	}
	dz := l.lin.Backward(dy)
	l.dAgg = tensor.Reuse(l.dAgg, dz.Rows, dz.Cols)
	l.adj.ApplyInto(dz, l.dAgg)
	return l.dAgg
}

// Params returns the layer parameters.
func (l *GCNLayer) Params() []*nn.Param { return l.lin.Params() }

// SAGELayer is the GraphSAGE mean-aggregator layer from the paper's §3
// equation: h'_v = σ(W·CONCAT(h_v, mean_{u∈N(v)} h_u) + b).
type SAGELayer struct {
	agg  *MeanAgg
	lin  *nn.Dense
	act  *nn.ReLU
	last bool
	inD  int

	hn     *tensor.Matrix // reused mean-aggregated features
	concat *tensor.Matrix // reused [h | hn] (cached by lin for backward)
	dSelf  *tensor.Matrix // reused split buffers
	dN     *tensor.Matrix
	dH     *tensor.Matrix // reused backward output
}

// NewSAGELayer builds a GraphSAGE layer over g.
func NewSAGELayer(g *graph.Graph, in, out int, last bool, seed int64) *SAGELayer {
	return &SAGELayer{agg: NewMeanAgg(g), lin: nn.NewDense(2*in, out, seed), act: &nn.ReLU{}, last: last, inD: in}
}

// Forward aggregates neighbor features and applies the dense transform.
func (l *SAGELayer) Forward(h *tensor.Matrix) *tensor.Matrix {
	l.hn = tensor.Reuse(l.hn, h.Rows, h.Cols)
	l.agg.ApplyInto(h, l.hn)
	l.concat = tensor.Reuse(l.concat, h.Rows, 2*h.Cols)
	tensor.ConcatColsInto(h, l.hn, l.concat)
	z := l.lin.Forward(l.concat)
	if l.last {
		return z
	}
	return l.act.Forward(z)
}

// Backward splits the concat gradient into self and neighbor parts.
func (l *SAGELayer) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if !l.last {
		dy = l.act.Backward(dy)
	}
	dConcat := l.lin.Backward(dy)
	l.dSelf = tensor.Reuse(l.dSelf, dConcat.Rows, l.inD)
	l.dN = tensor.Reuse(l.dN, dConcat.Rows, dConcat.Cols-l.inD)
	tensor.SplitColsInto(dConcat, l.dSelf, l.dN)
	l.dH = tensor.Reuse(l.dH, dConcat.Rows, l.inD)
	l.agg.ApplyTInto(l.dN, l.dH)
	l.dH.AddInPlace(l.dSelf)
	return l.dH
}

// Params returns the layer parameters.
func (l *SAGELayer) Params() []*nn.Param { return l.lin.Params() }

// GATLayer is a single-head graph attention layer (Veličković et al.):
// e_uv = LeakyReLU(aᴸ·z_u + aᴿ·z_v) over u ∈ N(v)∪{v}, α = softmax_u,
// out_v = σ(Σ_u α_uv z_u), where z = H·W. The neighborhoods (with self-loop
// last) are hoisted into a flat CSR at construction, and the attention
// coefficient caches are flat nnz-length arrays instead of per-vertex
// allocations. The forward pass is parallel over destination vertices (each
// owns its out/alpha rows — deterministic at any worker count); the backward
// pass scatters into arbitrary neighbor rows and stays serial.
type GATLayer struct {
	n        int
	rowPtr   []int32 // CSR over N(v)∪{v}, self-loop last
	nbrs     []graph.V
	W        *nn.Param
	AL, AR   *nn.Param
	last     bool
	negSlope float32

	// caches and reused buffers
	h      *tensor.Matrix
	z      *tensor.Matrix
	alpha  []float32 // flat, aligned with nbrs: attention over N(v)∪{v}
	pre    []float32 // flat pre-LeakyReLU scores
	sL, sR []float32
	out    *tensor.Matrix
	act    *nn.ReLU

	dz     *tensor.Matrix
	dx     *tensor.Matrix
	dsL    []float32
	dsR    []float32
	dalpha []float32 // scratch, cap = max row length
}

// NewGATLayer builds a single-head GAT layer over g.
func NewGATLayer(g *graph.Graph, in, out int, last bool, seed int64) *GATLayer {
	n := g.NumVertices()
	nnz := 0
	maxRow := 0
	for v := 0; v < n; v++ {
		d := g.Degree(graph.V(v)) + 1
		nnz += d
		if d > maxRow {
			maxRow = d
		}
	}
	l := &GATLayer{
		n:        n,
		rowPtr:   make([]int32, n+1),
		nbrs:     make([]graph.V, 0, nnz),
		W:        nn.NewParam(tensor.Xavier(in, out, seed)),
		AL:       nn.NewParam(tensor.Xavier(1, out, seed+1)),
		AR:       nn.NewParam(tensor.Xavier(1, out, seed+2)),
		last:     last,
		negSlope: 0.2,
		act:      &nn.ReLU{},
		alpha:    make([]float32, nnz),
		pre:      make([]float32, nnz),
		sL:       make([]float32, n),
		sR:       make([]float32, n),
		dsL:      make([]float32, n),
		dsR:      make([]float32, n),
		dalpha:   make([]float32, maxRow),
	}
	for v := 0; v < n; v++ {
		l.nbrs = append(l.nbrs, g.Neighbors(graph.V(v))...)
		l.nbrs = append(l.nbrs, graph.V(v)) // self-loop last
		l.rowPtr[v+1] = int32(len(l.nbrs))
	}
	return l
}

// Forward computes attention-weighted aggregation.
func (l *GATLayer) Forward(h *tensor.Matrix) *tensor.Matrix {
	n := l.n
	l.h = h
	l.z = tensor.Reuse(l.z, h.Rows, l.W.W.Cols)
	tensor.MatMulInto(h, l.W.W, l.z)
	d := l.z.Cols
	al, ar := l.AL.W.Row(0), l.AR.W.Row(0)
	// Phase 1: attention scores s_v = (aL·z_v, aR·z_v); rows independent.
	tensor.ParallelFor(n, 2*int64(n)*int64(d), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			zr := l.z.Row(v)
			var a, b float32
			for j := 0; j < d; j++ {
				a += al[j] * zr[j]
				b += ar[j] * zr[j]
			}
			l.sL[v], l.sR[v] = a, b
		}
	})
	// Phase 2: per-destination softmax and aggregation. Each v owns its out
	// row and its alpha/pre segment, accumulated in neighbor-list order, so
	// the split into blocks never changes results.
	l.out = tensor.Reuse(l.out, n, d)
	nnz := int64(l.rowPtr[n])
	forwardRange := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s, e := l.rowPtr[v], l.rowPtr[v+1]
			nbrs := l.nbrs[s:e]
			pre := l.pre[s:e]
			alpha := l.alpha[s:e]
			var max float32 = -1e30
			for i, u := range nbrs {
				e := l.sL[u] + l.sR[v]
				if e < 0 {
					e *= l.negSlope
				}
				pre[i] = e
				if e > max {
					max = e
				}
			}
			var sum float32
			for i := range pre {
				alpha[i] = expf(pre[i] - max)
				sum += alpha[i]
			}
			or := l.out.Row(v)
			for j := range or {
				or[j] = 0
			}
			for i, u := range nbrs {
				alpha[i] /= sum
				zr := l.z.Row(int(u))
				for j := 0; j < d; j++ {
					or[j] += alpha[i] * zr[j]
				}
			}
		}
	}
	p := tensor.Parallelism()
	if p <= 1 || n <= 1 || nnz*int64(d) < tensor.SerialWorkThreshold {
		forwardRange(0, n)
	} else {
		bounds := splitRowsByNNZ(l.rowPtr, p)
		fns := make([]func(), len(bounds)-1)
		for i := range fns {
			lo, hi := bounds[i], bounds[i+1]
			fns[i] = func() { forwardRange(lo, hi) }
		}
		tensor.ParallelDo(fns)
	}
	if l.last {
		return l.out
	}
	return l.act.Forward(l.out)
}

// Backward propagates through the attention mechanism exactly. The scatter
// into neighbor rows (dz, dsL) is not row-owned, so this pass stays serial.
func (l *GATLayer) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if !l.last {
		dy = l.act.Backward(dy)
	}
	n := l.n
	d := l.z.Cols
	al, ar := l.AL.W.Row(0), l.AR.W.Row(0)
	l.dz = tensor.Reuse(l.dz, n, d)
	l.dz.Zero()
	for v := range l.dsL {
		l.dsL[v] = 0
		l.dsR[v] = 0
	}
	for v := 0; v < n; v++ {
		s, e := l.rowPtr[v], l.rowPtr[v+1]
		nbrs := l.nbrs[s:e]
		alpha := l.alpha[s:e]
		pre := l.pre[s:e]
		dyv := dy.Row(v)
		// dalpha and dz from out_v = Σ α_uv z_u
		dalpha := l.dalpha[:len(nbrs)]
		for i, u := range nbrs {
			zr := l.z.Row(int(u))
			var s float32
			for j := 0; j < d; j++ {
				s += zr[j] * dyv[j]
			}
			dalpha[i] = s
			dzr := l.dz.Row(int(u))
			for j := 0; j < d; j++ {
				dzr[j] += alpha[i] * dyv[j]
			}
		}
		// softmax backward
		var dot float32
		for i := range nbrs {
			dot += alpha[i] * dalpha[i]
		}
		for i, u := range nbrs {
			de := alpha[i] * (dalpha[i] - dot)
			// LeakyReLU backward
			if pre[i] < 0 {
				de *= l.negSlope
			}
			l.dsL[u] += de
			l.dsR[v] += de
		}
	}
	// s_v^L = aL·z_v, s_v^R = aR·z_v
	dAL := l.AL.Grad.Row(0)
	dAR := l.AR.Grad.Row(0)
	for v := 0; v < n; v++ {
		zr := l.z.Row(v)
		dzr := l.dz.Row(v)
		for j := 0; j < d; j++ {
			dAL[j] += l.dsL[v] * zr[j]
			dAR[j] += l.dsR[v] * zr[j]
			dzr[j] += l.dsL[v]*al[j] + l.dsR[v]*ar[j]
		}
	}
	// z = H·W; dW through pooled scratch keeps the old add order exactly.
	gw := tensor.Get(l.W.W.Rows, l.W.W.Cols)
	tensor.MatMulT1Into(l.h, l.dz, gw)
	l.W.Grad.AddInPlace(gw)
	tensor.Put(gw)
	l.dx = tensor.Reuse(l.dx, n, l.W.W.Rows)
	tensor.MatMulT2Into(l.dz, l.W.W, l.dx)
	return l.dx
}

// Params returns the layer parameters.
func (l *GATLayer) Params() []*nn.Param { return []*nn.Param{l.W, l.AL, l.AR} }

func expf(x float32) float32 { return float32(math.Exp(float64(x))) }
