package gnn

import (
	"math"

	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// Layer is one graph-convolution layer with explicit backward.
type Layer interface {
	Forward(h *tensor.Matrix) *tensor.Matrix
	Backward(dy *tensor.Matrix) *tensor.Matrix
	Params() []*nn.Param
}

// GCNLayer computes σ(Â·H·W + b) (Kipf & Welling).
type GCNLayer struct {
	adj  *NormAdj
	lin  *nn.Dense
	act  *nn.ReLU
	last bool // last layer: no activation (logits)
}

// NewGCNLayer builds a GCN layer over g.
func NewGCNLayer(g *graph.Graph, in, out int, last bool, seed int64) *GCNLayer {
	return &GCNLayer{adj: NewNormAdj(g), lin: nn.NewDense(in, out, seed), act: &nn.ReLU{}, last: last}
}

// Forward runs graph data retrieving (Â·H) then model computation (·W, σ).
func (l *GCNLayer) Forward(h *tensor.Matrix) *tensor.Matrix {
	z := l.lin.Forward(l.adj.Apply(h))
	if l.last {
		return z
	}
	return l.act.Forward(z)
}

// Backward propagates through σ, W and Â (Â is symmetric).
func (l *GCNLayer) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if !l.last {
		dy = l.act.Backward(dy)
	}
	dAgg := l.lin.Backward(dy)
	return l.adj.Apply(dAgg)
}

// Params returns the layer parameters.
func (l *GCNLayer) Params() []*nn.Param { return l.lin.Params() }

// SAGELayer is the GraphSAGE mean-aggregator layer from the paper's §3
// equation: h'_v = σ(W·CONCAT(h_v, mean_{u∈N(v)} h_u) + b).
type SAGELayer struct {
	agg  *MeanAgg
	lin  *nn.Dense
	act  *nn.ReLU
	last bool
	inD  int
}

// NewSAGELayer builds a GraphSAGE layer over g.
func NewSAGELayer(g *graph.Graph, in, out int, last bool, seed int64) *SAGELayer {
	return &SAGELayer{agg: NewMeanAgg(g), lin: nn.NewDense(2*in, out, seed), act: &nn.ReLU{}, last: last, inD: in}
}

// Forward aggregates neighbor features and applies the dense transform.
func (l *SAGELayer) Forward(h *tensor.Matrix) *tensor.Matrix {
	hn := l.agg.Apply(h)
	z := l.lin.Forward(tensor.ConcatCols(h, hn))
	if l.last {
		return z
	}
	return l.act.Forward(z)
}

// Backward splits the concat gradient into self and neighbor parts.
func (l *SAGELayer) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if !l.last {
		dy = l.act.Backward(dy)
	}
	dConcat := l.lin.Backward(dy)
	dSelf, dN := tensor.SplitCols(dConcat, l.inD)
	dH := l.agg.ApplyT(dN)
	dH.AddInPlace(dSelf)
	return dH
}

// Params returns the layer parameters.
func (l *SAGELayer) Params() []*nn.Param { return l.lin.Params() }

// GATLayer is a single-head graph attention layer (Veličković et al.):
// e_uv = LeakyReLU(aᴸ·z_u + aᴿ·z_v) over u ∈ N(v)∪{v}, α = softmax_u,
// out_v = σ(Σ_u α_uv z_u), where z = H·W.
type GATLayer struct {
	g        *graph.Graph
	W        *nn.Param
	AL, AR   *nn.Param
	last     bool
	negSlope float32

	// caches
	h     *tensor.Matrix
	z     *tensor.Matrix
	alpha [][]float32 // per v: attention over N(v)∪{v}
	pre   [][]float32 // pre-LeakyReLU scores
	act   *nn.ReLU
}

// NewGATLayer builds a single-head GAT layer over g.
func NewGATLayer(g *graph.Graph, in, out int, last bool, seed int64) *GATLayer {
	return &GATLayer{
		g:        g,
		W:        nn.NewParam(tensor.Xavier(in, out, seed)),
		AL:       nn.NewParam(tensor.Xavier(1, out, seed+1)),
		AR:       nn.NewParam(tensor.Xavier(1, out, seed+2)),
		last:     last,
		negSlope: 0.2,
		act:      &nn.ReLU{},
	}
}

func (l *GATLayer) nbrsWithSelf(v int) []graph.V {
	ns := l.g.Neighbors(graph.V(v))
	return append(append(make([]graph.V, 0, len(ns)+1), ns...), graph.V(v))
}

// Forward computes attention-weighted aggregation.
func (l *GATLayer) Forward(h *tensor.Matrix) *tensor.Matrix {
	n := l.g.NumVertices()
	l.h = h
	l.z = tensor.MatMul(h, l.W.W)
	d := l.z.Cols
	al, ar := l.AL.W.Row(0), l.AR.W.Row(0)
	sL := make([]float32, n)
	sR := make([]float32, n)
	for v := 0; v < n; v++ {
		zr := l.z.Row(v)
		var a, b float32
		for j := 0; j < d; j++ {
			a += al[j] * zr[j]
			b += ar[j] * zr[j]
		}
		sL[v], sR[v] = a, b
	}
	out := tensor.New(n, d)
	l.alpha = make([][]float32, n)
	l.pre = make([][]float32, n)
	for v := 0; v < n; v++ {
		nbrs := l.nbrsWithSelf(v)
		pre := make([]float32, len(nbrs))
		var max float32 = -1e30
		for i, u := range nbrs {
			e := sL[u] + sR[v]
			if e < 0 {
				e *= l.negSlope
			}
			pre[i] = e
			if e > max {
				max = e
			}
		}
		alpha := make([]float32, len(nbrs))
		var sum float32
		for i := range pre {
			alpha[i] = expf(pre[i] - max)
			sum += alpha[i]
		}
		or := out.Row(v)
		for i, u := range nbrs {
			alpha[i] /= sum
			zr := l.z.Row(int(u))
			for j := 0; j < d; j++ {
				or[j] += alpha[i] * zr[j]
			}
		}
		l.alpha[v] = alpha
		l.pre[v] = pre
	}
	if l.last {
		return out
	}
	return l.act.Forward(out)
}

// Backward propagates through the attention mechanism exactly.
func (l *GATLayer) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if !l.last {
		dy = l.act.Backward(dy)
	}
	n := l.g.NumVertices()
	d := l.z.Cols
	al, ar := l.AL.W.Row(0), l.AR.W.Row(0)
	dz := tensor.New(n, d)
	dsL := make([]float32, n)
	dsR := make([]float32, n)
	for v := 0; v < n; v++ {
		nbrs := l.nbrsWithSelf(v)
		alpha := l.alpha[v]
		dyv := dy.Row(v)
		// dalpha and dz from out_v = Σ α_uv z_u
		dalpha := make([]float32, len(nbrs))
		for i, u := range nbrs {
			zr := l.z.Row(int(u))
			var s float32
			for j := 0; j < d; j++ {
				s += zr[j] * dyv[j]
			}
			dalpha[i] = s
			dzr := dz.Row(int(u))
			for j := 0; j < d; j++ {
				dzr[j] += alpha[i] * dyv[j]
			}
		}
		// softmax backward
		var dot float32
		for i := range nbrs {
			dot += alpha[i] * dalpha[i]
		}
		for i, u := range nbrs {
			de := alpha[i] * (dalpha[i] - dot)
			// LeakyReLU backward
			if l.pre[v][i] < 0 {
				de *= l.negSlope
			}
			dsL[u] += de
			dsR[v] += de
		}
	}
	// s_v^L = aL·z_v, s_v^R = aR·z_v
	dAL := l.AL.Grad.Row(0)
	dAR := l.AR.Grad.Row(0)
	for v := 0; v < n; v++ {
		zr := l.z.Row(v)
		dzr := dz.Row(v)
		for j := 0; j < d; j++ {
			dAL[j] += dsL[v] * zr[j]
			dAR[j] += dsR[v] * zr[j]
			dzr[j] += dsL[v]*al[j] + dsR[v]*ar[j]
		}
	}
	// z = H·W
	l.W.Grad.AddInPlace(tensor.MatMulT1(l.h, dz))
	return tensor.MatMulT2(dz, l.W.W)
}

// Params returns the layer parameters.
func (l *GATLayer) Params() []*nn.Param { return []*nn.Param{l.W, l.AL, l.AR} }

func expf(x float32) float32 { return float32(math.Exp(float64(x))) }
