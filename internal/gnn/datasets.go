package gnn

import (
	"math/rand"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/tensor"
)

// Task is a node-classification dataset: graph, features, labels and
// train/test masks — the input shape every GNN training regime in this
// repository consumes.
type Task struct {
	G          *graph.Graph
	X          *tensor.Matrix
	Labels     []int
	TrainMask  []bool
	TestMask   []bool
	NumClasses int
}

// TrainSeeds returns the training vertices.
func (t *Task) TrainSeeds() []graph.V {
	var out []graph.V
	for v, m := range t.TrainMask {
		if m {
			out = append(out, graph.V(v))
		}
	}
	return out
}

// SyntheticCommunityTask builds the standard synthetic node-classification
// workload used across the Table-2 experiments: a planted-partition graph of
// k communities with noisy community-indicator features (plus noise dims) and
// a trainFrac/1-trainFrac train/test split, all deterministic in seed.
func SyntheticCommunityTask(n, k int, featureNoiseDims int, trainFrac float64, seed int64) *Task {
	c := gen.PlantedPartitionSparse(n, k, 10, 1, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	dim := k + featureNoiseDims
	x := tensor.New(n, dim)
	labels := make([]int, n)
	train := make([]bool, n)
	test := make([]bool, n)
	for v := 0; v < n; v++ {
		labels[v] = c.Membership[v]
		x.Set(v, c.Membership[v], 0.6+0.4*rng.Float32())
		for j := 0; j < dim; j++ {
			x.Set(v, j, x.At(v, j)+0.3*(rng.Float32()-0.5))
		}
		if rng.Float64() < trainFrac {
			train[v] = true
		} else {
			test[v] = true
		}
	}
	return &Task{G: c.Graph, X: x, Labels: labels, TrainMask: train, TestMask: test, NumClasses: k}
}

// HardSyntheticCommunityTask is like SyntheticCommunityTask but the features
// alone are nearly uninformative (heavy noise), so classification accuracy
// depends on neighborhood aggregation — useful when an experiment must
// detect degradation from stale or compressed aggregation.
func HardSyntheticCommunityTask(n, k int, trainFrac float64, seed int64) *Task {
	t := SyntheticCommunityTask(n, k, 2, trainFrac, seed)
	rng := rand.New(rand.NewSource(seed + 99))
	for i := range t.X.Data {
		t.X.Data[i] += 0.8 * (rng.Float32() - 0.5)
	}
	return t
}
