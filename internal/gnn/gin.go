package gnn

import (
	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// SumAgg is sum aggregation over open neighborhoods, stored as CSR built
// once at construction (the old implementation re-derived g.Neighbors(v) on
// every call). For undirected graphs the operator is symmetric, so it is its
// own adjoint; ApplyT uses an explicit transpose CSR and so stays correct for
// directed graphs too.
type SumAgg struct {
	n    int
	adj  *csr
	adjT *csr
}

// NewSumAgg precomputes the aggregation CSR (and its transpose) for g.
func NewSumAgg(g *graph.Graph) *SumAgg {
	n := g.NumVertices()
	nnz := 0
	for v := 0; v < n; v++ {
		nnz += g.Degree(graph.V(v))
	}
	c := &csr{n: n, rowPtr: make([]int32, n+1), col: make([]graph.V, 0, nnz)}
	for v := 0; v < n; v++ {
		c.col = append(c.col, g.Neighbors(graph.V(v))...)
		c.rowPtr[v+1] = int32(len(c.col))
	}
	return &SumAgg{n: n, adj: c, adjT: c.transpose(nil)}
}

// Apply computes row v = Σ_{u∈N(v)} h_u.
func (s *SumAgg) Apply(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(s.n, h.Cols)
	s.ApplyInto(h, out)
	return out
}

// ApplyInto is Apply into a preallocated out (fully overwritten).
func (s *SumAgg) ApplyInto(h, out *tensor.Matrix) { s.adj.apply(h, out, nil) }

// ApplyT computes the transpose action out_u = Σ_{v : u∈N(v)} dy_v.
func (s *SumAgg) ApplyT(dy *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(s.n, dy.Cols)
	s.ApplyTInto(dy, out)
	return out
}

// ApplyTInto is ApplyT into a preallocated out (fully overwritten).
func (s *SumAgg) ApplyTInto(dy, out *tensor.Matrix) { s.adjT.apply(dy, out, nil) }

// GINLayer is the Graph Isomorphism Network layer (Xu et al.), the
// maximally-expressive 1-WL aggregator: h'_v = σ(W·((1+ε)h_v + Σ_{u∈N(v)}
// h_u) + b), with ε fixed to 0 (GIN-0). Sum aggregation distinguishes
// multisets that mean/max aggregators collapse, which is why GIN is the
// standard whole-graph classification backbone.
type GINLayer struct {
	agg  *SumAgg
	lin  *nn.Dense
	act  *nn.ReLU
	last bool

	z  *tensor.Matrix // reused (1+ε)h + A·h buffer (cached by lin)
	dh *tensor.Matrix // reused backward output
}

// NewGINLayer builds a GIN-0 layer over g.
func NewGINLayer(g *graph.Graph, in, out int, last bool, seed int64) *GINLayer {
	return &GINLayer{agg: NewSumAgg(g), lin: nn.NewDense(in, out, seed), act: &nn.ReLU{}, last: last}
}

// Forward computes σ(W·(h + A·h) + b).
func (l *GINLayer) Forward(h *tensor.Matrix) *tensor.Matrix {
	l.z = tensor.Reuse(l.z, h.Rows, h.Cols)
	l.agg.ApplyInto(h, l.z)
	l.z.AddInPlace(h) // (1+ε)h with ε=0
	out := l.lin.Forward(l.z)
	if l.last {
		return out
	}
	return l.act.Forward(out)
}

// Backward propagates dH = dZ + AᵀdZ (A symmetric for undirected graphs).
func (l *GINLayer) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if !l.last {
		dy = l.act.Backward(dy)
	}
	dz := l.lin.Backward(dy)
	l.dh = tensor.Reuse(l.dh, dz.Rows, dz.Cols)
	l.agg.ApplyInto(dz, l.dh)
	l.dh.AddInPlace(dz)
	return l.dh
}

// Params returns the layer parameters.
func (l *GINLayer) Params() []*nn.Param { return l.lin.Params() }
