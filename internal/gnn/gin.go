package gnn

import (
	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// SumAgg is sum aggregation over open neighborhoods. For undirected graphs
// the operator is symmetric, so it is its own adjoint.
type SumAgg struct {
	g *graph.Graph
}

// NewSumAgg wraps g.
func NewSumAgg(g *graph.Graph) *SumAgg { return &SumAgg{g: g} }

// Apply computes row v = Σ_{u∈N(v)} h_u.
func (s *SumAgg) Apply(h *tensor.Matrix) *tensor.Matrix {
	n := s.g.NumVertices()
	out := tensor.New(n, h.Cols)
	for v := 0; v < n; v++ {
		or := out.Row(v)
		for _, u := range s.g.Neighbors(graph.V(v)) {
			hr := h.Row(int(u))
			for j := range or {
				or[j] += hr[j]
			}
		}
	}
	return out
}

// GINLayer is the Graph Isomorphism Network layer (Xu et al.), the
// maximally-expressive 1-WL aggregator: h'_v = σ(W·((1+ε)h_v + Σ_{u∈N(v)}
// h_u) + b), with ε fixed to 0 (GIN-0). Sum aggregation distinguishes
// multisets that mean/max aggregators collapse, which is why GIN is the
// standard whole-graph classification backbone.
type GINLayer struct {
	agg  *SumAgg
	lin  *nn.Dense
	act  *nn.ReLU
	last bool
}

// NewGINLayer builds a GIN-0 layer over g.
func NewGINLayer(g *graph.Graph, in, out int, last bool, seed int64) *GINLayer {
	return &GINLayer{agg: NewSumAgg(g), lin: nn.NewDense(in, out, seed), act: &nn.ReLU{}, last: last}
}

// Forward computes σ(W·(h + A·h) + b).
func (l *GINLayer) Forward(h *tensor.Matrix) *tensor.Matrix {
	z := l.agg.Apply(h)
	z.AddInPlace(h) // (1+ε)h with ε=0
	out := l.lin.Forward(z)
	if l.last {
		return out
	}
	return l.act.Forward(out)
}

// Backward propagates dH = dZ + AᵀdZ (A symmetric for undirected graphs).
func (l *GINLayer) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if !l.last {
		dy = l.act.Backward(dy)
	}
	dz := l.lin.Backward(dy)
	dh := l.agg.Apply(dz)
	dh.AddInPlace(dz)
	return dh
}

// Params returns the layer parameters.
func (l *GINLayer) Params() []*nn.Param { return l.lin.Params() }
