package gnn

import (
	"math/rand"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/tensor"
)

// communityTask builds a node-classification task: planted communities with
// noisy indicator features, 30% of vertices labeled for training.
func communityTask(n, k int, seed int64) (*graph.Graph, *tensor.Matrix, []int, []bool, []bool) {
	c := gen.PlantedPartitionSparse(n, k, 10, 1, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	x := tensor.New(n, k+2)
	labels := make([]int, n)
	train := make([]bool, n)
	test := make([]bool, n)
	for v := 0; v < n; v++ {
		labels[v] = c.Membership[v]
		// noisy one-hot community feature + 2 noise dims
		x.Set(v, c.Membership[v], 0.6+0.4*rng.Float32())
		for j := 0; j < k+2; j++ {
			x.Set(v, j, x.At(v, j)+0.3*(rng.Float32()-0.5))
		}
		if rng.Float32() < 0.3 {
			train[v] = true
		} else {
			test[v] = true
		}
	}
	return c.Graph, x, labels, train, test
}

func TestFullGraphTrainingAllModels(t *testing.T) {
	g, x, labels, train, test := communityTask(200, 3, 1)
	for _, kind := range []ModelKind{GCN, SAGE, GAT} {
		m := NewModel(g, kind, []int{x.Cols, 16, 3}, 2)
		res := TrainFullGraph(m, x, labels, train, test, TrainConfig{Epochs: 60, LR: 0.02})
		if res.TestAcc < 0.85 {
			t.Errorf("%v test accuracy %.3f < 0.85", kind, res.TestAcc)
		}
		// loss must decrease
		if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
			t.Errorf("%v loss did not decrease: %f -> %f", kind, res.Losses[0], res.Losses[len(res.Losses)-1])
		}
	}
}

func TestMinibatchTraining(t *testing.T) {
	g, x, labels, train, test := communityTask(300, 3, 4)
	var seeds []graph.V
	for v, tr := range train {
		if tr {
			seeds = append(seeds, graph.V(v))
		}
	}
	acc, _ := TrainMinibatch(g, x, labels, seeds, test, MinibatchConfig{
		Epochs: 4, BatchSize: 32, Fanouts: []int{8, 8}, LR: 0.02, Hidden: 16, Kind: GCN, Seed: 3,
	})
	if acc < 0.8 {
		t.Fatalf("minibatch GCN accuracy %.3f < 0.8", acc)
	}
}

func TestNeighborSampleShape(t *testing.T) {
	g := gen.BarabasiAlbert(500, 6, 2)
	rng := rand.New(rand.NewSource(1))
	seeds := []graph.V{1, 5, 9}
	sub := NeighborSample(g, seeds, []int{4, 4}, rng)
	// seeds are the first local vertices
	for i, loc := range sub.SeedLoc {
		if sub.NewToOld[loc] != seeds[i] {
			t.Fatalf("seed %d mapped to %d", seeds[i], sub.NewToOld[loc])
		}
	}
	// bounded by fanout budget
	max := len(seeds) * (1 + 4 + 16)
	if sub.Graph.NumVertices() > max {
		t.Fatalf("sampled %d vertices > budget %d", sub.Graph.NumVertices(), max)
	}
	// sampled subgraph must be a subgraph of g
	sub.Graph.EdgesOnce(func(u, v graph.V) {
		if !g.HasEdge(sub.NewToOld[u], sub.NewToOld[v]) {
			t.Fatal("sampled edge not in original graph")
		}
	})
}

func TestNeighborSampleSmallFanoutShrinks(t *testing.T) {
	g := gen.BarabasiAlbert(400, 8, 3)
	rng := rand.New(rand.NewSource(2))
	seeds := []graph.V{0, 10, 20, 30}
	small := NeighborSample(g, seeds, []int{2, 2}, rand.New(rand.NewSource(1)))
	big := NeighborSample(g, seeds, []int{20, 20}, rng)
	if small.Graph.NumVertices() >= big.Graph.NumVertices() {
		t.Fatalf("fanout 2 sampled %d >= fanout 20 sampled %d",
			small.Graph.NumVertices(), big.Graph.NumVertices())
	}
}

func TestKHopMaterialize(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 5)
	seeds := []graph.V{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	subs, st := KHopMaterialize(g, seeds, 2)
	if len(subs) != 10 || st.Subgraphs != 10 {
		t.Fatal("wrong subgraph count")
	}
	// AGL's storage redundancy: 2-hop balls on a dense graph overlap heavily
	if st.BlowupFactor <= 1 {
		t.Fatalf("expected storage blowup > 1, got %f", st.BlowupFactor)
	}
	for _, s := range subs {
		if s.Graph.NumVertices() == 0 {
			t.Fatal("empty materialised subgraph")
		}
		if s.NewToOld[s.SeedLoc[0]] != seeds[0] && s.SeedLoc[0] != 0 {
			t.Fatal("seed not first")
		}
	}
}

func TestFeaturesExtraction(t *testing.T) {
	g := gen.Grid(3, 3)
	x := tensor.New(9, 2)
	for v := 0; v < 9; v++ {
		x.Set(v, 0, float32(v))
	}
	sub := NeighborSample(g, []graph.V{4}, []int{4}, rand.New(rand.NewSource(1)))
	bx := sub.Features(x)
	for i, old := range sub.NewToOld {
		if bx.At(i, 0) != float32(old) {
			t.Fatalf("feature row %d mismatched", i)
		}
	}
}

func TestModelKindString(t *testing.T) {
	if GCN.String() != "GCN" || SAGE.String() != "GraphSAGE" || GAT.String() != "GAT" {
		t.Fatal("names wrong")
	}
}
