package gnn

import (
	"runtime"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// oldMeanApply reimplements the pre-CSR MeanAgg.Apply (per-call
// g.Neighbors(v), sum-then-scale, empty rows skipped) as a reference: the
// CSR refactor must reproduce it bit for bit, including zero rows for
// isolated vertices.
func oldMeanApply(g *graph.Graph, h *tensor.Matrix) *tensor.Matrix {
	n := g.NumVertices()
	out := tensor.New(n, h.Cols)
	for v := 0; v < n; v++ {
		ns := g.Neighbors(graph.V(v))
		if len(ns) == 0 {
			continue
		}
		or := out.Row(v)
		for _, u := range ns {
			hr := h.Row(int(u))
			for j := range or {
				or[j] += hr[j]
			}
		}
		inv := 1 / float32(len(ns))
		for j := range or {
			or[j] *= inv
		}
	}
	return out
}

func oldMeanApplyT(g *graph.Graph, dy *tensor.Matrix) *tensor.Matrix {
	n := g.NumVertices()
	out := tensor.New(n, dy.Cols)
	for v := 0; v < n; v++ {
		ns := g.Neighbors(graph.V(v))
		if len(ns) == 0 {
			continue
		}
		inv := 1 / float32(len(ns))
		dr := dy.Row(v)
		for _, u := range ns {
			or := out.Row(int(u))
			for j := range dr {
				or[j] += inv * dr[j]
			}
		}
	}
	return out
}

func oldSumApply(g *graph.Graph, h *tensor.Matrix) *tensor.Matrix {
	n := g.NumVertices()
	out := tensor.New(n, h.Cols)
	for v := 0; v < n; v++ {
		or := out.Row(v)
		for _, u := range g.Neighbors(graph.V(v)) {
			hr := h.Row(int(u))
			for j := range or {
				or[j] += hr[j]
			}
		}
	}
	return out
}

func mustBitwiseEqual(t *testing.T, name string, got, want *tensor.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %x, want %x (not bitwise equal)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// testGraphs includes a power-law graph (hub rows stress the nnz-balanced
// split) and a sparse ER graph small enough to contain isolated vertices.
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ba":       gen.BarabasiAlbert(400, 4, 1),
		"sparseER": gen.ErdosRenyi(80, 35, 2), // leaves isolated vertices
	}
}

func TestAggregatorsBitwiseDeterministic(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(oldProcs)
	defer tensor.SetParallelism(0)

	for gname, g := range testGraphs() {
		n := g.NumVertices()
		// 56 cols pushes nnz*cols past SerialWorkThreshold on the BA graph,
		// so the parallel path is actually exercised.
		h := tensor.Xavier(n, 56, 3)
		adj := NewNormAdj(g)
		mean := NewMeanAgg(g)
		sum := NewSumAgg(g)

		tensor.SetParallelism(1)
		wantAdj := adj.Apply(h)
		wantMean := mean.Apply(h)
		wantMeanT := mean.ApplyT(h)
		wantSum := sum.Apply(h)
		wantSumT := sum.ApplyT(h)

		// CSR must also reproduce the old per-call g.Neighbors kernels.
		mustBitwiseEqual(t, gname+"/mean-vs-old", wantMean, oldMeanApply(g, h))
		mustBitwiseEqual(t, gname+"/meanT-vs-old", wantMeanT, oldMeanApplyT(g, h))
		mustBitwiseEqual(t, gname+"/sum-vs-old", wantSum, oldSumApply(g, h))

		for _, p := range []int{2, 8} {
			tensor.SetParallelism(p)
			mustBitwiseEqual(t, gname+"/normadj", adj.Apply(h), wantAdj)
			mustBitwiseEqual(t, gname+"/mean", mean.Apply(h), wantMean)
			mustBitwiseEqual(t, gname+"/meanT", mean.ApplyT(h), wantMeanT)
			mustBitwiseEqual(t, gname+"/sum", sum.Apply(h), wantSum)
			mustBitwiseEqual(t, gname+"/sumT", sum.ApplyT(h), wantSumT)
		}
		tensor.SetParallelism(0)
	}
}

func TestMeanAggIsolatedVerticesZeroRows(t *testing.T) {
	g := gen.ErdosRenyi(60, 20, 5)
	isolated := -1
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.V(v)) == 0 {
			isolated = v
			break
		}
	}
	if isolated < 0 {
		t.Skip("generator produced no isolated vertex")
	}
	m := NewMeanAgg(g)
	out := m.Apply(tensor.Xavier(g.NumVertices(), 8, 9))
	for j, v := range out.Row(isolated) {
		if v != 0 {
			t.Fatalf("isolated vertex %d col %d = %g, want 0", isolated, j, v)
		}
	}
}

// TestTrainFullGraphDeterministicAcrossParallelism is the end-to-end
// determinism gate: the entire training loop (aggregation, matmul, dropout,
// Adam) must produce the exact same float64 loss sequence at any kernel
// parallelism — the property the gnndist crash-recovery tests rely on.
func TestTrainFullGraphDeterministicAcrossParallelism(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(oldProcs)
	defer tensor.SetParallelism(0)

	task := SyntheticCommunityTask(120, 3, 2, 0.3, 17)
	cfg := TrainConfig{Epochs: 8, LR: 0.01, Seed: 1}
	for _, kind := range []ModelKind{GCN, SAGE, GAT, GIN} {
		tensor.SetParallelism(1)
		m := NewModel(task.G, kind, []int{task.X.Cols, 16, task.NumClasses}, 1)
		want := TrainFullGraph(m, task.X, task.Labels, task.TrainMask, task.TestMask, cfg)
		for _, p := range []int{2, 8} {
			tensor.SetParallelism(p)
			m := NewModel(task.G, kind, []int{task.X.Cols, 16, task.NumClasses}, 1)
			got := TrainFullGraph(m, task.X, task.Labels, task.TrainMask, task.TestMask, cfg)
			for ep := range want.Losses {
				if got.Losses[ep] != want.Losses[ep] {
					t.Fatalf("%v: parallelism %d epoch %d loss %.17g != serial %.17g",
						kind, p, ep, got.Losses[ep], want.Losses[ep])
				}
			}
			if got.TestAcc != want.TestAcc || got.TrainAcc != want.TrainAcc {
				t.Fatalf("%v: parallelism %d acc (%g,%g) != serial (%g,%g)",
					kind, p, got.TrainAcc, got.TestAcc, want.TrainAcc, want.TestAcc)
			}
		}
	}
}

func benchmarkAggNormAdj(b *testing.B, p int) {
	tensor.SetParallelism(p)
	defer tensor.SetParallelism(0)
	g := gen.RMAT(15, 12, 1) // ~32k vertices, power-law
	adj := NewNormAdj(g)
	h := tensor.Xavier(g.NumVertices(), 32, 3)
	out := tensor.New(g.NumVertices(), 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adj.ApplyInto(h, out)
	}
}

func BenchmarkAggNormAdjSerial(b *testing.B)   { benchmarkAggNormAdj(b, 1) }
func BenchmarkAggNormAdjParallel(b *testing.B) { benchmarkAggNormAdj(b, 0) }

// BenchmarkTrainEpochGCN matches the workload measured at the growth seed
// (260512 ns/op, 158722 B/op, 146 allocs/op on the reference machine), so
// -benchmem runs show the buffer-reuse delta directly.
func BenchmarkTrainEpochGCN(b *testing.B) {
	task := SyntheticCommunityTask(300, 3, 2, 0.3, 17)
	m := NewModel(task.G, GCN, []int{task.X.Cols, 16, task.NumClasses}, 1)
	opt := nn.NewAdam(0.01)
	masked := make([]int, len(task.Labels))
	for i, l := range task.Labels {
		if !task.TrainMask[i] {
			masked[i] = -1
		} else {
			masked[i] = l
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.Forward(task.X)
		_, dLogits := nn.SoftmaxCrossEntropy(logits, masked)
		m.Backward(dLogits)
		opt.Step(m.Params())
	}
}
