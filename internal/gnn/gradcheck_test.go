package gnn

import (
	"math"
	"math/rand"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// gradCheck compares the analytic gradient of the mean cross-entropy loss
// w.r.t. every parameter entry (and the input) against central differences.
func gradCheck(t *testing.T, g *graph.Graph, kind ModelKind) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	n := g.NumVertices()
	const inDim, hidden, classes = 3, 4, 2
	x := tensor.New(n, inDim)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	model := NewModel(g, kind, []int{inDim, hidden, classes}, 3)

	loss := func() float64 {
		l, _ := nn.SoftmaxCrossEntropy(model.Forward(x), labels)
		return l
	}
	// analytic gradients
	_, dLogits := nn.SoftmaxCrossEntropy(model.Forward(x), labels)
	dX := model.Backward(dLogits)

	check := func(name string, ptr *float32, analytic float32) {
		const eps = 1e-2
		orig := *ptr
		*ptr = orig + eps
		lp := loss()
		*ptr = orig - eps
		lm := loss()
		*ptr = orig
		numeric := (lp - lm) / (2 * eps)
		// float32 forward + finite differences: entries this small are
		// dominated by rounding noise (and ReLU kinks), skip them
		if math.Abs(numeric) < 5e-3 && math.Abs(float64(analytic)) < 5e-3 {
			return
		}
		denom := math.Abs(numeric) + math.Abs(float64(analytic))
		if math.Abs(numeric-float64(analytic))/denom > 0.12 {
			t.Errorf("%s %s: analytic %g numeric %g", kind, name, analytic, numeric)
		}
	}
	for pi, p := range model.Params() {
		stride := len(p.W.Data)/5 + 1
		for i := 0; i < len(p.W.Data); i += stride {
			check("param", &p.W.Data[i], p.Grad.Data[i])
		}
		_ = pi
	}
	// input gradient (spot check): perturb x entries
	for i := 0; i < len(x.Data); i += len(x.Data)/6 + 1 {
		const eps = 1e-2
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dX.Data[i])
		if math.Abs(numeric) < 5e-3 && math.Abs(analytic) < 5e-3 {
			continue
		}
		denom := math.Abs(numeric) + math.Abs(analytic)
		if math.Abs(numeric-analytic)/denom > 0.12 {
			t.Errorf("%s input[%d]: analytic %g numeric %g", kind, i, analytic, numeric)
		}
	}
}

func testGraph() *graph.Graph {
	// small connected graph with varied degrees plus an isolated vertex
	b := graph.NewBuilder(7, false)
	for _, e := range [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {3, 4}, {4, 5}} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build() // vertex 6 isolated
}

func TestGradCheckGCN(t *testing.T)  { gradCheck(t, testGraph(), GCN) }
func TestGradCheckSAGE(t *testing.T) { gradCheck(t, testGraph(), SAGE) }
func TestGradCheckGAT(t *testing.T)  { gradCheck(t, testGraph(), GAT) }

func TestGradCheckOnRandomGraph(t *testing.T) {
	g := gen.ErdosRenyi(12, 30, 5)
	for _, kind := range []ModelKind{GCN, SAGE, GAT} {
		gradCheck(t, g, kind)
	}
}

func TestNormAdjRowsSumBounded(t *testing.T) {
	g := gen.Clique(5)
	a := NewNormAdj(g)
	h := tensor.New(5, 1)
	for i := range h.Data {
		h.Data[i] = 1
	}
	out := a.Apply(h)
	// Â of a regular graph has row sums 1 (it is doubly stochastic there)
	for v := 0; v < 5; v++ {
		if math.Abs(float64(out.At(v, 0))-1) > 1e-5 {
			t.Fatalf("row sum %f", out.At(v, 0))
		}
	}
}

func TestMeanAggTransposeIsAdjoint(t *testing.T) {
	// <Apply(h), y> must equal <h, ApplyT(y)> (adjoint property)
	g := gen.ErdosRenyi(15, 40, 2)
	agg := NewMeanAgg(g)
	rng := rand.New(rand.NewSource(1))
	h := tensor.New(15, 3)
	y := tensor.New(15, 3)
	for i := range h.Data {
		h.Data[i] = rng.Float32()
		y.Data[i] = rng.Float32()
	}
	ah := agg.Apply(h)
	aty := agg.ApplyT(y)
	var lhs, rhs float64
	for i := range ah.Data {
		lhs += float64(ah.Data[i]) * float64(y.Data[i])
		rhs += float64(h.Data[i]) * float64(aty.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-4 {
		t.Fatalf("adjoint violated: %f vs %f", lhs, rhs)
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	logits := tensor.FromRows([][]float32{{1, 2, 0.5}, {0, 0, 0}, {3, -1, 0}})
	labels := []int{1, -1, 0} // middle row masked
	loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
	if loss <= 0 {
		t.Fatal("loss must be positive")
	}
	// masked row gradient is zero
	for j := 0; j < 3; j++ {
		if grad.At(1, j) != 0 {
			t.Fatal("masked row has gradient")
		}
	}
	// gradient rows sum to zero (softmax property)
	for _, i := range []int{0, 2} {
		var s float64
		for j := 0; j < 3; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("row %d gradient sums to %g", i, s)
		}
	}
}
