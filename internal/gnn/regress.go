package gnn

import (
	"math/rand"

	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// Neural subgraph counting (the paper's §1 pointer to Wang et al.'s
// Wasserstein-estimator counter and Ying et al.'s neural subgraph matching):
// a GNN regressor learns to PREDICT a subgraph statistic from the graph
// itself, trading exactness for constant-time inference. GraphRegressor is
// that idea at this repository's scale: GIN layers, sum-pool readout (counts
// are extensive quantities, so sum — not mean — pooling is the right
// inductive bias), and an MSE head.

// GraphRegressor predicts one real value per graph.
type GraphRegressor struct {
	kind    ModelKind
	dims    []int
	inDim   int
	seed    int64
	templ   *Model
	readout *nn.Dense
}

// RegressConfig configures graph-level regression training.
type RegressConfig struct {
	Hidden int
	Epochs int
	LR     float64
	Seed   int64
}

// TrainGraphRegressor fits targets[i] ≈ f(graphs[i]). Vertex features are
// the constant 1 plus the vertex degree (degree is what a counting network
// needs to see). Targets should be pre-scaled to O(1) magnitude by the
// caller for stable training.
func TrainGraphRegressor(graphs []*graph.Graph, targets []float64, trainMask []bool, cfg RegressConfig) *GraphRegressor {
	if cfg.Hidden == 0 {
		cfg.Hidden = 16
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 40
	}
	if cfg.LR == 0 {
		cfg.LR = 0.005
	}
	const inDim = 2
	r := &GraphRegressor{
		kind: GIN, inDim: inDim, seed: cfg.Seed,
		dims: []int{inDim, cfg.Hidden, cfg.Hidden},
	}
	r.templ = NewModel(graphs[0], GIN, r.dims, cfg.Seed)
	r.readout = nn.NewDense(cfg.Hidden, 1, cfg.Seed+99)
	params := append(r.templ.Params(), r.readout.Params()...)
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var idx []int
	for i, m := range trainMask {
		if m {
			idx = append(idx, i)
		}
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		for _, pi := range rng.Perm(len(idx)) {
			i := idx[pi]
			g := graphs[i]
			if g.NumVertices() == 0 {
				continue
			}
			m := NewModel(g, GIN, r.dims, cfg.Seed)
			copyParams(m, r.templ)
			h := m.Forward(r.features(g))
			pooled := sumPool(h)
			pred := r.readout.Forward(pooled)
			_, dPred := nn.MSE(pred, tensor.FromRows([][]float32{{float32(targets[i])}}))
			dPooled := r.readout.Backward(dPred)
			m.Backward(sumPoolBackward(dPooled, h.Rows))
			addGrads(r.templ, m)
			opt.Step(params)
		}
	}
	return r
}

func (r *GraphRegressor) features(g *graph.Graph) *tensor.Matrix {
	x := tensor.New(g.NumVertices(), r.inDim)
	for v := 0; v < g.NumVertices(); v++ {
		x.Set(v, 0, 1)
		x.Set(v, 1, float32(g.Degree(graph.V(v)))/8) // scaled degree
	}
	return x
}

// Predict returns the regressed value for g.
func (r *GraphRegressor) Predict(g *graph.Graph) float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	m := NewModel(g, r.kind, r.dims, r.seed)
	copyParams(m, r.templ)
	h := m.Forward(r.features(g))
	return float64(r.readout.Forward(sumPool(h)).At(0, 0))
}

func sumPool(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(1, h.Cols)
	or := out.Row(0)
	for i := 0; i < h.Rows; i++ {
		r := h.Row(i)
		for j := range or {
			or[j] += r[j]
		}
	}
	return out
}

func sumPoolBackward(dPooled *tensor.Matrix, rows int) *tensor.Matrix {
	out := tensor.New(rows, dPooled.Cols)
	dr := dPooled.Row(0)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), dr)
	}
	return out
}
