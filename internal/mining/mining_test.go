package mining

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

// naiveConnectedInduced counts connected induced subgraphs of size k by
// enumerating all C(n,k) subsets.
func naiveConnectedInduced(g *graph.Graph, k int) int64 {
	n := g.NumVertices()
	var count int64
	var cur []graph.V
	var rec func(start int)
	connected := func(s []graph.V) bool {
		if len(s) == 0 {
			return false
		}
		seen := map[graph.V]bool{s[0]: true}
		stack := []graph.V{s[0]}
		inSet := map[graph.V]bool{}
		for _, v := range s {
			inSet[v] = true
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if inSet[w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return len(seen) == len(s)
	}
	rec = func(start int) {
		if len(cur) == k {
			if connected(cur) {
				count++
			}
			return
		}
		for v := start; v < n; v++ {
			cur = append(cur, graph.V(v))
			rec(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return count
}

func countExplored(g *graph.Graph, k int) int64 {
	var mu sync.Mutex
	var c int64
	Explore(g, k, nil, func(sub []graph.V) {
		mu.Lock()
		c++
		mu.Unlock()
	}, Config{Workers: 3})
	return c
}

func TestESUCountsMatchNaive(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(12, 25, seed)
		for k := 1; k <= 4; k++ {
			want := naiveConnectedInduced(g, k)
			got := countExplored(g, k)
			if got != want {
				t.Fatalf("seed %d k=%d: got %d want %d", seed, k, got, want)
			}
		}
	}
}

func TestESUNoDuplicates(t *testing.T) {
	g := gen.Clique(6)
	var mu sync.Mutex
	seen := map[string]bool{}
	Explore(g, 3, nil, func(sub []graph.V) {
		s := append([]graph.V(nil), sub...)
		// canonical key by sorted vertex ids
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		key := ""
		for _, v := range s {
			key += string(rune('a'+v)) + ","
		}
		mu.Lock()
		if seen[key] {
			t.Errorf("duplicate embedding %v", s)
		}
		seen[key] = true
		mu.Unlock()
	}, Config{Workers: 4})
	if len(seen) != 20 { // C(6,3)
		t.Fatalf("K6 size-3 subgraphs: %d want 20", len(seen))
	}
}

func TestMotifCountsKnown(t *testing.T) {
	tri := CanonicalCode(gen.Clique(3), []graph.V{0, 1, 2})
	wedgeG := graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}})
	wedge := CanonicalCode(wedgeG, []graph.V{0, 1, 2})

	counts, _ := MotifCounts(gen.Clique(4), 3, Config{})
	if counts[tri] != 4 || counts[wedge] != 0 {
		t.Fatalf("K4 motifs: %v", counts)
	}
	counts, _ = MotifCounts(graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}}), 3, Config{})
	if counts[wedge] != 2 || counts[tri] != 0 {
		t.Fatalf("P4 motifs: %v", counts)
	}
	counts, _ = MotifCounts(gen.Grid(3, 3), 3, Config{})
	if counts[tri] != 0 || counts[wedge] != 22 {
		t.Fatalf("grid motifs: %v", counts)
	}
}

func TestPatternName(t *testing.T) {
	tri := CanonicalCode(gen.Clique(3), []graph.V{0, 1, 2})
	if PatternName(tri) != "triangle" {
		t.Fatalf("triangle name = %q", PatternName(tri))
	}
	k4 := CanonicalCode(gen.Clique(4), []graph.V{0, 1, 2, 3})
	if PatternName(k4) != "K4" {
		t.Fatalf("K4 name = %q", PatternName(k4))
	}
}

func TestCanonicalCodeIsomorphismInvariant(t *testing.T) {
	// same diamond, two different vertex numberings
	g1 := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	g2 := graph.FromEdges(4, [][2]graph.V{{2, 3}, {3, 0}, {0, 1}, {1, 2}, {3, 1}})
	c1 := CanonicalCode(g1, []graph.V{0, 1, 2, 3})
	c2 := CanonicalCode(g2, []graph.V{0, 1, 2, 3})
	if c1 != c2 {
		t.Fatal("isomorphic graphs got different codes")
	}
	// different graphs, different codes
	cycle := graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if CanonicalCode(cycle, []graph.V{0, 1, 2, 3}) == c1 {
		t.Fatal("cycle4 and diamond share a code")
	}
}

func TestCanonicalCodeRespectsLabels(t *testing.T) {
	mk := func(l0, l1 int32) *graph.Graph {
		b := graph.NewBuilder(2, false)
		b.SetLabel(0, l0)
		b.SetLabel(1, l1)
		b.AddEdge(0, 1)
		return b.Build()
	}
	a := CanonicalCode(mk(1, 2), []graph.V{0, 1})
	bcode := CanonicalCode(mk(2, 1), []graph.V{0, 1}) // same up to permutation
	c := CanonicalCode(mk(1, 1), []graph.V{0, 1})
	if a != bcode {
		t.Fatal("label permutation should not change code")
	}
	if a == c {
		t.Fatal("different label multisets must differ")
	}
}

func TestCliquesBFSvsDFS(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(40, 300, seed)
		for k := 3; k <= 5; k++ {
			bfs, _ := CountCliquesBFS(g, k, Config{})
			dfs := CountCliquesDFS(g, k)
			if bfs != dfs {
				t.Fatalf("seed %d k=%d: BFS=%d DFS=%d", seed, k, bfs, dfs)
			}
		}
	}
	// known: K6 has C(6,4)=15 4-cliques
	bfs, _ := CountCliquesBFS(gen.Clique(6), 4, Config{})
	if bfs != 15 {
		t.Fatalf("K6 4-cliques = %d", bfs)
	}
}

func TestBFSPeakGrows(t *testing.T) {
	g := gen.Clique(12)
	_, s3 := CountCliquesBFS(g, 3, Config{})
	_, s4 := CountCliquesBFS(g, 4, Config{})
	if s4.Peak <= s3.Peak {
		t.Fatalf("peak should grow with k: %d vs %d", s3.Peak, s4.Peak)
	}
	if len(s4.LevelSizes) != 4 {
		t.Fatalf("level sizes: %v", s4.LevelSizes)
	}
}

func TestMaxEmbeddingsAborts(t *testing.T) {
	g := gen.Clique(20)
	stats := Explore(g, 4, nil, nil, Config{MaxEmbeddings: 50})
	if !stats.Aborted {
		t.Fatal("expected abort under tiny embedding budget")
	}
}

func TestFrequentPatterns(t *testing.T) {
	// grid has 22 wedges and nothing else at size 3
	pats, _ := FrequentPatterns(gen.Grid(3, 3), 3, 10, Config{})
	if len(pats) != 1 {
		t.Fatalf("patterns: %v", pats)
	}
	pats, _ = FrequentPatterns(gen.Grid(3, 3), 3, 23, Config{})
	if len(pats) != 0 {
		t.Fatalf("min support 23 should filter all: %v", pats)
	}
}

func TestExploreEdgeCases(t *testing.T) {
	empty := graph.NewBuilder(0, false).Build()
	s := Explore(empty, 3, nil, nil, Config{})
	if s.Total != 0 {
		t.Fatal("empty graph explored something")
	}
	single := graph.NewBuilder(1, false).Build()
	if got := countExplored(single, 1); got != 1 {
		t.Fatalf("single vertex k=1: %d", got)
	}
	if got := countExplored(single, 2); got != 0 {
		t.Fatalf("single vertex k=2: %d", got)
	}
}

func TestCanonicalCodeRelabelInvarianceProperty(t *testing.T) {
	// property: CanonicalCode is invariant under random vertex relabelings
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		g := gen.WithRandomLabels(gen.ErdosRenyi(n, int64(n*2), seed), 3, seed+1)
		vs := make([]graph.V, n)
		for i := range vs {
			vs[i] = graph.V(i)
		}
		orig := CanonicalCode(g, vs)
		// random relabeling
		perm := rng.Perm(n)
		b := graph.NewBuilder(n, false)
		for v := 0; v < n; v++ {
			b.SetLabel(graph.V(perm[v]), g.Label(graph.V(v)))
		}
		g.EdgesOnce(func(u, v graph.V) {
			b.AddEdge(graph.V(perm[u]), graph.V(perm[v]))
		})
		return CanonicalCode(b.Build(), vs) == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
