package mining

import (
	"fmt"
	"sort"
	"sync"

	"graphsys/internal/graph"
)

// CanonicalCode returns a canonical string key of the subgraph of g induced
// by vs (|vs| ≤ 8), such that two induced subgraphs get the same key iff they
// are isomorphic (respecting vertex labels when present). It brute-forces all
// |vs|! vertex permutations and keeps the lexicographically smallest
// (labels, adjacency-bits) encoding — exact and fast for the pattern sizes
// mining systems aggregate (k ≤ 6 in Arabesque/Pangolin evaluations).
func CanonicalCode(g *graph.Graph, vs []graph.V) string {
	k := len(vs)
	if k > 8 {
		//lint:allow panicpolicy documented size precondition (k ≤ 8, the Arabesque/Pangolin evaluation range); callers pick k statically
		panic("mining: CanonicalCode supports at most 8 vertices")
	}
	// local adjacency matrix + labels
	var adj [8][8]bool
	var labels [8]int32
	for i := 0; i < k; i++ {
		labels[i] = g.Label(vs[i])
		for j := i + 1; j < k; j++ {
			e := g.HasEdge(vs[i], vs[j])
			adj[i][j], adj[j][i] = e, e
		}
	}
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	best := ""
	var rec func(i int)
	encode := func() string {
		buf := make([]byte, 0, k*4+k*k)
		for _, p := range perm {
			buf = append(buf, byte(labels[p]), byte(labels[p]>>8), byte(labels[p]>>16), byte(labels[p]>>24))
		}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if adj[perm[a]][perm[b]] {
					buf = append(buf, '1')
				} else {
					buf = append(buf, '0')
				}
			}
		}
		return string(buf)
	}
	rec = func(i int) {
		if i == k {
			if code := encode(); best == "" || code < best {
				best = code
			}
			return
		}
		for j := i; j < k; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

// PatternName renders a human-readable name for common unlabeled size-3/4
// motif codes; unknown codes are returned as-is.
func PatternName(code string) string {
	names := map[string]string{}
	reg := func(n int, edges [][2]graph.V, name string) {
		b := graph.NewBuilder(n, false)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		g := b.Build()
		vs := make([]graph.V, n)
		for i := range vs {
			vs[i] = graph.V(i)
		}
		names[CanonicalCode(g, vs)] = name
	}
	reg(3, [][2]graph.V{{0, 1}, {1, 2}}, "wedge")
	reg(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}}, "triangle")
	reg(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}}, "path4")
	reg(4, [][2]graph.V{{0, 1}, {0, 2}, {0, 3}}, "star4")
	reg(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, "cycle4")
	reg(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}, "diamond")
	reg(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 0}, {2, 3}}, "tailed-triangle")
	reg(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}}, "K4")
	if n, ok := names[code]; ok {
		return n
	}
	return fmt.Sprintf("pattern<%x>", code)
}

// MotifCounts counts connected induced subgraphs of size k by isomorphism
// class (graphlet/motif counting — the Arabesque "motifs" application).
func MotifCounts(g *graph.Graph, k int, cfg Config) (map[string]int64, Stats) {
	var mu sync.Mutex
	counts := map[string]int64{}
	stats := Explore(g, k, nil, func(sub []graph.V) {
		code := CanonicalCode(g, sub)
		mu.Lock()
		counts[code]++
		mu.Unlock()
	}, cfg)
	return counts, stats
}

// CountCliquesBFS counts k-cliques with the BFS-extension engine, pruning
// embeddings that are not cliques at every level (clique-ness is hereditary,
// so the filter is exact). Its Stats expose the materialisation cost to
// compare against DFS clique search (BenchmarkTable1_BFSvsDFS).
func CountCliquesBFS(g *graph.Graph, k int, cfg Config) (int64, Stats) {
	var mu sync.Mutex
	var count int64
	isClique := func(sub []graph.V) bool {
		last := sub[len(sub)-1]
		for _, v := range sub[:len(sub)-1] {
			if !g.HasEdge(v, last) {
				return false
			}
		}
		return true
	}
	stats := Explore(g, k, isClique, func(sub []graph.V) {
		mu.Lock()
		count++
		mu.Unlock()
	}, cfg)
	return count, stats
}

// CountCliquesDFS counts k-cliques by depth-first backtracking without
// materialising embeddings (the G-thinker-style counterpart; its memory use
// is O(k·Δ) instead of O(#embeddings)).
func CountCliquesDFS(g *graph.Graph, k int) int64 {
	order, _ := graph.DegeneracyOrder(g)
	pos := make([]int, g.NumVertices())
	for i, v := range order {
		pos[v] = i
	}
	var count int64
	var extend func(cands []graph.V, size int)
	extend = func(cands []graph.V, size int) {
		if size == k {
			count++
			return
		}
		for i, v := range cands {
			if size+len(cands)-i < k {
				return // not enough candidates left
			}
			var next []graph.V
			for _, w := range cands[i+1:] {
				if g.HasEdge(v, w) {
					next = append(next, w)
				}
			}
			extend(next, size+1)
		}
	}
	for _, v := range order {
		var cands []graph.V
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				cands = append(cands, w)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return pos[cands[i]] < pos[cands[j]] })
		extend(cands, 1)
	}
	return count
}

// FrequentPatterns aggregates size-k connected induced subgraphs by canonical
// pattern and returns the patterns whose instance count is ≥ minSupport
// (instance-count support, the aggregation Arabesque exposes; see
// internal/fsm for MNI-based single-graph FSM).
func FrequentPatterns(g *graph.Graph, k int, minSupport int64, cfg Config) (map[string]int64, Stats) {
	counts, stats := MotifCounts(g, k, cfg)
	for code, c := range counts {
		if c < minSupport {
			delete(counts, code)
		}
	}
	return counts, stats
}
