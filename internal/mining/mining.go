// Package mining implements the breadth-first subgraph-extension computing
// model of Arabesque, RStream and Pangolin: all embeddings (connected induced
// subgraph instances) of size i are materialised before any embedding of size
// i+1 is generated. The engine is exact — each connected induced subgraph is
// enumerated exactly once via ESU-style (Wernicke) extension-set filtering —
// and it meters the peak number of materialised embeddings, which is the
// quantity the paper identifies as this model's scalability Achilles heel
// ("subgraph materialization cost … grows exponentially").
package mining

import (
	"sync"

	"graphsys/internal/graph"
)

// Embedding is a materialised subgraph instance: the vertex set (in
// generation order, Sub[0] is the minimum-id root) plus the ESU extension
// set of vertices that may still be added.
type Embedding struct {
	Sub []graph.V
	Ext []graph.V
}

// Config controls an exploration run.
type Config struct {
	Workers int // parallel extension workers (default 4)
	// MaxEmbeddings aborts the run when a level would materialise more than
	// this many embeddings (0 = unlimited). Models device/host memory limits.
	MaxEmbeddings int64
}

// Stats reports the BFS-materialisation footprint of a run.
type Stats struct {
	LevelSizes []int64 // embeddings materialised at each level (index = size-1)
	Peak       int64   // max over LevelSizes — the BFS memory bottleneck
	Total      int64   // total embeddings generated
	Aborted    bool    // true if MaxEmbeddings was exceeded
}

// Explore enumerates all connected induced subgraphs of exactly size k,
// calling process (if non-nil) for each complete embedding, concurrently.
// filter (if non-nil) prunes embeddings at every intermediate size; a pruned
// embedding is not extended (Arabesque's shouldExpand).
func Explore(g *graph.Graph, k int, filter func(sub []graph.V) bool, process func(sub []graph.V), cfg Config) Stats {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	n := g.NumVertices()
	stats := Stats{}
	if k <= 0 || n == 0 {
		return stats
	}
	// level 1: one embedding per vertex, Ext = {u ∈ N(v) : u > v}
	level := make([]Embedding, 0, n)
	for v := graph.V(0); int(v) < n; v++ {
		var ext []graph.V
		for _, u := range g.Neighbors(v) {
			if u > v {
				ext = append(ext, u)
			}
		}
		level = append(level, Embedding{Sub: []graph.V{v}, Ext: ext})
	}
	record := func(lv []Embedding) {
		stats.LevelSizes = append(stats.LevelSizes, int64(len(lv)))
		if int64(len(lv)) > stats.Peak {
			stats.Peak = int64(len(lv))
		}
		stats.Total += int64(len(lv))
	}
	record(level)

	for size := 1; size < k; size++ {
		if filter != nil {
			kept := level[:0]
			for _, e := range level {
				if filter(e.Sub) {
					kept = append(kept, e)
				}
			}
			level = kept
		}
		next := expandLevel(g, level, cfg.Workers)
		if cfg.MaxEmbeddings > 0 && int64(len(next)) > cfg.MaxEmbeddings {
			stats.Aborted = true
			record(next)
			return stats
		}
		level = next
		record(level)
		if len(level) == 0 {
			return stats
		}
	}
	if filter != nil {
		kept := level[:0]
		for _, e := range level {
			if filter(e.Sub) {
				kept = append(kept, e)
			}
		}
		level = kept
	}
	if process != nil {
		parallelEach(level, cfg.Workers, func(e Embedding) { process(e.Sub) })
	}
	return stats
}

// expandLevel applies one ESU extension step to every embedding in parallel.
func expandLevel(g *graph.Graph, level []Embedding, workers int) []Embedding {
	outs := make([][]Embedding, workers)
	var wg sync.WaitGroup
	chunk := (len(level) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(level) {
			hi = len(level)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//lint:allow nakedgo bounded BFS-expansion pool, joined via WaitGroup below; candidate partitions are disjoint
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []Embedding
			for _, e := range level[lo:hi] {
				out = extendESU(g, e, out)
			}
			outs[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var next []Embedding
	for _, o := range outs {
		next = append(next, o...)
	}
	return next
}

// extendESU produces the children of e under the ESU rule: take each w from
// the extension set in order; the child's extension set is the remaining
// extension vertices plus the *exclusive* neighbors of w (neighbors of w that
// are greater than the root and not adjacent to, or part of, the current
// subgraph). This yields each connected induced subgraph exactly once.
func extendESU(g *graph.Graph, e Embedding, out []Embedding) []Embedding {
	root := e.Sub[0]
	// membership sets for exclusivity test
	inSub := make(map[graph.V]bool, len(e.Sub))
	nSub := make(map[graph.V]bool)
	for _, v := range e.Sub {
		inSub[v] = true
		for _, u := range g.Neighbors(v) {
			nSub[u] = true
		}
	}
	for i, w := range e.Ext {
		child := Embedding{
			Sub: append(append(make([]graph.V, 0, len(e.Sub)+1), e.Sub...), w),
		}
		child.Ext = append(child.Ext, e.Ext[i+1:]...)
		for _, u := range g.Neighbors(w) {
			if u > root && !inSub[u] && !nSub[u] {
				child.Ext = append(child.Ext, u)
			}
		}
		out = append(out, child)
	}
	return out
}

func parallelEach(level []Embedding, workers int, fn func(Embedding)) {
	var wg sync.WaitGroup
	chunk := (len(level) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(level) {
			hi = len(level)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//lint:allow nakedgo bounded DFS-count pool, joined via WaitGroup below; per-range counters are merged after the join
		go func(lo, hi int) {
			defer wg.Done()
			for _, e := range level[lo:hi] {
				fn(e)
			}
		}(lo, hi)
	}
	wg.Wait()
}
