// Package cluster is the simulated distributed runtime every "distributed"
// system in this repository runs on. Real deployments of the surveyed systems
// (Pregel, G-thinker, DistDGL, P³, …) run on multi-machine clusters; here a
// cluster is N in-process workers that may exchange data only through a
// metered Network, so communication volume, synchronisation rounds and load
// balance — the quantities the paper's comparisons are about — are measured
// exactly rather than inferred from wall-clock time.
package cluster

import (
	"fmt"
	"sync"
)

// Cluster models a set of workers connected by a metered network.
type Cluster struct {
	n   int
	net *Network
}

// New creates a cluster with n workers and uniform link costs.
func New(n int) *Cluster {
	if n <= 0 {
		panic("cluster: need at least one worker")
	}
	return &Cluster{n: n, net: NewNetwork(n)}
}

// NumWorkers returns the number of workers.
func (c *Cluster) NumWorkers() int { return c.n }

// Network returns the cluster's metered network.
func (c *Cluster) Network() *Network { return c.net }

// Run executes fn concurrently on every worker (fn receives the worker id)
// and blocks until all complete. Panics in workers are propagated.
func (c *Cluster) Run(fn func(worker int)) {
	var wg sync.WaitGroup
	panics := make([]any, c.n)
	for w := 0; w < c.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	for w, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("cluster: worker %d panicked: %v", w, p))
		}
	}
}

// Owner returns the worker owning item id under hash placement.
func (c *Cluster) Owner(id int64) int {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return int(h % uint64(c.n))
}

// Barrier is a reusable synchronisation barrier for n parties.
type Barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	round  int
	action func()
}

// NewBarrier creates a barrier for n parties. If action is non-nil it runs
// exactly once per round, by the last arriving party, before others release.
func NewBarrier(n int, action func()) *Barrier {
	b := &Barrier{n: n, action: action}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait for the current round.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	round := b.round
	b.count++
	if b.count == b.n {
		if b.action != nil {
			b.action()
		}
		b.count = 0
		b.round++
		b.cond.Broadcast()
		return
	}
	for b.round == round {
		b.cond.Wait()
	}
}
