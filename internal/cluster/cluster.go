// Package cluster is the simulated distributed runtime every "distributed"
// system in this repository runs on. Real deployments of the surveyed systems
// (Pregel, G-thinker, DistDGL, P³, …) run on multi-machine clusters; here a
// cluster is N in-process workers that may exchange data only through a
// metered Network, so communication volume, synchronisation rounds and load
// balance — the quantities the paper's comparisons are about — are measured
// exactly rather than inferred from wall-clock time.
package cluster

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Cluster models a set of workers connected by a metered network.
type Cluster struct {
	n      int
	net    *Network
	faults *FaultInjector // nil unless InstallFaults was called

	mu   sync.Mutex
	busy []float64 // cumulative per-worker busy time, seconds
}

// New creates a cluster with n workers and uniform link costs.
func New(n int) *Cluster {
	if n <= 0 {
		//lint:allow panicpolicy worker count is a compile-time-style configuration constant; a zero cluster is a programmer error, not a runtime condition
		panic("cluster: need at least one worker")
	}
	return &Cluster{n: n, net: NewNetwork(n), busy: make([]float64, n)}
}

// NumWorkers returns the number of workers.
func (c *Cluster) NumWorkers() int { return c.n }

// Network returns the cluster's metered network.
func (c *Cluster) Network() *Network { return c.net }

// InstallFaults installs a fault plan on the cluster and its network: the
// network starts dropping/retrying messages per the plan, Run credits
// straggler-slowed busy time, and engines observe the planned crash through
// the returned injector. Call before the run starts.
func (c *Cluster) InstallFaults(plan FaultPlan) *FaultInjector {
	fi := NewFaultInjector(plan)
	c.faults = fi
	c.net.setFaults(fi)
	return fi
}

// Faults returns the installed fault injector, or nil (which is safe to call
// methods on) when the run is fault-free.
func (c *Cluster) Faults() *FaultInjector { return c.faults }

// Run executes fn concurrently on every worker (fn receives the worker id)
// and blocks until all complete. Each worker's wall time is credited to its
// busy meter (see WorkerBusy). If workers panic, Run re-panics with ALL
// worker panics aggregated into one message, so a multi-worker failure is
// diagnosable from a single crash report.
func (c *Cluster) Run(fn func(worker int)) {
	var wg sync.WaitGroup
	panics := make([]any, c.n)
	elapsed := make([]float64, c.n)
	for w := 0; w < c.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			//lint:allow wallclock busy-time metering feeds the obs skew metrics only; results never read it
			start := time.Now()
			defer func() {
				//lint:allow wallclock busy-time metering feeds the obs skew metrics only; results never read it
				elapsed[w] = time.Since(start).Seconds()
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	c.mu.Lock()
	for w, sec := range elapsed {
		// a planned straggler is credited factor× its wall time, so the
		// slowdown shows up in busy-time skew exactly like a real slow node
		c.busy[w] += sec * c.faults.SlowFactor(w)
	}
	c.mu.Unlock()
	var failed []string
	for w, p := range panics {
		if p != nil {
			failed = append(failed, fmt.Sprintf("worker %d: %v", w, p))
		}
	}
	if len(failed) > 0 {
		//lint:allow panicpolicy worker panics are crashes by design: Run aggregates and rethrows them so drivers (graphbench, tests) surface every failed worker at once
		panic(fmt.Sprintf("cluster: %d worker(s) panicked: %s", len(failed), strings.Join(failed, "; ")))
	}
}

// AddBusy credits seconds of busy time to worker w. Engines that advance a
// SIMULATED clock (gnndist's WorkerSpeed model) use this so that trace skew
// reflects simulated rather than wall time; Run itself credits wall time.
func (c *Cluster) AddBusy(w int, seconds float64) {
	c.mu.Lock()
	c.busy[w] += seconds
	c.mu.Unlock()
}

// WorkerBusy returns a copy of the cumulative per-worker busy time (seconds).
func (c *Cluster) WorkerBusy() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.busy...)
}

// Owner returns the worker owning item id under hash placement.
func (c *Cluster) Owner(id int64) int {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return int(h % uint64(c.n))
}

// Barrier is a reusable synchronisation barrier for n parties.
type Barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	round  int
	action func()
	broken any // non-nil once a round action has panicked
}

// NewBarrier creates a barrier for n parties. If action is non-nil it runs
// exactly once per round, by the last arriving party, before others release.
func NewBarrier(n int, action func()) *Barrier {
	b := &Barrier{n: n, action: action}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties have called Wait for the current round.
//
// If the round action panics, the barrier still releases every waiting party
// (no deadlock) and the barrier is permanently broken: every party — the
// waiters of that round and any later arrival — panics with the action's
// panic value, so the failure surfaces through Cluster.Run instead of
// hanging the cluster.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken != nil {
		//lint:allow panicpolicy a broken barrier must crash every later arrival; the panic propagates through Cluster.Run, never past an engine API
		panic(fmt.Sprintf("cluster: barrier broken by earlier action panic: %v", b.broken))
	}
	round := b.round
	b.count++
	if b.count == b.n {
		if b.action != nil {
			func() {
				defer func() {
					if r := recover(); r != nil {
						b.broken = r
					}
				}()
				b.action()
			}()
		}
		b.count = 0
		b.round++
		b.cond.Broadcast()
		if b.broken != nil {
			//lint:allow panicpolicy rethrow of the round action panic to the releasing waiter; surfaces through Cluster.Run
			panic(fmt.Sprintf("cluster: barrier action panicked: %v", b.broken))
		}
		return
	}
	for b.round == round {
		b.cond.Wait()
	}
	if b.broken != nil {
		//lint:allow panicpolicy rethrow of the round action panic to released waiters; surfaces through Cluster.Run
		panic(fmt.Sprintf("cluster: barrier action panicked: %v", b.broken))
	}
}
