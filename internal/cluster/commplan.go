package cluster

import "sort"

// Transfer is one logical data movement of Size bytes from worker From to
// worker To.
type Transfer struct {
	From, To int
	Size     int64
}

// CommPlan routes a set of logical transfers over the network topology.
// DirectPlan sends everything point-to-point; PlanRelay (the DGCL-style
// planner) may relay a transfer through an intermediate worker when the
// two-hop path over fast links is cheaper than the direct slow link — the
// essence of DGCL's topology-aware communication plans for NVLink islands.
type CommPlan struct {
	hops [][]int // per transfer: sequence of workers, e.g. [from, relay, to]
}

// DirectPlan returns the trivial plan (every transfer point-to-point).
func DirectPlan(ts []Transfer) *CommPlan {
	p := &CommPlan{hops: make([][]int, len(ts))}
	for i, t := range ts {
		p.hops[i] = []int{t.From, t.To}
	}
	return p
}

// PlanRelay computes, for each transfer, the cheapest one- or two-hop route
// under net's link costs. With k workers this is O(len(ts)·k).
func PlanRelay(net *Network, ts []Transfer) *CommPlan {
	p := &CommPlan{hops: make([][]int, len(ts))}
	for i, t := range ts {
		best := net.LinkCost(t.From, t.To)
		bestRelay := -1
		for r := 0; r < net.n; r++ {
			if r == t.From || r == t.To {
				continue
			}
			c := net.LinkCost(t.From, r) + net.LinkCost(r, t.To)
			if c < best {
				best = c
				bestRelay = r
			}
		}
		if bestRelay >= 0 {
			p.hops[i] = []int{t.From, bestRelay, t.To}
		} else {
			p.hops[i] = []int{t.From, t.To}
		}
	}
	return p
}

// Execute accounts all transfers on net following the plan's routes and
// returns the total weighted cost added.
func (p *CommPlan) Execute(net *Network, ts []Transfer) float64 {
	before := net.Stats().WeightedCost
	for i, t := range ts {
		route := p.hops[i]
		for h := 1; h < len(route); h++ {
			net.Account(route[h-1], route[h], t.Size)
		}
	}
	return net.Stats().WeightedCost - before
}

// RingTopology configures net as hosts of `perHost` workers each: links
// within a host have cost fastCost (NVLink-like), links across hosts cost 1.
func RingTopology(net *Network, perHost int, fastCost float64) {
	for i := 0; i < net.n; i++ {
		for j := 0; j < net.n; j++ {
			if i == j {
				continue
			}
			if i/perHost == j/perHost {
				net.SetLinkCost(i, j, fastCost)
			} else {
				net.SetLinkCost(i, j, 1)
			}
		}
	}
}

// BalanceAssign greedily assigns weighted items to k workers minimising the
// maximum load (longest-processing-time heuristic). Returns the assignment
// and the resulting per-worker loads. Used by schedulers that balance
// sampling/aggregation operators across workers.
func BalanceAssign(weights []int64, k int) (assign []int, loads []int64) {
	type item struct {
		idx int
		w   int64
	}
	items := make([]item, len(weights))
	for i, w := range weights {
		items[i] = item{i, w}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].w > items[j].w })
	assign = make([]int, len(weights))
	loads = make([]int64, k)
	for _, it := range items {
		best := 0
		for w := 1; w < k; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		assign[it.idx] = best
		loads[best] += it.w
	}
	return assign, loads
}
