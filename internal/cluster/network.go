package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Network meters all cross-worker traffic. Messages between distinct workers
// count toward Bytes/Messages and accumulate WeightedCost = bytes×linkCost;
// worker-local deliveries are counted separately (they model shared-memory
// access and are free in the surveyed systems' cost models).
//
// Heterogeneous links (the DGCL NVLink scenario) are expressed through the
// per-byte link cost matrix: a fast NVLink pair has cost ≪ 1, a cross-host
// TCP link cost 1.
//
// Metering has two entry points with identical accounting semantics:
//
//   - Account / AccountBatch — the direct path, one (or one batched) lock
//     acquisition per call. Engines that move bulk tensors once per round
//     (gnndist weight sync, feature pulls) use these.
//   - the staged path — Mailboxes stages messages per sender without touching
//     the network at all, and flushes each sender's per-destination totals
//     under ONE lock acquisition per sender per round at Exchange. This is
//     the message hot path (Pregel-style engines), where per-message locking
//     would dominate the run.
//
// With EnableTrace the network additionally keeps a per-link (worker×worker)
// traffic matrix and a per-round history (one RoundStats per AccountRound),
// the raw material of the observability layer in internal/obs. Per-round
// stats are flush-driven: staged traffic lands in the current round's window
// at the Exchange that flushes it, which is also the round boundary.
type Network struct {
	n int

	traceOn atomic.Bool
	faults  atomic.Pointer[FaultInjector] // non-nil once a fault plan is installed

	// All counters live under one mutex so Stats() is a consistent snapshot
	// (messages/bytes/cost can never be observed torn mid-update). The staged
	// path acquires it once per sender per round, so it is uncontended there;
	// the direct Account path acquires it per call, exactly as before.
	mu       sync.Mutex
	messages int64 // logical cross-worker messages (delivered payloads)
	attempts int64 // physical transmissions incl. FaultPlan retries, ≥ messages
	bytes    int64 // cross-worker bytes on the wire, incl. retry traffic
	local    int64 // worker-local deliveries
	rounds   int64
	cost     float64
	linkCost [][]float64 // SetLinkCost may race with Account

	// tracing state (allocated by EnableTrace, guarded by mu)
	linkBytes []int64 // n×n row-major: wire bytes sent i→j (incl. retries)
	linkMsgs  []int64 // n×n row-major: transmissions i→j (incl. retries)
	cur       RoundStats
	history   []RoundStats
}

// NewNetwork creates a network for n workers with uniform link cost 1.
func NewNetwork(n int) *Network {
	if n <= 0 {
		//lint:allow panicpolicy worker count is a configuration constant; a zero network is a programmer error, not a runtime condition
		panic("cluster: network needs at least one worker")
	}
	lc := make([][]float64, n)
	for i := range lc {
		lc[i] = make([]float64, n)
		for j := range lc[i] {
			lc[i][j] = 1
		}
	}
	return &Network{n: n, linkCost: lc}
}

// NumWorkers returns the number of workers the network connects.
func (net *Network) NumWorkers() int { return net.n }

func (net *Network) checkLink(i, j int) {
	if i < 0 || i >= net.n || j < 0 || j >= net.n {
		panic(fmt.Sprintf("cluster: link (%d,%d) out of range for %d-worker network", i, j, net.n))
	}
}

// SetLinkCost sets the per-byte cost of the directed link i→j. It is safe to
// call concurrently with Account (topology reconfiguration mid-run).
func (net *Network) SetLinkCost(i, j int, cost float64) {
	net.checkLink(i, j)
	net.mu.Lock()
	net.linkCost[i][j] = cost
	net.mu.Unlock()
}

// LinkCost returns the per-byte cost of the link i→j.
func (net *Network) LinkCost(i, j int) float64 {
	net.checkLink(i, j)
	net.mu.Lock()
	c := net.linkCost[i][j]
	net.mu.Unlock()
	return c
}

// EnableTrace turns on per-link and per-round accounting. Counting starts at
// the moment of the call; traffic accounted earlier is only in the global
// aggregates. Enabling is idempotent and keeps any trace already collected.
func (net *Network) EnableTrace() {
	net.mu.Lock()
	if net.linkBytes == nil {
		net.linkBytes = make([]int64, net.n*net.n)
		net.linkMsgs = make([]int64, net.n*net.n)
	}
	net.mu.Unlock()
	net.traceOn.Store(true)
}

// Tracing reports whether per-link/per-round tracing is enabled.
func (net *Network) Tracing() bool { return net.traceOn.Load() }

// setFaults attaches a fault injector; subsequent cross-worker transfers are
// subject to the plan's message drops with metered retransmission.
func (net *Network) setFaults(fi *FaultInjector) { net.faults.Store(fi) }

// Account records a transfer of size bytes from worker i to worker j.
// It carries no payload; payload delivery is the caller's concern (Mailboxes,
// shared structures). Local transfers (i==j) are metered separately.
//
// Under an installed FaultPlan with DropProb > 0, a cross-worker transfer may
// be "dropped" and retransmitted: the message is always eventually delivered
// (bounded by MaxRetries), so it counts once toward Messages, but every
// failed attempt is accounted as real link traffic — Attempts, Bytes and
// WeightedCost include the wasted transmissions a lossy network actually
// carries.
func (net *Network) Account(i, j int, size int64) {
	net.AccountBatch(i, j, 1, size)
}

// AccountBatch records msgs transfers totalling bytes from worker i to worker
// j under a single lock acquisition — the batched-transfer accounting the
// surveyed systems' communication layers (Giraph superstep batching, DistDGL
// block feature transfer) use to avoid per-message overhead. Fault-plan drops
// are drawn per message with the batch's mean message size, so retry metering
// matches msgs individual Account calls for uniform-size batches.
func (net *Network) AccountBatch(i, j int, msgs, bytes int64) {
	net.checkLink(i, j)
	if msgs <= 0 {
		return
	}
	if i == j {
		net.mu.Lock()
		net.local += msgs
		if net.traceOn.Load() {
			net.cur.LocalMessages += msgs
		}
		net.mu.Unlock()
		return
	}
	drops, retryBytes := net.faults.Load().drawDropsUniform(msgs, bytes/msgs)
	attempts := msgs + drops
	wire := bytes + retryBytes
	net.mu.Lock()
	net.messages += msgs
	net.attempts += attempts
	net.bytes += wire
	c := float64(wire) * net.linkCost[i][j]
	net.cost += c
	if net.traceOn.Load() {
		k := i*net.n + j
		net.linkBytes[k] += wire
		net.linkMsgs[k] += attempts
		net.cur.Messages += msgs
		net.cur.Attempts += attempts
		net.cur.Bytes += wire
		net.cur.WeightedCost += c
	}
	net.mu.Unlock()
}

// flushSender is the staged path's metering entry: it lands sender `from`'s
// whole round of traffic — per-destination logical messages, physical
// attempts and wire bytes, plus worker-local deliveries — under ONE lock
// acquisition. Drop draws already happened at the caller (flush time), so the
// critical section is pure accumulation.
func (net *Network) flushSender(from int, msgs, attempts, bytes []int64, localMsgs int64) {
	net.mu.Lock()
	defer net.mu.Unlock()
	tr := net.traceOn.Load()
	if localMsgs > 0 {
		net.local += localMsgs
		if tr {
			net.cur.LocalMessages += localMsgs
		}
	}
	for d := range msgs {
		if msgs[d] == 0 {
			continue
		}
		net.messages += msgs[d]
		net.attempts += attempts[d]
		net.bytes += bytes[d]
		c := float64(bytes[d]) * net.linkCost[from][d]
		net.cost += c
		if tr {
			k := from*net.n + d
			net.linkBytes[k] += bytes[d]
			net.linkMsgs[k] += attempts[d]
			net.cur.Messages += msgs[d]
			net.cur.Attempts += attempts[d]
			net.cur.Bytes += bytes[d]
			net.cur.WeightedCost += c
		}
	}
}

// AccountRound records the completion of one global synchronisation round.
// Under tracing it also closes the current RoundStats window.
func (net *Network) AccountRound() {
	net.mu.Lock()
	net.rounds++
	if net.traceOn.Load() {
		cur := net.cur
		cur.Round = int(net.rounds) - 1
		net.history = append(net.history, cur)
		net.cur = RoundStats{}
	}
	net.mu.Unlock()
}

// RoundStats is the traffic accounted within one synchronisation round.
// Attempts ≥ Messages; the difference is FaultPlan retry transmissions.
type RoundStats struct {
	Round         int     `json:"round"`
	Messages      int64   `json:"messages"`
	Attempts      int64   `json:"attempts"`
	Bytes         int64   `json:"bytes"`
	LocalMessages int64   `json:"local_messages"`
	WeightedCost  float64 `json:"weighted_cost"`
}

// TrafficMatrix returns copies of the per-link byte and transmission totals
// (bytes[i][j] = wire bytes sent i→j, incl. retry traffic). Both are nil if
// tracing was never enabled.
func (net *Network) TrafficMatrix() (bytes, msgs [][]int64) {
	net.mu.Lock()
	defer net.mu.Unlock()
	if net.linkBytes == nil {
		return nil, nil
	}
	bytes = make([][]int64, net.n)
	msgs = make([][]int64, net.n)
	for i := 0; i < net.n; i++ {
		bytes[i] = append([]int64(nil), net.linkBytes[i*net.n:(i+1)*net.n]...)
		msgs[i] = append([]int64(nil), net.linkMsgs[i*net.n:(i+1)*net.n]...)
	}
	return bytes, msgs
}

// RoundHistory returns a copy of the completed rounds' stats (empty unless
// tracing is enabled).
func (net *Network) RoundHistory() []RoundStats {
	net.mu.Lock()
	defer net.mu.Unlock()
	return append([]RoundStats(nil), net.history...)
}

// Stats is a snapshot of network counters.
//
// Messages counts logical payloads delivered across workers; Attempts counts
// physical transmissions, which exceed Messages exactly by the FaultPlan
// retry traffic (Attempts − Messages = RecoveryStats.DroppedMessages). Bytes
// and WeightedCost meter the wire, i.e. they include retries.
type Stats struct {
	Messages      int64   // logical cross-worker messages
	Attempts      int64   // physical transmissions incl. retries (≥ Messages)
	Bytes         int64   // cross-worker wire bytes incl. retries
	LocalMessages int64   // worker-local deliveries (free)
	Rounds        int64   // synchronisation rounds
	WeightedCost  float64 // Σ wire bytes × linkCost
}

// Stats returns a snapshot of the counters. All fields are read under one
// lock, so the snapshot is internally consistent even mid-round (e.g. Bytes
// is never ahead of the Attempts it belongs to).
func (net *Network) Stats() Stats {
	net.mu.Lock()
	defer net.mu.Unlock()
	return Stats{
		Messages:      net.messages,
		Attempts:      net.attempts,
		Bytes:         net.bytes,
		LocalMessages: net.local,
		Rounds:        net.rounds,
		WeightedCost:  net.cost,
	}
}

// Reset zeroes all counters, including any collected trace (tracing stays
// enabled if it was).
func (net *Network) Reset() {
	net.mu.Lock()
	net.messages = 0
	net.attempts = 0
	net.bytes = 0
	net.local = 0
	net.rounds = 0
	net.cost = 0
	for i := range net.linkBytes {
		net.linkBytes[i] = 0
		net.linkMsgs[i] = 0
	}
	net.cur = RoundStats{}
	net.history = nil
	net.mu.Unlock()
}

func (s Stats) String() string {
	return fmt.Sprintf("net{msgs=%d attempts=%d bytes=%d local=%d rounds=%d cost=%.0f}",
		s.Messages, s.Attempts, s.Bytes, s.LocalMessages, s.Rounds, s.WeightedCost)
}
