package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Network meters all cross-worker traffic. Messages between distinct workers
// count toward Bytes/Messages and accumulate WeightedCost = bytes×linkCost;
// worker-local deliveries are counted separately (they model shared-memory
// access and are free in the surveyed systems' cost models).
//
// Heterogeneous links (the DGCL NVLink scenario) are expressed through the
// per-byte link cost matrix: a fast NVLink pair has cost ≪ 1, a cross-host
// TCP link cost 1.
type Network struct {
	n        int
	linkCost [][]float64

	messages atomic.Int64
	bytes    atomic.Int64
	local    atomic.Int64
	rounds   atomic.Int64

	mu   sync.Mutex
	cost float64
}

// NewNetwork creates a network for n workers with uniform link cost 1.
func NewNetwork(n int) *Network {
	lc := make([][]float64, n)
	for i := range lc {
		lc[i] = make([]float64, n)
		for j := range lc[i] {
			lc[i][j] = 1
		}
	}
	return &Network{n: n, linkCost: lc}
}

// SetLinkCost sets the per-byte cost of the directed link i→j.
func (net *Network) SetLinkCost(i, j int, cost float64) {
	net.linkCost[i][j] = cost
}

// LinkCost returns the per-byte cost of the link i→j.
func (net *Network) LinkCost(i, j int) float64 { return net.linkCost[i][j] }

// Account records a transfer of size bytes from worker i to worker j.
// It carries no payload; payload delivery is the caller's concern (Mailboxes,
// shared structures). Local transfers (i==j) are metered separately.
func (net *Network) Account(i, j int, size int64) {
	if i == j {
		net.local.Add(1)
		return
	}
	net.messages.Add(1)
	net.bytes.Add(size)
	net.mu.Lock()
	net.cost += float64(size) * net.linkCost[i][j]
	net.mu.Unlock()
}

// AccountRound records the completion of one global synchronisation round.
func (net *Network) AccountRound() { net.rounds.Add(1) }

// Stats is a snapshot of network counters.
type Stats struct {
	Messages      int64   // cross-worker messages
	Bytes         int64   // cross-worker bytes
	LocalMessages int64   // worker-local deliveries (free)
	Rounds        int64   // synchronisation rounds
	WeightedCost  float64 // Σ bytes × linkCost
}

// Stats returns a snapshot of the counters.
func (net *Network) Stats() Stats {
	net.mu.Lock()
	cost := net.cost
	net.mu.Unlock()
	return Stats{
		Messages:      net.messages.Load(),
		Bytes:         net.bytes.Load(),
		LocalMessages: net.local.Load(),
		Rounds:        net.rounds.Load(),
		WeightedCost:  cost,
	}
}

// Reset zeroes all counters.
func (net *Network) Reset() {
	net.messages.Store(0)
	net.bytes.Store(0)
	net.local.Store(0)
	net.rounds.Store(0)
	net.mu.Lock()
	net.cost = 0
	net.mu.Unlock()
}

func (s Stats) String() string {
	return fmt.Sprintf("net{msgs=%d bytes=%d local=%d rounds=%d cost=%.0f}",
		s.Messages, s.Bytes, s.LocalMessages, s.Rounds, s.WeightedCost)
}

// Mailboxes is a double-buffered, superstep-oriented message store: messages
// sent during round r become visible after Exchange(), matching the BSP
// semantics of Pregel-style systems. It is safe for concurrent senders.
type Mailboxes[M any] struct {
	net     *Network
	size    func(M) int64
	mu      []sync.Mutex
	inbox   [][]M // visible to receivers this round
	outbox  [][]M // being filled for next round
	pending atomic.Int64
}

// NewMailboxes creates mailboxes for n workers on net. size reports the wire
// size of a message for metering; pass nil to meter a flat 8 bytes/message.
func NewMailboxes[M any](net *Network, size func(M) int64) *Mailboxes[M] {
	n := net.n
	if size == nil {
		size = func(M) int64 { return 8 }
	}
	return &Mailboxes[M]{
		net:    net,
		size:   size,
		mu:     make([]sync.Mutex, n),
		inbox:  make([][]M, n),
		outbox: make([][]M, n),
	}
}

// Send queues msg from worker `from` to worker `to` for the next round.
func (mb *Mailboxes[M]) Send(from, to int, msg M) {
	mb.net.Account(from, to, mb.size(msg))
	mb.mu[to].Lock()
	mb.outbox[to] = append(mb.outbox[to], msg)
	mb.mu[to].Unlock()
	mb.pending.Add(1)
}

// Exchange makes all queued messages visible and clears the previous round's
// inboxes. Call it from exactly one goroutine at a barrier. It returns the
// number of messages delivered.
func (mb *Mailboxes[M]) Exchange() int64 {
	delivered := mb.pending.Swap(0)
	for w := range mb.inbox {
		mb.inbox[w] = mb.inbox[w][:0]
		mb.inbox[w], mb.outbox[w] = mb.outbox[w], mb.inbox[w]
	}
	mb.net.AccountRound()
	return delivered
}

// Receive returns the messages visible to worker w this round. The slice is
// valid until the next Exchange.
func (mb *Mailboxes[M]) Receive(w int) []M { return mb.inbox[w] }
