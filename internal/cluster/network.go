package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Network meters all cross-worker traffic. Messages between distinct workers
// count toward Bytes/Messages and accumulate WeightedCost = bytes×linkCost;
// worker-local deliveries are counted separately (they model shared-memory
// access and are free in the surveyed systems' cost models).
//
// Heterogeneous links (the DGCL NVLink scenario) are expressed through the
// per-byte link cost matrix: a fast NVLink pair has cost ≪ 1, a cross-host
// TCP link cost 1.
//
// With EnableTrace the network additionally keeps a per-link (worker×worker)
// traffic matrix and a per-round history (one RoundStats per AccountRound),
// the raw material of the observability layer in internal/obs.
type Network struct {
	n int

	messages atomic.Int64
	bytes    atomic.Int64
	local    atomic.Int64
	rounds   atomic.Int64

	traceOn atomic.Bool
	faults  atomic.Pointer[FaultInjector] // non-nil once a fault plan is installed

	mu       sync.Mutex
	linkCost [][]float64 // guarded by mu: SetLinkCost may race with Account
	cost     float64

	// tracing state (allocated by EnableTrace, guarded by mu)
	linkBytes []int64 // n×n row-major: bytes sent i→j
	linkMsgs  []int64 // n×n row-major: messages sent i→j
	cur       RoundStats
	history   []RoundStats
}

// NewNetwork creates a network for n workers with uniform link cost 1.
func NewNetwork(n int) *Network {
	if n <= 0 {
		panic("cluster: network needs at least one worker")
	}
	lc := make([][]float64, n)
	for i := range lc {
		lc[i] = make([]float64, n)
		for j := range lc[i] {
			lc[i][j] = 1
		}
	}
	return &Network{n: n, linkCost: lc}
}

// NumWorkers returns the number of workers the network connects.
func (net *Network) NumWorkers() int { return net.n }

func (net *Network) checkLink(i, j int) {
	if i < 0 || i >= net.n || j < 0 || j >= net.n {
		panic(fmt.Sprintf("cluster: link (%d,%d) out of range for %d-worker network", i, j, net.n))
	}
}

// SetLinkCost sets the per-byte cost of the directed link i→j. It is safe to
// call concurrently with Account (topology reconfiguration mid-run).
func (net *Network) SetLinkCost(i, j int, cost float64) {
	net.checkLink(i, j)
	net.mu.Lock()
	net.linkCost[i][j] = cost
	net.mu.Unlock()
}

// LinkCost returns the per-byte cost of the link i→j.
func (net *Network) LinkCost(i, j int) float64 {
	net.checkLink(i, j)
	net.mu.Lock()
	c := net.linkCost[i][j]
	net.mu.Unlock()
	return c
}

// EnableTrace turns on per-link and per-round accounting. Counting starts at
// the moment of the call; traffic accounted earlier is only in the global
// aggregates. Enabling is idempotent and keeps any trace already collected.
func (net *Network) EnableTrace() {
	net.mu.Lock()
	if net.linkBytes == nil {
		net.linkBytes = make([]int64, net.n*net.n)
		net.linkMsgs = make([]int64, net.n*net.n)
	}
	net.mu.Unlock()
	net.traceOn.Store(true)
}

// Tracing reports whether per-link/per-round tracing is enabled.
func (net *Network) Tracing() bool { return net.traceOn.Load() }

// setFaults attaches a fault injector; subsequent cross-worker transfers are
// subject to the plan's message drops with metered retransmission.
func (net *Network) setFaults(fi *FaultInjector) { net.faults.Store(fi) }

// Account records a transfer of size bytes from worker i to worker j.
// It carries no payload; payload delivery is the caller's concern (Mailboxes,
// shared structures). Local transfers (i==j) are metered separately.
//
// Under an installed FaultPlan with DropProb > 0, a cross-worker transfer may
// be "dropped" and retransmitted: the message is always eventually delivered
// (bounded by MaxRetries), but every failed attempt is accounted as real link
// traffic — the wasted bytes a lossy network actually carries.
func (net *Network) Account(i, j int, size int64) {
	net.checkLink(i, j)
	if i == j {
		net.local.Add(1)
		if net.traceOn.Load() {
			net.mu.Lock()
			net.cur.LocalMessages++
			net.mu.Unlock()
		}
		return
	}
	attempts := int64(1 + net.faults.Load().drawDrops(size))
	net.messages.Add(attempts)
	net.bytes.Add(size * attempts)
	net.mu.Lock()
	c := float64(size*attempts) * net.linkCost[i][j]
	net.cost += c
	if net.traceOn.Load() {
		k := i*net.n + j
		net.linkBytes[k] += size * attempts
		net.linkMsgs[k] += attempts
		net.cur.Messages += attempts
		net.cur.Bytes += size * attempts
		net.cur.WeightedCost += c
	}
	net.mu.Unlock()
}

// AccountRound records the completion of one global synchronisation round.
// Under tracing it also closes the current RoundStats window.
func (net *Network) AccountRound() {
	r := net.rounds.Add(1)
	if !net.traceOn.Load() {
		return
	}
	net.mu.Lock()
	cur := net.cur
	cur.Round = int(r) - 1
	net.history = append(net.history, cur)
	net.cur = RoundStats{}
	net.mu.Unlock()
}

// RoundStats is the traffic accounted within one synchronisation round.
type RoundStats struct {
	Round         int     `json:"round"`
	Messages      int64   `json:"messages"`
	Bytes         int64   `json:"bytes"`
	LocalMessages int64   `json:"local_messages"`
	WeightedCost  float64 `json:"weighted_cost"`
}

// TrafficMatrix returns copies of the per-link byte and message totals
// (bytes[i][j] = bytes sent i→j). Both are nil if tracing was never enabled.
func (net *Network) TrafficMatrix() (bytes, msgs [][]int64) {
	net.mu.Lock()
	defer net.mu.Unlock()
	if net.linkBytes == nil {
		return nil, nil
	}
	bytes = make([][]int64, net.n)
	msgs = make([][]int64, net.n)
	for i := 0; i < net.n; i++ {
		bytes[i] = append([]int64(nil), net.linkBytes[i*net.n:(i+1)*net.n]...)
		msgs[i] = append([]int64(nil), net.linkMsgs[i*net.n:(i+1)*net.n]...)
	}
	return bytes, msgs
}

// RoundHistory returns a copy of the completed rounds' stats (empty unless
// tracing is enabled).
func (net *Network) RoundHistory() []RoundStats {
	net.mu.Lock()
	defer net.mu.Unlock()
	return append([]RoundStats(nil), net.history...)
}

// Stats is a snapshot of network counters.
type Stats struct {
	Messages      int64   // cross-worker messages
	Bytes         int64   // cross-worker bytes
	LocalMessages int64   // worker-local deliveries (free)
	Rounds        int64   // synchronisation rounds
	WeightedCost  float64 // Σ bytes × linkCost
}

// Stats returns a snapshot of the counters.
func (net *Network) Stats() Stats {
	net.mu.Lock()
	cost := net.cost
	net.mu.Unlock()
	return Stats{
		Messages:      net.messages.Load(),
		Bytes:         net.bytes.Load(),
		LocalMessages: net.local.Load(),
		Rounds:        net.rounds.Load(),
		WeightedCost:  cost,
	}
}

// Reset zeroes all counters, including any collected trace (tracing stays
// enabled if it was).
func (net *Network) Reset() {
	net.messages.Store(0)
	net.bytes.Store(0)
	net.local.Store(0)
	net.rounds.Store(0)
	net.mu.Lock()
	net.cost = 0
	for i := range net.linkBytes {
		net.linkBytes[i] = 0
		net.linkMsgs[i] = 0
	}
	net.cur = RoundStats{}
	net.history = nil
	net.mu.Unlock()
}

func (s Stats) String() string {
	return fmt.Sprintf("net{msgs=%d bytes=%d local=%d rounds=%d cost=%.0f}",
		s.Messages, s.Bytes, s.LocalMessages, s.Rounds, s.WeightedCost)
}

// Mailboxes is a double-buffered, superstep-oriented message store: messages
// sent during round r become visible after Exchange(), matching the BSP
// semantics of Pregel-style systems. It is safe for concurrent senders.
type Mailboxes[M any] struct {
	net     *Network
	size    func(M) int64
	mu      []sync.Mutex
	inbox   [][]M // visible to receivers this round
	outbox  [][]M // being filled for next round
	pending atomic.Int64
}

// NewMailboxes creates mailboxes for n workers on net. size reports the wire
// size of a message for metering; pass nil to meter a flat 8 bytes/message.
func NewMailboxes[M any](net *Network, size func(M) int64) *Mailboxes[M] {
	n := net.n
	if size == nil {
		size = func(M) int64 { return 8 }
	}
	return &Mailboxes[M]{
		net:    net,
		size:   size,
		mu:     make([]sync.Mutex, n),
		inbox:  make([][]M, n),
		outbox: make([][]M, n),
	}
}

// Send queues msg from worker `from` to worker `to` for the next round.
func (mb *Mailboxes[M]) Send(from, to int, msg M) {
	mb.net.Account(from, to, mb.size(msg))
	mb.mu[to].Lock()
	mb.outbox[to] = append(mb.outbox[to], msg)
	mb.mu[to].Unlock()
	mb.pending.Add(1)
}

// Exchange makes all queued messages visible and clears the previous round's
// inboxes. Call it from exactly one goroutine at a barrier. It returns the
// number of messages delivered.
func (mb *Mailboxes[M]) Exchange() int64 {
	delivered := mb.pending.Swap(0)
	var zero M
	for w := range mb.inbox {
		in := mb.inbox[w]
		// zero before truncating: the backing array is recycled as next
		// round's outbox, and for pointer-bearing M the stale elements would
		// otherwise keep last round's payloads reachable
		for i := range in {
			in[i] = zero
		}
		mb.inbox[w] = in[:0]
		mb.inbox[w], mb.outbox[w] = mb.outbox[w], mb.inbox[w]
	}
	mb.net.AccountRound()
	return delivered
}

// Receive returns the messages visible to worker w this round. The slice is
// valid until the next Exchange.
func (mb *Mailboxes[M]) Receive(w int) []M { return mb.inbox[w] }
