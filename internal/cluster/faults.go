package cluster

import (
	"math/rand"
	"sync"
)

// FaultPlan declares the faults the runtime injects into a run. It is the
// uniform fault model every engine built on the cluster runtime executes
// (the fault-tolerance axis of the distributed-GNN design space: worker
// crashes recovered by checkpoint/rollback, stragglers, lossy links with
// metered retransmission).
//
// All fields are optional; the zero plan injects nothing.
type FaultPlan struct {
	// CrashAtRound > 0 injects one worker failure when the engine's round
	// counter (Pregel superstep, gnndist sync round / event-loop step)
	// reaches that value. The engine recovers by rolling back to its latest
	// checkpoint — or restarting — and replaying; the re-executed work is
	// metered in RecoveryStats.
	CrashAtRound int
	// CrashWorker names the worker that dies (reporting only; recovery in
	// the BSP model is global regardless of which worker failed).
	CrashWorker int

	// StragglerFactor > 1 slows worker StragglerWorker down by that factor:
	// wall-clock engines credit factor× busy time, simulated-clock engines
	// (gnndist) multiply the worker's per-step cost.
	StragglerWorker int
	StragglerFactor float64

	// DropProb in (0,1) drops each cross-worker message transmission with
	// that probability. Dropped transmissions are retried until delivered
	// (up to MaxRetries extra attempts); every failed attempt is accounted
	// as real link traffic and metered in RecoveryStats, and each retry adds
	// RetryBackoff time units to RecoveryStats.RetryTime.
	DropProb     float64
	DropSeed     int64
	MaxRetries   int     // cap on retransmissions per message (default 10)
	RetryBackoff float64 // time units charged per retransmission (default 0)
}

// active reports whether the plan injects anything at all.
func (p FaultPlan) active() bool {
	return p.CrashAtRound > 0 || p.StragglerFactor > 1 || p.DropProb > 0
}

// RecoveryStats meters the cost of injected faults and of recovering from
// them. It is exported into obs.Trace as the "recovery" section, the raw
// material of the recovery-cost-vs-checkpoint-interval tables.
type RecoveryStats struct {
	Crashes         int     `json:"crashes"`
	RecoveredRounds int     `json:"recovered_rounds"` // rounds re-executed after rollback
	RecoveryTime    float64 `json:"recovery_time"`    // engine time units re-executed
	Checkpoints     int     `json:"checkpoints"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
	DroppedMessages int64   `json:"dropped_messages"` // failed transmissions
	RetryBytes      int64   `json:"retry_bytes"`      // wasted bytes re-sent
	RetryTime       float64 `json:"retry_time"`       // Σ RetryBackoff per retry
}

// FaultInjector executes a FaultPlan: the network consults it on every
// transfer for message drops, Cluster.Run consults it for straggler
// slowdown, and engines consult CrashDue at their round boundaries. It also
// accumulates RecoveryStats, fed both by the runtime (drops, retries) and by
// the engines (checkpoints, rollback work).
//
// All methods are safe on a nil receiver (no faults planned) and safe for
// concurrent use.
type FaultInjector struct {
	plan FaultPlan

	mu      sync.Mutex
	rng     *rand.Rand
	crashed bool
	stats   RecoveryStats
}

// NewFaultInjector creates an injector for plan, applying defaults
// (MaxRetries 10).
func NewFaultInjector(plan FaultPlan) *FaultInjector {
	if plan.MaxRetries <= 0 {
		plan.MaxRetries = 10
	}
	return &FaultInjector{
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.DropSeed + 0x5deece66d)),
	}
}

// Plan returns the plan being executed (zero value on a nil injector).
func (fi *FaultInjector) Plan() FaultPlan {
	if fi == nil {
		return FaultPlan{}
	}
	return fi.plan
}

// CrashDue reports whether the planned worker crash fires at this round. It
// returns true exactly once, the first time round reaches CrashAtRound; the
// engine must respond by rolling back to its latest checkpoint (or
// restarting) and replaying.
func (fi *FaultInjector) CrashDue(round int) bool {
	if fi == nil || fi.plan.CrashAtRound <= 0 {
		return false
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.crashed || round < fi.plan.CrashAtRound {
		return false
	}
	fi.crashed = true
	fi.stats.Crashes++
	return true
}

// SlowFactor returns the slowdown multiplier for worker w (1 when w is not
// the planned straggler).
func (fi *FaultInjector) SlowFactor(w int) float64 {
	if fi == nil || fi.plan.StragglerFactor <= 1 || w != fi.plan.StragglerWorker {
		return 1
	}
	return fi.plan.StragglerFactor
}

// drawDrops returns how many transmissions of one message fail before it
// gets through (0 = delivered first try), and meters the retries. Called
// with the wire size of the message.
func (fi *FaultInjector) drawDrops(size int64) int {
	drops, _ := fi.drawDropsUniform(1, size)
	return int(drops)
}

// drawOne draws the drop count for a single message of the given size and
// meters the retries. Caller holds fi.mu.
func (fi *FaultInjector) drawOne(size int64) int64 {
	drops := int64(0)
	for drops < int64(fi.plan.MaxRetries) && fi.rng.Float64() < fi.plan.DropProb {
		drops++
	}
	if drops > 0 {
		fi.stats.DroppedMessages += drops
		fi.stats.RetryBytes += size * drops
		fi.stats.RetryTime += fi.plan.RetryBackoff * float64(drops)
	}
	return drops
}

// drawDropsUniform draws drops for msgs messages of uniform size under one
// lock acquisition (the batched-accounting path). It returns the total failed
// transmissions and the wasted bytes they carried.
func (fi *FaultInjector) drawDropsUniform(msgs, size int64) (drops, retryBytes int64) {
	if fi == nil || fi.plan.DropProb <= 0 {
		return 0, 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for k := int64(0); k < msgs; k++ {
		drops += fi.drawOne(size)
	}
	return drops, drops * size
}

// drawDropsBatch draws drops for one message per entry of sizes under one
// lock acquisition (the staged-flush path, where message sizes may differ).
// It returns the total failed transmissions and the wasted bytes they
// carried.
func (fi *FaultInjector) drawDropsBatch(sizes []int64) (drops, retryBytes int64) {
	if fi == nil || fi.plan.DropProb <= 0 {
		return 0, 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for _, size := range sizes {
		d := fi.drawOne(size)
		drops += d
		retryBytes += d * size
	}
	return drops, retryBytes
}

// NoteCheckpoint meters one checkpoint snapshot of the given volume; engines
// call it every time they persist recovery state.
func (fi *FaultInjector) NoteCheckpoint(bytes int64) {
	if fi == nil {
		return
	}
	fi.mu.Lock()
	fi.stats.Checkpoints++
	fi.stats.CheckpointBytes += bytes
	fi.mu.Unlock()
}

// NoteRecovery meters rollback work: rounds that must be re-executed and the
// engine time they had consumed.
func (fi *FaultInjector) NoteRecovery(rounds int, timeUnits float64) {
	if fi == nil {
		return
	}
	fi.mu.Lock()
	fi.stats.RecoveredRounds += rounds
	fi.stats.RecoveryTime += timeUnits
	fi.mu.Unlock()
}

// Stats returns a snapshot of the accumulated recovery accounting.
func (fi *FaultInjector) Stats() RecoveryStats {
	if fi == nil {
		return RecoveryStats{}
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.stats
}
