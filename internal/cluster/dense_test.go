package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// denseWorkload drives a combining workload where the message value encodes a
// destination-local slot in its low bits: sender w sends `per` messages per
// round, cycling destinations and slots, so every (dest, slot) pair receives
// several combinable messages per round.
func denseWorkload(mb *Mailboxes[int64], workers, rounds, per, slots int) {
	for r := 0; r < rounds; r++ {
		for w := 0; w < workers; w++ {
			ob := mb.Outbox(w)
			for i := 0; i < per; i++ {
				slot := (w*7 + i) % slots
				ob.Send((w+i)%workers, int64(slot)<<32|int64(r*per+i))
			}
		}
		mb.Exchange()
	}
}

// TestDenseCombinerMatchesMapCombiner: the dense slot path must produce
// bitwise-identical inboxes AND bitwise-identical network Stats to the
// map-keyed path on the same workload — they are the same combining
// semantics, differing only in how the staging buffer is addressed.
func TestDenseCombinerMatchesMapCombiner(t *testing.T) {
	const slots = 32
	combine := func(a, b int64) int64 {
		// keep the slot bits, sum the payload bits: slot(combined)==slot(a)
		return a&^0xffffffff | (a&0xffffffff + b&0xffffffff)
	}
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func(dense bool) ([][]int64, Stats) {
				net := NewNetwork(workers)
				dyadicTopology(net)
				mb := NewMailboxes[int64](net, workloadSize)
				if dense {
					mb.SetDenseCombiner(
						func(dest int) int { return slots },
						func(m int64) int { return int(m >> 32) },
						combine,
					)
				} else {
					mb.SetCombiner(func(m int64) int64 { return m >> 32 }, combine)
				}
				denseWorkload(mb, workers, 4, 300, slots)
				in := make([][]int64, workers)
				for w := 0; w < workers; w++ {
					in[w] = append([]int64(nil), mb.Receive(w)...)
				}
				return in, net.Stats()
			}
			di, ds := run(true)
			mi, ms := run(false)
			if ds != ms {
				t.Fatalf("stats diverge:\ndense: %+v\nmap:   %+v", ds, ms)
			}
			if !reflect.DeepEqual(di, mi) {
				t.Fatalf("inbox contents diverge between dense and map combiners")
			}
			if ds.Messages+ds.LocalMessages == 0 {
				t.Fatalf("degenerate workload: %+v", ds)
			}
		})
	}
}

// TestDenseCombinerSlotReset: slot tables must reset between rounds — a
// second round re-combines from scratch instead of merging into round-one
// stage indices.
func TestDenseCombinerSlotReset(t *testing.T) {
	net := NewNetwork(2)
	mb := NewMailboxes[kv](net, nil)
	mb.SetDenseCombiner(
		func(dest int) int { return 10 },
		func(m kv) int { return int(m.k) },
		func(a, b kv) kv { return kv{a.k, a.v + b.v} },
	)
	ob := mb.Outbox(0)
	for i := 0; i < 100; i++ {
		ob.Send(1, kv{int64(i % 10), 1})
	}
	if got := mb.Exchange(); got != 10 {
		t.Fatalf("round 1 delivered %d combined messages, want 10", got)
	}
	for i, m := range mb.Receive(1) {
		if m.k != int64(i) || m.v != 10 {
			t.Fatalf("combined message %d = %+v, want key %d sum 10", i, m, i)
		}
	}
	// round 2: fresh combining state
	ob.Send(1, kv{3, 7})
	ob.Send(1, kv{3, 5})
	if got := mb.Exchange(); got != 1 {
		t.Fatalf("round 2 delivered %d, want 1", got)
	}
	if in := mb.Receive(1); len(in) != 1 || in[0].v != 12 {
		t.Fatalf("round 2 inbox %+v, want one message with sum 12", in)
	}
	// round 3: empty round keeps tables consistent
	if got := mb.Exchange(); got != 0 {
		t.Fatalf("round 3 delivered %d, want 0", got)
	}
	ob.Send(1, kv{3, 1})
	if got := mb.Exchange(); got != 1 {
		t.Fatalf("round 4 delivered %d, want 1", got)
	}
}

// TestDenseCombinerMisusePanics: the dense path inherits SetCombiner's
// wiring-time contract — staged substrate only, all parts non-nil, and at
// most one combiner per mailboxes.
func TestDenseCombinerMisusePanics(t *testing.T) {
	slots := func(dest int) int { return 1 }
	slot := func(m kv) int { return 0 }
	comb := func(a, b kv) kv { return a }
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("legacy", func() {
		NewMailboxesLegacy[kv](NewNetwork(2), nil).SetDenseCombiner(slots, slot, comb)
	})
	expectPanic("nil slot", func() {
		NewMailboxes[kv](NewNetwork(2), nil).SetDenseCombiner(slots, nil, comb)
	})
	expectPanic("double install", func() {
		mb := NewMailboxes[kv](NewNetwork(2), nil)
		mb.SetDenseCombiner(slots, slot, comb)
		mb.SetCombiner(func(m kv) int64 { return m.k }, comb)
	})
	expectPanic("double dense install", func() {
		mb := NewMailboxes[kv](NewNetwork(2), nil)
		mb.SetCombiner(func(m kv) int64 { return m.k }, comb)
		mb.SetDenseCombiner(slots, slot, comb)
	})
}

// benchCombine drives a single-sender combining workload: `slots` distinct
// destination-local targets, 8 sends per target per round — the shape of a
// PageRank superstep where several local vertices share out-neighbors on one
// destination worker.
func benchCombine(b *testing.B, dense bool) {
	const slots = 1 << 12
	net := NewNetwork(2)
	mb := NewMailboxes[int64](net, nil)
	combine := func(a, b int64) int64 { return a&^0xffffffff | (a&0xffffffff + b&0xffffffff) }
	if dense {
		mb.SetDenseCombiner(
			func(dest int) int { return slots },
			func(m int64) int { return int(m >> 32) },
			combine,
		)
	} else {
		mb.SetCombiner(func(m int64) int64 { return m >> 32 }, combine)
	}
	ob := mb.Outbox(0)
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		n := min(b.N-sent, slots*8)
		for i := 0; i < n; i++ {
			ob.Send(1, int64(i%slots)<<32|1)
		}
		mb.Exchange()
		sent += n
	}
}

func BenchmarkSendDenseCombiner(b *testing.B) { benchCombine(b, true) }
func BenchmarkSendMapCombiner(b *testing.B)   { benchCombine(b, false) }
