package cluster

import (
	"sync"
	"testing"
)

// benchComms drives an all-to-all message workload — every worker sends
// round-robin to all destinations, Exchange at a round boundary — through
// either mailbox implementation and reports ns per message. This is the
// PageRank-style communication pattern with the compute stripped away, so
// `go test -bench Send ./internal/cluster` shows the per-message overhead
// delta (two contended lock acquisitions per message on the legacy path vs a
// plain append on the staged path) without the full harness.
func benchComms(b *testing.B, workers, msgsPerRound int, legacy bool) {
	net := NewNetwork(workers)
	var mb *Mailboxes[int64]
	if legacy {
		mb = NewMailboxesLegacy[int64](net, nil)
	} else {
		mb = NewMailboxes[int64](net, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		n := msgsPerRound
		if b.N-sent < n {
			n = b.N - sent
		}
		per := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					mb.Send(w, (w+i)%workers, int64(i))
				}
			}(w)
		}
		wg.Wait()
		mb.Exchange()
		sent += per * workers
	}
}

func BenchmarkSendStaged(b *testing.B)  { benchComms(b, 8, 1<<16, false) }
func BenchmarkSendLegacy(b *testing.B)  { benchComms(b, 8, 1<<16, true) }
func BenchmarkSendStaged1(b *testing.B) { benchComms(b, 1, 1<<16, false) }
func BenchmarkSendLegacy1(b *testing.B) { benchComms(b, 1, 1<<16, true) }
