package cluster

import (
	"sync"
	"sync/atomic"
)

// Mailboxes is a double-buffered, superstep-oriented message store: messages
// sent during round r become visible after Exchange(), matching the BSP
// semantics of Pregel-style systems.
//
// The default implementation is the per-sender STAGED substrate: each sender
// owns a private Outbox with one staging buffer per destination, so Send is a
// plain append — no locks, no atomics, no network metering on the hot path.
// All metering is deferred to Exchange, which flushes each sender's
// per-destination totals to the Network under one lock acquisition per
// sender per round (instead of two lock acquisitions per message), draws any
// FaultPlan drops at flush time with the same per-message semantics, and
// merges staged buffers into the inboxes in sender-rank order — so inbox
// contents are a deterministic function of each sender's send sequence,
// independent of goroutine scheduling. Staging buffers, inbox arrays and
// combiner index maps are all reused across rounds.
//
// Concurrency contract (staged mode): each sender rank must be driven by at
// most one goroutine at a time — the natural shape of a BSP engine, where
// worker w is one goroutine and always sends as `from == w`. Distinct senders
// are fully independent and race-free. Exchange must be called from exactly
// one goroutine at a barrier, as before.
//
// NewMailboxesLegacy keeps the seed's per-message path (per-destination
// mutex on Send, per-message Network.Account) for benchmarking and for
// callers that share one sender rank between goroutines. Both modes produce
// identical Stats on the same workload.
type Mailboxes[M any] struct {
	net    *Network
	size   func(M) int64
	inbox  [][]M // visible to receivers this round
	legacy bool

	// staged mode
	outs    []*Outbox[M]
	key     func(M) int64  // non-nil ⇒ map-keyed sender-side combining enabled
	slot    func(M) int    // non-nil ⇒ dense slot-indexed combining enabled
	combine func(a, b M) M // merges two messages with equal key/slot and destination
	// flush scratch, reused every round (one entry per destination)
	fmsgs     []int64
	fattempts []int64
	fbytes    []int64
	fsizes    []int64 // per-message sizes for fault-plan drop draws

	// legacy mode
	mu      []sync.Mutex
	outbox  [][]M // being filled for next round
	pending atomic.Int64
}

// Outbox is one sender's private staging area: stage[d] holds the messages
// queued for destination worker d this round. It is owned by the sender's
// goroutine — Send never synchronises — and is drained by Exchange.
type Outbox[M any] struct {
	mb    *Mailboxes[M]
	stage [][]M
	// per destination: combiner key → index into stage[d]; nil when the
	// mailboxes have no combiner. Maps are cleared (not reallocated) at flush.
	keyIdx []map[int64]int
	// per destination: dense slot table for SetDenseCombiner — slotTab[d][s]
	// is the index into stage[d] of the message occupying slot s, or -1.
	// Touched entries are reset (not reallocated) at flush.
	slotTab [][]int32
}

// NewMailboxes creates staged mailboxes for n workers on net. size reports
// the wire size of a message for metering; pass nil to meter a flat 8
// bytes/message.
func NewMailboxes[M any](net *Network, size func(M) int64) *Mailboxes[M] {
	n := net.n
	if size == nil {
		size = func(M) int64 { return 8 }
	}
	mb := &Mailboxes[M]{
		net:       net,
		size:      size,
		inbox:     make([][]M, n),
		outs:      make([]*Outbox[M], n),
		fmsgs:     make([]int64, n),
		fattempts: make([]int64, n),
		fbytes:    make([]int64, n),
	}
	for w := range mb.outs {
		mb.outs[w] = &Outbox[M]{mb: mb, stage: make([][]M, n)}
	}
	return mb
}

// NewMailboxesLegacy creates mailboxes on the seed's per-message path: Send
// takes a per-destination mutex and meters each message on the network
// individually. It exists as the contention baseline for the staged
// substrate (cmd/benchcomms, BenchmarkSendLegacy) and for callers that need
// multiple goroutines sharing one sender rank.
func NewMailboxesLegacy[M any](net *Network, size func(M) int64) *Mailboxes[M] {
	n := net.n
	if size == nil {
		size = func(M) int64 { return 8 }
	}
	return &Mailboxes[M]{
		net:    net,
		size:   size,
		legacy: true,
		inbox:  make([][]M, n),
		mu:     make([]sync.Mutex, n),
		outbox: make([][]M, n),
	}
}

// SetCombiner enables sender-side combining (Pregel's combiner, hoisted into
// the runtime so every engine on the substrate gets it): two messages queued
// by the same sender for the same destination worker with equal key(msg) are
// merged by combine before they ever reach the wire, in send order —
// combine(queued, incoming). Engines encode their combining granularity in
// the key (pregel: destination vertex; quegel: destination vertex + query id).
//
// Call it before the first Send; combining requires the staged substrate and
// panics on legacy mailboxes.
func (mb *Mailboxes[M]) SetCombiner(key func(M) int64, combine func(a, b M) M) {
	if mb.legacy {
		//lint:allow panicpolicy documented API misuse (see doc comment); only reachable by wiring a combiner onto the legacy benchmark baseline
		panic("cluster: combiners require staged mailboxes (NewMailboxes)")
	}
	if key == nil || combine == nil {
		//lint:allow panicpolicy nil combiner halves are a programmer error at wiring time, before any run starts
		panic("cluster: SetCombiner needs both a key and a combine function")
	}
	if mb.combine != nil {
		//lint:allow panicpolicy double combiner installation is a wiring-time programmer error
		panic("cluster: mailboxes already have a combiner")
	}
	mb.key = key
	mb.combine = combine
	n := len(mb.inbox)
	for _, ob := range mb.outs {
		ob.keyIdx = make([]map[int64]int, n)
		for d := range ob.keyIdx {
			ob.keyIdx[d] = make(map[int64]int)
		}
	}
}

// SetDenseCombiner enables sender-side combining addressed by a dense slot
// index instead of a hashed key: slot(msg) must return a stable integer in
// [0, slots(dest)) identifying the combining class of msg at its destination
// worker — typically the destination-local vertex id, with slots(dest) the
// number of vertices dest owns. Combining semantics are identical to
// SetCombiner (first-occurrence order preserved, combine(queued, incoming)
// in send order), but the per-send map hash + lookup is replaced by one
// []int32 load, which is what makes the engine hot path allocation- and
// hash-free (DESIGN.md §3.12). slot must agree for messages that combine:
// slot(combine(a,b)) == slot(a) == slot(b).
//
// The slot tables cost 4·slots(dest) bytes per (sender, destination) pair —
// the dense-id trade: engines with compact per-destination id spaces
// (pregel's owned-vertex lists) use this path; engines whose combining key
// space is sparse or unbounded (quegel's (vertex, query id) pairs) stay on
// SetCombiner. Call before the first Send; staged substrate only.
func (mb *Mailboxes[M]) SetDenseCombiner(slots func(dest int) int, slot func(M) int, combine func(a, b M) M) {
	if mb.legacy {
		//lint:allow panicpolicy documented API misuse; only reachable by wiring a combiner onto the legacy benchmark baseline
		panic("cluster: combiners require staged mailboxes (NewMailboxes)")
	}
	if slots == nil || slot == nil || combine == nil {
		//lint:allow panicpolicy nil combiner parts are a programmer error at wiring time, before any run starts
		panic("cluster: SetDenseCombiner needs slots, slot and combine functions")
	}
	if mb.combine != nil {
		//lint:allow panicpolicy double combiner installation is a wiring-time programmer error
		panic("cluster: mailboxes already have a combiner")
	}
	mb.slot = slot
	mb.combine = combine
	n := len(mb.inbox)
	for _, ob := range mb.outs {
		ob.slotTab = make([][]int32, n)
		for d := range ob.slotTab {
			tab := make([]int32, slots(d))
			for i := range tab {
				tab[i] = -1
			}
			ob.slotTab[d] = tab
		}
	}
}

// Outbox returns sender w's private staging handle. Engines hold it for the
// whole run; it is reused across rounds.
func (mb *Mailboxes[M]) Outbox(w int) *Outbox[M] {
	if mb.legacy {
		//lint:allow panicpolicy documented API misuse; legacy mailboxes exist only as the benchmark baseline/equivalence oracle
		panic("cluster: legacy mailboxes have no outboxes; use Send")
	}
	return mb.outs[w]
}

// Send queues msg for destination worker `to`, delivered at the next
// Exchange. It is a lock-free append into the sender's staging buffer (plus
// the combiner merge when one is installed).
func (ob *Outbox[M]) Send(to int, msg M) {
	mb := ob.mb
	if mb.slot != nil {
		// dense path: one array load replaces the hash + map lookup
		tab := ob.slotTab[to]
		s := mb.slot(msg)
		if i := tab[s]; i >= 0 {
			ob.stage[to][i] = mb.combine(ob.stage[to][i], msg)
			return
		}
		tab[s] = int32(len(ob.stage[to]))
	} else if mb.combine != nil {
		k := mb.key(msg)
		if i, ok := ob.keyIdx[to][k]; ok {
			ob.stage[to][i] = mb.combine(ob.stage[to][i], msg)
			return
		}
		ob.keyIdx[to][k] = len(ob.stage[to])
	}
	//lint:allow hotalloc warm-up growth only: staging buffers reach their per-destination high-water mark, then Reset keeps the capacity across rounds
	ob.stage[to] = append(ob.stage[to], msg)
}

// Send queues msg from worker `from` to worker `to` for the next round. On
// staged mailboxes it is Outbox(from).Send(to, msg) and inherits its
// concurrency contract (one goroutine per sender rank); on legacy mailboxes
// it meters and locks per message and tolerates arbitrary sharing.
func (mb *Mailboxes[M]) Send(from, to int, msg M) {
	if !mb.legacy {
		mb.outs[from].Send(to, msg)
		return
	}
	mb.net.Account(from, to, mb.size(msg))
	mb.mu[to].Lock()
	mb.outbox[to] = append(mb.outbox[to], msg)
	mb.mu[to].Unlock()
	mb.pending.Add(1)
}

// Exchange makes all queued messages visible and clears the previous round's
// inboxes. Call it from exactly one goroutine at a barrier.
//
// It returns the number of LOGICAL deliveries — messages handed to inboxes
// this round, local and cross-worker alike. FaultPlan retransmissions never
// appear in the return value; they are visible as Stats.Attempts − Messages.
//
// On the staged substrate Exchange also performs the round's deferred
// metering: per sender it sums per-destination message and byte totals, draws
// fault-plan drops per message (identical accounting to the per-message
// path), flushes the totals to the Network under one lock acquisition, and
// merges the staging buffers into the inboxes in sender-rank order.
func (mb *Mailboxes[M]) Exchange() int64 {
	if mb.legacy {
		return mb.exchangeLegacy()
	}
	var zero M
	// recycle inboxes: zero before truncating so pointer-bearing M from last
	// round does not stay reachable through the retained backing arrays
	for w := range mb.inbox {
		in := mb.inbox[w]
		for i := range in {
			in[i] = zero
		}
		mb.inbox[w] = in[:0]
	}
	fi := mb.net.faults.Load()
	drops := fi != nil && fi.plan.DropProb > 0
	var delivered int64
	for s, ob := range mb.outs {
		var localMsgs int64
		for d := range ob.stage {
			st := ob.stage[d]
			if len(st) == 0 {
				continue
			}
			m := int64(len(st))
			delivered += m
			if d == s {
				localMsgs += m
			} else {
				var bytes int64
				if drops {
					mb.fsizes = mb.fsizes[:0]
					for _, msg := range st {
						sz := mb.size(msg)
						bytes += sz
						mb.fsizes = append(mb.fsizes, sz)
					}
					nd, retryBytes := fi.drawDropsBatch(mb.fsizes)
					mb.fattempts[d] = m + nd
					mb.fbytes[d] = bytes + retryBytes
				} else {
					for _, msg := range st {
						bytes += mb.size(msg)
					}
					mb.fattempts[d] = m
					mb.fbytes[d] = bytes
				}
				mb.fmsgs[d] = m
			}
			// deterministic merge: senders are visited in rank order, and
			// within a sender messages keep their send order
			mb.inbox[d] = append(mb.inbox[d], st...)
			if ob.slotTab != nil {
				// reset only the touched slots: each staged message names its
				// own slot, so the reset is O(messages), never O(slots)
				tab := ob.slotTab[d]
				for i := range st {
					tab[mb.slot(st[i])] = -1
					st[i] = zero
				}
			} else {
				for i := range st {
					st[i] = zero
				}
				if ob.keyIdx != nil {
					clear(ob.keyIdx[d])
				}
			}
			ob.stage[d] = st[:0]
		}
		mb.net.flushSender(s, mb.fmsgs, mb.fattempts, mb.fbytes, localMsgs)
		for d := range mb.fmsgs {
			mb.fmsgs[d], mb.fattempts[d], mb.fbytes[d] = 0, 0, 0
		}
	}
	mb.net.AccountRound()
	return delivered
}

func (mb *Mailboxes[M]) exchangeLegacy() int64 {
	delivered := mb.pending.Swap(0)
	var zero M
	for w := range mb.inbox {
		in := mb.inbox[w]
		// zero before truncating: the backing array is recycled as next
		// round's outbox, and for pointer-bearing M the stale elements would
		// otherwise keep last round's payloads reachable
		for i := range in {
			in[i] = zero
		}
		mb.inbox[w] = in[:0]
		mb.inbox[w], mb.outbox[w] = mb.outbox[w], mb.inbox[w]
	}
	mb.net.AccountRound()
	return delivered
}

// Receive returns the messages visible to worker w this round. The slice is
// valid until the next Exchange. On the staged substrate its order is
// deterministic: ascending sender rank, send order within a sender.
func (mb *Mailboxes[M]) Receive(w int) []M { return mb.inbox[w] }
