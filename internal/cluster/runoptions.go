package cluster

import "graphsys/internal/tensor"

// RunOptions is the cross-cutting runtime configuration shared by every
// engine built on the cluster runtime (pregel, blogel, quegel, gnndist).
// Engine configs embed it, so observability, topology and fault injection
// are wired once here instead of per engine:
//
//	cfg := pregel.Config{
//	    Workers:    8,
//	    RunOptions: cluster.RunOptions{
//	        Trace:    true,
//	        Topology: func(net *cluster.Network) { cluster.RingTopology(net, 4, 0.05) },
//	        Faults:   &cluster.FaultPlan{CrashAtRound: 3},
//	    },
//	}
type RunOptions struct {
	// Trace enables the observability layer: per-link and per-round network
	// tracing plus per-worker busy metering. The collected obs.Trace is
	// attached to the engine's result.
	Trace bool
	// Topology, if non-nil, configures the cluster's network link costs
	// before the run starts — e.g. cluster.RingTopology for an NVLink-style
	// hosts-of-fast-links layout.
	Topology func(net *Network)
	// Faults, if non-nil, is the fault plan the runtime injects (worker
	// crash, straggler slowdown, lossy links with metered retries).
	Faults *FaultPlan
	// Parallelism, if > 0, sets the number of goroutines the tensor compute
	// kernels may use (0 keeps the current setting, which defaults to
	// GOMAXPROCS). The setting is process-global — kernels are
	// bitwise-deterministic at any level, so it affects speed, never results.
	Parallelism int
}

// Apply configures a freshly created cluster according to the options:
// topology first, then tracing, then fault injection. It returns the
// installed fault injector, or nil when no faults are planned; the nil
// injector is safe to use (all its methods are nil-receiver no-ops).
func (o RunOptions) Apply(c *Cluster) *FaultInjector {
	if o.Parallelism > 0 {
		tensor.SetParallelism(o.Parallelism)
	}
	if o.Topology != nil {
		o.Topology(c.Network())
	}
	if o.Trace {
		c.Network().EnableTrace()
	}
	if o.Faults != nil && o.Faults.active() {
		return c.InstallFaults(*o.Faults)
	}
	return nil
}
