package cluster

import (
	"strings"
	"sync"
	"testing"
)

// TestSetLinkCostConcurrentWithAccount exercises the topology-reconfiguration
// path: SetLinkCost must synchronise with concurrent Account/Send readers of
// the link-cost matrix. Against the unguarded seed implementation this test
// fails under -race.
func TestSetLinkCostConcurrentWithAccount(t *testing.T) {
	net := NewNetwork(4)
	mb := NewMailboxes[int](net, nil)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			net.SetLinkCost(0, 1, float64(i%7)+0.5)
			net.SetLinkCost(2, 3, 0.05)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			net.Account(0, 1, 8)
			_ = net.LinkCost(2, 3)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			mb.Send(2, 3, i)
		}
	}()
	wg.Wait()
	mb.Exchange() // staged sends meter at flush
	if got := net.Stats().Messages; got != 1000 {
		t.Fatalf("messages = %d, want 1000", got)
	}
}

func TestLinkBoundsChecked(t *testing.T) {
	net := NewNetwork(2)
	for _, fn := range []func(){
		func() { net.SetLinkCost(0, 2, 1) },
		func() { net.SetLinkCost(-1, 0, 1) },
		func() { net.Account(0, 5, 8) },
		func() { net.LinkCost(3, 0) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected out-of-range panic")
				}
				if !strings.Contains(r.(string), "out of range") {
					t.Fatalf("unclear panic message: %v", r)
				}
			}()
			fn()
		}()
	}
}

// TestRunAggregatesAllPanics: a multi-worker failure must report every failed
// worker, not just the first.
func TestRunAggregatesAllPanics(t *testing.T) {
	c := New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		msg := r.(string)
		if !strings.Contains(msg, "worker 1: boom") || !strings.Contains(msg, "worker 3: bang") {
			t.Fatalf("panic does not name all failed workers: %s", msg)
		}
	}()
	c.Run(func(w int) {
		switch w {
		case 1:
			panic("boom")
		case 3:
			panic("bang")
		}
	})
}

// TestBarrierActionPanicReleasesWaiters: a panicking round action must not
// leave the other parties blocked forever; every party surfaces the panic.
func TestBarrierActionPanicReleasesWaiters(t *testing.T) {
	const n = 4
	b := NewBarrier(n, func() { panic("aggregator failed") })
	c := New(n)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic propagation from barrier action")
		}
		if !strings.Contains(r.(string), "aggregator failed") {
			t.Fatalf("panic lost the action's message: %v", r)
		}
	}()
	c.Run(func(w int) {
		b.Wait() // must release (and panic) on every worker, not deadlock
	})
}

func TestBrokenBarrierRejectsLaterWaiters(t *testing.T) {
	b := NewBarrier(1, func() { panic("once") })
	func() {
		defer func() { recover() }()
		b.Wait()
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("expected broken barrier to panic on reuse")
		}
	}()
	b.Wait()
}

// TestExchangeReleasesMessageMemory: recycled inbox backing arrays must not
// keep pointers to last round's message payloads alive.
func TestExchangeReleasesMessageMemory(t *testing.T) {
	net := NewNetwork(2)
	mb := NewMailboxes[*int](net, nil)
	mb.Send(0, 1, new(int))
	mb.Exchange()
	in := mb.Receive(1)
	if len(in) != 1 || in[0] == nil {
		t.Fatalf("message not delivered: %v", in)
	}
	mb.Exchange() // in's backing array becomes next round's outbox
	if in[:1][0] != nil {
		t.Fatal("stale pointer retained in recycled mailbox backing array")
	}
}

func TestNetworkTraceMatrixAndHistory(t *testing.T) {
	net := NewNetwork(3)
	net.EnableTrace()
	if !net.Tracing() {
		t.Fatal("tracing not enabled")
	}
	net.SetLinkCost(0, 1, 0.5)
	net.Account(0, 1, 100)
	net.Account(0, 1, 50)
	net.Account(1, 2, 10)
	net.Account(2, 2, 999) // local
	net.AccountRound()
	net.Account(2, 0, 7)
	net.AccountRound()

	bytes, msgs := net.TrafficMatrix()
	if bytes[0][1] != 150 || msgs[0][1] != 2 {
		t.Fatalf("link 0->1: bytes=%d msgs=%d", bytes[0][1], msgs[0][1])
	}
	if bytes[1][2] != 10 || bytes[2][0] != 7 {
		t.Fatalf("matrix wrong: %v", bytes)
	}
	if bytes[2][2] != 0 {
		t.Fatal("local traffic must not appear on a link")
	}
	hist := net.RoundHistory()
	if len(hist) != 2 {
		t.Fatalf("history has %d rounds, want 2", len(hist))
	}
	r0 := hist[0]
	if r0.Round != 0 || r0.Messages != 3 || r0.Bytes != 160 || r0.LocalMessages != 1 {
		t.Fatalf("round 0 stats = %+v", r0)
	}
	if want := 100*0.5 + 50*0.5 + 10; r0.WeightedCost != want {
		t.Fatalf("round 0 cost = %f, want %f", r0.WeightedCost, want)
	}
	if hist[1].Bytes != 7 || hist[1].Round != 1 {
		t.Fatalf("round 1 stats = %+v", hist[1])
	}

	net.Reset()
	bytes, _ = net.TrafficMatrix()
	if bytes[0][1] != 0 || len(net.RoundHistory()) != 0 {
		t.Fatal("Reset did not clear the trace")
	}
	if !net.Tracing() {
		t.Fatal("Reset must keep tracing enabled")
	}
}

func TestUntracedNetworkHasNoMatrix(t *testing.T) {
	net := NewNetwork(2)
	net.Account(0, 1, 8)
	net.AccountRound()
	if b, m := net.TrafficMatrix(); b != nil || m != nil {
		t.Fatal("matrix allocated without EnableTrace")
	}
	if len(net.RoundHistory()) != 0 {
		t.Fatal("history recorded without EnableTrace")
	}
}

func TestWorkerBusyMeters(t *testing.T) {
	c := New(3)
	c.AddBusy(1, 2.5)
	c.AddBusy(1, 0.5)
	c.Run(func(w int) {}) // wall-time credit is ≥ 0
	busy := c.WorkerBusy()
	if len(busy) != 3 {
		t.Fatalf("busy has %d entries", len(busy))
	}
	if busy[1] < 3.0 {
		t.Fatalf("busy[1] = %f, want ≥ 3.0", busy[1])
	}
	busy[0] = 99 // must be a copy
	if c.WorkerBusy()[0] == 99 {
		t.Fatal("WorkerBusy returned internal slice")
	}
}
