package cluster

import (
	"sync/atomic"
	"testing"
)

func TestRunAllWorkers(t *testing.T) {
	c := New(8)
	var count atomic.Int64
	seen := make([]bool, 8)
	c.Run(func(w int) {
		seen[w] = true
		count.Add(1)
	})
	if count.Load() != 8 {
		t.Fatalf("ran %d workers", count.Load())
	}
	for w, s := range seen {
		if !s {
			t.Fatalf("worker %d never ran", w)
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	c := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic propagation")
		}
	}()
	c.Run(func(w int) {
		if w == 2 {
			panic("boom")
		}
	})
}

func TestOwnerStableAndInRange(t *testing.T) {
	c := New(5)
	for id := int64(0); id < 1000; id++ {
		o := c.Owner(id)
		if o < 0 || o >= 5 {
			t.Fatalf("owner out of range: %d", o)
		}
		if o != c.Owner(id) {
			t.Fatal("owner not stable")
		}
	}
}

func TestBarrierRounds(t *testing.T) {
	const n = 6
	b := NewBarrier(n, nil)
	c := New(n)
	counters := make([]int, n)
	c.Run(func(w int) {
		for round := 0; round < 10; round++ {
			counters[w]++
			b.Wait()
			// after the barrier every worker must have completed this round
			for _, cnt := range counters {
				if cnt < round+1 {
					t.Errorf("barrier leak: counter %d at round %d", cnt, round)
					return
				}
			}
			b.Wait()
		}
	})
}

func TestBarrierActionRunsOncePerRound(t *testing.T) {
	const n = 4
	var actions atomic.Int64
	b := NewBarrier(n, func() { actions.Add(1) })
	c := New(n)
	c.Run(func(w int) {
		for i := 0; i < 5; i++ {
			b.Wait()
		}
	})
	if actions.Load() != 5 {
		t.Fatalf("action ran %d times, want 5", actions.Load())
	}
}

func TestNetworkAccounting(t *testing.T) {
	net := NewNetwork(3)
	net.Account(0, 1, 100)
	net.Account(1, 2, 50)
	net.Account(2, 2, 999) // local, free
	s := net.Stats()
	if s.Messages != 2 || s.Bytes != 150 || s.LocalMessages != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.WeightedCost != 150 {
		t.Fatalf("cost = %f", s.WeightedCost)
	}
	net.SetLinkCost(0, 1, 0.1)
	net.Account(0, 1, 100)
	if got := net.Stats().WeightedCost; got != 160 {
		t.Fatalf("weighted cost = %f want 160", got)
	}
	net.Reset()
	if s := net.Stats(); s.Bytes != 0 || s.Messages != 0 || s.WeightedCost != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestMailboxesBSPSemantics(t *testing.T) {
	net := NewNetwork(2)
	mb := NewMailboxes[int](net, nil)
	mb.Send(0, 1, 42)
	if got := mb.Receive(1); len(got) != 0 {
		t.Fatal("message visible before Exchange")
	}
	if d := mb.Exchange(); d != 1 {
		t.Fatalf("delivered %d", d)
	}
	got := mb.Receive(1)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
	// next exchange clears
	mb.Exchange()
	if len(mb.Receive(1)) != 0 {
		t.Fatal("old messages not cleared")
	}
	if net.Stats().Rounds != 2 {
		t.Fatalf("rounds = %d", net.Stats().Rounds)
	}
}

func TestMailboxesConcurrentSenders(t *testing.T) {
	net := NewNetwork(4)
	mb := NewMailboxes[int](net, func(int) int64 { return 4 })
	c := New(4)
	c.Run(func(w int) {
		for i := 0; i < 100; i++ {
			mb.Send(w, (w+1)%4, i)
		}
	})
	mb.Exchange()
	total := 0
	for w := 0; w < 4; w++ {
		total += len(mb.Receive(w))
	}
	if total != 400 {
		t.Fatalf("delivered %d, want 400", total)
	}
	if net.Stats().Bytes != 1600 {
		t.Fatalf("bytes = %d", net.Stats().Bytes)
	}
}

func TestLambdaPool(t *testing.T) {
	p := NewLambdaPool(4)
	var sum atomic.Int64
	p.Map(50, func(i int) int64 { return int64(i) }, func(i int) {
		sum.Add(int64(i))
	})
	if sum.Load() != 49*50/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if p.Invocations() != 50 {
		t.Fatalf("invocations = %d", p.Invocations())
	}
	if p.UnitsBilled() != 49*50/2 {
		t.Fatalf("billed = %d", p.UnitsBilled())
	}
}

func TestCostModelShape(t *testing.T) {
	m := DefaultCostModel()
	// Dorylus claim: for equal work, lambda + CPU servers is cheaper than GPUs.
	gpu := m.GPUCost(4, 600)
	lam := m.LambdaCost(1000, 600, 4, 600)
	if lam >= gpu {
		t.Fatalf("serverless (%f) should undercut GPU (%f) in the default model", lam, gpu)
	}
}

func TestCommPlanRelay(t *testing.T) {
	net := NewNetwork(4)
	RingTopology(net, 2, 0.05) // hosts {0,1} and {2,3}
	// direct 0→3 is cross-host cost 1; any relay is ≥1, so direct stays
	ts := []Transfer{{From: 0, To: 3, Size: 1000}}
	plan := PlanRelay(net, ts)
	if len(plan.hops[0]) != 2 {
		t.Fatalf("expected direct route, got %v", plan.hops[0])
	}
	// make the direct link pathologically slow: relay should kick in
	net.SetLinkCost(0, 3, 5)
	plan = PlanRelay(net, ts)
	if len(plan.hops[0]) != 3 {
		t.Fatalf("expected relay route, got %v", plan.hops[0])
	}
	direct := DirectPlan(ts).Execute(net, ts)
	net.Reset()
	relay := plan.Execute(net, ts)
	if relay >= direct {
		t.Fatalf("relay cost %f >= direct %f", relay, direct)
	}
}

func TestBalanceAssign(t *testing.T) {
	weights := []int64{10, 9, 8, 1, 1, 1}
	assign, loads := BalanceAssign(weights, 3)
	if len(assign) != 6 {
		t.Fatal("assign length")
	}
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum != 30 {
		t.Fatalf("load sum %d", sum)
	}
	if max > 11 { // LPT gives 10/10/10 or 11 at worst here
		t.Fatalf("max load %d too high", max)
	}
}
