package cluster

import "sync"

// CostModel prices compute the way Dorylus does: always-on "GPU" servers are
// billed per active second at a high rate; serverless lambda threads are
// billed per invocation-millisecond at a low rate plus a fixed startup
// latency per invocation. The paper's §3 "Other Techniques" claim — CPU
// servers + serverless is more cost-effective than GPUs — is an accounting
// property of this model, reproduced in BenchmarkTable2_Serverless.
type CostModel struct {
	GPURatePerSec    float64 // $/s of wall time per GPU server
	LambdaRatePerSec float64 // $/s of billed lambda compute
	LambdaStartupSec float64 // cold-start latency charged per invocation
	CPURatePerSec    float64 // $/s per always-on CPU graph server
}

// DefaultCostModel approximates 2021 cloud pricing ratios used by Dorylus:
// a V100 instance ≈ $3/h, lambda ≈ $0.0000167/GB-s (scaled), small CPU graph
// servers ≈ $0.10/h.
func DefaultCostModel() CostModel {
	return CostModel{
		GPURatePerSec:    3.06 / 3600,
		LambdaRatePerSec: 0.20 / 3600,
		LambdaStartupSec: 0.010,
		CPURatePerSec:    0.10 / 3600,
	}
}

// GPUCost returns the dollar cost of numServers GPU servers busy for seconds.
func (m CostModel) GPUCost(numServers int, seconds float64) float64 {
	return float64(numServers) * seconds * m.GPURatePerSec
}

// LambdaCost returns the dollar cost of invocations lambda calls totalling
// computeSeconds of billed compute, plus cpuServers CPU graph servers running
// for wallSeconds.
func (m CostModel) LambdaCost(invocations int64, computeSeconds float64, cpuServers int, wallSeconds float64) float64 {
	billed := computeSeconds + float64(invocations)*m.LambdaStartupSec
	return billed*m.LambdaRatePerSec + float64(cpuServers)*wallSeconds*m.CPURatePerSec
}

// LambdaPool executes small tasks on a bounded pool of short-lived executors,
// tracking invocation counts and billed compute for cost accounting.
type LambdaPool struct {
	concurrency int

	mu          sync.Mutex
	invocations int64
	unitsBilled int64 // abstract compute units executed
}

// NewLambdaPool creates a pool with the given invocation concurrency.
func NewLambdaPool(concurrency int) *LambdaPool {
	if concurrency <= 0 {
		concurrency = 1
	}
	return &LambdaPool{concurrency: concurrency}
}

// Map runs fn(i) for i in [0, n) with bounded concurrency, each call counted
// as one lambda invocation billing cost(i) compute units.
func (p *LambdaPool) Map(n int, cost func(i int) int64, fn func(i int)) {
	sem := make(chan struct{}, p.concurrency)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
			p.mu.Lock()
			p.invocations++
			if cost != nil {
				p.unitsBilled += cost(i)
			}
			p.mu.Unlock()
		}(i)
	}
	wg.Wait()
}

// Invocations returns the total number of lambda invocations so far.
func (p *LambdaPool) Invocations() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.invocations
}

// UnitsBilled returns the total billed compute units so far.
func (p *LambdaPool) UnitsBilled() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.unitsBilled
}
