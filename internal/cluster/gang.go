package cluster

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Gang is a persistent worker group: one long-lived goroutine per worker,
// started once and reused for every phase of a run. Cluster.Run spawns N
// goroutines per call — fine for a handful of calls, but a superstep engine
// runs two phases (compute, demux) per round, and at thousands of rounds the
// per-call goroutine creation, closure allocation and scheduler churn become
// the dominant steady-state allocation source on the engine hot path. A Gang
// replaces all of that with a generation-counted condition-variable handoff:
// Run stores the phase function, bumps the generation, and wakes the workers;
// dispatching a round allocates nothing.
//
// Semantics match Cluster.Run exactly: fn runs concurrently on every worker,
// Run blocks until all complete, each worker's wall time is credited to the
// cluster's busy meter (straggler-scaled under a FaultPlan), and worker
// panics are aggregated into one re-panic naming every failed worker.
//
// Callers that reuse one closure across rounds (storing loop state in
// variables the closure captures) get a fully allocation-free dispatch; the
// happens-before edges of the internal mutex make writes published by the
// caller between Run calls visible to the workers, and worker writes visible
// to the caller when Run returns.
//
// A Gang must be Closed when the run ends so its goroutines exit; Run must
// not be called concurrently with itself or after Close.
type Gang struct {
	c *Cluster

	mu   sync.Mutex
	cond *sync.Cond // wakes workers on a new generation (or stop)
	done *sync.Cond // wakes Run when the last worker finishes

	fn      func(worker int)
	gen     uint64
	running int
	stopped bool

	// written by worker w only, read by Run after the done handoff
	panics  []any
	elapsed []float64
}

// NewGang starts one persistent goroutine per worker. Close releases them.
func (c *Cluster) NewGang() *Gang {
	g := &Gang{
		c:       c,
		panics:  make([]any, c.n),
		elapsed: make([]float64, c.n),
	}
	g.cond = sync.NewCond(&g.mu)
	g.done = sync.NewCond(&g.mu)
	for w := 0; w < c.n; w++ {
		// the spawn-time generation is passed in, not re-read under the lock:
		// a worker that acquires the lock only after Run has already bumped
		// g.gen would otherwise adopt the new generation as its baseline and
		// sleep through the round it is supposed to execute.
		go g.worker(w, g.gen)
	}
	return g
}

func (g *Gang) worker(w int, gen uint64) {
	g.mu.Lock()
	for {
		for g.gen == gen && !g.stopped {
			g.cond.Wait()
		}
		if g.stopped {
			g.mu.Unlock()
			return
		}
		gen = g.gen
		fn := g.fn
		g.mu.Unlock()

		//lint:allow wallclock busy-time metering feeds the obs skew metrics only; results never read it
		start := time.Now()
		//lint:allow hotalloc the recover frame captures only stack-scoped locals; escape analysis keeps it off the heap (the 0 allocs/round gate would catch a regression)
		func() {
			//lint:allow hotalloc deferred recover frame, same stack-scoped capture as the literal it runs in
			defer func() {
				//lint:allow wallclock busy-time metering feeds the obs skew metrics only; results never read it
				g.elapsed[w] = time.Since(start).Seconds()
				if r := recover(); r != nil {
					g.panics[w] = r
				}
			}()
			fn(w)
		}()

		g.mu.Lock()
		g.running--
		if g.running == 0 {
			g.done.Broadcast()
		}
	}
}

// Run executes fn concurrently on every persistent worker and blocks until
// all complete. Busy-time crediting and panic aggregation are identical to
// Cluster.Run; the dispatch itself performs no allocation.
func (g *Gang) Run(fn func(worker int)) {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		//lint:allow panicpolicy running a closed gang is a programmer error at wiring time, same contract as Cluster.Run on a torn-down cluster
		panic("cluster: Gang.Run after Close")
	}
	g.fn = fn
	g.running = g.c.n
	g.gen++
	g.cond.Broadcast()
	for g.running > 0 {
		g.done.Wait()
	}
	g.mu.Unlock()

	g.c.mu.Lock()
	for w, sec := range g.elapsed {
		// a planned straggler is credited factor× its wall time, exactly as
		// in Cluster.Run
		g.c.busy[w] += sec * g.c.faults.SlowFactor(w)
	}
	g.c.mu.Unlock()

	var failed []string
	for w, p := range g.panics {
		if p != nil {
			//lint:allow hotalloc crash-aggregation path: runs only after a worker panicked, never on a healthy round
			failed = append(failed, fmt.Sprintf("worker %d: %v", w, p))
			g.panics[w] = nil
		}
	}
	if len(failed) > 0 {
		//lint:allow hotalloc crash-aggregation path: the round is already dead, formatting the rethrow is free
		//lint:allow panicpolicy worker panics are crashes by design: Run aggregates and rethrows them so drivers (graphbench, tests) surface every failed worker at once
		panic(fmt.Sprintf("cluster: %d worker(s) panicked: %s", len(failed), strings.Join(failed, "; ")))
	}
}

// Close releases the gang's goroutines. Idempotent; pending Run calls must
// have returned.
func (g *Gang) Close() {
	g.mu.Lock()
	g.stopped = true
	g.cond.Broadcast()
	g.mu.Unlock()
}
