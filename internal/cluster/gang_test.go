package cluster

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestGangRunsEveryWorker: every worker executes every phase exactly once,
// across many reused rounds.
func TestGangRunsEveryWorker(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := New(workers)
			g := c.NewGang()
			defer g.Close()
			counts := make([]int64, workers)
			const rounds = 50
			phase := func(w int) { counts[w]++ }
			for r := 0; r < rounds; r++ {
				g.Run(phase)
			}
			for w, n := range counts {
				if n != rounds {
					t.Fatalf("worker %d ran %d phases, want %d", w, n, rounds)
				}
			}
		})
	}
}

// TestGangPublishesWrites: worker writes from round r must be visible to the
// caller after Run returns and to all workers in round r+1 (the mutex
// handoff's happens-before edges).
func TestGangPublishesWrites(t *testing.T) {
	const workers = 4
	c := New(workers)
	g := c.NewGang()
	defer g.Close()
	shared := make([]int, workers)
	sum := 0
	writePhase := func(w int) { shared[w] = w + 1 }
	readPhase := func(w int) {
		if w == 0 {
			for _, v := range shared {
				sum += v
			}
		}
	}
	g.Run(writePhase)
	g.Run(readPhase)
	if sum != 1+2+3+4 {
		t.Fatalf("round-(r+1) worker saw stale writes: sum = %d", sum)
	}
}

// TestGangAggregatesPanics: multiple worker panics surface as one aggregated
// panic naming every failed worker — the Cluster.Run contract — and the gang
// stays usable for the next round.
func TestGangAggregatesPanics(t *testing.T) {
	c := New(4)
	g := c.NewGang()
	defer g.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected aggregated panic")
			}
			msg := fmt.Sprint(r)
			if !strings.Contains(msg, "worker 1") || !strings.Contains(msg, "worker 3") {
				t.Fatalf("panic does not name both failed workers: %s", msg)
			}
			if !strings.Contains(msg, "2 worker(s) panicked") {
				t.Fatalf("panic does not aggregate: %s", msg)
			}
		}()
		g.Run(func(w int) {
			if w == 1 || w == 3 {
				panic(fmt.Sprintf("boom-%d", w))
			}
		})
	}()
	// the gang survives a panicked round
	var ok atomic.Int64
	g.Run(func(w int) { ok.Add(1) })
	if ok.Load() != 4 {
		t.Fatalf("gang unusable after panic round: %d workers ran", ok.Load())
	}
}

// TestGangCreditsBusyTime: gang phases credit the cluster's per-worker busy
// meters, like Cluster.Run.
func TestGangCreditsBusyTime(t *testing.T) {
	c := New(2)
	g := c.NewGang()
	defer g.Close()
	g.Run(func(w int) {
		s := 0
		for i := 0; i < 100000; i++ {
			s += i
		}
		_ = s
	})
	for w, b := range c.WorkerBusy() {
		if b <= 0 {
			t.Fatalf("worker %d busy time not credited: %v", w, b)
		}
	}
}

// TestGangRunAfterCloseRejected: Run on a closed gang is a wiring error.
func TestGangRunAfterCloseRejected(t *testing.T) {
	c := New(2)
	g := c.NewGang()
	g.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close must panic")
		}
	}()
	g.Run(func(w int) {})
}

// TestGangConcurrentPhasesRace drives many rounds with per-worker disjoint
// writes plus an atomic shared counter (run with -race).
func TestGangConcurrentPhasesRace(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		c := New(workers)
		g := c.NewGang()
		slots := make([]int64, workers)
		var total atomic.Int64
		phase := func(w int) {
			slots[w]++
			total.Add(1)
		}
		for r := 0; r < 100; r++ {
			g.Run(phase)
		}
		if total.Load() != int64(100*workers) {
			t.Fatalf("workers=%d: %d phase executions, want %d", workers, total.Load(), 100*workers)
		}
		g.Close()
	}
}

// BenchmarkGangDispatch measures the per-round dispatch cost of a reused
// phase closure against spawning goroutines through Cluster.Run.
func BenchmarkGangDispatch(b *testing.B) {
	c := New(8)
	g := c.NewGang()
	defer g.Close()
	phase := func(w int) {}
	b.Run("gang", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Run(phase)
		}
	})
	b.Run("spawn", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Run(phase)
		}
	})
}
