package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsSafe(t *testing.T) {
	var fi *FaultInjector
	if fi.CrashDue(5) {
		t.Fatal("nil injector crashed")
	}
	if fi.SlowFactor(0) != 1 {
		t.Fatal("nil injector slows workers")
	}
	if fi.drawDrops(8) != 0 {
		t.Fatal("nil injector drops messages")
	}
	fi.NoteCheckpoint(100)
	fi.NoteRecovery(3, 3)
	if fi.Stats() != (RecoveryStats{}) {
		t.Fatal("nil injector accumulated stats")
	}
	if fi.Plan() != (FaultPlan{}) {
		t.Fatal("nil injector has a plan")
	}
}

func TestCrashFiresExactlyOnce(t *testing.T) {
	fi := NewFaultInjector(FaultPlan{CrashAtRound: 3})
	if fi.CrashDue(1) || fi.CrashDue(2) {
		t.Fatal("crashed before the planned round")
	}
	if !fi.CrashDue(3) {
		t.Fatal("did not crash at the planned round")
	}
	// after rollback the engine's round counter passes 3 again: no refire
	if fi.CrashDue(3) || fi.CrashDue(4) || fi.CrashDue(100) {
		t.Fatal("crash fired twice")
	}
	if st := fi.Stats(); st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
}

func TestCrashDueConcurrentSingleWinner(t *testing.T) {
	fi := NewFaultInjector(FaultPlan{CrashAtRound: 1})
	var wg sync.WaitGroup
	fired := make([]bool, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fired[i] = fi.CrashDue(1)
		}(i)
	}
	wg.Wait()
	n := 0
	for _, f := range fired {
		if f {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d goroutines observed the crash, want exactly 1", n)
	}
}

func TestDropRetryMetering(t *testing.T) {
	net := NewNetwork(2)
	fi := NewFaultInjector(FaultPlan{DropProb: 0.5, DropSeed: 42, RetryBackoff: 0.25})
	net.setFaults(fi)
	const sends, size = 400, 10
	for k := 0; k < sends; k++ {
		net.Account(0, 1, size)
	}
	st := fi.Stats()
	if st.DroppedMessages == 0 {
		t.Fatal("p=0.5 never dropped a message over 400 sends")
	}
	if st.RetryBytes != st.DroppedMessages*size {
		t.Fatalf("retry bytes %d != dropped %d × size %d", st.RetryBytes, st.DroppedMessages, size)
	}
	if st.RetryTime != 0.25*float64(st.DroppedMessages) {
		t.Fatalf("retry time %f, want %f", st.RetryTime, 0.25*float64(st.DroppedMessages))
	}
	// wasted transmissions are real wire traffic: Attempts/Bytes include
	// them, while Messages counts only the logical payloads
	ns := net.Stats()
	if ns.Messages != sends {
		t.Fatalf("messages %d, want %d logical sends", ns.Messages, int64(sends))
	}
	if ns.Attempts != sends+st.DroppedMessages {
		t.Fatalf("attempts %d, want %d + %d retries", ns.Attempts, sends, st.DroppedMessages)
	}
	if ns.Bytes != int64(sends*size)+st.RetryBytes {
		t.Fatalf("bytes %d, want %d payload + %d retry", ns.Bytes, sends*size, st.RetryBytes)
	}
	// local deliveries are never dropped
	before := fi.Stats().DroppedMessages
	for k := 0; k < 100; k++ {
		net.Account(1, 1, size)
	}
	if fi.Stats().DroppedMessages != before {
		t.Fatal("local delivery was dropped")
	}
}

func TestDropRetriesBoundedByMaxRetries(t *testing.T) {
	net := NewNetwork(2)
	// DropProb 1 would loop forever without the cap
	fi := NewFaultInjector(FaultPlan{DropProb: 1, MaxRetries: 3})
	net.setFaults(fi)
	net.Account(0, 1, 8)
	st := fi.Stats()
	if st.DroppedMessages != 3 {
		t.Fatalf("dropped %d, want MaxRetries=3", st.DroppedMessages)
	}
	if net.Stats().Attempts != 4 { // 3 failed attempts + final delivery
		t.Fatalf("attempts %d, want 4", net.Stats().Attempts)
	}
	if net.Stats().Messages != 1 { // one logical message got through
		t.Fatalf("messages %d, want 1", net.Stats().Messages)
	}
}

func TestStragglerSlowsBusyMetering(t *testing.T) {
	c := New(4)
	c.InstallFaults(FaultPlan{StragglerWorker: 2, StragglerFactor: 8})
	c.Run(func(w int) { time.Sleep(2 * time.Millisecond) })
	busy := c.WorkerBusy()
	if busy[2] <= busy[0]*2 {
		t.Fatalf("8x straggler not visible in busy time: %v", busy)
	}
}

func TestRunOptionsApply(t *testing.T) {
	topoCalled := false
	c := New(2)
	fi := RunOptions{
		Trace:    true,
		Topology: func(net *Network) { topoCalled = true; net.SetLinkCost(0, 1, 0.5) },
		Faults:   &FaultPlan{DropProb: 0.1},
	}.Apply(c)
	if !topoCalled || c.Network().LinkCost(0, 1) != 0.5 {
		t.Fatal("topology not applied")
	}
	if !c.Network().Tracing() {
		t.Fatal("trace not enabled")
	}
	if fi == nil || c.Faults() != fi {
		t.Fatal("faults not installed")
	}
	// zero options: nothing installed, nil injector returned
	c2 := New(2)
	if fi2 := (RunOptions{}).Apply(c2); fi2 != nil || c2.Faults() != nil || c2.Network().Tracing() {
		t.Fatal("zero RunOptions had side effects")
	}
	// an inactive plan (all zero) is not installed either
	c3 := New(2)
	if fi3 := (RunOptions{Faults: &FaultPlan{}}).Apply(c3); fi3 != nil {
		t.Fatal("inactive fault plan installed")
	}
}

func TestDropRetryConcurrentSenders(t *testing.T) {
	// race check: many goroutines sending through a lossy network
	net := NewNetwork(4)
	net.EnableTrace()
	net.setFaults(NewFaultInjector(FaultPlan{DropProb: 0.3, DropSeed: 7}))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				net.Account(w, (w+1)%4, 16)
			}
		}(w)
	}
	wg.Wait()
	s := net.Stats()
	if s.Messages != 800 {
		t.Fatalf("messages %d, want 800 logical", s.Messages)
	}
	if s.Attempts <= 800 {
		t.Fatalf("attempts %d, want retries above the 800 payloads at p=0.3", s.Attempts)
	}
}
