package cluster

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// stagedWorkload drives a fixed multi-round workload through mb from a single
// goroutine: every worker sends `per` messages per round with deterministic
// destinations and sizes. The message value encodes (sender, round, seq).
func stagedWorkload(mb *Mailboxes[int64], workers, rounds, per int) {
	for r := 0; r < rounds; r++ {
		for w := 0; w < workers; w++ {
			for i := 0; i < per; i++ {
				mb.Send(w, (w+i)%workers, int64(w)<<40|int64(r)<<20|int64(i))
			}
		}
		mb.Exchange()
	}
}

// workloadSize gives each message a deterministic, non-uniform wire size so
// the equivalence test exercises byte accounting beyond flat sizes. All sizes
// are multiples of 4 so products with dyadic link costs are exact in float64
// and the staged batched cost sum is bit-identical to the per-message sum.
func workloadSize(m int64) int64 { return 8 + (m%7)*4 }

// dyadicTopology sets exactly-representable link costs so weighted-cost
// accumulation is exact regardless of summation order.
func dyadicTopology(net *Network) {
	costs := []float64{1, 0.5, 0.25, 2}
	for i := 0; i < net.NumWorkers(); i++ {
		for j := 0; j < net.NumWorkers(); j++ {
			if i != j {
				net.SetLinkCost(i, j, costs[(i+j)%len(costs)])
			}
		}
	}
}

// TestStagedLegacyStatsEquivalence: the staged substrate's deferred batch
// metering must account the exact same Stats — logical messages, attempts,
// wire bytes, weighted cost, rounds, local deliveries — as the legacy
// per-message path on the same workload.
func TestStagedLegacyStatsEquivalence(t *testing.T) {
	const workers, rounds, per = 4, 5, 100
	run := func(legacy bool) Stats {
		net := NewNetwork(workers)
		dyadicTopology(net)
		var mb *Mailboxes[int64]
		if legacy {
			mb = NewMailboxesLegacy[int64](net, workloadSize)
		} else {
			mb = NewMailboxes[int64](net, workloadSize)
		}
		stagedWorkload(mb, workers, rounds, per)
		return net.Stats()
	}
	staged, legacy := run(false), run(true)
	if staged != legacy {
		t.Fatalf("staged and legacy accounting diverge:\nstaged: %+v\nlegacy: %+v", staged, legacy)
	}
	if staged.Messages == 0 || staged.LocalMessages == 0 || staged.WeightedCost == 0 {
		t.Fatalf("degenerate workload: %+v", staged)
	}
	if staged.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", staged.Rounds, rounds)
	}
}

// TestStagedTraceEquivalence: per-link matrices and per-round series must
// also match between the two paths.
func TestStagedTraceEquivalence(t *testing.T) {
	const workers, rounds, per = 4, 3, 50
	run := func(legacy bool) (bytes, msgs [][]int64, hist []RoundStats) {
		net := NewNetwork(workers)
		net.EnableTrace()
		dyadicTopology(net)
		var mb *Mailboxes[int64]
		if legacy {
			mb = NewMailboxesLegacy[int64](net, workloadSize)
		} else {
			mb = NewMailboxes[int64](net, workloadSize)
		}
		stagedWorkload(mb, workers, rounds, per)
		bytes, msgs = net.TrafficMatrix()
		return bytes, msgs, net.RoundHistory()
	}
	sb, sm, sh := run(false)
	lb, lm, lh := run(true)
	if !reflect.DeepEqual(sb, lb) || !reflect.DeepEqual(sm, lm) {
		t.Fatalf("traffic matrices diverge:\nstaged bytes %v msgs %v\nlegacy bytes %v msgs %v", sb, sm, lb, lm)
	}
	if !reflect.DeepEqual(sh, lh) {
		t.Fatalf("round series diverge:\nstaged %+v\nlegacy %+v", sh, lh)
	}
}

// TestStagedDeterministicInboxOrder: with concurrent senders, inbox contents
// after Exchange must be byte-identical across runs at every worker count —
// the sender-rank merge makes delivery order independent of scheduling.
func TestStagedDeterministicInboxOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func() [][]int64 {
				net := NewNetwork(workers)
				mb := NewMailboxes[int64](net, nil)
				c := New(workers)
				for r := 0; r < 3; r++ {
					c.Run(func(w int) {
						ob := mb.Outbox(w)
						for i := 0; i < 200; i++ {
							ob.Send((w+i)%workers, int64(w)<<32|int64(r)<<16|int64(i))
						}
					})
					mb.Exchange()
				}
				out := make([][]int64, workers)
				for w := 0; w < workers; w++ {
					out[w] = append([]int64(nil), mb.Receive(w)...)
				}
				return out
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatal("inbox order differs between identical runs")
			}
			// canonical order: ascending sender rank, send order within sender
			for w := 0; w < workers; w++ {
				for i := 1; i < len(a[w]); i++ {
					prevSender, curSender := a[w][i-1]>>32, a[w][i]>>32
					if curSender < prevSender {
						t.Fatalf("inbox %d not in sender-rank order at %d: %x after %x", w, i, a[w][i], a[w][i-1])
					}
					if curSender == prevSender && a[w][i]&0xffff <= a[w][i-1]&0xffff {
						t.Fatalf("inbox %d lost send order at %d", w, i)
					}
				}
			}
		})
	}
}

// TestStagedConcurrentSendersRace exercises the staged Send path from
// concurrent sender goroutines at several worker counts (run with -race).
func TestStagedConcurrentSendersRace(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		net := NewNetwork(workers)
		mb := NewMailboxes[int64](net, nil)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ob := mb.Outbox(w)
				for i := 0; i < 500; i++ {
					ob.Send((w+i)%workers, int64(i))
				}
			}(w)
		}
		wg.Wait()
		if got := mb.Exchange(); got != int64(workers*500) {
			t.Fatalf("workers=%d: delivered %d, want %d", workers, got, workers*500)
		}
	}
}

// TestExchangeReturnsLogicalDeliveries: under a lossy FaultPlan, Exchange
// reports delivered payloads, not transmissions — retries are visible only
// as Stats.Attempts − Stats.Messages, which must equal the injector's
// dropped-message count.
func TestExchangeReturnsLogicalDeliveries(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		net := NewNetwork(2)
		fi := NewFaultInjector(FaultPlan{DropProb: 0.5, DropSeed: 9})
		net.setFaults(fi)
		var mb *Mailboxes[int]
		if legacy {
			mb = NewMailboxesLegacy[int](net, nil)
		} else {
			mb = NewMailboxes[int](net, nil)
		}
		const sends = 300
		for i := 0; i < sends; i++ {
			mb.Send(0, 1, i)
		}
		if got := mb.Exchange(); got != sends {
			t.Fatalf("legacy=%v: Exchange returned %d, want %d logical deliveries", legacy, got, sends)
		}
		s := net.Stats()
		if s.Messages != sends {
			t.Fatalf("legacy=%v: messages %d, want %d", legacy, s.Messages, sends)
		}
		dropped := fi.Stats().DroppedMessages
		if dropped == 0 {
			t.Fatalf("legacy=%v: p=0.5 never dropped over %d sends", legacy, sends)
		}
		if s.Attempts-s.Messages != dropped {
			t.Fatalf("legacy=%v: attempts %d − messages %d ≠ dropped %d", legacy, s.Attempts, s.Messages, dropped)
		}
		if len(mb.Receive(1)) != sends {
			t.Fatalf("legacy=%v: %d payloads delivered, want %d", legacy, len(mb.Receive(1)), sends)
		}
	}
}

// TestStatsSnapshotConsistent: Stats() must be an atomic snapshot — under a
// concurrent stream of uniform 8-byte transfers, every snapshot must satisfy
// Bytes == 8·Attempts and Attempts == Messages exactly. The seed's
// independent atomic loads could tear between the fields mid-Account.
func TestStatsSnapshotConsistent(t *testing.T) {
	net := NewNetwork(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			net.Account(0, 1, 8)
		}
	}()
	for {
		s := net.Stats()
		if s.Bytes != 8*s.Attempts || s.Attempts != s.Messages {
			t.Fatalf("torn snapshot: %+v", s)
		}
		select {
		case <-done:
			s := net.Stats()
			if s.Messages != 20000 || s.Bytes != 160000 {
				t.Fatalf("final stats wrong: %+v", s)
			}
			return
		default:
		}
	}
}

type kv struct{ k, v int64 }

// TestCombinerHoistedIntoMailboxes: the substrate-level combiner must merge
// same-key messages in the sender's staging buffer — metering and delivering
// only the combined messages, in first-occurrence order.
func TestCombinerHoistedIntoMailboxes(t *testing.T) {
	net := NewNetwork(2)
	mb := NewMailboxes[kv](net, nil)
	mb.SetCombiner(
		func(m kv) int64 { return m.k },
		func(a, b kv) kv { return kv{a.k, a.v + b.v} },
	)
	ob := mb.Outbox(0)
	for i := 0; i < 100; i++ {
		ob.Send(1, kv{int64(i % 10), 1})
	}
	if got := mb.Exchange(); got != 10 {
		t.Fatalf("delivered %d combined messages, want 10", got)
	}
	in := mb.Receive(1)
	if len(in) != 10 {
		t.Fatalf("inbox has %d messages, want 10", len(in))
	}
	for i, m := range in {
		if m.k != int64(i) || m.v != 10 {
			t.Fatalf("combined message %d = %+v, want key %d sum 10", i, m, i)
		}
	}
	if s := net.Stats(); s.Messages != 10 || s.Bytes != 80 {
		t.Fatalf("combining must meter post-combine traffic: %+v", s)
	}
	// combining state resets between rounds: a second round re-combines fresh
	ob.Send(1, kv{3, 7})
	ob.Send(1, kv{3, 5})
	if got := mb.Exchange(); got != 1 {
		t.Fatalf("second round delivered %d, want 1", got)
	}
	if in := mb.Receive(1); len(in) != 1 || in[0].v != 12 {
		t.Fatalf("second round inbox %+v, want one message with sum 12", in)
	}
}

// TestCombinerRequiresStaged: legacy mailboxes cannot combine.
func TestCombinerRequiresStaged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetCombiner on legacy mailboxes must panic")
		}
	}()
	NewMailboxesLegacy[kv](NewNetwork(2), nil).SetCombiner(
		func(m kv) int64 { return m.k },
		func(a, b kv) kv { return a },
	)
}

// TestStagedDropsDrawnAtFlush: drops on the staged path are drawn at flush
// time, but the accounted totals match the per-message path for the same
// workload (same seed, same per-message draw count and sizes).
func TestStagedDropsDrawnAtFlush(t *testing.T) {
	run := func(legacy bool) Stats {
		net := NewNetwork(2)
		net.setFaults(NewFaultInjector(FaultPlan{DropProb: 0.4, DropSeed: 21}))
		var mb *Mailboxes[int64]
		if legacy {
			mb = NewMailboxesLegacy[int64](net, nil)
		} else {
			mb = NewMailboxes[int64](net, nil)
		}
		for i := 0; i < 500; i++ {
			mb.Send(0, 1, int64(i))
		}
		mb.Exchange()
		return net.Stats()
	}
	staged, legacy := run(false), run(true)
	// identical rng seed and draw count with uniform sizes ⇒ identical totals
	if staged != legacy {
		t.Fatalf("fault accounting diverges:\nstaged %+v\nlegacy %+v", staged, legacy)
	}
	if staged.Attempts <= staged.Messages {
		t.Fatalf("no retries drawn at p=0.4: %+v", staged)
	}
}
