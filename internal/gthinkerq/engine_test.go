package gthinkerq

import (
	"errors"
	"testing"
	"time"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/match"
	"graphsys/internal/serve"
)

func TestEngineCountsMatchOfflineAcrossPolicies(t *testing.T) {
	g := gen.ErdosRenyi(80, 600, 1)
	wantEdge, _ := match.Count(g, match.OptimizedPlan(edge), 4)
	wantTri, _ := match.Count(g, match.OptimizedPlan(triangle), 4)
	for _, pol := range serve.Policies {
		t.Run(pol.String(), func(t *testing.T) {
			eng, err := NewEngine(g, serve.Options{Workers: 4, Policy: pol})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			defer eng.Close()
			var tks []*serve.Ticket[int64]
			for i := 0; i < 8; i++ {
				p, cost := edge, int64(1)
				if i%2 == 0 {
					p, cost = triangle, 10
				}
				tk, err := eng.Submit(serve.Request[*graph.Graph]{Query: p, Cost: cost, Weight: 1 + i%2})
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				tks = append(tks, tk)
			}
			for i, tk := range tks {
				got, err := tk.Wait()
				want := wantEdge
				if i%2 == 0 {
					want = wantTri
				}
				if err != nil || got != want {
					t.Fatalf("query %d: got (%d, %v), want (%d, nil)", i, got, err, want)
				}
			}
			if m := eng.Metrics(); m.Completed != 8 {
				t.Fatalf("metrics: %+v", m)
			}
		})
	}
}

func TestEngineTypedErrors(t *testing.T) {
	if _, err := NewEngine(nil, serve.Options{}); !errors.Is(err, serve.ErrInvalidRequest) {
		t.Fatalf("nil graph: %v", err)
	}
	g := gen.Grid(4, 4)
	eng, err := NewEngine(g, serve.Options{Workers: 2})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Submit(serve.Request[*graph.Graph]{}); !errors.Is(err, serve.ErrInvalidRequest) {
		t.Fatalf("nil pattern: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := eng.Submit(serve.Request[*graph.Graph]{Query: triangle}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

func TestEngineDeadlineExpiresHeavyQuery(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 12, 7)
	lc := serve.NewLogicalClock(time.Unix(0, 0))
	eng, err := NewEngine(g, serve.Options{Workers: 2, Clock: lc.Clock()})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	tk, err := eng.Submit(serve.Request[*graph.Graph]{Query: gen.Clique(5), Deadline: time.Millisecond})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	lc.Advance(time.Second) // logical deadline passes while matching runs
	got, werr := tk.Wait()
	if !errors.Is(werr, serve.ErrDeadlineExceeded) {
		t.Fatalf("wait: (%d, %v), want ErrDeadlineExceeded", got, werr)
	}
	if got < 0 {
		t.Fatalf("negative partial count %d", got)
	}
	// the engine keeps serving after an expiry
	n, werr := eng.Submit(serve.Request[*graph.Graph]{Query: edge})
	if werr != nil {
		t.Fatalf("submit after expiry: %v", werr)
	}
	if c, werr := n.Wait(); werr != nil || c == 0 {
		t.Fatalf("edge query after expiry: (%d, %v)", c, werr)
	}
}

func TestEngineAdmissionControlSheds(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 12, 7)
	lc := serve.NewLogicalClock(time.Unix(0, 0))
	eng, err := NewEngine(g, serve.Options{Workers: 1, QueueLimit: 2, Clock: lc.Clock()})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	// two heavy queries fill the bounded queue; the burst beyond it sheds
	var admitted []*serve.Ticket[int64]
	shed := 0
	for i := 0; i < 6; i++ {
		tk, err := eng.Submit(serve.Request[*graph.Graph]{Query: gen.Clique(5)})
		switch {
		case err == nil:
			admitted = append(admitted, tk)
		case errors.Is(err, serve.ErrQueueFull):
			shed++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if len(admitted)+shed != 6 {
		t.Fatalf("submissions unaccounted for: admitted %d shed %d", len(admitted), shed)
	}
	if shed == 0 {
		t.Fatal("no submission was shed")
	}
	if m := eng.Metrics(); m.Rejected != int64(shed) || m.Admitted != int64(len(admitted)) {
		t.Fatalf("metrics: %+v (admitted %d shed %d)", m, len(admitted), shed)
	}
	for _, tk := range admitted {
		tk.Cancel()
		if _, err := tk.Wait(); err != nil && !errors.Is(err, serve.ErrCanceled) {
			t.Fatalf("wait: %v", err)
		}
	}
}
