package gthinkerq

import (
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/match"
)

var (
	triangle = graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}})
	edge     = graph.FromEdges(2, [][2]graph.V{{0, 1}})
	clique5  = gen.Clique(5)
)

func TestQueryCountsMatchOffline(t *testing.T) {
	g := gen.ErdosRenyi(80, 600, 1)
	s := NewServer(g, 4)
	defer s.Close()
	for _, p := range []*graph.Graph{edge, triangle} {
		want, _ := match.Count(g, match.OptimizedPlan(p), 4)
		got := s.Submit(p).Wait()
		if got != want {
			t.Fatalf("online count %d, offline %d", got, want)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 2)
	s := NewServer(g, 8)
	defer s.Close()
	// submit a burst of queries of mixed weight
	var queries []*Query
	for i := 0; i < 10; i++ {
		p := edge
		if i%2 == 0 {
			p = triangle
		}
		queries = append(queries, s.Submit(p))
	}
	wantEdge, _ := match.Count(g, match.OptimizedPlan(edge), 4)
	wantTri, _ := match.Count(g, match.OptimizedPlan(triangle), 4)
	for i, q := range queries {
		got := q.Wait()
		want := wantEdge
		if i%2 == 0 {
			want = wantTri
		}
		if got != want {
			t.Fatalf("query %d: got %d want %d", i, got, want)
		}
		if q.Latency() <= 0 {
			t.Fatalf("query %d: nonpositive latency", i)
		}
	}
}

func TestHeavyQueryDoesNotBlockLight(t *testing.T) {
	g := gen.BarabasiAlbert(800, 10, 3)
	s := NewServer(g, 4)
	defer s.Close()
	heavy := s.Submit(clique5) // expensive on a dense hub graph
	light := s.Submit(edge)
	light.Wait()
	// the light query must complete; if it had to wait for the heavy one
	// this would take far longer (covered quantitatively in the benchmark)
	if light.Count() == 0 {
		t.Fatal("light query found nothing")
	}
	heavy.Wait()
}

func TestEmptyAndUnmatchablePatterns(t *testing.T) {
	g := gen.Grid(4, 4)
	s := NewServer(g, 2)
	defer s.Close()
	if got := s.Submit(graph.NewBuilder(0, false).Build()).Wait(); got != 0 {
		t.Fatalf("empty pattern count %d", got)
	}
	// triangle in a grid: no roots survive at depth 2+, count 0
	if got := s.Submit(triangle).Wait(); got != 0 {
		t.Fatalf("triangle in grid = %d", got)
	}
	// pattern needing degree 5 in a grid (max degree 4): no feasible roots
	star5 := graph.FromEdges(6, [][2]graph.V{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	if got := s.Submit(star5).Wait(); got != 0 {
		t.Fatalf("star5 in grid = %d", got)
	}
}

func TestSplitDepthZeroStillCorrect(t *testing.T) {
	g := gen.ErdosRenyi(50, 300, 4)
	s := NewServer(g, 3)
	s.SplitDepth = 0 // pure DFS per root task
	defer s.Close()
	want, _ := match.Count(g, match.OptimizedPlan(triangle), 4)
	if got := s.Submit(triangle).Wait(); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestQueryCancellation(t *testing.T) {
	g := gen.BarabasiAlbert(1500, 12, 7)
	s := NewServer(g, 2)
	defer s.Close()
	heavy := s.Submit(gen.Clique(5))
	heavy.Cancel()
	// the query must still complete (tasks drain as no-ops)
	heavy.Wait()
	if !heavy.Cancelled() {
		t.Fatal("cancel flag lost")
	}
	// the server keeps serving other queries afterwards
	light := s.Submit(triangle)
	if light.Wait() == 0 {
		t.Fatal("server unusable after cancellation")
	}
}
