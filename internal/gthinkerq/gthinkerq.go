// Package gthinkerq implements G-thinkerQ's contribution: interactive ONLINE
// subgraph querying, where users continually submit subgraph queries with
// different contents against a loaded big graph, and a shared task-based
// engine serves them concurrently. Tasks are kept in PER-QUERY queues and
// workers draw from the queries round-robin, so a long-running query cannot
// monopolise the pool: short queries interleave fairly and keep low latency —
// the property BenchmarkTable1_OnlineQuery measures against sequential
// (offline, one-query-at-a-time) execution.
package gthinkerq

import (
	"sync"
	"sync/atomic"
	"time"

	"graphsys/internal/graph"
	"graphsys/internal/match"
)

// Query is a handle to a submitted subgraph query.
type Query struct {
	ID        int64
	Pattern   *graph.Graph
	done      chan struct{}
	count     atomic.Int64
	pending   atomic.Int64
	cancelled atomic.Bool
	submitted time.Time
	finished  time.Time
}

// Cancel marks the query cancelled: its remaining tasks complete as cheap
// no-ops and Wait returns the partial count. Safe to call concurrently.
func (q *Query) Cancel() { q.cancelled.Store(true) }

// Cancelled reports whether Cancel was called.
func (q *Query) Cancelled() bool { return q.cancelled.Load() }

// Wait blocks until the query completes and returns the match count.
func (q *Query) Wait() int64 {
	<-q.done
	return q.count.Load()
}

// Latency returns the submit-to-completion latency (valid after Wait).
func (q *Query) Latency() time.Duration { return q.finished.Sub(q.submitted) }

// Count returns the current (possibly partial) match count.
func (q *Query) Count() int64 { return q.count.Load() }

type task struct {
	q      *Query
	plan   *match.Plan
	prefix []graph.V
}

// Server is a shared-pool online query engine over one data graph. Tasks
// live in per-query queues; idle workers scan the queries round-robin, which
// is the fairness mechanism that keeps short queries responsive while heavy
// ones run.
type Server struct {
	g      *graph.Graph
	nextID atomic.Int64
	// SplitDepth controls task granularity: prefixes shorter than SplitDepth
	// spawn one task per extension (enabling interleaving); deeper prefixes
	// run DFS inline.
	SplitDepth int

	// now stamps query submission/completion for Latency. It defaults to the
	// wall clock — latency of an interactive server is an observation about
	// the host, not engine state — and tests inject a logical clock to keep
	// latency assertions deterministic.
	now func() time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[int64][]task // per-query LIFO stacks
	ring   []int64          // round-robin order of query ids
	next   int              // ring cursor
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts a query server with the given worker pool size.
func NewServer(g *graph.Graph, workers int) *Server {
	if workers <= 0 {
		workers = 4
	}
	s := &Server{g: g, SplitDepth: 2, queues: map[int64][]task{}}
	//lint:allow wallclock query latency is host observability, never engine state; tests swap in a logical clock via SetClock
	s.now = time.Now
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		//lint:allow nakedgo bounded worker pool owned by the server, joined in Close; predates cluster.Run and serves latency-sensitive interactive queries
		go s.worker()
	}
	return s
}

// SetClock replaces the timestamp source used for Query.Latency. Call it
// before the first Submit; a nil clock resets to the wall clock.
func (s *Server) SetClock(now func() time.Time) {
	if now == nil {
		//lint:allow wallclock explicit reset to the host clock, same justification as the NewServer default
		now = time.Now
	}
	s.now = now
}

// Close shuts the server down after all in-flight queries complete. Submit
// must not be called after (or concurrently with) Close.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit enqueues a subgraph query (counting matches of pattern) and returns
// immediately.
func (s *Server) Submit(pattern *graph.Graph) *Query {
	q := &Query{
		ID:        s.nextID.Add(1),
		Pattern:   pattern,
		done:      make(chan struct{}),
		submitted: s.now(),
	}
	if pattern.NumVertices() == 0 {
		q.finished = s.now()
		close(q.done)
		return q
	}
	plan := match.OptimizedPlan(pattern)
	// one root task per feasible first-vertex binding
	roots := plan.CandidatesForPrefix(s.g, nil, nil)
	if len(roots) == 0 {
		q.finished = s.now()
		close(q.done)
		return q
	}
	q.pending.Add(int64(len(roots)))
	tasks := make([]task, 0, len(roots))
	for _, r := range roots {
		tasks = append(tasks, task{q: q, plan: plan, prefix: []graph.V{r}})
	}
	s.mu.Lock()
	s.queues[q.ID] = tasks
	s.ring = append(s.ring, q.ID)
	s.cond.Broadcast()
	s.mu.Unlock()
	return q
}

// take pops one task, rotating across queries for fairness. Blocks until a
// task is available or the server closes.
func (s *Server) take() (task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for i := 0; i < len(s.ring); i++ {
			idx := (s.next + i) % len(s.ring)
			id := s.ring[idx]
			queue := s.queues[id]
			if len(queue) == 0 {
				continue
			}
			t := queue[len(queue)-1]
			s.queues[id] = queue[:len(queue)-1]
			s.next = (idx + 1) % len(s.ring)
			return t, true
		}
		// no runnable task: compact the ring of drained, finished queries
		s.compactLocked()
		if s.closed {
			return task{}, false
		}
		s.cond.Wait()
	}
}

// compactLocked drops queries whose queues are empty and whose work is done.
func (s *Server) compactLocked() {
	kept := s.ring[:0]
	for _, id := range s.ring {
		if len(s.queues[id]) > 0 {
			kept = append(kept, id)
			continue
		}
		delete(s.queues, id)
	}
	s.ring = kept
	if len(s.ring) == 0 {
		s.next = 0
	} else {
		s.next %= len(s.ring)
	}
}

// enqueue appends child tasks for an existing query.
func (s *Server) enqueue(ts []task) {
	if len(ts) == 0 {
		return
	}
	id := ts[0].q.ID
	s.mu.Lock()
	if _, ok := s.queues[id]; !ok {
		s.ring = append(s.ring, id)
	}
	s.queues[id] = append(s.queues[id], ts...)
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		t, ok := s.take()
		if !ok {
			return
		}
		s.execute(t)
	}
}

func (s *Server) execute(t task) {
	if t.q.cancelled.Load() {
		s.finish(t.q) // drain the task without doing work
		return
	}
	k := len(t.plan.Order)
	if len(t.prefix) == k {
		t.q.count.Add(1)
		s.finish(t.q)
		return
	}
	cands := t.plan.CandidatesForPrefix(s.g, t.prefix, nil)
	if len(t.prefix) < s.SplitDepth {
		// fine-grained: spawn one task per extension so other queries' tasks
		// interleave on the shared pool
		if len(cands) > 0 {
			t.q.pending.Add(int64(len(cands)))
			children := make([]task, 0, len(cands))
			for _, c := range cands {
				child := append(append(make([]graph.V, 0, len(t.prefix)+1), t.prefix...), c)
				children = append(children, task{q: t.q, plan: t.plan, prefix: child})
			}
			s.enqueue(children)
		}
		s.finish(t.q)
		return
	}
	// coarse: DFS inline without further task creation
	var dfs func(prefix []graph.V)
	dfs = func(prefix []graph.V) {
		if len(prefix) == k {
			t.q.count.Add(1)
			return
		}
		for _, c := range t.plan.CandidatesForPrefix(s.g, prefix, nil) {
			dfs(append(prefix, c))
		}
	}
	for _, c := range cands {
		dfs(append(append(make([]graph.V, 0, k), t.prefix...), c))
	}
	s.finish(t.q)
}

// finish decrements the query's pending-task count, completing it at zero.
func (s *Server) finish(q *Query) {
	if q.pending.Add(-1) == 0 {
		q.finished = s.now()
		close(q.done)
	}
}
