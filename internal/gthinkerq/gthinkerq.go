// Package gthinkerq implements G-thinkerQ's contribution: interactive ONLINE
// subgraph querying, where users continually submit subgraph queries with
// different contents against a loaded big graph, and a shared task-based
// engine serves them concurrently. Tasks are kept in PER-QUERY queues and
// workers draw from the queries under a pluggable scheduling policy
// (round-robin by default), so a long-running query cannot monopolise the
// pool: short queries interleave fairly and keep low latency — the property
// BenchmarkTable1_OnlineQuery measures against sequential (offline,
// one-query-at-a-time) execution.
//
// The engine lives behind the unified serving tier: Engine implements
// serve.Engine[*graph.Graph, int64] over a serve.Pool, inheriting scheduling
// policies, admission control (load shedding with typed ErrQueueFull),
// per-query deadlines and cancellation. Server and Query are the original
// pre-serve API, kept as thin deprecated wrappers.
package gthinkerq

import (
	"sync/atomic"
	"time"

	"graphsys/internal/graph"
	"graphsys/internal/match"
	"graphsys/internal/serve"
)

// qtask is one unit of matching work: extend prefix against plan. Tasks carry
// their query's split depth (captured at submission) and a live match counter
// so partial progress stays observable while the query runs.
type qtask struct {
	plan   *match.Plan
	prefix []graph.V
	sd     int
	live   *atomic.Int64
}

// Engine is the serving-tier subgraph-query engine: it implements
// serve.Engine[*graph.Graph, int64] (submit a pattern graph, receive a match
// count) over a shared task pool. Construct it with serve.Options to pick the
// scheduling policy, admission bound, default deadline and clock.
type Engine struct {
	g          *graph.Graph
	pool       *serve.Pool[qtask, int64]
	splitDepth atomic.Int32
}

var _ serve.Engine[*graph.Graph, int64] = (*Engine)(nil)

// NewEngine starts a query engine over the data graph g. Returns
// serve.ErrInvalidRequest for a nil graph or an invalid policy in opts.
func NewEngine(g *graph.Graph, opts serve.Options) (*Engine, error) {
	if g == nil {
		return nil, serve.ErrInvalidRequest
	}
	e := &Engine{g: g}
	e.splitDepth.Store(2)
	pool, err := serve.NewPool[qtask, int64](opts, e.exec, func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, err
	}
	e.pool = pool
	return e, nil
}

// SetSplitDepth sets the task granularity for subsequently submitted queries:
// prefixes shorter than depth spawn one task per extension (enabling
// cross-query interleaving); deeper prefixes run DFS inline. The default is 2.
func (e *Engine) SetSplitDepth(depth int) {
	if depth < 0 {
		depth = 0
	}
	e.splitDepth.Store(int32(depth))
}

// Submit admits one subgraph query (counting matches of req.Query) and
// returns its ticket without blocking on execution. A nil pattern is rejected
// with serve.ErrInvalidRequest; admission-control rejections return
// serve.ErrQueueFull; after Close, serve.ErrClosed.
func (e *Engine) Submit(req serve.Request[*graph.Graph]) (*serve.Ticket[int64], error) {
	tk, _, err := e.submitLive(req)
	return tk, err
}

// submitLive is Submit plus the query's live partial-count cell (the
// deprecated Query.Count hook).
func (e *Engine) submitLive(req serve.Request[*graph.Graph]) (*serve.Ticket[int64], *atomic.Int64, error) {
	if req.Query == nil {
		return nil, nil, serve.ErrInvalidRequest
	}
	live := &atomic.Int64{}
	spec := serve.JobSpec[qtask, int64]{
		Deadline: req.Deadline,
		Weight:   req.Weight,
		Cost:     req.Cost,
	}
	if req.Query.NumVertices() > 0 {
		plan := match.OptimizedPlan(req.Query)
		// one root task per feasible first-vertex binding
		sd := int(e.splitDepth.Load())
		for _, r := range plan.CandidatesForPrefix(e.g, nil, nil) {
			spec.Roots = append(spec.Roots, qtask{plan: plan, prefix: []graph.V{r}, sd: sd, live: live})
		}
	}
	tk, err := e.pool.Submit(spec)
	if err != nil {
		return nil, nil, err
	}
	return tk, live, nil
}

// Drain blocks until every admitted query has reached a terminal state.
func (e *Engine) Drain() { e.pool.Drain() }

// Close drains in-flight queries, then stops the workers. Submit during or
// after Close returns serve.ErrClosed. Safe to call more than once.
func (e *Engine) Close() error { return e.pool.Close() }

// Metrics returns the engine's admission and completion counters.
func (e *Engine) Metrics() serve.Metrics { return e.pool.Metrics() }

// exec runs one matching task: complete prefixes count a match, shallow
// prefixes spawn one child per candidate extension, deep prefixes run DFS
// inline (checking for abort between roots so canceled or expired queries
// release their worker promptly).
func (e *Engine) exec(tc *serve.TaskContext[qtask], t qtask) int64 {
	if tc.Aborted() {
		return 0
	}
	k := len(t.plan.Order)
	if len(t.prefix) == k {
		t.live.Add(1)
		return 1
	}
	cands := t.plan.CandidatesForPrefix(e.g, t.prefix, nil)
	if len(t.prefix) < t.sd {
		// fine-grained: spawn one task per extension so other queries' tasks
		// interleave on the shared pool
		for _, c := range cands {
			child := append(append(make([]graph.V, 0, len(t.prefix)+1), t.prefix...), c)
			tc.Spawn(qtask{plan: t.plan, prefix: child, sd: t.sd, live: t.live})
		}
		return 0
	}
	// coarse: DFS inline without further task creation
	var count int64
	var dfs func(prefix []graph.V)
	dfs = func(prefix []graph.V) {
		if len(prefix) == k {
			count++
			t.live.Add(1)
			return
		}
		for _, c := range t.plan.CandidatesForPrefix(e.g, prefix, nil) {
			dfs(append(prefix, c))
		}
	}
	for _, c := range cands {
		if tc.Aborted() {
			break
		}
		dfs(append(append(make([]graph.V, 0, k), t.prefix...), c))
	}
	return count
}

// Query is a handle to a query submitted through the deprecated Server API.
//
// Deprecated: use Engine.Submit, which returns a *serve.Ticket[int64] with
// typed terminal errors.
type Query struct {
	ID      int64
	Pattern *graph.Graph
	tk      *serve.Ticket[int64]
	live    *atomic.Int64
}

// Cancel marks the query cancelled: the engine stops working on it at the
// next scheduling point and Wait returns the partial count.
func (q *Query) Cancel() { q.tk.Cancel() }

// Cancelled reports whether Cancel was called.
func (q *Query) Cancelled() bool { return q.tk.Canceled() }

// Wait blocks until the query completes and returns the match count (partial
// if the query was cancelled).
func (q *Query) Wait() int64 {
	n, _ := q.tk.Wait()
	return n
}

// Latency returns the submit-to-completion latency (valid after Wait).
func (q *Query) Latency() time.Duration { return q.tk.Latency() }

// Count returns the current (possibly partial) match count.
func (q *Query) Count() int64 { return q.live.Load() }

// Server is the original shared-pool online query server API.
//
// Deprecated: use NewEngine with serve.Options — it adds scheduling policies,
// admission control, deadlines and typed errors. Server remains as a thin
// wrapper over Engine with the historical round-robin behaviour.
type Server struct {
	eng *Engine
	// SplitDepth controls task granularity: prefixes shorter than SplitDepth
	// spawn one task per extension (enabling interleaving); deeper prefixes
	// run DFS inline. Set it before the first Submit.
	SplitDepth int
	clock      atomic.Pointer[serve.Clock]
}

// NewServer starts a query server with the given worker pool size and the
// round-robin policy.
func NewServer(g *graph.Graph, workers int) *Server {
	s := &Server{SplitDepth: 2}
	wall := serve.WallClock()
	s.clock.Store(&wall)
	if g == nil {
		// the legacy constructor has no error return; an empty graph keeps
		// every query well-defined (zero matches) instead of panicking
		g = graph.FromEdges(0, nil)
	}
	eng, _ := NewEngine(g, serve.Options{
		Workers: workers,
		Policy:  serve.RoundRobin,
		Clock:   func() time.Time { return (*s.clock.Load())() },
	})
	s.eng = eng
	return s
}

// SetClock replaces the timestamp source used for Query.Latency. Call it
// before the first Submit; a nil clock resets to the wall clock.
func (s *Server) SetClock(now func() time.Time) {
	var c serve.Clock
	if now == nil {
		c = serve.WallClock()
	} else {
		c = serve.Clock(now)
	}
	s.clock.Store(&c)
}

// Close shuts the server down after all in-flight queries complete. Submit
// must not be called after (or concurrently with) Close.
func (s *Server) Close() { _ = s.eng.Close() }

// Submit enqueues a subgraph query (counting matches of pattern) and returns
// immediately. The wrapper has no admission bound, so the only rejection is a
// nil pattern, which returns an already-completed zero-count Query.
func (s *Server) Submit(pattern *graph.Graph) *Query {
	s.eng.SetSplitDepth(s.SplitDepth)
	tk, live, err := s.eng.submitLive(serve.Request[*graph.Graph]{Query: pattern})
	if err != nil {
		// preserve the no-error legacy shape: surface a terminal zero-count query
		done := &atomic.Int64{}
		zt := serve.CompletedTicket[int64](0, err)
		return &Query{Pattern: pattern, tk: zt, live: done}
	}
	return &Query{ID: tk.ID(), Pattern: pattern, tk: tk, live: live}
}
