package graphd

import (
	"math"
	"path/filepath"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/storage"
)

func spillBlocks(t *testing.T, g *graph.Graph) *BlockFile {
	t.Helper()
	bf, err := SpillBlocks(g, filepath.Join(t.TempDir(), "g.gsb"), storage.Options{BlockBytes: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bf.Close() })
	return bf
}

// TestBlockCCMatchesEdgeFile pins the rebuild contract: the block-CSR engine
// produces the same labels in the same number of passes as the raw EdgeFile
// engine, while reading fewer bytes per pass (compression) from a smaller
// file.
func TestBlockCCMatchesEdgeFile(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(300, 350, seed)
		ef := spill(t, g)
		bf := spillBlocks(t, g)
		want, wantSt, err := ef.ConnectedComponents(300)
		if err != nil {
			t.Fatal(err)
		}
		got, gotSt, err := bf.ConnectedComponents()
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("seed %d: label[%d] differs: edge %d block %d", seed, v, want[v], got[v])
			}
		}
		if wantSt.Passes != gotSt.Passes {
			t.Fatalf("seed %d: passes differ: edge %d block %d", seed, wantSt.Passes, gotSt.Passes)
		}
		if gotSt.BytesRead >= wantSt.BytesRead {
			t.Fatalf("seed %d: block engine read %d bytes, raw edge engine %d — no compression win",
				seed, gotSt.BytesRead, wantSt.BytesRead)
		}
		if bf.FileBytes() >= ef.Bytes {
			t.Fatalf("seed %d: block file %d B not smaller than edge file %d B", seed, bf.FileBytes(), ef.Bytes)
		}
	}
}

// TestBlockPageRankMatchesEdgeFile requires bitwise-identical ranks: both
// engines visit arcs in the same order with the same float operations, so
// the sums must agree exactly — and the block engine saves EdgeFile's
// up-front degree pass.
func TestBlockPageRankMatchesEdgeFile(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 3)
	ef := spill(t, g)
	bf := spillBlocks(t, g)
	const iters = 20
	want, wantSt, err := ef.PageRank(200, iters)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSt, err := bf.PageRank(iters)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("rank[%d] differs: edge %v block %v", v, want[v], got[v])
		}
	}
	if wantSt.Passes != iters+1 || gotSt.Passes != iters {
		t.Fatalf("pass counts: edge %d (want %d), block %d (want %d)", wantSt.Passes, iters+1, gotSt.Passes, iters)
	}
	// per-pass bytes are the compressed blocks exactly
	if gotSt.BytesRead != int64(iters)*(gotSt.BytesRead/int64(iters)) || gotSt.BytesRead <= 0 {
		t.Fatalf("block bytes read %d", gotSt.BytesRead)
	}
}

// TestOpenBlocksReopens covers the open-existing path used by benchstorage.
func TestOpenBlocksReopens(t *testing.T) {
	g := gen.Grid(8, 8)
	path := filepath.Join(t.TempDir(), "grid.gsb")
	bf, err := SpillBlocks(g, path, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}
	bf2, err := OpenBlocks(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bf2.Close()
	if bf2.NumVertices() != 64 || bf2.NumArcs() != g.NumArcs() {
		t.Fatalf("reopened geometry: %d vertices %d arcs", bf2.NumVertices(), bf2.NumArcs())
	}
}
