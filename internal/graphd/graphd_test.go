package graphd

import (
	"math"
	"path/filepath"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/pregel"
)

func spill(t *testing.T, g *graph.Graph) *EdgeFile {
	t.Helper()
	ef, err := WriteEdgeFile(g, filepath.Join(t.TempDir(), "edges.bin"))
	if err != nil {
		t.Fatal(err)
	}
	return ef
}

func TestEdgeFileRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 1)
	ef := spill(t, g)
	if ef.Arcs != g.NumArcs() {
		t.Fatalf("arcs %d want %d", ef.Arcs, g.NumArcs())
	}
	if ef.Bytes != g.NumArcs()*8 {
		t.Fatalf("bytes %d", ef.Bytes)
	}
}

func TestStreamedCCMatchesInMemory(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(300, 350, seed)
		ef := spill(t, g)
		labels, st, err := ef.ConnectedComponents(300)
		if err != nil {
			t.Fatal(err)
		}
		want, wantCount := graph.ConnectedComponents(g)
		seen := map[int32]bool{}
		for _, l := range labels {
			seen[l] = true
		}
		if len(seen) != wantCount {
			t.Fatalf("seed %d: %d components want %d", seed, len(seen), wantCount)
		}
		for u := 0; u < 300; u++ {
			for v := u + 1; v < 300; v += 13 {
				if (want[u] == want[v]) != (labels[u] == labels[v]) {
					t.Fatalf("seed %d: %d,%d disagree", seed, u, v)
				}
			}
		}
		// I/O accounting: bytes = passes × file size
		if st.BytesRead != int64(st.Passes)*ef.Bytes {
			t.Fatalf("bytes %d != passes %d × size %d", st.BytesRead, st.Passes, ef.Bytes)
		}
		// semi-external residency is O(V), far below O(V+E)
		if st.ResidentBytes >= ef.Bytes {
			t.Fatalf("resident %d not below edge bytes %d", st.ResidentBytes, ef.Bytes)
		}
	}
}

func TestStreamedPageRankMatchesPregel(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 3)
	ef := spill(t, g)
	want, _, _ := pregel.PageRank(g, 20, pregel.Config{Workers: 4})
	got, st, err := ef.PageRank(200, 20)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for v := range want {
		if d := math.Abs(want[v] - got[v]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-9 {
		t.Fatalf("streamed PageRank deviates by %g", maxDiff)
	}
	if st.Passes != 21 { // 1 degree pass + 20 rank passes
		t.Fatalf("passes = %d", st.Passes)
	}
}

func TestDegreeSum(t *testing.T) {
	g := gen.Grid(4, 4)
	ef := spill(t, g)
	deg, _, err := ef.DegreeSum(16)
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.V(0); v < 16; v++ {
		if int(deg[v]) != g.Degree(v) {
			t.Fatalf("degree[%d]=%d want %d", v, deg[v], g.Degree(v))
		}
	}
}
