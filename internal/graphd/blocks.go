package graphd

import (
	"fmt"

	"graphsys/internal/graph"
	"graphsys/internal/storage"
)

// BlockFile is the semi-external engine rebuilt on the shared out-of-core
// storage layer (internal/storage): adjacency lives in compressed block-CSR
// on disk and each iteration is one sequential block scan. Versus the raw
// EdgeFile baseline it reads the gap-encoded compressed bytes instead of
// 8 bytes per arc, and the resident degree table eliminates EdgeFile's
// up-front degree pass — the per-pass results (label updates, rank sums) are
// identical because the scan visits arcs in exactly EdgeFile's (u, v)
// write order.
type BlockFile struct {
	prov *storage.CachedProvider
	path string
}

// SpillBlocks writes g to a compressed block file at path and opens it for
// semi-external processing.
func SpillBlocks(g *graph.Graph, path string, opts storage.Options) (*BlockFile, error) {
	if _, err := storage.Write(path, g, opts); err != nil {
		return nil, fmt.Errorf("graphd: %w", err)
	}
	return OpenBlocks(path)
}

// OpenBlocks opens an existing block-CSR file for semi-external processing.
// Sequential scans stream through one private block buffer, so the cache
// budget is the minimum the storage layer accepts.
func OpenBlocks(path string) (*BlockFile, error) {
	f, err := storage.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graphd: %w", err)
	}
	budget := f.ResidentBytes() + f.MaxDecodedBytes()
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("graphd: %w", err)
	}
	prov, err := storage.OpenCached(path, budget, 1, storage.LRU)
	if err != nil {
		return nil, fmt.Errorf("graphd: %w", err)
	}
	return &BlockFile{prov: prov, path: path}, nil
}

// Close releases the underlying file handle.
func (bf *BlockFile) Close() error { return bf.prov.Close() }

// Path returns the block file's path.
func (bf *BlockFile) Path() string { return bf.path }

// NumVertices returns the number of vertices.
func (bf *BlockFile) NumVertices() int { return bf.prov.NumVertices() }

// NumArcs returns the number of stored arcs.
func (bf *BlockFile) NumArcs() int64 { return bf.prov.NumArcs() }

// FileBytes returns the compressed on-disk size.
func (bf *BlockFile) FileBytes() int64 { return bf.prov.File().FileBytes() }

// stats converts the provider's cumulative I/O into graphd accounting.
func (bf *BlockFile) stats(passes int, before storage.IOStats, stateBytes int64) Stats {
	d := bf.prov.Stats().Sub(before)
	return Stats{
		Passes:        passes,
		BytesRead:     d.BytesRead,
		ResidentBytes: bf.prov.Footprint().ResidentBytes + stateBytes,
	}
}

// ConnectedComponents is EdgeFile.ConnectedComponents over compressed blocks:
// HashMin label propagation with states in memory, one sequential scan per
// pass, until a pass changes nothing. Labels are identical to the EdgeFile
// run pass-for-pass.
func (bf *BlockFile) ConnectedComponents() ([]int32, Stats, error) {
	n := bf.prov.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	src := bf.prov.Handle(0)
	before := src.Stats()
	passes := 0
	for {
		changed := false
		err := src.Scan(func(u graph.V, adj []graph.V) error {
			lu := labels[u]
			for _, v := range adj {
				if lu < labels[v] {
					labels[v] = lu
					changed = true
				}
			}
			return nil
		})
		passes++
		if err != nil {
			return nil, bf.stats(passes, before, int64(n)*4), fmt.Errorf("graphd: %w", err)
		}
		if !changed {
			return labels, bf.stats(passes, before, int64(n)*4), nil
		}
	}
}

// PageRank is EdgeFile.PageRank over compressed blocks: ranks in memory, one
// scan per iteration. The resident degree table replaces EdgeFile's initial
// degree pass, so a run costs exactly iters passes.
func (bf *BlockFile) PageRank(iters int) ([]float64, Stats, error) {
	const d = 0.85
	n := bf.prov.NumVertices()
	src := bf.prov.Handle(0)
	before := src.Stats()
	stateBytes := int64(n) * 8 * 2
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	passes := 0
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		err := src.Scan(func(u graph.V, adj []graph.V) error {
			if deg := len(adj); deg > 0 {
				share := ranks[u] / float64(deg)
				for _, v := range adj {
					next[v] += share
				}
			}
			return nil
		})
		passes++
		if err != nil {
			return nil, bf.stats(passes, before, stateBytes), fmt.Errorf("graphd: %w", err)
		}
		for v := range next {
			next[v] = (1-d)/float64(n) + d*next[v]
		}
		ranks = next
	}
	return ranks, bf.stats(passes, before, stateBytes), nil
}
