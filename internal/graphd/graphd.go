// Package graphd implements semi-external vertex-centric processing in the
// style of GraphD (Yan et al., TPDS'18), the presenters' system for
// "distributed vertex-centric graph processing beyond the memory limit":
// vertex states stay in memory (O(|V|)), but the adjacency lists live on
// disk and are STREAMED sequentially once per iteration, so graphs whose
// edge lists exceed memory can still be processed. The trade is disk I/O
// per round — which this package meters exactly — against the O(|V|+|E|)
// resident footprint of the in-memory engine.
//
// The engine proper is BlockFile, built on the shared out-of-core layer
// (internal/storage): compressed block-CSR on disk, one sequential block
// scan per pass. EdgeFile is the original raw 8-bytes-per-arc format, kept
// as the uncompressed baseline the storage benchmark compares against (and
// as the interchange format of the pathqueries example).
package graphd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"graphsys/internal/graph"
)

// EdgeFile is an on-disk edge list in a fixed binary format (u, v as
// little-endian int32 pairs, both directions for undirected graphs).
type EdgeFile struct {
	Path  string
	Arcs  int64
	Bytes int64
}

// WriteEdgeFile spills g's arcs to a binary edge file at path.
func WriteEdgeFile(g *graph.Graph, path string) (*EdgeFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("graphd: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var buf [8]byte
	var arcs int64
	var writeErr error
	g.Edges(func(u, v graph.V) {
		if writeErr != nil {
			return
		}
		binary.LittleEndian.PutUint32(buf[0:4], uint32(u))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(v))
		if _, err := w.Write(buf[:]); err != nil {
			writeErr = err
		}
		arcs++
	})
	if writeErr != nil {
		return nil, fmt.Errorf("graphd: %w", writeErr)
	}
	if err := w.Flush(); err != nil {
		return nil, fmt.Errorf("graphd: %w", err)
	}
	return &EdgeFile{Path: path, Arcs: arcs, Bytes: arcs * 8}, nil
}

// Stats reports the I/O cost of a semi-external run.
type Stats struct {
	Passes    int
	BytesRead int64
	// ResidentBytes is the in-memory footprint: one int32 state per vertex.
	ResidentBytes int64
}

// ConnectedComponents computes connected components with vertex states in
// memory and the edge list streamed from disk once per pass (HashMin over a
// streamed edge file), until a pass changes nothing. Results match the
// in-memory algorithms exactly; Stats meters the disk traffic that replaces
// the O(|E|) resident adjacency.
func (ef *EdgeFile) ConnectedComponents(numVertices int) ([]int32, Stats, error) {
	labels := make([]int32, numVertices)
	for i := range labels {
		labels[i] = int32(i)
	}
	st := Stats{ResidentBytes: int64(numVertices) * 4}
	for {
		changed, n, err := ef.pass(labels)
		st.Passes++
		st.BytesRead += n
		if err != nil {
			return nil, st, err
		}
		if !changed {
			return labels, st, nil
		}
	}
}

// pass streams the edge file once, propagating min labels in both directions
// (the file already stores both arc directions).
func (ef *EdgeFile) pass(labels []int32) (bool, int64, error) {
	f, err := os.Open(ef.Path)
	if err != nil {
		return false, 0, fmt.Errorf("graphd: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var buf [8]byte
	changed := false
	var bytesRead int64
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return false, bytesRead, fmt.Errorf("graphd: %w", err)
		}
		bytesRead += 8
		u := int32(binary.LittleEndian.Uint32(buf[0:4]))
		v := int32(binary.LittleEndian.Uint32(buf[4:8]))
		if labels[u] < labels[v] {
			labels[v] = labels[u]
			changed = true
		}
	}
	return changed, bytesRead, nil
}

// DegreeSum streams the file once and returns per-vertex out-degrees — the
// building block for streamed PageRank-style passes.
func (ef *EdgeFile) DegreeSum(numVertices int) ([]int32, int64, error) {
	deg := make([]int32, numVertices)
	f, err := os.Open(ef.Path)
	if err != nil {
		return nil, 0, fmt.Errorf("graphd: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var buf [8]byte
	var n int64
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, n, fmt.Errorf("graphd: %w", err)
		}
		n += 8
		deg[int32(binary.LittleEndian.Uint32(buf[0:4]))]++
	}
	return deg, n, nil
}

// PageRank runs iters streamed PageRank passes: ranks in memory, edges
// streamed per pass. Returns ranks and I/O stats.
func (ef *EdgeFile) PageRank(numVertices, iters int) ([]float64, Stats, error) {
	const d = 0.85
	st := Stats{ResidentBytes: int64(numVertices) * 8 * 2}
	deg, n, err := ef.DegreeSum(numVertices)
	if err != nil {
		return nil, st, err
	}
	st.Passes++
	st.BytesRead += n
	ranks := make([]float64, numVertices)
	for i := range ranks {
		ranks[i] = 1 / float64(numVertices)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, numVertices)
		f, err := os.Open(ef.Path)
		if err != nil {
			return nil, st, fmt.Errorf("graphd: %w", err)
		}
		r := bufio.NewReaderSize(f, 1<<16)
		var buf [8]byte
		for {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				if err == io.EOF {
					break
				}
				f.Close()
				return nil, st, fmt.Errorf("graphd: %w", err)
			}
			st.BytesRead += 8
			u := int32(binary.LittleEndian.Uint32(buf[0:4]))
			v := int32(binary.LittleEndian.Uint32(buf[4:8]))
			if deg[u] > 0 {
				next[v] += ranks[u] / float64(deg[u])
			}
		}
		f.Close()
		st.Passes++
		for v := range next {
			next[v] = (1-d)/float64(numVertices) + d*next[v]
		}
		ranks = next
	}
	return ranks, st, nil
}
