// Package gpusim models the GPU execution environment the paper's Section 2
// GPU systems target, at the granularity their design arguments are made:
// warps of lanes executing in lock-step (divergence wastes lane-cycles), a
// bounded device memory (the reason BFS expansion explodes and systems like
// PBE/VSGM/SGSI partition the graph and G²-AIMD spills to host memory), and a
// coalesced-vs-random memory cost model (the reason early systems preferred
// BFS expansion over backtracking, per Jenkins et al.'s "lessons learned").
//
// On top of the device model the package implements the four GPU subgraph
// matching strategies the paper contrasts: BFS expansion (GSI, cuTS),
// AIMD-chunked BFS with host-memory buffering (G²-AIMD), warp-per-subtree
// DFS with work stealing (STMatch, T-DFS), and the BFS→DFS hybrid (EGSM).
package gpusim

import (
	"fmt"
	"sync"
)

// Device describes a simulated GPU.
type Device struct {
	NumSMs      int   // concurrently executing warps
	WarpSize    int   // lanes per warp
	MemorySlots int64 // device memory capacity, in partial-match vertex slots
}

// DefaultDevice is a small GPU: 8 SMs × 32 lanes, 1M vertex slots.
func DefaultDevice() *Device {
	return &Device{NumSMs: 8, WarpSize: 32, MemorySlots: 1 << 20}
}

// Metrics accumulates simulated execution counters.
type Metrics struct {
	WarpCycles      int64 // total warp-steps executed (cost ∝ wall time)
	DivergenceLoss  int64 // lane-cycles idle due to intra-warp divergence
	MemTransactions int64 // memory transactions (coalesced accesses batched)
	RandomAccesses  int64 // uncoalesced accesses (1 transaction each)
	PeakMemory      int64 // peak device-memory slots in use
	HostSpillSlots  int64 // slots spilled to host memory (G²-AIMD buffering)
	OOM             bool  // a pure-BFS run exceeded device memory
	Steals          int64 // warp-level work steals (DFS engines)
	ChunkAdjust     int64 // AIMD chunk-size adjustments
}

func (m Metrics) String() string {
	return fmt.Sprintf("gpu{cycles=%d div=%d memtx=%d rand=%d peak=%d spill=%d oom=%v steals=%d}",
		m.WarpCycles, m.DivergenceLoss, m.MemTransactions, m.RandomAccesses,
		m.PeakMemory, m.HostSpillSlots, m.OOM, m.Steals)
}

// memTracker tracks device-memory usage against the capacity.
type memTracker struct {
	mu   sync.Mutex
	used int64
	peak int64
	cap  int64
}

func (t *memTracker) alloc(n int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.used+n > t.cap {
		return false
	}
	t.used += n
	if t.used > t.peak {
		t.peak = t.used
	}
	return true
}

func (t *memTracker) free(n int64) {
	t.mu.Lock()
	t.used -= n
	t.mu.Unlock()
}

// warpCost simulates one warp instruction over laneWork: the warp runs for
// max(laneWork) cycles; lanes with less work idle (divergence). Returns
// (cycles, divergenceLoss).
func warpCost(laneWork []int64) (int64, int64) {
	var max int64
	for _, w := range laneWork {
		if w > max {
			max = w
		}
	}
	var loss int64
	for _, w := range laneWork {
		loss += max - w
	}
	return max, loss
}

// coalescedTransactions returns the number of memory transactions needed to
// read n consecutive items with warpSize-wide coalescing.
func coalescedTransactions(n int64, warpSize int) int64 {
	if n <= 0 {
		return 0
	}
	return (n + int64(warpSize) - 1) / int64(warpSize)
}
