package gpusim

import (
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/match"
)

var (
	triangle = graph.FromEdges(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}})
	cycle4   = graph.FromEdges(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
)

func bigDevice() *Device {
	return &Device{NumSMs: 4, WarpSize: 32, MemorySlots: 1 << 30}
}

func tinyDevice() *Device {
	return &Device{NumSMs: 4, WarpSize: 32, MemorySlots: 2000}
}

func TestAllEnginesAgreeWithCPU(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		g := gen.ErdosRenyi(80, 600, seed)
		for _, p := range []*graph.Graph{triangle, cycle4} {
			plan := match.OptimizedPlan(p)
			want, _ := match.Count(g, plan, 4)
			dev := bigDevice()
			if got, m := BFSMatch(g, plan, dev); got != want || m.OOM {
				t.Fatalf("BFS: got %d want %d (oom=%v)", got, want, m.OOM)
			}
			if got, _ := AIMDMatch(g, plan, dev); got != want {
				t.Fatalf("AIMD: got %d want %d", got, want)
			}
			if got, _ := DFSWarpMatch(g, plan, dev); got != want {
				t.Fatalf("DFSWarp: got %d want %d", got, want)
			}
			if got, _ := HybridMatch(g, plan, dev); got != want {
				t.Fatalf("Hybrid: got %d want %d", got, want)
			}
			assign := make([]int, g.NumVertices())
			for v := range assign {
				assign[v] = v % 4
			}
			if got, m := PartitionedBFSMatch(g, plan, dev, assign, 4); got != want || m.OOM {
				t.Fatalf("Partitioned: got %d want %d", got, want)
			}
		}
	}
}

func TestBFSOOMsWhereOthersSurvive(t *testing.T) {
	g := gen.BarabasiAlbert(300, 8, 1)
	plan := match.OptimizedPlan(cycle4)
	dev := tinyDevice()
	wantCount, _ := match.Count(g, plan, 4)

	_, mBFS := BFSMatch(g, plan, dev)
	if !mBFS.OOM {
		t.Fatalf("expected BFS OOM at %d slots (peak would be large)", dev.MemorySlots)
	}
	gotA, mA := AIMDMatch(g, plan, dev)
	if gotA != wantCount {
		t.Fatalf("AIMD under memory pressure: got %d want %d", gotA, wantCount)
	}
	if mA.HostSpillSlots == 0 {
		t.Fatal("AIMD should have spilled to host under pressure")
	}
	gotD, mD := DFSWarpMatch(g, plan, dev)
	if gotD != wantCount {
		t.Fatalf("DFS under memory pressure: got %d want %d", gotD, wantCount)
	}
	if mD.PeakMemory > 64*4 {
		t.Fatalf("DFS peak memory %d should be tiny", mD.PeakMemory)
	}
	gotH, _ := HybridMatch(g, plan, dev)
	if gotH != wantCount {
		t.Fatalf("Hybrid under memory pressure: got %d want %d", gotH, wantCount)
	}
}

func TestHybridAvoidsDFSWhenMemoryAmple(t *testing.T) {
	g := gen.ErdosRenyi(60, 400, 2)
	plan := match.OptimizedPlan(triangle)
	_, m := HybridMatch(g, plan, bigDevice())
	if m.RandomAccesses != 0 {
		t.Fatalf("ample memory should keep hybrid in BFS mode, random=%d", m.RandomAccesses)
	}
	_, m2 := HybridMatch(g, plan, &Device{NumSMs: 2, WarpSize: 32, MemorySlots: 300})
	if m2.RandomAccesses == 0 {
		t.Fatal("tiny memory should force hybrid into DFS phase")
	}
}

func TestDFSHasRandomAccessesBFSCoalesced(t *testing.T) {
	g := gen.ErdosRenyi(60, 400, 3)
	plan := match.OptimizedPlan(triangle)
	dev := bigDevice()
	_, mB := BFSMatch(g, plan, dev)
	_, mD := DFSWarpMatch(g, plan, dev)
	if mB.RandomAccesses != 0 {
		t.Fatal("BFS should be fully coalesced")
	}
	if mD.RandomAccesses == 0 {
		t.Fatal("DFS should have uncoalesced accesses")
	}
	if mB.PeakMemory <= mD.PeakMemory {
		t.Fatalf("BFS peak %d should exceed DFS peak %d", mB.PeakMemory, mD.PeakMemory)
	}
}

func TestAIMDChunkAdaptation(t *testing.T) {
	g := gen.BarabasiAlbert(200, 6, 4)
	plan := match.OptimizedPlan(triangle)
	_, m := AIMDMatch(g, plan, bigDevice())
	if m.ChunkAdjust == 0 {
		t.Fatal("AIMD should adjust chunk size")
	}
	if m.OOM {
		t.Fatal("AIMD must never OOM")
	}
}

func TestPartitionedPeakBelowMonolithic(t *testing.T) {
	g := gen.BarabasiAlbert(250, 6, 5)
	plan := match.OptimizedPlan(triangle)
	dev := bigDevice()
	_, mono := BFSMatch(g, plan, dev)
	assign := make([]int, g.NumVertices())
	for v := range assign {
		assign[v] = v % 8
	}
	cnt, part := PartitionedBFSMatch(g, plan, dev, assign, 8)
	wantCount, _ := match.Count(g, plan, 4)
	if cnt != wantCount {
		t.Fatalf("partitioned count %d want %d", cnt, wantCount)
	}
	if part.PeakMemory >= mono.PeakMemory {
		t.Fatalf("partitioned peak %d should be below monolithic %d", part.PeakMemory, mono.PeakMemory)
	}
	if part.HostSpillSlots == 0 {
		t.Fatal("cross-partition accesses expected")
	}
}

func TestWarpCost(t *testing.T) {
	cyc, div := warpCost([]int64{3, 1, 2})
	if cyc != 3 || div != 2+1 {
		t.Fatalf("warpCost = (%d,%d)", cyc, div)
	}
	cyc, div = warpCost(nil)
	if cyc != 0 || div != 0 {
		t.Fatal("empty warp")
	}
}

func TestCoalescedTransactions(t *testing.T) {
	if coalescedTransactions(0, 32) != 0 {
		t.Fatal("zero items")
	}
	if coalescedTransactions(32, 32) != 1 {
		t.Fatal("exact warp")
	}
	if coalescedTransactions(33, 32) != 2 {
		t.Fatal("one over")
	}
}

func TestMemTracker(t *testing.T) {
	mt := &memTracker{cap: 100}
	if !mt.alloc(60) || !mt.alloc(40) {
		t.Fatal("alloc within cap failed")
	}
	if mt.alloc(1) {
		t.Fatal("alloc over cap succeeded")
	}
	mt.free(50)
	if !mt.alloc(50) {
		t.Fatal("re-alloc after free failed")
	}
	if mt.peak != 100 {
		t.Fatalf("peak = %d", mt.peak)
	}
}

func TestEmptyPatternOnDevice(t *testing.T) {
	plan := match.NaivePlan(graph.NewBuilder(0, false).Build())
	g := gen.Clique(5)
	if c, _ := BFSMatch(g, plan, bigDevice()); c != 0 {
		t.Fatal("empty pattern matched")
	}
	if c, _ := DFSWarpMatch(g, plan, bigDevice()); c != 0 {
		t.Fatal("empty pattern matched (dfs)")
	}
}
