package gpusim

import (
	"graphsys/internal/graph"
	"graphsys/internal/match"
)

// PartitionedBFSMatch is the PBE/VSGM/SGSI strategy for graphs (or
// intermediate results) larger than device memory: the vertex set is split
// into numParts partitions, one partition's root candidates are processed at
// a time with BFS expansion, and any adjacency access that leaves the loaded
// partition is charged as a host transfer (Metrics.HostSpillSlots). Device
// memory is recycled between partitions, so the peak is roughly 1/numParts
// of monolithic BFS.
func PartitionedBFSMatch(g *graph.Graph, plan *match.Plan, dev *Device, assign []int, numParts int) (int64, Metrics) {
	var m Metrics
	k := len(plan.Order)
	if k == 0 {
		return 0, m
	}
	allRoots := plan.CandidatesForPrefix(g, nil, nil)
	m.MemTransactions += coalescedTransactions(int64(g.NumVertices()), dev.WarpSize)
	var total int64
	for p := 0; p < numParts; p++ {
		mem := &memTracker{cap: dev.MemorySlots}
		var level [][]graph.V
		for _, r := range allRoots {
			if assign[r] == p {
				level = append(level, []graph.V{r})
			}
		}
		mem.alloc(int64(len(level)))
		for depth := 1; depth < k && len(level) > 0; depth++ {
			var next [][]graph.V
			for lo := 0; lo < len(level); lo += dev.WarpSize {
				hi := lo + dev.WarpSize
				if hi > len(level) {
					hi = len(level)
				}
				lane := make([]int64, 0, hi-lo)
				var produced int64
				for _, prefix := range level[lo:hi] {
					cands := plan.CandidatesForPrefix(g, prefix, nil)
					lane = append(lane, int64(len(cands)))
					produced += int64(len(cands))
					for _, c := range cands {
						if assign[c] != p {
							m.HostSpillSlots++ // boundary fetch from host
						}
						next = append(next, append(append(make([]graph.V, 0, depth+1), prefix...), c))
					}
				}
				cyc, div := warpCost(lane)
				m.WarpCycles += cyc
				m.DivergenceLoss += div
				m.MemTransactions += coalescedTransactions(produced, dev.WarpSize)
			}
			if !mem.alloc(int64(len(next)) * int64(depth+1)) {
				m.OOM = true
				if mem.peak > m.PeakMemory {
					m.PeakMemory = mem.peak
				}
				return 0, m
			}
			mem.free(int64(len(level)) * int64(depth))
			level = next
		}
		total += int64(len(level))
		if mem.peak > m.PeakMemory {
			m.PeakMemory = mem.peak
		}
	}
	return total, m
}
