package gpusim

import (
	"sync"
	"sync/atomic"

	"graphsys/internal/graph"
	"graphsys/internal/match"
)

// BFSMatch counts pattern matches with pure level-synchronous BFS expansion
// in device memory — the GSI/cuTS strategy. All partial matches of length i
// are materialised before length i+1; accesses are coalesced, divergence is
// low, but memory grows with the intermediate-result explosion. If a level
// does not fit in device memory the run aborts with Metrics.OOM set (the
// failure mode that motivated PBE/VSGM/SGSI partitioning and G²-AIMD).
func BFSMatch(g *graph.Graph, plan *match.Plan, dev *Device) (int64, Metrics) {
	var m Metrics
	mem := &memTracker{cap: dev.MemorySlots}
	k := len(plan.Order)
	if k == 0 {
		return 0, m
	}
	level := [][]graph.V{}
	roots := plan.CandidatesForPrefix(g, nil, nil)
	m.MemTransactions += coalescedTransactions(int64(g.NumVertices()), dev.WarpSize)
	for _, r := range roots {
		level = append(level, []graph.V{r})
	}
	if !mem.alloc(int64(len(level))) {
		m.OOM = true
		m.PeakMemory = mem.peak
		return 0, m
	}
	for depth := 1; depth < k; depth++ {
		var next [][]graph.V
		// warp-batch the expansion of this level
		for lo := 0; lo < len(level); lo += dev.WarpSize {
			hi := lo + dev.WarpSize
			if hi > len(level) {
				hi = len(level)
			}
			lane := make([]int64, 0, hi-lo)
			var produced int64
			for _, prefix := range level[lo:hi] {
				cands := plan.CandidatesForPrefix(g, prefix, nil)
				lane = append(lane, int64(len(cands)))
				produced += int64(len(cands))
				for _, c := range cands {
					child := append(append(make([]graph.V, 0, depth+1), prefix...), c)
					next = append(next, child)
				}
			}
			cyc, div := warpCost(lane)
			m.WarpCycles += cyc
			m.DivergenceLoss += div
			m.MemTransactions += coalescedTransactions(produced, dev.WarpSize)
		}
		if !mem.alloc(int64(len(next)) * int64(depth+1)) {
			m.OOM = true
			m.PeakMemory = mem.peak
			return 0, m
		}
		mem.free(int64(len(level)) * int64(depth))
		level = next
	}
	m.PeakMemory = mem.peak
	return int64(len(level)), m
}

// AIMDMatch is the G²-AIMD strategy: BFS-style extension executed chunk by
// chunk, with the chunk size adapted additively upward while memory is
// plentiful and multiplicatively downward when a chunk's output would
// overflow device memory; overflow is buffered in host memory instead of
// aborting. The result is BFS-like coalescing without the OOM failure mode.
func AIMDMatch(g *graph.Graph, plan *match.Plan, dev *Device) (int64, Metrics) {
	var m Metrics
	mem := &memTracker{cap: dev.MemorySlots}
	k := len(plan.Order)
	if k == 0 {
		return 0, m
	}
	chunk := int64(dev.WarpSize) // initial chunk size
	const additive = 32
	var count int64

	var process func(depth int, prefixes [][]graph.V)
	process = func(depth int, prefixes [][]graph.V) {
		if depth == k {
			count += int64(len(prefixes))
			return
		}
		for lo := 0; lo < len(prefixes); {
			c := int(chunk)
			hi := lo + c
			if hi > len(prefixes) {
				hi = len(prefixes)
			}
			batch := prefixes[lo:hi]
			lo = hi
			// expand the chunk with warp batching
			var next [][]graph.V
			for blo := 0; blo < len(batch); blo += dev.WarpSize {
				bhi := blo + dev.WarpSize
				if bhi > len(batch) {
					bhi = len(batch)
				}
				lane := make([]int64, 0, bhi-blo)
				var produced int64
				for _, prefix := range batch[blo:bhi] {
					cands := plan.CandidatesForPrefix(g, prefix, nil)
					lane = append(lane, int64(len(cands)))
					produced += int64(len(cands))
					for _, cd := range cands {
						next = append(next, append(append(make([]graph.V, 0, depth+1), prefix...), cd))
					}
				}
				cyc, div := warpCost(lane)
				m.WarpCycles += cyc
				m.DivergenceLoss += div
				m.MemTransactions += coalescedTransactions(produced, dev.WarpSize)
			}
			slots := int64(len(next)) * int64(depth+1)
			if mem.alloc(slots) {
				// additive increase
				chunk += additive
				m.ChunkAdjust++
				process(depth+1, next)
				mem.free(slots)
			} else {
				// multiplicative decrease + host buffering: the children are
				// staged through host memory and processed in smaller chunks
				m.HostSpillSlots += slots
				if chunk > int64(dev.WarpSize) {
					chunk /= 2
					m.ChunkAdjust++
				}
				process(depth+1, next)
			}
		}
	}
	roots := plan.CandidatesForPrefix(g, nil, nil)
	m.MemTransactions += coalescedTransactions(int64(g.NumVertices()), dev.WarpSize)
	rootPrefixes := make([][]graph.V, 0, len(roots))
	for _, r := range roots {
		rootPrefixes = append(rootPrefixes, []graph.V{r})
	}
	process(1, rootPrefixes)
	m.PeakMemory = mem.peak
	return count, m
}

// DFSWarpMatch is the STMatch/T-DFS strategy: each warp performs depth-first
// matching over a chunk of independent search subtrees using its own stack
// (device memory O(warps·k), never OOM), with idle warps stealing root tasks
// from busy ones. Accesses are uncoalesced (backtracking jumps around the
// graph), the trade-off Jenkins et al. identified.
func DFSWarpMatch(g *graph.Graph, plan *match.Plan, dev *Device) (int64, Metrics) {
	var m Metrics
	k := len(plan.Order)
	if k == 0 {
		return 0, m
	}
	roots := plan.CandidatesForPrefix(g, nil, nil)
	var qmu sync.Mutex
	queue := make([][]graph.V, 0, len(roots))
	for _, r := range roots {
		queue = append(queue, []graph.V{r})
	}
	take := func() ([]graph.V, bool) {
		qmu.Lock()
		defer qmu.Unlock()
		if len(queue) == 0 {
			return nil, false
		}
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		return t, true
	}
	var count, cycles, divloss, random, steals atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < dev.NumSMs; w++ {
		wg.Add(1)
		//lint:allow nakedgo simulated-GPU warp pool, joined via WaitGroup; models SIMT lanes rather than cluster workers
		go func(w int) {
			defer wg.Done()
			firstGrab := true
			for {
				task, ok := take()
				if !ok {
					return
				}
				if !firstGrab {
					steals.Add(1) // subsequent grabs model stealing leftover roots
				}
				firstGrab = false
				// DFS from this prefix with an explicit per-warp stack
				stack := [][]graph.V{task}
				for len(stack) > 0 {
					prefix := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if len(prefix) == k {
						count.Add(1)
						continue
					}
					cands := plan.CandidatesForPrefix(g, prefix, nil)
					// warp lanes scan candidates 32 at a time; partial last
					// group wastes lanes (intra-warp divergence)
					groups := coalescedTransactions(int64(len(cands)), dev.WarpSize)
					cycles.Add(groups)
					if groups > 0 {
						divloss.Add(groups*int64(dev.WarpSize) - int64(len(cands)))
					}
					random.Add(int64(len(cands))) // uncoalesced adjacency probes
					for _, c := range cands {
						stack = append(stack, append(append(make([]graph.V, 0, len(prefix)+1), prefix...), c))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	m.WarpCycles = cycles.Load()
	m.DivergenceLoss = divloss.Load()
	m.RandomAccesses = random.Load()
	m.Steals = steals.Load()
	m.PeakMemory = int64(dev.NumSMs * k) // per-warp stacks only
	return count.Load(), m
}

// HybridMatch is the EGSM strategy: run the efficient BFS expansion while
// device memory permits; when the next level would overflow, fall back to
// DFS for the remaining query vertices, seeding the per-warp stacks with the
// current level's partial matches.
func HybridMatch(g *graph.Graph, plan *match.Plan, dev *Device) (int64, Metrics) {
	var m Metrics
	mem := &memTracker{cap: dev.MemorySlots}
	k := len(plan.Order)
	if k == 0 {
		return 0, m
	}
	level := [][]graph.V{}
	roots := plan.CandidatesForPrefix(g, nil, nil)
	m.MemTransactions += coalescedTransactions(int64(g.NumVertices()), dev.WarpSize)
	for _, r := range roots {
		level = append(level, []graph.V{r})
	}
	mem.alloc(int64(len(level)))
	depth := 1
	for ; depth < k; depth++ {
		var next [][]graph.V
		for lo := 0; lo < len(level); lo += dev.WarpSize {
			hi := lo + dev.WarpSize
			if hi > len(level) {
				hi = len(level)
			}
			lane := make([]int64, 0, hi-lo)
			var produced int64
			for _, prefix := range level[lo:hi] {
				cands := plan.CandidatesForPrefix(g, prefix, nil)
				lane = append(lane, int64(len(cands)))
				produced += int64(len(cands))
				for _, c := range cands {
					next = append(next, append(append(make([]graph.V, 0, depth+1), prefix...), c))
				}
			}
			cyc, div := warpCost(lane)
			m.WarpCycles += cyc
			m.DivergenceLoss += div
			m.MemTransactions += coalescedTransactions(produced, dev.WarpSize)
		}
		if !mem.alloc(int64(len(next)) * int64(depth+1)) {
			// memory exhausted: DFS takeover from the current level
			cnt, dm := dfsFromPrefixes(g, plan, dev, level, k)
			m.WarpCycles += dm.WarpCycles
			m.DivergenceLoss += dm.DivergenceLoss
			m.RandomAccesses += dm.RandomAccesses
			m.Steals += dm.Steals
			m.PeakMemory = mem.peak
			return cnt, m
		}
		mem.free(int64(len(level)) * int64(depth))
		level = next
	}
	m.PeakMemory = mem.peak
	return int64(len(level)), m
}

// dfsFromPrefixes runs the DFS-warp engine seeded with arbitrary-depth
// prefixes (EGSM's fallback phase).
func dfsFromPrefixes(g *graph.Graph, plan *match.Plan, dev *Device, seeds [][]graph.V, k int) (int64, Metrics) {
	var m Metrics
	var qmu sync.Mutex
	queue := append([][]graph.V(nil), seeds...)
	take := func() ([]graph.V, bool) {
		qmu.Lock()
		defer qmu.Unlock()
		if len(queue) == 0 {
			return nil, false
		}
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		return t, true
	}
	var count, cycles, divloss, random, steals atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < dev.NumSMs; w++ {
		wg.Add(1)
		//lint:allow nakedgo simulated-GPU warp pool, joined via WaitGroup; models SIMT lanes rather than cluster workers
		go func() {
			defer wg.Done()
			first := true
			for {
				task, ok := take()
				if !ok {
					return
				}
				if !first {
					steals.Add(1)
				}
				first = false
				stack := [][]graph.V{task}
				for len(stack) > 0 {
					prefix := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if len(prefix) == k {
						count.Add(1)
						continue
					}
					cands := plan.CandidatesForPrefix(g, prefix, nil)
					groups := coalescedTransactions(int64(len(cands)), dev.WarpSize)
					cycles.Add(groups)
					if groups > 0 {
						divloss.Add(groups*int64(dev.WarpSize) - int64(len(cands)))
					}
					random.Add(int64(len(cands)))
					for _, c := range cands {
						stack = append(stack, append(append(make([]graph.V, 0, len(prefix)+1), prefix...), c))
					}
				}
			}
		}()
	}
	wg.Wait()
	m.WarpCycles = cycles.Load()
	m.DivergenceLoss = divloss.Load()
	m.RandomAccesses = random.Load()
	m.Steals = steals.Load()
	return count.Load(), m
}
