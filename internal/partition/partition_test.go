package partition

import (
	"testing"
	"testing/quick"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func checkValid(t *testing.T, p *Partition, n, k int) {
	t.Helper()
	if len(p.Assign) != n {
		t.Fatalf("assign length %d want %d", len(p.Assign), n)
	}
	for v, a := range p.Assign {
		if a < 0 || a >= k {
			t.Fatalf("vertex %d assigned to %d (k=%d)", v, a, k)
		}
	}
}

func TestHashPartition(t *testing.T) {
	g := gen.Grid(10, 10)
	p := Hash(g, 4)
	checkValid(t, p, 100, 4)
	if p.Imbalance() > 1.5 {
		t.Fatalf("hash imbalance %f", p.Imbalance())
	}
}

func TestRangePartitionOnGrid(t *testing.T) {
	g := gen.Grid(10, 10)
	pr := Range(g, 4)
	ph := Hash(g, 4)
	checkValid(t, pr, 100, 4)
	// range respects grid locality far better than hash
	if pr.EdgeCut(g) >= ph.EdgeCut(g) {
		t.Fatalf("range cut %d >= hash cut %d on grid", pr.EdgeCut(g), ph.EdgeCut(g))
	}
}

func TestLDGBeatsHashOnCommunities(t *testing.T) {
	c := gen.PlantedPartitionSparse(800, 4, 10, 1, 3)
	pl := LDG(c.Graph, 4)
	ph := Hash(c.Graph, 4)
	checkValid(t, pl, 800, 4)
	if pl.Imbalance() > 1.6 {
		t.Fatalf("LDG imbalance %f", pl.Imbalance())
	}
	if pl.EdgeCut(c.Graph) >= ph.EdgeCut(c.Graph) {
		t.Fatalf("LDG cut %d >= hash cut %d", pl.EdgeCut(c.Graph), ph.EdgeCut(c.Graph))
	}
}

func TestMetisQuality(t *testing.T) {
	c := gen.PlantedPartitionSparse(1000, 4, 12, 1, 7)
	pm := Metis(c.Graph, 4)
	ph := Hash(c.Graph, 4)
	checkValid(t, pm, 1000, 4)
	if pm.Imbalance() > 1.8 {
		t.Fatalf("metis imbalance %f", pm.Imbalance())
	}
	cm, chh := pm.EdgeCut(c.Graph), ph.EdgeCut(c.Graph)
	if cm >= chh {
		t.Fatalf("metis cut %d >= hash cut %d", cm, chh)
	}
	// multilevel should cut well under half of hash's cut on a community graph
	if float64(cm) > 0.6*float64(chh) {
		t.Logf("warning: metis cut %d vs hash %d weaker than expected", cm, chh)
	}
}

func TestMetisOnTinyAndEdgelessGraphs(t *testing.T) {
	empty := graph.NewBuilder(10, false).Build()
	p := Metis(empty, 3)
	checkValid(t, p, 10, 3)

	k3 := gen.Clique(3)
	p2 := Metis(k3, 2)
	checkValid(t, p2, 3, 2)
}

func TestBFSVoronoi(t *testing.T) {
	c := gen.PlantedPartitionSparse(600, 6, 10, 0.5, 9)
	// one seed in each community
	var seeds []graph.V
	seen := map[int]bool{}
	for v := 0; v < 600; v++ {
		if !seen[c.Membership[v]] {
			seen[c.Membership[v]] = true
			seeds = append(seeds, graph.V(v))
		}
	}
	p := BFSVoronoi(c.Graph, seeds, 3)
	checkValid(t, p, 600, 3)
	ph := Hash(c.Graph, 3)
	if p.EdgeCut(c.Graph) >= ph.EdgeCut(c.Graph) {
		t.Fatalf("voronoi cut %d >= hash cut %d", p.EdgeCut(c.Graph), ph.EdgeCut(c.Graph))
	}
}

func TestBFSVoronoiUnreachable(t *testing.T) {
	// two disjoint triangles, seed only in the first
	g := graph.FromEdges(6, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	p := BFSVoronoi(g, []graph.V{0}, 2)
	checkValid(t, p, 6, 2)
}

func TestVertexCut(t *testing.T) {
	c := gen.PlantedPartitionSparse(400, 4, 8, 1, 5)
	vc := NewVertexCut(c.Graph, 4)
	if vc.Replication < 1 {
		t.Fatalf("replication %f < 1", vc.Replication)
	}
	// every edge assigned; endpoints replicated on the edge's part
	count := 0
	c.Graph.EdgesOnce(func(u, v graph.V) {
		p, ok := vc.EdgePart[[2]graph.V{u, v}]
		if !ok {
			t.Fatalf("edge (%d,%d) unassigned", u, v)
		}
		if !vc.Replicas[u][p] || !vc.Replicas[v][p] {
			t.Fatalf("edge (%d,%d) endpoints not replicated on part %d", u, v, p)
		}
		count++
	})
	if count == 0 {
		t.Fatal("no edges")
	}
	// greedy vertex cut should replicate far less than full replication
	if vc.Replication > float64(vc.K) {
		t.Fatalf("replication %f exceeds k", vc.Replication)
	}
}

func TestFeatureDim(t *testing.T) {
	fd := NewFeatureDim(10, 4)
	total := 0
	for w := 0; w < 4; w++ {
		if fd.Width(w) < 2 || fd.Width(w) > 3 {
			t.Fatalf("worker %d width %d", w, fd.Width(w))
		}
		total += fd.Width(w)
	}
	if total != 10 {
		t.Fatalf("widths sum to %d", total)
	}
	if fd.Lo[0] != 0 || fd.Hi[3] != 10 {
		t.Fatal("dims not covering [0,10)")
	}
}

func TestImbalanceAndSizes(t *testing.T) {
	p := &Partition{Assign: []int{0, 0, 0, 1}, K: 2}
	s := p.Sizes()
	if s[0] != 3 || s[1] != 1 {
		t.Fatalf("sizes %v", s)
	}
	if p.Imbalance() != 1.5 {
		t.Fatalf("imbalance %f", p.Imbalance())
	}
}

func TestPartitionersValidProperty(t *testing.T) {
	// property: every partitioner yields a complete, in-range assignment on
	// arbitrary random graphs, and Sizes() sums to n
	f := func(seedRaw uint16, kRaw uint8) bool {
		seed := int64(seedRaw)
		k := 2 + int(kRaw%6)
		n := 30 + int(seedRaw%120)
		g := gen.ErdosRenyi(n, int64(2*n), seed)
		for _, p := range []*Partition{
			Hash(g, k), Range(g, k), LDG(g, k), Metis(g, k),
			BFSVoronoi(g, []graph.V{0, graph.V(n / 2)}, k),
		} {
			if len(p.Assign) != n || p.K != k {
				return false
			}
			total := 0
			for _, s := range p.Sizes() {
				total += s
			}
			if total != n {
				return false
			}
			for _, a := range p.Assign {
				if a < 0 || a >= k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexCutCoversAllEdgesProperty(t *testing.T) {
	f := func(seedRaw uint16) bool {
		n := 20 + int(seedRaw%60)
		g := gen.ErdosRenyi(n, int64(3*n), int64(seedRaw))
		vc := NewVertexCut(g, 3)
		ok := true
		g.EdgesOnce(func(u, v graph.V) {
			if _, assigned := vc.EdgePart[[2]graph.V{u, v}]; !assigned {
				ok = false
			}
		})
		return ok && vc.Replication >= 1 && vc.Replication <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
