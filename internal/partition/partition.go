// Package partition implements the graph partitioning strategies the paper's
// GNN section compares: hash and range placement, LDG streaming, a METIS-like
// multilevel edge-cut minimiser (DistDGL/DGCL), BFS-Voronoi over-partitioning
// from seed vertices (ByteGNN/BGL), vertex-cut edge partitioning (DistGNN),
// and P³-style feature-dimension partitioning.
package partition

import (
	"math/rand"
	"sort"

	"graphsys/internal/graph"
)

// Partition assigns every vertex to one of K parts.
type Partition struct {
	Assign []int // len = NumVertices
	K      int
}

// EdgeCut returns the number of undirected edges crossing parts.
func (p *Partition) EdgeCut(g *graph.Graph) int64 {
	var cut int64
	g.EdgesOnce(func(u, v graph.V) {
		if p.Assign[u] != p.Assign[v] {
			cut++
		}
	})
	return cut
}

// Sizes returns the number of vertices in each part.
func (p *Partition) Sizes() []int {
	s := make([]int, p.K)
	for _, a := range p.Assign {
		s[a]++
	}
	return s
}

// Imbalance returns maxPartSize / idealSize (1.0 = perfectly balanced).
func (p *Partition) Imbalance() float64 {
	sizes := p.Sizes()
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	ideal := float64(len(p.Assign)) / float64(p.K)
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

// Hash assigns vertices to parts by multiplicative hashing — the zero-effort
// baseline with ~(1-1/k) of edges cut on any graph.
func Hash(g *graph.Graph, k int) *Partition {
	p := &Partition{Assign: make([]int, g.NumVertices()), K: k}
	for v := range p.Assign {
		h := uint64(v) * 0x9e3779b97f4a7c15
		p.Assign[v] = int(h % uint64(k))
	}
	return p
}

// Range assigns contiguous vertex-id ranges to parts. On graphs with id
// locality (grids, crawl orders) this beats hashing.
func Range(g *graph.Graph, k int) *Partition {
	n := g.NumVertices()
	p := &Partition{Assign: make([]int, n), K: k}
	for v := 0; v < n; v++ {
		p.Assign[v] = v * k / n
	}
	return p
}

// LDG implements Linear Deterministic Greedy streaming partitioning:
// vertices arrive in order and each is placed on the part holding most of
// its already-placed neighbors, damped by a capacity penalty.
func LDG(g *graph.Graph, k int) *Partition {
	n := g.NumVertices()
	p := &Partition{Assign: make([]int, n), K: k}
	for i := range p.Assign {
		p.Assign[i] = -1
	}
	capacity := float64(n)/float64(k) + 1
	sizes := make([]float64, k)
	neigh := make([]float64, k)
	for v := 0; v < n; v++ {
		for i := range neigh {
			neigh[i] = 0
		}
		for _, w := range g.Neighbors(graph.V(v)) {
			if a := p.Assign[w]; a >= 0 {
				neigh[a]++
			}
		}
		best, bestScore := 0, -1.0
		for i := 0; i < k; i++ {
			score := neigh[i] * (1 - sizes[i]/capacity)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		p.Assign[v] = best
		sizes[best]++
	}
	return p
}

// Metis is a METIS-like multilevel partitioner: (1) coarsen by heavy-edge
// matching until the graph is small, (2) greedily partition the coarsest
// graph, (3) project back, refining with boundary Kernighan–Lin moves at each
// level. It is the stand-in for METIS used by DistDGL and DGCL.
func Metis(g *graph.Graph, k int) *Partition {
	return metisRecursive(g, k, 0)
}

const metisCoarsestSize = 64

func metisRecursive(g *graph.Graph, k int, depth int) *Partition {
	n := g.NumVertices()
	if n <= metisCoarsestSize || depth > 30 {
		return greedyGrow(g, k)
	}
	// --- coarsen: heavy-edge matching (unweighted ⇒ random maximal matching
	// biased to low-degree first, which approximates HEM on simple graphs)
	match := make([]graph.V, n)
	for i := range match {
		match[i] = -1
	}
	order := make([]graph.V, n)
	for i := range order {
		order[i] = graph.V(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return g.Degree(order[i]) < g.Degree(order[j])
	})
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		match[v] = v // self-match by default
		for _, w := range g.Neighbors(v) {
			if match[w] == -1 {
				match[v] = w
				match[w] = v
				break
			}
		}
	}
	// build coarse graph
	coarseID := make([]graph.V, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	nc := 0
	for v := graph.V(0); int(v) < n; v++ {
		if coarseID[v] != -1 {
			continue
		}
		coarseID[v] = graph.V(nc)
		if match[v] != v {
			coarseID[match[v]] = graph.V(nc)
		}
		nc++
	}
	if nc == n {
		// matching made no progress (e.g. graph with no edges): stop here
		return greedyGrow(g, k)
	}
	cb := graph.NewBuilder(nc, false)
	g.EdgesOnce(func(u, v graph.V) {
		cu, cv := coarseID[u], coarseID[v]
		if cu != cv {
			cb.AddEdge(cu, cv)
		}
	})
	coarse := cb.Build()
	cp := metisRecursive(coarse, k, depth+1)
	// --- project back
	p := &Partition{Assign: make([]int, n), K: k}
	for v := 0; v < n; v++ {
		p.Assign[v] = cp.Assign[coarseID[v]]
	}
	refine(g, p, 2)
	return p
}

// greedyGrow partitions by growing k BFS regions from spread seeds, then
// balancing.
func greedyGrow(g *graph.Graph, k int) *Partition {
	n := g.NumVertices()
	p := &Partition{Assign: make([]int, n), K: k}
	for i := range p.Assign {
		p.Assign[i] = -1
	}
	if n == 0 {
		return p
	}
	target := (n + k - 1) / k
	rng := rand.New(rand.NewSource(1))
	sizes := make([]int, k)
	queue := make([][]graph.V, k)
	for i := 0; i < k; i++ {
		s := graph.V(rng.Intn(n))
		queue[i] = append(queue[i], s)
	}
	remaining := n
	for remaining > 0 {
		progress := false
		for i := 0; i < k && remaining > 0; i++ {
			if sizes[i] >= target {
				continue
			}
			for len(queue[i]) > 0 {
				v := queue[i][0]
				queue[i] = queue[i][1:]
				if p.Assign[v] != -1 {
					continue
				}
				p.Assign[v] = i
				sizes[i]++
				remaining--
				progress = true
				for _, w := range g.Neighbors(v) {
					if p.Assign[w] == -1 {
						queue[i] = append(queue[i], w)
					}
				}
				break
			}
		}
		if !progress {
			// seed any unassigned vertex into the smallest part
			smallest := 0
			for i := 1; i < k; i++ {
				if sizes[i] < sizes[smallest] {
					smallest = i
				}
			}
			for v := 0; v < n; v++ {
				if p.Assign[v] == -1 {
					queue[smallest] = append(queue[smallest], graph.V(v))
					break
				}
			}
		}
	}
	refine(g, p, 2)
	return p
}

// refine performs passes of boundary-vertex moves that reduce the cut while
// keeping parts within 10% of ideal size (simplified Kernighan–Lin / FM).
func refine(g *graph.Graph, p *Partition, passes int) {
	n := g.NumVertices()
	sizes := p.Sizes()
	maxSize := int(float64(n)/float64(p.K)*1.1) + 1
	gains := make([]int, p.K)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			cur := p.Assign[v]
			for i := range gains {
				gains[i] = 0
			}
			for _, w := range g.Neighbors(graph.V(v)) {
				gains[p.Assign[w]]++
			}
			best, bestGain := cur, gains[cur]
			for i := 0; i < p.K; i++ {
				if i != cur && gains[i] > bestGain && sizes[i] < maxSize {
					best, bestGain = i, gains[i]
				}
			}
			if best != cur {
				p.Assign[v] = best
				sizes[cur]--
				sizes[best]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
