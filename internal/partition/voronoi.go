package partition

import (
	"sort"

	"graphsys/internal/graph"
)

// BFSVoronoi implements the ByteGNN/BGL partitioning heuristic: the graph is
// over-partitioned into small blocks by running simultaneous BFS from the
// train/validation/test seed vertices until the BFS frontiers meet (i.e. the
// graph Voronoi diagram of the seeds), and the blocks are then assigned to k
// workers in a streaming fashion balancing block weight. Because a GNN
// workload only touches the few-hop neighborhoods of seed vertices, keeping
// each seed's Voronoi cell intact localises most feature accesses, even when
// the global edge cut is worse than METIS's.
func BFSVoronoi(g *graph.Graph, seeds []graph.V, k int) *Partition {
	n := g.NumVertices()
	block := make([]int, n)
	for i := range block {
		block[i] = -1
	}
	// multi-source BFS: block i grows from seeds[i]
	frontier := make([]graph.V, 0, len(seeds))
	for i, s := range seeds {
		if block[s] == -1 {
			block[s] = i
			frontier = append(frontier, s)
		}
	}
	for len(frontier) > 0 {
		var next []graph.V
		for _, v := range frontier {
			bv := block[v]
			for _, w := range g.Neighbors(v) {
				if block[w] == -1 {
					block[w] = bv
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	// vertices unreachable from any seed go to a residual block per component
	numBlocks := len(seeds)
	for v := 0; v < n; v++ {
		if block[v] == -1 {
			// flood fill this unreachable region as one extra block
			id := numBlocks
			numBlocks++
			stack := []graph.V{graph.V(v)}
			block[v] = id
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range g.Neighbors(x) {
					if block[w] == -1 {
						block[w] = id
						stack = append(stack, w)
					}
				}
			}
		}
	}
	// streaming block → worker assignment, heaviest block first
	weights := make([]int64, numBlocks)
	for _, b := range block {
		weights[b]++
	}
	blockWorker := make([]int, numBlocks)
	type bw struct {
		id int
		w  int64
	}
	order := make([]bw, numBlocks)
	for i, w := range weights {
		order[i] = bw{i, w}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].w > order[j].w })
	loads := make([]int64, k)
	for _, b := range order {
		best := 0
		for i := 1; i < k; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		blockWorker[b.id] = best
		loads[best] += b.w
	}
	p := &Partition{Assign: make([]int, n), K: k}
	for v := 0; v < n; v++ {
		p.Assign[v] = blockWorker[block[v]]
	}
	return p
}

// VertexCut is an edge partitioning: each edge is assigned to a part, and a
// vertex is replicated on every part that holds one of its edges (the
// PowerGraph/DistGNN model; DistGNN's communication reduction comes from a
// minimum vertex-cut). Greedy placement assigns each edge to the part already
// holding most of its endpoints' replicas, breaking ties by load.
type VertexCut struct {
	K           int
	EdgePart    map[[2]graph.V]int
	Replicas    []map[int]bool // per vertex: parts holding a replica
	Replication float64        // avg replicas per vertex
}

// NewVertexCut computes a greedy vertex-cut of g into k parts.
func NewVertexCut(g *graph.Graph, k int) *VertexCut {
	n := g.NumVertices()
	vc := &VertexCut{
		K:        k,
		EdgePart: make(map[[2]graph.V]int),
		Replicas: make([]map[int]bool, n),
	}
	for i := range vc.Replicas {
		vc.Replicas[i] = make(map[int]bool, 2)
	}
	loads := make([]int64, k)
	g.EdgesOnce(func(u, v graph.V) {
		best, bestScore := 0, int64(-1<<62)
		for p := 0; p < k; p++ {
			var score int64
			if vc.Replicas[u][p] {
				score += 1 << 20
			}
			if vc.Replicas[v][p] {
				score += 1 << 20
			}
			score -= loads[p]
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		vc.EdgePart[[2]graph.V{u, v}] = best
		vc.Replicas[u][best] = true
		vc.Replicas[v][best] = true
		loads[best]++
	})
	var totalReplicas int64
	for _, r := range vc.Replicas {
		totalReplicas += int64(len(r))
	}
	if n > 0 {
		vc.Replication = float64(totalReplicas) / float64(n)
	}
	return vc
}

// FeatureDim describes P³'s partitioning: instead of partitioning the graph
// topology, the vertex feature matrix is split along the feature dimension,
// with worker w owning dims [Lo[w], Hi[w]) of every vertex. Hidden-layer
// computation is then model-parallel in layer 1 (push) and data-parallel
// afterwards (pull).
type FeatureDim struct {
	K      int
	Lo, Hi []int
}

// NewFeatureDim splits dim feature dimensions across k workers evenly.
func NewFeatureDim(dim, k int) *FeatureDim {
	fd := &FeatureDim{K: k, Lo: make([]int, k), Hi: make([]int, k)}
	for w := 0; w < k; w++ {
		fd.Lo[w] = dim * w / k
		fd.Hi[w] = dim * (w + 1) / k
	}
	return fd
}

// Width returns the number of dims owned by worker w.
func (fd *FeatureDim) Width(w int) int { return fd.Hi[w] - fd.Lo[w] }
