package lint

// Config scopes the checks to the repo's contracts. Everything is data so a
// later PR widens a contract by editing a table, not a check. Paths are
// module-relative, slash-separated directory prefixes; matching is on path
// segment boundaries.
type Config struct {
	// ModulePath is the module's import path (go.mod `module` directive).
	ModulePath string

	// MapRangePkgs are the deterministic engine packages where map-range
	// loops that feed observable state must iterate sorted keys.
	MapRangePkgs []string
	// SendMethods are method names that emit messages; calling one under map
	// iteration order is a maprange violation.
	SendMethods []string

	// WallclockPkgs are the packages where the simulated cost model is the
	// only clock: reading the wall clock there either perturbs results or
	// (worse) silently replaces metered cost with host timing.
	WallclockPkgs []string
	// WallclockAllowFiles exempts files whose base name contains one of
	// these substrings (benchmark drivers and observability exporters may
	// read the host clock).
	WallclockAllowFiles []string
	// WallclockDenied are the functions of package time that constitute a
	// wall-clock dependency.
	WallclockDenied []string

	// RandPkgs are import paths whose package-level functions draw from a
	// process-global RNG; RandDenied are those functions. Constructors
	// (New, NewSource, NewZipf, …) stay legal — injecting a seeded
	// *rand.Rand is the contract.
	RandPkgs    []string
	RandDenied  []string
	RandScope   []string // packages the globalrand check covers
	GoScope     []string // packages the nakedgo check covers
	GoAllowed   []string // packages that own concurrency (runtime + kernels)
	PanicScope  []string // packages the panicpolicy check covers
	PanicExempt []string // shape-validation packages allowed to panic

	// HotPathRoots are call-graph function IDs (see callgraph.go:
	// "internal/cluster.(*Outbox).Send") declared allocation-free: hotalloc
	// flags every allocation site reachable from them. //lint:hotpath
	// annotations add roots in-source. IDs that do not resolve in the linted
	// module are skipped (the same config lints the test fixtures);
	// TestHotPathRootsResolve pins that every entry resolves in the real
	// module.
	HotPathRoots []string
	// LockOrderPkgs are the packages whose mutex acquisitions participate in
	// the lockorder partial-order analysis.
	LockOrderPkgs []string
}

// Default is the repo's contract as of PR 5. The scopes mirror DESIGN.md
// §3.9: determinism and metering bind the cluster runtime and the engines on
// top of it; RNG injection and the error contract bind all of internal/.
func Default() *Config {
	return &Config{
		ModulePath: "graphsys",

		MapRangePkgs: []string{
			"internal/cluster", "internal/pregel", "internal/blogel",
			"internal/quegel", "internal/gnndist",
			// the block cache's hit/miss/eviction counters are observable,
			// gated state — any map-ordered walk feeding them is a bug
			"internal/storage",
		},
		SendMethods: []string{
			"Send", "SendTo", "SendToNeighbors", "SendAll", "Broadcast",
			"Publish", "Emit", "Account", "AccountBatch",
		},

		WallclockPkgs: []string{
			"internal/cluster", "internal/pregel", "internal/blogel",
			"internal/quegel", "internal/gnndist", "internal/gnn",
			"internal/tensor", "internal/gthinkerq", "internal/tthinker",
			// the serving tier meters latency through an injected serve.Clock;
			// the single annotated wall-clock read lives in serve.WallClock
			"internal/serve",
			// experiment tables are committed artifacts (EXPERIMENTS.md) and
			// must be byte-identical run to run — wall time is banned outright
			"internal/experiments",
			// the storage layer's I/O meters are deterministic functions of
			// the access sequence; wall time has no business in them
			"internal/storage",
		},
		WallclockAllowFiles: []string{"_bench", "bench_"},
		WallclockDenied: []string{
			"Now", "Since", "Until", "Sleep", "After", "AfterFunc",
			"NewTimer", "NewTicker", "Tick",
		},

		RandPkgs: []string{"math/rand", "math/rand/v2"},
		RandDenied: []string{
			"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n", "IntN",
			"Int32", "Int32N", "Int64", "Int64N", "N", "Uint32", "Uint64",
			"UintN", "Uint64N", "Float32", "Float64", "ExpFloat64",
			"NormFloat64", "Perm", "Shuffle", "Seed", "Read",
		},
		RandScope: []string{"internal"},

		GoScope: []string{"internal"},
		// serve owns the serving tier's concurrency: the Pool's worker pool
		// and the Batcher's serving loop, both joined in Close.
		GoAllowed: []string{"internal/cluster", "internal/tensor", "internal/serve"},

		// PanicScope "internal" covers the serving tier (internal/serve,
		// internal/gthinkerq, internal/quegel): engines return typed errors
		// (serve.ErrQueueFull et al.), never panic.
		PanicScope:  []string{"internal"},
		PanicExempt: []string{"internal/tensor", "internal/nn"},

		// The declared zero-alloc hot paths, mirroring the dynamic gates:
		// the Gang dispatch + worker loop and the dense combiner send feed
		// TestSteadyStateAllocsPerRound (PR 8), the cache-hit path feeds the
		// BENCH_storage 0 allocs/op gate (PR 9), and the serve pick paths are
		// the per-task scheduler inner loops. The pregel superstep closures
		// (computePhase/demuxPhase) are rooted in-source via //lint:hotpath.
		HotPathRoots: []string{
			"internal/cluster.(*Gang).Run",
			"internal/cluster.(*Gang).worker",
			"internal/cluster.(*Outbox).Send",
			"internal/pregel.(*delivery).scatter",
			"internal/serve.(*Batcher).orderLocked",
			"internal/serve.(*Pool).pickLocked",
			"internal/serve.(*Pool).take",
			"internal/storage.(*CachedSource).Neighbors",
		},
		LockOrderPkgs: []string{
			"internal/cluster", "internal/serve", "internal/storage",
		},
	}
}
