package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// pkgRef resolves a selector expression's base to an imported package path.
// It prefers type information (alias- and shadowing-aware); when the
// identifier was not resolved (stubbed import edge cases) it falls back to
// matching the file's import names.
func (p *Pass) pkgRef(f *ast.File, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if obj := p.Info.Uses[id]; obj != nil {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
		return "", false // resolved to a variable/type, not a package
	}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := pathBase(path)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path, true
		}
	}
	return "", false
}

func inList(s string, list []string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// WallClock forbids reading the host clock in the deterministic engine
// packages: the cluster's metered cost model is the clock there, and a
// time.Now that leaks into results makes reruns incomparable.
var WallClock = &Check{
	Name: "wallclock",
	Doc:  "no time.Now/time.Since (or timers) in deterministic engine paths; the metered cost model is the clock",
	Run: func(p *Pass) {
		if !p.PkgInScope(p.Cfg.WallclockPkgs) {
			return
		}
		for _, f := range p.Files {
			base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
			allowed := false
			for _, sub := range p.Cfg.WallclockAllowFiles {
				if strings.Contains(base, sub) {
					allowed = true
					break
				}
			}
			if allowed {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !inList(sel.Sel.Name, p.Cfg.WallclockDenied) {
					return true
				}
				if path, ok := p.pkgRef(f, sel); ok && path == "time" {
					p.Reportf("wallclock", sel.Pos(),
						"%s.%s in a deterministic engine path; the metered cost model is the clock (inject a clock or annotate //lint:allow wallclock)",
						sel.X.(*ast.Ident).Name, sel.Sel.Name)
				}
				return true
			})
		}
	},
}

// GlobalRand forbids the process-global math/rand functions in internal/:
// crash recovery snapshots RNG draw positions (gnndist countedSource), which
// only works when every draw goes through an injected seeded *rand.Rand.
var GlobalRand = &Check{
	Name: "globalrand",
	Doc:  "no global math/rand top-level functions in internal/; inject a seeded *rand.Rand so recovery can rewind draws",
	Run: func(p *Pass) {
		if !p.PkgInScope(p.Cfg.RandScope) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !inList(sel.Sel.Name, p.Cfg.RandDenied) {
					return true
				}
				if path, ok := p.pkgRef(f, sel); ok && inList(path, p.Cfg.RandPkgs) {
					p.Reportf("globalrand", sel.Pos(),
						"global %s.%s draws from process-wide RNG state; thread a seeded *rand.Rand so recovery snapshots stay exact",
						sel.X.(*ast.Ident).Name, sel.Sel.Name)
				}
				return true
			})
		}
	},
}

// NakedGo keeps goroutine creation inside the cluster runtime and the tensor
// worker pool. Ad-hoc goroutines elsewhere bypass the barrier/panic
// aggregation, busy metering and fault injection the runtime provides.
var NakedGo = &Check{
	Name: "nakedgo",
	Doc:  "no go statements outside internal/cluster and the internal/tensor worker pool; the runtime owns concurrency",
	Run: func(p *Pass) {
		if !p.PkgInScope(p.Cfg.GoScope) || p.PkgInScope(p.Cfg.GoAllowed) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf("nakedgo", g.Pos(),
						"go statement outside the cluster runtime/tensor pool; route concurrency through cluster.Run or tensor.RunParallel, or annotate //lint:allow nakedgo")
				}
				return true
			})
		}
	},
}

// PanicPolicy enforces the PR 2 error contract: exported entry points return
// errors. A panic lexically inside an exported function (of an exported
// receiver) is flagged unless the package is a shape-validation kernel
// (tensor, nn) or the site carries a justified annotation. Panics in
// unexported helpers are the helper's contract and are not chased
// interprocedurally.
var PanicPolicy = &Check{
	Name: "panicpolicy",
	Doc:  "exported functions outside tensor/nn shape-validation must not panic; return errors (PR 2 contract)",
	Run: func(p *Pass) {
		if !p.PkgInScope(p.Cfg.PanicScope) || p.PkgInScope(p.Cfg.PanicExempt) {
			return
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() || !receiverExported(fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok || id.Name != "panic" {
						return true
					}
					if obj := p.Info.Uses[id]; obj != nil {
						if _, builtin := obj.(*types.Builtin); !builtin {
							return true // locally shadowed
						}
					}
					p.Reportf("panicpolicy", call.Pos(),
						"panic in exported %s; exported entry points return errors (annotate //lint:allow panicpolicy for documented programmer-error preconditions)",
						fd.Name.Name)
					return true
				})
			}
		}
	},
}

// receiverExported reports whether fd is a plain function or a method whose
// receiver base type is exported (methods on unexported types are not part
// of the package surface).
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[K]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
