package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc statically proves the declared hot paths allocation-free: every
// function reachable on the call graph from a root — an ID in
// Config.HotPathRoots or a //lint:hotpath-annotated function — is scanned
// for allocation sites, and each site is reported with the root→site call
// chain. It is the static shadow of the dynamic gates from PR 8
// (TestSteadyStateAllocsPerRound: 0 allocs/round engine supersteps) and
// PR 9 (0 allocs/op cache hits): those catch a regression after the fact in
// one benchmark configuration; this names the allocation site in review.
//
// Flagged: make/new, map and slice composite literals, &T{} escapes,
// append (the backing array may grow), function literals (closure capture),
// fmt.* calls, string concatenation, string↔[]byte/[]rune and value→string
// conversions, and interface boxing at call boundaries where the callee
// signature is module-local.
//
// Soundness boundary (documented, deliberate): calls through function-typed
// fields/variables and interface methods are not chased — the hot paths are
// written monomorphically so the graph sees them — and allocations inside
// stubbed stdlib callees are invisible. Sites that allocate only during
// warm-up (monotonically growing reused buffers), on error paths, or that
// the escape analysis provably keeps on the stack carry
// //lint:allow hotalloc <why> annotations.
var HotAlloc = &Check{
	Name: "hotalloc",
	Doc: "no allocation sites reachable from declared hot-path roots " +
		"(Config.HotPathRoots + //lint:hotpath): make/new, composite literals, " +
		"growing append, closures, interface boxing, string concat/conversion, fmt.*",
	RunModule: func(m *Module) {
		g := m.graph
		roots := g.roots(m.Cfg.HotPathRoots)
		if len(roots) == 0 {
			return
		}
		order, parent := g.reach(roots)
		for _, n := range order {
			scanAllocs(m, n, g.chain(n, parent))
		}
	},
}

// scanAllocs reports every allocation site lexically inside one reachable
// function. Nested literals are their own nodes (and their creation is
// itself a closure-allocation site), so descent stops at them.
func scanAllocs(m *Module, n *funcNode, chain string) {
	p := n.pass
	ast.Inspect(n.body, func(x ast.Node) bool {
		switch t := x.(type) {
		case *ast.FuncLit:
			m.Reportf("hotalloc", t.Pos(), "closure allocates on the hot path [%s]", chain)
			return false
		case *ast.CallExpr:
			scanCallAllocs(m, p, n.file, t, chain)
		case *ast.CompositeLit:
			switch typeUnder(p, t).(type) {
			case *types.Slice:
				m.Reportf("hotalloc", t.Pos(), "slice literal allocates on the hot path [%s]", chain)
			case *types.Map:
				m.Reportf("hotalloc", t.Pos(), "map literal allocates on the hot path [%s]", chain)
			}
		case *ast.UnaryExpr:
			if t.Op == token.AND {
				if _, ok := unparen(t.X).(*ast.CompositeLit); ok {
					m.Reportf("hotalloc", t.Pos(), "&composite literal escapes to the heap on the hot path [%s]", chain)
				}
			}
		case *ast.BinaryExpr:
			if t.Op == token.ADD && isStringExpr(p, t) && !isConst(p, t) {
				m.Reportf("hotalloc", t.Pos(), "string concatenation allocates on the hot path [%s]", chain)
			}
		}
		return true
	})
}

// scanCallAllocs classifies one call expression: allocating builtins,
// allocating conversions, fmt.*, and interface boxing of arguments against a
// resolvable (module-local) callee signature.
func scanCallAllocs(m *Module, p *Pass, f *ast.File, call *ast.CallExpr, chain string) {
	fun := unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok && p.isBuiltin(id) {
		switch id.Name {
		case "make":
			m.Reportf("hotalloc", call.Pos(), "make allocates on the hot path [%s]", chain)
		case "new":
			m.Reportf("hotalloc", call.Pos(), "new allocates on the hot path [%s]", chain)
		case "append":
			m.Reportf("hotalloc", call.Pos(), "append may grow its backing array on the hot path [%s]", chain)
		}
		return
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if path, ok := p.pkgRef(f, sel); ok && path == "fmt" {
			m.Reportf("hotalloc", call.Pos(), "fmt.%s allocates (formatting + boxing) on the hot path [%s]", sel.Sel.Name, chain)
			return
		}
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsType() {
		scanConversion(m, p, call, tv.Type, chain)
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	scanBoxing(m, p, call, sig, chain)
}

// scanConversion flags conversions that copy memory: string↔[]byte/[]rune
// and integer/rune→string. Constant-folded conversions are free.
func scanConversion(m *Module, p *Pass, call *ast.CallExpr, to types.Type, chain string) {
	if len(call.Args) != 1 || isConst(p, call) {
		return
	}
	from := typeOf(p, call.Args[0])
	if from == nil {
		return
	}
	toStr := isString(to)
	fromStr := isString(from)
	_, toSlice := to.Underlying().(*types.Slice)
	_, fromSlice := from.Underlying().(*types.Slice)
	switch {
	case toStr && fromSlice:
		m.Reportf("hotalloc", call.Pos(), "[]byte/[]rune→string conversion copies on the hot path [%s]", chain)
	case toSlice && fromStr:
		m.Reportf("hotalloc", call.Pos(), "string→slice conversion copies on the hot path [%s]", chain)
	case toStr && !fromStr:
		m.Reportf("hotalloc", call.Pos(), "value→string conversion allocates on the hot path [%s]", chain)
	}
}

// scanBoxing flags concrete non-pointer-shaped arguments passed where the
// (module-local, hence resolvable) callee declares an interface parameter:
// the value is copied to the heap to build the interface word pair.
func scanBoxing(m *Module, p *Pass, call *ast.CallExpr, sig *types.Signature, chain string) {
	params := sig.Params()
	if params == nil || params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // arg... forwards the slice, no per-element boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !boxes(typeOf(p, arg), pt) {
			continue
		}
		m.Reportf("hotalloc", arg.Pos(), "%s boxed into interface %s at call boundary on the hot path [%s]",
			typeLabel(typeOf(p, arg)), typeLabel(pt), chain)
	}
}

// boxes reports whether passing a value of type from as parameter type to
// materialises an interface from a non-pointer-shaped concrete value.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, isTP := to.(*types.TypeParam); isTP {
		return false // constraint satisfaction, not boxing
	}
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return false
	}
	if _, isTP := from.(*types.TypeParam); isTP {
		return false
	}
	if types.IsInterface(from) {
		return false
	}
	switch u := from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: the interface data word holds it directly
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.UnsafePointer, types.Invalid:
			return false
		}
		return true
	default:
		return true
	}
}

func typeOf(p *Pass, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func typeUnder(p *Pass, e ast.Expr) types.Type {
	if t := typeOf(p, e); t != nil {
		return t.Underlying()
	}
	return nil
}

func isConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringExpr(p *Pass, e ast.Expr) bool {
	t := typeOf(p, e)
	return t != nil && isString(t)
}

// typeLabel renders a type compactly (package base names, not full paths).
func typeLabel(t types.Type) string {
	if t == nil {
		return "value"
	}
	return types.TypeString(t, func(pkg *types.Package) string { return pkg.Name() })
}
