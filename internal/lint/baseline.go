package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A baseline is a committed snapshot of accepted diagnostics, so a new check
// can land warn-only on legacy paths while still gating new code: anything
// in the baseline is filtered out of the run, anything fresh fails it.
// Entries match on (check, file, message) with multiplicity — deliberately
// not on line/column, so unrelated edits to a legacy file do not churn the
// baseline — and the file is sorted JSON, so regeneration is diff-stable.

// BaselineEntry is one accepted diagnostic shape; Count is how many
// identical instances the baseline absorbs.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

func (e BaselineEntry) key() string {
	return e.Check + "\x00" + e.File + "\x00" + e.Message
}

// WriteBaseline snapshots diags to path as sorted, indented JSON.
func WriteBaseline(path string, diags []Diagnostic) error {
	counts := map[string]*BaselineEntry{}
	for _, d := range diags {
		e := BaselineEntry{Check: d.Check, File: d.File, Message: d.Message}
		if prev := counts[e.key()]; prev != nil {
			prev.Count++
			continue
		}
		e.Count = 1
		counts[e.key()] = &e
	}
	entries := make([]BaselineEntry, 0, len(counts))
	for _, e := range counts {
		entries = append(entries, *e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("graphlint: baseline %s: %w", path, err)
	}
	return entries, nil
}

// ApplyBaseline splits diags into the fresh ones (not absorbed by the
// baseline) and the number accepted; unused reports baseline entries whose
// diagnostics no longer occur (with the residual count), so a shrinking
// legacy surface is visible and the baseline can be re-tightened.
func ApplyBaseline(diags []Diagnostic, base []BaselineEntry) (fresh []Diagnostic, accepted int, unused []BaselineEntry) {
	remaining := map[string]int{}
	for _, e := range base {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		remaining[e.key()] += n
	}
	for _, d := range diags {
		key := BaselineEntry{Check: d.Check, File: d.File, Message: d.Message}.key()
		if remaining[key] > 0 {
			remaining[key]--
			accepted++
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range base {
		if n := remaining[e.key()]; n > 0 {
			e.Count = n
			unused = append(unused, e)
			remaining[e.key()] = 0
		}
	}
	return fresh, accepted, unused
}
