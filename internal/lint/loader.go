package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks every package under one module root without
// shelling out to the go command. Module-local imports are resolved from
// source (so cross-package types — cluster.Outbox in pregel, tensor.Matrix
// in gnn — are real); all other imports (stdlib included) are stubbed with
// empty complete packages. Type errors caused by the stubs are swallowed:
// go/types still records types for everything locally resolvable, which is
// what the checks consume. Bitwise-identical inputs yield bitwise-identical
// diagnostics — package order, file order and type-check order are all
// lexicographic.
type loader struct {
	root    string // absolute module root
	modpath string // module import path ("graphsys")
	fset    *token.FileSet

	byRel    map[string]*lpkg // "internal/pregel" → package record
	rels     []string         // sorted keys of byRel
	typed    map[string]*types.Package
	checking map[string]bool // import-cycle guard
}

type lpkg struct {
	rel   string // module-relative dir, slash-separated ("" = module root)
	files []*ast.File
	info  *types.Info
}

func load(root, modpath string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &loader{
		root: abs, modpath: modpath, fset: token.NewFileSet(),
		byRel: map[string]*lpkg{}, typed: map[string]*types.Package{}, checking: map[string]bool{},
	}
	if err := l.parseAll(); err != nil {
		return nil, err
	}
	for _, rel := range l.rels {
		l.ensureTyped(l.importPath(rel))
	}
	return l, nil
}

func (l *loader) importPath(rel string) string {
	if rel == "" {
		return l.modpath
	}
	return l.modpath + "/" + rel
}

// relFile maps an absolute file name inside the module to its slash-separated
// module-relative form; files outside the module pass through unchanged.
func (l *loader) relFile(abs string) string {
	if r, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return abs
}

func (l *loader) parseAll() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("graphlint: %w", perr)
		}
		rel := filepath.ToSlash(filepath.Dir(l.relFile(path)))
		if rel == "." {
			rel = ""
		}
		pk := l.byRel[rel]
		if pk == nil {
			pk = &lpkg{rel: rel}
			l.byRel[rel] = pk
			l.rels = append(l.rels, rel)
		}
		pk.files = append(pk.files, f)
		return nil
	})
}

// packages returns the parsed packages in deterministic (path) order.
func (l *loader) packages() []*lpkg {
	sort.Strings(l.rels)
	out := make([]*lpkg, 0, len(l.rels))
	for _, rel := range l.rels {
		out = append(out, l.byRel[rel])
	}
	return out
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ensureTyped(path), nil
}

// ensureTyped returns the types.Package for an import path, type-checking
// module-local packages from their parsed sources and stubbing everything
// else (or any package currently mid-check, which breaks import cycles the
// same conservative way).
func (l *loader) ensureTyped(path string) *types.Package {
	if tp, ok := l.typed[path]; ok {
		return tp
	}
	rel, local := l.relForImport(path)
	pk := l.byRel[rel]
	if !local || pk == nil || l.checking[path] {
		tp := types.NewPackage(path, pathBase(path))
		tp.MarkComplete()
		l.typed[path] = tp
		return tp
	}
	l.checking[path] = true
	// deterministic file order within the package
	sort.Slice(pk.files, func(i, j int) bool {
		return l.fset.Position(pk.files[i].Pos()).Filename < l.fset.Position(pk.files[j].Pos()).Filename
	})
	pk.info = &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer:         l,
		Error:            func(error) {}, // stubbed imports make errors expected
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
	tp, _ := conf.Check(path, l.fset, pk.files, pk.info)
	if tp == nil {
		tp = types.NewPackage(path, pathBase(path))
	}
	tp.MarkComplete()
	delete(l.checking, path)
	l.typed[path] = tp
	return tp
}

// relForImport maps an import path to a module-relative dir if it belongs to
// this module.
func (l *loader) relForImport(path string) (string, bool) {
	if path == l.modpath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.modpath+"/"); ok {
		return rest, true
	}
	return "", false
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod
// and returns it plus the declared module path.
func ModuleRoot(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("graphlint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("graphlint: no go.mod found above %s", abs)
		}
	}
}
