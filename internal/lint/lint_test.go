package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture convention: a `// want "substr"` comment expects a diagnostic
// on its own line whose "check: message" rendering contains substr;
// `// want+1 "substr"` expects it on the following line (used above //lint:
// directives, where a trailing comment would become the directive's reason).
var (
	wantRe   = regexp.MustCompile(`// want(\+1)?((?:\s+"[^"]*")+)`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

type fixtureWant struct {
	file string
	line int
	sub  string
	hit  bool
}

func collectWants(t *testing.T, root string) []*fixtureWant {
	t.Helper()
	var wants []*fixtureWant
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, lineText := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(lineText, -1) {
				line := i + 1
				if m[1] == "+1" {
					line++
				}
				for _, q := range quotedRe.FindAllStringSubmatch(m[2], -1) {
					wants = append(wants, &fixtureWant{file: rel, line: line, sub: q[1]})
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting wants: %v", err)
	}
	if len(wants) == 0 {
		t.Fatal("no // want comments found under testdata/src; fixtures missing?")
	}
	return wants
}

// TestFixtures runs every check over the golden fixture tree and matches the
// diagnostics against the // want comments, both ways: an unexpected
// diagnostic and an unmatched want are each failures.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	cfg := Default()
	cfg.ModulePath = "fixture"
	diags, err := Run(root, cfg, Checks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wants := collectWants(t, root)
	for _, d := range diags {
		rendered := d.Check + ": " + d.Message
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && strings.Contains(rendered, w.sub) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want diagnostic containing %q, got none", w.file, w.line, w.sub)
		}
	}
}

// TestEveryCheckCovered guards the fixture tree itself: each registered
// check (and the lintdirective pseudo-check) must produce at least one
// fixture diagnostic, so a new check cannot land without golden coverage.
func TestEveryCheckCovered(t *testing.T) {
	root := filepath.Join("testdata", "src")
	cfg := Default()
	cfg.ModulePath = "fixture"
	diags, err := Run(root, cfg, Checks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Check] = true
	}
	for _, c := range Checks {
		if !seen[c.Name] {
			t.Errorf("check %q has no positive fixture under testdata/src", c.Name)
		}
	}
	if !seen["lintdirective"] {
		t.Error("no fixture exercises malformed //lint: directives")
	}
}

// TestDeterministicOutput: two runs over the same tree must agree exactly,
// and the result must already be in the documented (file, line, col, check,
// message) order — the property `graphlint -json` consumers rely on.
func TestDeterministicOutput(t *testing.T) {
	root := filepath.Join("testdata", "src")
	cfg := Default()
	cfg.ModulePath = "fixture"
	a, err := Run(root, cfg, Checks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(root, cfg, Checks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("run-to-run drift: %d vs %d diagnostics", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("diag %d differs across runs: %s vs %s", i, a[i], b[i])
		}
		if i > 0 && !diagLess(a[i-1], a[i]) && a[i-1] != a[i] {
			t.Errorf("diags %d,%d out of order: %s before %s", i-1, i, a[i-1], a[i])
		}
	}
}

func diagLess(a, b Diagnostic) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	if a.Check != b.Check {
		return a.Check < b.Check
	}
	return a.Message < b.Message
}
