package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder infers the mutex-acquisition partial order across the packages
// in Config.LockOrderPkgs (the cluster runtime, the serving tier and the
// block-cache layer — everything that holds locks near the hot paths) and
// reports two classes of deadlock statically:
//
//   - inversion: one path acquires lock A then lock B while another acquires
//     B then A. The barrier/SetLinkCost deadlocks fixed in PR 1 were
//     instances of exactly this class.
//   - re-acquisition: a path acquires a lock class it already holds (Go
//     mutexes are not reentrant; this self-deadlocks at runtime).
//
// Locks are recognised syntactically — zero-argument Lock/RLock/Unlock/
// RUnlock method calls — because sync is a stubbed import in this loader;
// the receiver is classified to a lock class by its owner type
// ("internal/serve.Pool.mu", "internal/storage.policyMu"). Held sets are
// tracked linearly through each function body (a deferred unlock keeps the
// lock held to the end) and propagate across calls through per-function
// acquire summaries on the call graph, so "holds A, calls f, f acquires B"
// creates the A→B order edge with the call chain in the diagnostic.
var LockOrder = &Check{
	Name: "lockorder",
	Doc: "no two paths may acquire two mutexes in opposite orders, and no path " +
		"may re-acquire a lock class it already holds (scope: Config.LockOrderPkgs)",
	RunModule: runLockOrder,
}

const (
	evAcquire = iota
	evRelease
	evCall
)

// lockEvent is one entry of a function's linearised lock behaviour.
type lockEvent struct {
	kind  int
	class string    // evAcquire/evRelease
	to    *funcNode // evCall
	pos   token.Pos
}

// acqInfo is one entry of a function's acquire summary: how the function
// (transitively) comes to acquire a lock class.
type acqInfo struct {
	pos  token.Pos // direct lock site, or the call site it propagated through
	next *funcNode // nil = acquired directly in this function
}

// orderEdge is one observed "holding held, acquires acquired" fact with
// provenance.
type orderEdge struct {
	node     *funcNode
	held     string
	acquired string
	heldPos  token.Pos
	pos      token.Pos // acquisition or call site the edge was observed at
	via      *funcNode // nil = acquired directly at pos
}

func runLockOrder(m *Module) {
	g := m.graph
	if len(m.Cfg.LockOrderPkgs) == 0 {
		return
	}
	inScope := func(n *funcNode) bool {
		for _, pre := range m.Cfg.LockOrderPkgs {
			if pathWithin(n.rel, pre) {
				return true
			}
		}
		return false
	}

	// Linearised lock events per in-scope function, in source order.
	events := map[*funcNode][]lockEvent{}
	for _, n := range g.sorted() {
		if inScope(n) {
			events[n] = lockEvents(m, n)
		}
	}

	// Acquire summaries: seed with direct acquisitions, then propagate over
	// call/defer/go/ref edges to a fixpoint. Every node participates so an
	// out-of-scope intermediary still carries in-scope acquisitions through.
	acq := map[*funcNode]map[string]*acqInfo{}
	for _, n := range g.sorted() {
		for _, ev := range events[n] {
			if ev.kind != evAcquire {
				continue
			}
			if acq[n] == nil {
				acq[n] = map[string]*acqInfo{}
			}
			if acq[n][ev.class] == nil {
				acq[n][ev.class] = &acqInfo{pos: ev.pos}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.sorted() {
			for _, e := range n.out {
				for _, c := range sortedClassKeys(acq[e.to]) {
					if acq[n] == nil {
						acq[n] = map[string]*acqInfo{}
					}
					if acq[n][c] == nil {
						acq[n][c] = &acqInfo{pos: e.pos, next: e.to}
						changed = true
					}
				}
			}
		}
	}

	// Simulate each in-scope function: track the held stack, record order
	// edges, and report re-acquisition of a held class immediately.
	type heldLock struct {
		class string
		pos   token.Pos
	}
	edges := map[string]*orderEdge{} // "held\x00acquired" → first observed edge
	selfSeen := map[string]bool{}
	for _, n := range g.sorted() {
		evs := events[n]
		if len(evs) == 0 {
			continue
		}
		merged := append([]lockEvent{}, evs...)
		for _, e := range n.out {
			merged = append(merged, lockEvent{kind: evCall, to: e.to, pos: e.pos})
		}
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].pos < merged[j].pos })
		var held []heldLock
		note := func(h heldLock, class string, pos token.Pos, via *funcNode) {
			if h.class == class {
				key := fmt.Sprintf("%s@%d", class, pos)
				if !selfSeen[key] {
					selfSeen[key] = true
					m.Reportf("lockorder", pos,
						"acquires %s while it is already held (held since %s)%s: Go mutexes are not reentrant, this self-deadlocks",
						class, m.Position(h.pos), viaText(m, acq, n, via, class))
				}
				return
			}
			key := h.class + "\x00" + class
			if edges[key] == nil {
				edges[key] = &orderEdge{node: n, held: h.class, acquired: class, heldPos: h.pos, pos: pos, via: via}
			}
		}
		for _, ev := range merged {
			switch ev.kind {
			case evAcquire:
				for _, h := range held {
					note(h, ev.class, ev.pos, nil)
				}
				held = append(held, heldLock{class: ev.class, pos: ev.pos})
			case evRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].class == ev.class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evCall:
				if len(held) == 0 {
					continue
				}
				for _, c := range sortedClassKeys(acq[ev.to]) {
					for _, h := range held {
						note(h, c, ev.pos, ev.to)
					}
				}
			}
		}
	}

	// Report each inverted pair once, anchored at the lexicographically
	// smaller direction's first observed edge.
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := edges[k]
		if e.held > e.acquired {
			continue // the A<B direction owns the report
		}
		r := edges[e.acquired+"\x00"+e.held]
		if r == nil {
			continue
		}
		m.Reportf("lockorder", e.pos,
			"acquires %s while holding %s%s, but %s acquires %s while holding %s%s: lock order inversion (pick one global acquisition order)",
			e.acquired, e.held, viaText(m, acq, e.node, e.via, e.acquired),
			m.Position(r.pos), r.acquired, r.held, viaText(m, acq, r.node, r.via, r.acquired))
	}
}

// viaText renders the call chain through which a class is acquired, when the
// acquisition is not directly in the reporting function.
func viaText(m *Module, acq map[*funcNode]map[string]*acqInfo, n *funcNode, via *funcNode, class string) string {
	if via == nil {
		return ""
	}
	parts := []string{n.short(), via.short()}
	if acq != nil {
		for cur := via; ; {
			info := acq[cur][class]
			if info == nil || info.next == nil {
				break
			}
			cur = info.next
			parts = append(parts, cur.short())
		}
	}
	return " (call chain " + strings.Join(parts, " → ") + ")"
}

// lockEvents linearises one function body: zero-argument Lock/RLock/Unlock/
// RUnlock method calls become acquire/release events (a deferred unlock is
// dropped — the lock stays held to the end; a deferred lock is ignored).
// Nested function literals are their own nodes and are skipped.
func lockEvents(m *Module, n *funcNode) []lockEvent {
	p := n.pass
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(n.body, func(x ast.Node) bool {
		if d, ok := x.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	var out []lockEvent
	ast.Inspect(n.body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var kind int
		switch sel.Sel.Name {
		case "Lock", "RLock":
			kind = evAcquire
		case "Unlock", "RUnlock":
			kind = evRelease
		default:
			return true
		}
		if deferred[call] {
			return true
		}
		class, ok := lockClassOf(m, p, sel.X)
		if !ok {
			return true
		}
		out = append(out, lockEvent{kind: kind, class: class, pos: call.Pos()})
		return true
	})
	return out
}

// lockClassOf classifies a lock receiver expression to a stable class name:
// the owner type's package-qualified field ("internal/serve.Pool.mu"), a
// package-level var ("internal/storage.policyMu"), or — when type info is
// unavailable — the textual selector path. Locals and parameters are
// unclassifiable and skipped (conservative: no events, no false pairs).
func lockClassOf(m *Module, p *Pass, e ast.Expr) (string, bool) {
	e = unparen(e)
	for {
		if ix, ok := e.(*ast.IndexExpr); ok { // mu[i]: per-lane lock arrays share a class
			e = unparen(ix.X)
			continue
		}
		if st, ok := e.(*ast.StarExpr); ok {
			e = unparen(st.X)
			continue
		}
		break
	}
	switch t := e.(type) {
	case *ast.SelectorExpr:
		if tv, ok := p.Info.Types[t.X]; ok && tv.Type != nil {
			typ := tv.Type
			for {
				ptr, ok := typ.(*types.Pointer)
				if !ok {
					break
				}
				typ = ptr.Elem()
			}
			if named, ok := typ.(*types.Named); ok && named.Obj() != nil {
				return relOfPkg(m, named.Obj().Pkg()) + "." + named.Obj().Name() + "." + t.Sel.Name, true
			}
		}
		if text := selText(t); text != "" {
			return p.Rel + "." + text, true
		}
		return "", false
	case *ast.Ident:
		if v, ok := p.Info.Uses[t].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return relOfPkg(m, v.Pkg()) + "." + t.Name, true
		}
		return "", false
	}
	return "", false
}

// relOfPkg maps a types.Package back to its module-relative dir.
func relOfPkg(m *Module, pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if path == m.Cfg.ModulePath {
		return ""
	}
	if rest, ok := strings.CutPrefix(path, m.Cfg.ModulePath+"/"); ok {
		return rest
	}
	return path
}

// selText renders a pure ident/selector chain ("g.c.mu"); anything else
// yields "".
func selText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		if base := selText(t.X); base != "" {
			return base + "." + t.Sel.Name
		}
	}
	return ""
}

func sortedClassKeys(m map[string]*acqInfo) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
