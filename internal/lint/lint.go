// Package lint implements graphlint, the repo-specific static-analysis
// driver that machine-checks the runtime's behavioural contracts on every
// `make verify` (DESIGN.md §3.9, §3.14):
//
//   - maprange    — map iteration whose body emits messages or folds into
//     outer state must iterate sorted keys (internal/det.SortedKeys) or
//     carry a justified //lint:deterministic annotation. Go randomises map
//     order; letting it reach observable state breaks bitwise-reproducible
//     reruns (the Table 1 / Table 2 comparisons depend on them).
//   - wallclock   — no wall-clock reads in deterministic engine paths; the
//     cluster's metered cost model is the clock.
//   - globalrand  — no global math/rand top-level functions in internal/;
//     RNG is an injected seeded *rand.Rand so crash recovery can snapshot
//     and rewind draw positions exactly.
//   - nakedgo     — no `go` statements outside the cluster runtime and the
//     tensor worker pool; the runtime owns concurrency.
//   - panicpolicy — exported functions return errors instead of panicking
//     (the PR 2 error contract); documented programmer-error preconditions
//     carry a //lint:allow annotation.
//   - hotalloc    — interprocedural: no allocation site (make/new, map and
//     slice literals, growing append, closure capture, interface boxing at
//     call boundaries, string concat/conversion, fmt.*) is reachable on the
//     call graph from a declared hot-path root (Config.HotPathRoots or a
//     //lint:hotpath function) without a reasoned //lint:allow. The static
//     shadow of the PR 8 / PR 9 zero-alloc benchmark gates.
//   - lockorder   — interprocedural: infers the mutex-acquisition partial
//     order across internal/cluster, internal/serve and internal/storage
//     (locks held across calls propagate through function summaries) and
//     reports path pairs that acquire two locks in opposite orders, plus
//     re-acquisition of a lock already held (Go mutexes are not reentrant).
//
// The driver is stdlib-only (go/parser, go/ast, go/token, go/types). Checks
// are table-driven (Checks) so a new contract is ~30 lines: a Check value
// plus a fixture file. Per-package checks implement Run; whole-module
// interprocedural checks implement RunModule and see the call graph.
// Diagnostics are deterministic: sorted by file, line, column, check,
// message.
//
// Suppression directives (a reason is mandatory — an annotation without one
// is itself a diagnostic). Directives attach to the same line or the line
// below, and stack: a contiguous block of directive lines directly above a
// statement all apply to it.
//
//	//lint:deterministic <reason>   suppresses maprange on this or the next line
//	//lint:allow <check> <reason>   suppresses the named check on this or the next line
//	//lint:hotpath <description>    declares the function on this or the next line a hot-path root
//
// An annotation that suppresses zero diagnostics in a run covering its check
// is reported as stale (lintdirective): the suppression inventory cannot
// outlive the code it excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one positioned finding. File is module-relative and
// slash-separated so output is stable across machines.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one contract. Per-package checks set Run, which inspects a single
// package and reports through the pass. Interprocedural checks set RunModule,
// which sees every pass plus the module call graph. A check sets exactly one
// of the two.
type Check struct {
	Name      string
	Doc       string
	Run       func(p *Pass)
	RunModule func(m *Module)
}

// Checks is the registry, in documentation order. cmd/graphlint runs all of
// them unless -checks narrows the set.
var Checks = []*Check{MapRange, WallClock, GlobalRand, NakedGo, PanicPolicy, HotAlloc, LockOrder}

// checkNames is used to validate //lint:allow directives.
func checkNames() map[string]bool {
	m := map[string]bool{}
	for _, c := range Checks {
		m[c.Name] = true
	}
	return m
}

// Pass hands one type-checked package to a check.
type Pass struct {
	Fset  *token.FileSet
	Rel   string // module-relative package dir, e.g. "internal/pregel"
	Files []*ast.File
	Info  *types.Info
	Cfg   *Config

	relFile     func(string) string // absolute → module-relative file name
	diags       *[]Diagnostic
	annotations map[string]map[int]*annotation // rel file → line → directive
}

// Module hands the whole type-checked module to an interprocedural check:
// every per-package pass in deterministic order plus the call graph built
// over them. Reporting goes through the same annotation machinery as Pass,
// so a cross-package diagnostic is suppressed where it is reported, not
// where the hot-path root lives.
type Module struct {
	Fset   *token.FileSet
	Passes []*Pass
	Cfg    *Config

	graph       *callGraph
	relFile     func(string) string
	diags       *[]Diagnostic
	annotations map[string]map[int]*annotation
}

// Reportf records a diagnostic unless an annotation on the same line, or a
// directive block directly above, suppresses the check.
func (p *Pass) Reportf(check string, pos token.Pos, format string, args ...any) {
	report(p.Fset, p.relFile, p.annotations, p.diags, check, pos, format, args...)
}

// Reportf is the module-level twin of Pass.Reportf.
func (m *Module) Reportf(check string, pos token.Pos, format string, args ...any) {
	report(m.Fset, m.relFile, m.annotations, m.diags, check, pos, format, args...)
}

// Position renders a token.Pos as a module-relative "file:line" string for
// embedding in diagnostic messages (the cross-reference half of a lockorder
// pair, for example).
func (m *Module) Position(pos token.Pos) string {
	position := m.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", m.relFile(position.Filename), position.Line)
}

func report(fset *token.FileSet, relFile func(string) string, annos map[string]map[int]*annotation, diags *[]Diagnostic, check string, pos token.Pos, format string, args ...any) {
	position := fset.Position(pos)
	file := relFile(position.Filename)
	if ann := annotationAt(annos, file, position.Line, check); ann != nil {
		ann.used = true
		return
	}
	*diags = append(*diags, Diagnostic{
		Check:   check,
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// annotationAt finds a directive suppressing check at line: the line itself
// (trailing comment), or anywhere in the contiguous block of directive lines
// ending directly above it (directives stack, one per line).
func annotationAt(annos map[string]map[int]*annotation, file string, line int, check string) *annotation {
	byLine := annos[file]
	if byLine == nil {
		return nil
	}
	if ann := byLine[line]; ann != nil && ann.suppresses(check) {
		return ann
	}
	for l := line - 1; ; l-- {
		ann := byLine[l]
		if ann == nil {
			return nil
		}
		if ann.suppresses(check) {
			return ann
		}
	}
}

func (p *Pass) annotationFor(file string, line int, check string) *annotation {
	return annotationAt(p.annotations, file, line, check)
}

// PkgInScope reports whether the pass's package sits under any of the given
// module-relative prefixes ("internal" covers the whole internal tree).
func (p *Pass) PkgInScope(prefixes []string) bool {
	for _, pre := range prefixes {
		if pathWithin(p.Rel, pre) {
			return true
		}
	}
	return false
}

// pathWithin reports whether rel equals prefix or sits below it on a path
// segment boundary ("internal/cluster" is within "internal", not within
// "internal/clus").
func pathWithin(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}

// annotation is one parsed //lint: directive.
type annotation struct {
	verb   string // "deterministic", "allow" or "hotpath"
	check  string // check it suppresses ("" for hotpath)
	reason string
	used   bool

	file string // module-relative file, for stale reporting
	line int
	col  int
}

func (a *annotation) suppresses(check string) bool {
	return a.verb != "hotpath" && a.reason != "" && a.check == check
}

// parseAnnotations extracts //lint: directives from a file. Malformed
// directives (unknown form, unknown check, missing reason) are reported as
// lintdirective diagnostics and suppress nothing: an unjustified exemption
// is a contract violation in its own right. Well-formed directives are also
// appended to all, the module-wide inventory the stale-suppression pass
// audits after every check has run.
func parseAnnotations(fset *token.FileSet, f *ast.File, known map[string]bool, diags *[]Diagnostic, rel func(string) string, all *[]*annotation) map[int]*annotation {
	out := map[int]*annotation{}
	report := func(pos token.Pos, msg string) {
		position := fset.Position(pos)
		*diags = append(*diags, Diagnostic{
			Check: "lintdirective", File: rel(position.Filename),
			Line: position.Line, Col: position.Column, Message: msg,
		})
	}
	keep := func(pos token.Pos, ann *annotation) {
		position := fset.Position(pos)
		ann.file = rel(position.Filename)
		ann.line = position.Line
		ann.col = position.Column
		out[position.Line] = ann
		*all = append(*all, ann)
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			verb, rest, _ := strings.Cut(text, " ")
			rest = strings.TrimSpace(rest)
			switch verb {
			case "deterministic":
				if rest == "" {
					report(c.Pos(), "//lint:deterministic needs a reason: //lint:deterministic <why iteration order cannot matter>")
					continue
				}
				keep(c.Pos(), &annotation{verb: verb, check: "maprange", reason: rest})
			case "allow":
				check, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if !known[check] {
					report(c.Pos(), fmt.Sprintf("//lint:allow names unknown check %q", check))
					continue
				}
				if reason == "" {
					report(c.Pos(), fmt.Sprintf("//lint:allow %s needs a reason: //lint:allow %s <justification>", check, check))
					continue
				}
				keep(c.Pos(), &annotation{verb: verb, check: check, reason: reason})
			case "hotpath":
				// rest is an optional description; the directive marks the
				// function declared on this or the next line as a hot-path
				// root for the hotalloc check.
				keep(c.Pos(), &annotation{verb: verb, reason: rest})
			default:
				report(c.Pos(), fmt.Sprintf("unknown lint directive %q (want deterministic, allow or hotpath)", verb))
			}
		}
	}
	return out
}

// reportStale audits the annotation inventory after every check has run: a
// directive that suppressed zero diagnostics — while the check it names was
// part of the run — is dead weight and gets a lintdirective diagnostic.
// //lint:hotpath is stale when it attaches to no function (it must sit on or
// directly above a func declaration or literal), judged only when the call
// graph was actually built.
func reportStale(all []*annotation, active map[string]bool, graphBuilt bool, diags *[]Diagnostic) {
	for _, a := range all {
		if a.used {
			continue
		}
		d := Diagnostic{Check: "lintdirective", File: a.file, Line: a.line, Col: a.col}
		switch a.verb {
		case "hotpath":
			if !graphBuilt || !active[HotAlloc.Name] {
				continue
			}
			d.Message = "//lint:hotpath marks no function (place it on or directly above a func declaration or literal)"
		default:
			if !active[a.check] {
				continue
			}
			d.Message = fmt.Sprintf("//lint:%s suppresses zero %s diagnostics (stale: fix the code or delete the annotation)", a.verb, a.check)
		}
		*diags = append(*diags, d)
	}
}

// Timing is one entry of a run's time budget report: the loader, each check,
// the call-graph build and the total.
type Timing struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Run loads every package under root (skipping testdata, vendor and hidden
// directories; _test.go files are out of scope — tests are oracles, not
// runtime paths), runs the given checks, and returns sorted diagnostics.
// Type information is best-effort per package: module-local imports are
// resolved from source, other imports are stubbed, and checks degrade
// conservatively where types are unknown.
func Run(root string, cfg *Config, checks []*Check) ([]Diagnostic, error) {
	diags, _, err := RunTimed(root, cfg, checks)
	return diags, err
}

// RunTimed is Run plus a per-check wall-time report, so `make lint -timing`
// can keep the interprocedural passes inside their budget.
func RunTimed(root string, cfg *Config, checks []*Check) ([]Diagnostic, []Timing, error) {
	t0 := time.Now()
	l, err := load(root, cfg.ModulePath)
	if err != nil {
		return nil, nil, err
	}
	timings := []Timing{{Name: "load", Seconds: time.Since(t0).Seconds()}}

	known := checkNames()
	var diags []Diagnostic
	var annos []*annotation
	byFile := map[string]map[int]*annotation{}
	var passes []*Pass
	for _, pk := range l.packages() {
		p := &Pass{
			Fset:        l.fset,
			Rel:         pk.rel,
			Files:       pk.files,
			Info:        pk.info,
			Cfg:         cfg,
			relFile:     l.relFile,
			diags:       &diags,
			annotations: byFile,
		}
		for _, f := range pk.files {
			name := l.relFile(l.fset.Position(f.Pos()).Filename)
			byFile[name] = parseAnnotations(l.fset, f, known, &diags, l.relFile, &annos)
		}
		passes = append(passes, p)
	}

	active := map[string]bool{}
	needModule := false
	for _, c := range checks {
		active[c.Name] = true
		if c.RunModule != nil {
			needModule = true
		}
	}

	var mod *Module
	if needModule {
		mod = &Module{
			Fset:        l.fset,
			Passes:      passes,
			Cfg:         cfg,
			relFile:     l.relFile,
			diags:       &diags,
			annotations: byFile,
		}
		tg := time.Now()
		mod.graph = buildCallGraph(mod)
		timings = append(timings, Timing{Name: "callgraph", Seconds: time.Since(tg).Seconds()})
	}

	for _, c := range checks {
		tc := time.Now()
		switch {
		case c.Run != nil:
			for _, p := range passes {
				c.Run(p)
			}
		case c.RunModule != nil:
			c.RunModule(mod)
		}
		timings = append(timings, Timing{Name: c.Name, Seconds: time.Since(tc).Seconds()})
	}

	reportStale(annos, active, mod != nil, &diags)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	timings = append(timings, Timing{Name: "total", Seconds: time.Since(t0).Seconds()})
	return diags, timings, nil
}
