// Package lint implements graphlint, the repo-specific static-analysis
// driver that machine-checks the runtime's behavioural contracts on every
// `make verify` (DESIGN.md §3.9):
//
//   - maprange    — map iteration whose body emits messages or folds into
//     outer state must iterate sorted keys (internal/det.SortedKeys) or
//     carry a justified //lint:deterministic annotation. Go randomises map
//     order; letting it reach observable state breaks bitwise-reproducible
//     reruns (the Table 1 / Table 2 comparisons depend on them).
//   - wallclock   — no wall-clock reads in deterministic engine paths; the
//     cluster's metered cost model is the clock.
//   - globalrand  — no global math/rand top-level functions in internal/;
//     RNG is an injected seeded *rand.Rand so crash recovery can snapshot
//     and rewind draw positions exactly.
//   - nakedgo     — no `go` statements outside the cluster runtime and the
//     tensor worker pool; the runtime owns concurrency.
//   - panicpolicy — exported functions return errors instead of panicking
//     (the PR 2 error contract); documented programmer-error preconditions
//     carry a //lint:allow annotation.
//
// The driver is stdlib-only (go/parser, go/ast, go/token, go/types). Checks
// are table-driven (Checks) so a new contract is ~30 lines: a Check value
// plus a fixture file. Diagnostics are deterministic: sorted by file, line,
// column, check, message.
//
// Suppression directives (a reason is mandatory — an annotation without one
// is itself a diagnostic):
//
//	//lint:deterministic <reason>   suppresses maprange on this or the next line
//	//lint:allow <check> <reason>   suppresses the named check on this or the next line
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one positioned finding. File is module-relative and
// slash-separated so output is stable across machines.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one contract. Run inspects a single package and reports through
// the pass.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Checks is the registry, in documentation order. cmd/graphlint runs all of
// them unless -checks narrows the set.
var Checks = []*Check{MapRange, WallClock, GlobalRand, NakedGo, PanicPolicy}

// checkNames is used to validate //lint:allow directives.
func checkNames() map[string]bool {
	m := map[string]bool{}
	for _, c := range Checks {
		m[c.Name] = true
	}
	return m
}

// Pass hands one type-checked package to a check.
type Pass struct {
	Fset  *token.FileSet
	Rel   string // module-relative package dir, e.g. "internal/pregel"
	Files []*ast.File
	Info  *types.Info
	Cfg   *Config

	relFile     func(string) string // absolute → module-relative file name
	diags       *[]Diagnostic
	annotations map[string]map[int]*annotation // rel file → line → directive
}

// Reportf records a diagnostic unless an annotation on the same line, or the
// line directly above, suppresses the check.
func (p *Pass) Reportf(check string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := p.relFile(position.Filename)
	if ann := p.annotationFor(file, position.Line, check); ann != nil {
		ann.used = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Check:   check,
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

func (p *Pass) annotationFor(file string, line int, check string) *annotation {
	byLine := p.annotations[file]
	for _, l := range [2]int{line, line - 1} {
		if ann := byLine[l]; ann != nil && ann.suppresses(check) {
			return ann
		}
	}
	return nil
}

// PkgInScope reports whether the pass's package sits under any of the given
// module-relative prefixes ("internal" covers the whole internal tree).
func (p *Pass) PkgInScope(prefixes []string) bool {
	for _, pre := range prefixes {
		if pathWithin(p.Rel, pre) {
			return true
		}
	}
	return false
}

// pathWithin reports whether rel equals prefix or sits below it on a path
// segment boundary ("internal/cluster" is within "internal", not within
// "internal/clus").
func pathWithin(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}

// annotation is one parsed //lint: directive.
type annotation struct {
	check  string // check it suppresses
	reason string
	used   bool
}

func (a *annotation) suppresses(check string) bool {
	return a.reason != "" && a.check == check
}

// parseAnnotations extracts //lint: directives from a file. Malformed
// directives (unknown form, unknown check, missing reason) are reported as
// lintdirective diagnostics and suppress nothing: an unjustified exemption
// is a contract violation in its own right.
func parseAnnotations(fset *token.FileSet, f *ast.File, known map[string]bool, diags *[]Diagnostic, rel func(string) string) map[int]*annotation {
	out := map[int]*annotation{}
	report := func(pos token.Pos, msg string) {
		position := fset.Position(pos)
		*diags = append(*diags, Diagnostic{
			Check: "lintdirective", File: rel(position.Filename),
			Line: position.Line, Col: position.Column, Message: msg,
		})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			verb, rest, _ := strings.Cut(text, " ")
			rest = strings.TrimSpace(rest)
			switch verb {
			case "deterministic":
				if rest == "" {
					report(c.Pos(), "//lint:deterministic needs a reason: //lint:deterministic <why iteration order cannot matter>")
					continue
				}
				out[line] = &annotation{check: "maprange", reason: rest}
			case "allow":
				check, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if !known[check] {
					report(c.Pos(), fmt.Sprintf("//lint:allow names unknown check %q", check))
					continue
				}
				if reason == "" {
					report(c.Pos(), fmt.Sprintf("//lint:allow %s needs a reason: //lint:allow %s <justification>", check, check))
					continue
				}
				out[line] = &annotation{check: check, reason: reason}
			default:
				report(c.Pos(), fmt.Sprintf("unknown lint directive %q (want deterministic or allow)", verb))
			}
		}
	}
	return out
}

// Run loads every package under root (skipping testdata, vendor and hidden
// directories; _test.go files are out of scope — tests are oracles, not
// runtime paths), runs the given checks, and returns sorted diagnostics.
// Type information is best-effort per package: module-local imports are
// resolved from source, other imports are stubbed, and checks degrade
// conservatively where types are unknown.
func Run(root string, cfg *Config, checks []*Check) ([]Diagnostic, error) {
	l, err := load(root, cfg.ModulePath)
	if err != nil {
		return nil, err
	}
	known := checkNames()
	var diags []Diagnostic
	for _, pk := range l.packages() {
		p := &Pass{
			Fset:        l.fset,
			Rel:         pk.rel,
			Files:       pk.files,
			Info:        pk.info,
			Cfg:         cfg,
			relFile:     l.relFile,
			diags:       &diags,
			annotations: map[string]map[int]*annotation{},
		}
		for _, f := range pk.files {
			name := l.relFile(l.fset.Position(f.Pos()).Filename)
			p.annotations[name] = parseAnnotations(l.fset, f, known, &diags, l.relFile)
		}
		for _, c := range checks {
			c.Run(p)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags, nil
}
