package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module call graph the interprocedural checks
// (hotalloc, lockorder) run on. It is deliberately monomorphic: an edge
// exists only where the callee resolves statically to a module-local
// function — a direct call, a method call on a concrete receiver, a deferred
// or go'd call, a method value, or a function value mentioned outside call
// position (a "ref" edge: passing a function around is conservatively
// treated as calling it). Calls through function-typed fields or variables
// and through interface methods produce no edge; the checks document that as
// their soundness boundary, and the repo's hot paths are written to stay
// monomorphic precisely so this analysis can see them.

// edgeKind says how a callee is reached from its caller.
type edgeKind int

const (
	edgeCall  edgeKind = iota // f()
	edgeDefer                 // defer f()
	edgeGo                    // go f()
	edgeRef                   // f mentioned outside call position
)

func (k edgeKind) String() string {
	switch k {
	case edgeDefer:
		return "defer"
	case edgeGo:
		return "go"
	case edgeRef:
		return "ref"
	}
	return "call"
}

// funcNode is one function or function literal in the module. IDs are stable
// and human-readable: "internal/cluster.(*Outbox).Send" for methods,
// "internal/pregel.Run" for functions, and "<parent>$<n>" for the n-th
// function literal inside parent (pre-order, 1-based, per nesting level).
type funcNode struct {
	id   string
	rel  string // module-relative package dir
	pass *Pass
	file *ast.File
	body *ast.BlockStmt
	pos  token.Pos
	hot  bool // declared a hot-path root via //lint:hotpath
	out  []*callEdge
}

// short strips the package qualifier for compact chain rendering.
func (n *funcNode) short() string {
	return strings.TrimPrefix(n.id, n.rel+".")
}

// callEdge is one resolved caller→callee edge with provenance.
type callEdge struct {
	to   *funcNode
	pos  token.Pos
	kind edgeKind
}

type callGraph struct {
	nodes map[string]*funcNode
	order []string // sorted node IDs, the graph's deterministic iteration order
	byObj map[types.Object]*funcNode
	byLit map[*ast.FuncLit]*funcNode
}

func (g *callGraph) add(n *funcNode) {
	g.nodes[n.id] = n
	g.order = append(g.order, n.id)
}

// sorted returns every node in ID order.
func (g *callGraph) sorted() []*funcNode {
	out := make([]*funcNode, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.nodes[id])
	}
	return out
}

// declID renders the stable ID of a declared function.
func declID(rel string, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return rel + "." + name
	}
	t := fd.Recv.List[0].Type
	star := false
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			star = true
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver: drop type params from the ID
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			if star {
				return rel + ".(*" + tt.Name + ")." + name
			}
			return rel + ".(" + tt.Name + ")." + name
		default:
			return rel + "." + name
		}
	}
}

// buildCallGraph indexes every function and function literal in the module,
// attaches //lint:hotpath directives, and resolves edges. Package, file and
// declaration order are all deterministic, so node IDs, edge order and every
// downstream traversal are too.
func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{
		nodes: map[string]*funcNode{},
		byObj: map[types.Object]*funcNode{},
		byLit: map[*ast.FuncLit]*funcNode{},
	}
	for _, p := range m.Passes {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					n := &funcNode{id: declID(p.Rel, d), rel: p.Rel, pass: p, file: f, body: d.Body, pos: d.Pos()}
					g.add(n)
					if obj := p.Info.Defs[d.Name]; obj != nil {
						g.byObj[obj] = n
					}
					g.indexLits(n, d.Body)
				case *ast.GenDecl:
					// package-level `var handler = func(...) {...}` — index the
					// literal under the var's name so its body is analysable.
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for vi, val := range vs.Values {
							lit, ok := val.(*ast.FuncLit)
							if !ok || vi >= len(vs.Names) {
								continue
							}
							n := &funcNode{id: p.Rel + "." + vs.Names[vi].Name, rel: p.Rel, pass: p, file: f, body: lit.Body, pos: lit.Pos()}
							g.add(n)
							g.byLit[lit] = n
							if obj := p.Info.Defs[vs.Names[vi]]; obj != nil {
								g.byObj[obj] = n
							}
							g.indexLits(n, lit.Body)
						}
					}
				}
			}
		}
	}
	sort.Strings(g.order)
	g.markHot(m)
	for _, n := range g.sorted() {
		g.resolveEdges(n)
	}
	return g
}

// indexLits creates child nodes for the function literals directly inside
// body (nested literals recurse, each level numbering its own children).
func (g *callGraph) indexLits(parent *funcNode, body *ast.BlockStmt) {
	k := 0
	ast.Inspect(body, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		k++
		child := &funcNode{
			id:  fmt.Sprintf("%s$%d", parent.id, k),
			rel: parent.rel, pass: parent.pass, file: parent.file,
			body: lit.Body, pos: lit.Pos(),
		}
		g.add(child)
		g.byLit[lit] = child
		g.indexLits(child, lit.Body)
		return false // the child owns its subtree
	})
}

// markHot attaches //lint:hotpath directives: a directive on the function's
// first line or in the directive block directly above it makes the function
// a root and marks the annotation used.
func (g *callGraph) markHot(m *Module) {
	for _, id := range g.order {
		n := g.nodes[id]
		position := m.Fset.Position(n.pos)
		file := m.relFile(position.Filename)
		byLine := m.annotations[file]
		if byLine == nil {
			continue
		}
		if ann := byLine[position.Line]; ann != nil && ann.verb == "hotpath" {
			ann.used = true
			n.hot = true
		}
		for l := position.Line - 1; ; l-- {
			ann := byLine[l]
			if ann == nil {
				break
			}
			if ann.verb == "hotpath" {
				ann.used = true
				n.hot = true
			}
		}
	}
}

// resolveEdges walks one node's body and records every statically resolvable
// callee. Nested literal bodies are skipped (they are their own nodes); the
// literal itself yields an edge at its creation or call site.
func (g *callGraph) resolveEdges(n *funcNode) {
	p := n.pass
	// funKind remembers which call expressions sit under defer/go, and
	// funExpr marks expressions consumed as call targets so they do not also
	// produce ref edges.
	funKind := map[*ast.CallExpr]edgeKind{}
	funExpr := map[ast.Expr]bool{}
	ast.Inspect(n.body, func(x ast.Node) bool {
		switch t := x.(type) {
		case *ast.DeferStmt:
			funKind[t.Call] = edgeDefer
		case *ast.GoStmt:
			funKind[t.Call] = edgeGo
		case *ast.CallExpr:
			fun := unparen(t.Fun)
			funExpr[fun] = true
			if inner, ok := genericBase(fun); ok {
				funExpr[inner] = true
				fun = inner
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				funExpr[ast.Expr(sel.Sel)] = true
			}
			kind, ok := funKind[t]
			if !ok {
				kind = edgeCall
			}
			if lit, isLit := fun.(*ast.FuncLit); isLit {
				if to := g.byLit[lit]; to != nil {
					n.out = append(n.out, &callEdge{to: to, pos: t.Pos(), kind: kind})
				}
			} else if to := g.resolve(p, fun); to != nil {
				n.out = append(n.out, &callEdge{to: to, pos: t.Pos(), kind: kind})
			}
		case *ast.FuncLit:
			if !funExpr[ast.Expr(t)] {
				if to := g.byLit[t]; to != nil {
					n.out = append(n.out, &callEdge{to: to, pos: t.Pos(), kind: edgeRef})
				}
			}
			return false
		case *ast.Ident:
			if !funExpr[ast.Expr(t)] {
				if to := g.resolve(p, t); to != nil {
					n.out = append(n.out, &callEdge{to: to, pos: t.Pos(), kind: edgeRef})
				}
			}
		case *ast.SelectorExpr:
			if !funExpr[ast.Expr(t)] {
				if to := g.resolve(p, t); to != nil {
					n.out = append(n.out, &callEdge{to: to, pos: t.Pos(), kind: edgeRef})
					funExpr[ast.Expr(t.Sel)] = true // don't re-resolve the Sel ident
				}
			}
		}
		return true
	})
}

// resolve maps an expression in call or value position to a module-local
// function node, if the type-checker pinned it to one.
func (g *callGraph) resolve(p *Pass, e ast.Expr) *funcNode {
	var obj types.Object
	switch t := e.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[t]
	case *ast.SelectorExpr:
		// methods and cross-package functions resolve through the Sel ident;
		// byObj also answers for package-level vars bound to indexed literals
		obj = p.Info.Uses[t.Sel]
	}
	if obj == nil {
		return nil
	}
	if n := g.byObj[obj]; n != nil {
		return n
	}
	// a method call on an instantiated generic receiver uses the instance's
	// method object; its Origin is the declared generic method the graph
	// indexed under
	if fn, ok := obj.(*types.Func); ok {
		return g.byObj[fn.Origin()]
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// genericBase unwraps an explicit generic instantiation (F[T] in call
// position) to the underlying function expression.
func genericBase(e ast.Expr) (ast.Expr, bool) {
	switch t := e.(type) {
	case *ast.IndexExpr:
		switch t.X.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			return t.X, true
		}
	case *ast.IndexListExpr:
		switch t.X.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			return t.X, true
		}
	}
	return nil, false
}

// roots resolves the configured root IDs plus every //lint:hotpath function.
// Configured IDs that do not resolve are skipped silently: the same Default
// config lints both the real module and the test fixtures, and a root is a
// claim about the module that declares it (TestHotPathRootsResolve pins the
// real module's roots).
func (g *callGraph) roots(ids []string) []*funcNode {
	seen := map[string]bool{}
	var out []*funcNode
	for _, id := range ids {
		if n := g.nodes[id]; n != nil && !seen[id] {
			seen[id] = true
			out = append(out, n)
		}
	}
	for _, id := range g.order {
		n := g.nodes[id]
		if n.hot && !seen[n.id] {
			seen[n.id] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// reach runs BFS from the roots over call/defer/go/ref edges, returning the
// visit order and, for provenance, each node's BFS parent (nil for roots).
func (g *callGraph) reach(roots []*funcNode) (order []*funcNode, parent map[*funcNode]*funcNode) {
	parent = map[*funcNode]*funcNode{}
	visited := map[*funcNode]bool{}
	queue := make([]*funcNode, 0, len(roots))
	for _, r := range roots {
		if !visited[r] {
			visited[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.out {
			if !visited[e.to] {
				visited[e.to] = true
				parent[e.to] = n
				queue = append(queue, e.to)
			}
		}
	}
	return order, parent
}

// chain renders the root→node provenance path for diagnostics: the root
// keeps its package qualifier, inner frames use short names.
func (g *callGraph) chain(n *funcNode, parent map[*funcNode]*funcNode) string {
	var rev []*funcNode
	for cur := n; cur != nil; cur = parent[cur] {
		rev = append(rev, cur)
	}
	parts := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		if i == len(rev)-1 {
			parts = append(parts, rev[i].id)
		} else {
			parts = append(parts, rev[i].short())
		}
	}
	return strings.Join(parts, " → ")
}
