package lint

import "testing"

// TestModuleIsClean is the contract `make lint` enforces, as a plain go
// test: the real module must carry zero diagnostics. A regression anywhere
// in the repo fails this test with the exact positioned finding.
func TestModuleIsClean(t *testing.T) {
	root, modpath, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	cfg := Default()
	cfg.ModulePath = modpath
	diags, err := Run(root, cfg, Checks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
