// Package tensorfix is the exemption negative: internal/tensor is exempt
// from panicpolicy (shape validation panics by design, mirroring the dense
// kernels) and is listed in GoAllowed (it owns its worker pool). Nothing in
// this file is flagged.
package tensorfix

func Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("tensor fixture: negative dimension")
	}
}

func runParallel(fns []func()) {
	done := make(chan struct{}, len(fns))
	for _, fn := range fns {
		fn := fn
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
}
