// Package pregelfix exercises the maprange check: internal/pregel is a
// deterministic engine package, so map iteration whose body reaches
// observable state must use sorted keys or carry an annotation.
package pregelfix

type outbox struct{}

func (outbox) Send(to int, m float64) {}

// sendUnderMapOrder emits messages in Go's randomised map order.
func sendUnderMapOrder(m map[int]float64, ob outbox) {
	for k, v := range m { // want "calls Send"
		ob.Send(k, v)
	}
}

// appendUnderMapOrder folds the iteration order into an output slice.
func appendUnderMapOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends to output"
		out = append(out, k)
	}
	return out
}

// lastWriterWins is an order-dependent fold: the final value of best is
// whichever key the runtime happened to visit last among the longest.
func lastWriterWins(m map[string]int) string {
	best := ""
	for k := range m { // want "overwrites best declared outside the loop"
		if len(k) >= len(best) {
			best = k
		}
	}
	return best
}

// floatAccum does not commute bitwise: float addition order changes the
// rounding.
func floatAccum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "accumulates floating-point state into sum"
		sum += v
	}
	return sum
}

// channelSend leaks the iteration order to whoever drains the channel.
func channelSend(m map[int]int, ch chan int) {
	for k := range m { // want "sends on a channel"
		ch <- k
	}
}

// intAccum commutes exactly for integers: not flagged.
func intAccum(m map[int][]int) int {
	n := 0
	for _, v := range m {
		n += len(v)
	}
	return n
}

// keyedWrite touches each key of out exactly once: writes are disjoint, so
// the order cannot matter. Not flagged.
func keyedWrite(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// nestedKeyed writes through an outer index too, but the innermost index is
// the range key: still disjoint. Not flagged.
func nestedKeyed(ms []map[int]float64, out []map[int]float64) {
	for w := range ms {
		for k, v := range ms[w] {
			out[w][k] = v
		}
	}
}

// prune deletes under iteration, which Go defines regardless of order. Not
// flagged.
func prune(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// annotatedArgmax is a max fold under a strict total order: the winner is
// unique for any iteration order, so the annotation suppresses the report.
func annotatedArgmax(m map[int]float64) int {
	best, bestV := -1, 0.0
	//lint:deterministic argmax under the strict total order (value desc, key asc); the winner is unique for any iteration order
	for k, v := range m {
		if v > bestV || (v == bestV && (best == -1 || k < best)) {
			best, bestV = k, v
		}
	}
	return best
}
