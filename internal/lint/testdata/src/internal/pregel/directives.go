package pregelfix

// badDirectives exercises the lintdirective diagnostics: a malformed
// directive suppresses nothing (the underlying report still fires) and is a
// finding in its own right.
func badDirectives(m map[int]int, ch chan int) {
	// want+1 "needs a reason"
	//lint:deterministic
	for k := range m { // want "sends on a channel"
		ch <- k
	}

	// want+1 "unknown check"
	//lint:allow nosuchcheck the check name is wrong so this cannot suppress anything

	// want+1 "needs a reason"
	//lint:allow maprange

	// want+1 "unknown lint directive"
	//lint:frobnicate reasons are not enough for verbs that do not exist
}
