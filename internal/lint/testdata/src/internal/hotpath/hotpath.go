// Package hotpathfix exercises the interprocedural hotalloc check: roots are
// declared in-source with //lint:hotpath, every allocation class has a
// positive case, the diagnostics carry root→site call chains across function
// boundaries (including deferred calls and method values), and suppression
// demands a reason. cold is the reachability negative: it allocates freely
// and is never reported because no root reaches it.
package hotpathfix

import "fmt"

type payload struct{ a, b int }

type ring struct {
	buf []int
}

//lint:hotpath the fixture's dense inner loop
func hotRoot(r *ring, n int) {
	s := make([]int, n) // want "make allocates"
	r.buf = s
	helper(r, n)
	r.consume(n)
	warmup(r, n)
}

func helper(r *ring, n int) {
	r.buf = append(r.buf, n) // want "append may grow its backing array"
	sink(n)                  // want "int boxed into interface"
	deep(r)
}

func deep(r *ring) {
	p := new(payload) // want "new allocates on the hot path [internal/hotpath.hotRoot → helper → deep]"
	p.a = 1
	r.buf = r.buf[:0]
}

func (r *ring) consume(n int) {
	stamp := map[int]int{} // want "map literal allocates"
	_ = stamp
	ids := []int{1, 2, n} // want "slice literal allocates"
	_ = ids
	pp := &payload{a: n} // want "&composite literal escapes"
	pp.b = n
}

func sink(v any) { _ = v }

// warmup shows the suppression contract: growth to the high-water mark is a
// warm-up allocation, excused with a reason.
func warmup(r *ring, n int) {
	if cap(r.buf) < n {
		//lint:allow hotalloc warm-up growth only: the buffer reaches its high-water mark once, then is reused
		r.buf = make([]int, n)
	}
	r.buf = r.buf[:n]
}

//lint:hotpath text shaping on a second declared root
func hotText(name string, raw []byte, n int) string {
	label := "q:" + name // want "string concatenation allocates"
	bs := []byte(label)  // want "string→slice conversion copies"
	_ = bs
	back := string(raw) // want "→string conversion copies"
	_ = back
	ch := string(rune(n)) // want "value→string conversion allocates"
	_ = ch
	desc := fmt.Sprintf("%s:%d", label, n) // want "fmt.Sprintf allocates"
	grab := func() string { return desc }  // want "closure allocates"
	return grab()
}

//lint:hotpath deferred calls and method values are call edges too
func hotDefer(r *ring) {
	defer r.consume(0)
	mv := r.consume
	_ = mv
}

// cold allocates and nobody declared it hot: no diagnostics.
func cold(n int) []int {
	out := make([]int, n)
	return append(out, len(out))
}

// want+1 "marks no function"
//lint:hotpath this directive attaches to nothing and must be reported stale
var floating = 3
