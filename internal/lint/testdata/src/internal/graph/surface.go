// Package graphfix exercises the panicpolicy check: exported entry points
// outside the shape-validation kernels return errors (the PR 2 contract).
package graphfix

import "errors"

type Builder struct{ n int }

// Checked follows the contract: not flagged.
func Checked(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}

func Unchecked(n int) int {
	if n < 0 {
		panic("negative") // want "panic in exported Unchecked"
	}
	return n
}

func (b *Builder) Grow(n int) {
	if n < 0 {
		panic("negative grow") // want "panic in exported Grow"
	}
	b.n += n
}

// MustGrow documents a programmer-error precondition; the annotation records
// the justification.
func MustGrow(b *Builder, n int) {
	if n < 0 {
		//lint:allow panicpolicy documented programmer-error precondition (fixture)
		panic("negative grow")
	}
	b.n += n
}

type helper struct{}

// Explode is exported in name only: methods on unexported receiver types are
// not package surface. Not flagged.
func (helper) Explode() { panic("internal contract") }

// internalGuard: unexported helpers own their contract. Not flagged.
func internalGuard(n int) {
	if n < 0 {
		panic("helper contract")
	}
}
