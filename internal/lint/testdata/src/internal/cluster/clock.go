// Package clusterfix exercises the wallclock check inside the metered
// runtime's scope, and doubles as the nakedgo negative: internal/cluster owns
// concurrency, so its go statements are legal.
package clusterfix

import "time"

func readsClock() time.Duration {
	t0 := time.Now()             // want "time.Now in a deterministic engine path"
	time.Sleep(time.Millisecond) // want "time.Sleep"
	return time.Since(t0)        // want "time.Since"
}

func timers(d time.Duration) {
	<-time.After(d)     // want "time.After"
	_ = time.Tick(d)    // want "time.Tick"
	_ = time.NewTimer(d) // want "time.NewTimer"
}

// annotatedExport: observability exporters may stamp host time; the
// annotation records why the exemption is sound.
func annotatedExport() time.Time {
	//lint:allow wallclock trace export stamps host time for humans; results never read it
	return time.Now()
}

// shadowed: a local identifier named time is not package time.
func shadowed() int {
	time := struct{ Now func() int }{Now: func() int { return 7 }}
	return time.Now()
}

// ownsConcurrency: go statements are legal in the cluster runtime.
func ownsConcurrency(fn func()) {
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	<-done
}
