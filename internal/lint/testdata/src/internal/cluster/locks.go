// lockorder fixtures. The mutexes are module-local fakes: the check
// recognises Lock/RLock/Unlock/RUnlock syntactically (sync is a stubbed
// import in the lint loader) and classifies receivers by owner type, so a
// fake works exactly like sync.Mutex does in the real module.
package clusterfix

type fakeMu struct{ held bool }

func (m *fakeMu) Lock()    {}
func (m *fakeMu) Unlock()  {}
func (m *fakeMu) RLock()   {}
func (m *fakeMu) RUnlock() {}

type lockA struct{ mu fakeMu }
type lockB struct{ mu fakeMu }

// abOrder and baOrder acquire the same two lock classes in opposite orders:
// the canonical inversion, reported once, anchored at the lexicographically
// smaller direction with the opposite site cross-referenced.
func abOrder(a *lockA, b *lockB) {
	a.mu.Lock()
	b.mu.Lock() // want "lock order inversion"
	b.mu.Unlock()
	a.mu.Unlock()
}

func baOrder(a *lockA, b *lockB) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type lockC struct{ mu fakeMu }
type lockD struct{ mu fakeMu }

// outerCD/outerDC invert interprocedurally: each holds its own lock across a
// call (the deferred unlock keeps it held) into a helper that acquires the
// other. The diagnostic names the call chain.
func outerCD(c *lockC, d *lockD) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acquireD(d) // want "acquires internal/cluster.lockD.mu while holding internal/cluster.lockC.mu (call chain outerCD → acquireD)"
}

func acquireD(d *lockD) {
	d.mu.Lock()
	d.mu.Unlock()
}

func outerDC(c *lockC, d *lockD) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	acquireC(c)
}

func acquireC(c *lockC) {
	c.mu.Lock()
	c.mu.Unlock()
}

// relockSelf re-acquires a class it already holds, directly.
func relockSelf(a *lockA) {
	a.mu.Lock()
	a.mu.Lock() // want "self-deadlocks"
	a.mu.Unlock()
	a.mu.Unlock()
}

// relockViaCall re-acquires through a callee's summary.
func relockViaCall(b *lockB) {
	b.mu.Lock()
	lockBAgain(b) // want "self-deadlocks"
	b.mu.Unlock()
}

func lockBAgain(b *lockB) {
	b.mu.Lock()
	b.mu.Unlock()
}

type lockE struct{ mu fakeMu }
type lockF struct{ mu fakeMu }

// consistent1/consistent2 nest two classes in the same order everywhere: a
// partial order exists, nothing to report.
func consistent1(e *lockE, f *lockF) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func consistent2(e *lockE, f *lockF) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

// sequential never holds both at once — release before acquire is not an
// order edge, whatever the textual order.
func sequential(a *lockA, b *lockB) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

type lockG struct{ mu fakeMu }
type lockH struct{ mu fakeMu }

// annotatedGH/annotatedHG invert, but the anchor site carries a reasoned
// suppression (the annotation is "used", so it is not reported stale).
func annotatedGH(g *lockG, h *lockH) {
	g.mu.Lock()
	//lint:allow lockorder fixture: the two phases are documented as never concurrent, the inversion cannot interleave
	h.mu.Lock()
	h.mu.Unlock()
	g.mu.Unlock()
}

func annotatedHG(g *lockG, h *lockH) {
	h.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	h.mu.Unlock()
}

// localMu takes the mutex as a parameter: unclassifiable, conservatively
// ignored rather than guessed into a false pair.
func localMu(mu *fakeMu, a *lockA) {
	mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	mu.Unlock()
}

var globalMu fakeMu

// usesGlobal exercises the package-level-var lock class; no nesting, no
// report.
func usesGlobal() {
	globalMu.Lock()
	globalMu.Unlock()
}
