package clusterfix

import "time"

// The file-name allowlist ("bench_", "_bench") exempts benchmark drivers:
// they measure the host, not the simulation. Nothing here is flagged.
func hostTiming(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
