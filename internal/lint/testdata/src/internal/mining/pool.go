// Package miningfix exercises the nakedgo check: internal/mining is outside
// the packages that own concurrency, so ad-hoc goroutines bypass the
// runtime's barrier, panic aggregation and fault injection.
package miningfix

func fansOut(fn func()) {
	done := make(chan struct{})
	go func() { // want "go statement outside the cluster runtime"
		fn()
		close(done)
	}()
	<-done
}

func annotatedPool(fns []func()) {
	done := make(chan struct{}, len(fns))
	for _, fn := range fns {
		fn := fn
		//lint:allow nakedgo fixture: bounded pool, every goroutine joined before return
		go func() {
			fn()
			done <- struct{}{}
		}()
	}
	for range fns {
		<-done
	}
}
