// Stale-suppression fixtures: a well-formed directive whose diagnostic no
// longer fires is dead weight — the code it excused was fixed or deleted —
// and the annotation inventory must not rot. Each directive below suppresses
// zero diagnostics and is itself reported.
package gnnfix

// want+1 "suppresses zero globalrand diagnostics"
//lint:allow globalrand the global draw this excused was deleted long ago; the annotation rotted

func cleanDraw() int { return 4 }

// want+1 "suppresses zero maprange diagnostics"
//lint:deterministic the fold this excused is gone (and this package is outside the maprange scope anyway)

var answer = 7
