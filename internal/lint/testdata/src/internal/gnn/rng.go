// Package gnnfix exercises the globalrand check: training pipelines must
// draw from an injected seeded *rand.Rand so crash recovery can snapshot and
// rewind draw positions.
package gnnfix

import (
	"math/rand"
	mrv2 "math/rand/v2"
)

func globalDraws() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle"
	_ = mrv2.IntN(4)                   // want "global mrv2.IntN"
	return rand.Float64()              // want "global rand.Float64"
}

// injected is the contract: constructors stay legal, draws go through the
// seeded instance.
func injected(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func annotated() int {
	//lint:allow globalrand fixture demonstrating a justified, documented exemption
	return rand.Int()
}
