package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// buildModule loads root and assembles the Module + call graph the
// interprocedural checks run on, without running any check.
func buildModule(t *testing.T, root string, cfg *Config) *Module {
	t.Helper()
	l, err := load(root, cfg.ModulePath)
	if err != nil {
		t.Fatalf("load %s: %v", root, err)
	}
	var diags []Diagnostic
	byFile := map[string]map[int]*annotation{}
	var annos []*annotation
	known := checkNames()
	var passes []*Pass
	for _, pk := range l.packages() {
		p := &Pass{
			Fset:        l.fset,
			Rel:         pk.rel,
			Files:       pk.files,
			Info:        pk.info,
			Cfg:         cfg,
			relFile:     l.relFile,
			diags:       &diags,
			annotations: byFile,
		}
		for _, f := range pk.files {
			name := l.relFile(l.fset.Position(f.Pos()).Filename)
			byFile[name] = parseAnnotations(l.fset, f, known, &diags, l.relFile, &annos)
		}
		passes = append(passes, p)
	}
	m := &Module{
		Fset:        l.fset,
		Passes:      passes,
		Cfg:         cfg,
		relFile:     l.relFile,
		diags:       &diags,
		annotations: byFile,
	}
	m.graph = buildCallGraph(m)
	return m
}

// TestHotPathRootsResolve pins that every configured hot-path root names a
// function that actually exists in the real module. roots() skips unresolved
// IDs silently (the same Default config lints the fixtures), so a typo or a
// rename would otherwise turn a root into a silent no-op — the whole
// allocation-freedom proof for that path would vanish without a failure.
func TestHotPathRootsResolve(t *testing.T) {
	root, modpath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.ModulePath = modpath
	m := buildModule(t, root, cfg)
	for _, id := range cfg.HotPathRoots {
		if m.graph.nodes[id] == nil {
			t.Errorf("HotPathRoots entry %q resolves to no function in the module (renamed? typo?)", id)
		}
	}
}

// TestConfigScopesExist pins every directory-valued scope list in the default
// config to an existing directory: a scope naming a moved or deleted package
// silently stops checking anything.
func TestConfigScopesExist(t *testing.T) {
	root, _, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	lists := map[string][]string{
		"MapRangePkgs":  cfg.MapRangePkgs,
		"WallclockPkgs": cfg.WallclockPkgs,
		"RandScope":     cfg.RandScope,
		"GoScope":       cfg.GoScope,
		"GoAllowed":     cfg.GoAllowed,
		"PanicScope":    cfg.PanicScope,
		"PanicExempt":   cfg.PanicExempt,
		"LockOrderPkgs": cfg.LockOrderPkgs,
	}
	names := make([]string, 0, len(lists))
	for name := range lists {
		names = append(names, name)
	}
	sort.Strings(names)
	check := func(list, dir string) {
		fi, err := os.Stat(filepath.Join(root, filepath.FromSlash(dir)))
		if err != nil || !fi.IsDir() {
			t.Errorf("%s entry %q is not a directory under the module root", list, dir)
		}
	}
	for _, name := range names {
		for _, dir := range lists[name] {
			check(name, dir)
		}
	}
	// HotPathRoots are function IDs "<pkgdir>.<func>"; the package dir part
	// must exist too.
	for _, id := range cfg.HotPathRoots {
		dir, _, ok := strings.Cut(id, ".")
		if !ok {
			t.Errorf("HotPathRoots entry %q has no package dir prefix", id)
			continue
		}
		check("HotPathRoots", dir)
	}
}

// TestModuleLockOrderSummaries sanity-checks the lockorder prerequisites on
// the real module: the packages in scope contain lock acquisitions the
// analysis can classify (an empty event stream would make the clean run
// vacuous).
func TestModuleLockOrderSummaries(t *testing.T) {
	root, modpath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.ModulePath = modpath
	m := buildModule(t, root, cfg)
	inScope := func(rel string) bool {
		for _, pre := range cfg.LockOrderPkgs {
			if pathWithin(rel, pre) {
				return true
			}
		}
		return false
	}
	events := 0
	for _, id := range m.graph.order {
		n := m.graph.nodes[id]
		if !inScope(n.rel) {
			continue
		}
		for _, ev := range lockEvents(m, n) {
			if ev.kind == evAcquire {
				events++
			}
		}
	}
	if events == 0 {
		t.Fatal("no classifiable lock acquisitions found in the lockorder scope; the module-clean result is vacuous")
	}
}
