package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for … range m` over a map, inside the deterministic engine
// packages, whose body lets Go's randomised iteration order reach observable
// state. The triggers, in the order they are searched:
//
//   - a message-send (configured method names, or a channel send),
//   - an append growing state declared outside the loop,
//   - a plain assignment to outer state (last-writer-wins fold),
//   - a floating-point (or untyped) compound accumulation into outer state.
//
// Deliberately NOT flagged, because they commute across iteration orders:
// integer compound accumulation (`n += len(v)`), `delete(m, k)`, and plain
// writes to an outer map/slice indexed by the range key itself
// (`out[k] = f(v)` touches distinct keys exactly once).
//
// The fix is to iterate det.SortedKeys(m), or to annotate the loop with
// //lint:deterministic <reason> when the fold is provably order-independent
// (e.g. an argmax under a strict total order).
var MapRange = &Check{
	Name: "maprange",
	Doc:  "map iteration feeding messages, floats or output must use sorted keys or a //lint:deterministic annotation",
	Run: func(p *Pass) {
		if !p.PkgInScope(p.Cfg.MapRangePkgs) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !p.isMapType(rs.X) {
					return true
				}
				if msg := p.mapRangeHazard(rs); msg != "" {
					p.Reportf("maprange", rs.Pos(),
						"map iteration order reaches observable state (%s); iterate det.SortedKeys or annotate //lint:deterministic", msg)
				}
				return true
			})
		}
	},
}

func (p *Pass) isMapType(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// mapRangeHazard returns a description of the first order-sensitive effect
// in the loop body, or "" if the body looks order-independent. Syntactic
// (depth-first) search order keeps the chosen trigger deterministic.
func (p *Pass) mapRangeHazard(rs *ast.RangeStmt) (hazard string) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok && inList(sel.Sel.Name, p.Cfg.SendMethods) {
				hazard = "calls " + sel.Sel.Name
				return false
			}
		case *ast.SendStmt:
			hazard = "sends on a channel"
			return false
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range st.Lhs {
				h := p.assignHazard(rs, lhs, st.Tok)
				if h == "" {
					continue
				}
				// x = append(x, …): the slice's element order IS the
				// iteration order, a more precise story than "overwrites x"
				if st.Tok == token.ASSIGN && p.isAppendCall(rhsFor(st, i)) {
					h = "appends to output in iteration order"
				}
				hazard = h
				return false
			}
		case *ast.IncDecStmt:
			if h := p.accumHazard(rs, st.X); h != "" {
				hazard = h
				return false
			}
		}
		return true
	})
	return hazard
}

// assignHazard classifies one assignment target under map iteration.
func (p *Pass) assignHazard(rs *ast.RangeStmt, lhs ast.Expr, tok token.Token) string {
	if tok != token.ASSIGN {
		// compound: += -= *= /= … — commutes for integers, not for floats
		return p.accumHazard(rs, lhs)
	}
	root, viaKey := p.lhsRoot(rs, lhs)
	if root == nil || !p.declaredOutside(rs, root) {
		return ""
	}
	if viaKey {
		return "" // out[k] = …: distinct keys, order-independent
	}
	return "overwrites " + root.Name + " declared outside the loop (last-writer-wins fold)"
}

// accumHazard flags compound accumulation into outer state when the element
// type is floating-point/complex or unknown (conservative).
func (p *Pass) accumHazard(rs *ast.RangeStmt, lhs ast.Expr) string {
	root, _ := p.lhsRoot(rs, lhs)
	if root == nil || !p.declaredOutside(rs, root) {
		return ""
	}
	if tv, ok := p.Info.Types[lhs]; ok && tv.Type != nil {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsComplex) == 0 {
			return "" // integer/bool/string accumulation commutes
		}
	}
	return "accumulates floating-point state into " + root.Name
}

// lhsRoot unwraps an assignment target to its base identifier. viaKey is
// true when some index on the way down is exactly the loop's key variable
// (out[k] = …, c.resid[w][k] = …): distinct iterations then write disjoint
// locations and the write commutes across iteration orders.
func (p *Pass) lhsRoot(rs *ast.RangeStmt, e ast.Expr) (root *ast.Ident, viaKey bool) {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t, viaKey
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			viaKey = viaKey || p.isRangeKey(rs, t.Index)
			e = t.X
		default:
			return nil, false
		}
	}
}

func (p *Pass) isRangeKey(rs *ast.RangeStmt, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	ko := p.Info.Defs[key]
	uo := p.Info.Uses[id]
	if ko != nil && uo != nil {
		return ko == uo
	}
	return id.Name == key.Name // best-effort without types
}

// declaredOutside reports whether id's declaration lies outside the range
// statement (the range key/value variables are declared inside its span).
// Unresolved identifiers count as outside: the conservative reading of the
// determinism contract.
func (p *Pass) declaredOutside(rs *ast.RangeStmt, id *ast.Ident) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// rhsFor pairs an assignment's i-th target with its value (the single RHS in
// a tuple assignment like a, b = f()).
func rhsFor(st *ast.AssignStmt, i int) ast.Expr {
	if len(st.Rhs) == len(st.Lhs) {
		return st.Rhs[i]
	}
	return st.Rhs[0]
}

func (p *Pass) isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append" && p.isBuiltin(id)
}

func (p *Pass) isBuiltin(id *ast.Ident) bool {
	if obj := p.Info.Uses[id]; obj != nil {
		_, ok := obj.(*types.Builtin)
		return ok
	}
	return true
}
