package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFileString(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Check: "hotalloc", File: "internal/x/a.go", Line: 10, Col: 2, Message: "make allocates on the hot path [r → f]"},
		{Check: "hotalloc", File: "internal/x/a.go", Line: 20, Col: 2, Message: "make allocates on the hot path [r → f]"},
		{Check: "lockorder", File: "internal/y/b.go", Line: 5, Col: 1, Message: "lock order inversion"},
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("got %d entries, want 2 (identical diagnostics collapse with a count): %+v", len(base), base)
	}
	// sorted by (check, file, message)
	if base[0].Check != "hotalloc" || base[0].Count != 2 {
		t.Fatalf("first entry = %+v, want hotalloc ×2", base[0])
	}
	if base[1].Check != "lockorder" || base[1].Count != 1 {
		t.Fatalf("second entry = %+v, want lockorder ×1", base[1])
	}
}

func TestApplyBaselineFiltersWithMultiplicity(t *testing.T) {
	base := []BaselineEntry{
		{Check: "hotalloc", File: "internal/x/a.go", Message: "make allocates on the hot path [r → f]", Count: 1},
	}
	diags := []Diagnostic{
		// same shape at two different lines: the baseline absorbs exactly one
		{Check: "hotalloc", File: "internal/x/a.go", Line: 10, Message: "make allocates on the hot path [r → f]"},
		{Check: "hotalloc", File: "internal/x/a.go", Line: 99, Message: "make allocates on the hot path [r → f]"},
	}
	fresh, accepted, unused := ApplyBaseline(diags, base)
	if accepted != 1 || len(fresh) != 1 || len(unused) != 0 {
		t.Fatalf("accepted=%d fresh=%d unused=%d, want 1/1/0", accepted, len(fresh), len(unused))
	}
	if fresh[0].Line != 99 {
		t.Fatalf("fresh diagnostic at line %d, want the second occurrence (99)", fresh[0].Line)
	}
}

func TestApplyBaselineLineInsensitive(t *testing.T) {
	base := []BaselineEntry{
		{Check: "hotalloc", File: "internal/x/a.go", Message: "make allocates on the hot path [r → f]", Count: 1},
	}
	moved := []Diagnostic{
		{Check: "hotalloc", File: "internal/x/a.go", Line: 345, Col: 7, Message: "make allocates on the hot path [r → f]"},
	}
	fresh, accepted, _ := ApplyBaseline(moved, base)
	if accepted != 1 || len(fresh) != 0 {
		t.Fatalf("a moved diagnostic (same check+file+message) must still match: accepted=%d fresh=%v", accepted, fresh)
	}
}

func TestApplyBaselineReportsUnused(t *testing.T) {
	base := []BaselineEntry{
		{Check: "hotalloc", File: "internal/gone.go", Message: "make allocates on the hot path [r → f]", Count: 3},
	}
	fresh, accepted, unused := ApplyBaseline(nil, base)
	if accepted != 0 || len(fresh) != 0 {
		t.Fatalf("accepted=%d fresh=%v, want 0/none", accepted, fresh)
	}
	if len(unused) != 1 || unused[0].Count != 3 {
		t.Fatalf("unused=%+v, want the whole ×3 entry reported so the baseline can be re-tightened", unused)
	}
}

func TestWriteBaselineIsDiffStable(t *testing.T) {
	diags := []Diagnostic{
		{Check: "b", File: "f2.go", Message: "m2"},
		{Check: "a", File: "f1.go", Message: "m1"},
		{Check: "a", File: "f1.go", Message: "m1"},
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "one.json"), filepath.Join(dir, "two.json")
	if err := WriteBaseline(p1, diags); err != nil {
		t.Fatal(err)
	}
	// reversed input order must serialize identically
	rev := []Diagnostic{diags[2], diags[1], diags[0]}
	if err := WriteBaseline(p2, rev); err != nil {
		t.Fatal(err)
	}
	b1, err1 := readFileString(p1)
	b2, err2 := readFileString(p2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if b1 != b2 {
		t.Fatalf("baseline bytes depend on input order:\n%s\nvs\n%s", b1, b2)
	}
	if !strings.HasSuffix(b1, "\n") {
		t.Fatal("baseline file must end with a newline")
	}
}
