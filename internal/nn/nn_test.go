package nn

import (
	"math"
	"testing"

	"graphsys/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 1, 1)
	d.W.W.Set(0, 0, 2)
	d.W.W.Set(1, 0, 3)
	d.B.W.Set(0, 0, 1)
	x := tensor.FromRows([][]float32{{1, 1}, {2, 0}})
	y := d.Forward(x)
	if y.At(0, 0) != 6 || y.At(1, 0) != 5 {
		t.Fatalf("dense forward: %v", y.Data)
	}
}

func TestDenseBackwardShapes(t *testing.T) {
	d := NewDense(3, 2, 1)
	x := tensor.Xavier(5, 3, 2)
	y := d.Forward(x)
	dx := d.Backward(y)
	if dx.Rows != 5 || dx.Cols != 3 {
		t.Fatal("dx shape")
	}
	if d.W.Grad.Norm() == 0 || d.B.Grad.Norm() == 0 {
		t.Fatal("grads not accumulated")
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromRows([][]float32{{-1, 2}})
	y := r.Forward(x)
	if y.At(0, 0) != 0 || y.At(0, 1) != 2 {
		t.Fatal("relu forward")
	}
	dy := tensor.FromRows([][]float32{{5, 7}})
	dx := r.Backward(dy)
	if dx.At(0, 0) != 0 || dx.At(0, 1) != 7 {
		t.Fatal("relu backward")
	}
}

func TestSGDMinimizesQuadratic(t *testing.T) {
	// minimize (w-3)^2 via gradient 2(w-3)
	p := NewParam(tensor.New(1, 1))
	opt := &SGD{LR: 0.1}
	for i := 0; i < 200; i++ {
		p.Grad.Set(0, 0, 2*(p.W.At(0, 0)-3))
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.W.At(0, 0))-3) > 1e-3 {
		t.Fatalf("w = %f", p.W.At(0, 0))
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	p := NewParam(tensor.New(1, 2))
	p.W.Set(0, 0, 10)
	p.W.Set(0, 1, -10)
	opt := NewAdam(0.3)
	target := []float32{3, -4}
	for i := 0; i < 400; i++ {
		for j := 0; j < 2; j++ {
			p.Grad.Set(0, j, 2*(p.W.At(0, j)-target[j]))
		}
		opt.Step([]*Param{p})
	}
	for j := 0; j < 2; j++ {
		if math.Abs(float64(p.W.At(0, j)-target[j])) > 1e-2 {
			t.Fatalf("w[%d] = %f", j, p.W.At(0, j))
		}
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := NewParam(tensor.New(1, 1))
	p.W.Set(0, 0, 1)
	opt := &SGD{LR: 0.1, WeightDecay: 1}
	for i := 0; i < 10; i++ {
		opt.Step([]*Param{p}) // zero gradient: pure decay
	}
	w := float64(p.W.At(0, 0))
	if w >= 1 || w <= 0 {
		t.Fatalf("decayed weight %f", w)
	}
}

func TestAccuracyMasked(t *testing.T) {
	logits := tensor.FromRows([][]float32{{1, 0}, {0, 1}, {1, 0}})
	labels := []int{0, 1, 1}
	if a := Accuracy(logits, labels, nil); math.Abs(a-2.0/3) > 1e-9 {
		t.Fatalf("acc = %f", a)
	}
	mask := []bool{true, true, false}
	if a := Accuracy(logits, labels, mask); a != 1 {
		t.Fatalf("masked acc = %f", a)
	}
	if a := Accuracy(logits, []int{-1, -1, -1}, nil); a != 0 {
		t.Fatalf("all-masked acc = %f", a)
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	logits := tensor.New(2, 4) // all zeros → uniform softmax
	loss, _ := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-5 {
		t.Fatalf("uniform loss = %f want ln4", loss)
	}
}

func TestMSE(t *testing.T) {
	pred := tensor.FromRows([][]float32{{1, 2}})
	target := tensor.FromRows([][]float32{{0, 4}})
	loss, grad := MSE(pred, target)
	if math.Abs(loss-(1+4)/2.0) > 1e-6 {
		t.Fatalf("mse = %f", loss)
	}
	// d/dpred mean((p-t)^2) = 2(p-t)/n
	if grad.At(0, 0) != 1 || grad.At(0, 1) != -2 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestMSEGradientDescentFits(t *testing.T) {
	// fit y = 2x with a 1-weight linear model using MSE
	p := NewParam(tensor.New(1, 1))
	opt := &SGD{LR: 0.01} // bounded by 2·lr·x² < 1 for stability
	for i := 0; i < 600; i++ {
		x := float32(i%5) + 1
		pred := tensor.FromRows([][]float32{{p.W.At(0, 0) * x}})
		target := tensor.FromRows([][]float32{{2 * x}})
		_, g := MSE(pred, target)
		p.Grad.Set(0, 0, g.At(0, 0)*x)
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.W.At(0, 0))-2) > 1e-2 {
		t.Fatalf("w = %f", p.W.At(0, 0))
	}
}

func TestDropout(t *testing.T) {
	d := NewDropout(0.5, 1)
	x := tensor.New(10, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected value %f", v)
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Fatalf("dropout zeroed %d of 1000", zeros)
	}
	// backward gates identically
	dy := x.Clone()
	dx := d.Backward(dy)
	for i := range dx.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
	// eval mode is identity
	d.Eval = true
	y2 := d.Forward(x)
	if tensor.MaxAbsDiff(y2, x) != 0 {
		t.Fatal("eval mode not identity")
	}
}

func TestAdamSnapshotRestoreReplaysExactly(t *testing.T) {
	// two optimisers, same gradient stream; one is rewound mid-run via a
	// snapshot and replayed — final weights must match bit-for-bit
	mkParams := func() []*Param {
		return []*Param{
			NewParam(tensor.Xavier(3, 4, 1)),
			NewParam(tensor.Xavier(4, 2, 2)),
		}
	}
	grad := func(step int, params []*Param) {
		for pi, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = float32(pi+1) * float32(i%5-2) * float32(step+1) * 0.01
			}
		}
	}
	ref := mkParams()
	refOpt := NewAdam(0.05)
	for s := 0; s < 10; s++ {
		grad(s, ref)
		refOpt.Step(ref)
	}

	got := mkParams()
	opt := NewAdam(0.05)
	var st AdamState
	var saved []*tensor.Matrix
	for s := 0; s < 7; s++ {
		if s == 4 {
			st = opt.Snapshot(got)
			for _, p := range got {
				saved = append(saved, p.W.Clone())
			}
		}
		grad(s, got)
		opt.Step(got)
	}
	// crash: rewind to step 4 and replay 4..9
	opt.Restore(got, st)
	for i, p := range got {
		copy(p.W.Data, saved[i].Data)
		p.ZeroGrad()
	}
	for s := 4; s < 10; s++ {
		grad(s, got)
		opt.Step(got)
	}
	for i := range ref {
		if tensor.MaxAbsDiff(ref[i].W, got[i].W) != 0 {
			t.Fatalf("param %d diverged after snapshot replay", i)
		}
	}
}

func TestAdamSnapshotBeforeFirstStep(t *testing.T) {
	params := []*Param{NewParam(tensor.Xavier(2, 2, 3))}
	opt := NewAdam(0.1)
	st := opt.Snapshot(params) // no moments yet
	if st.T != 0 || st.M[0] != nil {
		t.Fatalf("fresh snapshot not empty: %+v", st)
	}
	grad := func() { params[0].Grad.Data[0] = 1 }
	grad()
	opt.Step(params)
	opt.Restore(params, st)
	if opt.Snapshot(params).T != 0 {
		t.Fatal("restore did not rewind step count")
	}
	// moments map must be cleared so the next Step re-initialises
	grad()
	opt.Step(params)
	if opt.Snapshot(params).T != 1 {
		t.Fatal("step after restore did not count from zero")
	}
}
