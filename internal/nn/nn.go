// Package nn provides the neural-network building blocks for GNN training:
// parameterised layers with explicit forward/backward passes, classification
// and regression losses, and SGD/Adam optimisers. Gradients are exact (each
// layer's backward is validated against numerical differentiation in tests),
// which is what lets the distributed-training experiments in internal/gnndist
// attribute accuracy differences to staleness/quantisation rather than to a
// sloppy autograd.
package nn

import (
	"math"

	"graphsys/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam wraps a weight matrix.
func NewParam(w *tensor.Matrix) *Param {
	return &Param{W: w, Grad: tensor.New(w.Rows, w.Cols)}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Dense is a fully connected layer Y = X·W + b. The layer owns its forward
// and backward output buffers: shapes are stable across training steps, so
// after the first step Forward/Backward allocate nothing. Each returned
// matrix is valid until the next call of the same method on this layer.
type Dense struct {
	W *Param
	B *Param

	x  *tensor.Matrix // cached input
	y  *tensor.Matrix // reused Forward output
	dx *tensor.Matrix // reused Backward output
}

// NewDense creates a Dense layer with Xavier-initialised weights.
func NewDense(in, out int, seed int64) *Dense {
	return &Dense{
		W: NewParam(tensor.Xavier(in, out, seed)),
		B: NewParam(tensor.New(1, out)),
	}
}

// Forward computes X·W + b, caching X for the backward pass.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	d.x = x
	d.y = tensor.Reuse(d.y, x.Rows, d.W.W.Cols)
	tensor.MatMulInto(x, d.W.W, d.y)
	d.y.AddRowVector(d.B.W.Row(0))
	return d.y
}

// Backward accumulates dW, dB and returns dX.
func (d *Dense) Backward(dy *tensor.Matrix) *tensor.Matrix {
	// dW goes through pooled scratch, not straight into Grad: the kernel
	// owns the full accumulation of XᵀdY, and the single AddInPlace keeps
	// the same order as the old MatMulT1-then-add when Grad is nonzero.
	gw := tensor.Get(d.W.W.Rows, d.W.W.Cols)
	tensor.MatMulT1Into(d.x, dy, gw)
	d.W.Grad.AddInPlace(gw)
	tensor.Put(gw)
	bg := d.B.Grad.Row(0)
	for i := 0; i < dy.Rows; i++ {
		r := dy.Row(i)
		for j := range r {
			bg[j] += r[j]
		}
	}
	d.dx = tensor.Reuse(d.dx, dy.Rows, d.W.W.Rows)
	tensor.MatMulT2Into(dy, d.W.W, d.dx)
	return d.dx
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU activation. Output buffers (and the mask) are layer-owned and reused
// across steps; every element is written on both branches, so stale contents
// never leak.
type ReLU struct {
	mask      []bool
	out, dout *tensor.Matrix
}

// Forward applies max(0, x). The result is valid until the next Forward.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	r.out = tensor.Reuse(r.out, x.Rows, x.Cols)
	for i, v := range x.Data {
		if v <= 0 {
			r.out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.out.Data[i] = v
			r.mask[i] = true
		}
	}
	return r.out
}

// Backward gates the upstream gradient. The result is valid until the next
// Backward.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	r.dout = tensor.Reuse(r.dout, dy.Rows, dy.Cols)
	for i, v := range dy.Data {
		if r.mask[i] {
			r.dout.Data[i] = v
		} else {
			r.dout.Data[i] = 0
		}
	}
	return r.dout
}

// SoftmaxCrossEntropy computes mean cross-entropy loss over rows given
// integer class labels, and the gradient w.r.t. the logits. Rows with
// label < 0 are masked out (e.g. non-training vertices in full-graph GNN
// training).
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	grad := tensor.New(logits.Rows, logits.Cols)
	var loss float64
	n := 0
	for i := 0; i < logits.Rows; i++ {
		if labels[i] < 0 {
			continue
		}
		n++
	}
	if n == 0 {
		return 0, grad
	}
	inv := float32(1.0 / float64(n))
	exps := make([]float64, logits.Cols) // hoisted: fully rewritten per row
	for i := 0; i < logits.Rows; i++ {
		y := labels[i]
		if y < 0 {
			continue
		}
		row := logits.Row(i)
		// stable softmax
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			exps[j] = math.Exp(float64(v - max))
			sum += exps[j]
		}
		loss += -math.Log(exps[y]/sum + 1e-12)
		g := grad.Row(i)
		for j := range row {
			p := float32(exps[j] / sum)
			if j == y {
				p -= 1
			}
			g[j] = p * inv
		}
	}
	return loss / float64(n), grad
}

// Accuracy returns the fraction of rows whose argmax equals the label,
// considering only rows with label ≥ 0 and (if mask is non-nil) mask true.
func Accuracy(logits *tensor.Matrix, labels []int, mask []bool) float64 {
	correct, total := 0, 0
	for i := 0; i < logits.Rows; i++ {
		if labels[i] < 0 || (mask != nil && !mask[i]) {
			continue
		}
		row := logits.Row(i)
		arg := 0
		for j, v := range row {
			if v > row[arg] {
				arg = j
			}
		}
		if arg == labels[i] {
			correct++
		}
		total++
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step applies one update and zeroes gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i := range p.W.Data {
			g := p.Grad.Data[i] + float32(o.WeightDecay)*p.W.Data[i]
			p.W.Data[i] -= float32(o.LR) * g
		}
		p.ZeroGrad()
	}
}

// Adam optimiser (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam creates an Adam optimiser with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*tensor.Matrix{}, v: map[*Param]*tensor.Matrix{}}
}

// Step applies one Adam update and zeroes gradients.
func (o *Adam) Step(params []*Param) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.W.Rows, p.W.Cols)
			o.m[p] = m
			o.v[p] = tensor.New(p.W.Rows, p.W.Cols)
		}
		v := o.v[p]
		for i := range p.W.Data {
			g := float64(p.Grad.Data[i])
			m.Data[i] = float32(o.Beta1*float64(m.Data[i]) + (1-o.Beta1)*g)
			v.Data[i] = float32(o.Beta2*float64(v.Data[i]) + (1-o.Beta2)*g*g)
			mh := float64(m.Data[i]) / c1
			vh := float64(v.Data[i]) / c2
			p.W.Data[i] -= float32(o.LR * mh / (math.Sqrt(vh) + o.Eps))
		}
		p.ZeroGrad()
	}
}

// AdamState is a deep snapshot of an Adam optimiser's step count and moment
// estimates, aligned to the params slice it was taken against. It is the
// optimiser half of a training checkpoint: restoring weights alone would
// replay updates with wrong moments and diverge from the fault-free run.
type AdamState struct {
	T    int
	M, V []*tensor.Matrix // nil entries: param had no moments yet
}

// Snapshot captures the optimiser state for params. The clones are deep, so
// later Steps do not mutate the snapshot.
func (o *Adam) Snapshot(params []*Param) AdamState {
	st := AdamState{T: o.t, M: make([]*tensor.Matrix, len(params)), V: make([]*tensor.Matrix, len(params))}
	for i, p := range params {
		if m, ok := o.m[p]; ok {
			st.M[i] = m.Clone()
			st.V[i] = o.v[p].Clone()
		}
	}
	return st
}

// Restore rewinds the optimiser to a snapshot taken against the same params
// slice. The snapshot itself stays intact (restore clones), so one checkpoint
// can be restored multiple times.
func (o *Adam) Restore(params []*Param, st AdamState) {
	o.t = st.T
	for i, p := range params {
		if st.M[i] == nil {
			delete(o.m, p)
			delete(o.v, p)
			continue
		}
		o.m[p] = st.M[i].Clone()
		o.v[p] = st.V[i].Clone()
	}
}

// MSE computes the mean squared error between predictions and targets (both
// rows×cols) and the gradient w.r.t. the predictions.
func MSE(pred *tensor.Matrix, target *tensor.Matrix) (float64, *tensor.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSE shape mismatch")
	}
	grad := tensor.New(pred.Rows, pred.Cols)
	if len(pred.Data) == 0 {
		return 0, grad
	}
	var loss float64
	inv := 2 / float64(len(pred.Data))
	for i := range pred.Data {
		d := float64(pred.Data[i]) - float64(target.Data[i])
		loss += d * d
		grad.Data[i] = float32(d * inv)
	}
	return loss / float64(len(pred.Data)), grad
}

// Dropout zeroes each activation with probability P during training and
// scales the survivors by 1/(1-P) (inverted dropout); Eval mode is the
// identity. The mask is drawn from a deterministic seed sequence so runs are
// reproducible.
type Dropout struct {
	P    float64
	Eval bool
	seed uint64
	mask []bool

	out, dout *tensor.Matrix // reused across steps; every element rewritten
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, seed int64) *Dropout {
	return &Dropout{P: p, seed: uint64(seed)*2862933555777941757 + 3037000493}
}

func (d *Dropout) next() float64 {
	d.seed ^= d.seed << 13
	d.seed ^= d.seed >> 7
	d.seed ^= d.seed << 17
	return float64(d.seed%1_000_000) / 1_000_000
}

// Forward applies dropout (or identity in Eval mode). The result is valid
// until the next Forward.
func (d *Dropout) Forward(x *tensor.Matrix) *tensor.Matrix {
	if d.Eval || d.P <= 0 {
		d.mask = nil
		return x
	}
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]bool, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	d.out = tensor.Reuse(d.out, x.Rows, x.Cols)
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.next() < d.P {
			d.out.Data[i] = 0
			d.mask[i] = false
		} else {
			d.mask[i] = true
			d.out.Data[i] = v * scale
		}
	}
	return d.out
}

// Backward gates the gradient through the dropout mask. The result is valid
// until the next Backward.
func (d *Dropout) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return dy
	}
	d.dout = tensor.Reuse(d.dout, dy.Rows, dy.Cols)
	scale := float32(1 / (1 - d.P))
	for i, v := range dy.Data {
		if d.mask[i] {
			d.dout.Data[i] = v * scale
		} else {
			d.dout.Data[i] = 0
		}
	}
	return d.dout
}
