// Package gnndist implements the distributed GNN training techniques of the
// paper's Table 2 on the metered cluster runtime, one mechanism per column:
// graph partitioning for feature locality (DistDGL/DGCL vs ByteGNN/BGL vs
// P³), hot-vertex feature caching (BGL/AliGraph), operator pipelining
// (ByteGNN/BGL/Dorylus), asynchronous training with bounded staleness
// (Dorylus/P³) and staleness-aware skipping (Sancus), quantised message
// compression with error compensation (EC-Graph/EXACT/F²CGT/Sylvie),
// push-pull intra-layer model parallelism (P³), delayed-update full-graph
// training on a vertex-cut (DistGNN), and CPU-offloaded full-graph training
// (HongTu). Every mechanism is a runnable implementation whose communication
// is accounted by cluster.Network, so the Table-2 benchmarks report measured
// bytes/rounds/accuracy rather than estimates.
package gnndist

import (
	"sort"

	"graphsys/internal/cluster"
	"graphsys/internal/graph"
	"graphsys/internal/partition"
	"graphsys/internal/tensor"
)

// FeatureStore serves vertex feature rows from a partitioned store. Fetches
// of remote rows are metered on the network; an optional static hot-vertex
// cache (BGL's feature cache) absorbs repeated fetches of high-degree
// vertices.
type FeatureStore struct {
	X     *tensor.Matrix
	Part  *partition.Partition
	net   *cluster.Network
	cache []map[graph.V]bool // per worker: cached vertex ids (nil = no cache)

	// FeatureBits, when in [2,16], quantises feature rows on the wire with a
	// per-row scale (F²CGT's feature compression): remote fetches cost
	// cols·bits/8 + 4 bytes and the receiver sees the dequantised values.
	// 0 or 32 means uncompressed fp32.
	FeatureBits int

	// remoteRows is Fetch's per-owner batching scratch (rows pending
	// accounting for the in-progress call), reused across calls.
	remoteRows []int64

	Hits, Misses, Local int64
}

// NewFeatureStore creates a store over features x partitioned by part.
func NewFeatureStore(x *tensor.Matrix, part *partition.Partition, net *cluster.Network) *FeatureStore {
	return &FeatureStore{X: x, Part: part, net: net}
}

// EnableCache installs on every worker a static cache of the cacheSize
// highest-degree vertices (BGL caches the hot vertices that dominate
// sampled neighborhoods in power-law graphs).
func (fs *FeatureStore) EnableCache(g *graph.Graph, cacheSize, workers int) {
	type dv struct {
		v graph.V
		d int
	}
	all := make([]dv, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		all[v] = dv{graph.V(v), g.Degree(graph.V(v))}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d > all[j].d })
	if cacheSize > len(all) {
		cacheSize = len(all)
	}
	fs.cache = make([]map[graph.V]bool, workers)
	for w := 0; w < workers; w++ {
		fs.cache[w] = make(map[graph.V]bool, cacheSize)
		for _, e := range all[:cacheSize] {
			fs.cache[w][e.v] = true
		}
	}
}

// RowBytes is the wire size of one feature row under the current
// compression setting.
func (fs *FeatureStore) RowBytes() int64 {
	if fs.FeatureBits >= 2 && fs.FeatureBits <= 16 {
		return int64(fs.X.Cols)*int64(fs.FeatureBits)/8 + 4 // + per-row scale
	}
	return int64(fs.X.Cols) * 4
}

// Fetch returns the feature rows for vids as seen from worker w, metering
// remote fetches (cache hits and locally-owned rows are free). With
// FeatureBits set, REMOTE rows arrive quantise-dequantised; local and cached
// rows are exact (they never cross the wire).
//
// Remote rows are accounted as one batched transfer per owner (DistDGL's
// block feature fetch) instead of one Network.Account per row, so a large
// sampled batch costs one lock acquisition per contacted partition.
func (fs *FeatureStore) Fetch(w int, vids []graph.V) *tensor.Matrix {
	out := tensor.New(len(vids), fs.X.Cols)
	compress := fs.FeatureBits >= 2 && fs.FeatureBits <= 16
	if fs.remoteRows == nil || len(fs.remoteRows) != fs.net.NumWorkers() {
		fs.remoteRows = make([]int64, fs.net.NumWorkers())
	}
	for i, v := range vids {
		owner := fs.Part.Assign[v]
		remote := false
		switch {
		case owner == w:
			fs.Local++
		case fs.cache != nil && fs.cache[w][v]:
			fs.Hits++
		default:
			fs.Misses++
			remote = true
			fs.remoteRows[owner]++
		}
		copy(out.Row(i), fs.X.Row(int(v)))
		if compress && remote {
			quantizeRow(out.Row(i), fs.FeatureBits)
		}
	}
	rb := fs.RowBytes()
	for owner, rows := range fs.remoteRows {
		if rows > 0 {
			fs.net.AccountBatch(owner, w, rows, rows*rb)
			fs.remoteRows[owner] = 0
		}
	}
	return out
}

// quantizeRow simulates symmetric per-row quantise→dequantise in place.
func quantizeRow(row []float32, bits int) {
	var max float64
	for _, v := range row {
		a := float64(v)
		if a < 0 {
			a = -a
		}
		if a > max {
			max = a
		}
	}
	if max == 0 {
		return
	}
	levels := float64(int64(1)<<(bits-1)) - 1
	scale := max / levels
	for j, v := range row {
		q := float64(v) / scale
		if q >= 0 {
			q = float64(int64(q + 0.5))
		} else {
			q = float64(int64(q - 0.5))
		}
		row[j] = float32(q * scale)
	}
}

// RemoteFraction returns the fraction of fetches that crossed the network.
func (fs *FeatureStore) RemoteFraction() float64 {
	total := fs.Hits + fs.Misses + fs.Local
	if total == 0 {
		return 0
	}
	return float64(fs.Misses) / float64(total)
}
