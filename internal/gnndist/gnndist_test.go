package gnndist

import (
	"math"
	"testing"
	"testing/quick"

	"graphsys/internal/cluster"
	"graphsys/internal/gnn"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/partition"
	"graphsys/internal/tensor"
)

func TestFeatureStoreAccounting(t *testing.T) {
	g := gen.Grid(4, 4)
	x := tensor.Xavier(16, 4, 1)
	part := partition.Range(g, 2) // vertices 0-7 on worker 0, 8-15 on worker 1
	net := cluster.NewNetwork(2)
	fs := NewFeatureStore(x, part, net)
	got := fs.Fetch(0, []graph.V{0, 1, 8, 9})
	if fs.Local != 2 || fs.Misses != 2 {
		t.Fatalf("local=%d misses=%d", fs.Local, fs.Misses)
	}
	if net.Stats().Bytes != 2*fs.RowBytes() {
		t.Fatalf("bytes=%d", net.Stats().Bytes)
	}
	// returned rows are correct
	for i, v := range []graph.V{0, 1, 8, 9} {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != x.At(int(v), j) {
				t.Fatal("wrong feature row")
			}
		}
	}
}

func TestFeatureCacheAbsorbsHubs(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 2)
	x := tensor.Xavier(200, 4, 1)
	part := partition.Hash(g, 4)
	// fetch every vertex's neighborhood from worker 0, twice
	fetchAll := func(fs *FeatureStore) int64 {
		for v := graph.V(0); int(v) < 200; v++ {
			fs.Fetch(0, g.Neighbors(v))
		}
		return fs.Misses
	}
	netA := cluster.NewNetwork(4)
	fsA := NewFeatureStore(x, part, netA)
	missNoCache := fetchAll(fsA)

	netB := cluster.NewNetwork(4)
	fsB := NewFeatureStore(x, part, netB)
	fsB.EnableCache(g, 20, 4)
	missCache := fetchAll(fsB)
	if missCache >= missNoCache {
		t.Fatalf("cache did not reduce misses: %d vs %d", missCache, missNoCache)
	}
	if fsB.Hits == 0 {
		t.Fatal("no cache hits")
	}
}

func TestQuantizerRatioAndAccuracy(t *testing.T) {
	m := tensor.Xavier(20, 30, 3)
	q8 := NewQuantizer(8, false)
	out := q8.Compress(m)
	if r := q8.CompressionRatio(); r < 3 || r > 4.1 {
		t.Fatalf("int8 ratio = %f", r)
	}
	// int8 reconstruction error is small relative to the value range
	if tensor.MaxAbsDiff(out, m) > 0.01 {
		t.Fatalf("int8 error %f too large", tensor.MaxAbsDiff(out, m))
	}
	q32 := NewQuantizer(32, false)
	out32 := q32.Compress(m)
	if tensor.MaxAbsDiff(out32, m) != 0 {
		t.Fatal("32-bit must be lossless")
	}
	if q32.CompressionRatio() != 1 {
		t.Fatal("32-bit ratio must be 1")
	}
	q4 := NewQuantizer(4, false)
	out4 := q4.Compress(m)
	if tensor.MaxAbsDiff(out4, m) <= tensor.MaxAbsDiff(out, m) {
		t.Fatal("int4 must be lossier than int8")
	}
}

func TestQuantizerErrorCompensation(t *testing.T) {
	// repeatedly transmitting the same matrix: with error feedback the
	// RUNNING MEAN of transmissions converges to the true value
	m := tensor.Xavier(5, 8, 7)
	q := NewQuantizer(2, true)
	sum := tensor.New(5, 8)
	const rounds = 200
	for i := 0; i < rounds; i++ {
		sum.AddInPlace(q.Compress(m))
	}
	sum.Scale(1.0 / rounds)
	qn := NewQuantizer(2, false)
	single := qn.Compress(m)
	if tensor.MaxAbsDiff(sum, m) >= tensor.MaxAbsDiff(single, m) {
		t.Fatalf("EC mean error %f not better than single-shot %f",
			tensor.MaxAbsDiff(sum, m), tensor.MaxAbsDiff(single, m))
	}
}

func TestPipelineMakespans(t *testing.T) {
	// 2 stages × 3 batches, uniform time 1
	times := StageTimes{{1, 1, 1}, {1, 1, 1}}
	if s := SequentialMakespan(times); s != 6 {
		t.Fatalf("sequential = %f", s)
	}
	if p := PipelinedMakespan(times); p != 4 { // classic (s+b-1)
		t.Fatalf("pipelined = %f", p)
	}
	if Speedup(times) != 1.5 {
		t.Fatalf("speedup = %f", Speedup(times))
	}
	// bottleneck stage dominates
	times2 := StageTimes{{1, 1, 1, 1}, {5, 5, 5, 5}, {1, 1, 1, 1}}
	p := PipelinedMakespan(times2)
	if p != 1+4*5+1 {
		t.Fatalf("bottleneck pipeline = %f", p)
	}
	if PipelinedMakespan(StageTimes{}) != 0 || SequentialMakespan(StageTimes{}) != 0 {
		t.Fatal("empty schedule")
	}
}

func distTask() *gnn.Task {
	return gnn.SyntheticCommunityTask(240, 3, 2, 0.3, 11)
}

func TestTrainSyncReachesAccuracy(t *testing.T) {
	res, err := TrainSync(distTask(), TrainerConfig{Workers: 4, TimeBudget: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 0.8 {
		t.Fatalf("sync accuracy %.3f", res.TestAcc)
	}
	if res.SyncRounds == 0 || res.Net.Bytes == 0 {
		t.Fatal("no rounds or traffic recorded")
	}
}

func TestBoundedStaleBeatsSyncUnderStragglers(t *testing.T) {
	task := distTask()
	speeds := []float64{1, 1, 1, 5} // one 5× straggler
	sync, _ := TrainSync(task, TrainerConfig{Workers: 4, TimeBudget: 40, WorkerSpeed: speeds, Seed: 2})
	async, _ := TrainBoundedStale(task, TrainerConfig{Workers: 4, TimeBudget: 40, WorkerSpeed: speeds, Staleness: 4, Seed: 2})
	// sync applies one aggregated step per round of cost 5; async applies
	// one step per worker-step, so it lands far more updates
	if async.Steps <= sync.Steps*2 {
		t.Fatalf("async steps %d should far exceed sync steps %d", async.Steps, sync.Steps)
	}
	if async.TestAcc < 0.75 {
		t.Fatalf("async accuracy %.3f collapsed", async.TestAcc)
	}
}

func TestSancusSkipsBroadcasts(t *testing.T) {
	task := distTask()
	sancus, _ := TrainSancus(task, TrainerConfig{Workers: 4, TimeBudget: 30, SancusTau: 1e-3, Seed: 3})
	if sancus.Skipped == 0 {
		t.Fatal("Sancus never skipped a broadcast")
	}
	sync, _ := TrainSync(task, TrainerConfig{Workers: 4, TimeBudget: 30, Seed: 3})
	if sancus.Net.Bytes >= sync.Net.Bytes {
		t.Fatalf("Sancus bytes %d not below sync %d", sancus.Net.Bytes, sync.Net.Bytes)
	}
	if sancus.TestAcc < sync.TestAcc-0.15 {
		t.Fatalf("Sancus accuracy %.3f collapsed vs sync %.3f", sancus.TestAcc, sync.TestAcc)
	}
}

func TestQuantizedTrainingSavesBytesKeepsAccuracy(t *testing.T) {
	task := distTask()
	fp32, _ := TrainSync(task, TrainerConfig{Workers: 4, TimeBudget: 25, Seed: 4})
	int8, _ := TrainSync(task, TrainerConfig{Workers: 4, TimeBudget: 25, Seed: 4, QuantBits: 8, QuantCompensate: true})
	// per-row fp32 scales cap the ratio below 4× on skinny GNN weight
	// matrices; 2× is the conservative expectation
	if int8.GradBytes >= fp32.GradBytes/2 {
		t.Fatalf("int8 grad bytes %d not well below fp32 %d", int8.GradBytes, fp32.GradBytes)
	}
	if int8.TestAcc < fp32.TestAcc-0.1 {
		t.Fatalf("int8 accuracy %.3f vs fp32 %.3f", int8.TestAcc, fp32.TestAcc)
	}
}

func TestPartitioningReducesRemoteFetches(t *testing.T) {
	task := distTask()
	hash, _ := TrainSync(task, TrainerConfig{Workers: 4, TimeBudget: 15, Seed: 5,
		Part: partition.Hash(task.G, 4)})
	metis, _ := TrainSync(task, TrainerConfig{Workers: 4, TimeBudget: 15, Seed: 5,
		Part: partition.Metis(task.G, 4)})
	if metis.RemoteFrac >= hash.RemoteFrac {
		t.Fatalf("metis remote %.3f not below hash %.3f", metis.RemoteFrac, hash.RemoteFrac)
	}
}

func TestPushPullEquivalenceAndTraffic(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 1)
	const D, H, k = 64, 8, 4
	x := tensor.Xavier(100, D, 2)
	w1 := tensor.Xavier(D, H, 3)
	part := partition.Hash(g, k)
	fd := partition.NewFeatureDim(D, k)
	batch := []graph.V{3, 17, 42, 77, 91}

	netPull := cluster.NewNetwork(k)
	zPull, bytesPull := PullLayer1(netPull, part, x, w1, batch, 0)
	netPush := cluster.NewNetwork(k)
	zPush, bytesPush := PushPullLayer1(netPush, fd, x, w1, batch, 0)
	if tensor.MaxAbsDiff(zPull, zPush) > 1e-4 {
		t.Fatalf("push-pull result differs: %g", tensor.MaxAbsDiff(zPull, zPush))
	}
	// D=64 ≫ H=8: push-pull must transfer far less
	if bytesPush >= bytesPull {
		t.Fatalf("push-pull bytes %d not below pull %d", bytesPush, bytesPull)
	}
}

func TestDistGNNDelayedUpdates(t *testing.T) {
	task := distTask()
	syncRun := TrainDistGNN(task, DistGNNConfig{Workers: 4, Epochs: 40, RefreshEvery: 1, Seed: 6})
	delayed := TrainDistGNN(task, DistGNNConfig{Workers: 4, Epochs: 40, RefreshEvery: 4, Seed: 6})
	if delayed.Net.Bytes >= syncRun.Net.Bytes {
		t.Fatalf("delayed bytes %d not below sync %d", delayed.Net.Bytes, syncRun.Net.Bytes)
	}
	if delayed.Refreshes >= syncRun.Refreshes {
		t.Fatalf("refreshes %d vs %d", delayed.Refreshes, syncRun.Refreshes)
	}
	if syncRun.TestAcc < 0.8 {
		t.Fatalf("sync full-graph accuracy %.3f", syncRun.TestAcc)
	}
	if delayed.TestAcc < syncRun.TestAcc-0.12 {
		t.Fatalf("delayed accuracy %.3f collapsed vs %.3f", delayed.TestAcc, syncRun.TestAcc)
	}
}

func TestOffloadedForwardMatchesMonolithic(t *testing.T) {
	task := gnn.SyntheticCommunityTask(120, 3, 2, 0.3, 7)
	const hidden = 8
	l1w := tensor.Xavier(task.X.Cols, hidden, 1)
	l1b := tensor.New(1, hidden)
	l2w := tensor.Xavier(hidden, task.NumClasses, 2)
	l2b := tensor.New(1, task.NumClasses)
	// monolithic reference
	adj := gnn.NewNormAdj(task.G)
	h1 := tensor.MatMul(adj.Apply(task.X), l1w)
	h1.AddRowVector(l1b.Row(0))
	relu := h1.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	ref := tensor.MatMul(adj.Apply(relu), l2w)
	ref.AddRowVector(l2b.Row(0))

	got, st := OffloadedGCNForward(task.G, task.X, l1w, l1b, l2w, l2b, 16)
	if tensor.MaxAbsDiff(got, ref) > 1e-4 {
		t.Fatalf("offloaded forward differs by %g", tensor.MaxAbsDiff(got, ref))
	}
	if st.DevicePeakFloats >= st.FullGraphFloats {
		t.Fatalf("device peak %d not below full residency %d", st.DevicePeakFloats, st.FullGraphFloats)
	}
	if st.HostTransferred == 0 {
		t.Fatal("no host transfers accounted")
	}
	// smaller chunks → smaller peak, same result
	got2, st2 := OffloadedGCNForward(task.G, task.X, l1w, l1b, l2w, l2b, 4)
	if tensor.MaxAbsDiff(got2, ref) > 1e-4 {
		t.Fatal("chunk-4 forward differs")
	}
	if st2.DevicePeakFloats >= st.DevicePeakFloats {
		t.Fatal("smaller chunk should lower device peak")
	}
}

func TestRelChange(t *testing.T) {
	a := weights{tensor.FromRows([][]float32{{1, 0}})}
	b := weights{tensor.FromRows([][]float32{{1, 0}})}
	if relChange(a, b) != 0 {
		t.Fatal("identical weights changed")
	}
	b[0].Set(0, 1, 1)
	if relChange(a, b) <= 0 {
		t.Fatal("change not detected")
	}
	if math.IsNaN(relChange(a, b)) {
		t.Fatal("NaN")
	}
}

func TestFeatureCompressionReducesTraffic(t *testing.T) {
	task := distTask()
	fp32, _ := TrainSync(task, TrainerConfig{Workers: 4, TimeBudget: 10, Seed: 14})
	int4, _ := TrainSync(task, TrainerConfig{Workers: 4, TimeBudget: 10, Seed: 14, FeatureBits: 4})
	if int4.Net.Bytes >= fp32.Net.Bytes {
		t.Fatalf("feature compression did not cut bytes: %d vs %d", int4.Net.Bytes, fp32.Net.Bytes)
	}
	if int4.TestAcc < fp32.TestAcc-0.1 {
		t.Fatalf("int4 features accuracy %.3f collapsed vs %.3f", int4.TestAcc, fp32.TestAcc)
	}
}

func TestQuantizeRowInPlace(t *testing.T) {
	row := []float32{1, -0.5, 0.25, 0}
	orig := append([]float32(nil), row...)
	quantizeRow(row, 8)
	for i := range row {
		d := row[i] - orig[i]
		if d < 0 {
			d = -d
		}
		if d > 0.01 {
			t.Fatalf("int8 row error %f at %d", d, i)
		}
	}
	// max element is exactly representable
	if row[0] != 1 {
		t.Fatalf("max element distorted: %f", row[0])
	}
	// all-zero row untouched
	z := []float32{0, 0}
	quantizeRow(z, 4)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero row changed")
	}
}

func TestFeatureStoreLocalRowsExact(t *testing.T) {
	g := gen.Grid(4, 4)
	x := tensor.Xavier(16, 4, 3)
	part := partition.Range(g, 2)
	net := cluster.NewNetwork(2)
	fs := NewFeatureStore(x, part, net)
	fs.FeatureBits = 2
	got := fs.Fetch(0, []graph.V{0, 15}) // 0 local, 15 remote
	for j := 0; j < 4; j++ {
		if got.At(0, j) != x.At(0, j) {
			t.Fatal("local row must be exact")
		}
	}
	// remote row is quantised (likely different at 2 bits)
	same := true
	for j := 0; j < 4; j++ {
		if got.At(1, j) != x.At(15, j) {
			same = false
		}
	}
	if same {
		t.Log("remote row happened to be exactly representable at 2 bits (unlikely but legal)")
	}
	// wire size accounted with compression
	if net.Stats().Bytes != fs.RowBytes() {
		t.Fatalf("bytes %d != rowbytes %d", net.Stats().Bytes, fs.RowBytes())
	}
}

func TestQuantizerIdempotentProperty(t *testing.T) {
	// property: quantised values are fixed points of the quantiser
	f := func(seed int64, bitsRaw uint8) bool {
		bits := []int{2, 4, 8}[int(bitsRaw)%3]
		m := tensor.Xavier(4, 6, seed)
		q1 := NewQuantizer(bits, false)
		once := q1.Compress(m)
		q2 := NewQuantizer(bits, false)
		twice := q2.Compress(once)
		return tensor.MaxAbsDiff(once, twice) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
