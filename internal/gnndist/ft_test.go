package gnndist

import (
	"runtime"
	"strings"
	"testing"

	"graphsys/internal/cluster"
	"graphsys/internal/tensor"
)

// crashPlan injects a single worker crash at round r.
func crashPlan(r int) cluster.RunOptions {
	return cluster.RunOptions{Trace: true, Faults: &cluster.FaultPlan{CrashAtRound: r, CrashWorker: 1}}
}

// TestSyncCrashRecoveryExactLoss is the tentpole acceptance check: a crash
// mid-training must roll back to the last checkpoint and replay to the EXACT
// fault-free result — same loss, same accuracy, same step count — because the
// snapshot carries weights, Adam moments and every worker's RNG position.
func TestSyncCrashRecoveryExactLoss(t *testing.T) {
	task := distTask()
	base := TrainerConfig{Workers: 4, TimeBudget: 12, Seed: 21}
	clean, err := TrainSync(task, base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.CheckpointEvery = 2
	faulty.RunOptions = crashPlan(5)
	got, err := TrainSync(task, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss != clean.Loss || got.TestAcc != clean.TestAcc {
		t.Fatalf("recovered run diverged: loss %v vs %v, acc %v vs %v",
			got.Loss, clean.Loss, got.TestAcc, clean.TestAcc)
	}
	if got.Steps != clean.Steps || got.SimTime != clean.SimTime {
		t.Fatalf("committed schedule differs: steps %d vs %d, time %v vs %v",
			got.Steps, clean.Steps, got.SimTime, clean.SimTime)
	}
	// the replayed round is visible as recovery cost, not hidden
	if got.Trace == nil || got.Trace.Recovery == nil {
		t.Fatal("recovery stats missing from trace")
	}
	r := got.Trace.Recovery
	if r.Crashes != 1 {
		t.Fatalf("crashes = %d", r.Crashes)
	}
	if r.RecoveredRounds != 1 { // crashed at 5, checkpoint at 4
		t.Fatalf("recovered rounds = %d, want 1", r.RecoveredRounds)
	}
	if r.Checkpoints == 0 || r.CheckpointBytes == 0 {
		t.Fatalf("checkpoint volume not metered: %+v", r)
	}
	// replayed rounds re-send real traffic
	if got.Net.Bytes <= clean.Net.Bytes {
		t.Fatalf("recovery traffic invisible: %d vs %d bytes", got.Net.Bytes, clean.Net.Bytes)
	}
}

// Without explicit checkpoints the run restarts from the implicit round-0
// snapshot — more recomputation, same exact final model.
func TestSyncCrashWithoutCheckpointRestarts(t *testing.T) {
	task := distTask()
	base := TrainerConfig{Workers: 4, TimeBudget: 10, Seed: 22}
	clean, _ := TrainSync(task, base)
	faulty := base
	faulty.RunOptions = crashPlan(4)
	got, err := TrainSync(task, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss != clean.Loss || got.Steps != clean.Steps {
		t.Fatalf("restart diverged: loss %v vs %v", got.Loss, clean.Loss)
	}
	if r := got.Trace.Recovery; r.RecoveredRounds != 4 {
		t.Fatalf("full restart should replay 4 rounds, got %d", r.RecoveredRounds)
	}
}

// Error-feedback residuals are part of the snapshot: with compensated
// quantisation a crash must still replay to the exact fault-free model.
func TestSyncCrashRecoveryQuantizedExact(t *testing.T) {
	task := distTask()
	base := TrainerConfig{Workers: 4, TimeBudget: 10, Seed: 23, QuantBits: 8, QuantCompensate: true}
	clean, _ := TrainSync(task, base)
	faulty := base
	faulty.CheckpointEvery = 3
	faulty.RunOptions = crashPlan(7)
	got, err := TrainSync(task, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss != clean.Loss || got.GradBytes != clean.GradBytes {
		t.Fatalf("quantized recovery diverged: loss %v vs %v, grad bytes %d vs %d",
			got.Loss, clean.Loss, got.GradBytes, clean.GradBytes)
	}
}

func TestBoundedStaleCrashRecoveryExact(t *testing.T) {
	task := distTask()
	base := TrainerConfig{Workers: 4, TimeBudget: 10, Seed: 24, Staleness: 3}
	clean, _ := TrainBoundedStale(task, base)
	faulty := base
	faulty.CheckpointEvery = 8
	faulty.RunOptions = crashPlan(20)
	got, err := TrainBoundedStale(task, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss != clean.Loss || got.TestAcc != clean.TestAcc || got.Steps != clean.Steps {
		t.Fatalf("bounded-stale recovery diverged: loss %v vs %v, steps %d vs %d",
			got.Loss, clean.Loss, got.Steps, clean.Steps)
	}
	r := got.Trace.Recovery
	if r == nil || r.Crashes != 1 || r.RecoveredRounds != 4 { // crash at event 20, ckpt at 16
		t.Fatalf("recovery accounting wrong: %+v", r)
	}
}

// An injected straggler must slow the whole synchronous schedule: same
// simulated budget buys fewer rounds, and the skew meters see the slow worker.
func TestStragglerInjectionGatesSyncRounds(t *testing.T) {
	task := distTask()
	base := TrainerConfig{Workers: 4, TimeBudget: 12, Seed: 25}
	clean, _ := TrainSync(task, base)
	slow := base
	slow.RunOptions = cluster.RunOptions{
		Trace:  true,
		Faults: &cluster.FaultPlan{StragglerWorker: 2, StragglerFactor: 4},
	}
	got, err := TrainSync(task, slow)
	if err != nil {
		t.Fatal(err)
	}
	if got.SyncRounds >= clean.SyncRounds {
		t.Fatalf("straggler did not gate rounds: %d vs %d", got.SyncRounds, clean.SyncRounds)
	}
	busy := got.Trace.WorkerBusySec
	if busy[2] <= busy[0] {
		t.Fatalf("straggler busy time not metered: %v", busy)
	}
	if got.Trace.Skew.BusyImbalance <= 1.5 {
		t.Fatalf("4x straggler invisible in skew: %f", got.Trace.Skew.BusyImbalance)
	}
}

// Lossy links cost retransmission traffic but never change the result (the
// runtime's delivery is reliable-with-retries).
func TestLossyLinksMeterRetriesOnly(t *testing.T) {
	task := distTask()
	base := TrainerConfig{Workers: 4, TimeBudget: 8, Seed: 26}
	clean, _ := TrainSync(task, base)
	lossy := base
	lossy.RunOptions = cluster.RunOptions{
		Trace:  true,
		Faults: &cluster.FaultPlan{DropProb: 0.3, DropSeed: 11},
	}
	got, err := TrainSync(task, lossy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss != clean.Loss || got.TestAcc != clean.TestAcc {
		t.Fatalf("lossy links changed the result: loss %v vs %v", got.Loss, clean.Loss)
	}
	r := got.Trace.Recovery
	if r == nil || r.DroppedMessages == 0 || r.RetryBytes == 0 {
		t.Fatalf("retransmissions not metered: %+v", r)
	}
	if got.Net.Bytes != clean.Net.Bytes+r.RetryBytes {
		t.Fatalf("retry bytes unaccounted: %d vs %d + %d", got.Net.Bytes, clean.Net.Bytes, r.RetryBytes)
	}
}

func TestTrainerConfigValidation(t *testing.T) {
	task := distTask()
	_, err := TrainSync(task, TrainerConfig{Workers: 4, WorkerSpeed: []float64{1, 1}})
	if err == nil || !strings.Contains(err.Error(), "WorkerSpeed has 2 entries") {
		t.Fatalf("bad WorkerSpeed not rejected: %v", err)
	}
	_, err = TrainBoundedStale(task, TrainerConfig{QuantBits: 64})
	if err == nil || !strings.Contains(err.Error(), "QuantBits") {
		t.Fatalf("bad QuantBits not rejected: %v", err)
	}
	_, err = TrainSancus(task, TrainerConfig{Staleness: -1})
	if err == nil || !strings.Contains(err.Error(), "Staleness") {
		t.Fatalf("bad Staleness not rejected: %v", err)
	}
	_, err = TrainSyncWithStats(task, TrainerConfig{FeatureBits: 33})
	if err == nil || !strings.Contains(err.Error(), "FeatureBits") {
		t.Fatalf("bad FeatureBits not rejected: %v", err)
	}
}

// countedSource.rewind must land the generator on the exact same draw
// sequence the original source would have continued with.
func TestCountedSourceRewind(t *testing.T) {
	a := newCountedSource(99)
	var prefix []uint64
	for i := 0; i < 37; i++ {
		prefix = append(prefix, a.Uint64())
	}
	mark := a.n
	var tail []uint64
	for i := 0; i < 20; i++ {
		tail = append(tail, a.Uint64())
	}
	a.rewind(mark)
	for i := 0; i < 20; i++ {
		if got := a.Uint64(); got != tail[i] {
			t.Fatalf("draw %d after rewind: %d want %d", i, got, tail[i])
		}
	}
	_ = prefix
}

// TestParallelKernelsExactLoss re-runs the crash-recovery equivalence with
// the parallel tensor kernels enabled: training with parallelism 8 must
// produce the EXACT loss of the serial run, and crash recovery under
// parallelism must still replay to that same value. This is the distributed
// half of the kernel determinism contract.
func TestParallelKernelsExactLoss(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(oldProcs)
	defer tensor.SetParallelism(0)

	task := distTask()
	serial := TrainerConfig{Workers: 4, TimeBudget: 12, Seed: 21}
	serial.RunOptions = cluster.RunOptions{Parallelism: 1}
	want, err := TrainSync(task, serial)
	if err != nil {
		t.Fatal(err)
	}

	par := TrainerConfig{Workers: 4, TimeBudget: 12, Seed: 21}
	par.RunOptions = cluster.RunOptions{Parallelism: 8}
	got, err := TrainSync(task, par)
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss != want.Loss || got.TestAcc != want.TestAcc || got.Steps != want.Steps {
		t.Fatalf("parallel kernels changed results: loss %v vs %v, acc %v vs %v, steps %d vs %d",
			got.Loss, want.Loss, got.TestAcc, want.TestAcc, got.Steps, want.Steps)
	}

	crash := TrainerConfig{Workers: 4, TimeBudget: 12, Seed: 21, CheckpointEvery: 2}
	crash.RunOptions = crashPlan(5)
	crash.RunOptions.Parallelism = 8
	rec, err := TrainSync(task, crash)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Loss != want.Loss || rec.TestAcc != want.TestAcc || rec.Steps != want.Steps {
		t.Fatalf("recovered parallel run diverged: loss %v vs %v", rec.Loss, want.Loss)
	}
}
