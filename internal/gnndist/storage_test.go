package gnndist

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"graphsys/internal/gnn"
	"graphsys/internal/storage"
)

// openDisk writes the task graph to a block file and returns a cached
// provider sized to roughly half the decoded graph, so sampling actually
// evicts.
func openDisk(t *testing.T, task *gnn.Task, workers int) *storage.CachedProvider {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.gsb")
	info, err := storage.Write(path, task.G, storage.Options{BlockBytes: 1 << 10})
	if err != nil {
		t.Fatalf("storage.Write: %v", err)
	}
	budget := info.ResidentBytes + info.RawCSRBytes/2
	if min := info.ResidentBytes + int64(workers)*info.MaxDecodedBytes; budget < min {
		budget = min
	}
	p, err := storage.OpenCached(path, budget, workers, storage.LRU)
	if err != nil {
		t.Fatalf("storage.OpenCached: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestTrainSyncDiskEquivalence is the tentpole gate for the GNN engine:
// sampled training epochs whose adjacency comes through the disk-backed block
// cache must produce a bitwise-identical model trajectory (accuracy, loss,
// steps, gradient bytes) to the in-memory run, at workers 1, 2 and 8.
func TestTrainSyncDiskEquivalence(t *testing.T) {
	task := gnn.SyntheticCommunityTask(600, 4, 8, 0.5, 7)
	for _, workers := range []int{1, 2, 8} {
		cfg := TrainerConfig{Workers: workers, TimeBudget: 12, BatchSize: 16, Seed: 3}
		mem, err := TrainSync(task, cfg)
		if err != nil {
			t.Fatalf("in-memory TrainSync: %v", err)
		}
		prov := openDisk(t, task, workers)
		cfg.Source = prov
		disk, err := TrainSync(task, cfg)
		if err != nil {
			t.Fatalf("disk TrainSync (w=%d): %v", workers, err)
		}
		if math.Float64bits(mem.TestAcc) != math.Float64bits(disk.TestAcc) ||
			math.Float64bits(mem.Loss) != math.Float64bits(disk.Loss) {
			t.Fatalf("w=%d: acc/loss differ: mem (%v, %v) disk (%v, %v)",
				workers, mem.TestAcc, mem.Loss, disk.TestAcc, disk.Loss)
		}
		if mem.Steps != disk.Steps || mem.GradBytes != disk.GradBytes {
			t.Fatalf("w=%d: trajectory differs: steps %d/%d gradBytes %d/%d",
				workers, mem.Steps, disk.Steps, mem.GradBytes, disk.GradBytes)
		}
		if prov.Stats().BlocksRead == 0 {
			t.Fatalf("w=%d: disk run read no blocks", workers)
		}
	}
}

// TestTrainBoundedStaleDiskEquivalence covers the asynchronous scheduler: the
// event order depends only on simulated clocks, so the disk path must match.
func TestTrainBoundedStaleDiskEquivalence(t *testing.T) {
	task := gnn.SyntheticCommunityTask(400, 4, 8, 0.5, 11)
	cfg := TrainerConfig{Workers: 4, TimeBudget: 10, BatchSize: 16, Staleness: 2, Seed: 5,
		WorkerSpeed: []float64{1, 1.5, 1, 2}}
	mem, err := TrainBoundedStale(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prov := openDisk(t, task, cfg.Workers)
	cfg.Source = prov
	disk, err := TrainBoundedStale(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(mem.TestAcc) != math.Float64bits(disk.TestAcc) || mem.Steps != disk.Steps {
		t.Fatalf("bounded-stale trajectory differs: acc %v/%v steps %d/%d",
			mem.TestAcc, disk.TestAcc, mem.Steps, disk.Steps)
	}
}

// TestTrainSyncStoragePolicy covers the graphbench `-source disk` path: the
// trainer spills the task graph itself, matches the in-memory result, and
// attaches the storage section (with a per-round series) to the trace.
func TestTrainSyncStoragePolicy(t *testing.T) {
	task := gnn.SyntheticCommunityTask(400, 4, 8, 0.5, 13)
	cfg := TrainerConfig{Workers: 2, TimeBudget: 8, BatchSize: 16, Seed: 9}
	mem, err := TrainSync(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	storage.SetDefault(&storage.Policy{
		Disk:        true,
		BudgetBytes: 1 << 22,
		BlockBytes:  1 << 10,
		Dir:         t.TempDir(),
	})
	defer storage.SetDefault(nil)
	cfg.Trace = true
	disk, err := TrainSync(task, cfg)
	if err != nil {
		t.Fatalf("TrainSync under disk policy: %v", err)
	}
	if math.Float64bits(mem.TestAcc) != math.Float64bits(disk.TestAcc) || mem.Steps != disk.Steps {
		t.Fatalf("policy-spill trajectory differs: acc %v/%v steps %d/%d",
			mem.TestAcc, disk.TestAcc, mem.Steps, disk.Steps)
	}
	st := disk.Trace.Storage
	if st == nil {
		t.Fatal("trace has no storage section under disk policy")
	}
	if st.Kind != "disk" || st.BytesRead <= 0 || st.FileBytes <= 0 {
		t.Fatalf("bad storage trace: %+v", st)
	}
	if len(st.Rounds) == 0 {
		t.Fatal("storage trace has no per-round series")
	}
	var roundBytes int64
	for _, r := range st.Rounds {
		roundBytes += r.BytesRead
	}
	if roundBytes != st.BytesRead {
		t.Fatalf("per-round bytes %d do not sum to total %d", roundBytes, st.BytesRead)
	}
}

// TestTrainSyncStorageBudgetError pins the typed-error contract: an
// impossible budget fails fast from the entry point, not mid-epoch.
func TestTrainSyncStorageBudgetError(t *testing.T) {
	task := gnn.SyntheticCommunityTask(400, 4, 8, 0.5, 13)
	storage.SetDefault(&storage.Policy{Disk: true, BudgetBytes: 64, Dir: t.TempDir()})
	defer storage.SetDefault(nil)
	_, err := TrainSync(task, TrainerConfig{Workers: 2, TimeBudget: 2})
	if !errors.Is(err, storage.ErrBudget) {
		t.Fatalf("got %v, want wrapped storage.ErrBudget", err)
	}
}
