package gnndist

import (
	"fmt"
	"math/rand"

	"graphsys/internal/cluster"
	"graphsys/internal/gnn"
	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/obs"
	"graphsys/internal/partition"
	"graphsys/internal/storage"
	"graphsys/internal/tensor"
)

// TrainerConfig configures distributed data-parallel GNN training.
type TrainerConfig struct {
	Workers   int
	Part      *partition.Partition // vertex placement; nil = hash
	CacheSize int                  // >0 enables BGL-style feature cache

	// Source, when set, serves all neighbor-sampling adjacency reads from
	// the out-of-core storage layer: worker w samples through Source's
	// per-worker handle w instead of task.G's in-memory CSR. Sampling is
	// byte-identical between the two paths, so the whole training trajectory
	// is too. The caller keeps ownership (the trainer does not Close it).
	// When nil and the process-wide storage.Policy requests disk, the trainer
	// spills task.G to a temp block file itself.
	Source storage.Provider

	Kind      gnn.ModelKind
	Hidden    int
	BatchSize int
	Fanouts   []int
	LR        float64
	Seed      int64

	// TimeBudget is the simulated wall-clock the run may consume; a worker
	// step costs WorkerSpeed[w] time units (1.0 default). This is what makes
	// time-to-accuracy comparable between synchronous training (each round
	// costs max over workers — stragglers gate everyone) and asynchronous
	// bounded-staleness training (workers proceed at their own pace).
	TimeBudget  float64
	WorkerSpeed []float64

	// Staleness bounds the version lag in TrainBoundedStale.
	Staleness int
	// SancusTau is the relative weight-change threshold below which a
	// broadcast round is skipped in TrainSancus.
	SancusTau float64

	// QuantBits/QuantCompensate compress gradient pushes (32 = off).
	QuantBits       int
	QuantCompensate bool
	// FeatureBits compresses remote feature fetches (F²CGT; 0/32 = off).
	FeatureBits int

	// CheckpointEvery snapshots the full training state (weights, optimiser
	// moments, per-worker RNG positions, error-feedback residuals) every that
	// many rounds; an injected crash (RunOptions.Faults.CrashAtRound) rolls
	// back to the latest snapshot and replays, converging to the exact
	// fault-free result. 0 keeps only the implicit round-0 snapshot.
	CheckpointEvery int

	// RunOptions is the cross-cutting runtime configuration shared by every
	// engine: Trace (observability opt-in, with per-worker SIMULATED busy
	// time), Topology (link costs), Faults (crash/straggler/lossy-link
	// injection).
	cluster.RunOptions
}

func (c *TrainerConfig) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if len(c.Fanouts) == 0 {
		c.Fanouts = []int{8, 8}
	}
	if c.LR == 0 {
		c.LR = 0.02
	}
	if c.TimeBudget == 0 {
		c.TimeBudget = 60
	}
	if c.WorkerSpeed == nil {
		c.WorkerSpeed = make([]float64, c.Workers)
		for i := range c.WorkerSpeed {
			c.WorkerSpeed[i] = 1
		}
	}
	if c.QuantBits == 0 {
		c.QuantBits = 32
	}
}

// validate rejects inconsistent configurations with a clear error from the
// exported entry points (TrainSync etc.) before any work starts.
func (c *TrainerConfig) validate() error {
	if len(c.WorkerSpeed) != c.Workers {
		return fmt.Errorf("gnndist: TrainerConfig.WorkerSpeed has %d entries for %d workers", len(c.WorkerSpeed), c.Workers)
	}
	for w, s := range c.WorkerSpeed {
		if s <= 0 {
			return fmt.Errorf("gnndist: TrainerConfig.WorkerSpeed[%d] = %g, want > 0", w, s)
		}
	}
	if c.QuantBits < 0 || c.QuantBits > 32 {
		return fmt.Errorf("gnndist: TrainerConfig.QuantBits = %d, want 0..32", c.QuantBits)
	}
	if c.FeatureBits < 0 || c.FeatureBits > 32 {
		return fmt.Errorf("gnndist: TrainerConfig.FeatureBits = %d, want 0..32", c.FeatureBits)
	}
	if c.Staleness < 0 {
		return fmt.Errorf("gnndist: TrainerConfig.Staleness = %d, want >= 0", c.Staleness)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("gnndist: TrainerConfig.CheckpointEvery = %d, want >= 0", c.CheckpointEvery)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("gnndist: TrainerConfig.Parallelism = %d, want >= 0", c.Parallelism)
	}
	return nil
}

// DistResult reports a distributed training run.
type DistResult struct {
	TestAcc    float64
	Loss       float64 // final full-graph cross-entropy over labeled vertices
	Steps      int64   // total gradient steps applied
	SimTime    float64
	SyncRounds int64
	Skipped    int64 // Sancus: broadcasts skipped
	Net        cluster.Stats
	RemoteFrac float64 // fraction of feature fetches that were remote
	GradBytes  int64   // gradient payload actually sent (post-quantisation)

	// Trace is the observability snapshot of the run (nil unless
	// TrainerConfig.Trace was set). Worker busy time is simulated time.
	Trace *obs.Trace
}

// dist holds the shared machinery of all training modes.
type dist struct {
	cfg   TrainerConfig
	task  *gnn.Task
	clst  *cluster.Cluster
	fi    *cluster.FaultInjector
	fs    *FeatureStore
	dims  []int
	shard [][]graph.V // train seeds per worker
	srcs  []*countedSource
	rngs  []*rand.Rand
	quant []map[int]*Quantizer // per worker, per parameter index

	prov     storage.Provider        // nil = sample from task.G
	ownProv  *storage.CachedProvider // policy spill owned by the trainer; closed in finish
	srcErr   error                   // first storage failure, surfaced at the round barrier
	stRounds []obs.StorageRound      // per-round I/O deltas (trace runs only)
	stLast   storage.IOStats
}

func newDist(task *gnn.Task, cfg TrainerConfig) (*dist, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Part == nil {
		cfg.Part = partition.Hash(task.G, cfg.Workers)
	}
	d := &dist{cfg: cfg, task: task, clst: cluster.New(cfg.Workers)}
	d.fi = cfg.RunOptions.Apply(d.clst)
	d.fs = NewFeatureStore(task.X, cfg.Part, d.clst.Network())
	d.fs.FeatureBits = cfg.FeatureBits
	if cfg.CacheSize > 0 {
		d.fs.EnableCache(task.G, cfg.CacheSize, cfg.Workers)
	}
	d.dims = []int{task.X.Cols, cfg.Hidden, task.NumClasses}
	// shard train seeds by the partition (each worker trains its own seeds,
	// the DistDGL/ByteGNN arrangement)
	d.shard = make([][]graph.V, cfg.Workers)
	for _, s := range task.TrainSeeds() {
		w := cfg.Part.Assign[s]
		d.shard[w] = append(d.shard[w], s)
	}
	d.srcs = make([]*countedSource, cfg.Workers)
	d.rngs = make([]*rand.Rand, cfg.Workers)
	d.quant = make([]map[int]*Quantizer, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		d.srcs[w] = newCountedSource(cfg.Seed + int64(w)*7919)
		d.rngs[w] = rand.New(d.srcs[w])
		d.quant[w] = map[int]*Quantizer{}
	}
	d.prov = cfg.Source
	if d.prov == nil {
		if pol := storage.Default(); pol != nil && pol.Disk {
			sp, err := pol.Spill(task.G, cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("gnndist: %w", err)
			}
			d.prov = sp
			d.ownProv = sp
		}
	}
	return d, nil
}

// meterStorage reports whether the run reads adjacency through a metered
// (disk-backed) provider.
func (d *dist) meterStorage() bool {
	return d.prov != nil && d.prov.Footprint().Metered()
}

// noteRound records the round's I/O delta into the per-round trace series.
func (d *dist) noteRound(round int) {
	if !d.meterStorage() || !d.cfg.RunOptions.Trace {
		return
	}
	cur := d.prov.Stats()
	delta := cur.Sub(d.stLast)
	d.stLast = cur
	d.stRounds = append(d.stRounds, obs.StorageRound{
		Round:      round,
		Hits:       delta.Hits,
		Misses:     delta.Misses,
		Evictions:  delta.Evictions,
		BlocksRead: delta.BlocksRead,
		BytesRead:  delta.BytesRead,
	})
}

// speed is the simulated cost of one step on worker w, including any injected
// straggler slowdown.
func (d *dist) speed(w int) float64 {
	return d.cfg.WorkerSpeed[w] * d.fi.SlowFactor(w)
}

// weights is a parameter snapshot.
type weights []*tensor.Matrix

func newMaster(d *dist) (*gnn.Model, weights) {
	m := gnn.NewModel(d.task.G, d.cfg.Kind, d.dims, d.cfg.Seed)
	var w weights
	for _, p := range m.Params() {
		w = append(w, p.W)
	}
	return m, w
}

func cloneWeights(w weights) weights {
	out := make(weights, len(w))
	for i, m := range w {
		out[i] = m.Clone()
	}
	return out
}

func weightBytes(w weights) int64 {
	var b int64
	for _, m := range w {
		b += int64(len(m.Data)) * 4
	}
	return b
}

func relChange(a, b weights) float64 {
	var diff, norm float64
	for i := range a {
		for j := range a[i].Data {
			d := float64(a[i].Data[j] - b[i].Data[j])
			diff += d * d
			n := float64(a[i].Data[j])
			norm += n * n
		}
	}
	if norm == 0 {
		return 1
	}
	return diff / norm
}

// gradStep computes one minibatch gradient for worker w using the given
// weight snapshot, with feature fetches metered. Returns the (possibly
// quantised) gradients and the bytes pushed.
func (d *dist) gradStep(w int, snapshot weights) (weights, int64) {
	seeds := d.shard[w]
	if len(seeds) == 0 {
		return nil, 0
	}
	rng := d.rngs[w]
	batch := make([]graph.V, 0, d.cfg.BatchSize)
	for i := 0; i < d.cfg.BatchSize; i++ {
		batch = append(batch, seeds[rng.Intn(len(seeds))])
	}
	// dedup seeds (NeighborSample assumes distinct seeds)
	seen := map[graph.V]bool{}
	uniq := batch[:0]
	for _, s := range batch {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	var sub *gnn.SampledSubgraph
	if d.prov != nil {
		var err error
		sub, err = gnn.NeighborSampleSource(d.prov.Handle(w), uniq, d.cfg.Fanouts, rng)
		if err != nil {
			if d.srcErr == nil {
				d.srcErr = err
			}
			return nil, 0
		}
	} else {
		sub = gnn.NeighborSample(d.task.G, uniq, d.cfg.Fanouts, rng)
	}
	bx := d.fs.Fetch(w, sub.NewToOld)
	blabels := make([]int, sub.Graph.NumVertices())
	for i := range blabels {
		blabels[i] = -1
	}
	for _, loc := range sub.SeedLoc {
		blabels[loc] = d.task.Labels[sub.NewToOld[loc]]
	}
	bm := gnn.NewModel(sub.Graph, d.cfg.Kind, d.dims, d.cfg.Seed)
	params := bm.Params()
	for i, p := range params {
		copy(p.W.Data, snapshot[i].Data)
	}
	logits := bm.Forward(bx)
	_, dLogits := nn.SoftmaxCrossEntropy(logits, blabels)
	bm.Backward(dLogits)
	var grads weights
	for _, p := range params {
		grads = append(grads, p.Grad)
	}
	// quantise the push (EC-Graph/EXACT-style compression); error-feedback
	// residuals are per (worker, parameter) since shapes differ
	var sent int64
	for i := range grads {
		q, ok := d.quant[w][i]
		if !ok {
			q = NewQuantizer(d.cfg.QuantBits, d.cfg.QuantCompensate)
			d.quant[w][i] = q
		}
		grads[i] = q.Compress(grads[i])
		sent += q.BytesSent
		q.BytesSent = 0
		q.BytesValue = 0
	}
	return grads, sent
}

func (d *dist) evaluate(master weights) (acc, loss float64) {
	eval := gnn.NewModel(d.task.G, d.cfg.Kind, d.dims, d.cfg.Seed)
	for i, p := range eval.Params() {
		copy(p.W.Data, master[i].Data)
	}
	logits := eval.Forward(d.task.X)
	loss, _ = nn.SoftmaxCrossEntropy(logits, d.task.Labels)
	return nn.Accuracy(logits, d.task.Labels, d.task.TestMask), loss
}

// finish fills the result fields common to all training modes, attaches the
// storage section to the trace for metered runs, and closes a policy-spilled
// provider the trainer owns.
func (d *dist) finish(res *DistResult, master weights, workload string) {
	res.TestAcc, res.Loss = d.evaluate(master)
	res.Net = d.clst.Network().Stats()
	res.RemoteFrac = d.fs.RemoteFraction()
	res.Trace = obs.Finish(d.cfg.RunOptions, workload, d.clst)
	if res.Trace != nil && d.meterStorage() {
		st := d.prov.Stats()
		fp := d.prov.Footprint()
		res.Trace.Storage = &obs.StorageTrace{
			Kind:          fp.Kind,
			FileBytes:     fp.FileBytes,
			ResidentBytes: fp.ResidentBytes,
			CacheBytes:    fp.CacheBytes,
			Hits:          st.Hits,
			Misses:        st.Misses,
			Evictions:     st.Evictions,
			BlocksRead:    st.BlocksRead,
			BytesRead:     st.BytesRead,
			HitRatio:      st.HitRatio(),
			Rounds:        d.stRounds,
		}
	}
	d.closeOwned()
}

// closeOwned releases a policy-spilled provider (and its temp block file).
// Best-effort: by the time it runs the spill has been fully read.
func (d *dist) closeOwned() {
	if d.ownProv != nil {
		_ = d.ownProv.Close()
		d.ownProv = nil
	}
}

// storageFailed surfaces the first sampling I/O error as a typed error at the
// round barrier (mirroring pregel's superstep-barrier check), releasing any
// owned spill first.
func (d *dist) storageFailed(round int) error {
	if d.srcErr == nil {
		return nil
	}
	d.closeOwned()
	return fmt.Errorf("gnndist: round %d: %w", round, d.srcErr)
}

// TrainSync runs fully synchronous data-parallel training: every round all
// workers compute gradients on the same weight version, gradients are
// averaged on a parameter server, and new weights are broadcast. A round
// costs the time of the SLOWEST worker (the straggler effect asynchronous
// modes avoid). Under an injected crash (RunOptions.Faults) the run rolls
// back to the latest checkpoint and replays deterministically, so the final
// model matches the fault-free run exactly; the replayed work is metered in
// the trace's recovery section.
func TrainSync(task *gnn.Task, cfg TrainerConfig) (DistResult, error) {
	res, _, err := trainSync(task, cfg)
	return res, err
}

// SyncStats bundles a sync-training result with feature-store counters.
type SyncStats struct {
	Result              DistResult
	Hits, Misses, Local int64
}

// TrainSyncWithStats is TrainSync plus the feature-store cache counters
// (used by the Table-2 caching experiment).
func TrainSyncWithStats(task *gnn.Task, cfg TrainerConfig) (SyncStats, error) {
	res, d, err := trainSync(task, cfg)
	if err != nil {
		return SyncStats{}, err
	}
	return SyncStats{Result: res, Hits: d.fs.Hits, Misses: d.fs.Misses, Local: d.fs.Local}, nil
}

func trainSync(task *gnn.Task, cfg TrainerConfig) (DistResult, *dist, error) {
	d, err := newDist(task, cfg)
	if err != nil {
		return DistResult{}, nil, err
	}
	cfg = d.cfg
	masterModel, master := newMaster(d)
	opt := nn.NewAdam(cfg.LR)
	params := masterModel.Params()
	ps := 0 // parameter-server worker
	var res DistResult

	// implicit restart point: the freshly initialised model costs nothing to
	// "checkpoint" (every worker can rebuild it from the seed)
	last := d.snapshot(0, res, master, opt, params)
	for r := 0; res.SimTime < cfg.TimeBudget; r++ {
		if cfg.CheckpointEvery > 0 && r > 0 && r%cfg.CheckpointEvery == 0 {
			last = d.snapshot(r, res, master, opt, params)
			d.fi.NoteCheckpoint(last.bytes())
		}
		if d.fi.CrashDue(r) {
			// a worker dies at the round barrier: every worker reloads the
			// last snapshot and the lost rounds are replayed (deterministic —
			// RNG positions and optimiser moments are part of the snapshot)
			d.fi.NoteRecovery(r-last.round, res.SimTime-last.res.SimTime)
			res = d.restore(last, master, opt, params)
			r = last.round
		}
		// all workers compute on the same version
		var roundMax float64
		for w := 0; w < cfg.Workers; w++ {
			grads, sent := d.gradStep(w, master)
			res.GradBytes += sent
			if grads != nil {
				d.clst.Network().Account(w, ps, sent)
				for i, p := range params {
					p.Grad.AddScaled(grads[i], 1/float32(cfg.Workers))
				}
			}
			sp := d.speed(w)
			d.clst.AddBusy(w, sp)
			if sp > roundMax {
				roundMax = sp
			}
		}
		if err := d.storageFailed(r); err != nil {
			return DistResult{}, nil, err
		}
		d.noteRound(r)
		opt.Step(params)
		res.Steps++
		res.SyncRounds++
		// broadcast new weights
		wb := weightBytes(master)
		for w := 0; w < cfg.Workers; w++ {
			if w != ps {
				d.clst.Network().Account(ps, w, wb)
			}
		}
		d.clst.Network().AccountRound()
		res.SimTime += roundMax
	}
	d.finish(&res, master, "gnndist/sync")
	return res, d, nil
}

// TrainBoundedStale runs asynchronous training with bounded staleness
// (Dorylus/P³): each worker proceeds at its own speed, pushing gradients to
// the parameter server as they complete and pulling fresh weights only when
// its version lag exceeds cfg.Staleness. Stragglers no longer gate the
// round, so more gradient steps land within the same simulated time budget.
// Crash recovery mirrors TrainSync: scheduler events count as rounds for
// CheckpointEvery/CrashAtRound, and a snapshot additionally carries each
// worker's stale weight copy and version clock.
func TrainBoundedStale(task *gnn.Task, cfg TrainerConfig) (DistResult, error) {
	d, err := newDist(task, cfg)
	if err != nil {
		return DistResult{}, err
	}
	cfg = d.cfg
	masterModel, master := newMaster(d)
	opt := nn.NewAdam(cfg.LR)
	params := masterModel.Params()
	ps := 0
	var res DistResult

	clock := make([]float64, cfg.Workers)
	local := make([]weights, cfg.Workers)
	version := make([]int64, cfg.Workers)
	var masterVersion int64
	for w := range local {
		local[w] = cloneWeights(master)
	}
	type staleCkpt struct {
		base          *syncCkpt
		clock         []float64
		local         []weights
		version       []int64
		masterVersion int64
	}
	takeStale := func(ev int) *staleCkpt {
		s := &staleCkpt{
			base:          d.snapshot(ev, res, master, opt, params),
			clock:         append([]float64(nil), clock...),
			version:       append([]int64(nil), version...),
			masterVersion: masterVersion,
			local:         make([]weights, len(local)),
		}
		for w := range local {
			s.local[w] = cloneWeights(local[w])
		}
		return s
	}
	last := takeStale(0)
	maxClock := func(c []float64) float64 {
		var m float64
		for _, t := range c {
			if t > m {
				m = t
			}
		}
		return m
	}
	for ev := 0; ; ev++ {
		if cfg.CheckpointEvery > 0 && ev > 0 && ev%cfg.CheckpointEvery == 0 {
			last = takeStale(ev)
			// the per-worker stale copies are checkpoint state too
			d.fi.NoteCheckpoint(last.base.bytes() + int64(cfg.Workers)*weightBytes(master))
		}
		if d.fi.CrashDue(ev) {
			d.fi.NoteRecovery(ev-last.base.round, maxClock(clock)-maxClock(last.clock))
			res = d.restore(last.base, master, opt, params)
			copy(clock, last.clock)
			copy(version, last.version)
			masterVersion = last.masterVersion
			for w := range local {
				for i := range local[w] {
					copy(local[w][i].Data, last.local[w][i].Data)
				}
			}
			ev = last.base.round
		}
		// next worker to finish a step
		next, best := -1, cfg.TimeBudget
		for w := 0; w < cfg.Workers; w++ {
			if t := clock[w] + d.speed(w); t <= best {
				next, best = w, t
			}
		}
		if next == -1 {
			break
		}
		w := next
		clock[w] = best
		d.clst.AddBusy(w, d.speed(w))
		// pull if too stale
		if masterVersion-version[w] > int64(cfg.Staleness) {
			for i := range local[w] {
				copy(local[w][i].Data, master[i].Data)
			}
			version[w] = masterVersion
			d.clst.Network().Account(ps, w, weightBytes(master))
		}
		grads, sent := d.gradStep(w, local[w])
		if err := d.storageFailed(ev); err != nil {
			return DistResult{}, err
		}
		d.noteRound(ev)
		res.GradBytes += sent
		if grads != nil {
			d.clst.Network().Account(w, ps, sent)
			for i, p := range params {
				p.Grad.AddInPlace(grads[i])
			}
			opt.Step(params)
			masterVersion++
			res.Steps++
		}
	}
	res.SimTime = maxClock(clock)
	d.finish(&res, master, "gnndist/bounded-stale")
	return res, nil
}

// TrainSancus runs synchronous rounds but with Sancus' staleness-aware
// communication avoidance: after the parameter server applies a round's
// gradients, the fresh weights are broadcast only if they changed by more
// than cfg.SancusTau relative to the last broadcast; otherwise workers keep
// computing on their (bounded-stale) cached weights and the broadcast is
// skipped — saving bytes with negligible accuracy impact when updates are
// small.
func TrainSancus(task *gnn.Task, cfg TrainerConfig) (DistResult, error) {
	d, err := newDist(task, cfg)
	if err != nil {
		return DistResult{}, err
	}
	cfg = d.cfg
	if cfg.SancusTau == 0 {
		cfg.SancusTau = 1e-4
	}
	masterModel, master := newMaster(d)
	opt := nn.NewAdam(cfg.LR)
	ps := 0
	var res DistResult
	broadcast := cloneWeights(master) // what workers currently hold
	for res.SimTime < cfg.TimeBudget {
		var roundMax float64
		for w := 0; w < cfg.Workers; w++ {
			grads, sent := d.gradStep(w, broadcast)
			res.GradBytes += sent
			if grads != nil {
				d.clst.Network().Account(w, ps, sent)
				for i, p := range masterModel.Params() {
					p.Grad.AddScaled(grads[i], 1/float32(cfg.Workers))
				}
			}
			sp := d.speed(w)
			d.clst.AddBusy(w, sp)
			if sp > roundMax {
				roundMax = sp
			}
		}
		if err := d.storageFailed(int(res.SyncRounds)); err != nil {
			return DistResult{}, err
		}
		d.noteRound(int(res.SyncRounds))
		opt.Step(masterModel.Params())
		res.Steps++
		res.SyncRounds++
		if relChange(master, broadcast) > cfg.SancusTau {
			wb := weightBytes(master)
			for w := 0; w < cfg.Workers; w++ {
				if w != ps {
					d.clst.Network().Account(ps, w, wb)
				}
			}
			for i := range broadcast {
				copy(broadcast[i].Data, master[i].Data)
			}
		} else {
			res.Skipped++
		}
		d.clst.Network().AccountRound()
		res.SimTime += roundMax
	}
	d.finish(&res, master, "gnndist/sancus")
	return res, nil
}
