package gnndist

// Pipeline scheduling (ByteGNN's two-level scheduling, BGL's factored
// executors, Dorylus' serverless pipeline): a GNN training step is a chain of
// heterogeneous stages — subgraph sampling, feature fetching, model compute —
// and running stage s of batch b concurrently with stage s+1 of batch b-1
// hides the latency of all but the bottleneck stage.

// StageTimes[s][b] is the duration of stage s for batch b (arbitrary units).
type StageTimes [][]float64

// SequentialMakespan runs every stage of every batch back to back (the
// unpipelined executor).
func SequentialMakespan(t StageTimes) float64 {
	var total float64
	if len(t) == 0 {
		return 0
	}
	for b := 0; b < len(t[0]); b++ {
		for s := 0; s < len(t); s++ {
			total += t[s][b]
		}
	}
	return total
}

// PipelinedMakespan computes the makespan when each stage is a dedicated
// executor and batch b can enter stage s as soon as both the batch has
// finished stage s-1 and the executor has finished batch b-1:
// finish[s][b] = max(finish[s-1][b], finish[s][b-1]) + t[s][b].
func PipelinedMakespan(t StageTimes) float64 {
	if len(t) == 0 || len(t[0]) == 0 {
		return 0
	}
	stages, batches := len(t), len(t[0])
	finish := make([][]float64, stages)
	for s := range finish {
		finish[s] = make([]float64, batches)
	}
	for b := 0; b < batches; b++ {
		for s := 0; s < stages; s++ {
			var ready float64
			if s > 0 {
				ready = finish[s-1][b]
			}
			if b > 0 && finish[s][b-1] > ready {
				ready = finish[s][b-1]
			}
			finish[s][b] = ready + t[s][b]
		}
	}
	return finish[stages-1][batches-1]
}

// Speedup returns sequential/pipelined makespan.
func Speedup(t StageTimes) float64 {
	p := PipelinedMakespan(t)
	if p == 0 {
		return 1
	}
	return SequentialMakespan(t) / p
}
