package gnndist

import (
	"math"

	"graphsys/internal/cluster"
	"graphsys/internal/gnn"
	"graphsys/internal/graph"
	"graphsys/internal/nn"
	"graphsys/internal/partition"
	"graphsys/internal/tensor"
)

// ---- DistGNN: full-graph training with delayed remote aggregates ----

// delayedAdj is a GCN normalised adjacency split by a vertex partition:
// Apply combines FRESH activations over same-partition edges with a STALE
// snapshot over cross-partition edges — DistGNN's delayed-update
// communication avoidance, where remote partial aggregates are refreshed
// only every few epochs.
type delayedAdj struct {
	n      int
	nnz    int64 // total adjacency entries, for the parallel-kernel work gate
	nbrs   [][]graph.V
	wts    [][]float32
	remote [][]bool // aligned with nbrs: true if the edge crosses partitions
}

func newDelayedAdj(g *graph.Graph, part *partition.Partition) *delayedAdj {
	n := g.NumVertices()
	a := &delayedAdj{n: n, nbrs: make([][]graph.V, n), wts: make([][]float32, n), remote: make([][]bool, n)}
	invSqrt := make([]float64, n)
	for v := 0; v < n; v++ {
		invSqrt[v] = 1 / math.Sqrt(float64(g.Degree(graph.V(v))+1))
	}
	for v := 0; v < n; v++ {
		ns := g.Neighbors(graph.V(v))
		a.nbrs[v] = append(append([]graph.V(nil), ns...), graph.V(v))
		w := make([]float32, len(ns)+1)
		r := make([]bool, len(ns)+1)
		for i, u := range ns {
			w[i] = float32(invSqrt[v] * invSqrt[u])
			r[i] = part.Assign[u] != part.Assign[v]
		}
		w[len(ns)] = float32(invSqrt[v] * invSqrt[v])
		a.wts[v] = w
		a.remote[v] = r
		a.nnz += int64(len(ns) + 1)
	}
	return a
}

// apply computes Â·H using fresh rows for local edges and stale rows for
// remote edges. The gather is row-owned, so it parallelises over destination
// vertices with bitwise-identical results at any worker count; the scatter in
// applyLocalT is not row-owned and stays serial.
func (a *delayedAdj) apply(fresh, stale *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(a.n, fresh.Cols)
	tensor.ParallelFor(a.n, a.nnz*int64(fresh.Cols), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			or := out.Row(v)
			for i, u := range a.nbrs[v] {
				src := fresh
				if a.remote[v][i] {
					src = stale
				}
				w := a.wts[v][i]
				hr := src.Row(int(u))
				for j := range or {
					or[j] += w * hr[j]
				}
			}
		}
	})
	return out
}

// applyLocalT is the transpose action restricted to local edges (gradients
// do not flow through the stale snapshot — exactly the approximation delayed
// updates make).
func (a *delayedAdj) applyLocalT(dy *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(a.n, dy.Cols)
	for v := 0; v < a.n; v++ {
		dr := dy.Row(v)
		for i, u := range a.nbrs[v] {
			if a.remote[v][i] {
				continue
			}
			w := a.wts[v][i]
			or := out.Row(int(u))
			for j := range dr {
				or[j] += w * dr[j]
			}
		}
	}
	return out
}

// boundaryVertices returns the vertices having at least one cross-partition
// neighbor (whose activations must be shipped on refresh).
func boundaryVertices(g *graph.Graph, part *partition.Partition) []graph.V {
	var out []graph.V
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(graph.V(v)) {
			if part.Assign[u] != part.Assign[v] {
				out = append(out, graph.V(v))
				break
			}
		}
	}
	return out
}

// DistGNNConfig configures delayed-update full-graph training.
type DistGNNConfig struct {
	Workers      int
	Part         *partition.Partition
	Hidden       int
	Epochs       int
	LR           float64
	RefreshEvery int // epochs between remote-aggregate refreshes (1 = sync)
	Seed         int64
}

// DistGNNResult reports a delayed-update run.
type DistGNNResult struct {
	TestAcc   float64
	Refreshes int64
	Net       cluster.Stats
}

// TrainDistGNN trains a 2-layer GCN full-graph with DistGNN's delayed
// updates: layer-2 aggregation uses a snapshot of layer-1 activations for
// cross-partition edges, refreshed (and metered) every RefreshEvery epochs.
func TrainDistGNN(task *gnn.Task, cfg DistGNNConfig) DistGNNResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Part == nil {
		cfg.Part = partition.Metis(task.G, cfg.Workers)
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 16
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 60
	}
	if cfg.LR == 0 {
		cfg.LR = 0.02
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = 1
	}
	clst := cluster.New(cfg.Workers)
	adj := newDelayedAdj(task.G, cfg.Part)
	boundary := boundaryVertices(task.G, cfg.Part)

	lin1 := nn.NewDense(task.X.Cols, cfg.Hidden, cfg.Seed)
	lin2 := nn.NewDense(cfg.Hidden, task.NumClasses, cfg.Seed+101)
	relu := &nn.ReLU{}
	opt := nn.NewAdam(cfg.LR)
	params := append(lin1.Params(), lin2.Params()...)

	masked := make([]int, len(task.Labels))
	for i, l := range task.Labels {
		if !task.TrainMask[i] {
			masked[i] = -1
		} else {
			masked[i] = l
		}
	}
	var res DistGNNResult
	var staleH1 *tensor.Matrix
	var lastLogits *tensor.Matrix
	for ep := 0; ep < cfg.Epochs; ep++ {
		// layer 1: X is static, so its exchange happens once (epoch 0)
		agg0 := adj.apply(task.X, task.X)
		h1 := relu.Forward(lin1.Forward(agg0))
		if staleH1 == nil || ep%cfg.RefreshEvery == 0 {
			staleH1 = h1.Clone()
			res.Refreshes++
			// ship boundary activations between partitions
			for _, v := range boundary {
				owner := cfg.Part.Assign[v]
				for w := 0; w < cfg.Workers; w++ {
					if w != owner {
						clst.Network().Account(owner, w, int64(cfg.Hidden)*4)
					}
				}
			}
		}
		agg1 := adj.apply(h1, staleH1)
		logits := lin2.Forward(agg1)
		lastLogits = logits
		_, dLogits := nn.SoftmaxCrossEntropy(logits, masked)
		dAgg1 := lin2.Backward(dLogits)
		dH1 := adj.applyLocalT(dAgg1)
		dZ1 := relu.Backward(dH1)
		lin1.Backward(dZ1)
		opt.Step(params)
	}
	res.TestAcc = nn.Accuracy(lastLogits, task.Labels, task.TestMask)
	res.Net = clst.Network().Stats()
	return res
}

// ---- HongTu: CPU-offloaded full-graph training ----

// OffloadStats reports the memory/transfer accounting of HongTu-style
// chunked execution, where vertex activations live in host memory and the
// device processes one chunk of rows at a time.
type OffloadStats struct {
	DevicePeakFloats int64 // peak device-resident floats
	HostTransferred  int64 // floats moved host<->device
	FullGraphFloats  int64 // what an all-on-device run would need resident
}

// OffloadedGCNForward computes a 2-layer GCN forward pass chunk by chunk:
// for each layer, only `chunkRows` rows of activations are resident on the
// "device" at a time, with inputs streamed from host memory. The returned
// logits are bit-identical in structure to the monolithic forward; the stats
// expose HongTu's trade: bounded device memory for extra host traffic.
func OffloadedGCNForward(g *graph.Graph, x *tensor.Matrix, lin1W, lin1B, lin2W, lin2B *tensor.Matrix, chunkRows int) (*tensor.Matrix, OffloadStats) {
	n := g.NumVertices()
	adj := gnn.NewNormAdj(g)
	var st OffloadStats
	hidden := lin1W.Cols
	classes := lin2W.Cols
	st.FullGraphFloats = int64(n) * int64(x.Cols+hidden+classes)

	layer := func(input *tensor.Matrix, w, b *tensor.Matrix, activate bool) *tensor.Matrix {
		out := tensor.New(n, w.Cols)
		for lo := 0; lo < n; lo += chunkRows {
			hi := lo + chunkRows
			if hi > n {
				hi = n
			}
			// device holds: chunk of aggregated inputs + chunk of outputs
			devFloats := int64(hi-lo) * int64(input.Cols+w.Cols)
			if devFloats > st.DevicePeakFloats {
				st.DevicePeakFloats = devFloats
			}
			// stream the needed input rows from host (charged per chunk)
			st.HostTransferred += int64(hi-lo) * int64(input.Cols)
			for v := lo; v < hi; v++ {
				// aggregate row v on device
				aggRow := make([]float32, input.Cols)
				for i, u := range adj.NeighborsOf(v) {
					wgt := adj.WeightsOf(v)[i]
					ur := input.Row(int(u))
					for j := range aggRow {
						aggRow[j] += wgt * ur[j]
					}
				}
				or := out.Row(v)
				for j := 0; j < w.Cols; j++ {
					var s float32
					for d, av := range aggRow {
						s += av * w.At(d, j)
					}
					s += b.At(0, j)
					if activate && s < 0 {
						s = 0
					}
					or[j] = s
				}
			}
			// write results back to host
			st.HostTransferred += int64(hi-lo) * int64(w.Cols)
		}
		return out
	}
	h1 := layer(x, lin1W, lin1B, true)
	logits := layer(h1, lin2W, lin2B, false)
	return logits, st
}
