package gnndist

import (
	"graphsys/internal/cluster"
	"graphsys/internal/graph"
	"graphsys/internal/partition"
	"graphsys/internal/tensor"
)

// P³'s push-pull parallelism (Gandhi & Iyer, OSDI'21). The first GNN layer
// consumes raw features (wide, dimension D) and produces hidden activations
// (narrow, dimension H ≪ D). Data-parallel systems PULL the D-wide feature
// rows of every sampled vertex to the batch owner; P³ instead partitions the
// feature matrix BY DIMENSION, has every worker compute a partial layer-1
// product from its dimension slice (model parallelism), and PUSHES the
// H-wide partial activations to the owner, who sums them — shrinking layer-1
// traffic from |sampled|·D to k·|batch targets|·H values.

// PullLayer1 computes Z = X[batch]·W1 at worker `owner` by pulling the raw
// feature rows of batch vertices from their partition owners. Remote rows
// are accounted as one batched transfer per source partition. Returns Z and
// the bytes transferred.
func PullLayer1(net *cluster.Network, part *partition.Partition, x, w1 *tensor.Matrix, batch []graph.V, owner int) (*tensor.Matrix, int64) {
	before := net.Stats().Bytes
	rows := tensor.New(len(batch), x.Cols)
	pulled := make([]int64, net.NumWorkers())
	for i, v := range batch {
		if part.Assign[v] != owner {
			pulled[part.Assign[v]]++
		}
		copy(rows.Row(i), x.Row(int(v)))
	}
	rowBytes := int64(x.Cols) * 4
	for src, cnt := range pulled {
		if cnt > 0 {
			net.AccountBatch(src, owner, cnt, cnt*rowBytes)
		}
	}
	z := tensor.MatMul(rows, w1)
	return z, net.Stats().Bytes - before
}

// PushPullLayer1 computes the same Z with P³'s scheme: worker w holds
// feature dims [fd.Lo[w], fd.Hi[w]) of ALL vertices and computes the partial
// product with the matching W1 row block, pushing the |batch|×H partial to
// the owner. Returns Z (identical to PullLayer1 up to float rounding) and
// the bytes transferred.
func PushPullLayer1(net *cluster.Network, fd *partition.FeatureDim, x, w1 *tensor.Matrix, batch []graph.V, owner int) (*tensor.Matrix, int64) {
	before := net.Stats().Bytes
	h := w1.Cols
	z := tensor.New(len(batch), h)
	for w := 0; w < fd.K; w++ {
		lo, hi := fd.Lo[w], fd.Hi[w]
		if lo == hi {
			continue
		}
		partial := tensor.New(len(batch), h)
		for i, v := range batch {
			row := x.Row(int(v))[lo:hi]
			for d, xv := range row {
				if xv == 0 {
					continue
				}
				wr := w1.Row(lo + d)
				pr := partial.Row(i)
				for j := 0; j < h; j++ {
					pr[j] += xv * wr[j]
				}
			}
		}
		if w != owner {
			net.Account(w, owner, int64(len(batch))*int64(h)*4)
		}
		z.AddInPlace(partial)
	}
	return z, net.Stats().Bytes - before
}
