package gnndist

import (
	"math/rand"

	"graphsys/internal/nn"
	"graphsys/internal/tensor"
)

// This file holds the crash-recovery machinery of the distributed trainers:
// a training checkpoint bundles everything a replay needs to be bit-identical
// to the fault-free run — master weights, Adam moments, each worker's RNG
// position, the quantizers' error-feedback residuals, and the result counters
// at snapshot time. Restoring and replaying the lost rounds therefore
// converges to the exact same final loss; the extra work shows up only in the
// network/recovery meters.

// countedSource wraps a rand.Source64 and counts draws. rand's generator
// state is unexportable, so rollback instead rebuilds the source from its
// seed and fast-forwards the recorded number of draws (every Source64 draw
// advances the state by exactly one step, whether taken via Int63 or Uint64).
type countedSource struct {
	seed int64
	src  rand.Source64
	n    uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countedSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countedSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countedSource) Seed(seed int64) {
	s.seed = seed
	s.src.Seed(seed)
	s.n = 0
}

// rewind rebuilds the source at draw position n of its seed sequence.
func (s *countedSource) rewind(n uint64) {
	s.src = rand.NewSource(s.seed).(rand.Source64)
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.n = n
}

// syncCkpt is one training checkpoint (the state shared by all modes; see
// TrainBoundedStale for the per-worker extras asynchronous training adds).
type syncCkpt struct {
	round  int
	res    DistResult
	master weights
	adam   nn.AdamState
	draws  []uint64                 // per worker RNG positions
	resid  []map[int]*tensor.Matrix // per worker error-feedback residuals
}

// bytes is the metered checkpoint volume: weights plus both Adam moments.
func (c *syncCkpt) bytes() int64 { return 3 * weightBytes(c.master) }

// snapshot deep-copies the training state at the top of the given round.
func (d *dist) snapshot(round int, res DistResult, master weights, opt *nn.Adam, params []*nn.Param) *syncCkpt {
	c := &syncCkpt{
		round:  round,
		res:    res,
		master: cloneWeights(master),
		adam:   opt.Snapshot(params),
		draws:  make([]uint64, len(d.srcs)),
		resid:  make([]map[int]*tensor.Matrix, len(d.quant)),
	}
	for w, s := range d.srcs {
		c.draws[w] = s.n
	}
	for w, qs := range d.quant {
		c.resid[w] = map[int]*tensor.Matrix{}
		for i, q := range qs {
			c.resid[w][i] = q.SnapshotResidual()
		}
	}
	return c
}

// restore rewinds the training state to a checkpoint and returns the result
// counters as of that round. The checkpoint stays intact, so it can serve
// repeated rollbacks.
func (d *dist) restore(c *syncCkpt, master weights, opt *nn.Adam, params []*nn.Param) DistResult {
	for i := range master {
		copy(master[i].Data, c.master[i].Data)
	}
	opt.Restore(params, c.adam)
	for _, p := range params {
		p.ZeroGrad()
	}
	for w, s := range d.srcs {
		s.rewind(c.draws[w])
		d.rngs[w] = rand.New(s)
	}
	for w := range d.quant {
		qs := map[int]*Quantizer{}
		for i, r := range c.resid[w] {
			q := NewQuantizer(d.cfg.QuantBits, d.cfg.QuantCompensate)
			q.RestoreResidual(r)
			qs[i] = q
		}
		d.quant[w] = qs
	}
	return c.res
}
