package gnndist

import (
	"math"

	"graphsys/internal/tensor"
)

// Quantizer compresses matrices to a given bit width with per-row symmetric
// scaling before they go on the wire, optionally carrying an error-feedback
// residual (EC-Graph's error-compensated compression): the quantisation
// error of round t is added to the input of round t+1, so the bias cancels
// over time instead of accumulating in the model.
type Quantizer struct {
	Bits       int  // 32 (no-op), 8, 4, 2, 1
	Compensate bool // error feedback on/off
	residual   *tensor.Matrix
	BytesSent  int64 // metered compressed payload
	BytesValue int64 // what fp32 would have cost
}

// NewQuantizer creates a quantizer. Widths outside [2, 32] are clamped
// (1-bit symmetric quantisation has no representable level).
func NewQuantizer(bits int, compensate bool) *Quantizer {
	if bits <= 0 || bits > 32 {
		bits = 32
	}
	if bits == 1 {
		bits = 2
	}
	return &Quantizer{Bits: bits, Compensate: compensate}
}

// Compress simulates quantise→transmit→dequantise of m, returning the values
// the receiver reconstructs, and accounts payload sizes. The caller sends
// the returned matrix; m itself is not modified.
func (q *Quantizer) Compress(m *tensor.Matrix) *tensor.Matrix {
	q.BytesValue += int64(len(m.Data)) * 4
	if q.Bits >= 32 {
		q.BytesSent += int64(len(m.Data)) * 4
		return m.Clone()
	}
	// scales: one fp32 per row
	q.BytesSent += int64(len(m.Data))*int64(q.Bits)/8 + int64(m.Rows)*4
	in := m
	if q.Compensate {
		if q.residual == nil {
			q.residual = tensor.New(m.Rows, m.Cols)
		}
		in = tensor.Add(m, q.residual)
	}
	out := tensor.New(m.Rows, m.Cols)
	levels := float64(int64(1)<<(q.Bits-1)) - 1 // symmetric int range
	for i := 0; i < m.Rows; i++ {
		row := in.Row(i)
		var max float64
		for _, v := range row {
			if a := math.Abs(float64(v)); a > max {
				max = a
			}
		}
		or := out.Row(i)
		if max == 0 {
			continue
		}
		scale := max / levels
		for j, v := range row {
			qv := math.Round(float64(v) / scale)
			or[j] = float32(qv * scale)
		}
	}
	if q.Compensate {
		// residual = input - transmitted
		for i := range q.residual.Data {
			q.residual.Data[i] = in.Data[i] - out.Data[i]
		}
	}
	return out
}

// SnapshotResidual deep-copies the error-feedback residual (nil when
// compensation is off or the quantizer has not run yet). Together with
// nn.AdamState it makes a training checkpoint complete: the residual feeds
// into the next compressed push, so dropping it would change post-recovery
// gradients.
func (q *Quantizer) SnapshotResidual() *tensor.Matrix {
	if q.residual == nil {
		return nil
	}
	return q.residual.Clone()
}

// RestoreResidual rewinds the error-feedback residual to a snapshot.
func (q *Quantizer) RestoreResidual(r *tensor.Matrix) {
	if r == nil {
		q.residual = nil
		return
	}
	q.residual = r.Clone()
}

// CompressionRatio returns fp32 bytes / compressed bytes so far.
func (q *Quantizer) CompressionRatio() float64 {
	if q.BytesSent == 0 {
		return 1
	}
	return float64(q.BytesValue) / float64(q.BytesSent)
}
