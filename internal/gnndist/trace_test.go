package gnndist

import (
	"testing"

	"graphsys/internal/cluster"
	"graphsys/internal/gnn"
)

func TestTrainSyncCollectsTrace(t *testing.T) {
	task := gnn.SyntheticCommunityTask(120, 3, 2, 0.3, 5)
	res, err := TrainSync(task, TrainerConfig{
		Workers:     4,
		TimeBudget:  10,
		WorkerSpeed: []float64{1, 1, 1, 2}, // worker 3 straggles
		RunOptions: cluster.RunOptions{
			Trace: true,
			Topology: func(net *cluster.Network) {
				cluster.RingTopology(net, 2, 0.1)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("Trace not collected")
	}
	if tr.Workers != 4 || len(tr.LinkBytes) != 4 {
		t.Fatalf("trace shape wrong: %+v", tr)
	}
	if int64(len(tr.RoundSeries)) != res.SyncRounds {
		t.Fatalf("round series has %d entries, ran %d sync rounds", len(tr.RoundSeries), res.SyncRounds)
	}
	// simulated busy time: the straggler must dominate and skew must see it
	busy := tr.WorkerBusySec
	if busy[3] <= busy[0] {
		t.Fatalf("straggler not metered: busy=%v", busy)
	}
	if tr.Skew.BusyImbalance <= 1.0 {
		t.Fatalf("imbalance = %f, want > 1 with a 2x straggler", tr.Skew.BusyImbalance)
	}
	if tr.Skew.MaxBusySec != busy[3] {
		t.Fatalf("max busy %f != straggler busy %f", tr.Skew.MaxBusySec, busy[3])
	}
	// parameter-server pattern: everyone sends to worker 0, worker 0 broadcasts
	if tr.LinkBytes[1][0] == 0 || tr.LinkBytes[0][1] == 0 {
		t.Fatalf("expected push/broadcast traffic through worker 0: %v", tr.LinkBytes)
	}
}

func TestTrainModesTraceOptIn(t *testing.T) {
	task := gnn.SyntheticCommunityTask(80, 2, 2, 0.3, 9)
	base := TrainerConfig{Workers: 2, TimeBudget: 4}
	if res, _ := TrainSync(task, base); res.Trace != nil {
		t.Fatal("sync: trace without opt-in")
	}
	stale := base
	stale.Staleness = 2
	stale.Trace = true
	if res, _ := TrainBoundedStale(task, stale); res.Trace == nil || res.Trace.Workload != "gnndist/bounded-stale" {
		t.Fatal("bounded-stale: trace missing")
	}
	sanc := base
	sanc.Trace = true
	if res, _ := TrainSancus(task, sanc); res.Trace == nil || len(res.Trace.RoundSeries) == 0 {
		t.Fatal("sancus: trace missing round series")
	}
}
