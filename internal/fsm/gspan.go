package fsm

import (
	"sort"
	"sync"

	"graphsys/internal/graph"
)

// Pattern is a mined frequent pattern.
type Pattern struct {
	Code    DFSCode
	Support int
}

// Graph materialises the pattern graph.
func (p Pattern) Graph() *graph.Graph { return p.Code.Graph() }

// MineConfig controls transactional mining.
type MineConfig struct {
	MinSupport int // minimum number of transactions containing the pattern
	MaxEdges   int // stop growing patterns beyond this many edges (0 = no limit)
	Workers    int // parallel root-subtree workers (default 4)
}

// embedding is a projection of a DFS code into one transaction.
type embedding struct {
	gid      int
	vertices []graph.V
	edges    map[int64]bool
}

func (e *embedding) clone() *embedding {
	c := &embedding{gid: e.gid, vertices: append([]graph.V(nil), e.vertices...),
		edges: make(map[int64]bool, len(e.edges)+1)}
	for k := range e.edges {
		c.edges[k] = true
	}
	return c
}

func (e *embedding) contains(v graph.V) bool {
	for _, x := range e.vertices {
		if x == v {
			return true
		}
	}
	return false
}

// MineTransactions mines all frequent connected subgraph patterns of db with
// gSpan (canonical DFS codes, rightmost-path extension, prefix projection).
// Each frequent 1-edge root pattern spawns an independent projected-database
// mining task; tasks run on a bounded worker pool — PrefixFPM's
// parallelisation of the pattern search tree.
func MineTransactions(db *graph.TransactionDB, cfg MineConfig) []Pattern {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 1
	}
	// root tuples: every edge of every transaction, both orientations
	roots := map[EdgeCode][]*embedding{}
	for gid, g := range db.Graphs {
		for u := graph.V(0); int(u) < g.NumVertices(); u++ {
			for i, v := range g.Neighbors(u) {
				t := EdgeCode{0, 1, g.Label(u), g.EdgeLabelAt(u, i), g.Label(v)}
				if t.FromL > t.ToL {
					continue // the reversed orientation yields the smaller code
				}
				roots[t] = append(roots[t], &embedding{
					gid:      gid,
					vertices: []graph.V{u, v},
					edges:    map[int64]bool{ekey(u, v): true},
				})
			}
		}
	}
	type rootTask struct {
		code  DFSCode
		projs []*embedding
	}
	var tasks []rootTask
	for t, projs := range roots {
		if supportOf(projs) >= cfg.MinSupport {
			tasks = append(tasks, rootTask{DFSCode{t}, projs})
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].code[0].Less(tasks[j].code[0]) })

	var mu sync.Mutex
	var out []Pattern
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		//lint:allow nakedgo semaphore-bounded gSpan root-task pool, joined via WaitGroup; subtree results are merged under one mutex
		go func(t rootTask) {
			defer wg.Done()
			defer func() { <-sem }()
			var local []Pattern
			mineSubtree(db, t.code, t.projs, cfg, &local)
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].Code.String() < out[j].Code.String() })
	return out
}

// gatherExtensions collects every rightmost-path extension of code over its
// projections, grouped by edge tuple (the projected databases of gSpan).
func gatherExtensions(db *graph.TransactionDB, code DFSCode, projs []*embedding) map[EdgeCode][]*embedding {
	rmpath := code.RightmostPath()
	maxIdx := code.NumVertices() - 1
	ext := map[EdgeCode][]*embedding{}
	for _, e := range projs {
		g := db.Graphs[e.gid]
		rmv := e.vertices[rmpath[0]]
		for _, j := range rmpath[1:] {
			tv := e.vertices[j]
			if !g.HasEdge(rmv, tv) || e.edges[ekey(rmv, tv)] {
				continue
			}
			t := EdgeCode{rmpath[0], j, g.Label(rmv), g.EdgeLabel(rmv, tv), g.Label(tv)}
			c := e.clone()
			c.edges[ekey(rmv, tv)] = true
			ext[t] = append(ext[t], c)
		}
		for _, i := range rmpath {
			fv := e.vertices[i]
			for k, u := range g.Neighbors(fv) {
				if e.contains(u) {
					continue
				}
				t := EdgeCode{i, maxIdx + 1, g.Label(fv), g.EdgeLabelAt(fv, k), g.Label(u)}
				c := e.clone()
				c.vertices = append(c.vertices, u)
				c.edges[ekey(fv, u)] = true
				ext[t] = append(ext[t], c)
			}
		}
	}
	return ext
}

func supportOf(projs []*embedding) int {
	seen := map[int]bool{}
	for _, e := range projs {
		seen[e.gid] = true
	}
	return len(seen)
}

// mineSubtree recursively grows code over its projected database.
func mineSubtree(db *graph.TransactionDB, code DFSCode, projs []*embedding, cfg MineConfig, out *[]Pattern) {
	*out = append(*out, Pattern{Code: append(DFSCode(nil), code...), Support: supportOf(projs)})
	if cfg.MaxEdges > 0 && len(code) >= cfg.MaxEdges {
		return
	}
	ext := gatherExtensions(db, code, projs)
	// recurse over frequent canonical extensions in tuple order
	var tuples []EdgeCode
	for t := range ext {
		tuples = append(tuples, t)
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Less(tuples[j]) })
	for _, t := range tuples {
		children := ext[t]
		if supportOf(children) < cfg.MinSupport {
			continue
		}
		child := append(append(DFSCode(nil), code...), t)
		if !child.IsMin() {
			continue // non-canonical duplicate: pruned, another branch owns it
		}
		mineSubtree(db, child, children, cfg, out)
	}
}
