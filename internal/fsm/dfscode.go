// Package fsm implements frequent subgraph pattern mining, the Table-1 row
// the paper singles out as requiring pattern summarisation rather than
// instance finding. Two system families are covered:
//
//   - Transactional FSM (gSpan / PrefixFPM): patterns are grown depth-first
//     via canonical DFS codes with rightmost-path extension and prefix
//     projection; support is the number of transactions containing the
//     pattern. MineTransactions parallelises the root-pattern subtrees the
//     way PrefixFPM parallelises prefix-projected databases.
//
//   - Single-graph FSM (GraMi / ScaleMine / T-FSM): support is the
//     minimum-non-identical-image (MNI) measure, which is anti-monotone;
//     support evaluation of each candidate pattern is an independent
//     subgraph-matching task executed in parallel, T-FSM's core design.
package fsm

import (
	"fmt"
	"strings"

	"graphsys/internal/graph"
)

// EdgeCode is one gSpan DFS-code tuple (i, j, lᵢ, lᵢⱼ, lⱼ): an edge between
// discovery indices i and j. Forward edges have i < j (j is a new vertex),
// backward edges i > j.
type EdgeCode struct {
	From, To          int
	FromL, EdgeL, ToL int32
}

// Forward reports whether the tuple introduces a new vertex.
func (e EdgeCode) Forward() bool { return e.From < e.To }

// Less is gSpan's DFS lexicographic order on edge tuples.
func (e EdgeCode) Less(o EdgeCode) bool {
	ef, of := e.Forward(), o.Forward()
	switch {
	case ef && of:
		if e.To != o.To {
			return e.To < o.To
		}
		if e.From != o.From {
			return e.From > o.From // deeper anchor first
		}
	case !ef && !of:
		if e.From != o.From {
			return e.From < o.From
		}
		if e.To != o.To {
			return e.To < o.To
		}
	case ef && !of: // e forward, o backward
		return o.From >= e.To
	case !ef && of: // e backward, o forward
		return e.From < o.To
	}
	// same (i, j): label order
	if e.FromL != o.FromL {
		return e.FromL < o.FromL
	}
	if e.EdgeL != o.EdgeL {
		return e.EdgeL < o.EdgeL
	}
	return e.ToL < o.ToL
}

func (e EdgeCode) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d,%d)", e.From, e.To, e.FromL, e.EdgeL, e.ToL)
}

// DFSCode is a pattern encoded as a tuple sequence.
type DFSCode []EdgeCode

func (c DFSCode) String() string {
	parts := make([]string, len(c))
	for i, e := range c {
		parts[i] = e.String()
	}
	return strings.Join(parts, "")
}

// NumVertices returns the number of pattern vertices the code describes.
func (c DFSCode) NumVertices() int {
	max := -1
	for _, e := range c {
		if e.From > max {
			max = e.From
		}
		if e.To > max {
			max = e.To
		}
	}
	return max + 1
}

// Graph materialises the pattern graph (vertex ids = discovery indices).
func (c DFSCode) Graph() *graph.Graph {
	n := c.NumVertices()
	b := graph.NewBuilder(n, false)
	for _, e := range c {
		b.SetLabel(graph.V(e.From), e.FromL)
		b.SetLabel(graph.V(e.To), e.ToL)
		b.AddLabeledEdge(graph.V(e.From), graph.V(e.To), e.EdgeL)
	}
	return b.Build()
}

// RightmostPath returns the dfs indices on the rightmost path, from the
// rightmost vertex back to the root (index 0).
func (c DFSCode) RightmostPath() []int {
	if len(c) == 0 {
		return nil
	}
	// rightmost vertex: target of the last forward edge
	var path []int
	cur := -1
	for i := len(c) - 1; i >= 0; i-- {
		if c[i].Forward() && (cur == -1 || c[i].To == cur) {
			path = append(path, c[i].To)
			cur = c[i].From
		}
	}
	path = append(path, 0)
	return path
}

// IsMin reports whether c is its pattern's minimum DFS code (gSpan's
// canonicality test). It rebuilds the minimum code of c.Graph() step by step
// with projection tracking and compares each tuple.
func (c DFSCode) IsMin() bool {
	if len(c) == 0 {
		return true
	}
	g := c.Graph()
	// step 0: the minimal first tuple over all edges, both orientations
	var first *EdgeCode
	var projs []*pmEmbedding
	for u := graph.V(0); int(u) < g.NumVertices(); u++ {
		for i, v := range g.Neighbors(u) {
			t := EdgeCode{0, 1, g.Label(u), g.EdgeLabelAt(u, i), g.Label(v)}
			if first == nil || t.Less(*first) {
				first = &t
				projs = projs[:0]
			}
			if t == *first {
				projs = append(projs, &pmEmbedding{
					vertices: []graph.V{u, v},
					edges:    map[int64]bool{ekey(u, v): true},
				})
			}
		}
	}
	if first == nil {
		return false
	}
	if first.Less(c[0]) {
		return false
	}
	if c[0].Less(*first) {
		return false // c's first tuple is below the true minimum: malformed
	}
	minCode := DFSCode{*first}
	for step := 1; step < len(c); step++ {
		tuple, next := minExtension(g, minCode, projs)
		if tuple == nil {
			return false
		}
		if tuple.Less(c[step]) {
			return false
		}
		if c[step].Less(*tuple) {
			return false
		}
		minCode = append(minCode, *tuple)
		projs = next
	}
	return true
}

// pmEmbedding maps dfs indices to pattern-graph vertices during min-code
// construction.
type pmEmbedding struct {
	vertices []graph.V
	edges    map[int64]bool
}

func (p *pmEmbedding) clone() *pmEmbedding {
	e := &pmEmbedding{
		vertices: append([]graph.V(nil), p.vertices...),
		edges:    make(map[int64]bool, len(p.edges)+1),
	}
	for k := range p.edges {
		e.edges[k] = true
	}
	return e
}

func (p *pmEmbedding) contains(v graph.V) bool {
	for _, x := range p.vertices {
		if x == v {
			return true
		}
	}
	return false
}

func ekey(u, v graph.V) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// minExtension finds the minimal rightmost-path extension tuple over all
// projections and returns it along with the extended projections.
func minExtension(g *graph.Graph, code DFSCode, projs []*pmEmbedding) (*EdgeCode, []*pmEmbedding) {
	rmpath := code.RightmostPath()
	maxIdx := code.NumVertices() - 1
	var best *EdgeCode
	var next []*pmEmbedding
	consider := func(t EdgeCode, e *pmEmbedding, newV graph.V, newEdge int64) {
		if best == nil || t.Less(*best) {
			best = &t
			next = next[:0]
		}
		if t == *best {
			c := e.clone()
			if t.Forward() {
				c.vertices = append(c.vertices, newV)
			}
			c.edges[newEdge] = true
			next = append(next, c)
		}
	}
	for _, e := range projs {
		rmv := e.vertices[rmpath[0]]
		// backward extensions: rightmost vertex → rmpath vertices
		for _, j := range rmpath[1:] {
			tv := e.vertices[j]
			if !g.HasEdge(rmv, tv) || e.edges[ekey(rmv, tv)] {
				continue
			}
			t := EdgeCode{rmpath[0], j, g.Label(rmv), g.EdgeLabel(rmv, tv), g.Label(tv)}
			consider(t, e, -1, ekey(rmv, tv))
		}
		// forward extensions: from every rmpath vertex (incl. rightmost)
		for _, i := range rmpath {
			fv := e.vertices[i]
			for k, u := range g.Neighbors(fv) {
				if e.contains(u) {
					continue
				}
				t := EdgeCode{i, maxIdx + 1, g.Label(fv), g.EdgeLabelAt(fv, k), g.Label(u)}
				consider(t, e, u, ekey(fv, u))
			}
		}
	}
	return best, next
}
