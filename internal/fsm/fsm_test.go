package fsm

import (
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/mining"
)

// uniform returns a graph with all vertex labels = 1 and edge labels = 0.
func uniform(n int, edges [][2]graph.V) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.V(v), 1)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestEdgeCodeOrder(t *testing.T) {
	fwd12 := EdgeCode{1, 2, 1, 0, 1}
	fwd02 := EdgeCode{0, 2, 1, 0, 1}
	back20 := EdgeCode{2, 0, 1, 0, 1}
	fwd23 := EdgeCode{2, 3, 1, 0, 1}
	// deeper-anchored forward edge is smaller
	if !fwd12.Less(fwd02) {
		t.Fatal("(1,2) should precede (0,2)")
	}
	// among extensions of the same rightmost vertex, backward precedes forward
	if !back20.Less(fwd23) {
		t.Fatal("(2,0) should precede (2,3)")
	}
	// gSpan rule: backward (i1,·) vs forward (·,j2): backward first iff i1 < j2
	if back20.Less(fwd12) {
		t.Fatal("(2,0) must NOT precede (1,2) (i1=2 is not < j2=2)")
	}
	// label tiebreak
	a := EdgeCode{0, 1, 1, 0, 1}
	b := EdgeCode{0, 1, 1, 0, 2}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("label ordering broken")
	}
}

func TestRightmostPath(t *testing.T) {
	tri := DFSCode{{0, 1, 1, 0, 1}, {1, 2, 1, 0, 1}, {2, 0, 1, 0, 1}}
	got := tri.RightmostPath()
	want := []int{2, 1, 0}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("triangle rmpath = %v", got)
	}
	star := DFSCode{{0, 1, 1, 0, 1}, {0, 2, 1, 0, 1}}
	got = star.RightmostPath()
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("star rmpath = %v", got)
	}
}

func TestIsMin(t *testing.T) {
	// canonical triangle code
	tri := DFSCode{{0, 1, 1, 0, 1}, {1, 2, 1, 0, 1}, {2, 0, 1, 0, 1}}
	if !tri.IsMin() {
		t.Fatal("canonical triangle code rejected")
	}
	// non-canonical triangle encoding
	bad := DFSCode{{0, 1, 1, 0, 1}, {0, 2, 1, 0, 1}, {1, 2, 1, 0, 1}}
	if bad.IsMin() {
		t.Fatal("non-canonical triangle code accepted")
	}
	// single edge with la <= lb is min; reversed is not
	if !(DFSCode{{0, 1, 1, 0, 2}}).IsMin() {
		t.Fatal("edge (1,2) labels rejected")
	}
	if (DFSCode{{0, 1, 2, 0, 1}}).IsMin() {
		t.Fatal("edge with larger FromL accepted")
	}
	// wedge: canonical is (0,1)(1,2) not (0,1)(0,2)
	if !(DFSCode{{0, 1, 1, 0, 1}, {1, 2, 1, 0, 1}}).IsMin() {
		t.Fatal("canonical wedge rejected")
	}
	if (DFSCode{{0, 1, 1, 0, 1}, {0, 2, 1, 0, 1}}).IsMin() {
		t.Fatal("star-coded wedge accepted (path code is smaller)")
	}
}

func TestCodeGraphRoundTrip(t *testing.T) {
	tri := DFSCode{{0, 1, 5, 7, 6}, {1, 2, 6, 8, 9}, {2, 0, 9, 7, 5}}
	g := tri.Graph()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Label(0) != 5 || g.Label(1) != 6 || g.Label(2) != 9 {
		t.Fatal("labels lost")
	}
	if g.EdgeLabel(1, 2) != 8 {
		t.Fatal("edge label lost")
	}
}

func TestMineTransactionsTriangle(t *testing.T) {
	db := &graph.TransactionDB{}
	db.Add(uniform(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}}), 0)
	pats := MineTransactions(db, MineConfig{MinSupport: 1})
	// expected connected subgraph patterns: edge, wedge, triangle
	if len(pats) != 3 {
		for _, p := range pats {
			t.Logf("pattern %v support %d", p.Code, p.Support)
		}
		t.Fatalf("triangle db mined %d patterns, want 3", len(pats))
	}
	for _, p := range pats {
		if p.Support != 1 {
			t.Fatalf("support %d", p.Support)
		}
	}
}

func TestMineTransactionsSupportCounting(t *testing.T) {
	db := &graph.TransactionDB{}
	// two triangles, one wedge-only transaction
	db.Add(uniform(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}}), 0)
	db.Add(uniform(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}}), 0)
	db.Add(uniform(3, [][2]graph.V{{0, 1}, {1, 2}}), 0)
	pats := MineTransactions(db, MineConfig{MinSupport: 2})
	byEdges := map[int]int{}
	for _, p := range pats {
		byEdges[len(p.Code)] = p.Support
	}
	if byEdges[1] != 3 { // single edge in all 3
		t.Fatalf("edge support = %d", byEdges[1])
	}
	if byEdges[2] != 3 { // wedge in all 3
		t.Fatalf("wedge support = %d", byEdges[2])
	}
	if byEdges[3] != 2 { // triangle in 2
		t.Fatalf("triangle support = %d", byEdges[3])
	}
	// with minSup=3 the triangle disappears
	pats = MineTransactions(db, MineConfig{MinSupport: 3})
	for _, p := range pats {
		if len(p.Code) == 3 {
			t.Fatal("triangle should be infrequent at minSup=3")
		}
	}
}

// bruteFrequent enumerates every connected edge-subset pattern of every
// transaction, canonicalises with mining.CanonicalCode (vertex labels +
// topology; edge labels must be uniform), and counts transaction support.
func bruteFrequent(db *graph.TransactionDB, minSup, maxEdges int) map[string]int {
	perTxn := make([]map[string]bool, db.Len())
	for gid, g := range db.Graphs {
		perTxn[gid] = map[string]bool{}
		var edges [][2]graph.V
		g.EdgesOnce(func(u, v graph.V) { edges = append(edges, [2]graph.V{u, v}) })
		for mask := 1; mask < 1<<len(edges); mask++ {
			var sel [][2]graph.V
			for i := range edges {
				if mask&(1<<i) != 0 {
					sel = append(sel, edges[i])
				}
			}
			if len(sel) > maxEdges {
				continue
			}
			// build the pattern graph over the touched vertices
			ids := map[graph.V]graph.V{}
			for _, e := range sel {
				for _, v := range []graph.V{e[0], e[1]} {
					if _, ok := ids[v]; !ok {
						ids[v] = graph.V(len(ids))
					}
				}
			}
			b := graph.NewBuilder(len(ids), false)
			for old, nw := range ids {
				b.SetLabel(nw, g.Label(old))
			}
			for _, e := range sel {
				b.AddEdge(ids[e[0]], ids[e[1]])
			}
			pg := b.Build()
			// connected?
			_, comps := graph.ConnectedComponents(pg)
			if comps != 1 {
				continue
			}
			vs := make([]graph.V, pg.NumVertices())
			for i := range vs {
				vs[i] = graph.V(i)
			}
			perTxn[gid][mining.CanonicalCode(pg, vs)] = true
		}
	}
	counts := map[string]int{}
	for _, m := range perTxn {
		for code := range m {
			counts[code]++
		}
	}
	for code, c := range counts {
		if c < minSup {
			delete(counts, code)
		}
	}
	return counts
}

func TestMineTransactionsMatchesBruteForce(t *testing.T) {
	db := gen.MoleculeDB(8, 4, 2, 0.8, 17)
	// strip edge labels for the brute-force comparison
	clean := &graph.TransactionDB{}
	for i, g := range db.Graphs {
		b := graph.NewBuilder(g.NumVertices(), false)
		for v := graph.V(0); int(v) < g.NumVertices(); v++ {
			b.SetLabel(v, g.Label(v))
		}
		g.EdgesOnce(func(u, v graph.V) { b.AddEdge(u, v) })
		clean.Add(b.Build(), db.Class[i])
	}
	const maxEdges = 3
	for _, minSup := range []int{3, 5} {
		want := bruteFrequent(clean, minSup, maxEdges)
		pats := MineTransactions(clean, MineConfig{MinSupport: minSup, MaxEdges: maxEdges})
		got := map[string]int{}
		for _, p := range pats {
			pg := p.Graph()
			vs := make([]graph.V, pg.NumVertices())
			for i := range vs {
				vs[i] = graph.V(i)
			}
			code := mining.CanonicalCode(pg, vs)
			if prev, dup := got[code]; dup {
				t.Fatalf("duplicate pattern mined: %v (support %d and %d)", p.Code, prev, p.Support)
			}
			got[code] = p.Support
		}
		if len(got) != len(want) {
			t.Fatalf("minSup=%d: mined %d patterns, brute force %d", minSup, len(got), len(want))
		}
		for code, sup := range want {
			if got[code] != sup {
				t.Fatalf("minSup=%d: support mismatch: got %d want %d", minSup, got[code], sup)
			}
		}
	}
}

func TestMNI(t *testing.T) {
	// two embeddings sharing vertex images on index 0
	projs := []*embedding{
		{vertices: []graph.V{0, 1}},
		{vertices: []graph.V{0, 2}},
	}
	if MNI(2, projs) != 1 {
		t.Fatalf("MNI = %d want 1 (vertex 0 pinned)", MNI(2, projs))
	}
	projs = append(projs, &embedding{vertices: []graph.V{3, 4}})
	if MNI(2, projs) != 2 {
		t.Fatalf("MNI = %d want 2", MNI(2, projs))
	}
	if MNI(2, nil) != 0 {
		t.Fatal("empty MNI")
	}
}

func TestMineSingleGraphDisjointTriangles(t *testing.T) {
	// two disjoint uniform triangles: edge/wedge/triangle all have MNI 6
	g := uniform(6, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	pats := MineSingleGraph(g, MineConfig{MinSupport: 6})
	if len(pats) != 3 {
		for _, p := range pats {
			t.Logf("%v sup=%d", p.Code, p.Support)
		}
		t.Fatalf("mined %d patterns, want 3", len(pats))
	}
	for _, p := range pats {
		if p.Support != 6 {
			t.Fatalf("pattern %v MNI=%d want 6", p.Code, p.Support)
		}
	}
	if pats2 := MineSingleGraph(g, MineConfig{MinSupport: 7}); len(pats2) != 0 {
		t.Fatalf("minSup=7 should yield nothing, got %d", len(pats2))
	}
}

func TestMineSingleGraphLabeled(t *testing.T) {
	// path A-B-A-B-A: edge (A,B) has MNI min(|{A images}|, |{B images}|)
	b := graph.NewBuilder(5, false)
	labels := []int32{1, 2, 1, 2, 1}
	for v, l := range labels {
		b.SetLabel(graph.V(v), l)
	}
	for v := 0; v < 4; v++ {
		b.AddEdge(graph.V(v), graph.V(v+1))
	}
	g := b.Build()
	pats := MineSingleGraph(g, MineConfig{MinSupport: 2, MaxEdges: 1})
	if len(pats) != 1 {
		t.Fatalf("mined %d 1-edge patterns", len(pats))
	}
	if pats[0].Support != 2 { // 3 A-images, 2 B-images → MNI 2
		t.Fatalf("A-B support = %d want 2", pats[0].Support)
	}
}

func TestMineSingleGraphSerialMatchesParallel(t *testing.T) {
	g := gen.WithRandomLabels(gen.ErdosRenyi(40, 80, 3), 2, 5)
	// relabel edges to 0 by rebuilding (WithRandomLabels keeps edges unlabeled)
	a := MineSingleGraph(g, MineConfig{MinSupport: 8, MaxEdges: 3, Workers: 8})
	b := MineSingleGraphSerial(g, MineConfig{MinSupport: 8, MaxEdges: 3})
	if len(a) != len(b) {
		t.Fatalf("parallel %d vs serial %d patterns", len(a), len(b))
	}
	for i := range a {
		if a[i].Code.String() != b[i].Code.String() || a[i].Support != b[i].Support {
			t.Fatalf("pattern %d differs", i)
		}
	}
}

func TestMaxEdgesLimit(t *testing.T) {
	db := &graph.TransactionDB{}
	db.Add(uniform(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}}), 0)
	pats := MineTransactions(db, MineConfig{MinSupport: 1, MaxEdges: 2})
	for _, p := range pats {
		if len(p.Code) > 2 {
			t.Fatalf("pattern with %d edges escaped MaxEdges=2", len(p.Code))
		}
	}
}

func TestClosedPatterns(t *testing.T) {
	// db of identical triangles: edge ⊂ wedge ⊂ triangle all with support 3,
	// so only the triangle is closed
	db := &graph.TransactionDB{}
	for i := 0; i < 3; i++ {
		db.Add(uniform(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}}), 0)
	}
	pats := MineTransactions(db, MineConfig{MinSupport: 3})
	if len(pats) != 3 {
		t.Fatalf("mined %d patterns", len(pats))
	}
	closed := ClosedPatterns(pats)
	if len(closed) != 1 || len(closed[0].Code) != 3 {
		t.Fatalf("closed = %d patterns (want just the triangle)", len(closed))
	}
	// maximal coincides here
	maximal := MaximalPatterns(pats)
	if len(maximal) != 1 || len(maximal[0].Code) != 3 {
		t.Fatalf("maximal = %d patterns", len(maximal))
	}
}

func TestClosedKeepsDifferentSupportLevels(t *testing.T) {
	// two triangle transactions + one extra edge-only transaction:
	// edge support 3, wedge/triangle support 2 → closed = {edge, triangle}
	db := &graph.TransactionDB{}
	db.Add(uniform(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}}), 0)
	db.Add(uniform(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}}), 0)
	db.Add(uniform(2, [][2]graph.V{{0, 1}}), 0)
	pats := MineTransactions(db, MineConfig{MinSupport: 2})
	closed := ClosedPatterns(pats)
	if len(closed) != 2 {
		for _, p := range closed {
			t.Logf("closed: %v sup=%d", p.Code, p.Support)
		}
		t.Fatalf("closed = %d patterns, want 2 (edge@3, triangle@2)", len(closed))
	}
	// maximal keeps only the triangle (edge has a frequent super-pattern)
	maximal := MaximalPatterns(pats)
	if len(maximal) != 1 || len(maximal[0].Code) != 3 {
		t.Fatalf("maximal = %d patterns", len(maximal))
	}
}

func TestClosedOnLabeledPatterns(t *testing.T) {
	db := gen.MoleculeDB(30, 6, 3, 0.9, 77)
	pats := MineTransactions(db, MineConfig{MinSupport: 8, MaxEdges: 3})
	closed := ClosedPatterns(pats)
	if len(closed) == 0 || len(closed) > len(pats) {
		t.Fatalf("closed %d of %d", len(closed), len(pats))
	}
	// every closed pattern is in the original set
	codes := map[string]bool{}
	for _, p := range pats {
		codes[p.Code.String()] = true
	}
	for _, p := range closed {
		if !codes[p.Code.String()] {
			t.Fatal("closed pattern not from the mined set")
		}
	}
}
