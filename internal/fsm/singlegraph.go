package fsm

import (
	"sort"
	"sync"

	"graphsys/internal/graph"
)

// MNI computes the minimum-non-identical-image support of a pattern given
// all its embeddings: for each pattern vertex, count the distinct data
// vertices it maps to across embeddings; MNI is the minimum of those counts.
// MNI is anti-monotone (GraMi, PVLDB'14), which makes single-graph FSM
// prunable.
func MNI(numVertices int, projs []*embedding) int {
	if len(projs) == 0 {
		return 0
	}
	images := make([]map[graph.V]bool, numVertices)
	for i := range images {
		images[i] = map[graph.V]bool{}
	}
	for _, e := range projs {
		for i, v := range e.vertices {
			images[i][v] = true
		}
	}
	min := len(projs) + 1<<30
	for _, img := range images {
		if len(img) < min {
			min = len(img)
		}
	}
	return min
}

// MineSingleGraph mines frequent patterns of a single big labeled graph with
// MNI support ≥ cfg.MinSupport, in the style of GraMi/T-FSM: patterns grow by
// canonical DFS-code extension exactly as in transactional gSpan, but support
// of each candidate is an independent evaluation task — T-FSM decomposes
// support evaluation into subgraph-matching tasks executed in parallel, which
// is what the per-extension worker pool below does.
func MineSingleGraph(g *graph.Graph, cfg MineConfig) []Pattern {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 1
	}
	db := &graph.TransactionDB{Graphs: []*graph.Graph{g}}
	roots := map[EdgeCode][]*embedding{}
	for u := graph.V(0); int(u) < g.NumVertices(); u++ {
		for i, v := range g.Neighbors(u) {
			t := EdgeCode{0, 1, g.Label(u), g.EdgeLabelAt(u, i), g.Label(v)}
			if t.FromL > t.ToL {
				continue
			}
			roots[t] = append(roots[t], &embedding{
				gid:      0,
				vertices: []graph.V{u, v},
				edges:    map[int64]bool{ekey(u, v): true},
			})
		}
	}
	type task struct {
		code  DFSCode
		projs []*embedding
	}
	var frontier []task
	var out []Pattern
	for t, projs := range roots {
		if MNI(2, projs) >= cfg.MinSupport {
			frontier = append(frontier, task{DFSCode{t}, projs})
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].code[0].Less(frontier[j].code[0]) })

	// level-wise growth with parallel support evaluation per extension
	for len(frontier) > 0 {
		for _, t := range frontier {
			out = append(out, Pattern{Code: t.code, Support: MNI(t.code.NumVertices(), t.projs)})
		}
		var candidates []task
		var mu sync.Mutex
		sem := make(chan struct{}, cfg.Workers)
		var wg sync.WaitGroup
		for _, t := range frontier {
			if cfg.MaxEdges > 0 && len(t.code) >= cfg.MaxEdges {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			//lint:allow nakedgo semaphore-bounded expansion pool, joined via WaitGroup; per-task results are merged under one mutex
			go func(t task) {
				defer wg.Done()
				defer func() { <-sem }()
				ext := gatherExtensions(db, t.code, t.projs)
				var local []task
				for tuple, projs := range ext {
					child := append(append(DFSCode(nil), t.code...), tuple)
					if MNI(child.NumVertices(), projs) < cfg.MinSupport {
						continue
					}
					if !child.IsMin() {
						continue
					}
					local = append(local, task{child, projs})
				}
				mu.Lock()
				candidates = append(candidates, local...)
				mu.Unlock()
			}(t)
		}
		wg.Wait()
		sort.Slice(candidates, func(i, j int) bool {
			return candidates[i].code.String() < candidates[j].code.String()
		})
		frontier = candidates
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code.String() < out[j].Code.String() })
	return out
}

// MineSingleGraphSerial is the single-threaded baseline (ScaleMine's master
// estimation phase / GraMi without task parallelism) used by the Table-1 FSM
// benchmark to show the task-parallel speedup.
func MineSingleGraphSerial(g *graph.Graph, cfg MineConfig) []Pattern {
	cfg.Workers = 1
	return MineSingleGraph(g, cfg)
}
