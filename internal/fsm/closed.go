package fsm

import (
	"graphsys/internal/graph"
	"graphsys/internal/match"
)

// ClosedPatterns filters a mined pattern set down to the CLOSED patterns —
// those with no super-pattern of equal support (PrefixFPM's VLDBJ extension
// mines "frequent and closed patterns"; closedness removes the exponential
// redundancy of reporting every sub-pattern of a frequent structure).
//
// A pattern p is pruned iff some other mined pattern q has support(q) ==
// support(p), strictly more edges, and contains p as a (label-preserving)
// subgraph.
func ClosedPatterns(patterns []Pattern) []Pattern {
	graphs := make([]*graph.Graph, len(patterns))
	for i, p := range patterns {
		graphs[i] = p.Graph()
	}
	var out []Pattern
	for i, p := range patterns {
		closed := true
		for j, q := range patterns {
			if i == j || q.Support != p.Support {
				continue
			}
			if len(q.Code) <= len(p.Code) {
				continue
			}
			if containsPattern(graphs[j], graphs[i]) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	return out
}

// MaximalPatterns filters to the maximal patterns — those with no frequent
// super-pattern at all (regardless of support), the most compact summary.
func MaximalPatterns(patterns []Pattern) []Pattern {
	graphs := make([]*graph.Graph, len(patterns))
	for i, p := range patterns {
		graphs[i] = p.Graph()
	}
	var out []Pattern
	for i, p := range patterns {
		maximal := true
		for j, q := range patterns {
			if i == j || len(q.Code) <= len(p.Code) {
				continue
			}
			if containsPattern(graphs[j], graphs[i]) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	return out
}

// containsPattern reports whether small occurs in big as a label-preserving
// (non-induced) subgraph.
func containsPattern(big, small *graph.Graph) bool {
	found := false
	match.Enumerate(big, match.OptimizedPlan(small), 1, func(m []graph.V) bool {
		found = true
		return false
	}, nil)
	return found
}
