package match

import (
	"sort"
	"sync"

	"graphsys/internal/graph"
)

// Stats meters the work a plan execution performs; TreeNodes is the
// search-tree size that matching-order optimisation (GraphPi/AutoMine)
// minimises.
type Stats struct {
	TreeNodes  int64 // backtracking nodes expanded
	Candidates int64 // candidate vertices scanned
	Matches    int64 // complete matches found
}

// Count returns the number of matches of plan's pattern in g. With an
// OptimizedPlan each subgraph instance is counted once; with Naive/Greedy
// plans each instance is counted once per automorphism.
func Count(g *graph.Graph, plan *Plan, workers int) (int64, Stats) {
	var stats Stats
	Enumerate(g, plan, workers, func(m []graph.V) bool { return true }, &stats)
	return stats.Matches, stats
}

// Enumerate finds all matches of plan's pattern in g, invoking fn with the
// mapping (indexed by pattern vertex id, not order position). fn must not
// retain the slice; return false to stop early (best-effort across workers).
// Root candidates are split across workers.
func Enumerate(g *graph.Graph, plan *Plan, workers int, fn func(mapping []graph.V) bool, stats *Stats) {
	if workers <= 0 {
		workers = 4
	}
	k := plan.Pattern.NumVertices()
	if k == 0 {
		return
	}
	if stats == nil {
		stats = &Stats{}
	}
	n := g.NumVertices()
	first := plan.Order[0]
	var wg sync.WaitGroup
	var mu sync.Mutex // serialises fn and stats merging
	stop := false
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//lint:allow nakedgo bounded root-range pool, joined via WaitGroup; per-range match counts are summed after the join
		go func(lo, hi int) {
			defer wg.Done()
			e := &executor{
				g: g, plan: plan,
				mapping: make([]graph.V, k),
				usedPos: make([]graph.V, 0, k),
			}
			for v := lo; v < hi; v++ {
				mu.Lock()
				st := stop
				mu.Unlock()
				if st {
					return
				}
				dv := graph.V(v)
				e.stats.Candidates++
				if !e.feasible(first, dv, 0) {
					continue
				}
				e.mapping[first] = dv
				e.usedPos = append(e.usedPos, dv)
				e.extend(1, func(m []graph.V) bool {
					mu.Lock()
					defer mu.Unlock()
					if stop {
						return false
					}
					if !fn(m) {
						stop = true
						return false
					}
					return true
				})
				e.usedPos = e.usedPos[:0]
			}
			mu.Lock()
			stats.TreeNodes += e.stats.TreeNodes
			stats.Candidates += e.stats.Candidates
			stats.Matches += e.stats.Matches
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
}

type executor struct {
	g       *graph.Graph
	plan    *Plan
	mapping []graph.V // pattern vertex -> data vertex
	usedPos []graph.V // data vertices used so far (small linear-scan set)
	stats   Stats
}

// feasible checks label, degree, distinctness and symmetry restrictions for
// binding pattern vertex pv (at order position posIdx) to data vertex dv.
func (e *executor) feasible(pv, dv graph.V, posIdx int) bool {
	p := e.plan.Pattern
	if p.HasLabels() && p.Label(pv) != e.g.Label(dv) {
		return false
	}
	if e.g.Degree(dv) < p.Degree(pv) {
		return false
	}
	for _, u := range e.usedPos {
		if u == dv {
			return false
		}
	}
	for _, earlier := range e.plan.Restrict[posIdx] {
		if e.mapping[e.plan.Order[earlier]] >= dv {
			return false
		}
	}
	if p.HasEdgeLabels() {
		// edge labels of pattern edges into the already-mapped prefix must
		// match the corresponding data edges
		for _, w := range p.Neighbors(pv) {
			for j := 0; j < posIdx; j++ {
				if e.plan.Order[j] == w {
					if p.EdgeLabel(pv, w) != e.g.EdgeLabel(dv, e.mapping[w]) {
						return false
					}
				}
			}
		}
	}
	if e.plan.Induced {
		// pattern non-edges into the prefix must be non-edges in the data
		for j := 0; j < posIdx; j++ {
			w := e.plan.Order[j]
			if !p.HasEdge(pv, w) && e.g.HasEdge(dv, e.mapping[w]) {
				return false
			}
		}
	}
	return true
}

// extend binds order position i and recurses. emit returns false to stop.
func (e *executor) extend(i int, emit func([]graph.V) bool) bool {
	e.stats.TreeNodes++
	plan := e.plan
	if i == len(plan.Order) {
		e.stats.Matches++
		return emit(e.mapping)
	}
	pv := plan.Order[i]
	// candidates: intersect data-adjacency of already-mapped pattern
	// neighbors of pv; if the prefix is disconnected at pv, fall back to a
	// full vertex scan (this is what makes naive orders catastrophically
	// slow — the effect the ordering benchmark shows).
	var anchors []graph.V
	for _, w := range plan.Pattern.Neighbors(pv) {
		for j := 0; j < i; j++ {
			if plan.Order[j] == w {
				anchors = append(anchors, e.mapping[w])
			}
		}
	}
	if len(anchors) == 0 {
		for v := 0; v < e.g.NumVertices(); v++ {
			dv := graph.V(v)
			e.stats.Candidates++
			if !e.feasible(pv, dv, i) {
				continue
			}
			if !e.bindAndRecurse(pv, dv, i, emit) {
				return false
			}
		}
		return true
	}
	// order anchors by adjacency size, intersect smallest-first
	sort.Slice(anchors, func(a, b int) bool {
		return e.g.Degree(anchors[a]) < e.g.Degree(anchors[b])
	})
	cands := e.g.Neighbors(anchors[0])
	for _, a := range anchors[1:] {
		// fresh buffer per step: cands is iterated below across recursive
		// calls, so it must not alias a reused scratch buffer
		cands = graph.Intersect(cands, e.g.Neighbors(a), make([]graph.V, 0, len(cands)))
	}
	for _, dv := range cands {
		e.stats.Candidates++
		if !e.feasible(pv, dv, i) {
			continue
		}
		if !e.bindAndRecurse(pv, dv, i, emit) {
			return false
		}
	}
	return true
}

func (e *executor) bindAndRecurse(pv, dv graph.V, i int, emit func([]graph.V) bool) bool {
	e.mapping[pv] = dv
	e.usedPos = append(e.usedPos, dv)
	ok := e.extend(i+1, emit)
	e.usedPos = e.usedPos[:len(e.usedPos)-1]
	return ok
}
