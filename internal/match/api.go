package match

import "graphsys/internal/graph"

// CandidatesForPrefix returns the feasible data-vertex candidates for order
// position len(prefix), where prefix[j] is the data vertex bound to plan
// position j. Candidates are appended to dst (which may be nil). This is the
// plan-execution primitive shared with the simulated-GPU matchers in
// internal/gpusim.
func (plan *Plan) CandidatesForPrefix(g *graph.Graph, prefix []graph.V, dst []graph.V) []graph.V {
	i := len(prefix)
	pv := plan.Order[i]
	var anchors []graph.V
	for _, w := range plan.Pattern.Neighbors(pv) {
		for j := 0; j < i; j++ {
			if plan.Order[j] == w {
				anchors = append(anchors, prefix[j])
			}
		}
	}
	feasible := func(dv graph.V) bool {
		p := plan.Pattern
		if p.HasLabels() && p.Label(pv) != g.Label(dv) {
			return false
		}
		if g.Degree(dv) < p.Degree(pv) {
			return false
		}
		for _, u := range prefix {
			if u == dv {
				return false
			}
		}
		for _, earlier := range plan.Restrict[i] {
			if prefix[earlier] >= dv {
				return false
			}
		}
		if p.HasEdgeLabels() {
			for _, w := range p.Neighbors(pv) {
				for j := 0; j < i; j++ {
					if plan.Order[j] == w {
						if p.EdgeLabel(pv, w) != g.EdgeLabel(dv, prefix[j]) {
							return false
						}
					}
				}
			}
		}
		if plan.Induced {
			for j := 0; j < i; j++ {
				w := plan.Order[j]
				if !p.HasEdge(pv, w) && g.HasEdge(dv, prefix[j]) {
					return false
				}
			}
		}
		return true
	}
	if len(anchors) == 0 {
		for v := 0; v < g.NumVertices(); v++ {
			if feasible(graph.V(v)) {
				dst = append(dst, graph.V(v))
			}
		}
		return dst
	}
	cands := g.Neighbors(anchors[0])
	for _, a := range anchors[1:] {
		cands = graph.Intersect(cands, g.Neighbors(a), make([]graph.V, 0, len(cands)))
	}
	for _, dv := range cands {
		if feasible(dv) {
			dst = append(dst, dv)
		}
	}
	return dst
}
