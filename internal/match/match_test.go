package match

import (
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func pattern(n int, edges [][2]graph.V) *graph.Graph {
	return graph.FromEdges(n, edges)
}

var (
	triangle = pattern(3, [][2]graph.V{{0, 1}, {1, 2}, {0, 2}})
	wedge    = pattern(3, [][2]graph.V{{0, 1}, {1, 2}})
	cycle4   = pattern(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	k4       = pattern(4, [][2]graph.V{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
)

func TestAutomorphismCounts(t *testing.T) {
	cases := []struct {
		p    *graph.Graph
		want int
	}{
		{triangle, 6},
		{wedge, 2},
		{cycle4, 8},
		{k4, 24},
	}
	for i, c := range cases {
		if got := len(Automorphisms(c.p)); got != c.want {
			t.Errorf("case %d: |Aut|=%d want %d", i, got, c.want)
		}
	}
}

func TestAutomorphismsRespectLabels(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.SetLabel(0, 1) // distinct label breaks the path symmetry
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	p := b.Build()
	if got := len(Automorphisms(p)); got != 1 {
		t.Fatalf("labeled path |Aut|=%d want 1", got)
	}
}

func TestTriangleCountMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(60, 400, seed)
		want := graph.TriangleCount(g)
		got, _ := Count(g, OptimizedPlan(triangle), 4)
		if got != want {
			t.Fatalf("seed %d: match=%d serial=%d", seed, got, want)
		}
	}
}

func TestSymmetryBreakingFactor(t *testing.T) {
	g := gen.ErdosRenyi(40, 250, 1)
	for _, p := range []*graph.Graph{triangle, wedge, cycle4, k4} {
		opt := OptimizedPlan(p)
		optCount, _ := Count(g, opt, 4)
		greedyCount, _ := Count(g, GreedyPlan(p), 4)
		naiveCount, _ := Count(g, NaivePlan(p), 4)
		if greedyCount != naiveCount {
			t.Fatalf("greedy %d != naive %d", greedyCount, naiveCount)
		}
		if optCount*int64(opt.NumAut) != greedyCount {
			t.Fatalf("opt %d × |Aut| %d != unrestricted %d", optCount, opt.NumAut, greedyCount)
		}
	}
}

func TestKnownCounts(t *testing.T) {
	k6 := gen.Clique(6)
	if got, _ := Count(k6, OptimizedPlan(k4), 2); got != 15 {
		t.Fatalf("K4 in K6 = %d want C(6,4)=15", got)
	}
	if got, _ := Count(gen.Clique(4), OptimizedPlan(wedge), 2); got != 12 {
		t.Fatalf("wedges in K4 = %d want 12", got)
	}
	if got, _ := Count(gen.Grid(3, 3), OptimizedPlan(cycle4), 2); got != 4 {
		t.Fatalf("C4 in 3x3 grid = %d want 4", got)
	}
	if got, _ := Count(gen.Grid(3, 3), OptimizedPlan(triangle), 2); got != 0 {
		t.Fatalf("triangles in grid = %d", got)
	}
}

func TestLabeledMatching(t *testing.T) {
	// data: labeled triangle 0(A)-1(B)-2(A)
	b := graph.NewBuilder(3, false)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.SetLabel(2, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	// pattern: edge A-B
	pb := graph.NewBuilder(2, false)
	pb.SetLabel(0, 1)
	pb.SetLabel(1, 2)
	pb.AddEdge(0, 1)
	p := pb.Build()
	got, _ := Count(g, OptimizedPlan(p), 1)
	if got != 2 { // edges (0,1) and (2,1)
		t.Fatalf("labeled edge matches = %d want 2", got)
	}
	// pattern A-A matches edge (0,2) only
	pb2 := graph.NewBuilder(2, false)
	pb2.SetLabel(0, 1)
	pb2.SetLabel(1, 1)
	pb2.AddEdge(0, 1)
	got2, _ := Count(g, OptimizedPlan(pb2.Build()), 1)
	if got2 != 1 {
		t.Fatalf("A-A matches = %d want 1", got2)
	}
}

func TestEnumerateMappingsAreValid(t *testing.T) {
	g := gen.ErdosRenyi(30, 150, 2)
	plan := OptimizedPlan(triangle)
	Enumerate(g, plan, 2, func(m []graph.V) bool {
		if !g.HasEdge(m[0], m[1]) || !g.HasEdge(m[1], m[2]) || !g.HasEdge(m[0], m[2]) {
			t.Errorf("invalid triangle mapping %v", m)
			return false
		}
		return true
	}, nil)
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := gen.Clique(20)
	calls := 0
	Enumerate(g, OptimizedPlan(triangle), 1, func(m []graph.V) bool {
		calls++
		return calls < 5
	}, nil)
	if calls != 5 {
		t.Fatalf("early stop after %d calls", calls)
	}
}

func TestOrderingReducesTreeNodes(t *testing.T) {
	// pattern whose naive (id) order starts with a disconnected prefix:
	// vertices 0,1 not adjacent → naive order scans all data vertices at
	// level 1.
	p := pattern(4, [][2]graph.V{{0, 2}, {1, 2}, {2, 3}, {0, 3}, {1, 3}})
	g := gen.BarabasiAlbert(400, 4, 5)
	naive := NaivePlan(p)
	greedy := GreedyPlan(p)
	nNaive, sNaive := Count(g, naive, 4)
	nGreedy, sGreedy := Count(g, greedy, 4)
	if nNaive != nGreedy {
		t.Fatalf("counts differ: %d vs %d", nNaive, nGreedy)
	}
	if sGreedy.Candidates >= sNaive.Candidates {
		t.Fatalf("greedy order should scan fewer candidates: %d vs %d",
			sGreedy.Candidates, sNaive.Candidates)
	}
}

func TestGreedyPlanOrderIsConnected(t *testing.T) {
	p := pattern(5, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	plan := GreedyPlan(p)
	seen := map[graph.V]bool{plan.Order[0]: true}
	for _, v := range plan.Order[1:] {
		connected := false
		for _, w := range p.Neighbors(v) {
			if seen[w] {
				connected = true
			}
		}
		if !connected {
			t.Fatalf("order %v has disconnected prefix at %d", plan.Order, v)
		}
		seen[v] = true
	}
}

func TestEmptyPattern(t *testing.T) {
	p := graph.NewBuilder(0, false).Build()
	got, _ := Count(gen.Clique(4), NaivePlan(p), 2)
	if got != 0 {
		t.Fatalf("empty pattern matched %d", got)
	}
}

func TestSingleVertexPattern(t *testing.T) {
	p := graph.NewBuilder(1, false).Build()
	got, _ := Count(gen.Clique(5), OptimizedPlan(p), 2)
	if got != 5 {
		t.Fatalf("single-vertex pattern = %d want 5", got)
	}
}

func TestInducedMatching(t *testing.T) {
	k4g := gen.Clique(4)
	// induced wedge in K4: none (every vertex pair is adjacent)
	planW := OptimizedPlan(wedge)
	planW.Induced = true
	if got, _ := Count(k4g, planW, 2); got != 0 {
		t.Fatalf("induced wedges in K4 = %d", got)
	}
	// non-induced: 12
	if got, _ := Count(k4g, OptimizedPlan(wedge), 2); got != 12 {
		t.Fatal("non-induced count changed")
	}
	// star S3: 3 induced wedges through the center
	star := pattern(4, [][2]graph.V{{0, 1}, {0, 2}, {0, 3}})
	if got, _ := Count(star, planW, 2); got != 3 {
		t.Fatalf("induced wedges in S3 = %d", got)
	}
	// triangles are induced iff present: counts agree
	g := gen.ErdosRenyi(50, 300, 9)
	planT := OptimizedPlan(triangle)
	planTI := OptimizedPlan(triangle)
	planTI.Induced = true
	a, _ := Count(g, planT, 2)
	b, _ := Count(g, planTI, 2)
	if a != b {
		t.Fatalf("triangle induced %d vs plain %d", b, a)
	}
	// induced C4 in a diamond (C4 + chord): 0; plain: 1
	diamond := pattern(4, [][2]graph.V{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	planC := OptimizedPlan(cycle4)
	planCI := OptimizedPlan(cycle4)
	planCI.Induced = true
	if got, _ := Count(diamond, planC, 1); got != 1 {
		t.Fatalf("plain C4 in diamond = %d", got)
	}
	if got, _ := Count(diamond, planCI, 1); got != 0 {
		t.Fatalf("induced C4 in diamond = %d", got)
	}
}
