// Package match implements subgraph enumeration/matching with the
// compilation-based optimisations of AutoMine, GraphPi and GraphZero: a query
// pattern is compiled into a matching plan — a vertex matching order chosen
// by a cost heuristic plus symmetry-breaking restrictions derived from the
// pattern's automorphism group — and the plan is executed by backtracking
// over the data graph with candidate filtering. Matching is non-induced
// subgraph isomorphism (pattern edges must exist; extra data edges are
// allowed), the semantics those systems use.
package match

import (
	"fmt"

	"graphsys/internal/graph"
)

// Plan is a compiled matching plan for a pattern.
type Plan struct {
	Pattern *graph.Graph
	// Order is the sequence in which pattern vertices are matched.
	Order []graph.V
	// Restrict[j] lists earlier positions i whose mapped data vertex must be
	// LESS than position j's mapped data vertex (Grochow–Kellis
	// symmetry-breaking conditions, so each instance is found exactly once).
	Restrict [][]int
	// NumAut is the size of the pattern's automorphism group; counting with
	// restrictions and multiplying by NumAut recovers the embedding count.
	NumAut int
	// Induced switches to induced subgraph isomorphism: pattern NON-edges
	// must also be absent between the mapped data vertices.
	Induced bool
}

// Automorphisms returns all label- and adjacency-preserving permutations of
// p's vertices (p must have ≤ 10 vertices).
func Automorphisms(p *graph.Graph) [][]graph.V {
	k := p.NumVertices()
	if k > 10 {
		//lint:allow panicpolicy documented size precondition; pattern sizes are fixed small constants at every call site
		panic("match: automorphism search limited to 10 pattern vertices")
	}
	perm := make([]graph.V, k)
	used := make([]bool, k)
	var out [][]graph.V
	var rec func(i int)
	ok := func(i int) bool {
		// perm[i] just assigned: check label and edges to previous
		if p.Label(graph.V(i)) != p.Label(perm[i]) {
			return false
		}
		if p.Degree(graph.V(i)) != p.Degree(perm[i]) {
			return false
		}
		for j := 0; j < i; j++ {
			if p.HasEdge(graph.V(i), graph.V(j)) != p.HasEdge(perm[i], perm[j]) {
				return false
			}
		}
		return true
	}
	rec = func(i int) {
		if i == k {
			out = append(out, append([]graph.V(nil), perm...))
			return
		}
		for v := 0; v < k; v++ {
			if used[v] {
				continue
			}
			perm[i] = graph.V(v)
			if ok(i) {
				used[v] = true
				rec(i + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return out
}

// NaivePlan matches vertices in id order with no symmetry breaking — the
// uncompiled baseline whose cost BenchmarkTable1_MatchingOrder compares
// against.
func NaivePlan(p *graph.Graph) *Plan {
	order := make([]graph.V, p.NumVertices())
	for i := range order {
		order[i] = graph.V(i)
	}
	return &Plan{Pattern: p, Order: order, Restrict: make([][]int, len(order)), NumAut: 1}
}

// GreedyPlan chooses a connectivity-first, degree-weighted matching order
// (the core of GraphPi/AutoMine's cost-based ordering): start from the
// highest-degree pattern vertex, then repeatedly pick the unmatched vertex
// with the most edges into the prefix (maximising early pruning), breaking
// ties by pattern degree. No symmetry breaking.
func GreedyPlan(p *graph.Graph) *Plan {
	k := p.NumVertices()
	if k == 0 {
		return &Plan{Pattern: p, Restrict: [][]int{}, NumAut: 1}
	}
	order := make([]graph.V, 0, k)
	inOrder := make([]bool, k)
	// seed: max degree
	seed := graph.V(0)
	for v := 1; v < k; v++ {
		if p.Degree(graph.V(v)) > p.Degree(seed) {
			seed = graph.V(v)
		}
	}
	order = append(order, seed)
	inOrder[seed] = true
	for len(order) < k {
		best, bestConn, bestDeg := graph.V(-1), -1, -1
		for v := 0; v < k; v++ {
			if inOrder[v] {
				continue
			}
			conn := 0
			for _, w := range p.Neighbors(graph.V(v)) {
				if inOrder[w] {
					conn++
				}
			}
			deg := p.Degree(graph.V(v))
			if conn > bestConn || (conn == bestConn && deg > bestDeg) {
				best, bestConn, bestDeg = graph.V(v), conn, deg
			}
		}
		order = append(order, best)
		inOrder[best] = true
	}
	return &Plan{Pattern: p, Order: order, Restrict: make([][]int, k), NumAut: 1}
}

// OptimizedPlan is GreedyPlan plus Grochow–Kellis symmetry-breaking
// restrictions computed from the automorphism group, so each subgraph
// instance is enumerated exactly once instead of NumAut times.
func OptimizedPlan(p *graph.Graph) *Plan {
	plan := GreedyPlan(p)
	addSymmetryBreaking(plan)
	return plan
}

// addSymmetryBreaking computes restrictions by the stabilizer-chain scheme:
// walk the matching order; at each vertex v, for every u ≠ v in v's orbit
// under the automorphisms fixing all previously processed vertices, require
// map[v] < map[u]; then shrink the group to the stabilizer of v.
func addSymmetryBreaking(plan *Plan) {
	auts := Automorphisms(plan.Pattern)
	plan.NumAut = len(auts)
	pos := make([]int, plan.Pattern.NumVertices())
	for i, v := range plan.Order {
		pos[v] = i
	}
	plan.Restrict = make([][]int, len(plan.Order))
	for _, v := range plan.Order {
		// orbit of v under the current group
		orbit := map[graph.V]bool{}
		for _, a := range auts {
			orbit[a[v]] = true
		}
		for u := range orbit {
			if u == v {
				continue
			}
			// require map[v] < map[u]; checked when the later position binds
			if pos[v] < pos[u] {
				plan.Restrict[pos[u]] = append(plan.Restrict[pos[u]], pos[v])
			} else {
				// cannot express "earlier must be greater" as a lower bound;
				// flip: map[u] > map[v] with u earlier means at pos[v] we
				// need map[v] < map[u] — an upper bound. The stabilizer-chain
				// scheme walks vertices in matching order, so orbit members
				// are always unprocessed and later; this branch is
				// unreachable but kept as a guard.
				panic(fmt.Sprintf("match: orbit member %d precedes %d in order", u, v))
			}
		}
		// stabilize v
		var keep [][]graph.V
		for _, a := range auts {
			if a[v] == v {
				keep = append(keep, a)
			}
		}
		auts = keep
	}
}
