package graph

import "math"

// StructuralFeatures computes per-vertex classic structural features: degree,
// log-degree, clustering coefficient, core number, and triangle count. These
// are the "classic graph structural features" that Stolman et al. (cited in
// the paper's introduction) found to outperform factorization-based
// embeddings for community labeling; internal/core exposes them as an
// analytics path.
type StructuralFeatures struct {
	Degree     []float64
	LogDegree  []float64
	Clustering []float64
	Core       []float64
	Triangles  []float64
}

// Dim is the number of features per vertex.
const FeatureDim = 5

// ComputeStructuralFeatures computes all structural features for g.
func ComputeStructuralFeatures(g *Graph) *StructuralFeatures {
	n := g.NumVertices()
	f := &StructuralFeatures{
		Degree:     make([]float64, n),
		LogDegree:  make([]float64, n),
		Clustering: make([]float64, n),
		Core:       make([]float64, n),
		Triangles:  make([]float64, n),
	}
	tri := LocalTriangles(g)
	core := CoreNumbers(g)
	for v := 0; v < n; v++ {
		d := g.Degree(V(v))
		f.Degree[v] = float64(d)
		f.LogDegree[v] = math.Log1p(float64(d))
		f.Triangles[v] = float64(tri[v])
		f.Core[v] = float64(core[v])
		if d >= 2 {
			f.Clustering[v] = 2 * float64(tri[v]) / (float64(d) * float64(d-1))
		}
	}
	return f
}

// Row returns the feature vector of vertex v.
func (f *StructuralFeatures) Row(v V) []float64 {
	return []float64{f.Degree[v], f.LogDegree[v], f.Clustering[v], f.Core[v], f.Triangles[v]}
}

// Matrix returns the n×FeatureDim feature matrix in row-major float32 form,
// ready for GNN input.
func (f *StructuralFeatures) Matrix() [][]float32 {
	n := len(f.Degree)
	m := make([][]float32, n)
	for v := 0; v < n; v++ {
		m[v] = []float32{
			float32(f.Degree[v]), float32(f.LogDegree[v]),
			float32(f.Clustering[v]), float32(f.Core[v]), float32(f.Triangles[v]),
		}
	}
	return m
}

// GlobalClusteringCoefficient returns 3×triangles / #wedges (the transitivity
// of the graph), or 0 for graphs with no wedge.
func GlobalClusteringCoefficient(g *Graph) float64 {
	var wedges int64
	for v := V(0); int(v) < g.NumVertices(); v++ {
		d := int64(g.Degree(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}

// DegreeHistogram returns counts of vertices by degree (index = degree).
func DegreeHistogram(g *Graph) []int64 {
	h := make([]int64, g.MaxDegree()+1)
	for v := V(0); int(v) < g.NumVertices(); v++ {
		h[g.Degree(v)]++
	}
	return h
}
