package graph

import "container/heap"

// Weighted-graph helpers: edge labels double as integer edge weights
// (weight 0 is treated as 1, so unlabeled graphs behave as unit-weight).

// Weight returns the weight of the i-th arc of u.
func (g *Graph) Weight(u V, i int) int64 {
	w := int64(g.EdgeLabelAt(u, i))
	if w <= 0 {
		return 1
	}
	return w
}

// Dijkstra computes single-source shortest path distances using edge labels
// as weights (the serial reference for pregel.WeightedSSSP). Unreachable
// vertices get -1.
func Dijkstra(g *Graph, source V) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	pq := &distHeap{{v: source, d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if dist[top.v] != -1 {
			continue
		}
		dist[top.v] = top.d
		for i, u := range g.Neighbors(top.v) {
			if dist[u] == -1 {
				heap.Push(pq, distEntry{v: u, d: top.d + g.Weight(top.v, i)})
			}
		}
	}
	return dist
}

type distEntry struct {
	v V
	d int64
}

type distHeap []distEntry

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
