package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(V(i), V(i+1))
	}
	return b.Build()
}

func completeGraph(n int) *Graph {
	b := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(V(u), V(v))
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, false).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("empty graph max degree = %d", g.MaxDegree())
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self loop, dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("want 1 edge, got %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge must be visible from both endpoints")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self loop must be dropped")
	}
}

func TestDirectedBuilder(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if !g.Directed() {
		t.Fatal("expected directed")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("want 2 arcs, got %d", g.NumEdges())
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed graph must not contain reverse arc")
	}
	rev := g.Reverse()
	if !rev.HasEdge(1, 0) || !rev.HasEdge(2, 1) || rev.HasEdge(0, 1) {
		t.Fatal("reverse graph wrong")
	}
}

func TestNeighborsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(50, false)
	for i := 0; i < 300; i++ {
		b.AddEdge(V(rng.Intn(50)), V(rng.Intn(50)))
	}
	g := b.Build()
	for v := V(0); int(v) < g.NumVertices(); v++ {
		ns := g.Neighbors(v)
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
			t.Fatalf("neighbors of %d not sorted: %v", v, ns)
		}
		for i := 1; i < len(ns); i++ {
			if ns[i] == ns[i-1] {
				t.Fatalf("duplicate neighbor %d of %d", ns[i], v)
			}
		}
	}
}

func TestHasEdgeMatchesNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewBuilder(40, false)
	edges := make(map[[2]V]bool)
	for i := 0; i < 200; i++ {
		u, v := V(rng.Intn(40)), V(rng.Intn(40))
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		if u > v {
			u, v = v, u
		}
		edges[[2]V{u, v}] = true
	}
	g := b.Build()
	for u := V(0); u < 40; u++ {
		for v := V(0); v < 40; v++ {
			a, bb := u, v
			if a > bb {
				a, bb = bb, a
			}
			want := a != bb && edges[[2]V{a, bb}]
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("HasEdge(%d,%d)=%v want %v", u, v, got, want)
			}
		}
	}
}

func TestDegreeSum(t *testing.T) {
	g := completeGraph(10)
	var sum int64
	for v := V(0); v < 10; v++ {
		sum += int64(g.Degree(v))
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("handshake lemma violated: sum=%d 2m=%d", sum, 2*g.NumEdges())
	}
	if g.NumEdges() != 45 {
		t.Fatalf("K10 edges = %d", g.NumEdges())
	}
}

func TestLabels(t *testing.T) {
	b := NewBuilder(3, false)
	b.SetLabel(0, 7)
	b.SetLabel(2, 9)
	b.AddLabeledEdge(0, 1, 5)
	g := b.Build()
	if !g.HasLabels() {
		t.Fatal("labels expected")
	}
	if g.Label(0) != 7 || g.Label(1) != 0 || g.Label(2) != 9 {
		t.Fatalf("labels: %d %d %d", g.Label(0), g.Label(1), g.Label(2))
	}
	if g.EdgeLabel(0, 1) != 5 || g.EdgeLabel(1, 0) != 5 {
		t.Fatal("edge label must be symmetric for undirected edges")
	}
	if g.MaxLabel() != 9 {
		t.Fatalf("max label = %d", g.MaxLabel())
	}
}

func TestEdgeLabelPanicsOnMissingEdge(t *testing.T) {
	g := pathGraph(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on missing edge")
		}
	}()
	g.EdgeLabel(0, 2)
}

func TestCommonNeighbors(t *testing.T) {
	// triangle 0-1-2 plus tail 2-3
	g := FromEdges(4, [][2]V{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if got := g.CommonNeighbors(0, 1); got != 1 {
		t.Fatalf("common(0,1)=%d", got)
	}
	if got := g.CommonNeighbors(0, 3); got != 1 { // via 2
		t.Fatalf("common(0,3)=%d", got)
	}
	inter := g.IntersectNeighbors(0, 1, nil)
	if len(inter) != 1 || inter[0] != 2 {
		t.Fatalf("intersect = %v", inter)
	}
}

func TestIntersectProperty(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		toSet := func(raw []uint8) []V {
			m := map[V]bool{}
			for _, x := range raw {
				m[V(x)] = true
			}
			out := make([]V, 0, len(m))
			for v := range m {
				out = append(out, v)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := toSet(aRaw), toSet(bRaw)
		got := Intersect(a, b, nil)
		want := map[V]bool{}
		for _, x := range a {
			for _, y := range b {
				if x == y {
					want[x] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, x := range got {
			if !want[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := completeGraph(6)
	sub, m := g.InducedSubgraph([]V{1, 3, 5})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced K3: n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	if len(m) != 3 || m[0] != 1 || m[1] != 3 || m[2] != 5 {
		t.Fatalf("mapping = %v", m)
	}
	// duplicates ignored
	sub2, _ := g.InducedSubgraph([]V{1, 1, 3})
	if sub2.NumVertices() != 2 || sub2.NumEdges() != 1 {
		t.Fatalf("induced with dup: n=%d m=%d", sub2.NumVertices(), sub2.NumEdges())
	}
}

func TestInducedSubgraphKeepsLabels(t *testing.T) {
	b := NewBuilder(4, false)
	for v := V(0); v < 4; v++ {
		b.SetLabel(v, int32(v)*10)
	}
	b.AddLabeledEdge(0, 1, 3)
	b.AddLabeledEdge(1, 2, 4)
	g := b.Build()
	sub, m := g.InducedSubgraph([]V{1, 2})
	if sub.Label(0) != 10 || sub.Label(1) != 20 {
		t.Fatalf("labels lost: %d %d (map %v)", sub.Label(0), sub.Label(1), m)
	}
	if sub.EdgeLabel(0, 1) != 4 {
		t.Fatalf("edge label lost: %d", sub.EdgeLabel(0, 1))
	}
}

func TestEdgesOnce(t *testing.T) {
	g := completeGraph(5)
	count := 0
	g.EdgesOnce(func(u, v V) {
		if u >= v {
			t.Fatalf("EdgesOnce order violated: %d %d", u, v)
		}
		count++
	})
	if count != 10 {
		t.Fatalf("K5 EdgesOnce = %d", count)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := NewBuilder(3, false)
	b.SetLabel(0, 1)
	b.AddEdge(0, 1)
	g := b.Build()
	c := g.Clone()
	if c.NumEdges() != g.NumEdges() || c.Label(0) != 1 {
		t.Fatal("clone mismatch")
	}
	c.vlabels[0] = 99
	if g.Label(0) == 99 {
		t.Fatal("clone shares label storage")
	}
}

func TestGrowBuilder(t *testing.T) {
	b := NewBuilder(0, false)
	b.Grow(5)
	b.AddEdge(0, 4)
	g := b.Build()
	if g.NumVertices() != 5 || !g.HasEdge(0, 4) {
		t.Fatal("grow failed")
	}
}
