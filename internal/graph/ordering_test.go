package graph

import (
	"math/rand"
	"testing"
)

func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, false)
	for i := 0; i < m; i++ {
		b.AddEdge(V(rng.Intn(n)), V(rng.Intn(n)))
	}
	return b.Build()
}

// naive O(n^3)-ish triangle count for cross-checking
func naiveTriangles(g *Graph) int64 {
	var c int64
	n := g.NumVertices()
	for u := V(0); int(u) < n; u++ {
		for v := u + 1; int(v) < n; v++ {
			if !g.HasEdge(u, v) {
				continue
			}
			for w := v + 1; int(w) < n; w++ {
				if g.HasEdge(u, w) && g.HasEdge(v, w) {
					c++
				}
			}
		}
	}
	return c
}

func TestTriangleCountSmall(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int64
	}{
		{completeGraph(3), 1},
		{completeGraph(4), 4},
		{completeGraph(5), 10},
		{completeGraph(6), 20},
		{pathGraph(10), 0},
		{NewBuilder(0, false).Build(), 0},
	}
	for i, c := range cases {
		if got := TriangleCount(c.g); got != c.want {
			t.Errorf("case %d: TriangleCount=%d want %d", i, got, c.want)
		}
	}
}

func TestTriangleCountMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(30, 120, seed)
		if got, want := TriangleCount(g), naiveTriangles(g); got != want {
			t.Fatalf("seed %d: fast=%d naive=%d", seed, got, want)
		}
	}
}

func TestLocalTriangles(t *testing.T) {
	g := completeGraph(4)
	tri := LocalTriangles(g)
	for v, c := range tri {
		if c != 3 { // each vertex of K4 is in C(3,2)=3 triangles
			t.Fatalf("vertex %d: %d triangles, want 3", v, c)
		}
	}
	// sum of locals = 3 * total
	var sum int64
	for _, c := range tri {
		sum += c
	}
	if sum != 3*TriangleCount(g) {
		t.Fatalf("local sum %d != 3*total %d", sum, 3*TriangleCount(g))
	}
}

func TestCoreNumbers(t *testing.T) {
	// K4 attached to a path: core numbers 3 for clique, then 1s
	b := NewBuilder(7, false)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(V(u), V(v))
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.Build()
	core := CoreNumbers(g)
	for v := 0; v < 4; v++ {
		if core[v] != 3 {
			t.Fatalf("clique vertex %d core = %d, want 3", v, core[v])
		}
	}
	for v := 4; v < 7; v++ {
		if core[v] != 1 {
			t.Fatalf("path vertex %d core = %d, want 1", v, core[v])
		}
	}
}

func TestCoreNumbersInvariant(t *testing.T) {
	// invariant: in the subgraph induced by {v : core[v] >= k}, every vertex
	// has degree >= k, for k = max core.
	g := randomGraph(60, 400, 7)
	core := CoreNumbers(g)
	var kmax int32
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}
	var keep []V
	inSet := make([]bool, g.NumVertices())
	for v, c := range core {
		if c >= kmax {
			keep = append(keep, V(v))
			inSet[v] = true
		}
	}
	for _, v := range keep {
		d := 0
		for _, w := range g.Neighbors(v) {
			if inSet[w] {
				d++
			}
		}
		if int32(d) < kmax {
			t.Fatalf("vertex %d in %d-core has degree %d", v, kmax, d)
		}
	}
}

func TestDegeneracyOrder(t *testing.T) {
	g := completeGraph(5)
	order, d := DegeneracyOrder(g)
	if d != 4 {
		t.Fatalf("K5 degeneracy = %d, want 4", d)
	}
	if len(order) != 5 {
		t.Fatalf("order length %d", len(order))
	}
	seen := map[V]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate %d in order", v)
		}
		seen[v] = true
	}
}

func TestConnectedComponents(t *testing.T) {
	// two components: triangle {0,1,2} and edge {3,4}; isolated 5
	g := FromEdges(6, [][2]V{{0, 1}, {1, 2}, {0, 2}, {3, 4}})
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("triangle split across components")
	}
	if labels[3] != labels[4] {
		t.Fatal("edge split across components")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated vertex merged")
	}
}

func TestBFSLevels(t *testing.T) {
	g := pathGraph(5)
	lv := BFSLevels(g, 0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if lv[i] != want {
			t.Fatalf("level[%d]=%d want %d", i, lv[i], want)
		}
	}
	// unreachable
	g2 := FromEdges(3, [][2]V{{0, 1}})
	lv2 := BFSLevels(g2, 0)
	if lv2[2] != -1 {
		t.Fatalf("unreachable vertex level = %d", lv2[2])
	}
}

func TestStructuralFeatures(t *testing.T) {
	g := completeGraph(4)
	f := ComputeStructuralFeatures(g)
	for v := 0; v < 4; v++ {
		if f.Degree[v] != 3 {
			t.Fatalf("degree[%d]=%f", v, f.Degree[v])
		}
		if f.Clustering[v] != 1.0 {
			t.Fatalf("clustering[%d]=%f want 1", v, f.Clustering[v])
		}
		if f.Core[v] != 3 {
			t.Fatalf("core[%d]=%f", v, f.Core[v])
		}
	}
	row := f.Row(0)
	if len(row) != FeatureDim {
		t.Fatalf("row dim %d", len(row))
	}
	m := f.Matrix()
	if len(m) != 4 || len(m[0]) != FeatureDim {
		t.Fatal("matrix shape wrong")
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	if c := GlobalClusteringCoefficient(completeGraph(5)); c < 0.999 || c > 1.001 {
		t.Fatalf("K5 transitivity = %f", c)
	}
	if c := GlobalClusteringCoefficient(pathGraph(10)); c != 0 {
		t.Fatalf("path transitivity = %f", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := pathGraph(4) // degrees 1,2,2,1
	h := DegreeHistogram(g)
	if h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}
