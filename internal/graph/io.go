package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line,
// '#'-prefixed comment lines skipped) and returns an undirected graph.
// Vertex ids may be sparse; they are compacted to [0, n) preserving numeric
// order of first appearance rank.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return readEdgeList(r, false)
}

// ReadDirectedEdgeList is like ReadEdgeList but builds a directed graph.
func ReadDirectedEdgeList(r io.Reader) (*Graph, error) {
	return readEdgeList(r, true)
}

func readEdgeList(r io.Reader, directed bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[int64]V)
	var us, vs []V
	intern := func(x int64) V {
		if id, ok := ids[x]; ok {
			return id
		}
		id := V(len(ids))
		ids[x] = id
		return id
	}
	line := 0
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "%") {
			continue
		}
		fields := strings.Fields(t)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected at least 2 fields, got %q", line, t)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		us = append(us, intern(a))
		vs = append(vs, intern(b))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	bld := NewBuilder(len(ids), directed)
	for i := range us {
		bld.AddEdge(us[i], vs[i])
	}
	return bld.Build(), nil
}

// WriteEdgeList writes g as a text edge list (one edge per line, each
// undirected edge once).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graphsys edge list: n=%d m=%d directed=%v\n", g.NumVertices(), g.NumEdges(), g.Directed())
	var err error
	g.EdgesOnce(func(u, v V) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
