package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable CSR Graph. It
// deduplicates parallel edges and drops self-loops. For undirected graphs an
// edge needs to be added only once (either direction).
type Builder struct {
	n        int
	directed bool
	us, vs   []V
	els      []int32
	vlabels  []int32
	labeled  bool
	elabeled bool
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder {
	if n < 0 {
		//lint:allow panicpolicy negative vertex count is a programmer error at construction, documented precondition
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, directed: directed}
}

// Grow ensures the graph has at least n vertices.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge adds the edge u→v (and v→u for undirected builders). Self-loops are
// silently dropped. Vertex ids must be in [0, n).
func (b *Builder) AddEdge(u, v V) { b.AddLabeledEdge(u, v, 0) }

// AddLabeledEdge adds an edge carrying an edge label.
func (b *Builder) AddLabeledEdge(u, v V, label int32) {
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		//lint:allow panicpolicy out-of-range vertex ids are a documented precondition; per-edge error returns would put a branch in every loader hot loop
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.els = append(b.els, label)
	if label != 0 {
		b.elabeled = true
	}
}

// SetLabel assigns a vertex label.
func (b *Builder) SetLabel(v V, label int32) {
	if b.vlabels == nil {
		b.vlabels = make([]int32, b.n)
	}
	for int(v) >= len(b.vlabels) {
		b.vlabels = append(b.vlabels, 0)
	}
	b.vlabels[v] = label
	b.labeled = true
}

// Build produces the immutable Graph. The Builder may not be reused after
// Build.
func (b *Builder) Build() *Graph {
	type arc struct {
		u, v V
		l    int32
	}
	arcs := make([]arc, 0, len(b.us)*2)
	for i := range b.us {
		arcs = append(arcs, arc{b.us[i], b.vs[i], b.els[i]})
		if !b.directed {
			arcs = append(arcs, arc{b.vs[i], b.us[i], b.els[i]})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		return arcs[i].v < arcs[j].v
	})
	// Deduplicate.
	w := 0
	for i := range arcs {
		if i > 0 && arcs[i].u == arcs[w-1].u && arcs[i].v == arcs[w-1].v {
			continue
		}
		arcs[w] = arcs[i]
		w++
	}
	arcs = arcs[:w]

	g := &Graph{
		offsets:  make([]int64, b.n+1),
		adj:      make([]V, len(arcs)),
		directed: b.directed,
	}
	if b.elabeled {
		g.elabels = make([]int32, len(arcs))
	}
	for i, a := range arcs {
		g.offsets[a.u+1]++
		g.adj[i] = a.v
		if b.elabeled {
			g.elabels[i] = a.l
		}
	}
	for v := 1; v <= b.n; v++ {
		g.offsets[v] += g.offsets[v-1]
	}
	if b.labeled {
		g.vlabels = make([]int32, b.n)
		copy(g.vlabels, b.vlabels)
	}
	return g
}

// FromEdges builds an undirected graph with n vertices from an edge list.
func FromEdges(n int, edges [][2]V) *Graph {
	b := NewBuilder(n, false)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// FromDirectedEdges builds a directed graph with n vertices from an arc list.
func FromDirectedEdges(n int, edges [][2]V) *Graph {
	b := NewBuilder(n, true)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
