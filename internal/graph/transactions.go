package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TransactionDB is a database of small labeled graphs ("transactions"), the
// input of transactional frequent-subgraph mining (gSpan / PrefixFPM). Each
// transaction carries an optional class label for downstream graph
// classification (e.g. molecule activity).
type TransactionDB struct {
	Graphs []*Graph
	Class  []int // optional class label per transaction; nil if absent
}

// Len returns the number of transactions.
func (db *TransactionDB) Len() int { return len(db.Graphs) }

// Add appends a transaction with a class label.
func (db *TransactionDB) Add(g *Graph, class int) {
	db.Graphs = append(db.Graphs, g)
	db.Class = append(db.Class, class)
}

// ReadTransactions parses the standard gSpan transaction format:
//
//	t # <id>
//	v <vid> <label>
//	e <u> <v> <label>
//
// Lines beginning with "c <class>" (nonstandard extension) attach a class
// label to the current transaction.
func ReadTransactions(r io.Reader) (*TransactionDB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	db := &TransactionDB{}
	var b *Builder
	var class int
	flush := func() {
		if b != nil {
			db.Graphs = append(db.Graphs, b.Build())
			db.Class = append(db.Class, class)
		}
		b = nil
		class = 0
	}
	line := 0
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		f := strings.Fields(t)
		switch f[0] {
		case "t":
			flush()
			b = NewBuilder(0, false)
		case "c":
			c, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad class: %v", line, err)
			}
			class = c
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: vertex before transaction header", line)
			}
			if len(f) < 3 {
				return nil, fmt.Errorf("graph: line %d: v needs id and label", line)
			}
			id, err1 := strconv.Atoi(f[1])
			lab, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex line %q", line, t)
			}
			b.Grow(id + 1)
			b.SetLabel(V(id), int32(lab))
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before transaction header", line)
			}
			if len(f) < 4 {
				return nil, fmt.Errorf("graph: line %d: e needs u v label", line)
			}
			u, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.Atoi(f[2])
			lab, err3 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", line, t)
			}
			b.AddLabeledEdge(V(u), V(v), int32(lab))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return db, nil
}

// WriteTransactions writes db in gSpan transaction format.
func WriteTransactions(w io.Writer, db *TransactionDB) error {
	bw := bufio.NewWriter(w)
	for i, g := range db.Graphs {
		fmt.Fprintf(bw, "t # %d\n", i)
		if db.Class != nil {
			fmt.Fprintf(bw, "c %d\n", db.Class[i])
		}
		for v := V(0); int(v) < g.NumVertices(); v++ {
			fmt.Fprintf(bw, "v %d %d\n", v, g.Label(v))
		}
		var err error
		g.EdgesOnce(func(u, v V) {
			if err == nil {
				_, err = fmt.Fprintf(bw, "e %d %d %d\n", u, v, g.EdgeLabel(u, v))
			}
		})
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
