package graph

import "sort"

// CoreNumbers computes the k-core number of every vertex using the
// linear-time bucket peeling algorithm of Batagelj–Zaversnik. The core number
// of v is the largest k such that v belongs to a subgraph where every vertex
// has degree ≥ k.
func CoreNumbers(g *Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	md := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(V(v)))
		if deg[v] > md {
			md = deg[v]
		}
	}
	// bucket sort vertices by degree
	bin := make([]int32, md+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= md; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	pos := make([]int32, n)  // position of v in vert
	vert := make([]int32, n) // vertices sorted by current degree
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := md; d >= 1; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := deg
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.Neighbors(v) {
			if core[u] > core[v] {
				// move u one bucket down
				du, pu := core[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return core
}

// DegeneracyOrder returns a vertex ordering v₁..vₙ such that each vertex has
// the minimum remaining degree when removed (the degeneracy ordering), along
// with the graph degeneracy (max core number). Processing cliques in this
// order bounds the search tree; it is the standard preprocessing step of
// Bron–Kerbosch-with-pivoting used by G-thinker-style systems.
func DegeneracyOrder(g *Graph) (order []V, degeneracy int) {
	core := CoreNumbers(g)
	n := g.NumVertices()
	order = make([]V, n)
	for i := range order {
		order[i] = V(i)
	}
	// Peeling order: sort by core number then degree as tie break gives a
	// valid degeneracy order for our purposes (monotone peeling).
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if core[a] != core[b] {
			return core[a] < core[b]
		}
		return a < b
	})
	for _, c := range core {
		if int(c) > degeneracy {
			degeneracy = int(c)
		}
	}
	return order, degeneracy
}

// TriangleCount counts triangles with the standard serial ordered-merge
// algorithm: orient each edge from lower-degree to higher-degree endpoint and
// intersect out-neighborhoods. This is the efficient external-memory-style
// serial baseline referenced by Chu & Cheng in the paper's introduction.
func TriangleCount(g *Graph) int64 {
	n := g.NumVertices()
	rank := make([]int32, n)
	idx := make([]V, n)
	for i := range idx {
		idx[i] = V(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		di, dj := g.Degree(idx[i]), g.Degree(idx[j])
		if di != dj {
			return di < dj
		}
		return idx[i] < idx[j]
	})
	for r, v := range idx {
		rank[v] = int32(r)
	}
	// Build oriented adjacency: u → v iff rank[u] < rank[v].
	out := make([][]V, n)
	for u := V(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			if rank[u] < rank[v] {
				out[u] = append(out[u], v)
			}
		}
		sort.Slice(out[u], func(i, j int) bool { return out[u][i] < out[u][j] })
	}
	var count int64
	for u := V(0); int(u) < n; u++ {
		for _, v := range out[u] {
			count += int64(intersectCount(out[u], out[v]))
		}
	}
	return count
}

func intersectCount(a, b []V) int {
	c, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// LocalTriangles returns per-vertex triangle counts (each triangle counted at
// all three corners).
func LocalTriangles(g *Graph) []int64 {
	n := g.NumVertices()
	tri := make([]int64, n)
	for u := V(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			g.forEachCommonNeighbor(u, v, func(w V) {
				if w > v { // u < v < w: count each triangle once, credit all corners
					tri[u]++
					tri[v]++
					tri[w]++
				}
			})
		}
	}
	return tri
}

func (g *Graph) forEachCommonNeighbor(u, v V, fn func(w V)) {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}

// ConnectedComponents labels each vertex with a component id in [0, #comps)
// using iterative BFS, and returns the labels and the component count.
// This is the serial reference implementation used to validate the Pregel
// HashMin algorithm.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []V
	for s := V(0); int(s) < n; s++ {
		if labels[s] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// BFSLevels returns the BFS level of every vertex from source (or -1 if
// unreachable).
func BFSLevels(g *Graph, source V) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[source] = 0
	frontier := []V{source}
	for l := int32(1); len(frontier) > 0; l++ {
		var next []V
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if level[w] == -1 {
					level[w] = l
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return level
}
