package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% another comment
0 1
1 2
2 0

10 11
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("n=%d want 5 (compacted)", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m=%d want 4", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("want error for short line")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("want error for non-numeric")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := completeGraph(6)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: n=%d m=%d", g2.NumVertices(), g2.NumEdges())
	}
}

func TestTransactionsRoundTrip(t *testing.T) {
	db := &TransactionDB{}
	b := NewBuilder(3, false)
	b.SetLabel(0, 1)
	b.SetLabel(1, 2)
	b.SetLabel(2, 1)
	b.AddLabeledEdge(0, 1, 5)
	b.AddLabeledEdge(1, 2, 6)
	db.Add(b.Build(), 1)

	b2 := NewBuilder(2, false)
	b2.SetLabel(0, 3)
	b2.SetLabel(1, 3)
	b2.AddLabeledEdge(0, 1, 7)
	db.Add(b2.Build(), 0)

	var buf bytes.Buffer
	if err := WriteTransactions(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTransactions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len=%d", got.Len())
	}
	if got.Class[0] != 1 || got.Class[1] != 0 {
		t.Fatalf("classes = %v", got.Class)
	}
	g0 := got.Graphs[0]
	if g0.NumVertices() != 3 || g0.NumEdges() != 2 {
		t.Fatalf("t0: n=%d m=%d", g0.NumVertices(), g0.NumEdges())
	}
	if g0.Label(1) != 2 || g0.EdgeLabel(0, 1) != 5 {
		t.Fatal("t0 labels lost")
	}
}

func TestReadTransactionsErrors(t *testing.T) {
	bad := []string{
		"v 0 1\n",           // vertex before header
		"t # 0\ne 0 1\n",    // short edge
		"t # 0\nv 0\n",      // short vertex
		"t # 0\nx 1 2 3\n",  // unknown record
		"t # 0\nv zero 1\n", // bad number
	}
	for i, in := range bad {
		if _, err := ReadTransactions(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: want error for %q", i, in)
		}
	}
}
