// Package gen provides deterministic synthetic graph generators used in place
// of the proprietary/large real-world datasets evaluated by the systems the
// paper surveys. The generators reproduce the properties those evaluations
// depend on: degree skew (R-MAT, Barabási–Albert), community structure
// (planted partition), and small-world clustering (Watts–Strogatz).
package gen

import (
	"math"
	"math/rand"

	"graphsys/internal/graph"
)

// ErdosRenyi generates G(n, m): an undirected graph with n vertices and ~m
// distinct uniformly random edges, deterministically from seed.
func ErdosRenyi(n int, m int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	if max := int64(n) * int64(n-1) / 2; m > max {
		m = max // more edges than K_n has: clamp instead of spinning forever
	}
	seen := make(map[int64]bool, m)
	for int64(len(seen)) < m {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches k edges to existing vertices with probability proportional to
// degree, yielding a power-law degree distribution.
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	// repeated-endpoint list implements preferential attachment
	targets := make([]graph.V, 0, 2*n*k)
	// seed clique of k+1 vertices
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			b.AddEdge(graph.V(u), graph.V(v))
			targets = append(targets, graph.V(u), graph.V(v))
		}
	}
	for v := k + 1; v < n; v++ {
		// chosen keeps DRAW order: iterating a map here would append to
		// targets in process-random order and derail every later draw,
		// making the "seeded" generator emit a different graph per run
		chosen := make([]graph.V, 0, k)
		has := func(t graph.V) bool {
			for _, c := range chosen {
				if c == t {
					return true
				}
			}
			return false
		}
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			if t == graph.V(v) || has(t) {
				continue
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			b.AddEdge(graph.V(v), t)
			targets = append(targets, graph.V(v), t)
		}
	}
	return b.Build()
}

// RMAT generates a Kronecker-style R-MAT graph with 2^scale vertices and
// edgeFactor × 2^scale edges, with the Graph500 parameters (a,b,c) =
// (0.57, 0.19, 0.19). R-MAT graphs have the heavy-tailed degree skew of
// web/social graphs used in the surveyed systems' evaluations.
func RMAT(scale int, edgeFactor int, seed int64) *graph.Graph {
	n := 1 << scale
	m := int64(edgeFactor) * int64(n)
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19
	bld := graph.NewBuilder(n, false)
	for e := int64(0); e < m; e++ {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			bld.AddEdge(graph.V(u), graph.V(v))
		}
	}
	return bld.Build()
}

// RMATStream emits the exact edge sequence of RMAT(scale, edgeFactor, seed)
// — self-loops included, undeduplicated — without materializing a graph, so
// out-of-core builders (storage.WriteStream) can construct beyond-RAM
// R-MAT datasets with no global sort. Callers mirroring RMAT's undirected
// semantics must emit both arc directions and drop self-loops themselves.
func RMATStream(scale int, edgeFactor int, seed int64, emit func(u, v graph.V)) {
	n := 1 << scale
	m := int64(edgeFactor) * int64(n)
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19
	for e := int64(0); e < m; e++ {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		emit(graph.V(u), graph.V(v))
	}
}

// WattsStrogatz generates a small-world ring lattice with n vertices, each
// connected to its k nearest neighbors, with rewiring probability p.
func WattsStrogatz(n, k int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			w := (v + j) % n
			if rng.Float64() < p {
				// rewire to a uniform random endpoint
				for {
					cand := rng.Intn(n)
					if cand != v {
						w = cand
						break
					}
				}
			}
			if v != w {
				b.AddEdge(graph.V(v), graph.V(w))
			}
		}
	}
	return b.Build()
}

// Community describes a planted-partition generation result: the graph and
// the ground-truth community of each vertex. Intra-community edge probability
// pIn must exceed pOut for detectable communities.
type Community struct {
	Graph      *graph.Graph
	Membership []int // community id per vertex
	K          int   // number of communities
}

// PlantedPartition generates k communities of size n/k with intra-community
// edge probability pIn and inter-community probability pOut. It is the
// ground-truth workload for community-detection and node-classification
// experiments (paths 1–4 of the paper's Figure 1).
func PlantedPartition(n, k int, pIn, pOut float64, seed int64) *Community {
	rng := rand.New(rand.NewSource(seed))
	member := make([]int, n)
	for v := 0; v < n; v++ {
		member[v] = v * k / n
	}
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if member[u] == member[v] {
				p = pIn
			}
			if rng.Float64() < p {
				b.AddEdge(graph.V(u), graph.V(v))
			}
		}
	}
	return &Community{Graph: b.Build(), Membership: member, K: k}
}

// PlantedPartitionSparse is an O(m)-time planted partition generator for
// larger n: it samples degIn intra- and degOut inter-community edges per
// vertex in expectation rather than testing all O(n²) pairs.
func PlantedPartitionSparse(n, k int, degIn, degOut float64, seed int64) *Community {
	rng := rand.New(rand.NewSource(seed))
	member := make([]int, n)
	commOf := make([][]graph.V, k)
	for v := 0; v < n; v++ {
		c := v * k / n
		member[v] = c
		commOf[c] = append(commOf[c], graph.V(v))
	}
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		c := member[v]
		nin := poisson(rng, degIn/2)
		for i := 0; i < nin; i++ {
			w := commOf[c][rng.Intn(len(commOf[c]))]
			if w != graph.V(v) {
				b.AddEdge(graph.V(v), w)
			}
		}
		nout := poisson(rng, degOut/2)
		for i := 0; i < nout; i++ {
			w := graph.V(rng.Intn(n))
			if member[w] != c && w != graph.V(v) {
				b.AddEdge(graph.V(v), w)
			}
		}
	}
	return &Community{Graph: b.Build(), Membership: member, K: k}
}

func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Grid generates an rows×cols 2D grid graph (useful for deterministic tests:
// its triangle count is 0 and component structure is known).
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows*cols, false)
	id := func(r, c int) graph.V { return graph.V(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Clique generates the complete graph K_n.
func Clique(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(graph.V(u), graph.V(v))
		}
	}
	return b.Build()
}

// WithRandomLabels returns a copy of g with vertex labels drawn uniformly
// from [0, numLabels).
func WithRandomLabels(g *graph.Graph, numLabels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(g.NumVertices(), g.Directed())
	for v := graph.V(0); int(v) < g.NumVertices(); v++ {
		b.SetLabel(v, int32(rng.Intn(numLabels)))
	}
	g.EdgesOnce(func(u, v graph.V) { b.AddEdge(u, v) })
	return b.Build()
}

// MoleculeDB generates a synthetic molecule-like transaction database for
// FSM and graph-classification experiments. Class-1 transactions embed a
// distinguishing functional-group motif (a labeled ring) with probability
// motifProb; class-0 transactions are random. This mirrors the
// bioinformatics/biochemistry workloads the paper motivates (functional
// groups as informative features).
func MoleculeDB(numGraphs, verticesPer, numLabels int, motifProb float64, seed int64) *graph.TransactionDB {
	rng := rand.New(rand.NewSource(seed))
	db := &graph.TransactionDB{}
	for i := 0; i < numGraphs; i++ {
		class := i % 2
		n := verticesPer + rng.Intn(verticesPer/2+1)
		b := graph.NewBuilder(n, false)
		for v := 0; v < n; v++ {
			b.SetLabel(graph.V(v), int32(rng.Intn(numLabels)))
		}
		// random backbone: a spanning path plus extra edges
		perm := rng.Perm(n)
		for j := 1; j < n; j++ {
			b.AddLabeledEdge(graph.V(perm[j-1]), graph.V(perm[j]), int32(rng.Intn(2)))
		}
		extra := n / 2
		for j := 0; j < extra; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddLabeledEdge(graph.V(u), graph.V(v), int32(rng.Intn(2)))
			}
		}
		if class == 1 && rng.Float64() < motifProb && n >= 4 {
			// plant a labeled 4-ring motif on the first four vertices
			for v := 0; v < 4; v++ {
				b.SetLabel(graph.V(v), int32(numLabels)) // distinguished label
			}
			b.AddLabeledEdge(0, 1, 1)
			b.AddLabeledEdge(1, 2, 1)
			b.AddLabeledEdge(2, 3, 1)
			b.AddLabeledEdge(3, 0, 1)
		}
		db.Add(b.Build(), class)
	}
	return db
}
