package gen

import (
	"testing"

	"graphsys/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("m=%d want 300 (distinct edges)", g.NumEdges())
	}
	// determinism
	g2 := ErdosRenyi(100, 300, 1)
	if g2.NumEdges() != g.NumEdges() || g2.NumArcs() != g.NumArcs() {
		t.Fatal("not deterministic")
	}
}

func TestBarabasiAlbertSkew(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 42)
	if g.NumVertices() != 2000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// preferential attachment must produce hubs: max degree far above average
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Fatalf("no hubs: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 7)
	if g.NumVertices() != 1024 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// RMAT with Graph500 params is skewed
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Fatalf("RMAT not skewed: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 6, 0.05, 3)
	if g.NumVertices() != 200 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// With low rewiring the lattice keeps high clustering.
	if cc := graph.GlobalClusteringCoefficient(g); cc < 0.2 {
		t.Fatalf("small-world clustering too low: %f", cc)
	}
}

func TestPlantedPartition(t *testing.T) {
	c := PlantedPartition(120, 3, 0.3, 0.01, 5)
	if c.Graph.NumVertices() != 120 || c.K != 3 {
		t.Fatal("shape wrong")
	}
	// count intra vs inter edges; intra should dominate
	intra, inter := 0, 0
	c.Graph.EdgesOnce(func(u, v graph.V) {
		if c.Membership[u] == c.Membership[v] {
			intra++
		} else {
			inter++
		}
	})
	if intra <= inter {
		t.Fatalf("communities not assortative: intra=%d inter=%d", intra, inter)
	}
}

func TestPlantedPartitionSparse(t *testing.T) {
	c := PlantedPartitionSparse(1000, 4, 8, 1, 6)
	if c.Graph.NumVertices() != 1000 {
		t.Fatal("n wrong")
	}
	intra, inter := 0, 0
	c.Graph.EdgesOnce(func(u, v graph.V) {
		if c.Membership[u] == c.Membership[v] {
			intra++
		} else {
			inter++
		}
	})
	if intra <= 2*inter {
		t.Fatalf("sparse communities not assortative: intra=%d inter=%d", intra, inter)
	}
}

func TestGridAndClique(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("grid n=%d", g.NumVertices())
	}
	// 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges
	if g.NumEdges() != 17 {
		t.Fatalf("grid m=%d want 17", g.NumEdges())
	}
	if graph.TriangleCount(g) != 0 {
		t.Fatal("grid has no triangles")
	}
	k := Clique(6)
	if k.NumEdges() != 15 {
		t.Fatalf("K6 m=%d", k.NumEdges())
	}
}

func TestWithRandomLabels(t *testing.T) {
	g := Grid(4, 4)
	lg := WithRandomLabels(g, 3, 9)
	if !lg.HasLabels() {
		t.Fatal("no labels")
	}
	if lg.NumEdges() != g.NumEdges() {
		t.Fatal("edges changed")
	}
	for v := graph.V(0); int(v) < lg.NumVertices(); v++ {
		if l := lg.Label(v); l < 0 || l >= 3 {
			t.Fatalf("label out of range: %d", l)
		}
	}
}

func TestMoleculeDB(t *testing.T) {
	db := MoleculeDB(40, 10, 4, 0.9, 11)
	if db.Len() != 40 {
		t.Fatalf("len=%d", db.Len())
	}
	ones := 0
	for _, c := range db.Class {
		if c == 1 {
			ones++
		}
	}
	if ones != 20 {
		t.Fatalf("class balance: %d ones", ones)
	}
	// class-1 graphs should frequently contain the distinguished label
	motifGraphs := 0
	for i, g := range db.Graphs {
		if db.Class[i] != 1 {
			continue
		}
		for v := graph.V(0); int(v) < g.NumVertices(); v++ {
			if g.Label(v) == 4 { // numLabels is the distinguished label
				motifGraphs++
				break
			}
		}
	}
	if motifGraphs < 10 {
		t.Fatalf("motif planted in only %d/20 class-1 graphs", motifGraphs)
	}
}

func TestGeneratorsConnectivityShape(t *testing.T) {
	// BA graphs are connected by construction
	g := BarabasiAlbert(300, 2, 1)
	_, comps := graph.ConnectedComponents(g)
	if comps != 1 {
		t.Fatalf("BA graph has %d components", comps)
	}
}
