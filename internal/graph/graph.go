// Package graph provides the core immutable graph representation shared by
// every engine in this repository: a compressed sparse row (CSR) adjacency
// structure with optional vertex and edge labels, plus builders, orderings,
// structural features and a transaction database for pattern mining.
//
// All engines (Pregel-style TLAV, think-like-a-task, BFS-extension mining,
// subgraph matching, FSM, GNN training) consume the same *Graph, so results
// across engines are directly comparable.
package graph

import (
	"fmt"
	"sort"
)

// V is the vertex identifier type. Vertices of a Graph with n vertices are
// identified by the dense range [0, n).
type V = int32

// Graph is an immutable graph in CSR form. For undirected graphs every edge
// {u,v} is stored twice (u→v and v→u). Neighbor lists are sorted ascending,
// enabling O(log d) adjacency tests and linear-time ordered merges.
//
// The zero value is an empty graph with no vertices.
type Graph struct {
	offsets  []int64 // len n+1; adj[offsets[v]:offsets[v+1]] are v's neighbors
	adj      []V     // concatenated sorted neighbor lists
	directed bool

	vlabels []int32 // optional, len n
	elabels []int32 // optional, aligned with adj
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of edges. For undirected graphs each edge
// {u,v} counts once.
func (g *Graph) NumEdges() int64 {
	if g.directed {
		return int64(len(g.adj))
	}
	return int64(len(g.adj)) / 2
}

// NumArcs returns the number of stored directed arcs (2|E| for undirected).
func (g *Graph) NumArcs() int64 { return int64(len(g.adj)) }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v V) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v V) []V { return g.adj[g.offsets[v]:g.offsets[v+1]] }

// HasEdge reports whether the arc u→v exists, by binary search in O(log d(u)).
func (g *Graph) HasEdge(u, v V) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// HasLabels reports whether vertex labels are attached.
func (g *Graph) HasLabels() bool { return g.vlabels != nil }

// HasEdgeLabels reports whether edge labels are attached.
func (g *Graph) HasEdgeLabels() bool { return g.elabels != nil }

// Label returns the label of vertex v, or 0 if the graph is unlabeled.
func (g *Graph) Label(v V) int32 {
	if g.vlabels == nil {
		return 0
	}
	return g.vlabels[v]
}

// EdgeLabel returns the label of the arc u→v, or 0 if edges are unlabeled.
// It panics if the arc does not exist.
func (g *Graph) EdgeLabel(u, v V) int32 {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i >= len(ns) || ns[i] != v {
		//lint:allow panicpolicy documented in the method contract: querying a non-existent arc is a programmer error
		panic(fmt.Sprintf("graph: edge %d->%d does not exist", u, v))
	}
	if g.elabels == nil {
		return 0
	}
	return g.elabels[g.offsets[u]+int64(i)]
}

// EdgeLabelAt returns the label of the i-th stored arc of u (index into
// Neighbors(u)), or 0 if edges are unlabeled.
func (g *Graph) EdgeLabelAt(u V, i int) int32 {
	if g.elabels == nil {
		return 0
	}
	return g.elabels[g.offsets[u]+int64(i)]
}

// Labels returns the vertex label slice (nil if unlabeled). The slice aliases
// internal storage and must not be modified.
func (g *Graph) Labels() []int32 { return g.vlabels }

// MaxLabel returns the largest vertex label, or 0 for unlabeled graphs.
func (g *Graph) MaxLabel() int32 {
	var m int32
	for _, l := range g.vlabels {
		if l > m {
			m = l
		}
	}
	return m
}

// Edges calls fn for every stored arc (u, v). For undirected graphs, to see
// each edge once use EdgesOnce.
func (g *Graph) Edges(fn func(u, v V)) {
	for u := V(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			fn(u, v)
		}
	}
}

// EdgesOnce calls fn once per undirected edge {u,v} with u < v. For directed
// graphs it is identical to Edges.
func (g *Graph) EdgesOnce(fn func(u, v V)) {
	if g.directed {
		g.Edges(fn)
		return
	}
	for u := V(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// MaxDegree returns the maximum degree over all vertices (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	m := 0
	for v := V(0); int(v) < g.NumVertices(); v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// AvgDegree returns the average out-degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(n)
}

// CommonNeighbors returns the number of common neighbors of u and v using an
// ordered merge of the two sorted adjacency lists.
func (g *Graph) CommonNeighbors(u, v V) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// IntersectNeighbors appends the common neighbors of u and v to dst and
// returns the extended slice. dst may be nil.
func (g *Graph) IntersectNeighbors(u, v V, dst []V) []V {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// Intersect appends the intersection of two sorted vertex slices to dst.
func Intersect(a, b, dst []V) []V {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// InducedSubgraph returns the subgraph induced by vs, together with the
// mapping from new vertex ids to original ids (i.e. newToOld[i] is the
// original id of new vertex i). Labels are carried over. Duplicate ids in vs
// are ignored.
func (g *Graph) InducedSubgraph(vs []V) (*Graph, []V) {
	newToOld := make([]V, 0, len(vs))
	oldToNew := make(map[V]V, len(vs))
	for _, v := range vs {
		if _, ok := oldToNew[v]; ok {
			continue
		}
		oldToNew[v] = V(len(newToOld))
		newToOld = append(newToOld, v)
	}
	b := NewBuilder(len(newToOld), g.directed)
	if g.vlabels != nil {
		for i, old := range newToOld {
			b.SetLabel(V(i), g.vlabels[old])
		}
	}
	for i, old := range newToOld {
		for k, w := range g.Neighbors(old) {
			nw, ok := oldToNew[w]
			if !ok {
				continue
			}
			if !g.directed && old > w {
				continue // add each undirected edge once
			}
			if g.elabels != nil {
				b.AddLabeledEdge(V(i), nw, g.EdgeLabelAt(old, k))
			} else {
				b.AddEdge(V(i), nw)
			}
		}
	}
	return b.Build(), newToOld
}

// Reverse returns the transpose of a directed graph (in-adjacency). For
// undirected graphs it returns g itself.
func (g *Graph) Reverse() *Graph {
	if !g.directed {
		return g
	}
	b := NewBuilder(g.NumVertices(), true)
	if g.vlabels != nil {
		for v, l := range g.vlabels {
			b.SetLabel(V(v), l)
		}
	}
	g.Edges(func(u, v V) { b.AddEdge(v, u) })
	return b.Build()
}

// String returns a short diagnostic description.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s, n=%d, m=%d}", kind, g.NumVertices(), g.NumEdges())
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		offsets:  append([]int64(nil), g.offsets...),
		adj:      append([]V(nil), g.adj...),
		directed: g.directed,
	}
	if g.vlabels != nil {
		c.vlabels = append([]int32(nil), g.vlabels...)
	}
	if g.elabels != nil {
		c.elabels = append([]int32(nil), g.elabels...)
	}
	return c
}
