package pregel

import (
	"graphsys/internal/graph"
)

// delivery is the engine's columnar inbox (DESIGN.md §3.12). Each worker's
// round of inbound messages is scattered — by a stable counting sort on the
// destination-local vertex id — into one flat per-worker payload buffer, and
// msgs[v] becomes a view into that buffer instead of an owned per-vertex
// slice. The demux loop therefore touches only the owner worker's own flat
// buffer, count table and touched list (no cross-worker active[] stores,
// no per-vertex append growth), and every buffer is reused across rounds, so
// a steady-state demux performs no allocation.
//
// For the legacy per-message substrate, normalizeLegacy first rewrites the
// scheduling-ordered inbox into the exact stream the staged substrate would
// have delivered, so all three communication paths feed identical bytes into
// the scatter.
type delivery[M any] struct {
	owned    [][]graph.V
	localIdx []int32 // global vertex id → index into the owner's owned list

	// per worker, reused every round
	flat    [][]M     // round payloads in scatter order; msgs[v] are views
	counts  [][]int32 // per local id: messages this round; all-zero between rounds
	cursor  [][]int32 // scatter cursors (start offsets during the scatter pass)
	touched [][]int32 // local ids that received ≥1 message, discovery order

	// legacy-oracle scratch (nil unless the run uses CommsLegacy)
	sorted    [][]lmsg[M]
	combined  [][]vmsg[M]
	senderOff [][]int32
}

func newDelivery[M any](owned [][]graph.V, localIdx []int32, legacy bool) *delivery[M] {
	n := len(owned)
	d := &delivery[M]{
		owned:    owned,
		localIdx: localIdx,
		flat:     make([][]M, n),
		counts:   make([][]int32, n),
		cursor:   make([][]int32, n),
		touched:  make([][]int32, n),
	}
	for w := range owned {
		d.counts[w] = make([]int32, len(owned[w]))
		d.cursor[w] = make([]int32, len(owned[w]))
	}
	if legacy {
		d.sorted = make([][]lmsg[M], n)
		d.combined = make([][]vmsg[M], n)
		d.senderOff = make([][]int32, n)
		for w := range owned {
			d.senderOff[w] = make([]int32, n+1)
		}
	}
	return d
}

// scatter groups worker w's inbound stream by destination vertex into the
// worker's flat buffer, installs msgs[v] views and activates recipients.
// Only entries owned by w are touched, so concurrent per-worker scatters are
// race-free. Returns the number of vertices newly activated.
func (d *delivery[M]) scatter(w int, stream []vmsg[M], msgs [][]M, active []bool) int64 {
	if len(stream) == 0 {
		return 0
	}
	counts, cursor, touched := d.counts[w], d.cursor[w], d.touched[w]
	for i := range stream {
		lid := d.localIdx[stream[i].to]
		if counts[lid] == 0 {
			//lint:allow hotalloc warm-up growth only: touched tops out at the worker's owned-vertex count and keeps its capacity across rounds
			touched = append(touched, lid)
		}
		counts[lid]++
	}
	flat := d.flat[w]
	// zero before reuse so pointer-bearing M from last round does not stay
	// reachable through the retained backing array
	clear(flat)
	if cap(flat) < len(stream) {
		//lint:allow hotalloc warm-up growth only: the flat buffer reaches the round's inbound high-water mark once, then is reused
		flat = make([]M, len(stream))
	} else {
		flat = flat[:len(stream)]
	}
	off := int32(0)
	for _, lid := range touched {
		cursor[lid] = off
		off += counts[lid]
	}
	for i := range stream {
		lid := d.localIdx[stream[i].to]
		flat[cursor[lid]] = stream[i].m
		cursor[lid]++
	}
	var activated int64
	owned := d.owned[w]
	for _, lid := range touched {
		end := cursor[lid]
		v := owned[lid]
		msgs[v] = flat[end-counts[lid] : end : end]
		if !active[v] {
			active[v] = true
			activated++
		}
		counts[lid] = 0 // restore the all-zero between-rounds invariant
	}
	d.flat[w] = flat
	d.touched[w] = touched[:0]
	return activated
}

// normalizeLegacy rewrites worker w's legacy inbox into the exact stream the
// staged substrate would deliver for the same sends: a stable counting sort
// by ascending sender rank first (the legacy inbox order is mutex-scheduling
// dependent; the staged paths' vmsg carries no sender rank because the outbox
// lane implies it — only the legacy lmsg envelope still does), then — when
// the program has a combiner — receiver-side combining per sender run with
// the staged path's fold order (combine(queued, incoming) in send order,
// first-occurrence positions preserved). Matching the operation structure
// exactly is what keeps float folds bitwise identical across the three
// communication paths; this is the equivalence oracle, so its own
// allocations are not a concern.
func (d *delivery[M]) normalizeLegacy(w, workers int, in []lmsg[M], key func(vmsg[M]) int64, combine func(a, b M) M) []vmsg[M] {
	off := d.senderOff[w]
	for i := range off {
		off[i] = 0
	}
	for i := range in {
		off[in[i].sender+1]++
	}
	for s := 0; s < workers; s++ {
		off[s+1] += off[s]
	}
	sorted := d.sorted[w]
	clear(sorted)
	if cap(sorted) < len(in) {
		//lint:allow hotalloc equivalence oracle: the legacy path exists to cross-check the staged substrates, its cost is not measured
		sorted = make([]lmsg[M], len(in))
	} else {
		sorted = sorted[:len(in)]
	}
	for i := range in {
		s := in[i].sender
		sorted[off[s]] = in[i]
		off[s]++
	}
	d.sorted[w] = sorted
	out := d.combined[w]
	clear(out)
	out = out[:0]
	if combine == nil {
		for i := range sorted {
			//lint:allow hotalloc equivalence oracle: the legacy path exists to cross-check the staged substrates, its cost is not measured
			out = append(out, sorted[i].vm)
		}
		d.combined[w] = out
		return out
	}
	//lint:allow hotalloc equivalence oracle: the legacy path exists to cross-check the staged substrates, its cost is not measured
	runIdx := map[int64]int{}
	sender := int32(-1)
	for i := range sorted {
		lm := sorted[i]
		if lm.sender != sender {
			sender = lm.sender
			clear(runIdx) // combining classes never span sender runs
		}
		k := key(lm.vm)
		if j, ok := runIdx[k]; ok {
			out[j].m = combine(out[j].m, lm.vm.m)
		} else {
			runIdx[k] = len(out)
			//lint:allow hotalloc equivalence oracle: the legacy path exists to cross-check the staged substrates, its cost is not measured
			out = append(out, lm.vm)
		}
	}
	d.combined[w] = out
	return out
}
