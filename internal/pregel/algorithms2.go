package pregel

import (
	"graphsys/internal/graph"
)

// LabelPropagation runs semi-synchronous label propagation community
// detection for the given number of rounds: every vertex adopts the most
// frequent label among its neighbors (ties broken by smaller label), a
// classic TLAV community workload.
func LabelPropagation(g *graph.Graph, rounds int, cfg Config) ([]int32, error) {
	prog := Program[int32, int32]{
		Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
		Compute: func(ctx *Context[int32], v graph.V, state *int32, msgs []int32) {
			if ctx.Superstep() > 0 {
				counts := map[int32]int{}
				for _, m := range msgs {
					counts[m]++
				}
				best, bestN := *state, 0
				//lint:deterministic argmax fold under the strict total order (count desc, label asc); the winner is unique for any iteration order
				for l, c := range counts {
					if c > bestN || (c == bestN && l < best) {
						best, bestN = l, c
					}
				}
				if bestN > 0 {
					*state = best
				}
			}
			if ctx.Superstep() < rounds {
				ctx.SendToNeighbors(v, *state)
			} else {
				ctx.VoteToHalt()
			}
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	return res.States, nil
}

// KCore computes the vertices of the k-core TLAV-style: vertices repeatedly
// deactivate when their surviving degree drops below k, notifying neighbors
// (distributed peeling). Returns membership flags. Validated against the
// serial Batagelj–Zaversnik core numbers.
func KCore(g *graph.Graph, k int32, cfg Config) ([]bool, error) {
	type state struct {
		alive     bool
		surviving int32
	}
	prog := Program[state, int32]{
		Init: func(g *graph.Graph, v graph.V) state {
			return state{alive: true, surviving: int32(g.Degree(v))}
		},
		Compute: func(ctx *Context[int32], v graph.V, st *state, msgs []int32) {
			if !st.alive {
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				st.surviving -= m
			}
			if st.surviving < k {
				st.alive = false
				// tell neighbors they lost one supporting edge
				ctx.SendToNeighbors(v, 1)
			}
			ctx.VoteToHalt()
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(res.States))
	for v, s := range res.States {
		out[v] = s.alive
	}
	return out, nil
}

// PageRankConverged runs PageRank until the L1 residual between successive
// iterations drops below eps, using a global aggregator for the convergence
// test (the Pregel aggregator pattern), and returns the ranks and the number
// of iterations used.
func PageRankConverged(g *graph.Graph, eps float64, maxIters int, cfg Config) ([]float64, int, error) {
	n := float64(g.NumVertices())
	const d = 0.85
	type prState struct {
		rank float64
	}
	prog := Program[prState, float64]{
		Init: func(g *graph.Graph, v graph.V) prState { return prState{rank: 1 / n} },
		Compute: func(ctx *Context[float64], v graph.V, st *prState, msgs []float64) {
			if ctx.Superstep() > 0 {
				sum := 0.0
				for _, m := range msgs {
					sum += m
				}
				newRank := (1-d)/n + d*sum
				delta := newRank - st.rank
				if delta < 0 {
					delta = -delta
				}
				ctx.Aggregate("residual", delta)
				st.rank = newRank
				// stop when the previous round's residual fell below eps
				if ctx.Superstep() > 1 && ctx.Agg("residual") < eps {
					ctx.VoteToHalt()
					return
				}
			}
			if ctx.Superstep() >= maxIters {
				ctx.VoteToHalt()
				return
			}
			deg := ctx.Graph().Degree(v)
			if deg > 0 {
				ctx.SendToNeighbors(v, st.rank/float64(deg))
			}
		},
		Combine: func(a, b float64) float64 { return a + b },
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, 0, err
	}
	out := make([]float64, len(res.States))
	for v, s := range res.States {
		out[v] = s.rank
	}
	return out, res.Supersteps, nil
}

// WeightedSSSP computes single-source shortest paths with edge labels as
// weights (message-pruned distributed Bellman–Ford, the standard TLAV SSSP).
// Unreachable vertices get -1. Validated against serial Dijkstra.
func WeightedSSSP(g *graph.Graph, source graph.V, cfg Config) ([]int64, *Result[int64], error) {
	const inf = int64(1) << 62
	prog := Program[int64, int64]{
		Init: func(g *graph.Graph, v graph.V) int64 {
			if v == source {
				return 0
			}
			return inf
		},
		Compute: func(ctx *Context[int64], v graph.V, state *int64, msgs []int64) {
			best := *state
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best < *state || (ctx.Superstep() == 0 && v == source) {
				*state = best
				for i, u := range ctx.Graph().Neighbors(v) {
					ctx.Send(u, best+ctx.Graph().Weight(v, i))
				}
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	out := make([]int64, len(res.States))
	for i, d := range res.States {
		if d == inf {
			out[i] = -1
		} else {
			out[i] = d
		}
	}
	res.States = out
	return out, res, nil
}
