package pregel

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/storage"
)

// openDisk writes g to a block file and returns a cached provider sized to
// roughly half the decoded graph, so the run actually exercises eviction.
func openDisk(t *testing.T, g *graph.Graph, workers int, pol storage.EvictPolicy) *storage.CachedProvider {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.gsb")
	info, err := storage.Write(path, g, storage.Options{BlockBytes: 1 << 11})
	if err != nil {
		t.Fatalf("storage.Write: %v", err)
	}
	budget := info.ResidentBytes + info.RawCSRBytes/2
	if min := info.ResidentBytes + int64(workers)*info.MaxDecodedBytes; budget < min {
		budget = min
	}
	p, err := storage.OpenCached(path, budget, workers, pol)
	if err != nil {
		t.Fatalf("storage.OpenCached: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPageRankDiskEquivalence is the tentpole equivalence gate: PageRank
// from the disk-backed GraphSource (g == nil, adjacency through the bounded
// block cache) must produce byte-identical ranks to the in-memory run at
// workers 1, 2 and 8.
func TestPageRankDiskEquivalence(t *testing.T) {
	g := gen.RMAT(11, 8, 17)
	const iters = 8
	for _, workers := range []int{1, 2, 8} {
		for _, pol := range []storage.EvictPolicy{storage.LRU, storage.MRU} {
			mem, _, err := PageRank(g, iters, Config{Workers: workers})
			if err != nil {
				t.Fatalf("in-memory PageRank: %v", err)
			}
			prov := openDisk(t, g, workers, pol)
			disk, res, err := PageRank(nil, iters, Config{Workers: workers, Source: prov})
			if err != nil {
				t.Fatalf("disk PageRank (w=%d, %v): %v", workers, pol, err)
			}
			for v := range mem {
				if math.Float64bits(mem[v]) != math.Float64bits(disk[v]) {
					t.Fatalf("w=%d %v: rank[%d] differs: mem %v disk %v", workers, pol, v, mem[v], disk[v])
				}
			}
			if res.Supersteps == 0 {
				t.Fatal("disk run did no supersteps")
			}
			if prov.Stats().BlocksRead == 0 {
				t.Fatalf("w=%d %v: disk run read no blocks", workers, pol)
			}
		}
	}
}

// TestHashMinCCDiskEquivalence covers a data-dependent convergence workload:
// activation patterns, superstep counts and labels must all match.
func TestHashMinCCDiskEquivalence(t *testing.T) {
	g := gen.RMAT(10, 4, 23) // sparse: disconnected fringe, multiple components
	for _, workers := range []int{1, 2, 8} {
		mem, memRes, err := HashMinCC(g, Config{Workers: workers})
		if err != nil {
			t.Fatalf("in-memory HashMinCC: %v", err)
		}
		prov := openDisk(t, g, workers, storage.LRU)
		disk, diskRes, err := HashMinCC(nil, Config{Workers: workers, Source: prov})
		if err != nil {
			t.Fatalf("disk HashMinCC (w=%d): %v", workers, err)
		}
		if memRes.Supersteps != diskRes.Supersteps {
			t.Fatalf("w=%d: supersteps differ: mem %d disk %d", workers, memRes.Supersteps, diskRes.Supersteps)
		}
		if memRes.Net != diskRes.Net {
			t.Fatalf("w=%d: network stats differ: mem %+v disk %+v", workers, memRes.Net, diskRes.Net)
		}
		for v := range mem {
			if mem[v] != disk[v] {
				t.Fatalf("w=%d: label[%d] differs: mem %d disk %d", workers, v, mem[v], disk[v])
			}
		}
	}
}

// TestStoragePolicySpill covers the graphbench `-source disk` path: with the
// process-global policy set, a plain in-memory Run spills to a temp block
// file, produces identical results, and attaches the storage section to the
// trace.
func TestStoragePolicySpill(t *testing.T) {
	g := gen.RMAT(10, 8, 29)
	const iters = 5
	mem, _, err := PageRank(g, iters, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	storage.SetDefault(&storage.Policy{
		Disk:        true,
		BudgetBytes: 1 << 22,
		BlockBytes:  1 << 11,
		Dir:         t.TempDir(),
		Evict:       storage.MRU,
	})
	defer storage.SetDefault(nil)
	cfg := Config{Workers: 2}
	cfg.Trace = true
	disk, res, err := PageRank(g, iters, cfg)
	if err != nil {
		t.Fatalf("PageRank under disk policy: %v", err)
	}
	for v := range mem {
		if math.Float64bits(mem[v]) != math.Float64bits(disk[v]) {
			t.Fatalf("rank[%d] differs under disk policy: mem %v disk %v", v, mem[v], disk[v])
		}
	}
	st := res.Trace.Storage
	if st == nil {
		t.Fatal("trace has no storage section under disk policy")
	}
	if st.Kind != "disk" || st.BytesRead <= 0 || st.FileBytes <= 0 {
		t.Fatalf("bad storage trace: %+v", st)
	}
	if len(st.Rounds) == 0 {
		t.Fatal("storage trace has no per-round series")
	}
	var roundBytes int64
	for _, r := range st.Rounds {
		roundBytes += r.BytesRead
	}
	if roundBytes != st.BytesRead {
		t.Fatalf("per-round bytes %d do not sum to total %d", roundBytes, st.BytesRead)
	}
}

// TestStoragePolicyBudgetError pins the satellite contract: an impossible
// budget is a typed error from Run, not an OOM.
func TestStoragePolicyBudgetError(t *testing.T) {
	g := gen.RMAT(10, 8, 31)
	storage.SetDefault(&storage.Policy{Disk: true, BudgetBytes: 128, Dir: t.TempDir()})
	defer storage.SetDefault(nil)
	_, _, err := PageRank(g, 3, Config{Workers: 2})
	if !errors.Is(err, storage.ErrBudget) {
		t.Fatalf("got %v, want wrapped storage.ErrBudget", err)
	}
}
