package pregel

import (
	"math"
	"math/rand"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func TestLabelPropagationFindsCommunities(t *testing.T) {
	c := gen.PlantedPartitionSparse(300, 3, 14, 0.3, 4)
	labels, _ := LabelPropagation(c.Graph, 10, Config{Workers: 4})
	// measure agreement: most vertices in a community share the mode label
	agree := 0
	for comm := 0; comm < 3; comm++ {
		counts := map[int32]int{}
		size := 0
		for v := 0; v < 300; v++ {
			if c.Membership[v] == comm {
				counts[labels[v]]++
				size++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		agree += best
		_ = size
	}
	if float64(agree)/300 < 0.7 {
		t.Fatalf("label propagation community agreement %.2f", float64(agree)/300)
	}
}

func TestKCoreMatchesSerialCoreNumbers(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(200, 800, seed)
		cores := graph.CoreNumbers(g)
		for _, k := range []int32{2, 4, 6} {
			member, _ := KCore(g, k, Config{Workers: 4})
			for v := 0; v < 200; v++ {
				want := cores[v] >= k
				if member[v] != want {
					t.Fatalf("seed %d k=%d vertex %d: member=%v core=%d", seed, k, v, member[v], cores[v])
				}
			}
		}
	}
}

func TestKCoreEmptyWhenKTooLarge(t *testing.T) {
	g := gen.Grid(5, 5) // max core 2
	member, _ := KCore(g, 3, Config{Workers: 2})
	for v, m := range member {
		if m {
			t.Fatalf("vertex %d in nonexistent 3-core of a grid", v)
		}
	}
}

func TestPageRankConverged(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 2)
	exact, _, _ := PageRank(g, 60, Config{Workers: 4})
	ranks, iters, _ := PageRankConverged(g, 1e-6, 100, Config{Workers: 4})
	if iters >= 100 {
		t.Fatalf("did not converge within bound (%d iters)", iters)
	}
	var maxDiff float64
	for v := range exact {
		if d := math.Abs(exact[v] - ranks[v]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Fatalf("converged ranks deviate by %g", maxDiff)
	}
	// looser eps should stop earlier
	_, fewIters, _ := PageRankConverged(g, 1e-2, 100, Config{Workers: 4})
	if fewIters >= iters {
		t.Fatalf("eps=1e-2 used %d iters, eps=1e-6 used %d", fewIters, iters)
	}
}

func TestWeightedSSSPMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for seed := 0; seed < 3; seed++ {
		b := graph.NewBuilder(150, false)
		for i := 0; i < 500; i++ {
			u, v := rng.Intn(150), rng.Intn(150)
			if u != v {
				b.AddLabeledEdge(graph.V(u), graph.V(v), int32(1+rng.Intn(9)))
			}
		}
		g := b.Build()
		want := graph.Dijkstra(g, 0)
		got, _, _ := WeightedSSSP(g, 0, Config{Workers: 4})
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("seed %d vertex %d: pregel %d dijkstra %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestWeightedSSSPUnitWeightsEqualBFS(t *testing.T) {
	g := gen.ErdosRenyi(120, 360, 3) // unlabeled: weight defaults to 1
	want := graph.BFSLevels(g, 5)
	got, _, _ := WeightedSSSP(g, 5, Config{Workers: 4})
	for v := range want {
		w := int64(want[v])
		if got[v] != w {
			t.Fatalf("vertex %d: %d vs BFS %d", v, got[v], w)
		}
	}
}
