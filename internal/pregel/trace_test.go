package pregel

import (
	"strings"
	"testing"

	"graphsys/internal/cluster"
	"graphsys/internal/graph/gen"
)

// expectErr asserts that err is non-nil and mentions substr; the validation
// API returns errors from the exported entry points instead of panicking.
func expectErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestPartitionLengthValidated(t *testing.T) {
	g := gen.Grid(4, 4) // 16 vertices
	_, _, err := PageRank(g, 2, Config{Workers: 2, Partition: []int{0, 1, 0}})
	expectErr(t, err, "Partition has 3 entries")
}

func TestPartitionWorkerRangeValidated(t *testing.T) {
	g := gen.Grid(2, 2)
	bad := []int{0, 1, 7, 0} // worker 7 does not exist
	_, _, err := PageRank(g, 2, Config{Workers: 2, Partition: bad})
	expectErr(t, err, "Partition[2] = 7")
	neg := []int{0, -1, 0, 0}
	_, _, err = PageRank(g, 2, Config{Workers: 2, Partition: neg})
	expectErr(t, err, "Partition[1] = -1")
}

func TestRunCollectsTrace(t *testing.T) {
	g := gen.RMAT(8, 8, 3)
	_, res, err := PageRank(g, 5, Config{
		Workers: 4,
		RunOptions: cluster.RunOptions{
			Trace: true,
			Topology: func(net *cluster.Network) {
				cluster.RingTopology(net, 2, 0.05)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("Trace not collected")
	}
	if tr.Workers != 4 || len(tr.LinkBytes) != 4 || len(tr.WorkerBusySec) != 4 {
		t.Fatalf("trace shape wrong: workers=%d", tr.Workers)
	}
	if tr.Bytes != res.Net.Bytes || tr.Messages != res.Net.Messages {
		t.Fatalf("trace totals disagree with Result.Net: %d vs %d bytes", tr.Bytes, res.Net.Bytes)
	}
	// the matrix must account for every cross-worker byte
	var matBytes int64
	for i := range tr.LinkBytes {
		for j, b := range tr.LinkBytes[i] {
			if i == j && b != 0 {
				t.Fatal("diagonal of traffic matrix must be empty")
			}
			matBytes += b
		}
	}
	if matBytes != tr.Bytes {
		t.Fatalf("matrix sums to %d bytes, totals say %d", matBytes, tr.Bytes)
	}
	// one round per Exchange; the series must cover all metered rounds
	var seriesBytes int64
	for _, r := range tr.RoundSeries {
		seriesBytes += r.Bytes
	}
	if int64(len(tr.RoundSeries)) != tr.Rounds || seriesBytes != tr.Bytes {
		t.Fatalf("round series inconsistent: %d rounds, %d bytes", len(tr.RoundSeries), seriesBytes)
	}
	// intra-host links were set to cost 0.05, so weighted cost < raw bytes
	if tr.WeightedCost >= float64(tr.Bytes) {
		t.Fatalf("heterogeneous topology not applied: cost %f, bytes %d", tr.WeightedCost, tr.Bytes)
	}
}

func TestNoTraceByDefault(t *testing.T) {
	g := gen.Grid(3, 3)
	_, res, _ := PageRank(g, 2, Config{Workers: 2})
	if res.Trace != nil {
		t.Fatal("trace collected without Config.Trace")
	}
}
