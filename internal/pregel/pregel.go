// Package pregel implements a think-like-a-vertex (TLAV) graph-parallel
// engine in the style of Google's Pregel and Pregel+: bulk-synchronous
// supersteps, per-vertex compute functions, message passing with optional
// sender-side combiners, global aggregators, and vote-to-halt semantics.
//
// The engine runs on the metered cluster runtime, so every cross-worker
// message is accounted; the paper's point that TLAV systems suit iterative
// O((|V|+|E|)·log|V|) computations (and not subgraph search) is reproduced by
// the complexity and triangle-counting benchmarks built on this package.
package pregel

import (
	"fmt"
	"sync"

	"graphsys/internal/cluster"
	"graphsys/internal/det"
	"graphsys/internal/graph"
	"graphsys/internal/obs"
	"graphsys/internal/storage"
)

// Config controls an engine run.
type Config struct {
	Workers       int   // number of simulated workers (default 4)
	MaxSupersteps int   // safety bound (default 1000)
	Partition     []int // vertex → worker; nil = hash placement
	MsgBytes      int64 // metered wire size per message (default 8)

	// Source, if non-nil, serves adjacency through the out-of-core storage
	// layer: every worker reads Degree/Neighbors from its private
	// storage.GraphSource handle instead of the in-memory CSR, with disk I/O
	// metered into the trace. Run may then be called with a nil graph, in
	// which case Compute must reach adjacency only through the Context
	// (ctx.Degree / ctx.Neighbors / ctx.SendToNeighbors — ctx.Graph() is
	// nil). When Source is nil and the process-global storage policy
	// (storage.SetDefault) selects disk mode, the engine spills the graph to
	// a temporary block file and runs through it under the policy's memory
	// budget. The provider is not closed by Run.
	Source storage.Provider

	// Fault tolerance (LWCP-style lightweight checkpointing, Yan et al.
	// ICPP'19): every CheckpointEvery supersteps the engine snapshots vertex
	// states, activity flags and delivered messages, and a crash injected by
	// the runtime fault plan (RunOptions.Faults.CrashAtRound) rolls every
	// worker back to the latest checkpoint — or restarts when there is none —
	// and recomputes. StateBytes sizes the metered checkpoint volume
	// (default 8 bytes/vertex).
	CheckpointEvery int
	StateBytes      int64

	// Comms selects the engine's communication path. The zero value
	// CommsDense is the production path; the others exist as benchmark
	// baselines and equivalence oracles (cmd/benchengine). All three paths
	// produce bitwise-identical results; CommsDense and CommsMap also
	// produce identical network Stats.
	Comms CommsPath

	// RunOptions is the cross-cutting runtime configuration shared by every
	// engine: Trace (observability opt-in), Topology (link costs), Faults
	// (crash/straggler/lossy-link injection).
	cluster.RunOptions
}

// CommsPath selects the mailbox substrate and combiner addressing mode for a
// run (DESIGN.md §3.12).
type CommsPath int

const (
	// CommsDense (the default) runs on the staged substrate with the
	// combiner addressed by a dense []int32 slot table over destination-local
	// vertex ids — one array load per Send instead of a hash + map lookup.
	// Programs whose combining key space is not the destination vertex alone
	// (CombineKey != nil, e.g. quegel's per-query frontiers) fall back to
	// CommsMap addressing automatically.
	CommsDense CommsPath = iota
	// CommsMap runs on the staged substrate with the combiner addressed by a
	// per-destination hash map (the PR 4 path). Kept as the dominance
	// baseline for the dense path.
	CommsMap
	// CommsLegacy runs on the seed's per-message locked mailboxes with no
	// substrate combiner; the inbox is normalized receiver-side (stable sort
	// by sender rank + per-sender-run combining) so results stay bitwise
	// identical to the staged paths. Baseline and equivalence oracle only.
	CommsLegacy
)

func (c *Config) defaults(n int) {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 1000
	}
	if c.MsgBytes <= 0 {
		c.MsgBytes = 8
	}
	if c.Partition == nil {
		c.Partition = make([]int, n)
		for v := 0; v < n; v++ {
			h := uint64(v) * 0x9e3779b97f4a7c15
			c.Partition[v] = int(h % uint64(c.Workers))
		}
	}
}

// validate checks a user-supplied Partition up front, so a bad placement
// fails with a clear error instead of an opaque index panic mid-superstep.
func (c *Config) validate(n int) error {
	if len(c.Partition) != n {
		return fmt.Errorf("pregel: Config.Partition has %d entries for a graph with %d vertices", len(c.Partition), n)
	}
	for v, w := range c.Partition {
		if w < 0 || w >= c.Workers {
			return fmt.Errorf("pregel: Config.Partition[%d] = %d, want a worker id in [0,%d)", v, w, c.Workers)
		}
	}
	return nil
}

// Program defines a vertex program. S is the vertex state type, M the
// message type.
type Program[S, M any] struct {
	// Init produces the initial state of v. Called once before superstep 0.
	Init func(g *graph.Graph, v graph.V) S
	// Compute is called at every superstep for each active vertex (a vertex
	// is active in superstep 0, and whenever it has incoming messages).
	Compute func(ctx *Context[M], v graph.V, state *S, msgs []M)
	// Combine, if non-nil, merges two messages addressed to the same vertex
	// on the sender side (Pregel's combiner), cutting message volume. The
	// combiner runs inside the cluster substrate's staging buffers
	// (cluster.Mailboxes.SetCombiner), so combining happens as messages are
	// queued, before any of them is metered on the network.
	Combine func(a, b M) M
	// CombineKey, if non-nil, refines the combining granularity: only
	// messages to the same vertex with equal CombineKey(m) are merged. Quegel
	// uses it to combine per (vertex, query id) so concurrent queries'
	// frontiers never mix. The key's low 32 bits are used; leave nil to
	// combine all messages addressed to one vertex (classic Pregel).
	CombineKey func(m M) int32
}

// Context is the per-worker handle passed to Compute.
type Context[M any] struct {
	eng       engineIface[M]
	g         *graph.Graph
	src       storage.GraphSource // per-worker out-of-core handle (nil on in-memory runs)
	srcErr    error               // first adjacency read failure; checked at the superstep barrier
	worker    int
	superstep int
	halted    bool // set per vertex via VoteToHalt; reset by engine

	out       *cluster.Outbox[vmsg[M]]    // staged substrate handle (nil on CommsLegacy)
	lmb       *cluster.Mailboxes[lmsg[M]] // legacy substrate handle (nil on staged paths)
	partition []int

	aggLocal map[string]float64
}

// vmsg is the wire envelope of the staged paths: destination vertex and
// payload only. The sender's rank is implied by the staged outbox lane it
// travels in (cluster.Mailboxes merges lanes in sender-rank order), so
// carrying it per message would be 4 dead bytes on the hot path.
type vmsg[M any] struct {
	to graph.V
	m  M
}

// lmsg is the legacy oracle's envelope. The per-message locked mailboxes
// deliver in mutex-scheduling order, so the sender rank must ride along for
// normalizeLegacy to reconstruct the staged substrate's deterministic
// sender-rank inbox order receiver-side.
type lmsg[M any] struct {
	vm     vmsg[M]
	sender int32
}

type engineIface[M any] interface {
	aggPrev(name string) float64
}

// Superstep returns the current superstep number (0-based).
func (c *Context[M]) Superstep() int { return c.superstep }

// Graph returns the input graph. It is nil on Source-only runs (Config.Source
// set, Run called with a nil graph); programs meant to run out-of-core must
// use ctx.Degree / ctx.Neighbors / ctx.SendToNeighbors instead.
func (c *Context[M]) Graph() *graph.Graph { return c.g }

// Degree returns the out-degree of v, from the storage layer's resident
// degree table on out-of-core runs.
func (c *Context[M]) Degree(v graph.V) int {
	if c.src != nil {
		return c.src.Degree(v)
	}
	return c.g.Degree(v)
}

// Neighbors returns the sorted neighbor list of v, valid until the next
// adjacency access on this worker. On out-of-core runs a block decode
// failure records the error (surfaced by Run at the superstep barrier) and
// returns nil, so Compute code stays free of error plumbing.
func (c *Context[M]) Neighbors(v graph.V) []graph.V {
	if c.src != nil {
		ns, err := c.src.Neighbors(v)
		if err != nil && c.srcErr == nil {
			c.srcErr = err
		}
		return ns
	}
	return c.g.Neighbors(v)
}

// Send sends m to vertex to, delivered at the next superstep. The message
// goes straight into the sending worker's staging outbox — a lock-free
// append, combined on the fly when the program has a combiner (one slot-table
// load on the dense path, one map lookup on the map path).
func (c *Context[M]) Send(to graph.V, m M) {
	if c.out != nil {
		c.out.Send(c.partition[to], vmsg[M]{to: to, m: m})
		return
	}
	c.lmb.Send(c.worker, c.partition[to], lmsg[M]{vm: vmsg[M]{to: to, m: m}, sender: int32(c.worker)})
}

// SendToNeighbors sends m to every neighbor of v.
func (c *Context[M]) SendToNeighbors(v graph.V, m M) {
	for _, w := range c.Neighbors(v) {
		c.Send(w, m)
	}
}

// VoteToHalt deactivates the current vertex until a message re-activates it.
func (c *Context[M]) VoteToHalt() { c.halted = true }

// Aggregate adds v into the named float-sum aggregator; the total becomes
// readable via Agg in the NEXT superstep (Pregel semantics).
func (c *Context[M]) Aggregate(name string, v float64) {
	c.aggLocal[name] += v
}

// Agg returns the value of the named aggregator from the previous superstep.
func (c *Context[M]) Agg(name string) float64 { return c.eng.aggPrev(name) }

// Result of a run.
type Result[S any] struct {
	States     []S
	Supersteps int
	Net        cluster.Stats

	// Trace is the observability snapshot of the run (nil unless
	// Config.Trace was set).
	Trace *obs.Trace

	// Fault-tolerance accounting (zero unless Config enables it).
	CheckpointBytes int64 // total snapshot volume written
	Checkpoints     int   // snapshots taken
	RecoveredSteps  int   // supersteps recomputed after the injected failure
}

// Run executes prog on g until all vertices halt with no messages in flight,
// or cfg.MaxSupersteps is reached. It returns an error for an invalid Config
// (bad Partition) without starting the run. g may be nil when Config.Source
// is set (out-of-core run); adjacency then comes from per-worker storage
// handles and a mid-run read failure aborts with a wrapped storage error.
func Run[S, M any](g *graph.Graph, prog Program[S, M], cfg Config) (*Result[S], error) {
	if g == nil && cfg.Source == nil {
		return nil, fmt.Errorf("pregel: nil graph requires Config.Source")
	}
	n := 0
	if g != nil {
		n = g.NumVertices()
	} else {
		n = cfg.Source.NumVertices()
	}
	cfg.defaults(n)
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	prov := cfg.Source
	if prov == nil {
		if pol := storage.Default(); pol != nil && pol.Disk {
			sp, err := pol.Spill(g, cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("pregel: spilling graph under storage policy: %w", err)
			}
			defer sp.Close()
			prov = sp
		}
	}
	c := cluster.New(cfg.Workers)
	net := c.Network()
	fi := cfg.RunOptions.Apply(c)

	eng := &engine[S, M]{agg: map[string]float64{}}

	states := make([]S, n)
	active := make([]bool, n)
	owned := make([][]graph.V, cfg.Workers)
	localIdx := make([]int32, n) // global vertex → owner-local dense id
	for v := 0; v < n; v++ {
		p := cfg.Partition[v]
		localIdx[v] = int32(len(owned[p]))
		owned[p] = append(owned[p], graph.V(v))
	}
	// per-worker active-vertex counters, maintained at halt/reactivate time so
	// the per-superstep liveness check is O(workers), not O(n)
	activeCnt := make([]int64, cfg.Workers)

	// per-vertex message views into the delivery's flat buffers (only the
	// owner worker touches an entry)
	msgs := make([][]M, n)

	legacy := cfg.Comms == CommsLegacy
	var mb *cluster.Mailboxes[vmsg[M]]
	var lmb *cluster.Mailboxes[lmsg[M]]
	if legacy {
		lmb = cluster.NewMailboxesLegacy[lmsg[M]](net, func(lmsg[M]) int64 { return cfg.MsgBytes })
	} else {
		mb = cluster.NewMailboxes[vmsg[M]](net, func(vmsg[M]) int64 { return cfg.MsgBytes })
	}
	// combining key: destination vertex, refined by CombineKey when set. The
	// staged map path uses it sender-side; the legacy oracle uses it for
	// receiver-side normalization.
	key := func(vm vmsg[M]) int64 { return int64(vm.to) << 32 }
	if prog.CombineKey != nil {
		key = func(vm vmsg[M]) int64 {
			return int64(vm.to)<<32 | int64(uint32(prog.CombineKey(vm.m)))
		}
	}
	if prog.Combine != nil && !legacy {
		// hoist the program's combiner into the substrate, combining inside
		// the sender's staging buffer before anything reaches the wire
		combine := func(a, b vmsg[M]) vmsg[M] {
			return vmsg[M]{to: a.to, m: prog.Combine(a.m, b.m)}
		}
		if cfg.Comms == CommsDense && prog.CombineKey == nil {
			// dense path: combining classes are exactly the destination
			// vertices, so address them by owner-local dense id
			mb.SetDenseCombiner(
				func(dest int) int { return len(owned[dest]) },
				func(vm vmsg[M]) int { return int(localIdx[vm.to]) },
				combine,
			)
		} else {
			mb.SetCombiner(key, combine)
		}
	}
	exchange := func() int64 {
		if legacy {
			return lmb.Exchange()
		}
		return mb.Exchange()
	}
	dlv := newDelivery[M](owned, localIdx, legacy)

	// one long-lived Context per worker; superstep/halted are rewritten each
	// round and the aggregator map is cleared (never reallocated) after merge
	ctxs := make([]*Context[M], cfg.Workers)
	aggLocals := make([]map[string]float64, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		ctx := &Context[M]{
			eng: eng, g: g, worker: w,
			partition: cfg.Partition,
			aggLocal:  map[string]float64{},
		}
		if prov != nil {
			ctx.src = prov.Handle(w)
		}
		if legacy {
			ctx.lmb = lmb
		} else {
			ctx.out = mb.Outbox(w)
		}
		ctxs[w] = ctx
		aggLocals[w] = ctx.aggLocal
	}

	// the persistent gang replaces per-phase goroutine spawning: the phase
	// closures below are created once and reused every round, so dispatching
	// a superstep allocates nothing
	gang := c.NewGang()
	defer gang.Close()

	initPhase := func(w int) {
		for _, v := range owned[w] {
			if prog.Init != nil {
				states[v] = prog.Init(g, v)
			}
			active[v] = true
			msgs[v] = nil
		}
		activeCnt[w] = int64(len(owned[w]))
	}
	gang.Run(initPhase)

	if cfg.StateBytes <= 0 {
		cfg.StateBytes = 8
	}
	// LWCP checkpointing state
	type snapshot struct {
		step   int
		states []S
		active []bool
		msgs   [][]M
	}
	var ckpt *snapshot
	var ckptBytes int64
	var ckptCount int
	recovered := 0
	takeCheckpoint := func(step int) {
		s := &snapshot{step: step, states: append([]S(nil), states...), active: append([]bool(nil), active...)}
		s.msgs = make([][]M, n)
		var msgCount int64
		for v := range msgs {
			s.msgs[v] = append([]M(nil), msgs[v]...)
			msgCount += int64(len(msgs[v]))
		}
		ckpt = s
		bytes := int64(n)*cfg.StateBytes + msgCount*cfg.MsgBytes
		ckptBytes += bytes
		ckptCount++
		fi.NoteCheckpoint(bytes)
	}

	// the two hot-path phases, created once and reused every round; `step`
	// is published to the workers through the gang's mutex handoff
	step := 0
	//lint:hotpath per-round compute phase: one call per active vertex per superstep
	computePhase := func(w int) {
		ctx := ctxs[w]
		ctx.superstep = step
		cnt := activeCnt[w]
		for _, v := range owned[w] {
			if !active[v] {
				continue
			}
			ctx.halted = false
			prog.Compute(ctx, v, &states[v], msgs[v])
			// msgs[v] is a view into the delivery's flat buffer — drop it so
			// the buffer can be recycled next round
			msgs[v] = nil
			if ctx.halted {
				active[v] = false
				cnt--
			}
		}
		// outgoing messages are already staged in the worker's outbox;
		// Exchange at the barrier meters and delivers them. Aggregator
		// contributions land in the worker's own map — merging happens after
		// the barrier, in worker-rank order, so float sums are bitwise
		// identical run to run (merging under a mutex here would add in
		// worker-completion order, i.e. scheduling order).
		activeCnt[w] = cnt
	}
	//lint:hotpath per-round demux phase: groups every inbound message by destination
	demuxPhase := func(w int) {
		var stream []vmsg[M]
		if legacy {
			stream = dlv.normalizeLegacy(w, cfg.Workers, lmb.Receive(w), key, prog.Combine)
		} else {
			stream = mb.Receive(w)
		}
		activeCnt[w] += dlv.scatter(w, stream, msgs, active)
	}

	// aggNext and eng.agg are two maps swapped every round: merge into the
	// spare, publish it under the lock, clear the stale one for next round
	aggNext := map[string]float64{}

	// per-round disk I/O series for the trace (out-of-core runs only)
	var stRounds []obs.StorageRound
	var stPrev storage.IOStats
	meterStorage := prov != nil && prov.Footprint().Metered()
	collectRounds := meterStorage && cfg.RunOptions.Trace

	steps := 0
	for step = 0; step < cfg.MaxSupersteps; step++ {
		if cfg.CheckpointEvery > 0 && step%cfg.CheckpointEvery == 0 {
			takeCheckpoint(step)
		}
		if fi.CrashDue(step) {
			// a worker dies at the superstep barrier: roll every worker back
			// to the last checkpoint (synchronous recovery, the Pregel/LWCP
			// model)
			if ckpt != nil {
				copy(states, ckpt.states)
				copy(active, ckpt.active)
				for v := range msgs {
					// the snapshot's buffers are copied out, not aliased: the
					// flat delivery buffers still hold failed-epoch data and
					// will be recycled on the next demux
					if len(ckpt.msgs[v]) == 0 {
						msgs[v] = nil
					} else {
						msgs[v] = append([]M(nil), ckpt.msgs[v]...)
					}
				}
				for w := range owned {
					var cnt int64
					for _, v := range owned[w] {
						if active[v] {
							cnt++
						}
					}
					activeCnt[w] = cnt
				}
				recovered = step - ckpt.step
				exchange() // drop in-flight messages from the failed epoch
				step = ckpt.step
			} else {
				// no checkpoint: full restart
				recovered = step
				gang.Run(initPhase)
				exchange()
				step = 0
			}
			fi.NoteRecovery(recovered, float64(recovered))
		}
		steps = step + 1
		var totalActive int64
		for _, a := range activeCnt {
			totalActive += a
		}
		if totalActive == 0 {
			steps = step
			break
		}
		gang.Run(computePhase)
		for _, ctx := range ctxs {
			if ctx.srcErr != nil {
				return nil, fmt.Errorf("pregel: superstep %d: %w", step, ctx.srcErr)
			}
		}
		if collectRounds {
			cur := prov.Stats()
			d := cur.Sub(stPrev)
			stPrev = cur
			stRounds = append(stRounds, obs.StorageRound{
				Round: step, Hits: d.Hits, Misses: d.Misses, Evictions: d.Evictions,
				BlocksRead: d.BlocksRead, BytesRead: d.BytesRead,
			})
		}
		delivered := exchange()
		for _, local := range aggLocals { // ascending worker rank
			if len(local) == 0 {
				continue
			}
			for _, k := range det.SortedKeys(local) {
				aggNext[k] += local[k]
			}
			clear(local)
		}
		eng.mu.Lock()
		eng.agg, aggNext = aggNext, eng.agg
		eng.mu.Unlock()
		clear(aggNext) // last round's published values, now stale
		if delivered == 0 {
			// no messages: if nothing re-activates, engine can stop after
			// letting still-active vertices run next loop iteration
			var stillActive int64
			for _, a := range activeCnt {
				stillActive += a
			}
			if stillActive == 0 {
				break
			}
			continue
		}
		// demux into the columnar per-worker buffers and reactivate recipients
		gang.Run(demuxPhase)
	}
	res := &Result[S]{
		States: states, Supersteps: steps, Net: net.Stats(),
		CheckpointBytes: ckptBytes, Checkpoints: ckptCount, RecoveredSteps: recovered,
	}
	res.Trace = obs.Finish(cfg.RunOptions, "pregel", c)
	if res.Trace != nil && meterStorage {
		res.Trace.Storage = storageTrace(prov, stRounds)
	}
	return res, nil
}

// storageTrace assembles the obs storage section from a metered provider's
// footprint, run totals and the per-round series.
func storageTrace(prov storage.Provider, rounds []obs.StorageRound) *obs.StorageTrace {
	fp := prov.Footprint()
	st := prov.Stats()
	return &obs.StorageTrace{
		Kind:          fp.Kind,
		FileBytes:     fp.FileBytes,
		ResidentBytes: fp.ResidentBytes,
		CacheBytes:    fp.CacheBytes,
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		BlocksRead:    st.BlocksRead,
		BytesRead:     st.BytesRead,
		HitRatio:      st.HitRatio(),
		Rounds:        rounds,
	}
}

type engine[S, M any] struct {
	mu  sync.Mutex
	agg map[string]float64
}

func (e *engine[S, M]) aggPrev(name string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.agg[name]
}
