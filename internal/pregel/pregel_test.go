package pregel

import (
	"math"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func TestPageRankUniformOnRegularGraph(t *testing.T) {
	// On a k-regular graph (ring), PageRank is uniform = 1/n.
	n := 20
	b := graph.NewBuilder(n, false)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.V(i), graph.V((i+1)%n))
	}
	g := b.Build()
	ranks, _, _ := PageRank(g, 30, Config{Workers: 4})
	for v, r := range ranks {
		if math.Abs(r-1.0/float64(n)) > 1e-9 {
			t.Fatalf("rank[%d]=%g want %g", v, r, 1.0/float64(n))
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	ranks, _, _ := PageRank(g, 25, Config{Workers: 3})
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %g", sum)
	}
}

func TestPageRankFavorsHubs(t *testing.T) {
	// star graph: center must outrank leaves
	n := 11
	b := graph.NewBuilder(n, false)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.V(i))
	}
	g := b.Build()
	ranks, _, _ := PageRank(g, 30, Config{Workers: 2})
	for i := 1; i < n; i++ {
		if ranks[0] <= ranks[i] {
			t.Fatalf("center rank %g <= leaf rank %g", ranks[0], ranks[i])
		}
	}
}

func TestHashMinCCMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(200, 220, seed) // sparse → several components
		want, wantCount := graph.ConnectedComponents(g)
		got, _, _ := HashMinCC(g, Config{Workers: 4})
		// compare partitions: same component iff same label
		seen := map[int32]bool{}
		for _, l := range got {
			seen[l] = true
		}
		if len(seen) != wantCount {
			t.Fatalf("seed %d: %d components, want %d", seed, len(seen), wantCount)
		}
		for u := 0; u < 200; u++ {
			for v := u + 1; v < 200; v++ {
				if (want[u] == want[v]) != (got[u] == got[v]) {
					t.Fatalf("seed %d: vertices %d,%d disagree", seed, u, v)
				}
			}
		}
	}
}

func TestHashMinCCRoundsNearDiameter(t *testing.T) {
	// a path of length L needs ~L supersteps; a random graph needs few.
	g := gen.ErdosRenyi(500, 2000, 9)
	_, res, _ := HashMinCC(g, Config{Workers: 4})
	if res.Supersteps > 20 {
		t.Fatalf("HashMin took %d supersteps on a dense random graph", res.Supersteps)
	}
}

func TestSSSPMatchesBFS(t *testing.T) {
	g := gen.ErdosRenyi(150, 400, 4)
	want := graph.BFSLevels(g, 0)
	got, _, _ := SSSP(g, 0, Config{Workers: 4})
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("dist[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestTriangleCountMRMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(80, 500, seed)
		want := graph.TriangleCount(g)
		got, _, _ := TriangleCountMR(g, Config{Workers: 4})
		if got != want {
			t.Fatalf("seed %d: MR=%d serial=%d", seed, got, want)
		}
	}
}

func TestTriangleCountMRMessageBlowup(t *testing.T) {
	// The MR algorithm's message count equals the wedge count (after
	// orientation) — far more than the edge count on dense graphs. This is
	// the paper's §1 criticism in miniature.
	g := gen.Clique(30)
	_, res, _ := TriangleCountMR(g, Config{Workers: 4})
	if res.Net.Messages+res.Net.LocalMessages < 2*g.NumEdges() {
		t.Fatalf("expected wedge-scale message volume, got %d msgs for %d edges",
			res.Net.Messages+res.Net.LocalMessages, g.NumEdges())
	}
}

func TestRandomWalkVisits(t *testing.T) {
	g := gen.Clique(10)
	visits, _, _ := RandomWalkVisits(g, 4, 5, 7, Config{Workers: 2})
	var total int64
	for _, c := range visits {
		total += c
	}
	// each of the 10*4 walkers visits exactly walkLen+1 vertices on a clique
	want := int64(10 * 4 * 6)
	if total != want {
		t.Fatalf("total visits %d want %d", total, want)
	}
}

func TestRandomWalkDeterminism(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 3)
	a, _, _ := RandomWalkVisits(g, 2, 8, 42, Config{Workers: 4})
	b, _, _ := RandomWalkVisits(g, 2, 8, 42, Config{Workers: 2})
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("visits differ at %d with different worker counts: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := gen.Grid(4, 4)
	d, _ := DegreeCentrality(g, Config{Workers: 2})
	for v := graph.V(0); int(v) < g.NumVertices(); v++ {
		if d[v] != float64(g.Degree(v)) {
			t.Fatalf("degree[%d]=%f", v, d[v])
		}
	}
}

func TestCombinerReducesMessages(t *testing.T) {
	g := gen.Clique(40)
	_, withComb, _ := HashMinCC(g, Config{Workers: 4})
	// same algorithm without a combiner
	prog := Program[int32, int32]{
		Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
		Compute: func(ctx *Context[int32], v graph.V, state *int32, msgs []int32) {
			min := *state
			if ctx.Superstep() == 0 {
				ctx.SendToNeighbors(v, min)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				if m < min {
					min = m
				}
			}
			if min < *state {
				*state = min
				ctx.SendToNeighbors(v, min)
			}
			ctx.VoteToHalt()
		},
	}
	res, _ := Run(g, prog, Config{Workers: 4})
	msgsNoComb := res.Net.Messages
	if withComb.Net.Messages >= msgsNoComb {
		t.Fatalf("combiner did not reduce messages: %d vs %d", withComb.Net.Messages, msgsNoComb)
	}
}

func TestAggregator(t *testing.T) {
	g := gen.Grid(3, 3)
	sawTotal := false
	prog := Program[int, int]{
		Compute: func(ctx *Context[int], v graph.V, state *int, msgs []int) {
			switch ctx.Superstep() {
			case 0:
				ctx.Aggregate("deg", float64(ctx.Graph().Degree(v)))
				ctx.Send(v, 1) // keep self alive for one more step
			case 1:
				if got := ctx.Agg("deg"); got == float64(2*g.NumEdges()) {
					sawTotal = true
				} else if got != 0 {
					t.Errorf("agg = %f want %f", got, float64(2*g.NumEdges()))
				}
				ctx.VoteToHalt()
			}
		},
	}
	Run(g, prog, Config{Workers: 1}) // single worker: no data race on sawTotal
	if !sawTotal {
		t.Fatal("aggregator value never observed")
	}
}

func TestMaxSuperstepsBound(t *testing.T) {
	// a program that never halts must stop at MaxSupersteps
	g := gen.Grid(2, 2)
	prog := Program[int, int]{
		Compute: func(ctx *Context[int], v graph.V, state *int, msgs []int) {
			ctx.Send(v, 1)
		},
	}
	res, _ := Run(g, prog, Config{Workers: 2, MaxSupersteps: 7})
	if res.Supersteps != 7 {
		t.Fatalf("ran %d supersteps, want 7", res.Supersteps)
	}
}

func TestEmptyGraphRun(t *testing.T) {
	g := graph.NewBuilder(0, false).Build()
	ranks, res, _ := PageRank(g, 5, Config{Workers: 2})
	if len(ranks) != 0 || res.Supersteps != 0 {
		t.Fatalf("empty run: %d states, %d steps", len(ranks), res.Supersteps)
	}
}

func TestCustomPartitionRespected(t *testing.T) {
	g := gen.Grid(4, 4)
	part := make([]int, 16)
	for v := range part {
		part[v] = v % 2
	}
	_, res, _ := HashMinCC(g, Config{Workers: 2, Partition: part})
	if res.Net.Messages == 0 {
		t.Fatal("expected cross-worker messages under split partition")
	}
}
