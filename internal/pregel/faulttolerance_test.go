package pregel

import (
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

func TestCheckpointRecoveryCorrectness(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, 1)
	want, _ := HashMinCC(g, Config{Workers: 4})
	// same run with a failure at step 3, recovering from checkpoints every 2
	prog := ccProgram()
	res := Run(g, prog, Config{Workers: 4, CheckpointEvery: 2, FailAtStep: 3})
	for v := range want {
		if want[v] != res.States[v] {
			t.Fatalf("vertex %d: %d vs %d after recovery", v, res.States[v], want[v])
		}
	}
	if res.Checkpoints == 0 || res.CheckpointBytes == 0 {
		t.Fatal("no checkpoints recorded")
	}
	if res.RecoveredSteps != 1 { // failed at 3, last checkpoint at 2
		t.Fatalf("recovered %d steps, want 1", res.RecoveredSteps)
	}
}

func TestRecoveryWithoutCheckpointRestarts(t *testing.T) {
	g := gen.ErdosRenyi(150, 450, 2)
	want, _ := HashMinCC(g, Config{Workers: 4})
	prog := ccProgram()
	res := Run(g, prog, Config{Workers: 4, FailAtStep: 3}) // no checkpoints
	for v := range want {
		if want[v] != res.States[v] {
			t.Fatalf("vertex %d wrong after full restart", v)
		}
	}
	if res.RecoveredSteps != 3 {
		t.Fatalf("full restart should recompute 3 steps, got %d", res.RecoveredSteps)
	}
}

func TestCheckpointFrequencyTradeoff(t *testing.T) {
	g := gen.ErdosRenyi(300, 1200, 3)
	prog := ccProgram()
	frequent := Run(g, prog, Config{Workers: 4, CheckpointEvery: 1, FailAtStep: 4})
	sparse := Run(g, prog, Config{Workers: 4, CheckpointEvery: 4, FailAtStep: 5})
	// frequent checkpointing writes more but recomputes less — LWCP's trade
	if frequent.CheckpointBytes <= sparse.CheckpointBytes {
		t.Fatalf("frequent ckpt bytes %d not above sparse %d",
			frequent.CheckpointBytes, sparse.CheckpointBytes)
	}
	if frequent.RecoveredSteps > sparse.RecoveredSteps {
		t.Fatalf("frequent ckpt recomputed %d > sparse %d",
			frequent.RecoveredSteps, sparse.RecoveredSteps)
	}
}

func TestNoFaultToleranceOverheadWhenDisabled(t *testing.T) {
	g := gen.Grid(10, 10)
	res := Run(g, ccProgram(), Config{Workers: 2})
	if res.Checkpoints != 0 || res.CheckpointBytes != 0 || res.RecoveredSteps != 0 {
		t.Fatalf("accounting nonzero with FT disabled: %+v", res)
	}
}

// ccProgram is HashMin CC as a raw program (shared by the FT tests).
func ccProgram() Program[int32, int32] {
	return Program[int32, int32]{
		Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
		Compute: func(ctx *Context[int32], v graph.V, state *int32, msgs []int32) {
			min := *state
			if ctx.Superstep() == 0 {
				ctx.SendToNeighbors(v, min)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				if m < min {
					min = m
				}
			}
			if min < *state {
				*state = min
				ctx.SendToNeighbors(v, min)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
	}
}
