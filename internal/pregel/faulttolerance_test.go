package pregel

import (
	"testing"

	"graphsys/internal/cluster"
	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

// crashAt is shorthand for a fault plan that kills a worker at round r.
func crashAt(r int) cluster.RunOptions {
	return cluster.RunOptions{Faults: &cluster.FaultPlan{CrashAtRound: r}}
}

func TestCheckpointRecoveryCorrectness(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, 1)
	want, _, _ := HashMinCC(g, Config{Workers: 4})
	// same run with a failure at step 3, recovering from checkpoints every 2
	prog := ccProgram()
	res, err := Run(g, prog, Config{Workers: 4, CheckpointEvery: 2, RunOptions: crashAt(3)})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if want[v] != res.States[v] {
			t.Fatalf("vertex %d: %d vs %d after recovery", v, res.States[v], want[v])
		}
	}
	if res.Checkpoints == 0 || res.CheckpointBytes == 0 {
		t.Fatal("no checkpoints recorded")
	}
	if res.RecoveredSteps != 1 { // failed at 3, last checkpoint at 2
		t.Fatalf("recovered %d steps, want 1", res.RecoveredSteps)
	}
}

// TestPageRankCrashRecoveryMatchesFaultFree checks the floating-point
// workload too: a crash-and-rollback run must land on the fault-free ranks.
// (Unlike HashMin's order-independent min, PageRank sums float messages in
// arrival order, which varies across runs by a few ulps — hence the epsilon.)
func TestPageRankCrashRecoveryMatchesFaultFree(t *testing.T) {
	g := gen.RMAT(9, 8, 4)
	want, _, _ := PageRank(g, 15, Config{Workers: 4})
	got, res, err := PageRank(g, 15, Config{Workers: 4, CheckpointEvery: 3,
		RunOptions: cluster.RunOptions{Trace: true, Faults: &cluster.FaultPlan{CrashAtRound: 7, CrashWorker: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if d := got[v] - want[v]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("vertex %d: %v vs %v after recovery", v, got[v], want[v])
		}
	}
	if res.RecoveredSteps != 1 { // crashed at 7, checkpoint at 6
		t.Fatalf("recovered %d steps, want 1", res.RecoveredSteps)
	}
	if r := res.Trace.Recovery; r == nil || r.Crashes != 1 || r.Checkpoints == 0 {
		t.Fatalf("recovery stats not exported: %+v", r)
	}
}

func TestRecoveryWithoutCheckpointRestarts(t *testing.T) {
	g := gen.ErdosRenyi(150, 450, 2)
	want, _, _ := HashMinCC(g, Config{Workers: 4})
	prog := ccProgram()
	res, _ := Run(g, prog, Config{Workers: 4, RunOptions: crashAt(3)}) // no checkpoints
	for v := range want {
		if want[v] != res.States[v] {
			t.Fatalf("vertex %d wrong after full restart", v)
		}
	}
	if res.RecoveredSteps != 3 {
		t.Fatalf("full restart should recompute 3 steps, got %d", res.RecoveredSteps)
	}
}

func TestCheckpointFrequencyTradeoff(t *testing.T) {
	g := gen.ErdosRenyi(300, 1200, 3)
	prog := ccProgram()
	frequent, _ := Run(g, prog, Config{Workers: 4, CheckpointEvery: 1, RunOptions: crashAt(4)})
	sparse, _ := Run(g, prog, Config{Workers: 4, CheckpointEvery: 4, RunOptions: crashAt(5)})
	// frequent checkpointing writes more but recomputes less — LWCP's trade
	if frequent.CheckpointBytes <= sparse.CheckpointBytes {
		t.Fatalf("frequent ckpt bytes %d not above sparse %d",
			frequent.CheckpointBytes, sparse.CheckpointBytes)
	}
	if frequent.RecoveredSteps > sparse.RecoveredSteps {
		t.Fatalf("frequent ckpt recomputed %d > sparse %d",
			frequent.RecoveredSteps, sparse.RecoveredSteps)
	}
}

func TestNoFaultToleranceOverheadWhenDisabled(t *testing.T) {
	g := gen.Grid(10, 10)
	res, _ := Run(g, ccProgram(), Config{Workers: 2})
	if res.Checkpoints != 0 || res.CheckpointBytes != 0 || res.RecoveredSteps != 0 {
		t.Fatalf("accounting nonzero with FT disabled: %+v", res)
	}
}

// ccProgram is HashMin CC as a raw program (shared by the FT tests).
func ccProgram() Program[int32, int32] {
	return Program[int32, int32]{
		Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
		Compute: func(ctx *Context[int32], v graph.V, state *int32, msgs []int32) {
			min := *state
			if ctx.Superstep() == 0 {
				ctx.SendToNeighbors(v, min)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				if m < min {
					min = m
				}
			}
			if min < *state {
				*state = min
				ctx.SendToNeighbors(v, min)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
	}
}
