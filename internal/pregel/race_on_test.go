//go:build race

package pregel

// raceEnabled lets allocation-sensitive tests skip under the race detector,
// whose instrumentation allocates on paths that are allocation-free in
// normal builds.
const raceEnabled = true
