package pregel

import (
	"math"

	"graphsys/internal/graph"
)

// PageRank runs iters supersteps of damped PageRank (d=0.85) and returns the
// per-vertex ranks. It is the canonical "vertex analytics" scoring workload
// of Figure 1's path 1 (object ranking / biomolecule prioritisation). It is
// source-capable: with cfg.Source set, g may be nil and adjacency comes from
// the out-of-core storage layer.
func PageRank(g *graph.Graph, iters int, cfg Config) ([]float64, *Result[float64], error) {
	nv := 0
	if g != nil {
		nv = g.NumVertices()
	} else if cfg.Source != nil {
		nv = cfg.Source.NumVertices()
	}
	n := float64(nv)
	const d = 0.85
	prog := Program[float64, float64]{
		Init: func(g *graph.Graph, v graph.V) float64 { return 1 / n },
		Compute: func(ctx *Context[float64], v graph.V, state *float64, msgs []float64) {
			if ctx.Superstep() > 0 {
				sum := 0.0
				for _, m := range msgs {
					sum += m
				}
				*state = (1-d)/n + d*sum
			}
			if ctx.Superstep() < iters {
				deg := ctx.Degree(v)
				if deg > 0 {
					ctx.SendToNeighbors(v, *state/float64(deg))
				}
			} else {
				ctx.VoteToHalt()
			}
		},
		Combine: func(a, b float64) float64 { return a + b },
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.States, res, nil
}

// HashMinCC computes connected components with the HashMin label-propagation
// algorithm: every vertex repeatedly adopts the minimum id seen in its
// neighborhood. It converges in O(graph diameter) supersteps — the
// O(log |V|)-round regime where the paper says TLAV systems shine.
func HashMinCC(g *graph.Graph, cfg Config) ([]int32, *Result[int32], error) {
	prog := Program[int32, int32]{
		Init: func(g *graph.Graph, v graph.V) int32 { return int32(v) },
		Compute: func(ctx *Context[int32], v graph.V, state *int32, msgs []int32) {
			min := *state
			if ctx.Superstep() == 0 {
				ctx.SendToNeighbors(v, min)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				if m < min {
					min = m
				}
			}
			if min < *state {
				*state = min
				ctx.SendToNeighbors(v, min)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.States, res, nil
}

// SSSP computes hop distances from source (unweighted shortest paths) with
// message-pruned Bellman–Ford. Unreachable vertices get -1.
func SSSP(g *graph.Graph, source graph.V, cfg Config) ([]int32, *Result[int32], error) {
	const inf = math.MaxInt32
	prog := Program[int32, int32]{
		Init: func(g *graph.Graph, v graph.V) int32 {
			if v == source {
				return 0
			}
			return inf
		},
		Compute: func(ctx *Context[int32], v graph.V, state *int32, msgs []int32) {
			best := *state
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if best < *state || (ctx.Superstep() == 0 && v == source) {
				*state = best
				ctx.SendToNeighbors(v, best+1)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	out := make([]int32, len(res.States))
	for i, d := range res.States {
		if d == inf {
			out[i] = -1
		} else {
			out[i] = d
		}
	}
	res.States = out
	return out, res, nil
}

// TriangleCountMR counts triangles the way the MapReduce/TLAV algorithm the
// paper's introduction criticises does: every vertex materialises its wedges
// as messages (one per wedge) and the apex's neighbor closes them. Its
// message volume is Σ_v C(d⁺(v),2) — the quadratic blow-up that makes the
// 1636-machine MapReduce job slower than a 1-core merge-based counter
// (Chu & Cheng). Compare with graph.TriangleCount.
func TriangleCountMR(g *graph.Graph, cfg Config) (int64, *Result[int64], error) {
	type wedge = int64 // packed (w) id to test; target vertex implicit
	prog := Program[int64, wedge]{
		Compute: func(ctx *Context[wedge], v graph.V, state *int64, msgs []wedge) {
			switch ctx.Superstep() {
			case 0:
				// send each wedge (v;u,w), u<w, deg-ordered, to u for closing
				ns := ctx.Graph().Neighbors(v)
				var outs []graph.V
				for _, u := range ns {
					if degLess(ctx.Graph(), v, u) {
						outs = append(outs, u)
					}
				}
				for i := 0; i < len(outs); i++ {
					for j := i + 1; j < len(outs); j++ {
						ctx.Send(outs[i], wedge(outs[j]))
					}
				}
				ctx.VoteToHalt()
			case 1:
				for _, m := range msgs {
					if ctx.Graph().HasEdge(v, graph.V(m)) {
						*state++
					}
				}
				ctx.VoteToHalt()
			}
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return 0, nil, err
	}
	var total int64
	for _, s := range res.States {
		total += s
	}
	return total, res, nil
}

// degLess orders vertices by (degree, id) — the orientation used by ordered
// triangle counting.
func degLess(g *graph.Graph, a, b graph.V) bool {
	da, db := g.Degree(a), g.Degree(b)
	if da != db {
		return da < db
	}
	return a < b
}

// RandomWalkVisits runs walksPerVertex random walkers of length walkLen from
// every vertex and returns per-vertex visit counts — a TLAV "random walk"
// workload (the basis of DeepWalk-style sampling and PPR scoring). Walkers
// move as messages; randomness is a deterministic hash of (walker, step).
func RandomWalkVisits(g *graph.Graph, walksPerVertex, walkLen int, seed int64, cfg Config) ([]int64, *Result[int64], error) {
	type walker struct {
		id   int64
		step int32
	}
	prog := Program[int64, walker]{
		Compute: func(ctx *Context[walker], v graph.V, state *int64, msgs []walker) {
			forward := func(wk walker) {
				if int(wk.step) >= walkLen {
					return
				}
				ns := ctx.Graph().Neighbors(v)
				if len(ns) == 0 {
					return
				}
				r := splitmix64(uint64(seed) ^ uint64(wk.id)*0x9e3779b97f4a7c15 ^ uint64(wk.step)<<32)
				next := ns[r%uint64(len(ns))]
				ctx.Send(next, walker{wk.id, wk.step + 1})
			}
			if ctx.Superstep() == 0 {
				for k := 0; k < walksPerVertex; k++ {
					*state++ // walk visits its start
					forward(walker{id: int64(v)*1_000_003 + int64(k), step: 0})
				}
				ctx.VoteToHalt()
				return
			}
			for _, wk := range msgs {
				*state++
				forward(wk)
			}
			ctx.VoteToHalt()
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.States, res, nil
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DegreeCentrality is the trivial one-superstep vertex analytics (used by
// pipelines needing a fast scoring pass).
func DegreeCentrality(g *graph.Graph, cfg Config) ([]float64, error) {
	prog := Program[float64, struct{}]{
		Init: func(g *graph.Graph, v graph.V) float64 { return float64(g.Degree(v)) },
		Compute: func(ctx *Context[struct{}], v graph.V, state *float64, msgs []struct{}) {
			ctx.VoteToHalt()
		},
	}
	res, err := Run(g, prog, cfg)
	if err != nil {
		return nil, err
	}
	return res.States, nil
}
