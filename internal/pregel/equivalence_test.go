package pregel

import (
	"fmt"
	"math"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

// allComms are the three communication paths a run can take; every test in
// this file holds them to the same answers.
var allComms = []struct {
	name string
	path CommsPath
}{
	{"dense", CommsDense},
	{"map", CommsMap},
	{"legacy", CommsLegacy},
}

// TestPageRankBitwiseAcrossCommsPaths: the dense-slot, map-keyed and legacy
// paths must produce bitwise-identical ranks at every worker count. This is
// the strong form of the equivalence claim — PageRank folds floats, so any
// difference in message order or combining structure between the paths shows
// up as a bit flip. Dense and map must additionally produce identical network
// Stats (same combined message counts); legacy sends uncombined messages, so
// only its results are compared.
func TestPageRankBitwiseAcrossCommsPaths(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base, rbase, err := PageRank(g, 12, Config{Workers: workers, Comms: CommsDense})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range allComms[1:] {
				got, r, err := PageRank(g, 12, Config{Workers: workers, Comms: c.path})
				if err != nil {
					t.Fatal(err)
				}
				for v := range base {
					if got[v] != base[v] {
						t.Fatalf("%s: rank[%d] = %v, dense says %v", c.name, v, got[v], base[v])
					}
				}
				if r.Supersteps != rbase.Supersteps {
					t.Fatalf("%s: %d supersteps, dense ran %d", c.name, r.Supersteps, rbase.Supersteps)
				}
				if c.path == CommsMap && r.Net != rbase.Net {
					t.Fatalf("map stats diverge from dense:\n%+v\n%+v", r.Net, rbase.Net)
				}
			}
		})
	}
}

// TestHashMinCCBitwiseAcrossCommsPaths: same contract for an int-min program.
func TestHashMinCCBitwiseAcrossCommsPaths(t *testing.T) {
	g := gen.BarabasiAlbert(400, 2, 11)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base, rbase, err := HashMinCC(g, Config{Workers: workers, Comms: CommsDense})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range allComms[1:] {
				got, r, err := HashMinCC(g, Config{Workers: workers, Comms: c.path})
				if err != nil {
					t.Fatal(err)
				}
				for v := range base {
					if got[v] != base[v] {
						t.Fatalf("%s: label[%d] = %d, dense says %d", c.name, v, got[v], base[v])
					}
				}
				if c.path == CommsMap && r.Net != rbase.Net {
					t.Fatalf("map stats diverge from dense:\n%+v\n%+v", r.Net, rbase.Net)
				}
			}
		})
	}
}

// uncombined strips the combiner off a program, forcing every raw message
// onto the wire and through the demux.
func uncombined[S, M any](p Program[S, M]) Program[S, M] {
	p.Combine = nil
	p.CombineKey = nil
	return p
}

// pageRankProg mirrors PageRank's program so the tests can strip its
// combiner; keep in sync with algorithms.go.
func pageRankProg(n float64, iters int) Program[float64, float64] {
	const d = 0.85
	return Program[float64, float64]{
		Init: func(_ *graph.Graph, _ graph.V) float64 { return 1 / n },
		Compute: func(ctx *Context[float64], v graph.V, state *float64, msgs []float64) {
			if ctx.Superstep() > 0 {
				sum := 0.0
				for _, m := range msgs {
					sum += m
				}
				*state = (1-d)/n + d*sum
			}
			if ctx.Superstep() < iters {
				if deg := ctx.Graph().Degree(v); deg > 0 {
					ctx.SendToNeighbors(v, *state/float64(deg))
				}
			} else {
				ctx.VoteToHalt()
			}
		},
		Combine: func(a, b float64) float64 { return a + b },
	}
}

// hashMinProg mirrors HashMinCC's program; keep in sync with algorithms.go.
func hashMinProg() Program[int32, int32] {
	return Program[int32, int32]{
		Init: func(_ *graph.Graph, v graph.V) int32 { return int32(v) },
		Compute: func(ctx *Context[int32], v graph.V, state *int32, msgs []int32) {
			min := *state
			if ctx.Superstep() == 0 {
				ctx.SendToNeighbors(v, min)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				if m < min {
					min = m
				}
			}
			if min < *state {
				*state = min
				ctx.SendToNeighbors(v, min)
			}
			ctx.VoteToHalt()
		},
		Combine: func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		},
	}
}

// TestNoCombinerEquivalence: with the combiner stripped, the staged and
// legacy substrates still deliver messages in the identical order (ascending
// sender rank, send order within a sender — the legacy path recovers it by
// receiver-side sorting), so even float-summing programs stay bitwise equal
// across paths. For the order-insensitive HashMinCC min-fold, the uncombined
// answer must also equal the combined one exactly; for PageRank the combined
// fold has a different float grouping, so it is compared within an epsilon.
func TestNoCombinerEquivalence(t *testing.T) {
	g := gen.RMAT(9, 6, 7)
	n := float64(g.NumVertices())
	const iters = 10
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func(p CommsPath) []float64 {
				res, err := Run(g, uncombined(pageRankProg(n, iters)), Config{Workers: workers, Comms: p})
				if err != nil {
					t.Fatal(err)
				}
				return res.States
			}
			base := run(CommsDense)
			for _, c := range allComms[1:] {
				got := run(c.path)
				for v := range base {
					if got[v] != base[v] {
						t.Fatalf("uncombined pagerank, %s: rank[%d] = %v, dense says %v", c.name, v, got[v], base[v])
					}
				}
			}
			combined, _, err := PageRank(g, iters, Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for v := range base {
				if math.Abs(combined[v]-base[v]) > 1e-12 {
					t.Fatalf("combined rank[%d] = %v, uncombined %v — beyond reassociation noise", v, combined[v], base[v])
				}
			}

			ccRes, err := Run(g, uncombined(hashMinProg()), Config{Workers: workers, MaxSupersteps: 100000})
			if err != nil {
				t.Fatal(err)
			}
			ccCombined, _, err := HashMinCC(g, Config{Workers: workers, MaxSupersteps: 100000})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range allComms[1:] {
				got, err := Run(g, uncombined(hashMinProg()), Config{Workers: workers, MaxSupersteps: 100000, Comms: c.path})
				if err != nil {
					t.Fatal(err)
				}
				for v := range ccRes.States {
					if got.States[v] != ccRes.States[v] {
						t.Fatalf("uncombined cc, %s: label[%d] differs from dense", c.name, v)
					}
				}
			}
			for v := range ccRes.States {
				if ccRes.States[v] != ccCombined[v] {
					t.Fatalf("uncombined cc label[%d] = %d, combined %d — min-fold must be order-insensitive", v, ccRes.States[v], ccCombined[v])
				}
			}
		})
	}
}

// TestSteadyStateAllocsPerRound: a steady-state PageRank superstep on the
// dense path must allocate (almost) nothing. Measured differentially — two
// runs on the same graph differing only in superstep count — so setup costs
// (graph, buffers, gang) cancel and only the per-round increment remains.
func TestSteadyStateAllocsPerRound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the hot path")
	}
	g := gen.RMAT(9, 8, 5)
	run := func(iters int) {
		if _, _, err := PageRank(g, iters, Config{Workers: 4}); err != nil {
			t.Fatal(err)
		}
	}
	const short, long = 10, 60
	aShort := testing.AllocsPerRun(3, func() { run(short) })
	aLong := testing.AllocsPerRun(3, func() { run(long) })
	perRound := (aLong - aShort) / float64(long-short)
	if math.IsNaN(perRound) || perRound > 2 {
		t.Fatalf("steady-state supersteps allocate %.2f allocs/round, want ≤ 2 (short=%v long=%v)", perRound, aShort, aLong)
	}
	t.Logf("steady-state PageRank: %.3f allocs/round", perRound)
}
