package pregel

import (
	"fmt"
	"testing"

	"graphsys/internal/graph/gen"
)

// TestPageRankBitwiseDeterministicAcrossRuns: on the staged substrate,
// message delivery order is a deterministic function of the workload (sender
// rank, then send order), so even float-summing programs like PageRank are
// bitwise reproducible run-to-run at every worker count. Before the staged
// substrate this did not hold: combined messages were flushed in Go map
// iteration order, so inbox order — and therefore float accumulation order —
// varied between runs.
func TestPageRankBitwiseDeterministicAcrossRuns(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			a, ra, err := PageRank(g, 12, Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			b, rb, err := PageRank(g, 12, Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("rank[%d] differs between identical runs: %v vs %v", v, a[v], b[v])
				}
			}
			if ra.Net != rb.Net {
				t.Fatalf("network stats differ between identical runs:\n%+v\n%+v", ra.Net, rb.Net)
			}
		})
	}
}

// TestHashMinCCExactAcrossWorkerCounts: order-insensitive programs must give
// identical answers at any worker count on the staged substrate.
func TestHashMinCCExactAcrossWorkerCounts(t *testing.T) {
	g := gen.BarabasiAlbert(400, 2, 11)
	base, _, err := HashMinCC(g, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		labels, _, err := HashMinCC(g, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for v := range labels {
			if labels[v] != base[v] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", workers, v, labels[v], base[v])
			}
		}
	}
}
