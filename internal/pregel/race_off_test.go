//go:build !race

package pregel

// raceEnabled lets allocation-sensitive tests skip under the race detector.
const raceEnabled = false
