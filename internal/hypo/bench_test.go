package hypo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// healthyKernels mirrors the committed BENCH_kernels.json shape.
func healthyKernels(smoke bool) *KernelsReport {
	return &KernelsReport{
		GeneratedBy: "cmd/benchkernels", GOMAXPROCS: 1, Smoke: smoke,
		Kernels: []Kernel{
			{Name: "matmul_256", SerialNsOp: 8e6, ParallelNsOp: 8e6, SerialAllocsOp: 1, ParallelAllocsOp: 1},
			{Name: "normadj_apply_rmat15", SerialNsOp: 2e7, ParallelNsOp: 2e7, SerialAllocsOp: 0, ParallelAllocsOp: 0},
			{Name: "train_epoch_gcn", SerialNsOp: 3e5, ParallelNsOp: 3e5, SerialAllocsOp: 19, ParallelAllocsOp: 19},
		},
	}
}

func healthyComms(smoke bool) *CommsReport {
	return &CommsReport{
		GeneratedBy: "cmd/benchcomms", GOMAXPROCS: 1, Smoke: smoke,
		Rows: []CommsRow{
			{Workers: 1, LegacyMsgSec: 24e6, StagedMsgSec: 200e6, Speedup: 8.1},
			{Workers: 4, LegacyMsgSec: 24e6, StagedMsgSec: 150e6, Speedup: 6.3},
			{Workers: 8, LegacyMsgSec: 24e6, StagedMsgSec: 140e6, Speedup: 5.8},
		},
		Check: map[string]any{"identical": true},
	}
}

func TestBenchGatesPassOnHealthyRun(t *testing.T) {
	cfg := DefaultGateConfig()
	hs := BenchGates(healthyKernels(true), healthyKernels(false), healthyComms(true), healthyComms(false), cfg)
	rep := Run("bench-check", hs)
	if !rep.Pass() {
		var sbuf []byte
		sbuf, _ = json.MarshalIndent(rep, "", " ")
		t.Fatalf("healthy run must pass:\n%s", sbuf)
	}
}

// TestInjectedAllocRegressionFails is the gate's negative proof: a scratch
// baseline whose allocs/op are >20% below the fresh run's (i.e. the fresh
// run regressed by more than the band) must fail the gate.
func TestInjectedAllocRegressionFails(t *testing.T) {
	baseline := healthyKernels(false)
	for i := range baseline.Kernels {
		if baseline.Kernels[i].Name == "train_epoch_gcn" {
			// Scratch baseline claims 10 allocs/op; fresh measures 19 —
			// a 90% regression, far over the 20%+slack band.
			baseline.Kernels[i].SerialAllocsOp = 10
			baseline.Kernels[i].ParallelAllocsOp = 10
		}
	}
	rep := Run("bench-check", KernelGates(healthyKernels(true), baseline, DefaultGateConfig()))
	if rep.Pass() {
		t.Fatal("a >20% alloc regression vs the baseline must fail the gate")
	}
	if got := rep.Failed(); len(got) != 1 || got[0] != "kernels-allocs" {
		t.Fatalf("Failed() = %v, want [kernels-allocs]", got)
	}
}

// TestInjectedSpeedupRegressionFails injects a comms regression: the scratch
// baseline claims a 3× higher speedup than the fresh run retains, blowing
// through the 50% cross-machine band.
func TestInjectedSpeedupRegressionFails(t *testing.T) {
	baseline := healthyComms(false)
	for i := range baseline.Rows {
		baseline.Rows[i].Speedup *= 3
	}
	rep := Run("bench-check", CommsGates(healthyComms(true), baseline, DefaultGateConfig()))
	if rep.Pass() {
		t.Fatal("losing >50% of baseline speedup must fail the gate")
	}
	if got := rep.Failed(); len(got) != 1 || got[0] != "comms-speedup-vs-baseline" {
		t.Fatalf("Failed() = %v", got)
	}
}

func TestStagedDominanceGate(t *testing.T) {
	fresh := healthyComms(true)
	fresh.Rows[2].StagedMsgSec = fresh.Rows[2].LegacyMsgSec * 2 // only 2×: below the 3× claim
	rep := Run("bench-check", CommsGates(fresh, healthyComms(false), DefaultGateConfig()))
	if rep.Pass() {
		t.Fatal("a worker count where staged drops under 3× legacy must refute the dominance claim")
	}
}

func TestAccountingGate(t *testing.T) {
	fresh := healthyComms(true)
	fresh.Check["identical"] = false
	rep := Run("bench-check", CommsGates(fresh, healthyComms(false), DefaultGateConfig()))
	if rep.Pass() {
		t.Fatal("diverged accounting must fail")
	}
}

func TestEpochAllocBound(t *testing.T) {
	fresh := healthyKernels(true)
	for i := range fresh.Kernels {
		if fresh.Kernels[i].Name == "train_epoch_gcn" {
			fresh.Kernels[i].ParallelAllocsOp = 146 // the growth-seed value
		}
	}
	// Baseline also degraded, so the relative gate is quiet — the absolute
	// ≤25 bound must still catch it.
	baseline := healthyKernels(false)
	for i := range baseline.Kernels {
		if baseline.Kernels[i].Name == "train_epoch_gcn" {
			baseline.Kernels[i].ParallelAllocsOp = 146
		}
	}
	rep := Run("bench-check", KernelGates(fresh, baseline, DefaultGateConfig()))
	if rep.Pass() {
		t.Fatal("146 allocs/op must fail the ≤25 epoch bound even if the baseline drifted too")
	}
	found := false
	for _, id := range rep.Failed() {
		if id == "gcn-epoch-allocs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Failed() = %v, want gcn-epoch-allocs among them", rep.Failed())
	}
}

func TestKernelCoverageGate(t *testing.T) {
	fresh := healthyKernels(true)
	fresh.Kernels[0].Name = "matmul_512" // renamed: baseline row no longer found
	rep := Run("bench-check", KernelGates(fresh, healthyKernels(false), DefaultGateConfig()))
	if rep.Pass() {
		t.Fatal("a renamed kernel must fail coverage instead of silently dropping its gate")
	}
}

func TestReadReportsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	kp := filepath.Join(dir, "k.json")
	cp := filepath.Join(dir, "c.json")
	kb, _ := json.Marshal(healthyKernels(true))
	cb, _ := json.Marshal(healthyComms(true))
	if err := os.WriteFile(kp, kb, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cp, cb, 0o644); err != nil {
		t.Fatal(err)
	}
	k, err := ReadKernelsReport(kp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Kernel("train_epoch_gcn"); !ok {
		t.Fatal("kernel lookup failed after round-trip")
	}
	c, err := ReadCommsReport(cp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Row(8); !ok {
		t.Fatal("row lookup failed after round-trip")
	}
	if _, err := ReadKernelsReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestCommittedBaselinesParse pins the schema against the real committed
// reports: if a bench command changes its JSON shape without updating the
// shared schema, this fails before CI's bench-check does.
func TestCommittedBaselinesParse(t *testing.T) {
	root := filepath.Join("..", "..")
	k, err := ReadKernelsReport(filepath.Join(root, "BENCH_kernels.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Kernels) == 0 || k.GeneratedBy != "cmd/benchkernels" {
		t.Fatalf("kernels baseline parsed oddly: %+v", k)
	}
	c, err := ReadCommsReport(filepath.Join(root, "BENCH_comms.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 3 || c.GeneratedBy != "cmd/benchcomms" {
		t.Fatalf("comms baseline parsed oddly: %+v", c)
	}
	rep := Run("bench-check", BenchGates(k, k, c, c, DefaultGateConfig()))
	if !rep.Pass() {
		t.Fatalf("committed baselines must pass their own gates: %v", rep.Failed())
	}
}
