package hypo

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestType1AllFindingsMustPass(t *testing.T) {
	h := Hypothesis{
		ID: "inv", Claim: "invariant holds", Type: Deterministic,
		Check: func() []Finding {
			return []Finding{
				{Label: "a", Pass: true},
				{Label: "b", Pass: false, Got: "broke"},
			}
		},
	}
	rep := Run("t1", []Hypothesis{h})
	if rep.Pass() {
		t.Fatal("one failing finding must fail the hypothesis")
	}
	if got := rep.Failed(); len(got) != 1 || got[0] != "inv" {
		t.Fatalf("Failed() = %v", got)
	}
}

func TestType1PassingRun(t *testing.T) {
	rep := Run("t1", []Hypothesis{{
		ID: "ok", Type: Deterministic,
		Check: func() []Finding { return []Finding{{Label: "x", Pass: true}} },
	}})
	if !rep.Pass() {
		t.Fatalf("expected pass, got %+v", rep.Outcomes)
	}
}

func TestType2DirectionalConsistency(t *testing.T) {
	// 2 of 3 seeds show a strong effect; one contradicts. Per the standard,
	// one contradicting seed refutes the hypothesis.
	effects := map[int64]float64{42: 3.0, 123: 2.5, 456: 1.1}
	h := Hypothesis{
		ID: "dom", Claim: "A beats B by >20%", Type: Statistical,
		Measure: func(seed int64) (Sample, error) {
			return Sample{Baseline: 100, Treatment: 100 * effects[seed]}, nil
		},
	}
	rep := Run("t2", []Hypothesis{h})
	if rep.Pass() {
		t.Fatal("a contradicting seed must refute the hypothesis")
	}
	o := rep.Outcomes[0]
	if o.EffectMin != 1.1 || o.EffectMax != 3.0 {
		t.Fatalf("effect min/max = %v/%v", o.EffectMin, o.EffectMax)
	}
	if o.MinEffect != DefaultMinEffect {
		t.Fatalf("default MinEffect = %v", o.MinEffect)
	}
}

func TestType2LowerIsBetter(t *testing.T) {
	h := Hypothesis{
		ID: "lat", Claim: "latency ≥20% lower", Type: Statistical, LowerIsBetter: true,
		Measure: func(seed int64) (Sample, error) {
			return Sample{Baseline: 100, Treatment: 50}, nil // halved: effect 2.0
		},
	}
	rep := Run("t2", []Hypothesis{h})
	if !rep.Pass() {
		t.Fatalf("expected pass: %+v", rep.Outcomes[0])
	}
	if rep.Outcomes[0].EffectMean != 2.0 {
		t.Fatalf("effect mean = %v, want 2.0", rep.Outcomes[0].EffectMean)
	}
}

func TestType2RequiresThreeSeeds(t *testing.T) {
	h := Hypothesis{
		ID: "few", Type: Statistical, Seeds: []int64{1, 2},
		Measure: func(int64) (Sample, error) { return Sample{1, 2}, nil },
	}
	rep := Run("t2", []Hypothesis{h})
	if rep.Pass() {
		t.Fatal("a 2-seed statistical hypothesis must be rejected")
	}
	if !strings.Contains(rep.Outcomes[0].Err, "≥3 seeds") {
		t.Fatalf("err = %q", rep.Outcomes[0].Err)
	}
}

func TestMalformedHypothesesFail(t *testing.T) {
	rep := Run("bad", []Hypothesis{
		{ID: "no-check", Type: Deterministic},
		{ID: "no-measure", Type: Statistical},
		{ID: "no-type"},
	})
	if rep.Pass() {
		t.Fatal("malformed hypotheses must fail, not pass vacuously")
	}
	if len(rep.Failed()) != 3 {
		t.Fatalf("Failed() = %v", rep.Failed())
	}
}

func TestEffectZeroDenominator(t *testing.T) {
	if e := effect(Sample{Baseline: 0, Treatment: 5}, false); !math.IsInf(e, 1) {
		t.Fatalf("effect with zero baseline = %v, want +Inf", e)
	}
	if e := effect(Sample{Baseline: 0, Treatment: 0}, false); e != 1 {
		t.Fatalf("0/0 effect = %v, want 1", e)
	}
}

func TestWriteDirArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	rep := Run("artifacts", []Hypothesis{
		{
			ID: "det", Claim: "c", Type: Deterministic,
			Check: func() []Finding { return []Finding{{Label: "x", Pass: true, Got: "42"}} },
		},
		{
			ID: "stat", Claim: "s", Type: Statistical, Unit: "msgs/sec",
			Measure: func(seed int64) (Sample, error) { return Sample{Baseline: 1, Treatment: 2}, nil },
		},
	})
	if err := rep.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	// results.json round-trips
	data, err := os.ReadFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "artifacts" || len(back.Outcomes) != 2 || !back.Pass() {
		t.Fatalf("round-trip report = %+v", back)
	}
	// results.csv has a header plus one row per finding (1 + 3 seeds)
	cf, err := os.Open(filepath.Join(dir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	recs, err := csv.NewReader(cf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+1+3 {
		t.Fatalf("csv rows = %d, want 5", len(recs))
	}
	if recs[0][0] != "hypothesis" {
		t.Fatalf("csv header = %v", recs[0])
	}
}

func TestFprintReportsVerdict(t *testing.T) {
	var sb strings.Builder
	rep := Run("print", []Hypothesis{{
		ID: "bad", Claim: "fails", Type: Deterministic,
		Check: func() []Finding { return []Finding{{Label: "l", Pass: false, Got: "nope"}} },
	}})
	rep.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"FAIL", "bad", "nope"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
