package hypo

import (
	"fmt"
	"math/rand"

	"graphsys/internal/serve"
)

// This file owns the BENCH_serving.json schema (written by cmd/benchserving,
// re-read by cmd/benchcheck) and the serving-tier gates. Unlike the kernel
// and comms benches, the serving sweep runs on the deterministic logical-time
// simulator (serve.Simulate): its numbers are a pure function of the params,
// identical on every machine, so the gate demands EXACT equality between the
// fresh run and the committed baseline — any drift is a behaviour change in
// the scheduler, the load generator, or the simulator, never noise.

// ServingParams pins the sweep's workload. The benchmark writer and the
// regression gate both measure through MeasureServingPoint, so a drifting
// parameter cannot silently decouple them.
type ServingParams struct {
	Seed          int64     `json:"seed"`
	Queries       int       `json:"queries"`        // arrivals per sweep point
	Workers       int       `json:"workers"`        // capacity: work units per tick
	QueueLimit    int       `json:"queue_limit"`    // admission bound (0 = unbounded)
	DeadlineTicks int64     `json:"deadline_ticks"` // per-query SLO (0 = none)
	Lambdas       []float64 `json:"lambdas"`        // offered loads, arrivals/tick
	LightMin      int64     `json:"light_min"`      // bimodal size mix: light range,
	LightMax      int64     `json:"light_max"`      // heavy range, heavy probability
	HeavyMin      int64     `json:"heavy_min"`
	HeavyMax      int64     `json:"heavy_max"`
	PHeavy        float64   `json:"p_heavy"`
}

// DefaultServingParams is the committed sweep: a mostly-light bimodal mix
// (mean cost ≈ 5.4 units) against 4 units/tick of capacity, so saturation
// sits near λ ≈ 0.74 and the last two lambdas are past it.
func DefaultServingParams() ServingParams {
	return ServingParams{
		Seed:          42,
		Queries:       2000,
		Workers:       4,
		QueueLimit:    32,
		DeadlineTicks: 500,
		Lambdas:       []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6},
		LightMin:      1, LightMax: 4,
		HeavyMin: 40, HeavyMax: 80,
		PHeavy: 0.05,
	}
}

func (p ServingParams) sizer() serve.Sizer {
	return serve.Bimodal{
		Light:  serve.Uniform{Min: p.LightMin, Max: p.LightMax},
		Heavy:  serve.Uniform{Min: p.HeavyMin, Max: p.HeavyMax},
		PHeavy: p.PHeavy,
	}
}

// OverloadLambda is the sweep's highest offered load — the beyond-saturation
// point the shedding and dominance gates read.
func (p ServingParams) OverloadLambda() float64 {
	var m float64
	for _, l := range p.Lambdas {
		if l > m {
			m = l
		}
	}
	return m
}

// ServingPoint is one (policy, offered-load) cell of BENCH_serving.json.
type ServingPoint struct {
	Policy    string  `json:"policy"`
	Lambda    float64 `json:"lambda"`
	Offered   int     `json:"offered"`
	Completed int     `json:"completed"`
	Rejected  int     `json:"rejected"`
	Expired   int     `json:"expired"`
	P50       int64   `json:"p50_ticks"`
	P99       int64   `json:"p99_ticks"`
	Goodput   float64 `json:"goodput_per_kilotick"`
	TraceHash string  `json:"trace_hash"` // fnv64a of the full outcome trace
}

// ServingReport is the BENCH_serving.json document.
type ServingReport struct {
	GeneratedBy string         `json:"generated_by"`
	Smoke       bool           `json:"smoke"`
	Note        string         `json:"note"`
	Params      ServingParams  `json:"params"`
	Points      []ServingPoint `json:"points"`
}

// Point returns the cell for a policy and offered load, if present.
func (r *ServingReport) Point(policy string, lambda float64) (ServingPoint, bool) {
	for _, pt := range r.Points {
		if pt.Policy == policy && pt.Lambda == lambda {
			return pt, true
		}
	}
	return ServingPoint{}, false
}

// ReadServingReport parses a BENCH_serving.json file.
func ReadServingReport(path string) (*ServingReport, error) {
	var r ServingReport
	if err := readJSON(path, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// MeasureServingPoint runs one (policy, offered-load, seed) cell: a seeded
// open-loop Poisson workload through the deterministic serving simulator.
// Identical inputs produce an identical point on any machine.
func MeasureServingPoint(p ServingParams, policy serve.Policy, lambda float64, seed int64) (ServingPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	arr, err := serve.PoissonArrivals(rng, p.Queries, lambda, p.sizer())
	if err != nil {
		return ServingPoint{}, err
	}
	res, err := serve.Simulate(serve.SimConfig{
		Workers:    p.Workers,
		Policy:     policy,
		QueueLimit: p.QueueLimit,
		Deadline:   p.DeadlineTicks,
		Arrivals:   arr,
	})
	if err != nil {
		return ServingPoint{}, err
	}
	lat := res.CompletedLatencies()
	return ServingPoint{
		Policy:    policy.String(),
		Lambda:    lambda,
		Offered:   p.Queries,
		Completed: res.Completed,
		Rejected:  res.Rejected,
		Expired:   res.Expired,
		P50:       serve.Percentile(lat, 50),
		P99:       serve.Percentile(lat, 99),
		Goodput:   res.Goodput(1000),
		TraceHash: res.TraceHash(),
	}, nil
}

// ServingGates builds the hypotheses comparing a fresh serving report against
// the committed baseline.
func ServingGates(fresh, baseline *ServingReport, cfg GateConfig) []Hypothesis {
	return []Hypothesis{
		{
			ID: "serving-determinism",
			Claim: "every reported point reproduces exactly when re-simulated from its params " +
				"(same seed ⇒ byte-identical outcome trace)",
			Type: Deterministic,
			Check: func() []Finding {
				var fs []Finding
				for _, pt := range fresh.Points {
					pol, err := serve.ParsePolicy(pt.Policy)
					if err != nil {
						fs = append(fs, Finding{Label: pt.Policy, Pass: false, Got: err.Error()})
						continue
					}
					got, err := MeasureServingPoint(fresh.Params, pol, pt.Lambda, fresh.Params.Seed)
					if err != nil {
						fs = append(fs, Finding{Label: cellLabel(pt), Pass: false, Got: err.Error()})
						continue
					}
					fs = append(fs, Finding{
						Label: cellLabel(pt),
						Pass:  got == pt,
						Got:   fmt.Sprintf("recomputed hash %s vs reported %s", got.TraceHash, pt.TraceHash),
					})
				}
				if len(fs) == 0 {
					fs = append(fs, Finding{Label: "points", Pass: false, Got: "fresh report has no points"})
				}
				return fs
			},
		},
		{
			ID: "serving-baseline-exact",
			Claim: "the logical-time sweep matches the committed baseline cell for cell " +
				"(deterministic simulation: any drift is a scheduler behaviour change)",
			Type: Deterministic,
			Check: func() []Finding {
				var fs []Finding
				if fmt.Sprintf("%+v", fresh.Params) != fmt.Sprintf("%+v", baseline.Params) {
					fs = append(fs, Finding{Label: "params", Pass: false,
						Got: fmt.Sprintf("fresh %+v vs baseline %+v", fresh.Params, baseline.Params)})
				}
				for _, bpt := range baseline.Points {
					fpt, ok := fresh.Point(bpt.Policy, bpt.Lambda)
					if !ok {
						fs = append(fs, Finding{Label: cellLabel(bpt), Pass: false, Got: "missing from fresh report"})
						continue
					}
					fs = append(fs, Finding{
						Label: cellLabel(bpt),
						Pass:  fpt == bpt,
						Got: fmt.Sprintf("fresh p50/p99=%d/%d hash=%s, baseline p50/p99=%d/%d hash=%s",
							fpt.P50, fpt.P99, fpt.TraceHash, bpt.P50, bpt.P99, bpt.TraceHash),
					})
				}
				if len(baseline.Points) == 0 {
					fs = append(fs, Finding{Label: "points", Pass: false, Got: "baseline has no points"})
				}
				return fs
			},
		},
		{
			ID: "srw-goodput-dominance",
			Claim: fmt.Sprintf("beyond saturation, shortest-remaining-work sustains ≥%.1f× FIFO goodput "+
				"(SRPT completes the light tail instead of queueing it behind heavy queries)", cfg.MinServingEffect),
			Type:      Statistical,
			Unit:      "completions/kilotick",
			MinEffect: cfg.MinServingEffect,
			Measure: func(seed int64) (Sample, error) {
				lambda := fresh.Params.OverloadLambda()
				fifo, err := MeasureServingPoint(fresh.Params, serve.FIFO, lambda, seed)
				if err != nil {
					return Sample{}, err
				}
				srw, err := MeasureServingPoint(fresh.Params, serve.ShortestRemaining, lambda, seed)
				if err != nil {
					return Sample{}, err
				}
				return Sample{Baseline: fifo.Goodput, Treatment: srw.Goodput}, nil
			},
		},
		{
			ID: "serving-overload-sheds",
			Claim: "beyond saturation every policy sheds load (metered rejections > 0) instead of " +
				"queueing without bound, and goodput does not collapse below half its sweep peak",
			Type: Deterministic,
			Check: func() []Finding {
				var fs []Finding
				lambda := fresh.Params.OverloadLambda()
				for _, pol := range serve.Policies {
					over, ok := fresh.Point(pol.String(), lambda)
					if !ok {
						fs = append(fs, Finding{Label: pol.String(), Pass: false,
							Got: fmt.Sprintf("no point at λ=%.2f", lambda)})
						continue
					}
					var peak float64
					for _, pt := range fresh.Points {
						if pt.Policy == pol.String() && pt.Goodput > peak {
							peak = pt.Goodput
						}
					}
					pass := over.Rejected > 0 && over.Goodput >= peak/2
					fs = append(fs, Finding{
						Label: pol.String(),
						Pass:  pass,
						Got: fmt.Sprintf("λ=%.2f: rejected=%d goodput=%.1f (peak %.1f)",
							lambda, over.Rejected, over.Goodput, peak),
					})
				}
				return fs
			},
		},
	}
}

func cellLabel(pt ServingPoint) string {
	return fmt.Sprintf("%s@%.2f", pt.Policy, pt.Lambda)
}
