// Package hypo is the repo's hypothesis-driven experiment harness: every
// quantitative claim an experiment or benchmark makes is declared as a typed
// hypothesis and machine-checked, instead of living as a prose note nobody
// re-reads. The taxonomy follows the BLIS experiment standards the survey's
// evaluation-methodology discussion calls for (see DESIGN.md §3.10):
//
//   - Type 1 (deterministic): exact invariants — bitwise equality,
//     conservation laws, monotone orderings. One run suffices; a single
//     failing check is ALWAYS a bug, never noise.
//   - Type 2 (statistical): metric comparisons whose values vary by seed.
//     At least three seeded samples, an explicit effect-size threshold
//     (default >20%), and directional consistency: the predicted direction
//     must hold in EVERY sample — one contradicting seed refutes the claim.
//
// A Report is the pass/fail artifact of running a hypothesis set; WriteDir
// persists it as results.json + results.csv in a per-run folder so CI and
// later analysis read the same bytes the gate decided on.
package hypo

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Type classifies a hypothesis per the Type 1 / Type 2 taxonomy.
type Type int

const (
	// Deterministic (Type 1): exact properties; failure is always a bug.
	Deterministic Type = 1
	// Statistical (Type 2): seeded metric comparisons with an effect-size
	// threshold and directional consistency across all samples.
	Statistical Type = 2
)

func (t Type) String() string {
	switch t {
	case Deterministic:
		return "type1-deterministic"
	case Statistical:
		return "type2-statistical"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// DefaultSeeds is the standard Type-2 seed set (per the BLIS standard:
// minimum three seeds, fixed so reruns are comparable).
var DefaultSeeds = []int64{42, 123, 456}

// DefaultMinEffect is the default Type-2 effect-size threshold: the
// treatment must improve on the baseline by more than 20% in every sample.
const DefaultMinEffect = 1.2

// Finding is one elementary observation: a single deterministic check, or
// one seeded sample of a statistical comparison.
type Finding struct {
	// Label identifies the configuration checked (a table row, a seed, a
	// worker count).
	Label string `json:"label"`
	Pass  bool   `json:"pass"`
	// Got describes the observed value(s), for humans and the CSV artifact.
	Got string `json:"got,omitempty"`
	// Baseline/Treatment/Effect are set for statistical samples: Effect is
	// the directional improvement ratio (≥1 means the predicted direction).
	Baseline  float64 `json:"baseline,omitempty"`
	Treatment float64 `json:"treatment,omitempty"`
	Effect    float64 `json:"effect,omitempty"`
}

// Sample is one seeded measurement of a Type-2 comparison.
type Sample struct {
	Baseline  float64 // the reference configuration's metric
	Treatment float64 // the claimed-better configuration's metric
}

// Hypothesis declares one machine-checkable claim.
//
// Type 1 hypotheses set Check: it returns one finding per configuration
// verified; the hypothesis passes iff every finding passes.
//
// Type 2 hypotheses set Measure (+ optionally Seeds, MinEffect,
// LowerIsBetter): Measure is run once per seed, the effect size
// treatment/baseline (or baseline/treatment when LowerIsBetter) must reach
// MinEffect in every sample.
type Hypothesis struct {
	ID    string
	Claim string // the prose claim being checked, e.g. "staged ≥3× legacy msgs/sec"
	Type  Type

	// Check implements a Type-1 invariant. All findings must pass.
	Check func() []Finding

	// Measure implements a Type-2 comparison for one seed.
	Measure func(seed int64) (Sample, error)
	// Seeds defaults to DefaultSeeds. Fewer than 3 seeds is rejected.
	Seeds []int64
	// MinEffect is the required effect-size ratio in every sample
	// (default DefaultMinEffect = 1.2, i.e. >20%). Use 1.0 for bound
	// claims ("metric stays ≤ baseline").
	MinEffect float64
	// LowerIsBetter inverts the effect ratio: the treatment metric is
	// claimed to be LOWER than the baseline (latency, bytes, allocs).
	LowerIsBetter bool
	// Unit annotates the metric in artifacts (msgs/sec, allocs/op, steps).
	Unit string
}

// Outcome is the evaluated result of one hypothesis.
type Outcome struct {
	ID       string    `json:"id"`
	Claim    string    `json:"claim"`
	Type     string    `json:"type"`
	Pass     bool      `json:"pass"`
	Err      string    `json:"error,omitempty"`
	Unit     string    `json:"unit,omitempty"`
	Findings []Finding `json:"findings"`
	// Effect summary across samples (Type 2 only): min/mean/max of the
	// directional improvement ratio, and the threshold it was held to.
	EffectMin  float64 `json:"effect_min,omitempty"`
	EffectMean float64 `json:"effect_mean,omitempty"`
	EffectMax  float64 `json:"effect_max,omitempty"`
	MinEffect  float64 `json:"min_effect,omitempty"`
}

// Report is the result of running a hypothesis set.
type Report struct {
	Name     string    `json:"name"`
	Outcomes []Outcome `json:"outcomes"`
}

// Pass reports whether every hypothesis passed.
func (r *Report) Pass() bool {
	for _, o := range r.Outcomes {
		if !o.Pass {
			return false
		}
	}
	return true
}

// Failed returns the ids of failing hypotheses, in report order.
func (r *Report) Failed() []string {
	var ids []string
	for _, o := range r.Outcomes {
		if !o.Pass {
			ids = append(ids, o.ID)
		}
	}
	return ids
}

// Run evaluates every hypothesis and returns the report. A malformed
// hypothesis (no Check/Measure, or a Type-2 with fewer than 3 seeds) is
// reported as a failing outcome rather than a panic: a broken gate must
// fail the gate.
func Run(name string, hs []Hypothesis) *Report {
	rep := &Report{Name: name}
	for _, h := range hs {
		rep.Outcomes = append(rep.Outcomes, eval(h))
	}
	return rep
}

func eval(h Hypothesis) Outcome {
	o := Outcome{ID: h.ID, Claim: h.Claim, Type: h.Type.String(), Unit: h.Unit}
	switch h.Type {
	case Deterministic:
		if h.Check == nil {
			o.Err = "type-1 hypothesis has no Check"
			return o
		}
		o.Findings = h.Check()
		if len(o.Findings) == 0 {
			o.Err = "type-1 check produced no findings"
			return o
		}
		o.Pass = true
		for _, f := range o.Findings {
			if !f.Pass {
				o.Pass = false
			}
		}
		return o
	case Statistical:
		if h.Measure == nil {
			o.Err = "type-2 hypothesis has no Measure"
			return o
		}
		seeds := h.Seeds
		if seeds == nil {
			seeds = DefaultSeeds
		}
		if len(seeds) < 3 {
			o.Err = fmt.Sprintf("type-2 hypothesis needs ≥3 seeds, got %d", len(seeds))
			return o
		}
		minEffect := h.MinEffect
		if minEffect == 0 {
			minEffect = DefaultMinEffect
		}
		o.MinEffect = minEffect
		o.Pass = true
		var sum float64
		o.EffectMin = math.Inf(1)
		o.EffectMax = math.Inf(-1)
		for _, seed := range seeds {
			s, err := h.Measure(seed)
			if err != nil {
				o.Pass = false
				o.Err = fmt.Sprintf("seed %d: %v", seed, err)
				o.Findings = append(o.Findings, Finding{Label: fmt.Sprintf("seed=%d", seed), Pass: false, Got: err.Error()})
				continue
			}
			eff := effect(s, h.LowerIsBetter)
			pass := eff >= minEffect
			if !pass {
				o.Pass = false // directional consistency: one contradicting seed refutes
			}
			sum += eff
			o.EffectMin = math.Min(o.EffectMin, eff)
			o.EffectMax = math.Max(o.EffectMax, eff)
			o.Findings = append(o.Findings, Finding{
				Label: fmt.Sprintf("seed=%d", seed), Pass: pass,
				Baseline: s.Baseline, Treatment: s.Treatment, Effect: eff,
				Got: fmt.Sprintf("baseline=%g treatment=%g effect=%.3fx (need ≥%.2fx)", s.Baseline, s.Treatment, eff, minEffect),
			})
		}
		if n := len(o.Findings); n > 0 {
			o.EffectMean = sum / float64(n)
		}
		if math.IsInf(o.EffectMin, 1) {
			o.EffectMin, o.EffectMax = 0, 0
		}
		return o
	default:
		o.Err = fmt.Sprintf("unknown hypothesis type %d", int(h.Type))
		return o
	}
}

// effect computes the directional improvement ratio: how many times better
// the treatment is than the baseline in the predicted direction. A zero
// denominator with a nonzero numerator counts as an unbounded improvement.
func effect(s Sample, lowerIsBetter bool) float64 {
	num, den := s.Treatment, s.Baseline
	if lowerIsBetter {
		num, den = s.Baseline, s.Treatment
	}
	if den == 0 {
		if num == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return num / den
}

// Fprint renders the report as an aligned pass/fail table for terminals and
// CI step logs.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "hypothesis run %q: %d hypotheses\n", r.Name, len(r.Outcomes))
	for _, o := range r.Outcomes {
		status := "PASS"
		if !o.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %-28s %-20s %s\n", status, o.ID, o.Type, o.Claim)
		if o.Err != "" {
			fmt.Fprintf(w, "         error: %s\n", o.Err)
		}
		for _, f := range o.Findings {
			if f.Pass && o.Pass {
				continue // details only for failures (and all, when the hypothesis failed)
			}
			mark := "ok"
			if !f.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(w, "         %-4s %-18s %s\n", mark, f.Label, f.Got)
		}
		if o.Type == Statistical.String() && len(o.Findings) > 0 && o.Err == "" {
			fmt.Fprintf(w, "         effect min/mean/max = %.3f/%.3f/%.3f (threshold %.2f)\n",
				o.EffectMin, o.EffectMean, o.EffectMax, o.MinEffect)
		}
	}
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL: " + strings.Join(r.Failed(), ", ")
	}
	fmt.Fprintf(w, "hypothesis run %q: %s\n", r.Name, verdict)
}
