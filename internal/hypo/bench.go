package hypo

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file owns the BENCH_*.json schema (written by cmd/benchkernels and
// cmd/benchcomms, re-read by cmd/benchcheck) and the regression gates that
// compare a fresh smoke run against the committed full-run baselines.
//
// Gate philosophy: absolute wall times are machine properties and are never
// compared across files. What IS comparable everywhere:
//   - allocs/op — deterministic allocator behaviour, tight 20% band
//   - within-run ratios (staged vs legacy msgs/sec in the SAME process) —
//     the substrate's headline claim, checked as a Type-2 dominance
//     hypothesis over the worker-count samples
//   - the speedup ratio vs the committed baseline — with a wide documented
//     band, since core counts differ across machines
//   - exact accounting equivalence — Type 1, staged and legacy Stats match

// SeedBaseline is a growth-seed measurement embedded in a kernel report.
type SeedBaseline struct {
	NsOp     int64 `json:"ns_op"`
	AllocsOp int64 `json:"allocs_op"`
	BytesOp  int64 `json:"bytes_op"`
}

// Kernel is one kernel row of BENCH_kernels.json.
type Kernel struct {
	Name             string        `json:"name"`
	Workload         string        `json:"workload"`
	SerialNsOp       int64         `json:"serial_ns_op"`
	ParallelNsOp     int64         `json:"parallel_ns_op"`
	Speedup          float64       `json:"speedup"`
	SerialAllocsOp   int64         `json:"serial_allocs_op"`
	ParallelAllocsOp int64         `json:"parallel_allocs_op"`
	BytesOp          int64         `json:"bytes_op"`
	Seed             *SeedBaseline `json:"seed_baseline,omitempty"`
}

// KernelsReport is the BENCH_kernels.json document.
type KernelsReport struct {
	GeneratedBy string   `json:"generated_by"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Smoke       bool     `json:"smoke"`
	Note        string   `json:"note"`
	Kernels     []Kernel `json:"kernels"`
}

// Kernel returns the named kernel row, if present.
func (r *KernelsReport) Kernel(name string) (Kernel, bool) {
	for _, k := range r.Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// CommsRow is one worker-count row of BENCH_comms.json.
type CommsRow struct {
	Workers      int     `json:"workers"`
	MsgsPerRound int     `json:"msgs_per_round"`
	LegacyNsMsg  int64   `json:"legacy_ns_msg"`
	StagedNsMsg  int64   `json:"staged_ns_msg"`
	LegacyMsgSec float64 `json:"legacy_msgs_per_sec"`
	StagedMsgSec float64 `json:"staged_msgs_per_sec"`
	Speedup      float64 `json:"speedup"`
}

// CommsReport is the BENCH_comms.json document.
type CommsReport struct {
	GeneratedBy string         `json:"generated_by"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Smoke       bool           `json:"smoke"`
	Note        string         `json:"note"`
	Rows        []CommsRow     `json:"rows"`
	Check       map[string]any `json:"accounting_check"`
}

// Row returns the row for a worker count, if present.
func (r *CommsReport) Row(workers int) (CommsRow, bool) {
	for _, row := range r.Rows {
		if row.Workers == workers {
			return row, true
		}
	}
	return CommsRow{}, false
}

// ReadKernelsReport parses a BENCH_kernels.json file.
func ReadKernelsReport(path string) (*KernelsReport, error) {
	var r KernelsReport
	if err := readJSON(path, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadCommsReport parses a BENCH_comms.json file.
func ReadCommsReport(path string) (*CommsReport, error) {
	var r CommsReport
	if err := readJSON(path, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// GateConfig holds the tolerance bands of the bench-check gates.
type GateConfig struct {
	// AllocBand is the allowed fractional allocs/op growth over the
	// committed baseline (default 0.20: a >20% regression fails).
	AllocBand float64
	// AllocSlack absorbs smoke-run amortisation noise: with benchtime=2x a
	// one-time warm-up allocation adds ~0.5 allocs/op that a 20-iteration
	// full run amortises away (default 2 allocs/op of absolute headroom).
	AllocSlack int64
	// MinCommsEffect is the within-run dominance threshold: staged msgs/sec
	// must beat legacy by this factor at EVERY worker count (default 3.0 —
	// the substrate's ≥3× claim; the committed full run shows 5.8×).
	MinCommsEffect float64
	// SpeedupBand is the allowed fractional loss of staged-vs-legacy
	// speedup relative to the committed baseline row (default 0.5: wide,
	// because the baseline was measured on the reference container and core
	// counts differ across machines; the within-run dominance gate above is
	// the tight check).
	SpeedupBand float64
	// MaxEpochAllocs is the absolute bound on the GCN training epoch
	// (default 25 allocs/op; PR 3 measured 19, the growth seed had 146).
	MaxEpochAllocs int64
	// MinServingEffect is the serving-tier dominance threshold: beyond
	// saturation, shortest-remaining-work must sustain this multiple of
	// FIFO's goodput in every seeded sample (default 1.2).
	MinServingEffect float64
	// MaxEngineAllocs is the absolute bound on a dense-path steady-state
	// PageRank superstep (default 2 allocs/round; the PR 8 runs measure 0).
	MaxEngineAllocs int64
	// MinDenseEffect is the engine dominance threshold: dense slot combining
	// must beat the map-combiner path's rounds/sec at EVERY worker count by
	// this factor (default 1.05 — the loose everywhere-floor; the 8-worker
	// headline cell has its own tighter gate).
	MinDenseEffect float64
	// MinDense8Effect is the headline acceptance bound: dense PageRank
	// rounds/sec at 8 workers ≥ this multiple of the map path (default 1.3).
	MinDense8Effect float64
	// MinEngineLegacyEffect is the end-to-end staged-vs-legacy dominance
	// threshold: the dense path must sustain this multiple of the legacy
	// mailboxes' rounds/sec at every worker count (default 1.5; the
	// substrate-level comms gate demands 3× on raw sends — whole rounds also
	// contain compute and demux, so the end-to-end floor is looser).
	MinEngineLegacyEffect float64
	// MinStorageCompression is the floor on the block file's compression
	// ratio (raw CSR bytes ÷ file bytes) for the sweep graph (default 1.5).
	MinStorageCompression float64
	// StorageHitBand is the allowed absolute hit-ratio drop of any sweep
	// cell below its committed baseline (default 0.08 — hit ratios are
	// deterministic, the band only absorbs the smoke run's shorter
	// measurement window).
	StorageHitBand float64
	// MinStorageRelThroughput is the floor on disk-backed throughput as a
	// fraction of the in-memory run at the largest cache budget, measured
	// within one process (default 0.15: block decode costs real work; the
	// committed runs measure well above this).
	MinStorageRelThroughput float64
	// MinCapacityEdges is the out-of-core capacity headline: the committed
	// full run must complete on an R-MAT with at least this many undirected
	// edges (default 100M).
	MinCapacityEdges int64
	// MaxCapacityBudgetFrac caps the capacity run's adjacency memory budget
	// as a fraction of the raw CSR size (default 0.25 — "far below" the
	// in-memory footprint).
	MaxCapacityBudgetFrac float64
}

// DefaultGateConfig returns the standard tolerance bands.
func DefaultGateConfig() GateConfig {
	return GateConfig{
		AllocBand:             0.20,
		AllocSlack:            2,
		MinCommsEffect:        3.0,
		SpeedupBand:           0.5,
		MaxEpochAllocs:        25,
		MinServingEffect:      1.2,
		MaxEngineAllocs:       2,
		MinDenseEffect:        1.05,
		MinDense8Effect:       1.3,
		MinEngineLegacyEffect: 1.5,

		MinStorageCompression:   1.5,
		StorageHitBand:          0.08,
		MinStorageRelThroughput: 0.15,
		MinCapacityEdges:        100_000_000,
		MaxCapacityBudgetFrac:   0.25,
	}
}

// KernelGates builds the hypotheses comparing a fresh kernels report against
// the committed baseline.
func KernelGates(fresh, baseline *KernelsReport, cfg GateConfig) []Hypothesis {
	return []Hypothesis{
		{
			ID:    "kernels-coverage",
			Claim: "every measured kernel has a committed baseline row (renames cannot silently drop a gate)",
			Type:  Deterministic,
			Check: func() []Finding {
				var fs []Finding
				for _, k := range fresh.Kernels {
					_, ok := baseline.Kernel(k.Name)
					fs = append(fs, Finding{Label: k.Name, Pass: ok, Got: fmt.Sprintf("in baseline: %v", ok)})
				}
				if len(fresh.Kernels) == 0 {
					fs = append(fs, Finding{Label: "kernels", Pass: false, Got: "fresh report has no kernels"})
				}
				return fs
			},
		},
		{
			ID:    "kernels-allocs",
			Claim: fmt.Sprintf("allocs/op within %.0f%%+%d of the committed baseline for every kernel", cfg.AllocBand*100, cfg.AllocSlack),
			Type:  Deterministic,
			Unit:  "allocs/op",
			Check: func() []Finding {
				var fs []Finding
				for _, k := range fresh.Kernels {
					b, ok := baseline.Kernel(k.Name)
					if !ok {
						continue // kernels-coverage reports this
					}
					for _, side := range []struct {
						name         string
						got, allowed int64
					}{
						{"serial", k.SerialAllocsOp, allowedAllocs(b.SerialAllocsOp, cfg)},
						{"parallel", k.ParallelAllocsOp, allowedAllocs(b.ParallelAllocsOp, cfg)},
					} {
						fs = append(fs, Finding{
							Label: k.Name + "/" + side.name,
							Pass:  side.got <= side.allowed,
							Got:   fmt.Sprintf("%d allocs/op (baseline %s, allowed ≤%d)", side.got, sideBase(b, side.name), side.allowed),
						})
					}
				}
				if len(fs) == 0 {
					fs = append(fs, Finding{Label: "kernels", Pass: false, Got: "no kernel matched the baseline"})
				}
				return fs
			},
		},
		{
			ID:    "gcn-epoch-allocs",
			Claim: fmt.Sprintf("a GCN training epoch stays ≤%d allocs/op (PR 3's 146→19 claim)", cfg.MaxEpochAllocs),
			Type:  Deterministic,
			Unit:  "allocs/op",
			Check: func() []Finding {
				k, ok := fresh.Kernel("train_epoch_gcn")
				if !ok {
					return []Finding{{Label: "train_epoch_gcn", Pass: false, Got: "kernel missing from fresh report"}}
				}
				return []Finding{{
					Label: "train_epoch_gcn/parallel",
					Pass:  k.ParallelAllocsOp <= cfg.MaxEpochAllocs,
					Got:   fmt.Sprintf("%d allocs/op (bound %d)", k.ParallelAllocsOp, cfg.MaxEpochAllocs),
				}}
			},
		},
	}
}

func allowedAllocs(baseline int64, cfg GateConfig) int64 {
	return int64(float64(baseline)*(1+cfg.AllocBand)) + cfg.AllocSlack
}

func sideBase(b Kernel, side string) string {
	if side == "serial" {
		return fmt.Sprintf("%d", b.SerialAllocsOp)
	}
	return fmt.Sprintf("%d", b.ParallelAllocsOp)
}

// CommsGates builds the hypotheses comparing a fresh comms report against
// the committed baseline.
func CommsGates(fresh, baseline *CommsReport, cfg GateConfig) []Hypothesis {
	// The Type-2 samples are the fresh report's worker-count rows: three
	// independent measurements of the same within-process comparison.
	var seeds []int64
	byWorkers := map[int64]CommsRow{}
	for _, row := range fresh.Rows {
		seeds = append(seeds, int64(row.Workers))
		byWorkers[int64(row.Workers)] = row
	}
	return []Hypothesis{
		{
			ID:        "staged-dominates-legacy",
			Claim:     fmt.Sprintf("staged outboxes sustain ≥%.0f× legacy msgs/sec at every worker count (within one run)", cfg.MinCommsEffect),
			Type:      Statistical,
			Unit:      "msgs/sec",
			Seeds:     seeds,
			MinEffect: cfg.MinCommsEffect,
			Measure: func(workers int64) (Sample, error) {
				row, ok := byWorkers[workers]
				if !ok {
					return Sample{}, fmt.Errorf("no row for workers=%d", workers)
				}
				return Sample{Baseline: row.LegacyMsgSec, Treatment: row.StagedMsgSec}, nil
			},
		},
		{
			ID:    "comms-accounting",
			Claim: "staged and legacy paths meter bit-identical cluster.Stats on the benchmark workload",
			Type:  Deterministic,
			Check: func() []Finding {
				ident, ok := fresh.Check["identical"].(bool)
				return []Finding{{
					Label: "accounting_check",
					Pass:  ok && ident,
					Got:   fmt.Sprintf("identical=%v present=%v", ident, ok),
				}}
			},
		},
		{
			ID:    "comms-speedup-vs-baseline",
			Claim: fmt.Sprintf("staged speedup retains ≥%.0f%% of the committed baseline's at every worker count", (1-cfg.SpeedupBand)*100),
			Type:  Deterministic,
			Check: func() []Finding {
				var fs []Finding
				for _, row := range fresh.Rows {
					b, ok := baseline.Row(row.Workers)
					if !ok {
						fs = append(fs, Finding{Label: fmt.Sprintf("workers=%d", row.Workers), Pass: false, Got: "no baseline row"})
						continue
					}
					floor := b.Speedup * (1 - cfg.SpeedupBand)
					fs = append(fs, Finding{
						Label: fmt.Sprintf("workers=%d", row.Workers),
						Pass:  row.Speedup >= floor,
						Got:   fmt.Sprintf("speedup %.2fx (baseline %.2fx, floor %.2fx)", row.Speedup, b.Speedup, floor),
					})
				}
				if len(fs) == 0 {
					fs = append(fs, Finding{Label: "rows", Pass: false, Got: "fresh report has no rows"})
				}
				return fs
			},
		},
	}
}

// BenchGates combines the kernel and comms gates into one hypothesis set —
// what cmd/benchcheck runs.
func BenchGates(freshKernels, baselineKernels *KernelsReport, freshComms, baselineComms *CommsReport, cfg GateConfig) []Hypothesis {
	hs := KernelGates(freshKernels, baselineKernels, cfg)
	return append(hs, CommsGates(freshComms, baselineComms, cfg)...)
}
