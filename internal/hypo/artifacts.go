package hypo

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteDir persists the report into a per-run folder (created if missing):
//
//	dir/results.json — the full Report, machine-readable
//	dir/results.csv  — one row per finding, for spreadsheet/pandas analysis
//
// The layout mirrors the run_all → validate → analyze artifact convention
// (SNIPPETS.md Snippet 1): the JSON is what gates re-read, the CSV is what
// analysis consumes. Writing is deterministic for a deterministic report —
// no timestamps, no host metadata — so artifact diffs show real changes.
func (r *Report) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, "results.json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(jf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}

	cf, err := os.Create(filepath.Join(dir, "results.csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(cf)
	if err := w.Write([]string{
		"hypothesis", "type", "claim", "unit", "label", "pass",
		"baseline", "treatment", "effect", "min_effect", "got",
	}); err != nil {
		cf.Close()
		return err
	}
	for _, o := range r.Outcomes {
		for _, f := range o.Findings {
			rec := []string{
				o.ID, o.Type, o.Claim, o.Unit, f.Label, strconv.FormatBool(f.Pass),
				num(f.Baseline), num(f.Treatment), num(f.Effect), num(o.MinEffect), f.Got,
			}
			if err := w.Write(rec); err != nil {
				cf.Close()
				return err
			}
		}
		if len(o.Findings) == 0 { // malformed hypothesis: still leave a row
			if err := w.Write([]string{o.ID, o.Type, o.Claim, o.Unit, "", "false", "", "", "", "", o.Err}); err != nil {
				cf.Close()
				return err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

func num(v float64) string {
	if v == 0 {
		return ""
	}
	return fmt.Sprintf("%g", v)
}
