package hypo

import (
	"strings"
	"testing"

	"graphsys/internal/serve"
)

// buildServingReport materialises the default sweep exactly as
// cmd/benchserving does.
func buildServingReport(t *testing.T) *ServingReport {
	t.Helper()
	params := DefaultServingParams()
	rep := &ServingReport{GeneratedBy: "test", Params: params}
	for _, pol := range serve.Policies {
		for _, lambda := range params.Lambdas {
			pt, err := MeasureServingPoint(params, pol, lambda, params.Seed)
			if err != nil {
				t.Fatalf("measure %s@%.2f: %v", pol, lambda, err)
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep
}

// TestServingGatesPassOnDefaultSweep is the claim-holds test: the committed
// gate set (exact reproducibility, SRW goodput dominance across the seed set,
// overload shedding) must pass on the default parameters. If a parameter
// change breaks this, the claim needs re-tuning BEFORE a baseline is
// committed, not after CI goes red.
func TestServingGatesPassOnDefaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep (≈24 simulations × 4 re-checks)")
	}
	rep := buildServingReport(t)
	out := Run("serving-gates", ServingGates(rep, rep, DefaultGateConfig()))
	if !out.Pass() {
		var sb strings.Builder
		out.Fprint(&sb)
		t.Fatalf("default sweep fails its own gates:\n%s", sb.String())
	}
}

func TestServingGatesDetectInjectedRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	fresh := buildServingReport(t)
	baseline := buildServingReport(t)
	// a fake latency regression in one fresh cell: the exact-equality gates
	// must catch both the divergence from the baseline and the broken
	// reproducibility of the reported number
	fresh.Points[3].P99 += 25
	out := Run("serving-gates", ServingGates(fresh, baseline, DefaultGateConfig()))
	if out.Pass() {
		t.Fatal("gates passed despite an injected p99 regression")
	}
	failed := out.Failed()
	wantFailing := map[string]bool{"serving-determinism": false, "serving-baseline-exact": false}
	for _, id := range failed {
		if _, ok := wantFailing[id]; ok {
			wantFailing[id] = true
		}
	}
	for id, hit := range wantFailing {
		if !hit {
			t.Fatalf("expected %s to fail, failed set: %v", id, failed)
		}
	}
}

func TestServingReportPointLookup(t *testing.T) {
	rep := &ServingReport{Points: []ServingPoint{{Policy: "fifo", Lambda: 0.4, P99: 7}}}
	if pt, ok := rep.Point("fifo", 0.4); !ok || pt.P99 != 7 {
		t.Fatalf("lookup: %+v %v", pt, ok)
	}
	if _, ok := rep.Point("srw", 0.4); ok {
		t.Fatal("phantom point")
	}
}
