package hypo

import "fmt"

// This file owns the BENCH_engine.json schema (written by cmd/benchengine,
// re-read by cmd/benchcheck) and its regression gates — the end-to-end
// counterpart of the substrate-level comms gates: whole pregel supersteps,
// measured as rounds/sec and allocs/round, across the three communication
// paths (dense slot combiner / map combiner / legacy mailboxes) and worker
// counts.
//
// Gate philosophy (as in bench.go): absolute round times are machine
// properties and never compared across files. What IS comparable everywhere:
//   - allocs/round — deterministic allocator behaviour: an absolute bound on
//     the dense steady state (the PR's ~0 allocs/round claim) plus a banded
//     growth bound against the committed baseline
//   - within-run dominance ratios (dense vs map, dense vs legacy rounds/sec
//     in the SAME process), checked as Type-2 hypotheses over worker counts
//   - exact result equivalence across the three paths — Type 1, re-verified
//     by cmd/benchengine itself before it writes the report

// EngineRow is one (algorithm, path, worker-count) cell of BENCH_engine.json.
// Per-round figures are measured differentially — two runs differing only in
// superstep count — so setup costs cancel and only the steady-state increment
// remains.
type EngineRow struct {
	Algo           string  `json:"algo"`    // "pagerank" | "cc"
	Path           string  `json:"path"`    // "dense" | "map" | "legacy"
	Workers        int     `json:"workers"` // simulated workers
	Rounds         int     `json:"rounds"`  // supersteps in the long run
	NsPerRound     int64   `json:"ns_per_round"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	MsgsPerRound   int64   `json:"msgs_per_round"` // delivered (post-combining)
}

// EngineReport is the BENCH_engine.json document.
type EngineReport struct {
	GeneratedBy string         `json:"generated_by"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Smoke       bool           `json:"smoke"`
	Note        string         `json:"note"`
	Rows        []EngineRow    `json:"rows"`
	Check       map[string]any `json:"equivalence_check"`
}

// Row returns the cell for (algo, path, workers), if present.
func (r *EngineReport) Row(algo, path string, workers int) (EngineRow, bool) {
	for _, row := range r.Rows {
		if row.Algo == algo && row.Path == path && row.Workers == workers {
			return row, true
		}
	}
	return EngineRow{}, false
}

// ReadEngineReport parses a BENCH_engine.json file.
func ReadEngineReport(path string) (*EngineReport, error) {
	var r EngineReport
	if err := readJSON(path, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// EngineGates builds the hypotheses comparing a fresh engine report against
// the committed baseline.
func EngineGates(fresh, baseline *EngineReport, cfg GateConfig) []Hypothesis {
	var seeds []int64
	denseByWorkers := map[int64]EngineRow{}
	mapByWorkers := map[int64]EngineRow{}
	legacyByWorkers := map[int64]EngineRow{}
	for _, row := range fresh.Rows {
		if row.Algo != "pagerank" {
			continue
		}
		switch row.Path {
		case "dense":
			seeds = append(seeds, int64(row.Workers))
			denseByWorkers[int64(row.Workers)] = row
		case "map":
			mapByWorkers[int64(row.Workers)] = row
		case "legacy":
			legacyByWorkers[int64(row.Workers)] = row
		}
	}
	return []Hypothesis{
		{
			ID:    "engine-coverage",
			Claim: "every baseline (algo, path, workers) cell is present in the fresh report (renames cannot silently drop a gate)",
			Type:  Deterministic,
			Check: func() []Finding {
				var fs []Finding
				for _, b := range baseline.Rows {
					_, ok := fresh.Row(b.Algo, b.Path, b.Workers)
					fs = append(fs, Finding{
						Label: fmt.Sprintf("%s/%s/workers=%d", b.Algo, b.Path, b.Workers),
						Pass:  ok,
						Got:   fmt.Sprintf("in fresh report: %v", ok),
					})
				}
				if len(baseline.Rows) == 0 {
					fs = append(fs, Finding{Label: "rows", Pass: false, Got: "baseline report has no rows"})
				}
				return fs
			},
		},
		{
			ID: "engine-allocs",
			Claim: fmt.Sprintf("dense steady-state supersteps stay ≤%d allocs/round, and every cell stays within %.0f%%+%d of its committed baseline",
				cfg.MaxEngineAllocs, cfg.AllocBand*100, cfg.AllocSlack),
			Type: Deterministic,
			Unit: "allocs/round",
			Check: func() []Finding {
				var fs []Finding
				for _, row := range fresh.Rows {
					label := fmt.Sprintf("%s/%s/workers=%d", row.Algo, row.Path, row.Workers)
					if row.Path == "dense" && row.Algo == "pagerank" {
						fs = append(fs, Finding{
							Label: label + "/absolute",
							Pass:  row.AllocsPerRound <= float64(cfg.MaxEngineAllocs),
							Got:   fmt.Sprintf("%.2f allocs/round (bound %d)", row.AllocsPerRound, cfg.MaxEngineAllocs),
						})
					}
					b, ok := baseline.Row(row.Algo, row.Path, row.Workers)
					if !ok {
						continue // engine-coverage reports missing cells
					}
					allowed := float64(allowedAllocs(int64(b.AllocsPerRound), cfg))
					fs = append(fs, Finding{
						Label: label,
						Pass:  row.AllocsPerRound <= allowed,
						Got:   fmt.Sprintf("%.2f allocs/round (baseline %.2f, allowed ≤%.0f)", row.AllocsPerRound, b.AllocsPerRound, allowed),
					})
				}
				if len(fs) == 0 {
					fs = append(fs, Finding{Label: "rows", Pass: false, Got: "fresh report has no rows"})
				}
				return fs
			},
		},
		{
			ID:        "dense-dominates-map",
			Claim:     fmt.Sprintf("dense slot addressing sustains ≥%.2f× map-combiner PageRank rounds/sec at every worker count (within one run)", cfg.MinDenseEffect),
			Type:      Statistical,
			Unit:      "rounds/sec",
			Seeds:     seeds,
			MinEffect: cfg.MinDenseEffect,
			Measure: func(workers int64) (Sample, error) {
				d, ok := denseByWorkers[workers]
				m, ok2 := mapByWorkers[workers]
				if !ok || !ok2 {
					return Sample{}, fmt.Errorf("missing pagerank dense/map rows for workers=%d", workers)
				}
				return Sample{Baseline: m.RoundsPerSec, Treatment: d.RoundsPerSec}, nil
			},
		},
		{
			ID:    "dense-dominates-map-at-8",
			Claim: fmt.Sprintf("at 8 workers, dense PageRank rounds/sec is ≥%.1f× the map path (the headline acceptance cell)", cfg.MinDense8Effect),
			Type:  Deterministic,
			Unit:  "rounds/sec",
			Check: func() []Finding {
				d, ok := denseByWorkers[8]
				m, ok2 := mapByWorkers[8]
				if !ok || !ok2 {
					return []Finding{{Label: "pagerank/workers=8", Pass: false, Got: "dense or map row missing"}}
				}
				ratio := 0.0
				if m.RoundsPerSec > 0 {
					ratio = d.RoundsPerSec / m.RoundsPerSec
				}
				return []Finding{{
					Label: "pagerank/workers=8",
					Pass:  ratio >= cfg.MinDense8Effect,
					Got:   fmt.Sprintf("dense %.1f vs map %.1f rounds/sec — %.2fx (floor %.1fx)", d.RoundsPerSec, m.RoundsPerSec, ratio, cfg.MinDense8Effect),
				}}
			},
		},
		{
			ID:        "staged-dominates-legacy-engine",
			Claim:     fmt.Sprintf("the staged dense path sustains ≥%.2f× legacy-mailbox PageRank rounds/sec at every worker count (within one run)", cfg.MinEngineLegacyEffect),
			Type:      Statistical,
			Unit:      "rounds/sec",
			Seeds:     seeds,
			MinEffect: cfg.MinEngineLegacyEffect,
			Measure: func(workers int64) (Sample, error) {
				d, ok := denseByWorkers[workers]
				l, ok2 := legacyByWorkers[workers]
				if !ok || !ok2 {
					return Sample{}, fmt.Errorf("missing pagerank dense/legacy rows for workers=%d", workers)
				}
				return Sample{Baseline: l.RoundsPerSec, Treatment: d.RoundsPerSec}, nil
			},
		},
		{
			ID:    "engine-equivalence",
			Claim: "PageRank and CC results are bitwise identical across dense/map/legacy paths (verified in-process by cmd/benchengine)",
			Type:  Deterministic,
			Check: func() []Finding {
				ident, ok := fresh.Check["identical"].(bool)
				return []Finding{{
					Label: "equivalence_check",
					Pass:  ok && ident,
					Got:   fmt.Sprintf("identical=%v present=%v", ident, ok),
				}}
			},
		},
	}
}
