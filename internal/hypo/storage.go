package hypo

import "fmt"

// This file owns the BENCH_storage.json schema (written by cmd/benchstorage,
// re-read by cmd/benchcheck) and its regression gates: the out-of-core
// storage layer's compression ratio, the cache-size sweep's hit-ratio curve,
// the cached-vs-in-memory throughput floor, and the capacity claim — a
// 100M+-edge PageRank completing under a memory budget far below the raw
// graph.
//
// Gate philosophy (as in bench.go/engine.go): raw wall times never cross
// machines. What IS comparable:
//   - the compression ratio and the equivalence check — deterministic
//     functions of the file format and the workloads
//   - hit ratios — deterministic functions of (graph, budget, access
//     sequence); the smoke run replays the same sweep with fewer measured
//     rounds, so cells are compared against the committed baseline within a
//     small absolute band
//   - RelThroughput — cached vs in-memory throughput measured in the SAME
//     process, a within-run ratio
//   - the capacity row — a property of the committed full-run artifact; the
//     smoke run cannot rebuild a 100M-edge graph, so the gate reads the
//     committed baseline

// StorageRow is one (workload, eviction policy, cache budget) cell of the
// sweep: a fixed workload run with the adjacency behind a block cache whose
// budget is BudgetFrac of the raw CSR size.
type StorageRow struct {
	Workload      string  `json:"workload"` // "pagerank" | "gnn-epoch"
	Evict         string  `json:"evict"`    // "lru" | "mru"
	BudgetFrac    float64 `json:"budget_frac"`
	BudgetBytes   int64   `json:"budget_bytes"`
	HitRatio      float64 `json:"hit_ratio"`
	BytesRead     int64   `json:"bytes_read"`
	NsPerOp       int64   `json:"ns_per_op"`      // one iteration (pagerank) or epoch (gnn)
	RelThroughput float64 `json:"rel_throughput"` // cached ops/sec ÷ in-memory ops/sec, same process
}

// StorageCapacity is the committed full run's out-of-core headline: PageRank
// plus a sampled-GNN epoch over a 100M+-edge R-MAT, with the adjacency
// memory budget enforced far below the raw graph size.
type StorageCapacity struct {
	Scale       int     `json:"scale"`
	EdgeFactor  int     `json:"edge_factor"`
	Vertices    int     `json:"vertices"`
	Edges       int64   `json:"edges"`
	Arcs        int64   `json:"arcs"`
	FileBytes   int64   `json:"file_bytes"`
	RawCSRBytes int64   `json:"raw_csr_bytes"`
	BudgetBytes int64   `json:"budget_bytes"`
	BudgetFrac  float64 `json:"budget_frac"` // budget ÷ raw CSR
	Supersteps  int     `json:"supersteps"`  // pagerank rounds completed
	GNNBatches  int     `json:"gnn_batches"` // sampled minibatches completed
	HitRatio    float64 `json:"hit_ratio"`
	BytesRead   int64   `json:"bytes_read"`
	Completed   bool    `json:"completed"`
}

// StorageReport is the BENCH_storage.json document.
type StorageReport struct {
	GeneratedBy      string           `json:"generated_by"`
	GOMAXPROCS       int              `json:"gomaxprocs"`
	Smoke            bool             `json:"smoke"`
	Note             string           `json:"note"`
	Scale            int              `json:"scale"` // sweep graph
	EdgeFactor       int              `json:"edge_factor"`
	Vertices         int              `json:"vertices"`
	Arcs             int64            `json:"arcs"`
	FileBytes        int64            `json:"file_bytes"`
	RawCSRBytes      int64            `json:"raw_csr_bytes"`
	CompressionRatio float64          `json:"compression_ratio"` // raw CSR ÷ file bytes
	Rows             []StorageRow     `json:"rows"`
	Capacity         *StorageCapacity `json:"capacity,omitempty"` // full runs only
	Check            map[string]any   `json:"equivalence_check"`
}

// Row returns the cell for (workload, evict, budgetFrac), if present.
func (r *StorageReport) Row(workload, evict string, budgetFrac float64) (StorageRow, bool) {
	for _, row := range r.Rows {
		if row.Workload == workload && row.Evict == evict && row.BudgetFrac == budgetFrac {
			return row, true
		}
	}
	return StorageRow{}, false
}

// ReadStorageReport parses a BENCH_storage.json file.
func ReadStorageReport(path string) (*StorageReport, error) {
	var r StorageReport
	if err := readJSON(path, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// StorageGates builds the hypotheses comparing a fresh storage report
// against the committed baseline.
func StorageGates(fresh, baseline *StorageReport, cfg GateConfig) []Hypothesis {
	return []Hypothesis{
		{
			ID:    "storage-coverage",
			Claim: "every baseline (workload, evict, budget) sweep cell is present in the fresh report",
			Type:  Deterministic,
			Check: func() []Finding {
				var fs []Finding
				for _, b := range baseline.Rows {
					_, ok := fresh.Row(b.Workload, b.Evict, b.BudgetFrac)
					fs = append(fs, Finding{
						Label: fmt.Sprintf("%s/%s/budget=%.2f", b.Workload, b.Evict, b.BudgetFrac),
						Pass:  ok,
						Got:   fmt.Sprintf("in fresh report: %v", ok),
					})
				}
				if len(baseline.Rows) == 0 {
					fs = append(fs, Finding{Label: "rows", Pass: false, Got: "baseline report has no rows"})
				}
				return fs
			},
		},
		{
			ID:    "storage-equivalence",
			Claim: "PageRank ranks and the sampled-GNN trajectory are bitwise identical between the in-memory and disk-backed GraphSource (verified in-process by cmd/benchstorage)",
			Type:  Deterministic,
			Check: func() []Finding {
				ident, ok := fresh.Check["identical"].(bool)
				return []Finding{{
					Label: "equivalence_check",
					Pass:  ok && ident,
					Got:   fmt.Sprintf("identical=%v present=%v", ident, ok),
				}}
			},
		},
		{
			ID:    "storage-compression",
			Claim: fmt.Sprintf("the gap-encoded block file is ≥%.2f× smaller than the raw CSR", cfg.MinStorageCompression),
			Type:  Deterministic,
			Unit:  "ratio",
			Check: func() []Finding {
				return []Finding{{
					Label: "compression_ratio",
					Pass:  fresh.CompressionRatio >= cfg.MinStorageCompression,
					Got: fmt.Sprintf("%.2fx (raw %d B → file %d B; floor %.2fx)",
						fresh.CompressionRatio, fresh.RawCSRBytes, fresh.FileBytes, cfg.MinStorageCompression),
				}}
			},
		},
		{
			ID: "storage-hit-ratio",
			Claim: fmt.Sprintf("every sweep cell's cache hit ratio stays within %.2f of its committed baseline (hit ratios are deterministic in (graph, budget, access sequence))",
				cfg.StorageHitBand),
			Type: Deterministic,
			Unit: "hit ratio",
			Check: func() []Finding {
				var fs []Finding
				for _, row := range fresh.Rows {
					b, ok := baseline.Row(row.Workload, row.Evict, row.BudgetFrac)
					if !ok {
						continue // a new cell has no baseline yet; coverage guards the reverse
					}
					fs = append(fs, Finding{
						Label: fmt.Sprintf("%s/%s/budget=%.2f", row.Workload, row.Evict, row.BudgetFrac),
						Pass:  row.HitRatio >= b.HitRatio-cfg.StorageHitBand,
						Got:   fmt.Sprintf("hit ratio %.3f (baseline %.3f, band %.2f)", row.HitRatio, b.HitRatio, cfg.StorageHitBand),
					})
				}
				if len(fs) == 0 {
					fs = append(fs, Finding{Label: "rows", Pass: false, Got: "no comparable sweep cells"})
				}
				return fs
			},
		},
		{
			ID: "storage-throughput",
			Claim: fmt.Sprintf("at the largest cache budget, the disk-backed run sustains ≥%.0f%% of the in-memory throughput (within one process)",
				cfg.MinStorageRelThroughput*100),
			Type: Deterministic,
			Unit: "relative throughput",
			Check: func() []Finding {
				best := map[string]StorageRow{}
				for _, row := range fresh.Rows {
					if b, ok := best[row.Workload]; !ok || row.BudgetFrac > b.BudgetFrac {
						best[row.Workload] = row
					}
				}
				var fs []Finding
				for _, workload := range []string{"pagerank", "gnn-epoch"} {
					row, ok := best[workload]
					if !ok {
						fs = append(fs, Finding{Label: workload, Pass: false, Got: "no sweep cell"})
						continue
					}
					fs = append(fs, Finding{
						Label: fmt.Sprintf("%s/budget=%.2f", workload, row.BudgetFrac),
						Pass:  row.RelThroughput >= cfg.MinStorageRelThroughput,
						Got:   fmt.Sprintf("%.2fx of in-memory (floor %.2fx)", row.RelThroughput, cfg.MinStorageRelThroughput),
					})
				}
				return fs
			},
		},
		{
			ID: "storage-capacity",
			Claim: fmt.Sprintf("the committed full run completes PageRank + a sampled-GNN epoch on a ≥%dM-edge R-MAT under a budget ≤%.0f%% of the raw CSR",
				cfg.MinCapacityEdges/1_000_000, cfg.MaxCapacityBudgetFrac*100),
			Type: Deterministic,
			Check: func() []Finding {
				c := baseline.Capacity
				if c == nil {
					return []Finding{{Label: "capacity", Pass: false, Got: "committed baseline has no capacity section"}}
				}
				return []Finding{
					{
						Label: "completed",
						Pass:  c.Completed && c.Supersteps > 0 && c.GNNBatches > 0,
						Got:   fmt.Sprintf("completed=%v supersteps=%d gnn_batches=%d", c.Completed, c.Supersteps, c.GNNBatches),
					},
					{
						Label: "edges",
						Pass:  c.Edges >= cfg.MinCapacityEdges,
						Got:   fmt.Sprintf("%d edges (floor %d)", c.Edges, cfg.MinCapacityEdges),
					},
					{
						Label: "budget",
						Pass:  c.RawCSRBytes > 0 && float64(c.BudgetBytes) <= cfg.MaxCapacityBudgetFrac*float64(c.RawCSRBytes),
						Got:   fmt.Sprintf("budget %d B vs raw CSR %d B (%.1f%%, cap %.0f%%)", c.BudgetBytes, c.RawCSRBytes, 100*float64(c.BudgetBytes)/float64(c.RawCSRBytes), cfg.MaxCapacityBudgetFrac*100),
					},
					{
						Label: "io-metered",
						Pass:  c.BytesRead > 0 && c.HitRatio > 0,
						Got:   fmt.Sprintf("bytes_read=%d hit_ratio=%.3f", c.BytesRead, c.HitRatio),
					},
				}
			},
		},
	}
}
