package storage

import (
	"encoding/binary"

	"graphsys/internal/graph"
)

// The adjacency codec: a vertex's sorted, strictly increasing neighbor list
// is stored as the first id as a uvarint, then (gap−1) uvarints for each
// subsequent id (gap ≥ 1 because the list is strictly increasing — the −1
// keeps the common gap-of-one at a single zero byte). Degrees are NOT stored
// in the block: they live in the file's resident degree table, so the
// decoder always knows how many ids to read.

// appendAdj gap-encodes adj onto dst and returns the extended slice. adj
// must be strictly increasing; a violation is reported as an error so a
// caller bug cannot silently write an undecodable file.
func appendAdj(dst []byte, adj []graph.V) ([]byte, error) {
	if len(adj) == 0 {
		return dst, nil
	}
	if adj[0] < 0 {
		return dst, errFormat("negative neighbor id %d", adj[0])
	}
	dst = binary.AppendUvarint(dst, uint64(adj[0]))
	prev := adj[0]
	for _, v := range adj[1:] {
		if v <= prev {
			return dst, errFormat("neighbor list not strictly increasing (%d after %d)", v, prev)
		}
		dst = binary.AppendUvarint(dst, uint64(v-prev-1))
		prev = v
	}
	return dst, nil
}

// decodeAdj reads deg gap-encoded ids from data into out (which must have
// length deg), validating ids stay in [0, n). It returns the remaining data.
func decodeAdj(out []graph.V, data []byte, deg int, n int) ([]byte, error) {
	if deg == 0 {
		return data, nil
	}
	first, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, errCorrupt("truncated varint at first neighbor")
	}
	data = data[k:]
	if first >= uint64(n) {
		//lint:allow hotalloc corruption error path: boxing the ids into the message is free, decoding already failed
		return nil, errCorrupt("neighbor id %d out of range [0,%d)", first, n)
	}
	out[0] = graph.V(first)
	prev := uint64(first)
	for i := 1; i < deg; i++ {
		gap, k := binary.Uvarint(data)
		if k <= 0 {
			//lint:allow hotalloc corruption error path: boxing the ids into the message is free, decoding already failed
			return nil, errCorrupt("truncated varint at neighbor %d", i)
		}
		data = data[k:]
		if gap >= uint64(n) { // also guards the prev += gap+1 below against wraparound
			//lint:allow hotalloc corruption error path: boxing the ids into the message is free, decoding already failed
			return nil, errCorrupt("neighbor gap %d out of range at neighbor %d", gap, i)
		}
		prev += gap + 1
		if prev >= uint64(n) {
			//lint:allow hotalloc corruption error path: boxing the ids into the message is free, decoding already failed
			return nil, errCorrupt("neighbor id %d out of range [0,%d)", prev, n)
		}
		out[i] = graph.V(prev)
	}
	return data, nil
}
