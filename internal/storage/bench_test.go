package storage

import (
	"path/filepath"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

// benchFile writes an R-MAT graph to a block file and returns its info.
func benchFile(b *testing.B, blockBytes int) (*graph.Graph, *Info) {
	b.Helper()
	g := gen.RMAT(13, 8, 1)
	info, err := Write(filepath.Join(b.TempDir(), "g.gsb"), g, Options{BlockBytes: blockBytes})
	if err != nil {
		b.Fatal(err)
	}
	return g, info
}

// BenchmarkCacheNeighborsHit measures the steady-state hit path: the whole
// graph cached, sequential Neighbors over every vertex. The claim under test
// is 0 allocs/op — decode buffers are recycled, hits touch no allocator.
func BenchmarkCacheNeighborsHit(b *testing.B) {
	g, info := benchFile(b, 1<<14)
	prov, err := OpenCached(info.Path, info.ResidentBytes+info.RawCSRBytes, 1, LRU)
	if err != nil {
		b.Fatal(err)
	}
	defer prov.Close()
	src := prov.Handle(0)
	// warm: one full sweep populates the cache
	for v := graph.V(0); int(v) < g.NumVertices(); v++ {
		if _, err := src.Neighbors(v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var arcs int64
	for i := 0; i < b.N; i++ {
		for v := graph.V(0); int(v) < g.NumVertices(); v++ {
			adj, err := src.Neighbors(v)
			if err != nil {
				b.Fatal(err)
			}
			arcs += int64(len(adj))
		}
	}
	b.ReportMetric(float64(arcs)/float64(b.Elapsed().Nanoseconds()), "arcs/ns")
}

// BenchmarkCacheNeighborsMiss measures the miss path — read + CRC + varint
// decode — by sweeping cyclically with a cache that holds a single block
// (sequential flooding under LRU: every access past the first block misses).
func BenchmarkCacheNeighborsMiss(b *testing.B) {
	g, info := benchFile(b, 1<<14)
	prov, err := OpenCached(info.Path, info.ResidentBytes+info.MaxDecodedBytes, 1, LRU)
	if err != nil {
		b.Fatal(err)
	}
	defer prov.Close()
	src := prov.Handle(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := graph.V(0); int(v) < g.NumVertices(); v++ {
			if _, err := src.Neighbors(v); err != nil {
				b.Fatal(err)
			}
		}
	}
	st := src.Stats()
	b.ReportMetric(float64(st.BytesRead)/float64(b.N), "bytes-read/op")
}

// BenchmarkCodecScan measures the sequential block scan (the graphd
// per-iteration pass): decode throughput in arcs/ns without cache traffic.
func BenchmarkCodecScan(b *testing.B) {
	_, info := benchFile(b, DefaultBlockBytes)
	prov, err := OpenCached(info.Path, info.ResidentBytes+info.MaxDecodedBytes, 1, LRU)
	if err != nil {
		b.Fatal(err)
	}
	defer prov.Close()
	src := prov.Handle(0)
	b.ReportAllocs()
	b.ResetTimer()
	var arcs int64
	for i := 0; i < b.N; i++ {
		err := src.Scan(func(u graph.V, adj []graph.V) error {
			arcs += int64(len(adj))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(arcs)/float64(b.Elapsed().Nanoseconds()), "arcs/ns")
}
