package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"

	"graphsys/internal/graph"
)

// Options configure block-file construction.
type Options struct {
	// BlockBytes is the target encoded payload size of one block. Vertices
	// are packed greedily until the next vertex would push the payload past
	// the target; a single vertex whose encoding alone exceeds the target
	// gets its own oversized block. 0 means DefaultBlockBytes.
	BlockBytes int
}

func (o Options) blockBytes() int {
	if o.BlockBytes <= 0 {
		return DefaultBlockBytes
	}
	return o.BlockBytes
}

// Info summarizes a written block file.
type Info struct {
	Path            string
	NumVertices     int
	NumArcs         int64
	NumBlocks       int
	FileBytes       int64
	MaxDecodedBytes int64
	ResidentBytes   int64 // degree table + block index
	RawCSRBytes     int64 // in-memory CSR footprint the file replaces
}

// CompressionRatio returns RawCSRBytes / FileBytes.
func (i *Info) CompressionRatio() float64 {
	if i.FileBytes == 0 {
		return 0
	}
	return float64(i.RawCSRBytes) / float64(i.FileBytes)
}

// Write encodes g into the block-CSR file at path. The output is a
// deterministic function of g's adjacency, the directedness flag and
// opts.BlockBytes.
func Write(path string, g *graph.Graph, opts Options) (*Info, error) {
	bw, err := newBlockWriter(path, g.NumVertices(), opts)
	if err != nil {
		return nil, err
	}
	defer bw.abort()
	for v := graph.V(0); int(v) < g.NumVertices(); v++ {
		if err := bw.add(v, g.Neighbors(v)); err != nil {
			return nil, err
		}
	}
	return bw.finish(g.Directed())
}

// WriteStream builds the block-CSR file for a graph defined by an arc
// stream, without materializing a *graph.Graph (no global arc sort — a
// counting-sort CSR build, then per-vertex sorts). arcs is invoked twice and
// must emit the identical arc sequence both times (e.g. a seeded generator);
// for an undirected graph it must emit both directions of every edge.
// Self-loops are dropped and duplicate arcs deduplicated, matching
// graph.Builder semantics, so WriteStream and Write produce byte-identical
// files for the same logical graph.
func WriteStream(path string, n int, directed bool, arcs func(emit func(u, v graph.V)), opts Options) (*Info, error) {
	cnt := make([]int64, n+1)
	var bad error
	arcs(func(u, v graph.V) {
		if bad != nil {
			return
		}
		if int(u) >= n || u < 0 || int(v) >= n || v < 0 {
			bad = errFormat("arc (%d,%d) out of range [0,%d)", u, v, n)
			return
		}
		if u != v {
			cnt[u+1]++
		}
	})
	if bad != nil {
		return nil, bad
	}
	for v := 1; v <= n; v++ {
		cnt[v] += cnt[v-1]
	}
	offs := cnt // cnt is now the offset table; fill positions advance it
	adj := make([]graph.V, offs[n])
	fill := make([]int64, n)
	copy(fill, offs[:n])
	arcs(func(u, v graph.V) {
		if u != v {
			adj[fill[u]] = v
			fill[u]++
		}
	})

	bw, err := newBlockWriter(path, n, opts)
	if err != nil {
		return nil, err
	}
	defer bw.abort()
	for v := 0; v < n; v++ {
		ns := adj[offs[v]:offs[v+1]]
		slices.Sort(ns)
		ns = slices.Compact(ns)
		if err := bw.add(graph.V(v), ns); err != nil {
			return nil, err
		}
	}
	return bw.finish(directed)
}

// blockWriter packs successive (vertex, adjacency) pairs into blocks. Block
// payloads stream to a temp file while the index and degree table accumulate
// in memory; finish assembles header + index + degrees + blocks into the
// final file.
type blockWriter struct {
	path    string
	tmp     *os.File
	tmpW    *bufio.Writer
	target  int
	n       int
	next    graph.V
	cur     []byte // current block payload
	scratch []byte // one vertex's encoding
	first   graph.V
	count   int32
	arcsCur int32

	idx        []BlockMeta
	degs       []int32
	off        int64 // next block's offset relative to the blocks section
	arcs       int64
	maxDecoded int64
	done       bool
}

func newBlockWriter(path string, n int, opts Options) (*blockWriter, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".gsb-blocks-*")
	if err != nil {
		return nil, err
	}
	return &blockWriter{
		path:   path,
		tmp:    tmp,
		tmpW:   bufio.NewWriterSize(tmp, 1<<20),
		target: opts.blockBytes(),
		n:      n,
		degs:   make([]int32, 0, n),
	}, nil
}

// abort removes the temp file; a no-op after finish.
func (bw *blockWriter) abort() {
	if bw.done {
		return
	}
	bw.tmp.Close()
	os.Remove(bw.tmp.Name())
}

// add appends vertex v (which must be the next vertex in order) with its
// sorted, deduplicated adjacency.
func (bw *blockWriter) add(v graph.V, adj []graph.V) error {
	if v != bw.next {
		return errFormat("vertices must be added in order: got %d, want %d", v, bw.next)
	}
	bw.next++
	var err error
	bw.scratch, err = appendAdj(bw.scratch[:0], adj)
	if err != nil {
		return fmt.Errorf("vertex %d: %w", v, err)
	}
	if bw.count > 0 && len(bw.cur)+len(bw.scratch) > bw.target {
		if err := bw.flush(); err != nil {
			return err
		}
	}
	if bw.count == 0 {
		bw.first = v
	}
	bw.cur = append(bw.cur, bw.scratch...)
	bw.count++
	bw.arcsCur += int32(len(adj))
	bw.degs = append(bw.degs, int32(len(adj)))
	bw.arcs += int64(len(adj))
	return nil
}

// flush writes the current block's payload + CRC to the temp file and
// records its index entry.
func (bw *blockWriter) flush() error {
	m := BlockMeta{
		First:    bw.first,
		Count:    bw.count,
		ArcCount: bw.arcsCur,
		EncLen:   int32(len(bw.cur)),
		Off:      bw.off,
	}
	if _, err := bw.tmpW.Write(bw.cur); err != nil {
		return err
	}
	var crc [crcBytes]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(bw.cur))
	if _, err := bw.tmpW.Write(crc[:]); err != nil {
		return err
	}
	if d := m.decodedBytes(); d > bw.maxDecoded {
		bw.maxDecoded = d
	}
	bw.idx = append(bw.idx, m)
	bw.off += int64(m.EncLen) + crcBytes
	bw.cur = bw.cur[:0]
	bw.count = 0
	bw.arcsCur = 0
	return nil
}

// finish flushes the last block, assembles the final file and removes the
// temp file.
func (bw *blockWriter) finish(directed bool) (*Info, error) {
	if int(bw.next) != bw.n {
		return nil, errFormat("finish after %d of %d vertices", bw.next, bw.n)
	}
	if bw.count > 0 {
		if err := bw.flush(); err != nil {
			return nil, err
		}
	}
	if err := bw.tmpW.Flush(); err != nil {
		return nil, err
	}

	out, err := os.Create(bw.path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(out, 1<<20)
	le := binary.LittleEndian

	blocksStart := int64(headerBytes) + int64(len(bw.idx))*indexEntryBytes + int64(bw.n)*4
	var hdr [headerBytes]byte
	le.PutUint32(hdr[0:4], fileMagic)
	le.PutUint32(hdr[4:8], fileVersion)
	var flags uint32
	if directed {
		flags |= flagDirected
	}
	le.PutUint32(hdr[8:12], flags)
	le.PutUint32(hdr[12:16], uint32(bw.target))
	le.PutUint64(hdr[16:24], uint64(bw.n))
	le.PutUint64(hdr[24:32], uint64(bw.arcs))
	le.PutUint32(hdr[32:36], uint32(len(bw.idx)))
	le.PutUint32(hdr[36:40], uint32(bw.maxDecoded))
	if _, err := w.Write(hdr[:]); err != nil {
		out.Close()
		return nil, err
	}

	var ent [indexEntryBytes]byte
	for _, m := range bw.idx {
		le.PutUint32(ent[0:4], uint32(m.First))
		le.PutUint32(ent[4:8], uint32(m.Count))
		le.PutUint32(ent[8:12], uint32(m.ArcCount))
		le.PutUint32(ent[12:16], uint32(m.EncLen))
		le.PutUint64(ent[16:24], uint64(blocksStart+m.Off))
		if _, err := w.Write(ent[:]); err != nil {
			out.Close()
			return nil, err
		}
	}

	dbuf := make([]byte, 4096)
	for i := 0; i < bw.n; {
		k := 0
		for ; k < len(dbuf) && i < bw.n; i, k = i+1, k+4 {
			le.PutUint32(dbuf[k:], uint32(bw.degs[i]))
		}
		if _, err := w.Write(dbuf[:k]); err != nil {
			out.Close()
			return nil, err
		}
	}

	if _, err := bw.tmp.Seek(0, io.SeekStart); err != nil {
		out.Close()
		return nil, err
	}
	if _, err := io.Copy(w, bw.tmp); err != nil {
		out.Close()
		return nil, err
	}
	if err := w.Flush(); err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	bw.tmp.Close()
	os.Remove(bw.tmp.Name())
	bw.done = true

	info := &Info{
		Path:            bw.path,
		NumVertices:     bw.n,
		NumArcs:         bw.arcs,
		NumBlocks:       len(bw.idx),
		FileBytes:       blocksStart + bw.off,
		MaxDecodedBytes: bw.maxDecoded,
		ResidentBytes:   int64(bw.n)*4 + int64(len(bw.idx))*indexEntryBytes,
		RawCSRBytes:     int64(bw.n+1)*8 + bw.arcs*4,
	}
	return info, nil
}
