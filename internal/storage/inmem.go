package storage

import (
	"graphsys/internal/graph"
)

// MemSource adapts an in-memory *graph.Graph to GraphSource — today's
// behavior, and the equivalence oracle for the disk-backed path. All I/O
// counters stay zero.
type MemSource struct {
	g *graph.Graph
}

// NumVertices returns the number of vertices.
func (s *MemSource) NumVertices() int { return s.g.NumVertices() }

// NumArcs returns the number of stored directed arcs.
func (s *MemSource) NumArcs() int64 { return s.g.NumArcs() }

// Directed reports whether the graph is directed.
func (s *MemSource) Directed() bool { return s.g.Directed() }

// Degree returns the out-degree of v.
func (s *MemSource) Degree(v graph.V) int { return s.g.Degree(v) }

// Neighbors returns v's sorted neighbor list (a view into the CSR arrays,
// never invalidated for in-memory sources).
func (s *MemSource) Neighbors(v graph.V) ([]graph.V, error) { return s.g.Neighbors(v), nil }

// Scan streams every vertex's adjacency in ascending vertex order.
func (s *MemSource) Scan(fn func(u graph.V, adj []graph.V) error) error {
	for v := graph.V(0); int(v) < s.g.NumVertices(); v++ {
		if err := fn(v, s.g.Neighbors(v)); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns zero counters: in-memory access is not metered I/O.
func (s *MemSource) Stats() IOStats { return IOStats{} }

// MemProvider serves an in-memory graph to any number of workers. Handles
// share the immutable CSR arrays, so one handle serves all workers.
type MemProvider struct {
	g *graph.Graph
	h MemSource
}

// InMemory wraps g as a Provider.
func InMemory(g *graph.Graph) *MemProvider {
	return &MemProvider{g: g, h: MemSource{g: g}}
}

// Graph returns the wrapped graph.
func (p *MemProvider) Graph() *graph.Graph { return p.g }

// NumVertices returns the number of vertices.
func (p *MemProvider) NumVertices() int { return p.g.NumVertices() }

// NumArcs returns the number of stored directed arcs.
func (p *MemProvider) NumArcs() int64 { return p.g.NumArcs() }

// Handle returns the shared in-memory handle (immutable, so one suffices).
func (p *MemProvider) Handle(w int) GraphSource { return &p.h }

// Stats returns zero counters.
func (p *MemProvider) Stats() IOStats { return IOStats{} }

// Footprint reports the resident CSR size.
func (p *MemProvider) Footprint() Footprint {
	return Footprint{
		Kind:          "mem",
		ResidentBytes: int64(p.g.NumVertices()+1)*8 + p.g.NumArcs()*4,
	}
}

// Close is a no-op.
func (p *MemProvider) Close() error { return nil }
