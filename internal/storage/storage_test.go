package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
)

// writeTemp writes g to a block file under t.TempDir and returns the path.
func writeTemp(t *testing.T, g *graph.Graph, opts Options) (string, *Info) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.gsb")
	info, err := Write(path, g, opts)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path, info
}

// checkSourceMatchesGraph verifies Degree/Neighbors/Scan of src against g.
func checkSourceMatchesGraph(t *testing.T, src GraphSource, g *graph.Graph) {
	t.Helper()
	if src.NumVertices() != g.NumVertices() || src.NumArcs() != g.NumArcs() {
		t.Fatalf("geometry: source %d/%d, graph %d/%d",
			src.NumVertices(), src.NumArcs(), g.NumVertices(), g.NumArcs())
	}
	for v := graph.V(0); int(v) < g.NumVertices(); v++ {
		if src.Degree(v) != g.Degree(v) {
			t.Fatalf("degree(%d): source %d, graph %d", v, src.Degree(v), g.Degree(v))
		}
		got, err := src.Neighbors(v)
		if err != nil {
			t.Fatalf("Neighbors(%d): %v", v, err)
		}
		want := g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d): len %d want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Neighbors(%d)[%d]: %d want %d", v, i, got[i], want[i])
			}
		}
	}
	next := graph.V(0)
	err := src.Scan(func(u graph.V, adj []graph.V) error {
		if u != next {
			t.Fatalf("Scan order: got %d want %d", u, next)
		}
		next++
		want := g.Neighbors(u)
		if len(adj) != len(want) {
			t.Fatalf("Scan(%d): len %d want %d", u, len(adj), len(want))
		}
		for i := range want {
			if adj[i] != want[i] {
				t.Fatalf("Scan(%d)[%d]: %d want %d", u, i, adj[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if int(next) != g.NumVertices() {
		t.Fatalf("Scan visited %d of %d vertices", next, g.NumVertices())
	}
}

func TestDiskSourceMatchesInMemory(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		opts Options
	}{
		{"rmat", gen.RMAT(10, 8, 1), Options{BlockBytes: 1 << 10}},
		{"rmat-tiny-blocks", gen.RMAT(8, 4, 2), Options{BlockBytes: 16}},
		{"grid", gen.Grid(17, 13), Options{}},
		{"clique-megablock", gen.Clique(300), Options{BlockBytes: 64}},
		{"empty", graph.FromEdges(100, nil), Options{BlockBytes: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path, info := writeTemp(t, tc.g, tc.opts)
			if info.NumArcs != tc.g.NumArcs() {
				t.Fatalf("info arcs %d, graph %d", info.NumArcs, tc.g.NumArcs())
			}
			p, err := OpenCached(path, 1<<30, 2, LRU)
			if err != nil {
				t.Fatalf("OpenCached: %v", err)
			}
			defer p.Close()
			checkSourceMatchesGraph(t, p.Handle(0), tc.g)
			checkSourceMatchesGraph(t, p.Handle(1), tc.g)
			checkSourceMatchesGraph(t, InMemory(tc.g).Handle(0), tc.g)
		})
	}
}

// TestZeroDegreeRuns covers blocks made mostly of isolated vertices — a long
// zero-degree run must still be covered by the index and decode to empty
// lists.
func TestZeroDegreeRuns(t *testing.T) {
	n := 10_000
	b := graph.NewBuilder(n, false)
	// Only vertices divisible by 997 get edges; everything else is isolated.
	for v := 0; v < n; v += 997 {
		b.AddEdge(graph.V(v), graph.V((v+1)%n))
	}
	g := b.Build()
	path, info := writeTemp(t, g, Options{BlockBytes: 64})
	if info.NumBlocks == 0 {
		t.Fatal("no blocks written")
	}
	p, err := OpenCached(path, 1<<30, 1, LRU)
	if err != nil {
		t.Fatalf("OpenCached: %v", err)
	}
	defer p.Close()
	checkSourceMatchesGraph(t, p.Handle(0), g)
}

func TestWriteStreamByteIdentical(t *testing.T) {
	// A builder graph with duplicate edges and self-loops: Builder dedups and
	// drops loops; WriteStream must apply the same normalization.
	n := 500
	type arc struct{ u, v graph.V }
	var arcs []arc
	emitRaw := func(emit func(u, v graph.V)) {
		for _, a := range arcs {
			emit(a.u, a.v)
			emit(a.v, a.u) // undirected: both directions
		}
	}
	b := graph.NewBuilder(n, false)
	rng := []int{7, 3, 11, 13} // fixed stride mix, repeats included
	for i := 0; i < 4000; i++ {
		u := graph.V(i % n)
		v := graph.V((i*rng[i%4] + i/7) % n)
		arcs = append(arcs, arc{u, v})
		if u != v {
			b.AddEdge(u, v)
		}
		if i%17 == 0 {
			arcs = append(arcs, arc{u, u}) // self-loop: must be dropped
		}
		if i%5 == 0 {
			arcs = append(arcs, arc{u, v}) // duplicate: must be deduped
		}
	}
	g := b.Build()

	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.gsb")
	pathB := filepath.Join(dir, "b.gsb")
	opts := Options{BlockBytes: 256}
	if _, err := Write(pathA, g, opts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := WriteStream(pathB, n, false, emitRaw, opts); err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	ba, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Fatalf("Write and WriteStream produced different files (%d vs %d bytes)", len(ba), len(bb))
	}
}

// TestRMATStreamByteIdentical pins the capacity-build path: streaming the
// R-MAT arc sequence through WriteStream yields the byte-identical file to
// materializing the graph and calling Write.
func TestRMATStreamByteIdentical(t *testing.T) {
	const scale, ef, seed = 10, 8, 42
	g := gen.RMAT(scale, ef, seed)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "mat.gsb")
	pathB := filepath.Join(dir, "stream.gsb")
	opts := Options{BlockBytes: 1 << 10}
	if _, err := Write(pathA, g, opts); err != nil {
		t.Fatal(err)
	}
	_, err := WriteStream(pathB, 1<<scale, false, func(emit func(u, v graph.V)) {
		gen.RMATStream(scale, ef, seed, func(u, v graph.V) {
			emit(u, v)
			emit(v, u)
		})
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := os.ReadFile(pathA)
	bb, _ := os.ReadFile(pathB)
	if string(ba) != string(bb) {
		t.Fatalf("streamed R-MAT file differs from materialized one (%d vs %d bytes)", len(ba), len(bb))
	}
}

func TestCorruptBlockReturnsError(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	path, info := writeTemp(t, g, Options{BlockBytes: 512})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the blocks section (past header, index and
	// degree table) so Open still succeeds but a block read fails its CRC.
	blocksStart := int64(headerBytes) + int64(info.NumBlocks)*indexEntryBytes + int64(info.NumVertices)*4
	raw[blocksStart+(info.FileBytes-blocksStart)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenCached(path, 1<<30, 1, LRU)
	if err != nil {
		t.Fatalf("OpenCached after corruption: %v (corruption must surface at read, not open)", err)
	}
	defer p.Close()
	h := p.Handle(0)
	var sawCorrupt bool
	for v := graph.V(0); int(v) < g.NumVertices(); v++ {
		if _, err := h.Neighbors(v); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Neighbors(%d): got %v, want wrapped ErrCorrupt", v, err)
			}
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("no corruption detected after flipping a block byte")
	}
	if err := h.Scan(func(graph.V, []graph.V) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Scan over corrupt file: got %v, want wrapped ErrCorrupt", err)
	}
}

func TestTruncatedFileFailsOpen(t *testing.T) {
	g := gen.RMAT(8, 8, 4)
	path, _ := writeTemp(t, g, Options{})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(raw) - 3, headerBytes + 5, 10} {
		p := filepath.Join(t.TempDir(), "cut.gsb")
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p); !errors.Is(err, ErrFormat) {
			t.Fatalf("Open(truncated at %d): got %v, want wrapped ErrFormat", cut, err)
		}
	}
}

func TestBudgetRejected(t *testing.T) {
	g := gen.RMAT(10, 8, 5)
	path, info := writeTemp(t, g, Options{BlockBytes: 1 << 10})
	// A budget below resident + one decoded block per worker must be a typed
	// error at construction.
	_, err := OpenCached(path, info.ResidentBytes+info.MaxDecodedBytes/2, 1, LRU)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget: got %v, want wrapped ErrBudget", err)
	}
	// With w workers the same per-worker floor applies to each share.
	_, err = OpenCached(path, info.ResidentBytes+3*info.MaxDecodedBytes, 4, LRU)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("under-provisioned 4-worker budget: got %v, want wrapped ErrBudget", err)
	}
	// The documented minimum must be accepted.
	p, err := OpenCached(path, info.ResidentBytes+4*info.MaxDecodedBytes, 4, LRU)
	if err != nil {
		t.Fatalf("minimum budget rejected: %v", err)
	}
	p.Close()
}

// sweep runs `rounds` full in-order Neighbors sweeps on h.
func sweep(t *testing.T, h GraphSource, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for v := graph.V(0); int(v) < h.NumVertices(); v++ {
			if _, err := h.Neighbors(v); err != nil {
				t.Fatalf("Neighbors(%d): %v", v, err)
			}
		}
	}
}

// TestEvictionPolicies pins the sequential-flooding behavior the two
// policies exist for: on a cyclic sequential sweep with a cache smaller than
// the working set, LRU evicts every block just before its reuse (~0 block
// hits beyond the intra-block ones) while MRU pins a stable prefix and
// converts roughly the cached fraction of accesses into hits.
func TestEvictionPolicies(t *testing.T) {
	g := gen.RMAT(11, 8, 6)
	path, info := writeTemp(t, g, Options{BlockBytes: 1 << 10})
	if info.NumBlocks < 8 {
		t.Fatalf("want ≥8 blocks for a meaningful sweep, got %d", info.NumBlocks)
	}
	// Budget ≈ resident + half the decoded working set.
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded int64
	for _, m := range f.idx {
		decoded += m.decodedBytes()
	}
	f.Close()
	budget := info.ResidentBytes + decoded/2

	stats := map[EvictPolicy]IOStats{}
	for _, pol := range []EvictPolicy{LRU, MRU} {
		p, err := OpenCached(path, budget, 1, pol)
		if err != nil {
			t.Fatalf("OpenCached(%v): %v", pol, err)
		}
		h := p.Handle(0)
		sweep(t, h, 1) // cold pass
		cold := h.Stats()
		sweep(t, h, 4) // steady-state cyclic passes
		stats[pol] = h.Stats().Sub(cold)
		p.Close()
	}
	// Block-level requests per steady pass = NumBlocks (the intra-block
	// Neighbors calls hit the lastBlock fast path and are hits for both).
	// Subtract those fast-path hits to compare block fetch behavior: MRU must
	// fetch far fewer blocks than LRU.
	if lru, mru := stats[LRU], stats[MRU]; mru.Misses*2 > lru.Misses {
		t.Fatalf("MRU should miss at most half as often as LRU on a cyclic sweep: lru=%+v mru=%+v", lru, mru)
	}
	if stats[MRU].HitRatio() <= stats[LRU].HitRatio() {
		t.Fatalf("MRU hit ratio %.3f not above LRU %.3f on cyclic sweep",
			stats[MRU].HitRatio(), stats[LRU].HitRatio())
	}
}

// TestStatsDeterministic pins that the cache meters are a pure function of
// the access sequence: two identical runs produce identical counters.
func TestStatsDeterministic(t *testing.T) {
	g := gen.RMAT(10, 8, 7)
	path, info := writeTemp(t, g, Options{BlockBytes: 1 << 10})
	budget := info.ResidentBytes + 4*info.MaxDecodedBytes
	run := func(pol EvictPolicy) IOStats {
		p, err := OpenCached(path, budget, 1, pol)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		h := p.Handle(0)
		// A mixed access pattern: strided, then sequential, then a scan.
		for v := 0; v < g.NumVertices(); v += 37 {
			if _, err := h.Neighbors(graph.V(v)); err != nil {
				t.Fatal(err)
			}
		}
		sweep(t, h, 2)
		if err := h.Scan(func(graph.V, []graph.V) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return h.Stats()
	}
	for _, pol := range []EvictPolicy{LRU, MRU} {
		a, b := run(pol), run(pol)
		if a != b {
			t.Fatalf("%v stats not deterministic: %+v vs %+v", pol, a, b)
		}
	}
}

// TestScanBypassesCache pins that Scan streams without touching hit/miss
// accounting or evicting cached blocks.
func TestScanBypassesCache(t *testing.T) {
	g := gen.RMAT(10, 8, 8)
	path, info := writeTemp(t, g, Options{BlockBytes: 1 << 10})
	p, err := OpenCached(path, info.ResidentBytes+4*info.MaxDecodedBytes, 1, LRU)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h := p.Handle(0).(*CachedSource)
	if _, err := h.Neighbors(0); err != nil {
		t.Fatal(err)
	}
	before := h.Stats()
	cachedBefore := len(h.table)
	if err := h.Scan(func(graph.V, []graph.V) error { return nil }); err != nil {
		t.Fatal(err)
	}
	d := h.Stats().Sub(before)
	if d.Hits != 0 || d.Misses != 0 || d.Evictions != 0 {
		t.Fatalf("Scan disturbed cache accounting: %+v", d)
	}
	if d.BytesRead <= 0 || d.BlocksRead != int64(info.NumBlocks) {
		t.Fatalf("Scan metering wrong: %+v (want %d blocks)", d, info.NumBlocks)
	}
	if len(h.table) != cachedBefore {
		t.Fatalf("Scan changed cache population: %d -> %d", cachedBefore, len(h.table))
	}
}

// TestHitPathZeroAllocs pins the hot-path contract: once the working set is
// cached, Neighbors performs zero allocations per call.
func TestHitPathZeroAllocs(t *testing.T) {
	g := gen.RMAT(10, 8, 9)
	path, _ := writeTemp(t, g, Options{BlockBytes: 1 << 12})
	p, err := OpenCached(path, 1<<30, 1, LRU) // everything fits: all hits after warmup
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h := p.Handle(0)
	sweep(t, h, 1) // warm the cache
	n := g.NumVertices()
	v := 0
	allocs := testing.AllocsPerRun(5000, func() {
		if _, err := h.Neighbors(graph.V(v)); err != nil {
			t.Fatal(err)
		}
		v = (v + 41) % n
	})
	if allocs != 0 {
		t.Fatalf("cache-hit Neighbors allocates %.1f times per call, want 0", allocs)
	}
}

// TestFreelistReusesBuffers pins that a thrashing cache recycles entries
// instead of allocating fresh decode buffers per miss.
func TestFreelistReusesBuffers(t *testing.T) {
	g := gen.RMAT(10, 8, 10)
	path, info := writeTemp(t, g, Options{BlockBytes: 1 << 10})
	p, err := OpenCached(path, info.ResidentBytes+2*info.MaxDecodedBytes, 1, LRU)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	h := p.Handle(0)
	sweep(t, h, 2) // warm: buffers grown to max block size, freelist primed
	n := g.NumVertices()
	v := 0
	allocs := testing.AllocsPerRun(2000, func() {
		if _, err := h.Neighbors(graph.V(v)); err != nil {
			t.Fatal(err)
		}
		v = (v + 977) % n // stride past block boundaries: mostly misses
	})
	// Steady-state misses reuse freelist entries and their buffers; allow a
	// fractional allocation for map internals.
	if allocs > 1 {
		t.Fatalf("thrashing cache allocates %.2f times per access, want ≤1", allocs)
	}
}

func TestSpillProviderLifecycle(t *testing.T) {
	g := gen.RMAT(9, 8, 11)
	pol := &Policy{Disk: true, BudgetBytes: 1 << 30, BlockBytes: 1 << 10, Dir: t.TempDir()}
	p, err := pol.Spill(g, 2)
	if err != nil {
		t.Fatalf("Spill: %v", err)
	}
	spillPath := p.File().Path()
	if _, err := os.Stat(spillPath); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	checkSourceMatchesGraph(t, p.Handle(0), g)
	fp := p.Footprint()
	if !fp.Metered() || fp.FileBytes <= 0 || fp.CacheBytes <= 0 {
		t.Fatalf("bad footprint: %+v", fp)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(spillPath); !os.IsNotExist(err) {
		t.Fatalf("spill file not removed on Close: %v", err)
	}
}

func TestSpillBudgetTyped(t *testing.T) {
	g := gen.RMAT(9, 8, 12)
	pol := &Policy{Disk: true, BudgetBytes: 64, BlockBytes: 1 << 10, Dir: t.TempDir()}
	if _, err := pol.Spill(g, 2); !errors.Is(err, ErrBudget) {
		t.Fatalf("Spill with 64-byte budget: got %v, want wrapped ErrBudget", err)
	}
}

func TestCompressionRatio(t *testing.T) {
	// R-MAT neighbor ids cluster low, so gap coding should beat raw 4-byte
	// ids comfortably; the bench gate pins ≥1.5, this test a looser 1.2.
	g := gen.RMAT(12, 16, 13)
	_, info := writeTemp(t, g, Options{})
	if r := info.CompressionRatio(); r < 1.2 {
		t.Fatalf("compression ratio %.2f below 1.2 (file %d B, raw %d B)",
			r, info.FileBytes, info.RawCSRBytes)
	}
}
