// Package storage is the shared out-of-core graph layer: a compressed
// on-disk CSR block format plus a bounded, metered block cache, behind a
// GraphSource abstraction every engine accepts (pregel, blogel, gnndist,
// graphd). It generalizes the GraphD-style "vertex state in memory, edges on
// disk" trade (DESIGN.md §3.13) from one engine into runtime infrastructure:
//
//   - On disk, the adjacency lives in fixed-target-size edge blocks. Each
//     block covers a contiguous vertex range and stores every vertex's sorted
//     neighbor list gap-encoded (first id as a varint, then varint gaps minus
//     one — neighbor lists are strictly increasing), which is the
//     delta/varint recipe the Besta graph-database survey catalogs as the
//     standard beyond-RAM layout. Every block carries a CRC32 so a corrupt
//     read surfaces as a typed error, never a panic or a garbage graph.
//
//   - In memory, only O(|V|) state is resident: the per-vertex degree table
//     and the block index. Adjacency comes through a bounded block cache
//     (LRU or MRU eviction) whose budget is enforced up front — a budget too
//     small to hold even one decoded block is ErrBudget at open time, not an
//     OOM mid-run. Decode buffers are recycled through evicted entries, so a
//     steady-state cache hit performs zero allocations.
//
//   - Engines see a GraphSource: Degree, Neighbors(v) (a view into the
//     decoded block, valid until the next call on the same handle), a
//     sequential block Scan, and cumulative IOStats (hits, misses,
//     evictions, bytes read). InMemory wraps today's *graph.Graph — the
//     equivalence oracle — and CachedProvider serves the same interface from
//     disk. Handles are per worker: each worker owns a private slice of the
//     cache budget, so hit/miss counts are a deterministic function of the
//     worker's access sequence, independent of goroutine scheduling.
package storage

import (
	"errors"
	"fmt"

	"graphsys/internal/graph"
)

// Typed failures. All exported entry points return these wrapped with
// context; none panic (the repo's panicpolicy contract).
var (
	// ErrBudget reports a memory budget too small for the configured layout
	// (resident index + degrees + at least one decoded block per worker).
	ErrBudget = errors.New("storage: memory budget exceeded")
	// ErrCorrupt reports a block whose checksum or encoding failed to
	// validate on read.
	ErrCorrupt = errors.New("storage: corrupt block")
	// ErrFormat reports a file that is not a valid block-CSR file (bad
	// magic, version or header geometry).
	ErrFormat = errors.New("storage: bad file format")
)

// IOStats are the cumulative I/O meters of one source handle (or the sum
// over a provider's handles). All counters are deterministic functions of
// the handle's access sequence.
type IOStats struct {
	Hits       int64 // block requests served from the cache
	Misses     int64 // block requests that went to disk
	Evictions  int64 // cached blocks evicted to make room
	BlocksRead int64 // blocks fetched from disk (= Misses plus scan reads)
	BytesRead  int64 // compressed bytes fetched from disk
}

// Add returns s with o added counter-wise.
func (s IOStats) Add(o IOStats) IOStats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.BlocksRead += o.BlocksRead
	s.BytesRead += o.BytesRead
	return s
}

// Sub returns s minus o counter-wise (for per-round deltas).
func (s IOStats) Sub(o IOStats) IOStats {
	s.Hits -= o.Hits
	s.Misses -= o.Misses
	s.Evictions -= o.Evictions
	s.BlocksRead -= o.BlocksRead
	s.BytesRead -= o.BytesRead
	return s
}

// HitRatio returns Hits / (Hits + Misses), or 0 when no block was requested.
func (s IOStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// GraphSource is one worker's handle onto a graph's adjacency. Exactly one
// goroutine may use a handle at a time; distinct handles of one Provider are
// fully independent.
type GraphSource interface {
	// NumVertices returns the number of vertices.
	NumVertices() int
	// NumArcs returns the number of stored directed arcs.
	NumArcs() int64
	// Directed reports whether the stored graph is directed (undirected
	// graphs store both arc directions, as the in-memory CSR does).
	Directed() bool
	// Degree returns the out-degree of v from resident state (no disk I/O).
	Degree(v graph.V) int
	// Neighbors returns the sorted neighbor list of v. The returned slice is
	// a view into source-owned storage (the decoded block for disk-backed
	// sources) and is valid until the next Neighbors or Scan call on the
	// same handle; copy it to retain. A decode failure (corrupt block)
	// returns a wrapped ErrCorrupt.
	Neighbors(v graph.V) ([]graph.V, error)
	// Scan streams every vertex's adjacency in ascending vertex order — the
	// sequential block scan of semi-external algorithms (graphd's
	// per-iteration pass). Disk-backed sources stream blocks through a
	// private buffer WITHOUT populating the cache (a full scan would flood
	// it), metering the bytes read. The adj slice passed to fn is valid only
	// during the call.
	Scan(fn func(u graph.V, adj []graph.V) error) error
	// Stats returns the handle's cumulative I/O counters (all zero for
	// in-memory sources).
	Stats() IOStats
}

// Provider hands out per-worker GraphSource handles over one graph, plus
// aggregate accounting for the observability layer.
type Provider interface {
	NumVertices() int
	NumArcs() int64
	// Handle returns worker w's private source handle. Handles are created
	// at provider construction; w must be in [0, workers).
	Handle(w int) GraphSource
	// Stats returns the sum of all handles' I/O counters.
	Stats() IOStats
	// Footprint describes the provider's memory/disk accounting.
	Footprint() Footprint
	// Close releases file handles. In-memory providers are no-ops.
	Close() error
}

// Footprint is a provider's storage accounting, attached to the obs trace.
type Footprint struct {
	Kind          string // "mem" | "disk"
	FileBytes     int64  // on-disk compressed size (0 for in-memory)
	ResidentBytes int64  // bytes held in memory outside the cache (CSR for mem; degrees+index for disk)
	CacheBytes    int64  // total decoded-block cache budget across handles (0 for mem)
}

// Metered reports whether the provider performs (and meters) disk I/O.
func (f Footprint) Metered() bool { return f.Kind == "disk" }

func errBudget(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBudget, fmt.Sprintf(format, args...))
}

func errCorrupt(format string, args ...any) error {
	//lint:allow hotalloc corruption error path: reachable from Neighbors but only taken when the file is already bad
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func errFormat(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}
