package storage

import (
	"os"
	"path/filepath"
	"sync"

	"graphsys/internal/graph"
)

// Policy is the process-global storage mode, the hook behind graphbench's
// `-source disk -memory-budget N` flags: when Disk is set, engines whose
// Config carries no explicit Source spill their in-memory graph to a
// temporary block file and run through the bounded cache instead of the CSR
// arrays. Like tensor.SetParallelism, it is set once at process startup
// before any engine runs.
type Policy struct {
	// Disk routes engine adjacency access through a spilled block file.
	Disk bool
	// BudgetBytes is the total memory budget per engine run (resident part
	// plus all workers' cache). An explicit budget is enforced exactly
	// (ErrBudget if infeasible). 0 means a default of half the raw CSR size,
	// raised to the feasibility minimum when the graph is too small for that
	// to hold one decoded block per worker.
	BudgetBytes int64
	// BlockBytes is the target encoded block size (0 = DefaultBlockBytes).
	BlockBytes int
	// Dir is where spill files are created ("" = os.TempDir()).
	Dir string
	// Evict is the cache eviction policy for spilled providers.
	Evict EvictPolicy
}

var (
	policyMu      sync.Mutex
	defaultPolicy *Policy
)

// SetDefault installs the process-global storage policy (nil restores the
// in-memory default).
func SetDefault(p *Policy) {
	policyMu.Lock()
	defaultPolicy = p
	policyMu.Unlock()
}

// Default returns the current process-global policy, or nil if none is set.
func Default() *Policy {
	policyMu.Lock()
	defer policyMu.Unlock()
	return defaultPolicy
}

// Spill writes g to a temporary block file under the policy's directory and
// opens a cached provider over it with per-worker handles. Closing the
// provider removes the spill file. Budget violations surface as a wrapped
// ErrBudget at spill time, not as an OOM mid-run.
func (p *Policy) Spill(g *graph.Graph, workers int) (*CachedProvider, error) {
	dir := p.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	tmp, err := os.CreateTemp(dir, "spill-*.gsb")
	if err != nil {
		return nil, err
	}
	path := tmp.Name()
	tmp.Close()
	info, err := Write(path, g, Options{BlockBytes: p.BlockBytes})
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	budget := p.BudgetBytes
	if budget <= 0 {
		budget = info.RawCSRBytes / 2
		if min := info.ResidentBytes + int64(workers)*info.MaxDecodedBytes; budget < min {
			budget = min
		}
	}
	cp, err := OpenCached(path, budget, workers, p.Evict)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	cp.removeOnClose = path
	return cp, nil
}

// removeFile removes a spill file, tolerating an already-removed path.
func removeFile(path string) error {
	err := os.Remove(path)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// TempPath returns a fresh path for a block file under dir (or os.TempDir())
// without creating it, for callers that build files via Write/WriteStream.
func TempPath(dir, pattern string) (string, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return "", err
	}
	path := f.Name()
	f.Close()
	os.Remove(path)
	return filepath.Clean(path), nil
}
