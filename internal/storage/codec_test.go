package storage

import (
	"errors"
	"math/rand"
	"testing"

	"graphsys/internal/graph"
)

func roundTrip(t *testing.T, adj []graph.V, n int) {
	t.Helper()
	enc, err := appendAdj(nil, adj)
	if err != nil {
		t.Fatalf("appendAdj(%v): %v", adj, err)
	}
	out := make([]graph.V, len(adj))
	rest, err := decodeAdj(out, enc, len(adj), n)
	if err != nil {
		t.Fatalf("decodeAdj(%v): %v", adj, err)
	}
	if len(rest) != 0 {
		t.Fatalf("decodeAdj left %d trailing bytes", len(rest))
	}
	for i := range adj {
		if out[i] != adj[i] {
			t.Fatalf("round trip mismatch at %d: got %v want %v", i, out, adj)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	n := 1 << 20
	cases := [][]graph.V{
		nil,
		{0},
		{graph.V(n - 1)},
		{0, graph.V(n - 1)},                // maximal gap
		{0, 1, 2, 3, 4, 5, 6, 7},           // gap-of-one runs: one byte each
		{5, 100, 101, 1 << 10, 1 << 19},    // mixed gaps
		{graph.V(n - 3), graph.V(n - 1)},   // near the top of the id space
		{1, 2, 4, 8, 16, 32, 64, 128, 256}, // doubling gaps
	}
	// A dense single-vertex "megablock": a vertex adjacent to every even id.
	mega := make([]graph.V, 0, n/2)
	for v := 0; v < n; v += 2 {
		mega = append(mega, graph.V(v))
	}
	cases = append(cases, mega)
	for _, adj := range cases {
		roundTrip(t, adj, n)
	}
}

func TestCodecRandomLists(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 10_000
	for trial := 0; trial < 200; trial++ {
		deg := rng.Intn(64)
		seen := map[graph.V]bool{}
		for len(seen) < deg {
			seen[graph.V(rng.Intn(n))] = true
		}
		adj := make([]graph.V, 0, deg)
		for v := graph.V(0); int(v) < n; v++ {
			if seen[v] {
				adj = append(adj, v)
			}
		}
		roundTrip(t, adj, n)
	}
}

func TestCodecRejectsUnsortedInput(t *testing.T) {
	if _, err := appendAdj(nil, []graph.V{3, 2}); err == nil {
		t.Fatal("appendAdj accepted a decreasing list")
	}
	if _, err := appendAdj(nil, []graph.V{2, 2}); err == nil {
		t.Fatal("appendAdj accepted a duplicate")
	}
	if _, err := appendAdj(nil, []graph.V{-1, 2}); err == nil {
		t.Fatal("appendAdj accepted a negative id")
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	enc, err := appendAdj(nil, []graph.V{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]graph.V, 4)
	// Asking for more ids than encoded must error, not read garbage.
	if _, err := decodeAdj(out, enc, 4, 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-long decode: got %v, want ErrCorrupt", err)
	}
	// Ids escaping [0, n) must error.
	if _, err := decodeAdj(out[:3], enc, 3, 9); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-range decode: got %v, want ErrCorrupt", err)
	}
	// Truncated data must error.
	if _, err := decodeAdj(out[:3], enc[:1], 3, 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated decode: got %v, want ErrCorrupt", err)
	}
}

// FuzzCodec fuzzes both directions: decoding arbitrary bytes must return a
// typed error or a strictly increasing in-range list (never panic, never
// garbage), and any list that decodes cleanly must survive an
// encode→decode round trip. (Byte-level bijection is not claimed: stdlib
// Uvarint tolerates over-long varint encodings.)
func FuzzCodec(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1))
	f.Add([]byte{0x03, 0x00, 0x00}, uint8(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}, uint8(1))
	seed, _ := appendAdj(nil, []graph.V{2, 7, 8, 4000})
	f.Add(seed, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, degByte uint8) {
		const n = 1 << 20
		deg := int(degByte)
		out := make([]graph.V, deg)
		rest, err := decodeAdj(out, data, deg, n)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error not ErrCorrupt: %v", err)
			}
			return
		}
		for i := 1; i < deg; i++ {
			if out[i] <= out[i-1] {
				t.Fatalf("decoded list not strictly increasing: %v", out)
			}
		}
		_ = rest
		reenc, err := appendAdj(nil, out)
		if err != nil {
			t.Fatalf("re-encoding decoded list: %v", err)
		}
		out2 := make([]graph.V, deg)
		if _, err := decodeAdj(out2, reenc, deg, n); err != nil {
			t.Fatalf("decoding re-encoded list: %v", err)
		}
		for i := range out {
			if out2[i] != out[i] {
				t.Fatalf("round trip mismatch at %d: %v vs %v", i, out2, out)
			}
		}
	})
}
