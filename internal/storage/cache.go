package storage

import (
	"graphsys/internal/graph"
)

// EvictPolicy selects which cached block makes room for a new one.
//
// LRU is right for skewed or localized access (GNN neighbor sampling). For a
// cyclic sequential sweep — PageRank visiting every vertex in order, round
// after round — LRU below the working-set size degrades to ~0% hits
// (sequential flooding: every block is evicted just before its next use).
// MRU is the classic fix: it sacrifices the block just used and thereby pins
// a stable prefix of the working set, giving a hit ratio close to the cached
// fraction of the graph.
type EvictPolicy int

const (
	// LRU evicts the least-recently-used block.
	LRU EvictPolicy = iota
	// MRU evicts the most-recently-used block (best for cyclic scans).
	MRU
)

// String returns "lru" or "mru".
func (p EvictPolicy) String() string {
	if p == MRU {
		return "mru"
	}
	return "lru"
}

// ParseEvictPolicy parses "lru" or "mru".
func ParseEvictPolicy(s string) (EvictPolicy, error) {
	switch s {
	case "lru", "":
		return LRU, nil
	case "mru":
		return MRU, nil
	}
	return LRU, errFormat("unknown eviction policy %q (want lru or mru)", s)
}

// entry is one cached decoded block, threaded on the recency list (head is
// most recent) and recycled through a freelist so steady-state misses reuse
// decode buffers instead of allocating.
type entry struct {
	block      int32
	first      graph.V
	count      int32
	offs       []int32
	adj        []graph.V
	bytes      int64
	prev, next *entry
}

// CachedSource is one worker's bounded-cache handle over a block file. It is
// not safe for concurrent use; a Provider hands each worker its own, so the
// hit/miss counters are a deterministic function of that worker's access
// sequence alone.
type CachedSource struct {
	f      *File
	pol    EvictPolicy
	budget int64
	used   int64

	table      map[int32]*entry
	head, tail *entry
	free       *entry
	last       *entry

	raw   []byte
	sbuf  scanBuf
	stats IOStats
}

// newCachedSource builds a handle with a decoded-block budget of
// budgetBytes, which must hold the largest block (checked by the provider).
func newCachedSource(f *File, budgetBytes int64, pol EvictPolicy) *CachedSource {
	return &CachedSource{
		f:      f,
		pol:    pol,
		budget: budgetBytes,
		table:  make(map[int32]*entry),
	}
}

// NumVertices returns the number of vertices.
func (s *CachedSource) NumVertices() int { return s.f.n }

// NumArcs returns the number of stored directed arcs.
func (s *CachedSource) NumArcs() int64 { return s.f.arcs }

// Directed reports whether the stored graph is directed.
func (s *CachedSource) Directed() bool { return s.f.directed }

// Degree returns the out-degree of v from the resident degree table.
func (s *CachedSource) Degree(v graph.V) int { return int(s.f.degs[v]) }

// Stats returns the handle's cumulative I/O counters.
func (s *CachedSource) Stats() IOStats { return s.stats }

// CacheBytes returns the handle's decoded-block budget.
func (s *CachedSource) CacheBytes() int64 { return s.budget }

// Neighbors returns v's sorted neighbor list as a view into the cached
// decoded block, valid until the next Neighbors or Scan call on this handle.
// A cache hit performs no allocation and no disk I/O.
func (s *CachedSource) Neighbors(v graph.V) ([]graph.V, error) {
	e := s.last
	if e == nil || v < e.first || v >= e.first+graph.V(e.count) {
		var err error
		if e, err = s.get(int32(s.f.blockOf(v))); err != nil {
			return nil, err
		}
	} else {
		s.stats.Hits++
	}
	i := v - e.first
	return e.adj[e.offs[i]:e.offs[i+1]], nil
}

// get returns the entry for block b, fetching and decoding on a miss.
func (s *CachedSource) get(b int32) (*entry, error) {
	if e, ok := s.table[b]; ok {
		s.stats.Hits++
		s.touch(e)
		s.last = e
		return e, nil
	}
	s.stats.Misses++
	m := s.f.idx[b]
	need := m.decodedBytes()
	for s.used+need > s.budget && s.head != nil {
		s.evict()
	}
	e := s.alloc(int(m.Count)+1, int(m.ArcCount))
	e.block = b
	e.first = m.First
	e.count = m.Count
	e.bytes = need
	payload, err := s.f.readBlock(int(b), s.raw)
	if err != nil {
		s.release(e)
		return nil, err
	}
	s.raw = payload[:cap(payload)]
	s.stats.BlocksRead++
	s.stats.BytesRead += int64(m.EncLen) + crcBytes
	if err := s.f.decodeBlock(int(b), payload, e.offs, e.adj); err != nil {
		s.release(e)
		return nil, err
	}
	s.table[b] = e
	s.pushFront(e)
	s.used += need
	s.last = e
	return e, nil
}

// touch moves e to the recency-list front.
func (s *CachedSource) touch(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// evict removes one block per the policy and recycles its entry.
func (s *CachedSource) evict() {
	victim := s.tail
	if s.pol == MRU {
		victim = s.head
	}
	s.unlink(victim)
	delete(s.table, victim.block)
	s.used -= victim.bytes
	if s.last == victim {
		s.last = nil
	}
	s.stats.Evictions++
	s.release(victim)
}

// alloc pops a freelist entry (growing its buffers if needed) or makes a new
// one.
func (s *CachedSource) alloc(offsLen, adjLen int) *entry {
	e := s.free
	if e != nil {
		s.free = e.next
		e.next = nil
	} else {
		//lint:allow hotalloc freelist miss: one entry per resident block, bounded by the cache budget, recycled forever after
		e = &entry{}
	}
	if cap(e.offs) < offsLen {
		//lint:allow hotalloc warm-up growth only: offs grows to the largest block's vertex count, then the freelist recycles it
		e.offs = make([]int32, offsLen)
	}
	e.offs = e.offs[:offsLen]
	if cap(e.adj) < adjLen {
		//lint:allow hotalloc warm-up growth only: adj grows to the largest block's arc count, then the freelist recycles it
		e.adj = make([]graph.V, adjLen)
	}
	e.adj = e.adj[:adjLen]
	return e
}

// release returns e (and its buffers) to the freelist.
func (s *CachedSource) release(e *entry) {
	e.prev = nil
	e.next = s.free
	s.free = e
}

func (s *CachedSource) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *CachedSource) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Scan streams every vertex's adjacency in order through a private buffer,
// bypassing (and not disturbing) the cache; bytes and blocks read are
// metered. It invalidates any outstanding Neighbors view.
func (s *CachedSource) Scan(fn func(u graph.V, adj []graph.V) error) error {
	bytes, blocks, err := s.f.scanBlocks(&s.sbuf, fn)
	s.stats.BytesRead += bytes
	s.stats.BlocksRead += blocks
	return err
}

// CachedProvider hands out per-worker CachedSource handles over one block
// file, splitting the cache budget evenly. Closing it closes the file.
type CachedProvider struct {
	f             *File
	handles       []*CachedSource
	perHandle     int64
	removeOnClose string
}

// NewCachedProvider builds per-worker cached handles over f. budgetBytes is
// the total memory budget for the graph: the resident part (degree table +
// block index) comes off the top and the remainder is split evenly across
// workers as decoded-block cache. If any worker's share cannot hold the
// largest decoded block, the budget is rejected with a wrapped ErrBudget —
// at construction, not as an OOM mid-run. The provider takes ownership of f.
func NewCachedProvider(f *File, budgetBytes int64, workers int, pol EvictPolicy) (*CachedProvider, error) {
	if workers <= 0 {
		workers = 1
	}
	cacheTotal := budgetBytes - f.ResidentBytes()
	per := cacheTotal / int64(workers)
	if per < f.MaxDecodedBytes() {
		return nil, errBudget(
			"budget %d B leaves %d B/worker of block cache (%d workers, resident %d B); largest decoded block needs %d B — budget must be at least %d B",
			budgetBytes, per, workers, f.ResidentBytes(), f.MaxDecodedBytes(),
			f.ResidentBytes()+int64(workers)*f.MaxDecodedBytes())
	}
	p := &CachedProvider{f: f, perHandle: per}
	for w := 0; w < workers; w++ {
		p.handles = append(p.handles, newCachedSource(f, per, pol))
	}
	return p, nil
}

// OpenCached opens path and builds a cached provider over it; on budget or
// format errors the file is closed before returning.
func OpenCached(path string, budgetBytes int64, workers int, pol EvictPolicy) (*CachedProvider, error) {
	f, err := Open(path)
	if err != nil {
		return nil, err
	}
	p, err := NewCachedProvider(f, budgetBytes, workers, pol)
	if err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// File returns the underlying block file.
func (p *CachedProvider) File() *File { return p.f }

// NumVertices returns the number of vertices.
func (p *CachedProvider) NumVertices() int { return p.f.n }

// NumArcs returns the number of stored directed arcs.
func (p *CachedProvider) NumArcs() int64 { return p.f.arcs }

// Handle returns worker w's private source handle.
func (p *CachedProvider) Handle(w int) GraphSource { return p.handles[w] }

// Workers returns the number of handles.
func (p *CachedProvider) Workers() int { return len(p.handles) }

// Stats returns the sum of all handles' I/O counters.
func (p *CachedProvider) Stats() IOStats {
	var t IOStats
	for _, h := range p.handles {
		t = t.Add(h.stats)
	}
	return t
}

// Footprint describes the provider's memory/disk accounting.
func (p *CachedProvider) Footprint() Footprint {
	return Footprint{
		Kind:          "disk",
		FileBytes:     p.f.fileBytes,
		ResidentBytes: p.f.ResidentBytes(),
		CacheBytes:    p.perHandle * int64(len(p.handles)),
	}
}

// Close closes the block file (and removes it, for spill providers).
func (p *CachedProvider) Close() error {
	err := p.f.Close()
	if p.removeOnClose != "" {
		removeErr := removeFile(p.removeOnClose)
		if err == nil {
			err = removeErr
		}
	}
	return err
}
