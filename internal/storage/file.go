package storage

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"graphsys/internal/graph"
)

// On-disk layout (all integers little-endian):
//
//	header   40 bytes: magic, version, flags, blockTarget (u32 each),
//	         n, arcs (u64 each), numBlocks, maxDecoded (u32 each)
//	index    numBlocks × 24 bytes: first, count, arcCount, encLen (u32), off (u64)
//	degrees  n × u32
//	blocks   per block: encLen payload bytes, then a CRC32 (IEEE) of the payload
//
// The header, index and degree table are the RESIDENT part — O(|V|) memory —
// loaded once at Open. Blocks are fetched on demand (the cache) or streamed
// (Scan). maxDecoded is the largest decoded footprint of any single block,
// the unit the budget check is expressed in.

const (
	fileMagic   = 0x31425347 // "GSB1"
	fileVersion = 1

	flagDirected = 1 << 0

	headerBytes     = 40
	indexEntryBytes = 24
	crcBytes        = 4

	// DefaultBlockBytes is the default target encoded size of one block.
	DefaultBlockBytes = 64 << 10
)

// BlockMeta is one index entry: a block covering vertices
// [First, First+Count) whose payload is EncLen bytes at file offset Off.
type BlockMeta struct {
	First    graph.V
	Count    int32
	ArcCount int32
	EncLen   int32
	Off      int64
}

// decodedBytes is the in-memory footprint of the decoded block: the local
// offset table (Count+1 int32s) plus the neighbor ids.
func (m BlockMeta) decodedBytes() int64 {
	return int64(m.Count+1)*4 + int64(m.ArcCount)*4
}

// File is an opened block-CSR file: resident header, index and degree table,
// with block payloads read on demand through ReadAt (safe for concurrent
// use by multiple handles).
type File struct {
	f    *os.File
	path string

	n          int
	arcs       int64
	directed   bool
	blockBytes int
	maxDecoded int64
	fileBytes  int64

	idx  []BlockMeta
	degs []int32
}

// Open maps a block-CSR file: it reads and validates the header, index and
// degree table (the resident part) and leaves blocks on disk.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, errFormat("%s: reading header: %v", path, err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:4]) != fileMagic {
		f.Close()
		return nil, errFormat("%s: bad magic", path)
	}
	if v := le.Uint32(hdr[4:8]); v != fileVersion {
		f.Close()
		return nil, errFormat("%s: unsupported version %d", path, v)
	}
	bf := &File{
		f:          f,
		path:       path,
		directed:   le.Uint32(hdr[8:12])&flagDirected != 0,
		blockBytes: int(le.Uint32(hdr[12:16])),
		n:          int(le.Uint64(hdr[16:24])),
		arcs:       int64(le.Uint64(hdr[24:32])),
		maxDecoded: int64(le.Uint32(hdr[36:40])),
		fileBytes:  fi.Size(),
	}
	numBlocks := int(le.Uint32(hdr[32:36]))
	if bf.n < 0 || numBlocks < 0 {
		f.Close()
		return nil, errFormat("%s: negative geometry", path)
	}
	raw := make([]byte, numBlocks*indexEntryBytes)
	if _, err := io.ReadFull(f, raw); err != nil {
		f.Close()
		return nil, errFormat("%s: reading index: %v", path, err)
	}
	bf.idx = make([]BlockMeta, numBlocks)
	for b := range bf.idx {
		e := raw[b*indexEntryBytes:]
		bf.idx[b] = BlockMeta{
			First:    graph.V(le.Uint32(e[0:4])),
			Count:    int32(le.Uint32(e[4:8])),
			ArcCount: int32(le.Uint32(e[8:12])),
			EncLen:   int32(le.Uint32(e[12:16])),
			Off:      int64(le.Uint64(e[16:24])),
		}
	}
	draw := make([]byte, bf.n*4)
	if _, err := io.ReadFull(f, draw); err != nil {
		f.Close()
		return nil, errFormat("%s: reading degree table: %v", path, err)
	}
	bf.degs = make([]int32, bf.n)
	for v := range bf.degs {
		bf.degs[v] = int32(le.Uint32(draw[v*4:]))
	}
	if err := bf.validate(); err != nil {
		f.Close()
		return nil, err
	}
	return bf, nil
}

// validate cross-checks index geometry against the header so a truncated or
// inconsistent file fails at Open, not mid-run.
func (bf *File) validate() error {
	var arcs int64
	next := graph.V(0)
	for b, m := range bf.idx {
		if m.First != next || m.Count < 0 || m.ArcCount < 0 || m.EncLen < 0 {
			return errFormat("%s: block %d covers [%d,+%d), want start %d", bf.path, b, m.First, m.Count, next)
		}
		if m.Off < 0 || m.Off+int64(m.EncLen)+crcBytes > bf.fileBytes {
			return errFormat("%s: block %d extends past end of file", bf.path, b)
		}
		if m.decodedBytes() > bf.maxDecoded {
			return errFormat("%s: block %d decoded size %d exceeds header max %d", bf.path, b, m.decodedBytes(), bf.maxDecoded)
		}
		next = m.First + graph.V(m.Count)
		arcs += int64(m.ArcCount)
	}
	if int(next) != bf.n {
		return errFormat("%s: blocks cover %d of %d vertices", bf.path, next, bf.n)
	}
	if arcs != bf.arcs {
		return errFormat("%s: blocks hold %d arcs, header says %d", bf.path, arcs, bf.arcs)
	}
	var degSum int64
	for _, d := range bf.degs {
		if d < 0 {
			return errFormat("%s: negative degree", bf.path)
		}
		degSum += int64(d)
	}
	if degSum != bf.arcs {
		return errFormat("%s: degree table sums to %d arcs, header says %d", bf.path, degSum, bf.arcs)
	}
	return nil
}

// Close releases the underlying file handle.
func (bf *File) Close() error { return bf.f.Close() }

// Path returns the file's path.
func (bf *File) Path() string { return bf.path }

// NumVertices returns the number of vertices.
func (bf *File) NumVertices() int { return bf.n }

// NumArcs returns the number of stored directed arcs.
func (bf *File) NumArcs() int64 { return bf.arcs }

// Directed reports whether the graph is directed.
func (bf *File) Directed() bool { return bf.directed }

// NumBlocks returns the number of edge blocks.
func (bf *File) NumBlocks() int { return len(bf.idx) }

// FileBytes returns the total on-disk size.
func (bf *File) FileBytes() int64 { return bf.fileBytes }

// MaxDecodedBytes returns the decoded footprint of the largest block — the
// minimum cache budget one handle needs.
func (bf *File) MaxDecodedBytes() int64 { return bf.maxDecoded }

// ResidentBytes returns the memory held by the resident part: degree table
// plus block index.
func (bf *File) ResidentBytes() int64 {
	return int64(bf.n)*4 + int64(len(bf.idx))*indexEntryBytes
}

// RawCSRBytes returns the in-memory CSR footprint the file replaces
// (8-byte offsets + 4-byte neighbor ids), the numerator of the compression
// ratio.
func (bf *File) RawCSRBytes() int64 {
	return int64(bf.n+1)*8 + bf.arcs*4
}

// CompressionRatio returns RawCSRBytes / FileBytes.
func (bf *File) CompressionRatio() float64 {
	if bf.fileBytes == 0 {
		return 0
	}
	return float64(bf.RawCSRBytes()) / float64(bf.fileBytes)
}

// Degree returns the out-degree of v from the resident degree table.
func (bf *File) Degree(v graph.V) int { return int(bf.degs[v]) }

// blockOf returns the index of the block containing v.
func (bf *File) blockOf(v graph.V) int {
	//lint:allow hotalloc sort.Search does not retain its predicate; the closure stays on the stack (BENCH_storage pins 0 allocs/op on cache hits)
	return sort.Search(len(bf.idx), func(b int) bool {
		return bf.idx[b].First+graph.V(bf.idx[b].Count) > v
	})
}

// readBlock fetches block b's payload into raw (grown as needed), verifies
// its CRC and returns the payload slice.
func (bf *File) readBlock(b int, raw []byte) ([]byte, error) {
	m := bf.idx[b]
	need := int(m.EncLen) + crcBytes
	if cap(raw) < need {
		//lint:allow hotalloc warm-up growth only: the read buffer grows to the largest encoded block, then is reused for every read
		raw = make([]byte, need)
	} else {
		raw = raw[:need]
	}
	if _, err := bf.f.ReadAt(raw, m.Off); err != nil {
		//lint:allow hotalloc corruption error path: formatting the failure is free, the read already died
		return nil, errCorrupt("%s: block %d: %v", bf.path, b, err)
	}
	payload := raw[:m.EncLen]
	want := binary.LittleEndian.Uint32(raw[m.EncLen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		//lint:allow hotalloc corruption error path: formatting the failure is free, the block is already bad
		return nil, errCorrupt("%s: block %d: checksum mismatch (got %08x want %08x)", bf.path, b, got, want)
	}
	return payload, nil
}

// decodeBlock decodes block b's payload into offs (local CSR offsets,
// Count+1 entries) and adj (ArcCount neighbor ids). Both must be presized by
// the caller; payload must come from readBlock.
func (bf *File) decodeBlock(b int, payload []byte, offs []int32, adj []graph.V) error {
	m := bf.idx[b]
	off := int32(0)
	for i := int32(0); i < m.Count; i++ {
		offs[i] = off
		deg := int(bf.degs[m.First+graph.V(i)])
		if int64(off)+int64(deg) > int64(m.ArcCount) {
			//lint:allow hotalloc corruption error path: formatting the failure is free, the block is already bad
			return errCorrupt("%s: block %d: degrees overflow arc count", bf.path, b)
		}
		rest, err := decodeAdj(adj[off:off+int32(deg)], payload, deg, bf.n)
		if err != nil {
			//lint:allow hotalloc corruption error path: formatting the failure is free, the block is already bad
			return errCorrupt("%s: block %d vertex %d: %v", bf.path, b, m.First+graph.V(i), err)
		}
		payload = rest
		off += int32(deg)
	}
	offs[m.Count] = off
	if off != m.ArcCount {
		//lint:allow hotalloc corruption error path: formatting the failure is free, the block is already bad
		return errCorrupt("%s: block %d: decoded %d arcs, index says %d", bf.path, b, off, m.ArcCount)
	}
	if len(payload) != 0 {
		//lint:allow hotalloc corruption error path: formatting the failure is free, the block is already bad
		return errCorrupt("%s: block %d: %d trailing bytes after last vertex", bf.path, b, len(payload))
	}
	return nil
}

// scanBuf holds the reusable buffers of a sequential block scan, so a
// per-iteration scan (graphd's passes) does not reallocate each round.
type scanBuf struct {
	raw  []byte
	offs []int32
	adj  []graph.V
}

// scanBlocks streams every block in order through buf, calling fn once per
// vertex with its decoded adjacency. It returns compressed bytes and blocks
// read. The adj slice is valid only during fn.
func (bf *File) scanBlocks(buf *scanBuf, fn func(u graph.V, adj []graph.V) error) (int64, int64, error) {
	var bytesRead, blocksRead int64
	for b := range bf.idx {
		m := bf.idx[b]
		payload, err := bf.readBlock(b, buf.raw)
		if err != nil {
			return bytesRead, blocksRead, err
		}
		buf.raw = payload[:cap(payload)]
		bytesRead += int64(m.EncLen) + crcBytes
		blocksRead++
		if int(m.Count)+1 > cap(buf.offs) {
			buf.offs = make([]int32, m.Count+1)
		}
		offs := buf.offs[:m.Count+1]
		if int(m.ArcCount) > cap(buf.adj) {
			buf.adj = make([]graph.V, m.ArcCount)
		}
		adj := buf.adj[:m.ArcCount]
		if err := bf.decodeBlock(b, payload, offs, adj); err != nil {
			return bytesRead, blocksRead, err
		}
		for i := int32(0); i < m.Count; i++ {
			if err := fn(m.First+graph.V(i), adj[offs[i]:offs[i+1]]); err != nil {
				return bytesRead, blocksRead, err
			}
		}
	}
	return bytesRead, blocksRead, nil
}
