package blogel

import (
	"path/filepath"
	"testing"

	"graphsys/internal/graph/gen"
	"graphsys/internal/partition"
	"graphsys/internal/storage"
)

// TestBuildSourceMatchesBuild pins the equivalence contract: the block
// decomposition, quotient graph and CC labels from an out-of-core build must
// be identical to the in-memory build of the same graph.
func TestBuildSourceMatchesBuild(t *testing.T) {
	g := gen.RMAT(10, 6, 41)
	part := partition.Hash(g, 4)
	mem := Build(g, part)

	path := filepath.Join(t.TempDir(), "g.gsb")
	info, err := storage.Write(path, g, storage.Options{BlockBytes: 1 << 11})
	if err != nil {
		t.Fatalf("storage.Write: %v", err)
	}
	prov, err := storage.OpenCached(path, info.ResidentBytes+4*info.MaxDecodedBytes, 1, storage.MRU)
	if err != nil {
		t.Fatalf("storage.OpenCached: %v", err)
	}
	defer prov.Close()
	disk, err := BuildSource(prov.Handle(0), part)
	if err != nil {
		t.Fatalf("BuildSource: %v", err)
	}

	if disk.NumBlock != mem.NumBlock {
		t.Fatalf("block counts differ: mem %d disk %d", mem.NumBlock, disk.NumBlock)
	}
	for v := range mem.BlockOf {
		if mem.BlockOf[v] != disk.BlockOf[v] {
			t.Fatalf("BlockOf[%d] differs: mem %d disk %d", v, mem.BlockOf[v], disk.BlockOf[v])
		}
	}
	if mq, dq := mem.Quotient, disk.Quotient; mq.NumVertices() != dq.NumVertices() || mq.NumArcs() != dq.NumArcs() {
		t.Fatalf("quotients differ: mem (%d,%d) disk (%d,%d)",
			mq.NumVertices(), mq.NumArcs(), dq.NumVertices(), dq.NumArcs())
	}
	if prov.Stats().BlocksRead == 0 {
		t.Fatal("disk build read no blocks")
	}

	memCC, err := mem.ConnectedComponents(2)
	if err != nil {
		t.Fatal(err)
	}
	diskCC, err := disk.ConnectedComponents(2)
	if err != nil {
		t.Fatal(err)
	}
	if memCC.Supersteps != diskCC.Supersteps || memCC.Messages != diskCC.Messages {
		t.Fatalf("CC runs differ: mem (%d,%d) disk (%d,%d)",
			memCC.Supersteps, memCC.Messages, diskCC.Supersteps, diskCC.Messages)
	}
	for v := range memCC.Labels {
		if memCC.Labels[v] != diskCC.Labels[v] {
			t.Fatalf("label[%d] differs: mem %d disk %d", v, memCC.Labels[v], diskCC.Labels[v])
		}
	}
}
