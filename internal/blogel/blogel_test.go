package blogel

import (
	"math"
	"testing"

	"graphsys/internal/graph"
	"graphsys/internal/graph/gen"
	"graphsys/internal/partition"
	"graphsys/internal/pregel"
)

func TestBuildBlocksAreConnectedAndCover(t *testing.T) {
	g := gen.PlantedPartitionSparse(400, 4, 8, 1, 3).Graph
	b := Build(g, partition.Metis(g, 4))
	if b.NumBlock <= 0 {
		t.Fatal("no blocks")
	}
	// every vertex assigned
	for v, id := range b.BlockOf {
		if id < 0 || int(id) >= b.NumBlock {
			t.Fatalf("vertex %d block %d", v, id)
		}
	}
	// each block is connected within the original graph
	sizes := b.BlockSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.NumVertices() {
		t.Fatalf("blocks cover %d of %d vertices", total, g.NumVertices())
	}
	for id := int32(0); int(id) < b.NumBlock; id++ {
		var vs []graph.V
		for v, bid := range b.BlockOf {
			if bid == id {
				vs = append(vs, graph.V(v))
			}
		}
		sub, _ := g.InducedSubgraph(vs)
		if _, comps := graph.ConnectedComponents(sub); comps != 1 {
			t.Fatalf("block %d has %d components", id, comps)
		}
	}
	// quotient edges only between distinct blocks with a cross edge
	b.Quotient.EdgesOnce(func(x, y graph.V) {
		if x == y {
			t.Fatal("self edge in quotient")
		}
	})
}

func TestBlockCCMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := gen.ErdosRenyi(300, 350, seed) // sparse: several components
		b := Build(g, partition.Hash(g, 4))
		res, err := b.ConnectedComponents(4)
		if err != nil {
			t.Fatal(err)
		}
		want, wantCount := graph.ConnectedComponents(g)
		seen := map[int32]bool{}
		for _, l := range res.Labels {
			seen[l] = true
		}
		if len(seen) != wantCount {
			t.Fatalf("seed %d: %d components, want %d", seed, len(seen), wantCount)
		}
		for u := 0; u < 300; u++ {
			for v := u + 1; v < 300; v += 7 {
				if (want[u] == want[v]) != (res.Labels[u] == res.Labels[v]) {
					t.Fatalf("seed %d: vertices %d,%d disagree", seed, u, v)
				}
			}
		}
	}
}

func TestBlockCCBeatsVertexCentric(t *testing.T) {
	// long path: vertex-centric HashMin needs ~n rounds; block-centric needs
	// ~(#blocks) rounds — the Blogel killer case
	n := 600
	bld := graph.NewBuilder(n, false)
	for v := 0; v < n-1; v++ {
		bld.AddEdge(graph.V(v), graph.V(v+1))
	}
	g := bld.Build()
	_, vres, _ := pregel.HashMinCC(g, pregel.Config{Workers: 4, MaxSupersteps: 10000})
	b := Build(g, partition.Range(g, 8))
	bres, _ := b.ConnectedComponents(4)
	if bres.Supersteps >= vres.Supersteps/10 {
		t.Fatalf("block-centric %d rounds not ≪ vertex-centric %d", bres.Supersteps, vres.Supersteps)
	}
	if bres.Messages >= vres.Net.Messages+vres.Net.LocalMessages {
		t.Fatalf("block-centric messages %d not below vertex-centric", bres.Messages)
	}
}

func TestBlockPageRankApproximatesExact(t *testing.T) {
	g := gen.PlantedPartitionSparse(300, 3, 10, 1, 5).Graph
	exact, _, _ := pregel.PageRank(g, 50, pregel.Config{Workers: 4})
	b := Build(g, partition.Metis(g, 3))
	approx, _ := b.PageRank(10, 4)
	// warm-started run with few global iterations should land close
	var maxDiff float64
	for v := range exact {
		if d := math.Abs(exact[v] - approx[v]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.005 {
		t.Fatalf("block PageRank deviates by %g", maxDiff)
	}
	// and should sum to ~1
	sum := 0.0
	for _, r := range approx {
		sum += r
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("ranks sum to %f", sum)
	}
}

func TestBlocksDisconnectedGraph(t *testing.T) {
	g := graph.FromEdges(6, [][2]graph.V{{0, 1}, {2, 3}, {4, 5}})
	b := Build(g, partition.Hash(g, 2))
	res, _ := b.ConnectedComponents(2)
	seen := map[int32]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("found %d components, want 3", len(seen))
	}
}
