// Package blogel implements block-centric ("think like a block") computation
// in the style of Blogel (Yan et al., PVLDB'14), one of the TLAV-family
// systems the paper's presenters built: vertices are grouped into blocks
// (connected partitions), each block computes serially over its whole
// subgraph within a superstep, and only inter-block messages cross the
// network. For graph problems whose hard instances are caused by large
// diameters or skewed components — connected components being the canonical
// example — block-level computation collapses whole regions into single
// quotient vertices, cutting both rounds and messages by orders of
// magnitude versus vertex-centric execution.
package blogel

import (
	"graphsys/internal/graph"
	"graphsys/internal/obs"
	"graphsys/internal/partition"
	"graphsys/internal/pregel"
	"graphsys/internal/storage"
)

// Blocks is a block decomposition of a graph: a partition whose parts have
// been refined into connected blocks, plus the quotient (block-level) graph.
// G is nil for decompositions built from an out-of-core GraphSource
// (BuildSource); the quotient and the vertex→block map are all that
// block-centric algorithms over the quotient need.
type Blocks struct {
	G        *graph.Graph
	BlockOf  []int32 // vertex -> block id
	NumBlock int
	Quotient *graph.Graph // one vertex per block; edge iff some cross edge
}

// Build refines an arbitrary partition into connected blocks (each part is
// split into its connected components — Blogel's Voronoi/partitioner step
// guarantees connectivity the same way) and constructs the quotient graph.
func Build(g *graph.Graph, part *partition.Partition) *Blocks {
	n := g.NumVertices()
	blockOf := make([]int32, n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	next := int32(0)
	var stack []graph.V
	for s := 0; s < n; s++ {
		if blockOf[s] != -1 {
			continue
		}
		id := next
		next++
		blockOf[s] = id
		stack = append(stack[:0], graph.V(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if blockOf[w] == -1 && part.Assign[w] == part.Assign[s] {
					blockOf[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	qb := graph.NewBuilder(int(next), false)
	g.EdgesOnce(func(u, v graph.V) {
		if blockOf[u] != blockOf[v] {
			qb.AddEdge(graph.V(blockOf[u]), graph.V(blockOf[v]))
		}
	})
	return &Blocks{G: g, BlockOf: blockOf, NumBlock: int(next), Quotient: qb.Build()}
}

// BuildSource is Build over an out-of-core GraphSource: the refinement BFS
// reads adjacency through the handle (block-cached for disk sources) and the
// quotient construction uses one sequential block scan, so the peak memory is
// the O(|V|) blockOf array plus the quotient — never the full adjacency. The
// decomposition is identical to Build on the same graph; only I/O differs.
func BuildSource(src storage.GraphSource, part *partition.Partition) (*Blocks, error) {
	n := src.NumVertices()
	blockOf := make([]int32, n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	next := int32(0)
	var stack []graph.V
	var frontier []graph.V // copy of the current Neighbors view (stack outlives it)
	for s := 0; s < n; s++ {
		if blockOf[s] != -1 {
			continue
		}
		id := next
		next++
		blockOf[s] = id
		stack = append(stack[:0], graph.V(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ns, err := src.Neighbors(v)
			if err != nil {
				return nil, err
			}
			frontier = frontier[:0]
			for _, w := range ns {
				if blockOf[w] == -1 && part.Assign[w] == part.Assign[s] {
					blockOf[w] = id
					frontier = append(frontier, w)
				}
			}
			stack = append(stack, frontier...)
		}
	}
	qb := graph.NewBuilder(int(next), false)
	directed := src.Directed()
	err := src.Scan(func(u graph.V, adj []graph.V) error {
		for _, v := range adj {
			if !directed && u >= v {
				continue // visit each undirected edge once, as EdgesOnce does
			}
			if blockOf[u] != blockOf[v] {
				qb.AddEdge(graph.V(blockOf[u]), graph.V(blockOf[v]))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Blocks{BlockOf: blockOf, NumBlock: int(next), Quotient: qb.Build()}, nil
}

// CCResult reports a block-centric connected-components run.
type CCResult struct {
	Labels     []int32
	Supersteps int
	Messages   int64
	Trace      *obs.Trace // non-nil when run with pregel.Config.Trace
}

// ConnectedComponents computes connected components block-centrically:
// every block resolves its interior serially (free — blocks are connected by
// construction, so a block IS one local component), then HashMin label
// propagation runs over the quotient graph, whose size is the number of
// blocks rather than the number of vertices. Compare with pregel.HashMinCC:
// same answer, far fewer rounds and messages (the Blogel result).
func (b *Blocks) ConnectedComponents(workers int) (CCResult, error) {
	return b.ConnectedComponentsCfg(pregel.Config{Workers: workers})
}

// ConnectedComponentsCfg is ConnectedComponents with a full engine config:
// setting cfg.Trace attaches the quotient run's observability trace, and
// cfg.Topology/cfg.Faults/cfg.Partition configure the quotient-level cluster.
// An invalid config is reported as an error without starting the run.
func (b *Blocks) ConnectedComponentsCfg(cfg pregel.Config) (CCResult, error) {
	qLabels, res, err := pregel.HashMinCC(b.Quotient, cfg)
	if err != nil {
		return CCResult{}, err
	}
	labels := make([]int32, len(b.BlockOf))
	for v := range labels {
		labels[v] = qLabels[b.BlockOf[v]]
	}
	if res.Trace != nil {
		res.Trace.Workload = "blogel/cc"
	}
	return CCResult{
		Labels:     labels,
		Supersteps: res.Supersteps,
		Messages:   res.Net.Messages + res.Net.LocalMessages,
		Trace:      res.Trace,
	}, nil
}

// BlockSizes returns the number of vertices per block.
func (b *Blocks) BlockSizes() []int {
	sizes := make([]int, b.NumBlock)
	for _, id := range b.BlockOf {
		sizes[id]++
	}
	return sizes
}

// PageRank runs Blogel-style two-phase PageRank: standard vertex-centric
// PageRank, but with a block-level warm start — each block first runs
// PageRank on its local subgraph to convergence and uses the local scores as
// the initial guess, which cuts the global iterations needed for a given
// residual (Blogel's "block-level computation first" pattern).
func (b *Blocks) PageRank(globalIters int, workers int) ([]float64, error) {
	n := b.G.NumVertices()
	// local phase: exact PageRank on each block's induced subgraph
	init := make([]float64, n)
	byBlock := make([][]graph.V, b.NumBlock)
	for v := 0; v < n; v++ {
		byBlock[b.BlockOf[v]] = append(byBlock[b.BlockOf[v]], graph.V(v))
	}
	for _, vs := range byBlock {
		if len(vs) == 0 {
			continue
		}
		sub, newToOld := b.G.InducedSubgraph(vs)
		local, _, err := pregel.PageRank(sub, 15, pregel.Config{Workers: 1})
		if err != nil {
			return nil, err
		}
		scale := float64(len(vs)) / float64(n)
		for i, old := range newToOld {
			init[old] = local[i] * scale
		}
	}
	// global phase: damped iterations from the warm start
	const d = 0.85
	cur := init
	for it := 0; it < globalIters; it++ {
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			deg := b.G.Degree(graph.V(v))
			if deg == 0 {
				continue
			}
			share := cur[v] / float64(deg)
			for _, u := range b.G.Neighbors(graph.V(v)) {
				next[u] += share
			}
		}
		for v := 0; v < n; v++ {
			next[v] = (1-d)/float64(n) + d*next[v]
		}
		cur = next
	}
	return cur, nil
}
