package experiments

import (
	"fmt"

	"graphsys/internal/hypo"
	"graphsys/internal/serve"
)

func init() {
	register("serve-sweep", "§3.11 serving tier: latency and goodput vs offered load per scheduling policy", ServeSweep)
}

// ServeSweep is the serving-tier saturation sweep as a paper-style table: the
// same deterministic logical-time simulation cmd/benchserving writes to
// BENCH_serving.json, rendered per (policy, offered-load) cell. Open-loop
// Poisson arrivals with a bimodal light/heavy cost mix meet a fixed-capacity
// server under admission control and a per-query deadline; latencies are
// logical ticks and goodput is completions per kilotick, so every cell is a
// pure function of the parameters and the two-run determinism invariant
// covers the whole serving stack (policy allocators, shedding, expiry).
func ServeSweep() *Table {
	p := hypo.DefaultServingParams()
	t := &Table{ID: "serve-sweep",
		Title: fmt.Sprintf("serving saturation sweep (workers=%d queue=%d deadline=%d ticks, %d queries/point, seed %d)",
			p.Workers, p.QueueLimit, p.DeadlineTicks, p.Queries, p.Seed),
		Header: []string{"policy", "λ offered", "completed", "rejected", "expired", "p50 ticks", "p99 ticks", "goodput/ktick"}}
	for _, pol := range serve.Policies {
		for _, lambda := range p.Lambdas {
			pt := must2(hypo.MeasureServingPoint(p, pol, lambda, p.Seed))
			t.AddRow(pt.Policy, fmt.Sprintf("%.2f", lambda),
				pt.Completed, pt.Rejected, pt.Expired, pt.P50, pt.P99, pt.Goodput)
		}
	}
	t.Note("capacity is %d work units/tick against a mean query cost ≈ %.1f units, so saturation sits near λ ≈ %.2f; the last two loads are past it",
		p.Workers, meanCost(p), float64(p.Workers)/meanCost(p))
	t.Note("shortest-remaining-work keeps the light tail flowing under overload (p50 stays at 1 tick) where FIFO queues it behind heavy queries")
	t.Note("the same cells ship as BENCH_serving.json; cmd/benchcheck gates them against the committed baseline for EXACT equality")
	return t
}

// meanCost is the expectation of the sweep's bimodal size mix.
func meanCost(p hypo.ServingParams) float64 {
	light := float64(p.LightMin+p.LightMax) / 2
	heavy := float64(p.HeavyMin+p.HeavyMax) / 2
	return (1-p.PHeavy)*light + p.PHeavy*heavy
}
